(* Appendix A end to end: a Boolean state machine (majority register)
   is expressed as a GF(2) polynomial via Zou's construction, embedded
   into GF(2^10) so the network has enough evaluation points, and run
   as a Coded State Machine under Byzantine faults.

   Run with:  dune exec examples/boolean_machine.exe *)

module G = Csm_field.Gf2m.Gf1024
module Params = Csm_core.Params
module E = Csm_core.Engine.Make (G)
module BM = Csm_machine.Boolean_machine.Make (G)

let () =
  (* majority(state, in1, in2) as a polynomial over GF(2^10) *)
  let machine = BM.majority_register () in
  let d = BM.M.degree machine in
  Format.printf "majority register lifted to GF(2^10): %a@." BM.M.pp machine;
  Format.printf
    "(over GF(2), majority(a,b,c) = ab + bc + ca — degree %d)@.@." d;

  let k = 2 and b = 1 in
  let n = Params.composite_degree ~k ~d + (2 * b) + 1 in
  let params = Params.make ~network:Params.Sync ~n ~k ~d ~b in
  Format.printf "parameters: %a@." Params.pp params;

  (* two independent registers, starting at 0 and 1 *)
  let init = [| BM.embed_bits [| false |]; BM.embed_bits [| true |] |] in
  let engine = E.create ~machine ~params ~init in

  (* Coded states are arbitrary GF(2^10) elements — NOT bits — yet the
     decoded results are always exact bits, by the Appendix-A embedding
     invariance. *)
  Format.printf "@.coded states (field elements, not bits):@.";
  for i = 0 to n - 1 do
    Format.printf "  node %d: %s@." i
      (G.to_string (E.coded_state engine ~node:i).(0))
  done;

  let rng = Csm_rng.create 2024 in
  let states = ref [| [| false |]; [| true |] |] in
  Format.printf "@.running 6 rounds with node 0 Byzantine:@.";
  for round = 1 to 6 do
    let input_bits =
      Array.init k (fun _ -> [| Csm_rng.bool rng; Csm_rng.bool rng |])
    in
    let commands = Array.map BM.embed_bits input_bits in
    let report = E.round engine ~commands ~byzantine:(fun i -> i = 0) () in
    match report.E.decoded with
    | None -> failwith "decode failed"
    | Some dec ->
      let maj s a b = (s && a) || (a && b) || (s && b) in
      Format.printf "  round %d:" round;
      for m = 0 to k - 1 do
        let bit = (BM.to_bits dec.E.next_states.(m)).(0) in
        let expect =
          maj !states.(m).(0) input_bits.(m).(0) input_bits.(m).(1)
        in
        assert (bit = expect);
        Format.printf " reg%d: maj(%b,%b,%b) = %b" m !states.(m).(0)
          input_bits.(m).(0) input_bits.(m).(1) bit;
        !states.(m) <- [| bit |]
      done;
      Format.printf "@."
  done;
  Format.printf
    "@.every decoded bit matched the bit-level reference, with node 0@.";
  Format.printf "lying every round — Appendix A verified end to end ✓@."
