(* Figure 4: the centralized computation model of Section 6.2.

   All coding operations of a CSM round are delegated to one worker node
   (quasi-linear fast polynomial algorithms); a small committee audits
   every matrix-vector identity with INTERMIX; commoners verify alerts
   in O(1).  We run an honest round, then let the worker cheat at each
   stage and watch it get caught, and finally compare the measured
   per-role operation counts.

   Run with:  dune exec examples/delegation.exe *)

module CF = Csm_field.Counted.Make (Csm_field.Fp.Default)
module Params = Csm_core.Params
module D = Csm_intermix.Delegation.Make (CF)
module E = D.E
module M = E.M
module Ledger = Csm_metrics.Ledger
module Scope = Csm_metrics.Scope

let fi = CF.of_int

let () =
  let machine = M.interest_market () in
  let d = M.degree machine in
  let k = 4 and b = 2 in
  let n = Params.composite_degree ~k ~d + (2 * b) + 1 in
  let params = Params.make ~network:Params.Sync ~n ~k ~d ~b in
  Format.printf "delegated CSM round: N=%d, K=%d, d=%d, b=%d@." n k d b;

  let init = Array.init k (fun i -> [| fi (100 * (i + 1)) |]) in
  let commands = Array.init k (fun i -> [| fi (i + 2) |]) in
  let worker = n - 1 in
  let committee = [ 0; 1; 2 ] in
  Format.printf "worker = node %d, committee = {0,1,2}@.@." worker;

  (* honest delegated round, with per-role cost measurement *)
  let ledger = Ledger.create () in
  let scope = Scope.of_ledger (module CF) ledger in
  let engine = E.create ~machine ~params ~init in
  let out =
    D.round ~scope engine ~commands
      ~byzantine:(fun i -> i = 3 || i = 4)  (* two lying compute nodes *)
      ~worker ~committee ()
  in
  (match out.D.decoded with
  | Some dec ->
    Format.printf "honest worker: round accepted, fraud = none@.";
    Format.printf "  liars among compute nodes corrected: %s@."
      (String.concat "," (List.map string_of_int dec.E.error_nodes));
    Array.iteri
      (fun m y ->
        Format.printf "  machine %d: interest paid = %s@." m
          (CF.to_string y.(0)))
      dec.E.outputs
  | None -> failwith "honest round rejected!");

  Format.printf "@.per-role operation counts (adds+muls+weighted invs):@.";
  List.iter
    (fun role ->
      Format.printf "  %-10s %d@." role (Ledger.total ledger role))
    (Ledger.roles ledger);
  let costs = Ledger.per_node_costs ledger ~n in
  let commoner_cost =
    (* nodes that are neither worker nor committee members *)
    costs.(5)
  in
  Format.printf
    "  (worker pays the quasi-linear coding; auditors pay the recompute;@.";
  Format.printf "   a commoner pays %d ops — constant)@." commoner_cost;

  (* now the worker cheats at each stage *)
  Format.printf "@.cheating workers:@.";
  let try_cheat name behavior =
    let engine = E.create ~machine ~params ~init in
    let out =
      D.round ~behavior engine ~commands
        ~byzantine:(fun _ -> false)
        ~worker ~committee ()
    in
    Format.printf "  %-28s -> %s@." name
      (match out.D.fraud with
      | Some D.Encode -> "caught at command encoding"
      | Some D.Decode_cert -> "caught at the decoding certificate (eq. 9)"
      | Some D.Evaluate -> "caught at output evaluation (eq. 8)"
      | Some D.Update -> "caught at the state update"
      | None -> "NOT CAUGHT (bug!)")
  in
  try_cheat "corrupt a coded command" (D.Lying_encode { node = 2; offset = fi 5 });
  try_cheat "corrupt decoded coefficients"
    (D.Lying_decode { coeff = 0; offset = fi 5 });
  try_cheat "corrupt a coded state" (D.Lying_update { node = 6; offset = fi 5 })
