examples/figure2.ml: Array Csm_core Csm_field Format List
