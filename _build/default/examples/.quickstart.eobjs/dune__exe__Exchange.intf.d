examples/exchange.mli:
