examples/quickstart.mli:
