examples/boolean_machine.mli:
