examples/exchange.ml: Array Csm_core Csm_field Format List
