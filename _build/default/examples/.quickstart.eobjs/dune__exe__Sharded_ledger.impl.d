examples/sharded_ledger.ml: Array Csm_core Csm_field Csm_smr Format List String
