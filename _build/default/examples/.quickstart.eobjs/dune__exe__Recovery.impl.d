examples/recovery.ml: Array Csm_core Csm_field Format List
