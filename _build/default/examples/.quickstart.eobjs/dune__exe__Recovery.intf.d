examples/recovery.mli:
