examples/quickstart.ml: Array Csm_core Csm_field Format List String
