examples/intermix_fraud.mli:
