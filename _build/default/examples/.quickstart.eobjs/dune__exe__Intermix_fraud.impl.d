examples/intermix_fraud.ml: Array Csm_field Csm_intermix Csm_rng Format List
