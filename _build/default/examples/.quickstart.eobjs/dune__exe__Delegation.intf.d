examples/delegation.mli:
