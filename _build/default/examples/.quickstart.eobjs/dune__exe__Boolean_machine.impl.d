examples/boolean_machine.ml: Array Csm_core Csm_field Csm_machine Csm_rng Format
