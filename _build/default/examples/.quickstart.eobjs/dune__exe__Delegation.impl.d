examples/delegation.ml: Array Csm_core Csm_field Csm_intermix Csm_metrics Format List String
