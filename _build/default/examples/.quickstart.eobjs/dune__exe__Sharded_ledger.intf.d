examples/sharded_ledger.mli:
