(* Quickstart: the Figure-1 operation flow of Coded State Machine.

   We run K = 3 bank-ledger machines on N = 9 nodes, b = 2 of which are
   Byzantine, and walk through one round of the public API:

     encode states -> agree on commands -> coded execution ->
     Reed-Solomon decode (correcting the liars) -> respond to clients.

   Run with:  dune exec examples/quickstart.exe *)

module F = Csm_field.Fp.Default
module Params = Csm_core.Params
module E = Csm_core.Engine.Make (F)
module M = E.M

let fi = F.of_int

let () =
  (* 1. Pick the system parameters.  The bank machine is degree d = 1;
     Table 2 says synchronous decoding needs 2b+1 <= N - d(K-1), so
     N = 9 supports K = 3 machines with b = 2 Byzantine nodes. *)
  let machine = M.bank () in
  let d = M.degree machine in
  let k = 3 and b = 2 in
  let n = Params.composite_degree ~k ~d + (2 * b) + 1 in
  let params = Params.make ~network:Params.Sync ~n ~k ~d ~b in
  Format.printf "parameters: %a@." Params.pp params;
  Format.printf "storage efficiency γ = %d (each node stores ONE coded state)@."
    (Params.storage_efficiency params);

  (* 2. Initialize: three bank accounts with balances 100, 200, 300.
     E.create Lagrange-encodes them: node i stores u(α_i) where
     u(ω_k) = S_k. *)
  let init = [| [| fi 100 |]; [| fi 200 |]; [| fi 300 |] |] in
  let engine = E.create ~machine ~params ~init in
  Format.printf "@.coded states (one field element per node):@.";
  for i = 0 to n - 1 do
    Format.printf "  node %d stores S̃_%d = %s@." i i
      (F.to_string (E.coded_state engine ~node:i).(0))
  done;

  (* 3. One round: clients submit deposits (+10, +20, +30).  Nodes 7 and
     8 are Byzantine and report corrupted results. *)
  let commands = [| [| fi 10 |]; [| fi 20 |]; [| fi 30 |] |] in
  let byzantine i = i >= n - b in
  Format.printf "@.round 0: deposits [10; 20; 30], nodes 7,8 lie@.";
  let report = E.round engine ~commands ~byzantine () in

  (* 4. Decoding corrects the lies and recovers every machine's output. *)
  (match report.E.decoded with
  | None -> failwith "decoding failed (cannot happen within the bound)"
  | Some dec ->
    Format.printf "errors corrected from nodes: %s@."
      (String.concat ", " (List.map string_of_int dec.E.error_nodes));
    Array.iteri
      (fun m y ->
        Format.printf "  machine %d: new balance %s -> client@." m
          (F.to_string y.(0)))
      dec.E.outputs);

  (* 5. The coded states advanced consistently: verify against the
     uncoded ground truth. *)
  let next_ref, _ = M.run_fleet machine ~states:init ~commands in
  assert (E.consistent_with engine ~states:next_ref);
  Format.printf "@.coded storage verified against the uncoded reference ✓@."
