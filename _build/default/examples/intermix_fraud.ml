(* Figure 5 / Algorithm 1: INTERMIX catching a cheating worker.

   A worker claims Ŷ = A·X for an N×K matrix.  An honest auditor
   recomputes, finds a wrong row, and interactively bisects the row's
   inner product; whatever the worker answers, after at most ⌈log₂ K⌉
   exchanges it is pinned to an inconsistency any commoner can check
   with ONE addition or ONE multiplication.

   Run with:  dune exec examples/intermix_fraud.exe *)

module F = Csm_field.Fp.Default
module IX = Csm_intermix.Intermix.Make (F)
module M = IX.M

let () =
  let rng = Csm_rng.create 99 in
  let n = 8 and k = 16 in
  let a = M.random_mat rng n k in
  let x = M.random_vec rng k in

  Format.printf "INTERMIX: verifiable computation of Y = A·X  (A: %dx%d)@.@."
    n k;

  (* honest run *)
  let w = IX.honest_worker a x in
  let report = IX.audit w a x in
  Format.printf "honest worker:   auditor result = %s, interactions = %d@."
    (match report.IX.result with IX.Accept -> "ACCEPT" | IX.Alert _ -> "ALERT")
    report.IX.interactions;

  (* a blatant liar answers bisection queries truthfully: the very first
     split exposes that its halves don't sum to its claim *)
  let blatant =
    IX.malicious_worker ~strategy:IX.Blatant ~bad_rows:[ 5 ]
      ~offset:(F.of_int 1) a x
  in
  let report = IX.audit blatant a x in
  (match report.IX.result with
  | IX.Accept -> assert false
  | IX.Alert alert ->
    Format.printf "blatant liar:    caught after %d interaction(s): %s@."
      report.IX.interactions
      (match alert with
      | IX.Sum_mismatch _ -> "halves don't sum to the claim"
      | IX.Leaf_mismatch _ -> "singleton claim is wrong");
    Format.printf "                 commoner confirms in O(1): %b@."
      (IX.commoner_check a x alert));

  (* an adaptive liar splits its lie consistently at every level; it
     survives every sum check but is cornered at a singleton *)
  let adaptive =
    IX.malicious_worker ~strategy:IX.Adaptive ~bad_rows:[ 5 ]
      ~offset:(F.of_int 1) a x
  in
  let report = IX.audit adaptive a x in
  (match report.IX.result with
  | IX.Accept -> assert false
  | IX.Alert alert ->
    Format.printf
      "adaptive liar:   cornered after %d interactions (= log2 %d): %s@."
      report.IX.interactions k
      (match alert with
      | IX.Sum_mismatch _ -> "sum mismatch"
      | IX.Leaf_mismatch _ -> "singleton claim is wrong");
    Format.printf "                 commoner confirms in O(1): %b@."
      (IX.commoner_check a x alert));

  (* dishonest auditor framing an honest worker: dismissed in O(1) *)
  let w = IX.honest_worker a x in
  let bogus =
    IX.Leaf_mismatch
      { l_query = { IX.row = 0; lo = 0; hi = 1 }; l_claim = F.mul a.(0).(0) x.(0) }
  in
  Format.printf "bogus alert:     commoner dismisses in O(1): %b@."
    (not (IX.commoner_check a x bogus));

  (* committee sizing: how many auditors for 10^-6 failure at mu = 1/3 *)
  let j = IX.committee_size ~epsilon:1e-6 ~mu:(1. /. 3.) in
  Format.printf
    "@.committee: J = %d auditors suffice for Pr[no honest auditor] <= 1e-6@."
    j;
  let verdict =
    IX.run_protocol w a x
      ~auditors:(List.init j (fun i -> i mod n))
      ~dishonest_auditor:(fun _ -> None)
  in
  Format.printf "full protocol on honest worker: accepted = %b@."
    verdict.IX.accepted
