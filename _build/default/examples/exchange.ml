(* A two-asset exchange over the full networked CSM stack, including the
   client layer: clients submit trades to per-market pools, the rotating
   leader proposes pool heads, honest nodes enforce Validity, coded
   execution corrects Byzantine nodes, and each client gets its fill
   receipt with b+1 matching votes.

   The machine is the quadratic pair market (state = two reserves,
   trades add with a quadratic slippage cross-term) — a degree-2
   multivariate machine exercising multi-dimensional states end to end.

   Run with:  dune exec examples/exchange.exe *)

module F = Csm_field.Fp.Default
module Params = Csm_core.Params
module P = Csm_core.Protocol.Make (F)
module E = P.E
module M = E.M

let fi = F.of_int

let () =
  let machine = M.pair_market () in
  let d = M.degree machine in
  let k = 2 (* two trading pairs *) and b = 2 in
  let n = Params.composite_degree ~k ~d + (2 * b) + 1 in
  let params = Params.make ~network:Params.Sync ~n ~k ~d ~b in
  Format.printf "exchange: %d markets on %d nodes, %d byzantine@." k n b;
  Format.printf "machine: %a@.@." M.pp machine;

  let init =
    [| [| fi 1000; fi 2000 |]; [| fi 5000; fi 500 |] |]
  in
  let engine = E.create ~machine ~params ~init in
  let cfg = P.default_config params in
  let liars = [ n - 1; n - 2 ] in
  let adv = P.lying_adversary liars in

  (* trades: (client, market, amount_a, amount_b); market 1 is quiet on
     odd rounds *)
  let submissions r =
    Array.init k (fun m ->
        if m = 0 then
          [ { P.client = 100 + r; command = [| fi (r + 1); fi (2 * (r + 1)) |] } ]
        else if r mod 2 = 0 then
          [ { P.client = 200 + r; command = [| fi 3; fi 1 |] } ]
        else [])
  in
  let rounds = 6 in
  let run = P.run_with_clients cfg engine ~submissions ~rounds adv in

  List.iter
    (fun (o : P.round_outcome) ->
      Format.printf "round %d: %s%s@." o.P.round
        (match o.P.consensus with
        | P.Agreed _ -> "agreed"
        | P.Skipped -> "skipped (byzantine leader)"
        | P.Disagreement -> "DISAGREEMENT!")
        (if o.P.executed then ", executed" else ""))
    run.P.outcomes;

  Format.printf "@.fills delivered to clients:@.";
  List.iter
    (fun (dv : P.delivery) ->
      if dv.P.d_client >= 0 then
        match dv.P.d_output with
        | Some y ->
          Format.printf "  client %d (market %d, round %d): reserves -> (%s, %s)@."
            dv.P.d_client dv.P.d_machine dv.P.d_round (F.to_string y.(0))
            (F.to_string y.(1))
        | None -> Format.printf "  client %d: NO QUORUM@." dv.P.d_client)
    run.P.deliveries;

  Format.printf "@.%d submissions left in the pools (liveness: 0 expected if no round was skipped,@."
    run.P.leftover;
  Format.printf "a skipped round's trades execute under the next leader)@."
