(* Figure 2 of the paper, realized end to end: K = 2 state machines,
   a malicious node 2 that (a) equivocates in the consensus phase and
   (b) sends erroneous computation results in the execution phase.

   Figure 2 draws N = 3 for illustration; N = 3 has no error-correction
   slack (2b+1 <= N - d(K-1) forces b = 0), so we run the smallest
   fault-tolerant instantiation N = 5, b = 1 and let node 2 mount both
   attacks.  The consensus protocol (Dolev-Strong) neutralizes the
   split view, and Reed-Solomon decoding corrects the bad result.

   Run with:  dune exec examples/figure2.exe *)

module F = Csm_field.Fp.Default
module Params = Csm_core.Params
module P = Csm_core.Protocol.Make (F)
module E = P.E
module M = E.M

let fi = F.of_int

let () =
  let machine = M.bank () in
  let k = 2 and b = 1 and d = 1 in
  let n = 5 in
  let params = Params.make ~network:Params.Sync ~n ~k ~d ~b in
  let init = [| [| fi 10 |]; [| fi 20 |] |] in
  let engine = E.create ~machine ~params ~init in
  let cfg = P.default_config params in

  (* node 2: equivocates whenever it leads the consensus phase, and adds
     +1 to every coordinate of its execution-phase result *)
  let adv = P.lying_adversary [ 2 ] in

  Format.printf "Figure 2 scenario: K=2 machines, N=%d nodes, node 2 malicious@." n;
  Format.printf "initial balances: S_1 = 10, S_2 = 20@.@.";

  let workload r = [| [| fi (r + 1) |]; [| fi (10 * (r + 1)) |] |] in
  let outcomes = P.run cfg engine ~workload ~rounds:5 adv in

  List.iter
    (fun (o : P.round_outcome) ->
      let leader = o.P.round mod n in
      Format.printf "round %d (leader = node %d):@." o.P.round leader;
      (match o.P.consensus with
      | P.Agreed _ -> Format.printf "  consensus phase: agreed on commands@."
      | P.Skipped ->
        Format.printf
          "  consensus phase: node %d equivocated -> all honest nodes saw ⊥,@."
          leader;
        Format.printf "  round skipped consistently (Figure 2(a) attack defeated)@."
      | P.Disagreement -> Format.printf "  CONSENSUS VIOLATION (bug!)@.");
      if o.P.executed then begin
        (match o.P.decoded with
        | Some dec ->
          Format.printf
            "  execution phase: node 2's erroneous g_2 corrected by RS decoding%s@."
            (if List.mem 2 dec.E.error_nodes then " (error located at node 2)"
             else "");
          Array.iteri
            (fun m y ->
              Format.printf "    machine %d output %s delivered to client@." m
                (F.to_string y.(0)))
            dec.E.outputs
        | None -> ())
      end;
      Format.printf "@.")
    outcomes;

  let executed = List.filter (fun o -> o.P.executed) outcomes in
  Format.printf
    "%d/5 rounds executed (the round led by node 2 was skipped; liveness@."
    (List.length executed);
  Format.printf "resumes with the next honest leader — node 2 never caused@.";
  Format.printf "an inconsistency or a wrong client output)@."
