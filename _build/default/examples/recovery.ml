(* Node churn: crash, rejoin, regenerate.

   A CSM node's entire storage is one coded state S̃ᵢ = u(αᵢ).  Because
   the peers' coded states are themselves evaluations of the same
   degree-(K−1) polynomial u, a rejoining node regenerates its storage
   by Reed-Solomon-decoding u from any d(... K + 2b) peer reports — even
   when b of the peers lie about their states.  No trusted source and no
   full-state download is needed: the node fetches one field element per
   peer (the same bandwidth as CSM's per-round traffic).

   Run with:  dune exec examples/recovery.exe *)

module F = Csm_field.Fp.Default
module Params = Csm_core.Params
module E = Csm_core.Engine.Make (F)
module M = E.M

let fi = F.of_int

let () =
  let machine = M.bank () in
  let k = 3 and b = 2 in
  let n = Params.composite_degree ~k ~d:1 + (2 * b) + 1 + 2 in
  let params = Params.make ~network:Params.Sync ~n ~k ~d:1 ~b in
  let init = [| [| fi 100 |]; [| fi 200 |]; [| fi 300 |] |] in
  let engine = E.create ~machine ~params ~init in
  Format.printf "N=%d nodes, K=%d machines, b=%d liars tolerated@.@." n k b;

  (* run a couple of rounds so states have evolved *)
  for r = 1 to 2 do
    let commands = Array.init k (fun m -> [| fi (10 * r * (m + 1)) |]) in
    ignore (E.round engine ~commands ~byzantine:(fun _ -> false) ())
  done;

  (* node 4 crashes and loses its disk *)
  let victim = 4 in
  let lost = Array.copy (E.coded_state engine ~node:victim) in
  engine.E.coded_states.(victim) <- [| F.zero |];
  Format.printf "node %d crashed; its coded state %s is gone@." victim
    (F.to_string lost.(0));

  (* it rejoins and asks every peer for their coded state; peers 0 and 1
     are Byzantine and lie *)
  let reports =
    List.filter_map
      (fun i ->
        if i = victim then None
        else begin
          let s = E.coded_state engine ~node:i in
          let s = if i < b then Array.map (fun v -> F.add v (fi 7)) s else s in
          Some (i, s)
        end)
      (List.init n (fun i -> i))
  in
  Format.printf "rejoining with %d peer reports, %d of them lies...@."
    (List.length reports) b;
  let ok = E.recover_node engine ~node:victim ~reports in
  Format.printf "recovery %s; regenerated state = %s (expected %s)@."
    (if ok then "succeeded" else "FAILED")
    (F.to_string (E.coded_state engine ~node:victim).(0))
    (F.to_string lost.(0));
  assert (ok && F.equal (E.coded_state engine ~node:victim).(0) lost.(0));

  (* the recovered node participates in the next round as if nothing
     happened *)
  let commands = Array.init k (fun m -> [| fi (m + 1) |]) in
  let report = E.round engine ~commands ~byzantine:(fun i -> i < b) () in
  (match report.E.decoded with
  | Some dec ->
    Format.printf "@.next round executed; outputs:";
    Array.iter (fun y -> Format.printf " %s" (F.to_string y.(0))) dec.E.outputs;
    Format.printf "@."
  | None -> failwith "round failed");
  Format.printf
    "@.regeneration cost: one field element per peer — the coded-storage@.";
  Format.printf "analogue of repair bandwidth in regenerating codes ✓@."
