(* Sharded ledger: the blockchain motivation from the paper's
   introduction and Section 7.

   K shards of a ledger (each shard = one state machine holding an
   aggregate balance) run over N nodes.  We compare the two ways of
   scaling beyond full replication:

   - partial replication ("sharding"): each shard lives on a disjoint
     group of q = N/K nodes.  A dynamic adversary that concentrates its
     corruption budget on ONE group forges that shard's responses even
     though it controls far fewer than N/2 nodes overall;
   - Coded State Machine: every node holds one coded state of ALL
     shards; the same adversary's lies are corrected by decoding, and no
     concentration strategy helps (security μN is global).

   Run with:  dune exec examples/sharded_ledger.exe *)

module F = Csm_field.Fp.Default
module R = Csm_smr.Replication.Make (F)
module Params = Csm_core.Params
module E = Csm_core.Engine.Make (F)
module M = E.M

let fi = F.of_int

let () =
  let machine = M.bank () in
  let n = 12 and k = 3 in
  let q = n / k in
  (* the adversary corrupts 3 nodes: a majority of one group of 4, but
     only a quarter of the network *)
  let corrupted = [ 0; 1; 2 ] in
  let byz i = List.mem i corrupted in
  Format.printf "sharded ledger: N=%d nodes, K=%d shards, group size q=%d@." n
    k q;
  Format.printf "adversary corrupts nodes {0,1,2}: 3/12 of the network,@.";
  Format.printf "but 3/4 of shard 0's group under partial replication@.@.";

  let init = Array.init k (fun i -> [| fi (1000 * (i + 1)) |]) in
  let commands = Array.init k (fun i -> [| fi (100 * (i + 1)) |]) in

  (* --- partial replication --- *)
  let pr = R.Partial.create ~machine ~n ~k ~init in
  let b_group = R.security_partial ~n ~k `Sync in
  (* colluding corruption: all liars report the same forged balance *)
  let forge ~node:_ ~machine:_ _y = [| fi 1 |] in
  let outs =
    R.Partial.round pr ~commands ~byzantine:byz ~corruption:forge ~b:b_group ()
  in
  Format.printf "partial replication (clients accept %d matching votes):@."
    (b_group + 1);
  Array.iteri
    (fun m o ->
      match o with
      | Some y ->
        let expect = (1000 * (m + 1)) + (100 * (m + 1)) in
        let got = F.to_int y.(0) in
        Format.printf "  shard %d -> client sees balance %d %s@." m got
          (if got = expect then "(correct)" else "(FORGED!)")
      | None -> Format.printf "  shard %d -> no quorum@." m)
    outs;

  (* --- CSM on the same network against the same adversary --- *)
  let d = M.degree machine in
  let b_csm = Params.max_faults ~network:Params.Sync ~n ~k ~d in
  let params = Params.make ~network:Params.Sync ~n ~k ~d ~b:b_csm in
  let engine = E.create ~machine ~params ~init in
  let report =
    E.round engine ~commands ~byzantine:byz
      ~corruption:(fun ~node:_ _g -> [| fi 1; fi 1 |])
      ()
  in
  Format.printf "@.coded state machine (tolerates any %d corruptions):@."
    b_csm;
  (match report.E.decoded with
  | None -> Format.printf "  decoding failed (should not happen)@."
  | Some dec ->
    Array.iteri
      (fun m y ->
        let expect = (1000 * (m + 1)) + (100 * (m + 1)) in
        let got = F.to_int y.(0) in
        Format.printf "  shard %d -> client sees balance %d %s@." m got
          (if got = expect then "(correct)" else "(FORGED!)"))
      dec.E.outputs;
    Format.printf "  liars identified and corrected: nodes %s@."
      (String.concat "," (List.map string_of_int dec.E.error_nodes)));

  Format.printf
    "@.same network, same adversary budget: sharding lost shard 0,@.";
  Format.printf "CSM corrected every shard — no security/efficiency tradeoff.@."
