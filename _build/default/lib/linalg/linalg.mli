(** Dense linear algebra over a finite field: Gaussian elimination for
    Berlekamp–Welch, matrix–vector products for INTERMIX, Vandermonde
    builders for equations (8)/(9) of the paper. *)

module Field_intf = Csm_field.Field_intf

module Make (F : Field_intf.S) : sig
  type vec = F.t array
  type mat = F.t array array

  val rows : mat -> int
  val cols : mat -> int

  val make_mat : int -> int -> F.t -> mat
  val init_mat : int -> int -> (int -> int -> F.t) -> mat
  val copy_mat : mat -> mat
  val identity : int -> mat
  val transpose : mat -> mat

  val mat_vec : mat -> vec -> vec
  val dot : vec -> vec -> F.t

  val mat_mul : mat -> mat -> mat
  (** @raise Invalid_argument on dimension mismatch. *)

  val vec_add : vec -> vec -> vec
  val vec_sub : vec -> vec -> vec
  val vec_scale : F.t -> vec -> vec
  val vec_equal : vec -> vec -> bool

  val row_reduce : mat -> int list
  (** In-place reduction to reduced row-echelon form; returns pivot
      columns in order. *)

  val rank : mat -> int

  val solve : mat -> vec -> vec option
  (** [solve a b] returns some x with A·x = b ([None] if inconsistent);
      free variables of underdetermined systems are set to zero. *)

  val inverse : mat -> mat option

  val vandermonde : vec -> cols:int -> mat
  (** [vandermonde points ~cols] is the matrix [xᵢʲ]. *)

  val random_mat : Csm_rng.t -> int -> int -> mat
  val random_vec : Csm_rng.t -> int -> vec

  val pp_vec : Format.formatter -> vec -> unit
  val pp_mat : Format.formatter -> mat -> unit
end
