(* Dense linear algebra over a finite field.

   Matrices are arrays of rows.  Gaussian elimination is the engine of
   the Berlekamp–Welch decoder; matrix–vector products are the object
   INTERMIX verifies; Vandermonde builders produce the evaluation
   matrices of equations (8) and (9) in the paper. *)

module Field_intf = Csm_field.Field_intf

module Make (F : Field_intf.S) = struct
  type vec = F.t array
  type mat = F.t array array

  let rows (m : mat) = Array.length m
  let cols (m : mat) = if Array.length m = 0 then 0 else Array.length m.(0)

  let make_mat r c v : mat = Array.init r (fun _ -> Array.make c v)

  let init_mat r c f : mat = Array.init r (fun i -> Array.init c (fun j -> f i j))

  let copy_mat (m : mat) : mat = Array.map Array.copy m

  let identity n : mat =
    init_mat n n (fun i j -> if i = j then F.one else F.zero)

  let transpose (m : mat) : mat =
    init_mat (cols m) (rows m) (fun i j -> m.(j).(i))

  let mat_vec (m : mat) (x : vec) : vec =
    Array.map
      (fun row ->
        let acc = ref F.zero in
        Array.iteri (fun j a -> acc := F.add !acc (F.mul a x.(j))) row;
        !acc)
      m

  let dot (a : vec) (b : vec) =
    let acc = ref F.zero in
    Array.iteri (fun i x -> acc := F.add !acc (F.mul x b.(i))) a;
    !acc

  let mat_mul (a : mat) (b : mat) : mat =
    let n = rows a and m = cols b and k = cols a in
    if k <> rows b then invalid_arg "Linalg.mat_mul: dimension mismatch";
    init_mat n m (fun i j ->
        let acc = ref F.zero in
        for l = 0 to k - 1 do
          acc := F.add !acc (F.mul a.(i).(l) b.(l).(j))
        done;
        !acc)

  let vec_add (a : vec) (b : vec) : vec = Array.mapi (fun i x -> F.add x b.(i)) a
  let vec_sub (a : vec) (b : vec) : vec = Array.mapi (fun i x -> F.sub x b.(i)) a
  let vec_scale c (a : vec) : vec = Array.map (F.mul c) a

  let vec_equal (a : vec) (b : vec) =
    Array.length a = Array.length b
    && (let ok = ref true in
        Array.iteri (fun i x -> if not (F.equal x b.(i)) then ok := false) a;
        !ok)

  (* In-place row reduction to row-echelon form of [a | b] where b may be
     empty.  Returns the list of pivot columns. *)
  let row_reduce (m : mat) =
    let r = rows m and c = cols m in
    let pivots = ref [] in
    let row = ref 0 in
    let col = ref 0 in
    while !row < r && !col < c do
      (* find a pivot in this column *)
      let piv = ref (-1) in
      for i = !row to r - 1 do
        if !piv < 0 && not (F.is_zero m.(i).(!col)) then piv := i
      done;
      if !piv < 0 then incr col
      else begin
        let tmp = m.(!row) in
        m.(!row) <- m.(!piv);
        m.(!piv) <- tmp;
        let inv = F.inv m.(!row).(!col) in
        for j = !col to c - 1 do
          m.(!row).(j) <- F.mul m.(!row).(j) inv
        done;
        for i = 0 to r - 1 do
          if i <> !row && not (F.is_zero m.(i).(!col)) then begin
            let f = m.(i).(!col) in
            for j = !col to c - 1 do
              m.(i).(j) <- F.sub m.(i).(j) (F.mul f m.(!row).(j))
            done
          end
        done;
        pivots := !col :: !pivots;
        incr row;
        incr col
      end
    done;
    List.rev !pivots

  let rank (m : mat) =
    let m = copy_mat m in
    List.length (row_reduce m)

  (* Solve A x = b.  Returns [None] when inconsistent; when the system is
     underdetermined, free variables are set to zero (any solution is
     acceptable for Berlekamp–Welch). *)
  let solve (a : mat) (b : vec) : vec option =
    let r = rows a and c = cols a in
    if Array.length b <> r then invalid_arg "Linalg.solve: dimension mismatch";
    let aug = init_mat r (c + 1) (fun i j -> if j < c then a.(i).(j) else b.(i)) in
    let pivots = row_reduce aug in
    (* Inconsistent iff some pivot lands in the augmented column. *)
    if List.exists (fun p -> p = c) pivots then None
    else begin
      let x = Array.make c F.zero in
      List.iteri
        (fun row_idx col_idx -> x.(col_idx) <- aug.(row_idx).(c))
        pivots;
      (* Correct pivot variables for free-variable contributions: with
         free vars set to zero, the echelon rows give the pivot values
         directly minus Σ (coeff · free) = value, so nothing to adjust. *)
      Some x
    end

  let inverse (m : mat) : mat option =
    let n = rows m in
    if cols m <> n then invalid_arg "Linalg.inverse: not square";
    let aug = init_mat n (2 * n) (fun i j ->
        if j < n then m.(i).(j)
        else if j - n = i then F.one
        else F.zero)
    in
    let pivots = row_reduce aug in
    if List.length pivots <> n || List.exists (fun p -> p >= n) pivots then None
    else Some (init_mat n n (fun i j -> aug.(i).(n + j)))

  (* Vandermonde matrix [xᵢ^j] for i < rows, j < cols: the matrices of
     equations (8) and (9) in the paper. *)
  let vandermonde (points : vec) ~cols : mat =
    Array.map
      (fun x ->
        let row = Array.make cols F.one in
        for j = 1 to cols - 1 do
          row.(j) <- F.mul row.(j - 1) x
        done;
        row)
      points

  let random_mat rng r c : mat =
    init_mat r c (fun _ _ -> F.random rng)

  let random_vec rng n : vec = Array.init n (fun _ -> F.random rng)

  let pp_vec ppf (v : vec) =
    Format.fprintf ppf "[@[%a@]]"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ") F.pp)
      (Array.to_list v)

  let pp_mat ppf (m : mat) =
    Format.fprintf ppf "@[<v>%a@]"
      (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_vec)
      (Array.to_list m)
end
