lib/linalg/linalg.mli: Csm_field Csm_rng Format
