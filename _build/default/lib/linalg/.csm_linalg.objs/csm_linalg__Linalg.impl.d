lib/linalg/linalg.ml: Array Csm_field Format List
