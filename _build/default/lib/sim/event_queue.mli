(** Deterministic binary min-heap of timestamped events (FIFO among
    equal timestamps). *)

type 'a t

val create : dummy:'a -> 'a t
(** [dummy] fills unused array slots; it is never returned. *)

val is_empty : 'a t -> bool
val length : 'a t -> int

val push : 'a t -> time:int -> 'a -> unit

val pop : 'a t -> (int * 'a) option
(** Earliest event (insertion order among ties). *)

val peek_time : 'a t -> int option
