lib/sim/net.mli:
