lib/sim/trace.mli: Net
