lib/sim/net.ml: Array Event_queue
