lib/sim/trace.ml: Hashtbl List Net Printf
