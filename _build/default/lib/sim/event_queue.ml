(* Binary min-heap of timestamped events.

   Ties are broken by insertion sequence number so that simulation runs
   are fully deterministic. *)

type 'a t = {
  mutable heap : (int * int * 'a) array;  (* (time, seq, payload) *)
  mutable size : int;
  mutable next_seq : int;
  dummy : 'a;
}

let create ~dummy = { heap = Array.make 16 (0, 0, dummy); size = 0; next_seq = 0; dummy }

let is_empty t = t.size = 0
let length t = t.size

let before (t1, s1, _) (t2, s2, _) = t1 < t2 || (t1 = t2 && s1 < s2)

let grow t =
  let bigger = Array.make (2 * Array.length t.heap) (0, 0, t.dummy) in
  Array.blit t.heap 0 bigger 0 t.size;
  t.heap <- bigger

let push t ~time payload =
  if t.size = Array.length t.heap then grow t;
  let item = (time, t.next_seq, payload) in
  t.next_seq <- t.next_seq + 1;
  let i = ref t.size in
  t.size <- t.size + 1;
  t.heap.(!i) <- item;
  (* sift up *)
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if before t.heap.(!i) t.heap.(parent) then begin
      let tmp = t.heap.(parent) in
      t.heap.(parent) <- t.heap.(!i);
      t.heap.(!i) <- tmp;
      i := parent
    end
    else continue := false
  done

let pop t =
  if t.size = 0 then None
  else begin
    let (time, _, payload) = t.heap.(0) in
    t.size <- t.size - 1;
    t.heap.(0) <- t.heap.(t.size);
    (* sift down *)
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < t.size && before t.heap.(l) t.heap.(!smallest) then smallest := l;
      if r < t.size && before t.heap.(r) t.heap.(!smallest) then smallest := r;
      if !smallest <> !i then begin
        let tmp = t.heap.(!smallest) in
        t.heap.(!smallest) <- t.heap.(!i);
        t.heap.(!i) <- tmp;
        i := !smallest
      end
      else continue := false
    done;
    Some (time, payload)
  end

let peek_time t = if t.size = 0 then None else (let (time, _, _) = t.heap.(0) in Some time)
