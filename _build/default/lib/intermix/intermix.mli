(** INTERMIX (Section 6.1, Algorithm 1): information-theoretically
    verifiable matrix–vector multiplication with a single worker, a
    random auditor committee, and constant-time commoner verification. *)

module Field_intf = Csm_field.Field_intf
module Scope = Csm_metrics.Scope

module Make (F : Field_intf.S) : sig
  module M : module type of Csm_linalg.Linalg.Make (F)

  type query = { row : int; lo : int; hi : int }
  (** The inner product A_row[lo..hi)·X[lo..hi). *)

  type worker = {
    claimed : F.t array;  (** Ŷ as broadcast *)
    answer : query -> F.t;  (** oracle for bisection queries *)
  }

  val true_answer : M.mat -> M.vec -> query -> F.t

  val honest_worker : ?scope:Scope.t -> ?role:string -> M.mat -> M.vec -> worker

  type strategy =
    | Blatant  (** wrong claim, honest answers: caught at level 1 *)
    | Adaptive
        (** splits its lie consistently down the bisection: caught only
            at a singleton claim — the worst case of log K rounds *)

  val malicious_worker :
    ?scope:Scope.t ->
    ?role:string ->
    strategy:strategy ->
    bad_rows:int list ->
    offset:F.t ->
    M.mat ->
    M.vec ->
    worker

  type challenge = {
    c_query : query;
    c_claim : F.t;
    c_left : F.t;
    c_right : F.t;
    c_mid : int;
  }

  type alert =
    | Sum_mismatch of challenge
    | Leaf_mismatch of { l_query : query; l_claim : F.t }

  type audit_result = Accept | Alert of alert

  type audit_report = { result : audit_result; interactions : int }

  val audit :
    ?scope:Scope.t -> ?role:string -> worker -> M.mat -> M.vec -> audit_report
  (** Algorithm 1: recompute A·X; on mismatch, interactively localize the
      fraud in ≤ ⌈log₂ K⌉ bisection rounds. *)

  val commoner_check :
    ?scope:Scope.t -> ?role:string -> M.mat -> M.vec -> alert -> bool
  (** O(1) validity check of an alert: one addition or one product. *)

  type verdict = {
    accepted : bool;
    valid_alerts : alert list;
    dismissed_alerts : alert list;
    max_interactions : int;
  }

  val run_protocol :
    ?scope:Scope.t ->
    worker ->
    M.mat ->
    M.vec ->
    auditors:int list ->
    dishonest_auditor:(int -> alert option) ->
    verdict
  (** Full INTERMIX instance: honest auditors run Algorithm 1; dishonest
      ones may inject bogus alerts (dismissed by commoners). *)

  val committee_size : epsilon:float -> mu:float -> int
  (** J = ⌈log ε / log μ⌉: Pr[no honest auditor] ≤ ε. *)

  val elect_self : Csm_rng.t -> n:int -> j:int -> int list
  (** Local-coin self-election with probability J/N each. *)

  val elect_vrf :
    Csm_crypto.Auth.keyring ->
    seed:string ->
    n:int ->
    j:int ->
    (int * Csm_crypto.Auth.vrf_proof) list
  (** Secret VRF-based election (Section 6.1, dynamic-adversary
      hardening). *)

  val verify_vrf_election :
    Csm_crypto.Auth.keyring ->
    seed:string ->
    n:int ->
    j:int ->
    int * Csm_crypto.Auth.vrf_proof ->
    bool

  val worst_case_complexity : n:int -> k:int -> j:int -> int
  (** The Section-6.1 closed form
      (J+1)·c(AX) + 8JK + 3J·log K + N − J − 1 with c(AX) = 2NK. *)

  (** {2 Verifiable polynomial evaluation (INTERPOL [42])} *)

  type eval_instance

  val eval_instance : coeffs:F.t array -> points:F.t array -> eval_instance
  (** Batch evaluation of Σ cᵢ zⁱ at the given points, as an INTERMIX
      matrix–vector instance (Vandermonde reduction). *)

  val eval_honest_worker :
    ?scope:Scope.t -> ?role:string -> eval_instance -> worker

  val eval_claimed_values : worker -> F.t array

  val verify_eval :
    ?scope:Scope.t ->
    eval_instance ->
    worker ->
    auditors:int list ->
    dishonest_auditor:(int -> alert option) ->
    verdict
end
