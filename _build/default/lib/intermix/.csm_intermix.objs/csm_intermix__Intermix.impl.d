lib/intermix/intermix.ml: Array Csm_crypto Csm_field Csm_linalg Csm_metrics Csm_rng List
