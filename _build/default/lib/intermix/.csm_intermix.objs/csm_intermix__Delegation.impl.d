lib/intermix/delegation.ml: Array Csm_core Csm_field Csm_metrics Csm_poly Csm_rng Csm_rs Intermix List
