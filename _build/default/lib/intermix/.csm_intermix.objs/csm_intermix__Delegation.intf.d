lib/intermix/delegation.mli: Csm_core Csm_field Csm_metrics Csm_rng Intermix
