(** Centralized encoding/decoding with INTERMIX verification
    (Section 6.2): the throughput-scaling execution path of Theorem 1. *)

module Field_intf = Csm_field.Field_intf
module Scope = Csm_metrics.Scope
module Params = Csm_core.Params

module Make (F : Field_intf.S) : sig
  module E : module type of Csm_core.Engine.Make (F)
  module IX : module type of Intermix.Make (F)

  type worker_behavior =
    | Honest
    | Lying_encode of { node : int; offset : F.t }
    | Lying_decode of { coeff : int; offset : F.t }
    | Lying_update of { node : int; offset : F.t }

  type fraud_stage = Encode | Decode_cert | Evaluate | Update

  type outcome = {
    decoded : E.decoded option;  (** None iff aborted (fraud or overload) *)
    fraud : fraud_stage option;
    max_interactions : int;
  }

  val tau_threshold : n:int -> k':int -> int
  (** ⌈(N+K'+1)/2⌉: minimum agreement-set size of equation (9). *)

  val round :
    ?scope:Scope.t ->
    ?behavior:worker_behavior ->
    ?batch:bool ->
    ?challenge_rng:Csm_rng.t ->
    ?corruption:E.corruption ->
    E.t ->
    commands:F.t array array ->
    byzantine:(int -> bool) ->
    worker:int ->
    committee:int list ->
    unit ->
    outcome
  (** One delegated round: fast worker coding at every stage, each
      matrix–vector identity audited by the committee; on an accepted
      round the engine's coded states advance.  With [batch], the
      shared-matrix stages (encode / evaluate / update) verify ONE
      random linear combination of the coordinate identities instead of
      each one (Schwartz–Zippel soundness error ≤ dim/|F|); the
      per-coordinate τ-certificates of equation (9) are unaffected. *)
end
