(* Pipelining experiment (Section 2.2 remark).

   The paper's throughput metric ignores the consensus phase because
   "the consensus phase of later rounds can be performed in parallel
   with the execution phase of the current round".  We validate that
   modeling assumption: measure the simulated duration of each phase,
   then compare the makespan of R rounds executed sequentially
   (consensus_t ; execution_t ; consensus_{t+1} ; ...) against the
   two-stage pipeline (consensus_{t+1} ∥ execution_t), using the
   standard pipeline recurrence:

     finish_c(0)   = c₀
     finish_c(t)   = finish_c(t−1) + c_t          (consensus instances
                                                    serialized on their
                                                    own lane)
     start_e(t)    = max(finish_c(t), finish_e(t−1))
     finish_e(t)   = start_e(t) + e_t

   If execution dominates (e ≥ c), pipelined makespan → c₀ + Σ e_t and
   per-round throughput is execution-bound, which is exactly what the
   paper's λ measures. *)

module F = Csm_field.Fp.Default
module P = Csm_core.Protocol.Make (F)
module E = P.E
module M = E.M
module Params = Csm_core.Params
module DS = Csm_consensus.Dolev_strong
module Net = Csm_sim.Net

type result = {
  rounds : int;
  consensus_time : int;  (* per-round, simulated ticks *)
  execution_time : int;
  sequential_makespan : int;
  pipelined_makespan : int;
  speedup : float;
}

(* Measure one consensus instance's duration on the simulator. *)
let measure_consensus cfg =
  let p = cfg.P.params in
  let ds_cfg =
    {
      DS.n = p.Params.n;
      f = p.Params.b;
      leader = 0;
      delta = cfg.P.delta;
      instance = "pipeline-measure";
      keyring = cfg.P.keyring;
    }
  in
  let { DS.stats; _ } = DS.run ds_cfg ~proposal:"w" () in
  stats.Net.end_time

(* Measure one execution phase's duration (time of the last honest
   decode). *)
let measure_execution cfg engine ~commands =
  let n = cfg.P.params.Params.n in
  let times = Array.make n 0 in
  ignore
    (P.execution_phase ~decode_times:times cfg engine ~commands
       P.passive_adversary);
  Array.fold_left max 0 times

let run ?(rounds = 10) ?(n = 11) ?(k = 3) ?(d = 2) ?(b = 2) () =
  let machine = M.degree_machine d in
  let params = Params.make ~network:Params.Sync ~n ~k ~d ~b in
  let rng = Csm_rng.create 0x919E in
  let init =
    Array.init k (fun _ ->
        Array.init machine.M.state_dim (fun _ -> F.random rng))
  in
  let engine = E.create ~machine ~params ~init in
  let cfg = P.default_config params in
  let commands =
    Array.init k (fun _ ->
        Array.init machine.M.input_dim (fun _ -> F.random rng))
  in
  let c = measure_consensus cfg in
  let e = measure_execution cfg engine ~commands in
  let sequential = rounds * (c + e) in
  (* pipeline recurrence with constant per-round phases *)
  let finish_c = Array.make rounds 0 in
  let finish_e = Array.make rounds 0 in
  for t = 0 to rounds - 1 do
    finish_c.(t) <- (if t = 0 then c else finish_c.(t - 1) + c);
    let start_e =
      max finish_c.(t) (if t = 0 then 0 else finish_e.(t - 1))
    in
    finish_e.(t) <- start_e + e
  done;
  let pipelined = finish_e.(rounds - 1) in
  {
    rounds;
    consensus_time = c;
    execution_time = e;
    sequential_makespan = sequential;
    pipelined_makespan = pipelined;
    speedup = float_of_int sequential /. float_of_int pipelined;
  }

let pp ppf r =
  Format.fprintf ppf
    "rounds=%d  consensus=%d ticks  execution=%d ticks  sequential=%d  pipelined=%d  speedup=%.2fx"
    r.rounds r.consensus_time r.execution_time r.sequential_makespan
    r.pipelined_makespan r.speedup
