lib/harness/scaling.ml: Array Csm_core Csm_field Csm_metrics Csm_poly Csm_rng Format List Table1
