lib/harness/pipeline.ml: Array Csm_consensus Csm_core Csm_field Csm_rng Csm_sim Format
