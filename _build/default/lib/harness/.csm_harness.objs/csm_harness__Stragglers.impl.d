lib/harness/stragglers.ml: Array Csm_core Csm_field Csm_rng Csm_sim Format List
