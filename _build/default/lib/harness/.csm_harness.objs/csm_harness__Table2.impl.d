lib/harness/table2.ml: Array Csm_consensus Csm_core Csm_crypto Csm_field Csm_rng Csm_sim Format List Printf String
