lib/harness/report.ml: Csm_smr Filename Fun List Printf Scaling Stragglers String Sys Table1 Table2
