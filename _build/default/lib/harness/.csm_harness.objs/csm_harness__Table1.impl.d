lib/harness/table1.ml: Array Csm_core Csm_field Csm_intermix Csm_metrics Csm_rng Csm_smr Format List
