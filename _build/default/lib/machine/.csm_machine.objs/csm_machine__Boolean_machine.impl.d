lib/machine/boolean_machine.ml: Array Csm_field Csm_mvpoly Machine Printf
