lib/machine/boolean_machine.mli: Csm_field Csm_mvpoly Machine
