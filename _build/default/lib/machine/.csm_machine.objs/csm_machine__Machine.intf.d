lib/machine/machine.mli: Csm_field Csm_mvpoly Csm_rng Format
