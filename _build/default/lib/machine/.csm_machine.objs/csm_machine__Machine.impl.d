lib/machine/machine.ml: Array Csm_field Csm_mvpoly Format List Printf
