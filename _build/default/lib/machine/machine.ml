(* Deterministic state machines with polynomial transition functions.

   A machine is (X, Y, S, f) with S = F^{state_dim}, X = F^{input_dim},
   Y = F^{output_dim} and f given componentwise by multivariate
   polynomials over the state_dim + input_dim variables
   (variables 0..state_dim-1 are the state, the rest the input).
   The total degree d of f is the parameter that drives every CSM bound
   (Theorems 1 and 2). *)

module Field_intf = Csm_field.Field_intf

module Make (F : Field_intf.S) = struct
  module Mv = Csm_mvpoly.Mvpoly.Make (F)

  type t = {
    name : string;
    state_dim : int;
    input_dim : int;
    output_dim : int;
    next_state : Mv.t array;  (* state_dim polynomials *)
    output : Mv.t array;  (* output_dim polynomials *)
  }

  let create ~name ~state_dim ~input_dim ~output_dim ~next_state ~output =
    let vars = state_dim + input_dim in
    if Array.length next_state <> state_dim then
      invalid_arg "Machine.create: next_state arity";
    if Array.length output <> output_dim then
      invalid_arg "Machine.create: output arity";
    Array.iter
      (fun p ->
        if Mv.vars p <> vars then
          invalid_arg "Machine.create: polynomial variable count mismatch")
      next_state;
    Array.iter
      (fun p ->
        if Mv.vars p <> vars then
          invalid_arg "Machine.create: polynomial variable count mismatch")
      output;
    { name; state_dim; input_dim; output_dim; next_state; output }

  let degree t =
    let d =
      Array.fold_left
        (fun acc p -> max acc (Mv.total_degree p))
        0
        (Array.append t.next_state t.output)
    in
    max d 1

  let step t ~state ~input =
    if Array.length state <> t.state_dim then
      invalid_arg "Machine.step: state arity";
    if Array.length input <> t.input_dim then
      invalid_arg "Machine.step: input arity";
    let point = Array.append state input in
    ( Array.map (fun p -> Mv.eval p point) t.next_state,
      Array.map (fun p -> Mv.eval p point) t.output )

  (* Run one machine for several rounds; returns outputs and final state. *)
  let run t ~state inputs =
    let outputs = ref [] in
    let s = ref state in
    List.iter
      (fun x ->
        let s', y = step t ~state:!s ~input:x in
        s := s';
        outputs := y :: !outputs)
      inputs;
    (List.rev !outputs, !s)

  (* Uncoded reference execution of K independent copies — the ground
     truth that every replication/coding scheme must reproduce. *)
  let run_fleet t ~states ~commands =
    let k = Array.length states in
    if Array.length commands <> k then
      invalid_arg "Machine.run_fleet: command arity";
    let next = Array.make k [||] and out = Array.make k [||] in
    for i = 0 to k - 1 do
      let s', y = step t ~state:states.(i) ~input:commands.(i) in
      next.(i) <- s';
      out.(i) <- y
    done;
    (next, out)

  (* ----- Concrete machines used across examples, tests and benches ----- *)

  (* Bank ledger (degree 1): one account per machine.
     state  = [balance]
     input  = [delta]           (deposit if positive field element)
     s'     = s + delta
     y      = s + delta         (new balance receipt)               *)
  let bank () =
    let vars = 2 in
    let s = Mv.var vars 0 and x = Mv.var vars 1 in
    let s' = Mv.add s x in
    create ~name:"bank" ~state_dim:1 ~input_dim:1 ~output_dim:1
      ~next_state:[| s' |] ~output:[| s' |]

  (* Interest market (degree 2): multiplicative update.
     state  = [position]
     input  = [rate]
     s'     = s + s·rate       (position accrues interest)
     y      = s·rate           (interest paid this round)           *)
  let interest_market () =
    let vars = 2 in
    let s = Mv.var vars 0 and x = Mv.var vars 1 in
    let sx = Mv.mul s x in
    create ~name:"interest-market" ~state_dim:1 ~input_dim:1 ~output_dim:1
      ~next_state:[| Mv.add s sx |] ~output:[| sx |]

  (* Cubic accumulator (degree 3): a simple polynomial commitment-style
     accumulator.
     state  = [acc]
     input  = [v]
     s'     = acc + v³
     y      = acc + v³                                               *)
  let cubic_accumulator () =
    let vars = 2 in
    let s = Mv.var vars 0 and x = Mv.var vars 1 in
    let s' = Mv.add s (Mv.pow x 3) in
    create ~name:"cubic-accumulator" ~state_dim:1 ~input_dim:1 ~output_dim:1
      ~next_state:[| s' |] ~output:[| s' |]

  (* Two-asset quadratic market (degree 2, multi-dimensional state):
     state = [reserve_a; reserve_b], input = [trade_a; trade_b]
     a' = a + trade_a
     b' = b + trade_b + trade_a·trade_b   (quadratic slippage term)
     y  = [a'; b']                                                    *)
  let pair_market () =
    let vars = 4 in
    let a = Mv.var vars 0
    and b = Mv.var vars 1
    and ta = Mv.var vars 2
    and tb = Mv.var vars 3 in
    let a' = Mv.add a ta in
    let b' = Mv.add (Mv.add b tb) (Mv.mul ta tb) in
    create ~name:"pair-market" ~state_dim:2 ~input_dim:2 ~output_dim:2
      ~next_state:[| a'; b' |] ~output:[| a'; b' |]

  (* Parametric machine of exact degree d, used by the scaling sweeps:
     s' = s + x^d, y = s·x + x (degree d in the state update when d≥2,
     and ensures the composite polynomial really reaches degree d·(K−1)). *)
  let degree_machine d =
    if d < 1 then invalid_arg "Machine.degree_machine: d >= 1";
    let vars = 2 in
    let s = Mv.var vars 0 and x = Mv.var vars 1 in
    let s' = Mv.add s (Mv.pow x d) in
    let y = Mv.add (Mv.mul s x) x in
    let y = if d = 1 then Mv.add s x else y in
    create
      ~name:(Printf.sprintf "degree-%d" d)
      ~state_dim:1 ~input_dim:1 ~output_dim:1 ~next_state:[| s' |]
      ~output:[| y |]

  (* Register bank with selector (degree 2): [slots] registers per
     machine; the input carries a one-hot selector vector and a value.
     Selected register is overwritten; the output echoes the previous
     value of the selected register:
       sᵢ' = sᵢ + selᵢ·(v − sᵢ)
       y   = Σᵢ selᵢ·sᵢ
     (With a well-formed one-hot selector this is a key-value store; on
     arbitrary field inputs it is still a degree-2 polynomial machine,
     which is all CSM needs.) *)
  let register_bank ~slots =
    if slots < 1 then invalid_arg "Machine.register_bank: slots >= 1";
    let vars = slots + slots + 1 in
    (* vars: 0..slots-1 state; slots..2*slots-1 selector; 2*slots value *)
    let s i = Mv.var vars i in
    let sel i = Mv.var vars (slots + i) in
    let v = Mv.var vars (2 * slots) in
    let next_state =
      Array.init slots (fun i ->
          Mv.add (s i) (Mv.mul (sel i) (Mv.sub v (s i))))
    in
    let output =
      [|
        Array.to_list (Array.init slots (fun i -> Mv.mul (sel i) (s i)))
        |> List.fold_left Mv.add (Mv.zero vars);
      |]
    in
    create
      ~name:(Printf.sprintf "register-bank-%d" slots)
      ~state_dim:slots ~input_dim:(slots + 1) ~output_dim:1 ~next_state
      ~output

  (* One-hot command for the register bank: write [value] to [slot]. *)
  let register_write ~slots ~slot value =
    if slot < 0 || slot >= slots then invalid_arg "Machine.register_write";
    Array.init (slots + 1) (fun i ->
        if i < slots then (if i = slot then F.one else F.zero)
        else value)

  (* Random machine for property tests. *)
  let random rng ~state_dim ~input_dim ~output_dim ~degree:d ~terms =
    let vars = state_dim + input_dim in
    let p () = Mv.random rng ~vars ~degree:d ~terms in
    create
      ~name:(Printf.sprintf "random-d%d" d)
      ~state_dim ~input_dim ~output_dim
      ~next_state:(Array.init state_dim (fun _ -> p ()))
      ~output:(Array.init output_dim (fun _ -> p ()))

  let pp ppf t =
    Format.fprintf ppf "@[<v>machine %s: S=F^%d, X=F^%d, Y=F^%d, degree %d@]"
      t.name t.state_dim t.input_dim t.output_dim (degree t)
end
