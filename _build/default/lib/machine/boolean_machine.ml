(* Boolean state machines via the Appendix-A construction.

   A machine over bits is lifted to GF(2^m): each state/input bit is
   embedded (0 ↦ 0, 1 ↦ 1) and each transition bit-function becomes a
   multivariate polynomial (Zou's construction).  The resulting machine
   is an ordinary polynomial machine that CSM can code — the degree is
   the number of variables of the widest bit-function. *)

module Field_intf = Csm_field.Field_intf

module Make (G : Field_intf.S) = struct
  module B = Csm_mvpoly.Boolean.Make (G)
  module C = Csm_mvpoly.Circuit.Make (G)
  module M = Machine.Make (G)

  (* Build a machine from gate-level circuits: wires 0..state_bits-1 are
     the current state bits, the rest the input bits.  Compiles the DAG
     (polynomial degree bounded by the circuits' AND-depth, not by the
     bit count as in the truth-table construction). *)
  let of_circuit ~name ~state_bits ~input_bits
      ~(next : Csm_mvpoly.Circuit.gate array)
      ~(outs : Csm_mvpoly.Circuit.gate array) =
    let vars = state_bits + input_bits in
    let all = Array.append next outs in
    let polys = C.compile_all ~vars all in
    let nb = Array.length next in
    M.create ~name ~state_dim:state_bits ~input_dim:input_bits
      ~output_dim:(Array.length outs)
      ~next_state:(Array.sub polys 0 nb)
      ~output:(Array.sub polys nb (Array.length outs))

  (* Lift a vector of Boolean functions into a polynomial machine:
     [next_bits.(i)] computes next-state bit i from all state+input bits,
     and [out_bits.(j)] computes output bit j. *)
  let lift ~name ~state_bits ~input_bits ~next_bits ~out_bits =
    let n = state_bits + input_bits in
    let next_state = Array.map (fun f -> B.of_function ~n f) next_bits in
    let output = Array.map (fun f -> B.of_function ~n f) out_bits in
    M.create ~name ~state_dim:state_bits ~input_dim:input_bits
      ~output_dim:(Array.length out_bits) ~next_state ~output

  (* Majority register: one state bit, two input bits; the state moves to
     the majority of (state, in₁, in₂); output is the new state.  Over
     GF(2), majority(a,b,c) = ab + bc + ca, so the lifted machine has
     degree 2 (the construction's cubic terms cancel). *)
  let majority_register () =
    let maj (a : bool array) =
      let c = Array.fold_left (fun c b -> if b then c + 1 else c) 0 a in
      c >= 2
    in
    lift ~name:"majority-register" ~state_bits:1 ~input_bits:2
      ~next_bits:[| maj |]
      ~out_bits:[| maj |]

  (* Toggle latch: state bit flips when input bit 0 is set AND input
     bit 1 (enable) is set; output is the state after the update.
     next = s XOR (x₀ AND x₁), a degree-2 polynomial. *)
  let toggle_latch () =
    let next (v : bool array) =
      let s = v.(0) and x0 = v.(1) and x1 = v.(2) in
      s <> (x0 && x1)
    in
    lift ~name:"toggle-latch" ~state_bits:1 ~input_bits:2 ~next_bits:[| next |]
      ~out_bits:[| next |]

  (* Ripple counter with enable: [bits] state bits, one input bit.
     When the input is set the counter increments modulo 2^bits:
       next₀ = s₀ XOR en
       nextᵢ = sᵢ XOR (en AND s₀ AND … AND sᵢ₋₁)
     Output: the carry out of the top bit (overflow indicator).
     Degree grows with the width — a natural family for exercising the
     Appendix-A path at d = 2..bits+1. *)
  let ripple_counter ~bits =
    if bits < 1 || bits > 4 then
      invalid_arg "Boolean_machine.ripple_counter: bits in [1,4]";
    let next i (v : bool array) =
      (* v = state bits 0..bits-1, then enable at index bits *)
      let en = v.(bits) in
      let carry = ref en in
      for j = 0 to i - 1 do
        carry := !carry && v.(j)
      done;
      v.(i) <> !carry
    in
    let overflow (v : bool array) =
      let en = v.(bits) in
      let all = ref en in
      for j = 0 to bits - 1 do
        all := !all && v.(j)
      done;
      !all
    in
    lift
      ~name:(Printf.sprintf "ripple-counter-%d" bits)
      ~state_bits:bits ~input_bits:1
      ~next_bits:(Array.init bits next)
      ~out_bits:[| overflow |]

  (* Pack an integer into state bits (LSB first) and back. *)
  let bits_of_int ~bits v = Array.init bits (fun i -> (v lsr i) land 1 = 1)

  let int_of_bits (a : bool array) =
    let v = ref 0 in
    Array.iteri (fun i b -> if b then v := !v lor (1 lsl i)) a;
    !v

  (* Reference bit-level execution, for validating the lifted machine. *)
  let step_bits ~next_bits ~out_bits (state : bool array) (input : bool array)
      =
    let v = Array.append state input in
    ( Array.map (fun f -> f v) next_bits,
      Array.map (fun f -> f v) out_bits )

  let embed_bits bits = Array.map (fun b -> B.embed_bit b) bits

  let to_bits (v : G.t array) =
    Array.map
      (fun x ->
        if G.is_zero x then false
        else if G.equal x G.one then true
        else failwith "Boolean_machine.to_bits: non-bit field element")
      v
end
