(** Deterministic state machines with multivariate-polynomial transition
    functions — the computation model of Section 2, restricted (as in
    Section 4) to polynomials of constant total degree d. *)

module Field_intf = Csm_field.Field_intf

module Make (F : Field_intf.S) : sig
  module Mv : module type of Csm_mvpoly.Mvpoly.Make (F)

  type t = {
    name : string;
    state_dim : int;
    input_dim : int;
    output_dim : int;
    next_state : Mv.t array;
    output : Mv.t array;
  }

  val create :
    name:string ->
    state_dim:int ->
    input_dim:int ->
    output_dim:int ->
    next_state:Mv.t array ->
    output:Mv.t array ->
    t
  (** @raise Invalid_argument on arity mismatches. *)

  val degree : t -> int
  (** Total degree d of the transition function (at least 1). *)

  val step : t -> state:F.t array -> input:F.t array -> F.t array * F.t array
  (** [(S(t+1), Y(t)) = f(S(t), X(t))]. *)

  val run : t -> state:F.t array -> F.t array list -> F.t array list * F.t array
  (** Multi-round execution of one machine; returns outputs and final
      state. *)

  val run_fleet :
    t ->
    states:F.t array array ->
    commands:F.t array array ->
    F.t array array * F.t array array
  (** One round of K independent machines: the uncoded ground truth. *)

  val bank : unit -> t
  (** Degree 1: balance += delta; receipt = new balance. *)

  val interest_market : unit -> t
  (** Degree 2: s' = s + s·rate, y = s·rate. *)

  val cubic_accumulator : unit -> t
  (** Degree 3: s' = s + v³. *)

  val pair_market : unit -> t
  (** Degree 2, state/input dimension 2: quadratic slippage market. *)

  val degree_machine : int -> t
  (** Parametric machine of exact degree d for scaling sweeps. *)

  val register_bank : slots:int -> t
  (** Degree-2 key-value register bank: input = one-hot selector +
      value; sᵢ' = sᵢ + selᵢ·(v−sᵢ); y = Σ selᵢ·sᵢ (previous value). *)

  val register_write : slots:int -> slot:int -> F.t -> F.t array
  (** Well-formed one-hot write command for [register_bank]. *)

  val random :
    Csm_rng.t ->
    state_dim:int ->
    input_dim:int ->
    output_dim:int ->
    degree:int ->
    terms:int ->
    t

  val pp : Format.formatter -> t -> unit
end
