(** Boolean machines lifted to GF(2^m) polynomial machines via the
    Appendix-A construction. *)

module Field_intf = Csm_field.Field_intf

module Make (G : Field_intf.S) : sig
  module B : module type of Csm_mvpoly.Boolean.Make (G)
  module C : module type of Csm_mvpoly.Circuit.Make (G)
  module M : module type of Machine.Make (G)

  val of_circuit :
    name:string ->
    state_bits:int ->
    input_bits:int ->
    next:Csm_mvpoly.Circuit.gate array ->
    outs:Csm_mvpoly.Circuit.gate array ->
    M.t
  (** Machine from gate-level circuits (wires: state bits then input
      bits); degree bounded by the circuits' AND-depth. *)

  val lift :
    name:string ->
    state_bits:int ->
    input_bits:int ->
    next_bits:(bool array -> bool) array ->
    out_bits:(bool array -> bool) array ->
    M.t
  (** Lift Boolean bit-functions (over state bits followed by input bits)
      into a polynomial machine over G. *)

  val majority_register : unit -> M.t
  (** next = majority(state, in₁, in₂); degree 3. *)

  val toggle_latch : unit -> M.t
  (** next = state XOR (in₀ AND in₁); degree 2. *)

  val ripple_counter : bits:int -> M.t
  (** [bits]-bit counter with an enable input; output = overflow carry.
      @raise Invalid_argument unless 1 ≤ bits ≤ 4. *)

  val bits_of_int : bits:int -> int -> bool array
  (** LSB-first bit vector of an integer. *)

  val int_of_bits : bool array -> int

  val step_bits :
    next_bits:(bool array -> bool) array ->
    out_bits:(bool array -> bool) array ->
    bool array ->
    bool array ->
    bool array * bool array
  (** Reference bit-level step for cross-validation. *)

  val embed_bits : bool array -> G.t array
  val to_bits : G.t array -> bool array
end
