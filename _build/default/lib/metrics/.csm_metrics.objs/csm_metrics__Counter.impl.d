lib/metrics/counter.ml: Format
