lib/metrics/ledger.mli: Counter Format
