lib/metrics/ledger.ml: Array Counter Format Hashtbl List Printf
