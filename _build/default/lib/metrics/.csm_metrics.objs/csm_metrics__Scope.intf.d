lib/metrics/scope.mli: Counter Ledger
