lib/metrics/scope.ml: Counter Ledger
