lib/metrics/counter.mli: Format
