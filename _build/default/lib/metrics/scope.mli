(** Cost-attribution scopes: route field-operation counts to ledger
    roles while protocol engines execute on behalf of a node. *)

type t = { run : 'a. role:string -> (unit -> 'a) -> 'a }

val null : t
(** No-op scope (no measurement). *)

module type COUNTED_RUNNER = sig
  val with_counter : Counter.t -> (unit -> 'a) -> 'a
end

val of_ledger : (module COUNTED_RUNNER) -> Ledger.t -> t
(** Scope that counts into [ledger], per role. *)

val node : t -> int -> (unit -> 'a) -> 'a
(** [node t i f] runs [f] attributed to compute node [i]. *)
