(* Field-operation counters.

   The paper measures throughput in "number of additions and multiplications
   in F" (Section 2.2); a counter records exactly those, split by kind so
   that analyses can weight them differently if desired. *)

type t = {
  mutable adds : int;  (* additions, subtractions, negations *)
  mutable muls : int;  (* multiplications *)
  mutable invs : int;  (* inversions / divisions *)
}

let create () = { adds = 0; muls = 0; invs = 0 }

let reset t =
  t.adds <- 0;
  t.muls <- 0;
  t.invs <- 0

let add t = t.adds <- t.adds + 1
let mul t = t.muls <- t.muls + 1
let inv t = t.invs <- t.invs + 1

let adds t = t.adds
let muls t = t.muls
let invs t = t.invs

(* Total cost in field operations.  An inversion by extended Euclid or
   Fermat costs O(log p) multiplications; we charge a flat weight so that
   totals remain architecture-independent.  The paper's complexity model
   counts additions and multiplications; inversions only appear inside
   interpolation where their count is dominated by multiplications. *)
let inv_weight = 32

let total t = t.adds + t.muls + (inv_weight * t.invs)

let snapshot t = { adds = t.adds; muls = t.muls; invs = t.invs }

let diff ~before ~after =
  { adds = after.adds - before.adds;
    muls = after.muls - before.muls;
    invs = after.invs - before.invs }

let accumulate ~into t =
  into.adds <- into.adds + t.adds;
  into.muls <- into.muls + t.muls;
  into.invs <- into.invs + t.invs

let pp ppf t =
  Format.fprintf ppf "{adds=%d; muls=%d; invs=%d; total=%d}" t.adds t.muls
    t.invs (total t)
