(** Deterministic splitmix64 pseudo-random number generator.

    All randomness in the reproduction flows through this module so that
    every protocol run, test, and benchmark is reproducible from a seed. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] builds a generator from an integer seed. *)

val of_int64 : int64 -> t
(** [of_int64 seed] builds a generator from a 64-bit seed. *)

val next_int64 : t -> int64
(** Raw 64-bit splitmix64 output. *)

val bits : t -> int
(** Uniform non-negative int in [\[0, 2^62)]. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)], bias-free.
    @raise Invalid_argument if [bound <= 0]. *)

val float : t -> float
(** Uniform float in [\[0, 1)]. *)

val bool : t -> bool
(** Fair coin. *)

val split : t -> t
(** [split t] derives an independent child generator, advancing [t]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val sample : t -> n:int -> k:int -> int array
(** [sample t ~n ~k] draws [k] distinct indices from [\[0, n)].
    @raise Invalid_argument if [k > n]. *)

val copy : t -> t
(** Snapshot of the generator state. *)
