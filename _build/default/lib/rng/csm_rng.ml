(* Deterministic pseudo-random number generation for the whole repro.

   Every randomized component of the system (committee election, adversary
   strategies, property-test workload generation, random polynomial
   coefficients) draws from this splitmix64 generator so that runs are
   reproducible from a single seed.  splitmix64 passes BigCrush and has a
   trivially splittable state, which we use to derive independent
   per-node/per-round streams. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let of_int64 seed = { state = seed }

(* Core splitmix64 output function (Steele, Lea, Flood 2014). *)
let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* A non-negative int uniform in [0, 2^62). *)
let bits t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Csm_rng.int: bound must be positive";
  (* Rejection sampling on 61-bit draws to avoid modulo bias; 2^61 fits
     comfortably in OCaml's 63-bit native int. *)
  let range = 1 lsl 61 in
  let limit = range - (range mod bound) in
  let rec draw () =
    let v = bits t land (range - 1) in
    if v < limit then v mod bound else draw ()
  in
  draw ()

let float t =
  (* 53 random bits mapped to [0,1). *)
  let v = bits t land ((1 lsl 53) - 1) in
  float_of_int v /. float_of_int (1 lsl 53)

let bool t = bits t land 1 = 1

(* Derive an independent child generator; mixing with a distinct odd
   constant decorrelates the child stream from the parent's. *)
let split t =
  let s = next_int64 t in
  of_int64 (Int64.mul s 0xDA942042E4DD58B5L)

let shuffle t a =
  let n = Array.length a in
  for i = n - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

(* Choose [k] distinct indices from [0, n). *)
let sample t ~n ~k =
  if k > n then invalid_arg "Csm_rng.sample: k > n";
  let a = Array.init n (fun i -> i) in
  shuffle t a;
  Array.sub a 0 k

let copy t = { state = t.state }
