(** Signatures for finite fields.

    Everything in the reproduction (polynomials, Reed–Solomon codes, the
    CSM engine, INTERMIX) is a functor over [S] so that the same code runs
    over prime fields and over binary extension fields (Appendix A). *)

module type S = sig
  type t

  val zero : t
  val one : t

  val of_int : int -> t
  (** Canonical injection: reduces its argument into the field.  Accepts
      any int (negative ints are reduced to the equivalent residue in
      prime fields; in GF(2^m) the low [m] bits are kept). *)

  val to_int : t -> int
  (** Canonical integer representative in [\[0, order)]. *)

  val add : t -> t -> t
  val sub : t -> t -> t
  val neg : t -> t
  val mul : t -> t -> t

  val inv : t -> t
  (** @raise Division_by_zero on [zero]. *)

  val div : t -> t -> t
  (** @raise Division_by_zero when the divisor is [zero]. *)

  val pow : t -> int -> t
  (** [pow x n] for any int [n] (negative exponents invert).
      [pow zero 0 = one] by convention. *)

  val equal : t -> t -> bool
  val compare : t -> t -> int
  val is_zero : t -> bool

  val order : int
  (** Number of elements |F|.  All fields in this repo have order that
      fits in an OCaml int. *)

  val characteristic : int

  val root_of_unity : int -> t option
  (** [root_of_unity n] is a primitive n-th root of unity when one exists
      (used for NTT-based polynomial multiplication); [None] otherwise. *)

  val random : Csm_rng.t -> t
  val random_nonzero : Csm_rng.t -> t

  val pp : Format.formatter -> t -> unit
  val to_string : t -> string
end
