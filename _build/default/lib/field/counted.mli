(** Operation-counting wrapper around a field: same element type, every
    arithmetic operation recorded into a swappable
    {!Csm_metrics.Counter.t}.  This is how the paper's throughput metric
    (operation counts per node, Section 2.2) is measured exactly. *)

module Make (F : Field_intf.S) : sig
  include Field_intf.S with type t = F.t

  val set_counter : Csm_metrics.Counter.t -> unit
  val counter : unit -> Csm_metrics.Counter.t

  val with_counter : Csm_metrics.Counter.t -> (unit -> 'a) -> 'a
  (** Run a thunk with counts routed to the given counter; restores the
      previous counter afterwards, also on exceptions. *)
end
