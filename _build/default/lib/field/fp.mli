(** Prime fields F_p for p < 2^31, over native int arithmetic. *)

module type PRIME = sig
  val p : int
end

module Make (P : PRIME) : Field_intf.S
(** Builds F_p.
    @raise Invalid_argument if [P.p] is not a prime in [\[2, 2^31)]. *)

module Default : Field_intf.S
(** The NTT-friendly prime p = 15·2^27 + 1 = 2013265921 (two-adicity 27):
    the default field of the reproduction. *)

module Mersenne31 : Field_intf.S
(** p = 2^31 − 1; no radix-2 NTT support, exercises the generic
    polynomial-arithmetic path. *)

module F97 : Field_intf.S
(** Tiny field for exhaustive tests. *)

module F257 : Field_intf.S
(** Small field for boundary experiments. *)
