lib/field/counted.mli: Csm_metrics Field_intf
