lib/field/fp.mli: Field_intf
