lib/field/counted.ml: Csm_metrics Field_intf Fun
