lib/field/gf2m.ml: Array Csm_rng Field_intf Format Lazy List Printf Stdlib
