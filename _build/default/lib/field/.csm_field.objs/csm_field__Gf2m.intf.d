lib/field/gf2m.mli: Field_intf
