lib/field/field_intf.ml: Csm_rng Format
