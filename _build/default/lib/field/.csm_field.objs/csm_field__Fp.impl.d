lib/field/fp.ml: Csm_rng Field_intf Format Lazy List Stdlib
