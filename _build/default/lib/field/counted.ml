(* Operation-counting wrapper around any field.

   The wrapper writes into a swappable current counter so that a protocol
   simulation can attribute costs per role ("now node 3 is computing",
   "now the worker is computing") without changing the field type flowing
   through the algebraic code. *)

module Make (F : Field_intf.S) : sig
  include Field_intf.S with type t = F.t

  val set_counter : Csm_metrics.Counter.t -> unit
  (** Route subsequent operation counts into the given counter. *)

  val counter : unit -> Csm_metrics.Counter.t
  (** The counter currently receiving counts. *)

  val with_counter : Csm_metrics.Counter.t -> (unit -> 'a) -> 'a
  (** Run a thunk with counts routed to the given counter, restoring the
      previous counter afterwards (exception-safe). *)
end = struct
  type t = F.t

  let current = ref (Csm_metrics.Counter.create ())

  let set_counter c = current := c
  let counter () = !current

  let with_counter c f =
    let saved = !current in
    current := c;
    Fun.protect ~finally:(fun () -> current := saved) f

  let zero = F.zero
  let one = F.one
  let of_int = F.of_int
  let to_int = F.to_int

  let add a b =
    Csm_metrics.Counter.add !current;
    F.add a b

  let sub a b =
    Csm_metrics.Counter.add !current;
    F.sub a b

  let neg a =
    Csm_metrics.Counter.add !current;
    F.neg a

  let mul a b =
    Csm_metrics.Counter.mul !current;
    F.mul a b

  let inv a =
    Csm_metrics.Counter.inv !current;
    F.inv a

  let div a b =
    Csm_metrics.Counter.inv !current;
    F.div a b

  let pow x n =
    (* Charge the square-and-multiply cost explicitly so that pow-heavy
       code (e.g. Vandermonde construction) is accounted for: two
       multiplications per exponent bit. *)
    let rec count e acc = if e = 0 then acc else count (e lsr 1) (acc + 2) in
    let c = count (abs n) 0 in
    for _ = 1 to c do
      Csm_metrics.Counter.mul !current
    done;
    if n < 0 then Csm_metrics.Counter.inv !current;
    F.pow x n

  let equal = F.equal
  let compare = F.compare
  let is_zero = F.is_zero
  let order = F.order
  let characteristic = F.characteristic
  let root_of_unity = F.root_of_unity
  let random = F.random
  let random_nonzero = F.random_nonzero
  let pp = F.pp
  let to_string = F.to_string
end
