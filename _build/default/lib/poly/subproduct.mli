(** Subproduct trees: quasi-linear multipoint evaluation and
    interpolation — the fast coding path of Section 6.2. *)

module Field_intf = Csm_field.Field_intf

module Make (F : Field_intf.S) : sig
  module P : module type of Poly.Make (F)

  type tree

  val build : F.t array -> tree
  (** Balanced subproduct tree over the given points.
      @raise Invalid_argument on an empty point set. *)

  val root_poly : tree -> P.t
  (** m(z) = ∏ᵢ (z − xᵢ). *)

  val eval_tree : P.t -> tree -> F.t array
  (** Remainder-tree evaluation of a polynomial at every leaf point. *)

  val eval_all : P.t -> F.t array -> F.t array
  (** [eval_all p points] evaluates p at each point in O(M(n)·log n). *)

  val interpolate_tree : tree -> F.t array -> P.t
  (** Fast interpolation given a prebuilt tree and the values at its
      leaves (in leaf order = original point order). *)

  val interpolate : F.t array -> F.t array -> P.t
  (** Fast interpolation through (pointsᵢ, valuesᵢ).
      @raise Invalid_argument on length mismatch. *)

  type prepared
  (** Round-independent precomputation for a fixed point set (the tree
      and the inverted m'(xᵢ) values — the Remark-4 argument). *)

  val prepare : F.t array -> prepared

  val interpolate_prepared : prepared -> F.t array -> P.t
  (** Per-round interpolation cost only: O(M(n)·log n). *)

  val eval_prepared : prepared -> P.t -> F.t array
  (** Multipoint evaluation at the prepared points. *)
end
