lib/poly/lagrange.mli: Csm_field Poly
