lib/poly/subproduct.mli: Csm_field Poly
