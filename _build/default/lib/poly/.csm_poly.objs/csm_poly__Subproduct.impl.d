lib/poly/subproduct.ml: Array Csm_field List Poly
