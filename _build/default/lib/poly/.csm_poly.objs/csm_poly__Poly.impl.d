lib/poly/poly.ml: Array Csm_field Format
