lib/poly/poly.mli: Csm_field Csm_rng Format
