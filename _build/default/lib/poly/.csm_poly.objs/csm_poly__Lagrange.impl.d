lib/poly/lagrange.ml: Array Csm_field Poly
