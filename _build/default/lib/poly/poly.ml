(* Dense univariate polynomials over an arbitrary finite field.

   Representation: [t] is an array of coefficients, little-endian
   (index i holds the coefficient of z^i), with no trailing zeros; the
   zero polynomial is the empty array.  All functions preserve this
   normal form.

   Multiplication dispatches between schoolbook (small), Karatsuba
   (generic fields) and radix-2 NTT (fields exposing suitable roots of
   unity, e.g. the default prime 15·2^27+1), which is what gives the
   quasi-linear coding complexity of Section 6.2. *)

module Field_intf = Csm_field.Field_intf

module Make (F : Field_intf.S) = struct
  module F = F

  type t = F.t array

  let zero : t = [||]

  let is_zero (p : t) = Array.length p = 0

  let degree (p : t) = Array.length p - 1
  (* degree of the zero polynomial is -1 by convention *)

  let normalize (a : F.t array) : t =
    let n = Array.length a in
    let rec last i = if i >= 0 && F.is_zero a.(i) then last (i - 1) else i in
    let d = last (n - 1) in
    if d = n - 1 then a else Array.sub a 0 (d + 1)

  let of_coeffs a = normalize (Array.copy a)

  let to_coeffs (p : t) = Array.copy p

  let coeff (p : t) i =
    if i < 0 || i >= Array.length p then F.zero else p.(i)

  let constant c = if F.is_zero c then zero else [| c |]

  let one : t = [| F.one |]

  (* The monomial c * z^n. *)
  let monomial c n =
    if F.is_zero c then zero
    else begin
      let a = Array.make (n + 1) F.zero in
      a.(n) <- c;
      a
    end

  let equal (p : t) (q : t) =
    Array.length p = Array.length q
    && (let ok = ref true in
        Array.iteri (fun i c -> if not (F.equal c q.(i)) then ok := false) p;
        !ok)

  let eval (p : t) x =
    (* Horner's rule. *)
    let acc = ref F.zero in
    for i = Array.length p - 1 downto 0 do
      acc := F.add (F.mul !acc x) p.(i)
    done;
    !acc

  let add (p : t) (q : t) =
    let n = max (Array.length p) (Array.length q) in
    normalize
      (Array.init n (fun i ->
           F.add
             (if i < Array.length p then p.(i) else F.zero)
             (if i < Array.length q then q.(i) else F.zero)))

  let sub (p : t) (q : t) =
    let n = max (Array.length p) (Array.length q) in
    normalize
      (Array.init n (fun i ->
           F.sub
             (if i < Array.length p then p.(i) else F.zero)
             (if i < Array.length q then q.(i) else F.zero)))

  let neg (p : t) = Array.map F.neg p

  let scale c (p : t) =
    if F.is_zero c then zero else normalize (Array.map (F.mul c) p)

  let shift (p : t) n =
    (* multiply by z^n *)
    if is_zero p then zero
    else begin
      let a = Array.make (Array.length p + n) F.zero in
      Array.blit p 0 a n (Array.length p);
      a
    end

  let mul_schoolbook (p : t) (q : t) =
    if is_zero p || is_zero q then zero
    else begin
      let np = Array.length p and nq = Array.length q in
      let r = Array.make (np + nq - 1) F.zero in
      for i = 0 to np - 1 do
        if not (F.is_zero p.(i)) then
          for j = 0 to nq - 1 do
            r.(i + j) <- F.add r.(i + j) (F.mul p.(i) q.(j))
          done
      done;
      normalize r
    end

  let karatsuba_threshold = 32

  let rec mul_karatsuba (p : t) (q : t) =
    let np = Array.length p and nq = Array.length q in
    if np = 0 || nq = 0 then zero
    else if min np nq <= karatsuba_threshold then mul_schoolbook p q
    else begin
      let h = (max np nq + 1) / 2 in
      let lo (a : t) = normalize (Array.sub a 0 (min h (Array.length a))) in
      let hi (a : t) =
        if Array.length a <= h then zero
        else normalize (Array.sub a h (Array.length a - h))
      in
      let p0 = lo p and p1 = hi p and q0 = lo q and q1 = hi q in
      let z0 = mul_karatsuba p0 q0 in
      let z2 = mul_karatsuba p1 q1 in
      let z1 = sub (sub (mul_karatsuba (add p0 p1) (add q0 q1)) z0) z2 in
      add z0 (add (shift z1 h) (shift z2 (2 * h)))
    end

  (* ---- Radix-2 NTT multiplication (fields with 2^k-th roots) ---- *)

  let rec next_pow2 n k = if k >= n then k else next_pow2 n (2 * k)

  (* In-place iterative Cooley-Tukey over F, length a power of two. *)
  let ntt_inplace (a : F.t array) root =
    let n = Array.length a in
    (* bit-reversal permutation *)
    let j = ref 0 in
    for i = 1 to n - 1 do
      let bit = ref (n lsr 1) in
      while !j land !bit <> 0 do
        j := !j lxor !bit;
        bit := !bit lsr 1
      done;
      j := !j lor !bit;
      if i < !j then begin
        let tmp = a.(i) in
        a.(i) <- a.(!j);
        a.(!j) <- tmp
      end
    done;
    let len = ref 2 in
    while !len <= n do
      let w_len = F.pow root (n / !len) in
      let half = !len / 2 in
      let i = ref 0 in
      while !i < n do
        let w = ref F.one in
        for k = 0 to half - 1 do
          let u = a.(!i + k) in
          let v = F.mul a.(!i + k + half) !w in
          a.(!i + k) <- F.add u v;
          a.(!i + k + half) <- F.sub u v;
          w := F.mul !w w_len
        done;
        i := !i + !len
      done;
      len := !len * 2
    done

  let ntt_available n =
    match F.root_of_unity (next_pow2 n 1) with
    | Some _ -> true
    | None -> false

  let mul_ntt (p : t) (q : t) =
    let np = Array.length p and nq = Array.length q in
    let size = next_pow2 (np + nq - 1) 1 in
    match F.root_of_unity size with
    | None -> invalid_arg "Poly.mul_ntt: field lacks required root of unity"
    | Some root ->
      let a = Array.make size F.zero and b = Array.make size F.zero in
      Array.blit p 0 a 0 np;
      Array.blit q 0 b 0 nq;
      ntt_inplace a root;
      ntt_inplace b root;
      for i = 0 to size - 1 do
        a.(i) <- F.mul a.(i) b.(i)
      done;
      ntt_inplace a (F.inv root);
      let n_inv = F.inv (F.of_int size) in
      normalize (Array.map (F.mul n_inv) a)

  let ntt_threshold = 64

  let mul (p : t) (q : t) =
    let np = Array.length p and nq = Array.length q in
    if np = 0 || nq = 0 then zero
    else if min np nq <= karatsuba_threshold then mul_schoolbook p q
    else if np + nq >= ntt_threshold && ntt_available (np + nq - 1) then
      mul_ntt p q
    else mul_karatsuba p q

  (* Euclidean division, schoolbook: p = q * d + r with deg r < deg d. *)
  let divmod_schoolbook (p : t) (d : t) =
    if is_zero d then raise Division_by_zero;
    let dd = degree d in
    let lead_inv = F.inv d.(dd) in
    let r = Array.copy p in
    let dp = degree p in
    if dp < dd then (zero, normalize r)
    else begin
      let q = Array.make (dp - dd + 1) F.zero in
      for i = dp - dd downto 0 do
        let c = F.mul r.(i + dd) lead_inv in
        q.(i) <- c;
        if not (F.is_zero c) then
          for j = 0 to dd do
            r.(i + j) <- F.sub r.(i + j) (F.mul c d.(j))
          done
      done;
      (normalize q, normalize (Array.sub r 0 dd))
    end

  let truncate (a : t) m =
    if Array.length a <= m then a else normalize (Array.sub a 0 m)

  (* Power-series inverse: x with d·x ≡ 1 (mod z^m), by Newton iteration
     x' = x + x·(1 − d·x), which doubles the precision per step and is
     valid in any characteristic.
     @raise Invalid_argument when d(0) = 0. *)
  let inv_series (d : t) m =
    if is_zero d || F.is_zero d.(0) then
      invalid_arg "Poly.inv_series: constant term is zero";
    if m <= 0 then invalid_arg "Poly.inv_series: m must be positive";
    let x = ref [| F.inv d.(0) |] in
    let prec = ref 1 in
    while !prec < m do
      prec := min m (2 * !prec);
      let dk = truncate d !prec in
      let e = sub one (truncate (mul dk !x) !prec) in
      x := truncate (add !x (mul !x e)) !prec
    done;
    !x

  (* Reverse coefficients with respect to a stated degree bound. *)
  let reverse (p : t) ~bound =
    Array.init (bound + 1) (fun i -> coeff p (bound - i))

  (* Fast Euclidean division via the reversal trick:
       rev(q) = rev(p)·rev(d)^{-1} mod z^{deg p − deg d + 1},
     costing O(M(deg p)).  Used by the remainder trees of the §6.2
     quasi-linear coding path. *)
  let divmod_fast (p : t) (d : t) =
    if is_zero d then raise Division_by_zero;
    let dp = degree p and dd = degree d in
    if dp < dd then (zero, p)
    else begin
      let k = dp - dd + 1 in
      let rev_d = normalize (reverse d ~bound:dd) in
      let rev_p = normalize (reverse p ~bound:dp) in
      let inv = inv_series rev_d k in
      let q_rev = truncate (mul rev_p inv) k in
      let q = normalize (reverse q_rev ~bound:(k - 1)) in
      let r = sub p (mul q d) in
      (q, r)
    end

  (* Fast division pays ~3 middle-sized multiplications; worth it only
     when NTT multiplication is available and the operands are large. *)
  let divmod_threshold = 64

  let divmod (p : t) (d : t) =
    let dp = degree p and dd = degree d in
    if
      dd >= divmod_threshold
      && dp - dd >= divmod_threshold
      && ntt_available (dp + 1)
    then divmod_fast p d
    else divmod_schoolbook p d

  let div p d = fst (divmod p d)
  let rem p d = snd (divmod p d)

  let rec gcd (p : t) (q : t) =
    if is_zero q then p else gcd q (rem p q)

  (* Monic gcd. *)
  let gcd_monic p q =
    let g = gcd p q in
    if is_zero g then g else scale (F.inv g.(degree g)) g

  (* Extended Euclid with early stopping: returns (r, u, v) with
     r = u*p + v*q, for the FIRST remainder with deg r < [stop] (or the
     gcd when [stop] is negative).  The early-stopped form is exactly
     what the Gao Reed-Solomon decoder needs.  Note that the zero
     remainder qualifies: when the remainder sequence collapses to zero
     before reaching the degree bound (e.g. decoding a codeword of the
     zero polynomial), zero is the remainder to return, with its Bezout
     coefficients. *)
  let xgcd_until ?(stop = -1) (p : t) (q : t) =
    let rec go r0 r1 u0 u1 v0 v1 =
      if stop >= 0 && degree r0 < stop then (r0, u0, v0)
      else if is_zero r1 then
        if stop >= 0 then (r1, u1, v1) else (r0, u0, v0)
      else
        let q', r2 = divmod r0 r1 in
        go r1 r2 u1 (sub u0 (mul q' u1)) v1 (sub v0 (mul q' v1))
    in
    go p q one zero zero one

  let xgcd p q = xgcd_until ~stop:(-1) p q

  (* The canonical image of a natural number in F: n·1.  For prime
     fields this is [of_int]; for extension fields [of_int] is a bit
     pattern, not the ring homomorphism, so reduce mod the characteristic
     and add ones (the characteristic of our extension fields is 2, so
     this costs at most one addition). *)
  let nat_scalar n =
    let r = n mod F.characteristic in
    let r = if r < 0 then r + F.characteristic else r in
    if F.characteristic = F.order then F.of_int r
    else begin
      let acc = ref F.zero in
      for _ = 1 to r do
        acc := F.add !acc F.one
      done;
      !acc
    end

  let derivative (p : t) =
    if Array.length p <= 1 then zero
    else
      normalize
        (Array.init (Array.length p - 1) (fun i ->
             F.mul (nat_scalar (i + 1)) p.(i + 1)))

  (* ∏ (z - r_i), built by balanced products for quasi-linear growth. *)
  let of_roots roots =
    let n = Array.length roots in
    if n = 0 then one
    else begin
      let rec build lo hi =
        if lo = hi then [| F.neg roots.(lo); F.one |]
        else
          let mid = (lo + hi) / 2 in
          mul (build lo mid) (build (mid + 1) hi)
      in
      build 0 (n - 1)
    end

  let random rng ~degree:d =
    if d < 0 then zero
    else begin
      let a = Array.init (d + 1) (fun _ -> F.random rng) in
      a.(d) <- F.random_nonzero rng;
      a
    end

  let pp ppf (p : t) =
    if is_zero p then Format.pp_print_string ppf "0"
    else begin
      let first = ref true in
      for i = Array.length p - 1 downto 0 do
        if not (F.is_zero p.(i)) then begin
          if not !first then Format.pp_print_string ppf " + ";
          first := false;
          if i = 0 then F.pp ppf p.(i)
          else if F.equal p.(i) F.one then Format.fprintf ppf "z^%d" i
          else Format.fprintf ppf "%a*z^%d" F.pp p.(i) i
        end
      done
    end

  let to_string p = Format.asprintf "%a" pp p
end
