(** Dense univariate polynomials over a finite field.

    Coefficients are little-endian ([coeff p i] is the coefficient of
    z^i); the representation carries no trailing zeros and the zero
    polynomial has degree -1. *)

module Field_intf = Csm_field.Field_intf

module Make (F : Field_intf.S) : sig
  module F : Field_intf.S with type t = F.t

  type t = F.t array
  (** Normalized coefficient array (no trailing zero coefficients). *)

  val zero : t
  val one : t
  val is_zero : t -> bool

  val degree : t -> int
  (** [-1] for the zero polynomial. *)

  val normalize : F.t array -> t
  (** Strip trailing zeros (shares the array when already normal). *)

  val of_coeffs : F.t array -> t
  (** Copying constructor from a little-endian coefficient array. *)

  val to_coeffs : t -> F.t array

  val coeff : t -> int -> F.t
  (** Coefficient of z^i, zero beyond the degree. *)

  val constant : F.t -> t
  val monomial : F.t -> int -> t

  val equal : t -> t -> bool

  val eval : t -> F.t -> F.t
  (** Horner evaluation: [degree p] multiplications and additions. *)

  val add : t -> t -> t
  val sub : t -> t -> t
  val neg : t -> t
  val scale : F.t -> t -> t

  val shift : t -> int -> t
  (** [shift p n] is p·z^n. *)

  val mul_schoolbook : t -> t -> t
  val mul_karatsuba : t -> t -> t

  val mul_ntt : t -> t -> t
  (** Radix-2 NTT multiplication.
      @raise Invalid_argument if the field lacks the required root of
      unity. *)

  val ntt_available : int -> bool
  (** Whether the field supports NTT of the next power of two ≥ n. *)

  val mul : t -> t -> t
  (** Dispatches schoolbook / Karatsuba / NTT on size and field support. *)

  val divmod : t -> t -> t * t
  (** [divmod p d = (q, r)] with p = q·d + r and deg r < deg d;
      dispatches between schoolbook and fast (Newton) division.
      @raise Division_by_zero if [d] is zero. *)

  val divmod_schoolbook : t -> t -> t * t

  val divmod_fast : t -> t -> t * t
  (** Division via power-series inversion of the reversed divisor:
      O(M(deg p)).  Requires no special field support (falls back to
      Karatsuba multiplication without NTT). *)

  val inv_series : t -> int -> t
  (** [inv_series d m]: x with d·x ≡ 1 (mod z^m).
      @raise Invalid_argument when d(0) = 0 or m ≤ 0. *)

  val truncate : t -> int -> t
  (** Keep coefficients of z^0..z^{m−1}. *)

  val reverse : t -> bound:int -> F.t array
  (** Coefficients reversed with respect to a stated degree bound. *)

  val div : t -> t -> t
  val rem : t -> t -> t

  val gcd : t -> t -> t
  val gcd_monic : t -> t -> t

  val xgcd : t -> t -> t * t * t
  (** [xgcd p q = (g, u, v)] with g = u·p + v·q. *)

  val xgcd_until : ?stop:int -> t -> t -> t * t * t
  (** Extended Euclid stopped as soon as the remainder degree drops below
      [stop] (the partial form used by the Gao decoder); full gcd when
      [stop] is negative. *)

  val nat_scalar : int -> F.t
  (** The image of an integer under the canonical ring homomorphism
      ℤ → F (n·1), correct for extension fields too. *)

  val derivative : t -> t

  val of_roots : F.t array -> t
  (** ∏ᵢ (z − rᵢ), computed by balanced subproducts. *)

  val random : Csm_rng.t -> degree:int -> t
  (** Uniform polynomial of exactly the given degree (monic leading
      coefficient excluded from zero). *)

  val pp : Format.formatter -> t -> unit
  val to_string : t -> string
end
