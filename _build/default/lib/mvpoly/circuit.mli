(** Boolean-circuit DSL compiled to GF(2^m) polynomials: a practical
    front end for Appendix-A machines that avoids the exponential
    truth-table construction when the circuit is shallow. *)

module Field_intf = Csm_field.Field_intf

type gate =
  | Input of int
  | Const of bool
  | Not of gate
  | And of gate * gate
  | Or of gate * gate
  | Xor of gate * gate

val input : int -> gate
val tt : gate
val ff : gate

val ( &&& ) : gate -> gate -> gate
val ( ||| ) : gate -> gate -> gate
val ( ^^^ ) : gate -> gate -> gate
val not_ : gate -> gate

val eval_gate : gate -> bool array -> bool
(** Reference bit-level evaluation. *)

val size : gate -> int

val and_degree : gate -> int
(** Upper bound on the compiled polynomial's total degree
    (multiplicative depth). *)

module Make (G : Field_intf.S) : sig
  module Mv : module type of Mvpoly.Make (G)

  val compile : vars:int -> gate -> Mv.t
  (** Compile one gate DAG (memoized on shared subterms).
      @raise Invalid_argument on out-of-range inputs. *)

  val compile_all : vars:int -> gate array -> Mv.t array
  (** Compile a family sharing one memo table. *)
end
