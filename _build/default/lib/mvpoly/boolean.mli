(** Appendix A: Boolean functions as GF(2^m) polynomials (Zou's
    construction) with the bit-embedding invariance CSM relies on. *)

module Field_intf = Csm_field.Field_intf

module Make (G : Field_intf.S) : sig
  module Mv : module type of Mvpoly.Make (G)

  val embed_bit : bool -> G.t

  val all_inputs : int -> bool array list
  (** All 2ⁿ Boolean input vectors (index i of the vector is bit i). *)

  val of_function : n:int -> (bool array -> bool) -> Mv.t
  (** The Appendix-A polynomial of an n-ary Boolean function
      (1 ≤ n ≤ 16; the construction is exponential in n by nature). *)

  val of_truth_table : bool array -> Mv.t
  (** Table indexed by Σ aᵢ·2ⁱ; length must be a power of two ≥ 2. *)

  val eval_bits : Mv.t -> bool array -> bool
  (** Evaluate on embedded bits; total on polynomials built by
      [of_function]/[of_truth_table]. *)

  val xor_poly : int -> int -> int -> Mv.t
  val and_poly : int -> int -> int -> Mv.t
  val or_poly : int -> int -> int -> Mv.t
  val not_poly : int -> int -> Mv.t

  val majority3 : Mv.t lazy_t
  (** Majority of three bits — the running Boolean example machine. *)
end
