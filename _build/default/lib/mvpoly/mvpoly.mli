(** Sparse multivariate polynomials: the class of state transition
    functions CSM supports (Section 4). *)

module Field_intf = Csm_field.Field_intf

module Make (F : Field_intf.S) : sig
  type t

  val zero : int -> t
  (** [zero vars]: the zero polynomial in [vars] variables. *)

  val one : int -> t
  val constant : int -> F.t -> t

  val var : int -> int -> t
  (** [var vars i] is the monomial xᵢ.
      @raise Invalid_argument if [i] is out of range. *)

  val of_terms : int -> (int array * F.t) list -> t
  (** Build from (exponent vector, coefficient) pairs; like terms are
      merged and zero coefficients dropped. *)

  val terms : t -> (int array * F.t) list
  (** Normalized term list, sorted by exponent vector. *)

  val vars : t -> int
  val is_zero : t -> bool

  val add : t -> t -> t
  val sub : t -> t -> t
  val neg : t -> t
  val scale : F.t -> t -> t
  val mul : t -> t -> t

  val pow : t -> int -> t
  (** @raise Invalid_argument on negative exponent. *)

  val total_degree : t -> int
  (** Maximum over monomials of the sum of exponents; -1 for zero. *)

  val eval : t -> F.t array -> F.t
  (** @raise Invalid_argument on arity mismatch. *)

  val equal : t -> t -> bool

  val compose_univariate :
    t ->
    F.t array array ->
    uni_add:(F.t array -> F.t array -> F.t array) ->
    uni_mul:(F.t array -> F.t array -> F.t array) ->
    F.t array
  (** Substitute a univariate polynomial (little-endian coefficients) for
      each variable: the h(z) = f(u(z), v(z)) composition of Section 5.2.
      Univariate add/mul are injected by the caller (e.g. from
      [Csm_poly.Poly]). *)

  val random : Csm_rng.t -> vars:int -> degree:int -> terms:int -> t
  (** Random polynomial with total degree exactly [degree]. *)

  val pp : Format.formatter -> t -> unit
  val to_string : t -> string
end
