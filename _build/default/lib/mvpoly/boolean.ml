(* Appendix A: representing Boolean functions as multivariate polynomials.

   Zou's construction ([52], Theorem 2): for f : {0,1}^n → {0,1}, with
   S₁ = { a : f(a) = 1 }, the polynomial

     p(x₁..xₙ) = Σ_{a ∈ S₁} ∏ᵢ zᵢ,   zᵢ = xᵢ if aᵢ = 1, else (xᵢ + 1)

   over GF(2) satisfies p = f on {0,1}ⁿ.  Because p is a sum of monomials
   over GF(2), its value is invariant under the embedding of bits into
   any extension field GF(2^m) (0 ↦ 0, 1 ↦ 1), which is what lets CSM run
   Boolean machines over a field large enough for N evaluation points. *)

module Field_intf = Csm_field.Field_intf

module Make (G : Field_intf.S) = struct
  module Mv = Mvpoly.Make (G)

  let () =
    if G.characteristic <> 2 then
      invalid_arg "Boolean.Make: field must have characteristic 2"

  let embed_bit b : G.t = if b then G.one else G.zero

  (* ∏ᵢ zᵢ for a given selector vector a. *)
  let indicator_monomial ~n (a : bool array) =
    let acc = ref (Mv.one n) in
    for i = 0 to n - 1 do
      let xi = Mv.var n i in
      let zi = if a.(i) then xi else Mv.add xi (Mv.one n) in
      acc := Mv.mul !acc zi
    done;
    !acc

  let all_inputs n =
    List.init (1 lsl n) (fun v ->
        Array.init n (fun i -> (v lsr i) land 1 = 1))

  (* Build p from a Boolean function; exponential in n by construction
     (the paper's construction enumerates {0,1}ⁿ too). *)
  let of_function ~n f =
    if n < 1 || n > 16 then invalid_arg "Boolean.of_function: n in [1,16]";
    List.fold_left
      (fun acc a -> if f a then Mv.add acc (indicator_monomial ~n a) else acc)
      (Mv.zero n) (all_inputs n)

  (* Truth table indexed by Σ aᵢ 2ⁱ. *)
  let of_truth_table table =
    let size = Array.length table in
    let n =
      let rec log2 k acc = if k = 1 then acc else log2 (k / 2) (acc + 1) in
      if size < 2 then invalid_arg "Boolean.of_truth_table: need >= 2 entries"
      else log2 size 0
    in
    if 1 lsl n <> size then
      invalid_arg "Boolean.of_truth_table: size must be a power of two";
    of_function ~n (fun a ->
        let idx = ref 0 in
        Array.iteri (fun i b -> if b then idx := !idx lor (1 lsl i)) a;
        table.(!idx))

  (* Evaluate the polynomial on embedded bits, returning a bit. *)
  let eval_bits p (bits : bool array) =
    let v = Mv.eval p (Array.map embed_bit bits) in
    if G.is_zero v then false
    else if G.equal v G.one then true
    else
      (* impossible by the invariance argument of Appendix A *)
      failwith "Boolean.eval_bits: non-bit output (embedding violated)"

  (* Common gates as polynomials, useful for composing machines. *)
  let xor_poly n i j = Mv.add (Mv.var n i) (Mv.var n j)
  let and_poly n i j = Mv.mul (Mv.var n i) (Mv.var n j)

  let or_poly n i j =
    (* x + y + xy over GF(2) *)
    Mv.add (xor_poly n i j) (and_poly n i j)

  let not_poly n i = Mv.add (Mv.var n i) (Mv.one n)

  let majority3 =
    lazy
      (of_function ~n:3 (fun a ->
           let count = Array.fold_left (fun c b -> if b then c + 1 else c) 0 a in
           count >= 2))
end
