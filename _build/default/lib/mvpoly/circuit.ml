(* A small Boolean-circuit DSL compiled to multivariate polynomials.

   The Appendix-A construction materializes a polynomial from a truth
   table, which is exponential in the number of inputs.  Real machines
   are described as circuits; over GF(2) every gate is itself a small
   polynomial (XOR = +, AND = ·, NOT = 1 +, OR = x + y + xy), and
   composing gate polynomials yields the machine polynomial directly —
   with degree bounded by the product of AND-depths instead of the
   variable count.  This compiler turns a gate-level description into
   an [Mvpoly] over any characteristic-2 field, giving CSM users a
   practical front end for Boolean machines.

   The compiler memoizes shared subcircuits (it compiles the DAG, not
   the tree), so diamond-shaped circuits stay polynomial-sized as long
   as the final collected polynomial does. *)

module Field_intf = Csm_field.Field_intf

type gate =
  | Input of int  (* circuit input wire *)
  | Const of bool
  | Not of gate
  | And of gate * gate
  | Or of gate * gate
  | Xor of gate * gate

(* Convenience constructors. *)
let input i = Input i
let tt = Const true
let ff = Const false
let ( &&& ) a b = And (a, b)
let ( ||| ) a b = Or (a, b)
let ( ^^^ ) a b = Xor (a, b)
let not_ a = Not a

let rec eval_gate (g : gate) (inputs : bool array) =
  match g with
  | Input i -> inputs.(i)
  | Const b -> b
  | Not a -> not (eval_gate a inputs)
  | And (a, b) -> eval_gate a inputs && eval_gate b inputs
  | Or (a, b) -> eval_gate a inputs || eval_gate b inputs
  | Xor (a, b) -> eval_gate a inputs <> eval_gate b inputs

(* Structural size and multiplicative depth (the degree driver). *)
let rec size = function
  | Input _ | Const _ -> 1
  | Not a -> 1 + size a
  | And (a, b) | Or (a, b) | Xor (a, b) -> 1 + size a + size b

let rec and_degree = function
  | Input _ -> 1
  | Const _ -> 0
  | Not a -> and_degree a
  | Xor (a, b) -> max (and_degree a) (and_degree b)
  | And (a, b) | Or (a, b) -> and_degree a + and_degree b

module Make (G : Field_intf.S) = struct
  module Mv = Mvpoly.Make (G)

  let () =
    if G.characteristic <> 2 then
      invalid_arg "Circuit.Make: field must have characteristic 2"

  (* Compile a gate DAG to a polynomial in [vars] variables, memoizing
     on physical gate identity so shared subcircuits compile once. *)
  let compile ~vars (g : gate) : Mv.t =
    let memo : (gate, Mv.t) Hashtbl.t = Hashtbl.create 64 in
    let rec go g =
      match Hashtbl.find_opt memo g with
      | Some p -> p
      | None ->
        let p =
          match g with
          | Input i ->
            if i < 0 || i >= vars then
              invalid_arg "Circuit.compile: input index out of range";
            Mv.var vars i
          | Const true -> Mv.one vars
          | Const false -> Mv.zero vars
          | Not a -> Mv.add (go a) (Mv.one vars)
          | Xor (a, b) -> Mv.add (go a) (go b)
          | And (a, b) -> Mv.mul (go a) (go b)
          | Or (a, b) ->
            let pa = go a and pb = go b in
            Mv.add (Mv.add pa pb) (Mv.mul pa pb)
        in
        Hashtbl.add memo g p;
        p
    in
    go g

  (* Compile a family of output gates sharing one memo table (a machine
     description compiles all its next-state and output bits at once). *)
  let compile_all ~vars (gs : gate array) : Mv.t array =
    let memo : (gate, Mv.t) Hashtbl.t = Hashtbl.create 64 in
    let rec go g =
      match Hashtbl.find_opt memo g with
      | Some p -> p
      | None ->
        let p =
          match g with
          | Input i ->
            if i < 0 || i >= vars then
              invalid_arg "Circuit.compile: input index out of range";
            Mv.var vars i
          | Const true -> Mv.one vars
          | Const false -> Mv.zero vars
          | Not a -> Mv.add (go a) (Mv.one vars)
          | Xor (a, b) -> Mv.add (go a) (go b)
          | And (a, b) -> Mv.mul (go a) (go b)
          | Or (a, b) ->
            let pa = go a and pb = go b in
            Mv.add (Mv.add pa pb) (Mv.mul pa pb)
        in
        Hashtbl.add memo g p;
        p
    in
    Array.map go gs
end
