(* Sparse multivariate polynomials over a finite field.

   CSM state transition functions are multivariate polynomials of
   constant total degree d (Section 4).  The representation is a sorted
   association list from exponent vectors to nonzero coefficients; the
   number of variables is fixed per polynomial.

   The crucial property exploited by coded execution (Section 5.2): for
   univariate polynomials u(z), v(z), the composition
   f(u(z), v(z)) is a univariate polynomial of degree ≤ d·max(deg u,
   deg v); evaluating f on coded inputs therefore evaluates that
   composite polynomial at the node's point α. *)

module Field_intf = Csm_field.Field_intf

module Make (F : Field_intf.S) = struct
  (* A monomial maps variable index to exponent; kept in a plain int
     array of length [vars]. *)
  type t = {
    vars : int;
    terms : (int array * F.t) list;
        (* sorted by exponent vector (lex), coefficients nonzero *)
  }

  let compare_expts (a : int array) b = Stdlib.compare a b

  let normalize vars terms =
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun (e, c) ->
        if Array.length e <> vars then
          invalid_arg "Mvpoly: exponent vector arity mismatch";
        let cur =
          match Hashtbl.find_opt tbl e with Some x -> x | None -> F.zero
        in
        Hashtbl.replace tbl e (F.add cur c))
      terms;
    let out =
      Hashtbl.fold
        (fun e c acc -> if F.is_zero c then acc else (e, c) :: acc)
        tbl []
    in
    {
      vars;
      terms = List.sort (fun (a, _) (b, _) -> compare_expts a b) out;
    }

  let zero vars = { vars; terms = [] }

  let is_zero p = p.terms = []

  let vars p = p.vars

  let constant vars c =
    if F.is_zero c then zero vars
    else { vars; terms = [ (Array.make vars 0, c) ] }

  let one vars = constant vars F.one

  (* The monomial c · x_i. *)
  let var vars i =
    if i < 0 || i >= vars then invalid_arg "Mvpoly.var: index out of range";
    let e = Array.make vars 0 in
    e.(i) <- 1;
    { vars; terms = [ (e, F.one) ] }

  let of_terms vars terms = normalize vars terms

  let terms p = p.terms

  let check_same_arity p q =
    if p.vars <> q.vars then invalid_arg "Mvpoly: arity mismatch"

  let add p q =
    check_same_arity p q;
    normalize p.vars (p.terms @ q.terms)

  let neg p = { p with terms = List.map (fun (e, c) -> (e, F.neg c)) p.terms }

  let sub p q = add p (neg q)

  let scale c p =
    if F.is_zero c then zero p.vars
    else { p with terms = List.map (fun (e, k) -> (e, F.mul c k)) p.terms }

  let mul p q =
    check_same_arity p q;
    let products =
      List.concat_map
        (fun (e1, c1) ->
          List.map
            (fun (e2, c2) ->
              (Array.init p.vars (fun i -> e1.(i) + e2.(i)), F.mul c1 c2))
            q.terms)
        p.terms
    in
    normalize p.vars products

  let pow p n =
    if n < 0 then invalid_arg "Mvpoly.pow: negative exponent";
    let rec go acc base n =
      if n = 0 then acc
      else if n land 1 = 1 then go (mul acc base) (mul base base) (n lsr 1)
      else go acc (mul base base) (n lsr 1)
    in
    go (one p.vars) p n

  let total_degree p =
    List.fold_left
      (fun acc (e, _) -> max acc (Array.fold_left ( + ) 0 e))
      (if is_zero p then -1 else 0)
      p.terms

  let eval p (point : F.t array) =
    if Array.length point <> p.vars then
      invalid_arg "Mvpoly.eval: point arity mismatch";
    List.fold_left
      (fun acc (e, c) ->
        let m = ref c in
        Array.iteri
          (fun i k -> if k > 0 then m := F.mul !m (F.pow point.(i) k))
          e;
        F.add acc !m)
      F.zero p.terms

  let equal p q =
    p.vars = q.vars
    && List.length p.terms = List.length q.terms
    && List.for_all2
         (fun (e1, c1) (e2, c2) -> compare_expts e1 e2 = 0 && F.equal c1 c2)
         p.terms q.terms

  (* Substitute univariate polynomials (as coefficient arrays over F) for
     each variable and return the resulting univariate polynomial's
     coefficients.  This is the h(z) = f(u(z), v(z)) composition of
     Section 5.2, used by tests to check degree bounds.  [uni_mul] and
     [uni_add] are passed in to avoid a dependency on csm_poly. *)
  let compose_univariate p (substs : F.t array array)
      ~(uni_add : F.t array -> F.t array -> F.t array)
      ~(uni_mul : F.t array -> F.t array -> F.t array) =
    if Array.length substs <> p.vars then
      invalid_arg "Mvpoly.compose_univariate: arity mismatch";
    let uni_const c = if F.is_zero c then [||] else [| c |] in
    let uni_pow b n =
      let rec go acc b n =
        if n = 0 then acc
        else if n land 1 = 1 then go (uni_mul acc b) (uni_mul b b) (n lsr 1)
        else go acc (uni_mul b b) (n lsr 1)
      in
      go (uni_const F.one) b n
    in
    List.fold_left
      (fun acc (e, c) ->
        let m = ref (uni_const c) in
        Array.iteri
          (fun i k -> if k > 0 then m := uni_mul !m (uni_pow substs.(i) k))
          e;
        uni_add acc !m)
      [||] p.terms

  (* Random polynomial with [terms] monomials of total degree ≤ [degree],
     at least one monomial achieving the degree exactly. *)
  let random rng ~vars ~degree ~terms:nterms =
    if degree < 0 || nterms < 1 then invalid_arg "Mvpoly.random";
    let random_expt target =
      (* distribute [target] among vars *)
      let e = Array.make vars 0 in
      for _ = 1 to target do
        let i = Csm_rng.int rng vars in
        e.(i) <- e.(i) + 1
      done;
      e
    in
    let terms =
      (random_expt degree, F.random_nonzero rng)
      :: List.init (nterms - 1) (fun _ ->
             (random_expt (Csm_rng.int rng (degree + 1)), F.random_nonzero rng))
    in
    normalize vars terms

  let pp ppf p =
    if is_zero p then Format.pp_print_string ppf "0"
    else begin
      let pp_term ppf (e, c) =
        F.pp ppf c;
        Array.iteri
          (fun i k ->
            if k = 1 then Format.fprintf ppf "*x%d" i
            else if k > 1 then Format.fprintf ppf "*x%d^%d" i k)
          e
      in
      Format.pp_print_list
        ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " + ")
        pp_term ppf p.terms
    end

  let to_string p = Format.asprintf "%a" pp p
end
