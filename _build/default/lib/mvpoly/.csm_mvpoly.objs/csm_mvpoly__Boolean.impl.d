lib/mvpoly/boolean.ml: Array Csm_field List Mvpoly
