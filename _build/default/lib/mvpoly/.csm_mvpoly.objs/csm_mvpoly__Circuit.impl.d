lib/mvpoly/circuit.ml: Array Csm_field Hashtbl Mvpoly
