lib/mvpoly/mvpoly.ml: Array Csm_field Csm_rng Format Hashtbl List Stdlib
