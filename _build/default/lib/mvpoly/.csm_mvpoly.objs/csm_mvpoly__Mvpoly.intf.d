lib/mvpoly/mvpoly.mli: Csm_field Csm_rng Format
