lib/mvpoly/boolean.mli: Csm_field Mvpoly
