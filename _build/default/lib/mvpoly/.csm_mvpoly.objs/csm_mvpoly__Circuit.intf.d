lib/mvpoly/circuit.mli: Csm_field Mvpoly
