(** Syndrome-based Reed–Solomon decoding (Berlekamp–Massey + Chien
    search) for the classical point set xᵢ = αⁱ.  Lighter than the
    general-points decoders; cross-checked against them. *)

module Field_intf = Csm_field.Field_intf

module Make (F : Field_intf.S) : sig
  module P : module type of Csm_poly.Poly.Make (F)

  type instance

  val instance : n:int -> instance
  (** Code of length n over points 1, α, …, αⁿ⁻¹.
      @raise Invalid_argument when the field has no primitive n-th root
      of unity. *)

  val encode : instance -> message:P.t -> F.t array

  val syndromes : instance -> k:int -> F.t array -> F.t array
  (** S₁..S_{n−k}; all zero iff the word is a codeword. *)

  val berlekamp_massey : F.t array -> P.t * int
  (** Shortest LFSR (connection polynomial, length) generating the
      sequence. *)

  val chien : instance -> P.t -> int list
  (** Positions i with σ(α^{−i}) = 0. *)

  type decoded = {
    message : P.t;
    error_positions : int list;
  }

  val decode : instance -> k:int -> F.t array -> decoded option
  (** Corrects up to ⌊(n−k)/2⌋ errors; [None] beyond. *)
end
