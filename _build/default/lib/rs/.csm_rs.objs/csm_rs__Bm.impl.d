lib/rs/bm.ml: Array Csm_field Csm_linalg Csm_poly List Printf
