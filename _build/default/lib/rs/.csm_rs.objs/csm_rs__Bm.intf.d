lib/rs/bm.mli: Csm_field Csm_poly
