lib/rs/reed_solomon.mli: Csm_field Csm_poly Csm_rng
