lib/rs/reed_solomon.ml: Array Csm_field Csm_linalg Csm_poly Csm_rng List
