(** Reed–Solomon encoding and noisy-interpolation decoding over arbitrary
    evaluation points — the error-correction engine of CSM's execution
    phase (Section 5.2) and of the verified decoding of Section 6.2. *)

module Field_intf = Csm_field.Field_intf

module Make (F : Field_intf.S) : sig
  module P : module type of Csm_poly.Poly.Make (F)

  val max_errors : n:int -> k:int -> int
  (** Unique-decoding radius e = ⌊(n−k)/2⌋ for length n, dimension k.
      @raise Invalid_argument when n < k. *)

  val encode : message:P.t -> points:F.t array -> F.t array
  (** Evaluate the message polynomial (degree < k) at each point.
      @raise Invalid_argument when the degree is ≥ the code length. *)

  val encode_fast : message:P.t -> points:F.t array -> F.t array
  (** Same, via subproduct-tree multipoint evaluation (quasi-linear). *)

  type decoded = {
    poly : P.t;  (** recovered message polynomial, degree < k *)
    agreement : int list;
        (** positions where the codeword matches — the certificate set τ
            of equation (9) in the paper *)
    errors : int list;  (** corrected positions *)
  }

  val decode_bw : k:int -> (F.t * F.t) array -> decoded option
  (** Berlekamp–Welch: [None] when more than ⌊(n−k)/2⌋ errors. *)

  val decode_gao : k:int -> (F.t * F.t) array -> decoded option
  (** Gao's extended-Euclid decoder; same guarantee as [decode_bw]. *)

  type algorithm = Berlekamp_welch | Gao

  val decode :
    ?algorithm:algorithm -> k:int -> (F.t * F.t) array -> decoded option
  (** Default algorithm is [Gao]. *)

  val decode_erasures : k:int -> (F.t * F.t) array -> decoded option
  (** Erasure-only (crash-fault) decoding: all received symbols trusted;
      needs only k symbols; [None] if the received symbols are not
      consistent with one degree-(k−1) polynomial. *)

  val corrupt : Csm_rng.t -> count:int -> F.t array -> F.t array * int list
  (** [corrupt rng ~count w] flips [count] distinct positions of [w] to
      fresh wrong values; returns the corrupted word and the sorted list
      of corrupted positions. *)
end
