(** CSM parameter calculus: Theorems 1–2 and the Table-2 feasibility
    bounds. *)

type network = Sync | Partial_sync

type t = {
  n : int;
  k : int;
  d : int;
  b : int;
  network : network;
}

val composite_degree : k:int -> d:int -> int
(** Degree of h_t(z) = f(u_t(z), v_t(z)): d·(K−1). *)

val code_dimension : k:int -> d:int -> int
(** Reed–Solomon dimension d·(K−1) + 1. *)

val decoding_ok : t -> bool
(** Table 2, decoding column. *)

val consensus_ok : t -> bool
(** Table 2, input-consensus column. *)

val output_delivery_ok : t -> bool
(** Table 2, output-delivery column. *)

val valid : t -> bool

val max_machines : network:network -> n:int -> b:int -> d:int -> int
(** Largest feasible K. *)

val max_faults : network:network -> n:int -> k:int -> d:int -> int
(** Largest tolerable b (-1 when even b = 0 is infeasible). *)

val theorem_k_max : network:network -> n:int -> mu:float -> d:int -> int
(** K_max with a fault fraction: ⌊(1−cμ)N/d + 1 − 1/d⌋, c ∈ {2,3}. *)

val storage_efficiency : t -> int
(** γ = K (Section 5.1). *)

val make : network:network -> n:int -> k:int -> d:int -> b:int -> t
(** @raise Invalid_argument when infeasible. *)

val pp : Format.formatter -> t -> unit
