(* Wire serialization of field-element vectors.

   Consensus protocols agree on byte strings; commands are K vectors of
   field elements.  The format is a plain decimal encoding — compact
   enough for a simulation and trivially deterministic, which matters
   because consensus values are compared and signed as strings. *)

module Field_intf = Csm_field.Field_intf

module Make (F : Field_intf.S) = struct
  let encode_vector (v : F.t array) =
    String.concat "," (Array.to_list (Array.map (fun x -> string_of_int (F.to_int x)) v))

  let decode_vector ~dim s =
    if s = "" && dim = 0 then Some [||]
    else
      let parts = String.split_on_char ',' s in
      if List.length parts <> dim then None
      else
        try
          Some (Array.of_list (List.map (fun p -> F.of_int (int_of_string p)) parts))
        with Failure _ -> None

  (* K command vectors, ';'-separated. *)
  let encode_commands (commands : F.t array array) =
    String.concat ";" (Array.to_list (Array.map encode_vector commands))

  let decode_commands ~k ~dim s =
    let parts = String.split_on_char ';' s in
    if List.length parts <> k then None
    else
      let decoded = List.filter_map (decode_vector ~dim) parts in
      if List.length decoded = k then Some (Array.of_list decoded) else None
end
