(* A library of named Byzantine execution-phase strategies.

   The engine accepts any corruption function; these are the named
   strategies used across tests, benches and experiments, from weakest
   to strongest:

   - [uniform_shift]: add a constant to every coordinate (detectable,
     always corrected within the bound);
   - [random_garbage]: fresh random vectors (the generic worst case for
     unique decoding beyond the bound);
   - [selective k]: corrupt only the coordinates belonging to one target
     machine's slice of the result vector — shows per-coordinate
     decoding isolates damage no better or worse than full corruption;
   - [colluding_codeword]: all liars evaluate a COMMON low-degree shift
     polynomial δ at their own points, producing a consistent fake
     codeword h+δ — the optimal attack that makes the Table-2 bound
     exactly tight (see the collusion-tightness test);
   - [flip_flop]: lie only on even rounds — an intermittent fault that
     must be re-detected each time (the decoder is stateless). *)

module Field_intf = Csm_field.Field_intf

module Make (F : Field_intf.S) = struct
  module E = Engine.Make (F)

  type t = {
    name : string;
    corruption : round:int -> engine:E.t -> E.corruption;
  }

  let uniform_shift ?(offset = 1) () =
    {
      name = "uniform-shift";
      corruption =
        (fun ~round:_ ~engine:_ ~node:_ g ->
          Array.map (fun v -> F.add v (F.of_int offset)) g);
    }

  let random_garbage ~seed =
    {
      name = "random-garbage";
      corruption =
        (fun ~round ~engine:_ ~node g ->
          let rng = Csm_rng.create (seed + (round * 7919) + node) in
          Array.map (fun _ -> F.random rng) g);
    }

  (* Corrupt only the result coordinates that influence machine
     [target]'s decoded values — which, because decoding is
     per-coordinate over ALL machines' shared polynomial h_j, is every
     coordinate; the selective strategy instead perturbs a single
     coordinate index, showing that even a one-coordinate lie is caught
     by that coordinate's decoder. *)
  let selective ~coordinate =
    {
      name = Printf.sprintf "selective-coord-%d" coordinate;
      corruption =
        (fun ~round:_ ~engine:_ ~node:_ g ->
          let g' = Array.copy g in
          if coordinate < Array.length g' then
            g'.(coordinate) <- F.add g'.(coordinate) F.one;
          g');
    }

  (* All liars agree on δ(z) of degree ≤ d(K−1) and report (h+δ)(αᵢ). *)
  let colluding_codeword ?(delta_seed = 0xDE17A) () =
    {
      name = "colluding-codeword";
      corruption =
        (fun ~round ~engine ~node g ->
          let p = engine.E.params in
          let kdim =
            Params.code_dimension ~k:p.Params.k ~d:p.Params.d
          in
          let rng = Csm_rng.create (delta_seed + round) in
          (* deterministic per-round δ shared by all colluders *)
          let delta_coeffs =
            Array.init kdim (fun _ -> F.random rng)
          in
          let alpha = engine.E.coding.E.Coding.alphas.(node) in
          let dv = ref F.zero in
          for i = kdim - 1 downto 0 do
            dv := F.add (F.mul !dv alpha) delta_coeffs.(i)
          done;
          Array.map (fun v -> F.add v !dv) g);
    }

  let flip_flop inner =
    {
      name = "flip-flop:" ^ inner.name;
      corruption =
        (fun ~round ~engine ->
          if round mod 2 = 0 then inner.corruption ~round ~engine
          else fun ~node:_ g -> g);
    }

  let all ~seed =
    [
      uniform_shift ();
      random_garbage ~seed;
      selective ~coordinate:0;
      colluding_codeword ();
      flip_flop (uniform_shift ());
    ]
end
