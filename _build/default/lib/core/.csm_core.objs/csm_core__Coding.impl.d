lib/core/coding.ml: Array Csm_field Csm_poly Lazy
