lib/core/protocol_chain.mli: Csm_crypto Csm_field Csm_sim Engine Wire
