lib/core/coding.mli: Csm_field Csm_poly Lazy
