lib/core/wire.ml: Array Csm_field List String
