lib/core/engine.mli: Coding Csm_field Csm_machine Csm_metrics Csm_rs Params
