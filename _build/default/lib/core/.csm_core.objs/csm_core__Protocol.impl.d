lib/core/protocol.ml: Array Csm_consensus Csm_crypto Csm_field Csm_rng Csm_sim Engine List Params Printf Queue String Wire
