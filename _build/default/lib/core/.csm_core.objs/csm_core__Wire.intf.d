lib/core/wire.mli: Csm_field
