lib/core/engine.ml: Array Coding Csm_field Csm_machine Csm_metrics Csm_rs List Params
