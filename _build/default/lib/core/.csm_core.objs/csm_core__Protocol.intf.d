lib/core/protocol.mli: Csm_crypto Csm_field Csm_sim Engine Params Wire
