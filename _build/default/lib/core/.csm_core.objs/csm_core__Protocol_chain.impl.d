lib/core/protocol_chain.ml: Array Csm_consensus Csm_crypto Csm_field Csm_sim Engine List Params String Wire
