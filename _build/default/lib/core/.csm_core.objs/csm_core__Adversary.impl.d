lib/core/adversary.ml: Array Csm_field Csm_rng Engine Params Printf
