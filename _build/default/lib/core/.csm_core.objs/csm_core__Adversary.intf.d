lib/core/adversary.mli: Csm_field Engine
