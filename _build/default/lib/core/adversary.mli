(** Named Byzantine execution-phase strategies used across tests and
    experiments, from uniform lies to the optimal colluding-codeword
    attack. *)

module Field_intf = Csm_field.Field_intf

module Make (F : Field_intf.S) : sig
  module E : module type of Engine.Make (F)

  type t = {
    name : string;
    corruption : round:int -> engine:E.t -> E.corruption;
  }

  val uniform_shift : ?offset:int -> unit -> t
  val random_garbage : seed:int -> t
  val selective : coordinate:int -> t

  val colluding_codeword : ?delta_seed:int -> unit -> t
  (** All liars shift by a common degree-≤d(K−1) polynomial evaluated at
      their own points: a consistent alternative codeword, the bound-
      tight attack. *)

  val flip_flop : t -> t
  (** Apply the inner strategy on even rounds only. *)

  val all : seed:int -> t list
end
