(* Parameter calculus of CSM: Theorems 1 and 2 and the Table-2 bounds.

   All bounds trace back to Reed–Solomon unique decoding of the
   composite polynomial h_t(z) = f(u_t(z), v_t(z)), which has degree
   K' = d·(K−1):

   - synchronous: decode length N with b errors  ⇔ 2b + 1 ≤ N − d(K−1);
   - partially synchronous: b results may be withheld, so decode length
     N − b with b errors                         ⇔ 3b + 1 ≤ N − d(K−1);
   - input consensus: b + 1 ≤ N (sync, signed Dolev–Strong) or
     3b + 1 ≤ N (PBFT);
   - output delivery: clients need b + 1 matching responses out of N,
     hence 2b + 1 ≤ N. *)

type network = Sync | Partial_sync

type t = {
  n : int;  (* nodes *)
  k : int;  (* state machines *)
  d : int;  (* degree of the transition polynomial *)
  b : int;  (* Byzantine nodes tolerated *)
  network : network;
}

let composite_degree ~k ~d = d * (k - 1)

let code_dimension ~k ~d = composite_degree ~k ~d + 1

(* Table 2, middle column. *)
let decoding_ok { n; k; d; b; network } =
  match network with
  | Sync -> (2 * b) + 1 <= n - composite_degree ~k ~d
  | Partial_sync -> (3 * b) + 1 <= n - composite_degree ~k ~d

(* Table 2, left column. *)
let consensus_ok { n; b; network; _ } =
  match network with Sync -> b + 1 <= n | Partial_sync -> (3 * b) + 1 <= n

(* Table 2, right column. *)
let output_delivery_ok { n; b; _ } = (2 * b) + 1 <= n

let valid t =
  t.n >= 1 && t.k >= 1 && t.d >= 1 && t.b >= 0 && t.k <= t.n
  && decoding_ok t && consensus_ok t && output_delivery_ok t

(* Maximum K for given (N, b, d): from the decoding bound.
   Sync:    K ≤ (N − 2b − 1)/d + 1   (Theorem 1 with b = μN)
   Partial: K ≤ (N − 3b − 1)/d + 1   (Theorem 2 with b = νN) *)
let max_machines ~network ~n ~b ~d =
  let slack =
    match network with
    | Sync -> n - (2 * b) - 1
    | Partial_sync -> n - (3 * b) - 1
  in
  if slack < 0 then 0 else min n ((slack / d) + 1)

(* Maximum b for given (N, K, d): invert the decoding bound.
   Sync:    b ≤ (N − d(K−1) − 1)/2
   Partial: b ≤ (N − d(K−1) − 1)/3 *)
let max_faults ~network ~n ~k ~d =
  let slack = n - composite_degree ~k ~d - 1 in
  if slack < 0 then -1
  else
    match network with Sync -> slack / 2 | Partial_sync -> slack / 3

(* Theorem statements with fault fraction: K_max = ⌊(1−cμ)N/d + 1 − 1/d⌋
   with c = 2 (sync) or 3 (partial sync). *)
let theorem_k_max ~network ~n ~mu ~d =
  let b = int_of_float (mu *. float_of_int n) in
  max_machines ~network ~n ~b ~d

(* Storage efficiency: each node stores one coded state of the same size
   as an original state, so γ = K (Section 5.1). *)
let storage_efficiency t = t.k

let make ~network ~n ~k ~d ~b =
  let t = { n; k; d; b; network } in
  if not (valid t) then
    invalid_arg
      (Printf.sprintf
         "Params.make: infeasible (n=%d k=%d d=%d b=%d): need %s" n k d b
         (match network with
         | Sync -> "2b+1 <= N - d(K-1)"
         | Partial_sync -> "3b+1 <= N - d(K-1)"));
  t

let pp ppf t =
  Format.fprintf ppf "{n=%d; k=%d; d=%d; b=%d; %s}" t.n t.k t.d t.b
    (match t.network with Sync -> "sync" | Partial_sync -> "partial-sync")
