(** Multi-round CSM over the chained (pipelined) PBFT log: all consensus
    slots agreed concurrently in one simulation, then executed in order
    (the partial-synchrony deployment shape). *)

module Field_intf = Csm_field.Field_intf
module Net = Csm_sim.Net
module Auth = Csm_crypto.Auth

module Make (F : Field_intf.S) : sig
  module E : module type of Engine.Make (F)
  module W : module type of Wire.Make (F)

  type round_report = {
    slot : int;
    agreed : F.t array array option;
    decoded : E.decoded option;
  }

  type outcome = {
    reports : round_report list;
    consensus_stats : Net.stats;
  }

  val run :
    ?corruption:E.corruption ->
    keyring:Auth.keyring ->
    base_timeout:int ->
    byzantine:(int -> bool) ->
    E.t ->
    workload:(int -> F.t array array) ->
    rounds:int ->
    unit ->
    outcome
  (** Byzantine nodes are silent in consensus and withhold in execution
      (the binding partial-sync fault mode).
      @raise Invalid_argument unless the engine's params are
      [Partial_sync]. *)
end
