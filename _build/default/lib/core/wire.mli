(** Deterministic wire encoding of field-element vectors, used as the
    consensus value format. *)

module Field_intf = Csm_field.Field_intf

module Make (F : Field_intf.S) : sig
  val encode_vector : F.t array -> string
  val decode_vector : dim:int -> string -> F.t array option

  val encode_commands : F.t array array -> string
  (** K command vectors, ';'-separated. *)

  val decode_commands : k:int -> dim:int -> string -> F.t array array option
end
