(* Multi-round CSM over the chained (pipelined) PBFT log.

   The per-round driver in [Protocol] runs one consensus instance per
   round, sequentially.  In a real deployment the consensus slots for
   all upcoming rounds run concurrently (the Section-2.2 remark); this
   driver agrees on R command vectors in ONE chained-PBFT simulation
   (see [Csm_consensus.Chain]) and then executes the decided rounds in
   order on the coded engine.  Rounds whose slot decided an invalid or
   undecodable value are skipped consistently. *)

module Field_intf = Csm_field.Field_intf
module Net = Csm_sim.Net
module Auth = Csm_crypto.Auth
module Chain = Csm_consensus.Chain

module Make (F : Field_intf.S) = struct
  module E = Engine.Make (F)
  module W = Wire.Make (F)

  type round_report = {
    slot : int;
    agreed : F.t array array option;  (* decided commands (None = skipped) *)
    decoded : E.decoded option;
  }

  type outcome = {
    reports : round_report list;
    consensus_stats : Net.stats;
  }

  (* [workload slot] is the command vector every honest node proposes
     for that slot (the clients-broadcast model: all honest nodes see
     the same pools). *)
  let run ?(corruption = E.default_corruption) ~keyring ~base_timeout
      ~(byzantine : int -> bool) (engine : E.t)
      ~(workload : int -> F.t array array) ~rounds () : outcome =
    let p = engine.E.params in
    let n = p.Params.n and b = p.Params.b in
    if p.Params.network <> Params.Partial_sync then
      invalid_arg "Protocol_chain.run: chained PBFT is the partial-sync path";
    let cfg =
      {
        Chain.n;
        f = b;
        slots = rounds;
        base_timeout;
        instance = "csm-chain";
        keyring;
      }
    in
    let proposals _node slot = Some (W.encode_commands (workload slot)) in
    let { Chain.decisions; stats } =
      Chain.run cfg ~proposals
        ~byzantine:(fun i -> if byzantine i then Some Net.silent else None)
        ()
    in
    let dim = engine.E.machine.E.M.input_dim in
    let reports =
      List.init rounds (fun slot ->
          (* honest nodes must agree on the slot *)
          let honest =
            List.filter_map
              (fun i -> if byzantine i then None else decisions.(i).(slot))
              (List.init n (fun i -> i))
          in
          let agreed =
            match honest with
            | [] -> None
            | first :: rest ->
              if not (List.for_all (String.equal first) rest) then None
              else W.decode_commands ~k:p.Params.k ~dim first
          in
          match agreed with
          | None -> { slot; agreed = None; decoded = None }
          | Some commands ->
            let report =
              E.round engine ~commands ~byzantine ~corruption
                ~withheld:byzantine ()
            in
            (* Byzantine nodes may also withhold: we model the worst
               partial-sync case where the b faulty nodes send nothing,
               so decoding runs on N − b results. *)
            { slot; agreed = Some commands; decoded = report.E.decoded })
    in
    { reports; consensus_stats = stats }
end
