(* State machine replication baselines (Section 3 of the paper).

   Both engines model the execution phase (the consensus phase is shared
   across all schemes and benchmarked separately, exactly as the paper's
   throughput metric prescribes).  Byzantine nodes execute correctly but
   report corrupted outputs; clients aggregate responses by matching
   votes.

   - Full replication: every node holds all K states and executes all K
     transitions; a client accepts an output once b+1 matching responses
     arrive (requires N ≥ 2b+1).  Storage efficiency γ = 1.
   - Partial replication: the K machines are spread over disjoint groups
     of q = N/K nodes; each node executes only its group's machine.
     Client rule is the same within the group (requires q ≥ 2b_g+1 per
     group).  Storage efficiency γ = K, security drops to ⌊(q−1)/2⌋. *)

module Field_intf = Csm_field.Field_intf
module Scope = Csm_metrics.Scope

module Make (F : Field_intf.S) = struct
  module M = Csm_machine.Machine.Make (F)

  (* A Byzantine execution-phase strategy: how a faulty node corrupts the
     output vector it reports for machine [k].  The default flips every
     coordinate by adding one. *)
  type corruption = node:int -> machine:int -> F.t array -> F.t array

  let default_corruption : corruption =
   fun ~node:_ ~machine:_ y -> Array.map (fun v -> F.add v F.one) y

  (* Majority vote over response vectors: returns the first value
     reaching [threshold] matching votes, if any. *)
  let vote ~threshold (responses : F.t array list) =
    let eq a b =
      Array.length a = Array.length b
      && (let ok = ref true in
          Array.iteri (fun i x -> if not (F.equal x b.(i)) then ok := false) a;
          !ok)
    in
    let rec tally groups = function
      | [] -> groups
      | r :: rest ->
        let groups =
          match List.find_opt (fun (v, _) -> eq v r) groups with
          | Some (v, c) ->
            (v, c + 1) :: List.filter (fun (v', _) -> not (eq v' v)) groups
          | None -> (r, 1) :: groups
        in
        tally groups rest
    in
    let groups = tally [] responses in
    match List.find_opt (fun (_, c) -> c >= threshold) groups with
    | Some (v, _) -> Some v
    | None -> None

  (* ----- Full replication ----- *)

  module Full = struct
    type t = {
      machine : M.t;
      n : int;
      k : int;
      (* states.(i).(k) : state of machine k replicated at node i *)
      mutable states : F.t array array array;
    }

    let create ~machine ~n ~k ~init =
      if Array.length init <> k then invalid_arg "Full.create: init arity";
      {
        machine;
        n;
        k;
        states = Array.init n (fun _ -> Array.map Array.copy init);
      }

    let storage_per_node t = t.k * t.machine.M.state_dim

    (* One round: all nodes execute all K machines; clients vote with
       threshold b+1.  Returns per-machine decided outputs (None if no
       value reached the threshold — a security violation). *)
    let round ?(scope = Scope.null) t ~commands ~byzantine
        ?(corruption = default_corruption) ~b () =
      if Array.length commands <> t.k then invalid_arg "Full.round: commands";
      let responses = Array.make t.k [] in
      for i = t.n - 1 downto 0 do
        Scope.node scope i (fun () ->
            let next, outs = M.run_fleet t.machine ~states:t.states.(i) ~commands in
            t.states.(i) <- next;
            for m = 0 to t.k - 1 do
              let y =
                if byzantine i then corruption ~node:i ~machine:m outs.(m)
                else outs.(m)
              in
              responses.(m) <- y :: responses.(m)
            done)
      done;
      Array.map (vote ~threshold:(b + 1)) responses

    (* Reference states held by node 0 (honest in our experiments). *)
    let states t = t.states.(0)
  end

  (* ----- Partial replication ----- *)

  module Partial = struct
    type t = {
      machine : M.t;
      n : int;
      k : int;
      q : int;  (* group size; n = q * k *)
      (* states.(g) : state of machine g, replicated at its q nodes
         (per-node copies: states.(g).(j) for j in the group) *)
      mutable states : F.t array array array;
    }

    let group_of t node = node / t.q
    let group_members t g = Array.init t.q (fun j -> (g * t.q) + j)

    let create ~machine ~n ~k ~init =
      if n mod k <> 0 then
        invalid_arg "Partial.create: K must divide N (disjoint groups)";
      if Array.length init <> k then invalid_arg "Partial.create: init arity";
      let q = n / k in
      {
        machine;
        n;
        k;
        q;
        states = Array.init k (fun g -> Array.init q (fun _ -> Array.copy init.(g)));
      }

    let storage_per_node t = t.machine.M.state_dim

    let round ?(scope = Scope.null) t ~commands ~byzantine
        ?(corruption = default_corruption) ~b () =
      if Array.length commands <> t.k then invalid_arg "Partial.round: commands";
      let decided = Array.make t.k None in
      for g = 0 to t.k - 1 do
        let members = group_members t g in
        let responses = ref [] in
        Array.iteri
          (fun j node ->
            Scope.node scope node (fun () ->
                let s', y =
                  M.step t.machine ~state:t.states.(g).(j)
                    ~input:commands.(g)
                in
                t.states.(g).(j) <- s';
                let y =
                  if byzantine node then corruption ~node ~machine:g y else y
                in
                responses := y :: !responses))
          members;
        decided.(g) <- vote ~threshold:(b + 1) !responses
      done;
      decided

    let states t = Array.map (fun group -> group.(0)) t.states
  end

  (* Theoretical security bounds of Section 3 (synchronous /
     partially synchronous), for the Table-1 comparison. *)
  let security_full ~n = function
    | `Sync -> (n - 1) / 2
    | `Partial_sync -> (n - 1) / 3

  let security_partial ~n ~k net =
    let q = n / k in
    match net with `Sync -> (q - 1) / 2 | `Partial_sync -> (q - 1) / 3
end
