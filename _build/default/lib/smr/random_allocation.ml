(* Random allocation with rotation — the Section-7 alternative to CSM.

   Nodes are randomly assigned to K groups of q = N/K; each group runs
   one machine by replication.  Against a *static* adversary the fraction
   of corrupted nodes per group concentrates around the global fraction,
   so security looks like μN.  A *dynamic* adversary, however, observes
   the assignment and then corrupts nodes post-facto: owning any single
   group costs only ⌈q/2⌉+1 corruptions, so effective security collapses
   to the group size.  The defense is to rotate the allocation every
   epoch, which forces every reassigned node to re-download its new
   group's state — the bandwidth cost the paper contrasts with CSM (whose
   security is μN against dynamic adversaries with zero migration).

   This module provides the allocation mechanics, both adversaries, the
   compromise test, and the migration-cost accounting used by the
   Section-7 experiment. *)

type t = {
  n : int;
  k : int;
  q : int;
  mutable assignment : int array;  (* node -> group *)
  mutable epoch : int;
}

let create ~n ~k =
  if k < 1 || n mod k <> 0 then
    invalid_arg "Random_allocation.create: K must divide N";
  {
    n;
    k;
    q = n / k;
    assignment = Array.init n (fun i -> i / (n / k));
    epoch = 0;
  }

let group_of t node = t.assignment.(node)

let members t g =
  let out = ref [] in
  for i = t.n - 1 downto 0 do
    if t.assignment.(i) = g then out := i :: !out
  done;
  !out

(* Re-draw a uniformly random balanced assignment; returns the number of
   nodes that changed group (each must re-download one machine state). *)
let rotate rng t =
  let old = Array.copy t.assignment in
  let nodes = Array.init t.n (fun i -> i) in
  Csm_rng.shuffle rng nodes;
  Array.iteri (fun pos node -> t.assignment.(node) <- pos / t.q) nodes;
  t.epoch <- t.epoch + 1;
  let migrations = ref 0 in
  for i = 0 to t.n - 1 do
    if t.assignment.(i) <> old.(i) then incr migrations
  done;
  !migrations

(* Majority threshold to own a group. *)
let ownership_threshold t = (t.q / 2) + 1

(* Static adversary: corrupts [budget] nodes uniformly at random,
   blind to the allocation. *)
let static_corruption rng t ~budget =
  Array.to_list (Csm_rng.sample rng ~n:t.n ~k:(min budget t.n))

(* Dynamic adversary: observes the current allocation and corrupts the
   cheapest set that owns some group (greedy: any group will do since
   all cost the same here), spending the rest of its budget arbitrarily. *)
let adaptive_corruption t ~budget =
  let need = ownership_threshold t in
  if budget < need then
    (* cannot own any group: corrupt the first [budget] nodes *)
    List.init (min budget t.n) (fun i -> i)
  else begin
    let target_group = 0 in
    let core = List.filteri (fun i _ -> i < need) (members t target_group) in
    let rest =
      List.filter (fun i -> not (List.mem i core)) (List.init t.n (fun i -> i))
    in
    core @ List.filteri (fun i _ -> i < budget - need) rest
  end

let group_compromised t ~byzantine g =
  let bad = List.length (List.filter byzantine (members t g)) in
  bad >= ownership_threshold t

let any_group_compromised t ~byzantine =
  let rec go g =
    if g >= t.k then false
    else group_compromised t ~byzantine g || go (g + 1)
  in
  go 0

(* ----- The Section-7 experiment ----- *)

type experiment_result = {
  scheme : string;
  budget : int;  (* adversary corruption budget *)
  epochs : int;
  compromised_epochs : int;  (* epochs with some group owned *)
  compromise_rate : float;
  migrations_per_epoch : float;  (* state re-downloads per epoch *)
}

(* Static adversary vs rotating random allocation: corruption set fixed
   once (before epoch 0), allocation rotates every epoch. *)
let run_static ~seed ~n ~k ~budget ~epochs =
  let rng = Csm_rng.create seed in
  let t = create ~n ~k in
  let corrupted = static_corruption rng t ~budget in
  let byzantine i = List.mem i corrupted in
  let compromised = ref 0 in
  let migrations = ref 0 in
  for _ = 1 to epochs do
    migrations := !migrations + rotate rng t;
    if any_group_compromised t ~byzantine then incr compromised
  done;
  {
    scheme = "random-allocation/static-adversary";
    budget;
    epochs;
    compromised_epochs = !compromised;
    compromise_rate = float_of_int !compromised /. float_of_int epochs;
    migrations_per_epoch = float_of_int !migrations /. float_of_int epochs;
  }

(* Dynamic adversary with reaction delay [delay] epochs: it corrupts the
   owning set of the allocation it observed [delay] epochs ago (releasing
   its previous corruptions — the strongest mobile-adversary model).
   With delay = 0 it always owns a group; with delay ≥ 1, rotation makes
   its information stale and security reverts toward the static case. *)
let run_adaptive ~seed ~n ~k ~budget ~epochs ~delay =
  let rng = Csm_rng.create seed in
  let t = create ~n ~k in
  let history = Queue.create () in
  let compromised = ref 0 in
  let migrations = ref 0 in
  for _ = 1 to epochs do
    Queue.push (Array.copy t.assignment) history;
    (* the adversary acts on the observation from [delay] epochs ago *)
    let observed =
      if Queue.length history > delay then begin
        while Queue.length history > delay + 1 do
          ignore (Queue.pop history)
        done;
        Queue.peek history
      end
      else Queue.peek history
    in
    let stale = { t with assignment = observed } in
    let corrupted = adaptive_corruption stale ~budget in
    let byzantine i = List.mem i corrupted in
    if any_group_compromised t ~byzantine then incr compromised;
    migrations := !migrations + rotate rng t
  done;
  {
    scheme = Printf.sprintf "random-allocation/adaptive(delay=%d)" delay;
    budget;
    epochs;
    compromised_epochs = !compromised;
    compromise_rate = float_of_int !compromised /. float_of_int epochs;
    migrations_per_epoch = float_of_int !migrations /. float_of_int epochs;
  }

(* CSM reference row: compromise requires budget > b_max (the Table-2
   decoding bound), independent of any allocation; zero migration. *)
let csm_reference ~n ~k ~d ~budget ~epochs =
  let b_max =
    Csm_core.Params.max_faults ~network:Csm_core.Params.Sync ~n ~k ~d
  in
  let compromised = budget > b_max in
  {
    scheme = "csm";
    budget;
    epochs;
    compromised_epochs = (if compromised then epochs else 0);
    compromise_rate = (if compromised then 1.0 else 0.0);
    migrations_per_epoch = 0.0;
  }

let pp_result ppf r =
  Format.fprintf ppf
    "%-40s budget=%-4d compromise=%5.1f%%  migrations/epoch=%.1f" r.scheme
    r.budget
    (100.0 *. r.compromise_rate)
    r.migrations_per_epoch
