lib/smr/replication.ml: Array Csm_field Csm_machine Csm_metrics List
