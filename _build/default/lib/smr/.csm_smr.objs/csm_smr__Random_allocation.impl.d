lib/smr/random_allocation.ml: Array Csm_core Csm_rng Format List Printf Queue
