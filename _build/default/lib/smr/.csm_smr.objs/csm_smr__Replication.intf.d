lib/smr/replication.mli: Csm_field Csm_machine Csm_metrics
