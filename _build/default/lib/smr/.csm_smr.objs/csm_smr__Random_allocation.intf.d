lib/smr/random_allocation.mli: Csm_rng Format
