(** State machine replication baselines (Section 3): full and partial
    replication execution engines with Byzantine output corruption and
    client-side vote aggregation. *)

module Field_intf = Csm_field.Field_intf
module Scope = Csm_metrics.Scope

module Make (F : Field_intf.S) : sig
  module M : module type of Csm_machine.Machine.Make (F)

  type corruption = node:int -> machine:int -> F.t array -> F.t array

  val default_corruption : corruption
  (** Adds one to every coordinate of the true output. *)

  val vote : threshold:int -> F.t array list -> F.t array option
  (** First response value with at least [threshold] matching votes. *)

  module Full : sig
    type t

    val create : machine:M.t -> n:int -> k:int -> init:F.t array array -> t
    val storage_per_node : t -> int
    (** Field elements stored per node (K × state_dim). *)

    val round :
      ?scope:Scope.t ->
      t ->
      commands:F.t array array ->
      byzantine:(int -> bool) ->
      ?corruption:corruption ->
      b:int ->
      unit ->
      F.t array option array
    (** Execute one round; clients accept with b+1 matching votes.
        [None] entries mean no output reached the threshold. *)

    val states : t -> F.t array array
    (** States as held by node 0. *)
  end

  module Partial : sig
    type t

    val create : machine:M.t -> n:int -> k:int -> init:F.t array array -> t
    (** @raise Invalid_argument unless K divides N. *)

    val group_of : t -> int -> int
    val group_members : t -> int -> int array
    val storage_per_node : t -> int

    val round :
      ?scope:Scope.t ->
      t ->
      commands:F.t array array ->
      byzantine:(int -> bool) ->
      ?corruption:corruption ->
      b:int ->
      unit ->
      F.t array option array

    val states : t -> F.t array array
  end

  val security_full : n:int -> [ `Sync | `Partial_sync ] -> int
  val security_partial : n:int -> k:int -> [ `Sync | `Partial_sync ] -> int
end
