(** Random allocation with rotation (Section 7): the alternative scaling
    architecture CSM is contrasted with, including static and dynamic
    (post-facto, mobile) adversaries and migration-cost accounting. *)

type t

val create : n:int -> k:int -> t
(** Balanced assignment of N nodes to K groups.
    @raise Invalid_argument unless K divides N. *)

val group_of : t -> int -> int
val members : t -> int -> int list

val rotate : Csm_rng.t -> t -> int
(** Re-draw a uniform balanced assignment; returns the number of nodes
    whose group changed (each must re-download one machine state). *)

val ownership_threshold : t -> int
(** ⌈q/2⌉+1: corruptions needed to own a group. *)

val static_corruption : Csm_rng.t -> t -> budget:int -> int list
(** Allocation-blind corruption set. *)

val adaptive_corruption : t -> budget:int -> int list
(** Post-facto corruption: the cheapest group-owning set under the
    observed allocation (when the budget allows). *)

val group_compromised : t -> byzantine:(int -> bool) -> int -> bool
val any_group_compromised : t -> byzantine:(int -> bool) -> bool

type experiment_result = {
  scheme : string;
  budget : int;
  epochs : int;
  compromised_epochs : int;
  compromise_rate : float;
  migrations_per_epoch : float;
}

val run_static :
  seed:int -> n:int -> k:int -> budget:int -> epochs:int -> experiment_result

val run_adaptive :
  seed:int ->
  n:int ->
  k:int ->
  budget:int ->
  epochs:int ->
  delay:int ->
  experiment_result
(** Mobile adversary acting on an observation [delay] epochs old. *)

val csm_reference :
  n:int -> k:int -> d:int -> budget:int -> epochs:int -> experiment_result
(** CSM's row: compromised iff budget exceeds the Table-2 bound; zero
    migration. *)

val pp_result : Format.formatter -> experiment_result -> unit
