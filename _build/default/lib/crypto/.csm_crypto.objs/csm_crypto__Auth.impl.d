lib/crypto/auth.ml: Array Char Csm_rng Digest Format Printf String
