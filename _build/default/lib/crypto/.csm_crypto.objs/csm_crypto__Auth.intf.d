lib/crypto/auth.mli: Csm_rng Format
