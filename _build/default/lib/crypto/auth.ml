(* Simulated authentication (the "authenticated Byzantine faults" model).

   The paper assumes messages are cryptographically signed so that
   "impersonating others' messages is easily detectable".  We realize
   this as an ideal functionality: a keyring holds one secret per node;
   signing MACs the message under the signer's secret (MD5 over
   secret ‖ message), and verification recomputes.  In the simulation the
   verifier legitimately holds the keyring — this models a PKI where
   verification is public — while Byzantine *protocol* code only ever
   receives [signer] capabilities for its own identities, so forging
   another node's signature is impossible by construction. *)

type signature = string (* 16-byte MD5 digest *)

type keyring = { secrets : string array }

type signer = { id : int; secret : string }

let create_keyring rng ~n =
  let secrets =
    Array.init n (fun i ->
        (* 128 bits of deterministic secret material per node *)
        Printf.sprintf "%016Lx%016Lx-%d" (Csm_rng.next_int64 rng)
          (Csm_rng.next_int64 rng) i)
  in
  { secrets }

let size k = Array.length k.secrets

let signer k id =
  if id < 0 || id >= size k then invalid_arg "Auth.signer: bad id";
  { id; secret = k.secrets.(id) }

let mac secret message = Digest.string (secret ^ "|" ^ message)

let sign (s : signer) message : signature = mac s.secret message

let verify k ~id message (sg : signature) =
  if id < 0 || id >= size k then false
  else String.equal sg (mac k.secrets.(id) message)

(* ----- Simulated VRF (for secret committee election, Section 6.1) -----

   vrf_eval(sk, input) = (value ∈ [0,1), proof); the proof is the MAC
   itself, so verification recomputes the value from the claimed node's
   secret.  Unpredictable before reveal (the adversary lacks the
   secret), verifiable after — the two properties the paper uses. *)

type vrf_proof = { node : int; output : string }

let vrf_eval (s : signer) ~input =
  let output = mac s.secret ("vrf|" ^ input) in
  (* first 7 bytes -> uniform float in [0,1) *)
  let v = ref 0.0 in
  for i = 0 to 6 do
    v := (!v *. 256.0) +. float_of_int (Char.code output.[i])
  done;
  let value = !v /. (256.0 ** 7.0) in
  (value, { node = s.id; output })

let vrf_verify k ~input (proof : vrf_proof) =
  if proof.node < 0 || proof.node >= size k then None
  else begin
    let expect = mac k.secrets.(proof.node) ("vrf|" ^ input) in
    if not (String.equal expect proof.output) then None
    else begin
      let v = ref 0.0 in
      for i = 0 to 6 do
        v := (!v *. 256.0) +. float_of_int (Char.code expect.[i])
      done;
      Some (!v /. (256.0 ** 7.0))
    end
  end

let pp_signature ppf (s : signature) =
  Format.pp_print_string ppf (Digest.to_hex s)
