(** Simulated authentication: ideal signatures and a simulated VRF,
    realizing the paper's "authenticated Byzantine faults" assumption
    and the secret committee election of Section 6.1. *)

type signature

type keyring
(** Public verification context (models a PKI). *)

type signer
(** A single node's signing capability; Byzantine protocol code only
    ever holds signers for its own identities. *)

val create_keyring : Csm_rng.t -> n:int -> keyring

val size : keyring -> int

val signer : keyring -> int -> signer
(** @raise Invalid_argument on a bad node id. *)

val sign : signer -> string -> signature

val verify : keyring -> id:int -> string -> signature -> bool
(** [verify k ~id msg s] checks that node [id] signed [msg]. *)

type vrf_proof

val vrf_eval : signer -> input:string -> float * vrf_proof
(** Pseudorandom value in [\[0,1)] bound to (node, input), plus a proof. *)

val vrf_verify : keyring -> input:string -> vrf_proof -> float option
(** Returns the verified VRF value, or [None] if the proof is invalid. *)

val pp_signature : Format.formatter -> signature -> unit
