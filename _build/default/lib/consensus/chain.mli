(** Multi-slot pipelined replicated log over single-slot PBFT: all slots
    run concurrently in one simulation. *)

module Net = Csm_sim.Net
module Auth = Csm_crypto.Auth

type msg = { slot : int; inner : Pbft.msg }

type config = {
  n : int;
  f : int;
  slots : int;
  base_timeout : int;
  instance : string;
  keyring : Auth.keyring;
}

val slot_config : config -> int -> Pbft.config

val sub_api : config -> int -> msg Net.api -> Pbft.msg Net.api
(** Slot-scoped view of the network api (tagged messages / timers). *)

val honest :
  config ->
  me:int ->
  proposals:(int -> string option) ->
  on_decide:(node:int -> slot:int -> string -> unit) ->
  unit ->
  msg Net.behavior

type outcome = {
  decisions : string option array array;  (** node → slot → decision *)
  stats : Net.stats;
}

val run :
  config ->
  ?proposals:(int -> int -> string option) ->
  ?byzantine:(int -> msg Net.behavior option) ->
  ?latency:Net.latency ->
  ?max_time:int ->
  unit ->
  outcome
(** [proposals node slot] is the node's proposal for a slot when it
    leads it. *)
