lib/consensus/chain.ml: Array Csm_crypto Csm_sim Pbft Printf
