lib/consensus/chain.mli: Csm_crypto Csm_sim Pbft
