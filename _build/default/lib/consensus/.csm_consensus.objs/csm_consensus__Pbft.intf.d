lib/consensus/pbft.mli: Csm_crypto Csm_sim
