lib/consensus/pbft.ml: Array Csm_crypto Csm_sim Digest List Printf String
