lib/consensus/dolev_strong.ml: Array Csm_crypto Csm_sim List
