lib/consensus/dolev_strong.mli: Csm_crypto Csm_sim
