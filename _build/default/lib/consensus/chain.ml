(* Multi-slot replicated log on top of single-slot PBFT.

   CSM needs one consensus decision per round index t.  Running those
   instances back-to-back wastes the network: PBFT slots are
   independent, so all of them can run concurrently in one simulation —
   the classic pipelined replicated log.  This module multiplexes many
   [Pbft.honest] instances inside one node behavior:

   - messages are tagged with their slot;
   - timer tags encode (slot, view) as slot + slots·view;
   - each slot has its own proposal and decision callback;
   - signature domains are separated per slot via the instance string.

   The tests check per-slot agreement/validity under crashed leaders and
   that the pipelined makespan of S slots is far below S × (single-slot
   time). *)

module Net = Csm_sim.Net
module Auth = Csm_crypto.Auth

type msg = { slot : int; inner : Pbft.msg }

type config = {
  n : int;
  f : int;
  slots : int;
  base_timeout : int;
  instance : string;
  keyring : Auth.keyring;
}

let slot_config cfg slot : Pbft.config =
  {
    Pbft.n = cfg.n;
    f = cfg.f;
    base_timeout = cfg.base_timeout;
    instance = Printf.sprintf "%s/slot-%d" cfg.instance slot;
    keyring = cfg.keyring;
  }

(* Wrap an api so that an inner single-slot instance transparently sends
   slot-tagged messages and slot-encoded timers. *)
let sub_api cfg slot (api : msg Net.api) : Pbft.msg Net.api =
  {
    Net.me = api.Net.me;
    n = api.Net.n;
    now = api.Net.now;
    send = (fun dst inner -> api.Net.send dst { slot; inner });
    broadcast = (fun inner -> api.Net.broadcast { slot; inner });
    set_timer =
      (fun ~delay ~tag ->
        api.Net.set_timer ~delay ~tag:(slot + (cfg.slots * tag)));
    halt = api.Net.halt;
  }

let honest cfg ~me ~(proposals : int -> string option)
    ~(on_decide : node:int -> slot:int -> string -> unit) () :
    msg Net.behavior =
  (* one inner behavior per slot, created eagerly at init *)
  let instances : Pbft.msg Net.behavior array =
    Array.init cfg.slots (fun slot ->
        Pbft.honest (slot_config cfg slot) ~me ?proposal:(proposals slot)
          ~on_decide:(fun node value -> on_decide ~node ~slot value)
          ())
  in
  {
    Net.init =
      (fun api ->
        for slot = 0 to cfg.slots - 1 do
          instances.(slot).Net.init (sub_api cfg slot api)
        done);
    on_message =
      (fun api ~sender m ->
        if m.slot >= 0 && m.slot < cfg.slots then
          instances.(m.slot).Net.on_message (sub_api cfg m.slot api) ~sender
            m.inner);
    on_timer =
      (fun api tag ->
        let slot = tag mod cfg.slots in
        let inner = tag / cfg.slots in
        instances.(slot).Net.on_timer (sub_api cfg slot api) inner);
  }

type outcome = {
  decisions : string option array array;  (* node -> slot -> decision *)
  stats : Net.stats;
}

let run cfg ?(proposals = fun _ _ -> None) ?(byzantine = fun _ -> None)
    ?(latency = Net.sync ~delta:10) ?(max_time = 2_000_000) () : outcome =
  let decisions = Array.init cfg.n (fun _ -> Array.make cfg.slots None) in
  let on_decide ~node ~slot value = decisions.(node).(slot) <- Some value in
  let behaviors =
    Array.init cfg.n (fun i ->
        match byzantine i with
        | Some b -> b
        | None -> honest cfg ~me:i ~proposals:(proposals i) ~on_decide ())
  in
  let stats = Net.run ~max_time ~latency behaviors in
  { decisions; stats }
