(* End-to-end networked CSM demo CLI:

     csm_run [-n N] [-k K] [-d D] [-b B] [--rounds R]
             [--network sync|partial] [--adversary none|lie|equivocate|withhold]

   Runs the full protocol (consensus + coded execution + client
   delivery) on the simulator and prints a per-round report. *)

open Cmdliner
module F = Csm_field.Fp.Default
module P = Csm_core.Protocol.Make (F)
module E = P.E
module M = E.M
module Params = Csm_core.Params

let run n k d b rounds network adversary seed =
  let network =
    match network with
    | "partial" -> Params.Partial_sync
    | _ -> Params.Sync
  in
  let machine = M.degree_machine d in
  let params =
    try Params.make ~network ~n ~k ~d ~b
    with Invalid_argument msg ->
      prerr_endline msg;
      exit 1
  in
  let rng = Csm_rng.create seed in
  let init =
    Array.init k (fun i -> [| F.of_int (1000 * (i + 1)) |])
  in
  let engine = E.create ~machine ~params ~init in
  let cfg = P.default_config params in
  let liars = List.init b (fun i -> n - 1 - i) in
  let adv =
    match adversary with
    | "lie" -> P.lying_adversary liars
    | "equivocate" -> P.equivocating_adversary liars
    | "withhold" -> P.withholding_adversary liars
    | _ -> P.passive_adversary
  in
  Format.printf "CSM: N=%d K=%d d=%d b=%d %s adversary=%s@." n k d b
    (match network with Params.Sync -> "sync" | Params.Partial_sync -> "partial-sync")
    adversary;
  Format.printf "machine: %a@." M.pp machine;
  if liars <> [] && adversary <> "none" then
    Format.printf "byzantine nodes: %s@."
      (String.concat "," (List.map string_of_int liars));
  let workload r =
    Array.init k (fun m -> [| F.of_int ((10 * r) + m + 1 + Csm_rng.int rng 5) |])
  in
  let outcomes = P.run cfg engine ~workload ~rounds adv in
  List.iter
    (fun (o : P.round_outcome) ->
      Format.printf "round %d: consensus=%s executed=%b honest_agree=%b@."
        o.P.round
        (match o.P.consensus with
        | P.Agreed _ -> "agreed"
        | P.Skipped -> "skipped(⊥)"
        | P.Disagreement -> "DISAGREEMENT")
        o.P.executed o.P.honest_agree;
      (match o.P.decoded with
      | Some dec when dec.E.error_nodes <> [] ->
        Format.printf "  corrected errors from nodes: %s@."
          (String.concat "," (List.map string_of_int dec.E.error_nodes))
      | _ -> ());
      Array.iteri
        (fun m out ->
          match out with
          | Some y ->
            Format.printf "  machine %d output -> client: %s@." m
              (F.to_string y.(0))
          | None -> Format.printf "  machine %d: no delivery@." m)
        o.P.delivered)
    outcomes;
  let executed =
    List.length (List.filter (fun o -> o.P.executed) outcomes)
  in
  Format.printf "summary: %d/%d rounds executed@." executed rounds

let () =
  let n = Arg.(value & opt int 11 & info [ "n" ] ~doc:"Nodes.") in
  let k = Arg.(value & opt int 3 & info [ "k" ] ~doc:"State machines.") in
  let d = Arg.(value & opt int 2 & info [ "d" ] ~doc:"Degree.") in
  let b = Arg.(value & opt int 2 & info [ "b" ] ~doc:"Byzantine nodes.") in
  let rounds = Arg.(value & opt int 5 & info [ "rounds" ] ~doc:"Rounds.") in
  let network =
    Arg.(value & opt string "sync" & info [ "network" ] ~doc:"sync|partial.")
  in
  let adversary =
    Arg.(
      value & opt string "lie"
      & info [ "adversary" ] ~doc:"none|lie|equivocate|withhold.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"RNG seed.") in
  let cmd =
    Cmd.v
      (Cmd.info "csm_run" ~doc:"Run the networked Coded State Machine")
      Term.(const run $ n $ k $ d $ b $ rounds $ network $ adversary $ seed)
  in
  exit (Cmd.eval cmd)
