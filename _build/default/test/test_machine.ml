(* State machines: concrete machine semantics, degrees, fleet execution,
   and the Boolean-lifted machines vs. bit-level reference. *)

open Csm_field
module F = Fp.Default
module M = Csm_machine.Machine.Make (F)

let fi = F.of_int
let ti = F.to_int

let bank_semantics () =
  let m = M.bank () in
  Alcotest.(check int) "degree" 1 (M.degree m);
  let s, y = M.step m ~state:[| fi 100 |] ~input:[| fi 42 |] in
  Alcotest.(check int) "state" 142 (ti s.(0));
  Alcotest.(check int) "output" 142 (ti y.(0));
  let s, _ = M.step m ~state:s ~input:[| F.neg (fi 12) |] in
  Alcotest.(check int) "withdraw" 130 (ti s.(0))

let interest_semantics () =
  let m = M.interest_market () in
  Alcotest.(check int) "degree" 2 (M.degree m);
  let s, y = M.step m ~state:[| fi 1000 |] ~input:[| fi 5 |] in
  (* s' = s + s*x = 1000 + 5000; y = 5000 *)
  Alcotest.(check int) "state" 6000 (ti s.(0));
  Alcotest.(check int) "interest" 5000 (ti y.(0))

let cubic_semantics () =
  let m = M.cubic_accumulator () in
  Alcotest.(check int) "degree" 3 (M.degree m);
  let s, _ = M.step m ~state:[| fi 10 |] ~input:[| fi 3 |] in
  Alcotest.(check int) "state" 37 (ti s.(0))

let pair_market_semantics () =
  let m = M.pair_market () in
  Alcotest.(check int) "degree" 2 (M.degree m);
  let s, _ =
    M.step m ~state:[| fi 100; fi 200 |] ~input:[| fi 3; fi 5 |]
  in
  Alcotest.(check int) "a'" 103 (ti s.(0));
  (* b' = 200 + 5 + 15 = 220 *)
  Alcotest.(check int) "b'" 220 (ti s.(1))

let degree_machine_family () =
  for d = 1 to 6 do
    let m = M.degree_machine d in
    Alcotest.(check int) (Printf.sprintf "degree %d" d) d (M.degree m)
  done

let run_accumulates () =
  let m = M.bank () in
  let inputs = List.map (fun v -> [| fi v |]) [ 1; 2; 3; 4; 5 ] in
  let outs, final = M.run m ~state:[| fi 0 |] inputs in
  Alcotest.(check int) "final" 15 (ti final.(0));
  Alcotest.(check (list int)) "receipts" [ 1; 3; 6; 10; 15 ]
    (List.map (fun y -> ti y.(0)) outs)

let fleet_independent () =
  let m = M.interest_market () in
  let states = [| [| fi 10 |]; [| fi 20 |]; [| fi 30 |] |] in
  let commands = [| [| fi 1 |]; [| fi 2 |]; [| fi 3 |] |] in
  let next, outs = M.run_fleet m ~states ~commands in
  Alcotest.(check int) "m0" 20 (ti next.(0).(0));
  Alcotest.(check int) "m1" 60 (ti next.(1).(0));
  Alcotest.(check int) "m2" 120 (ti next.(2).(0));
  Alcotest.(check int) "y1" 40 (ti outs.(1).(0))

let arity_checks () =
  let m = M.bank () in
  Alcotest.check_raises "bad state"
    (Invalid_argument "Machine.step: state arity") (fun () ->
      ignore (M.step m ~state:[| fi 0; fi 1 |] ~input:[| fi 0 |]));
  Alcotest.check_raises "bad input"
    (Invalid_argument "Machine.step: input arity") (fun () ->
      ignore (M.step m ~state:[| fi 0 |] ~input:[||]))

(* random machine: step = direct evaluation of its polynomials *)
let random_machine_consistent () =
  let rng = Csm_rng.create 77 in
  for _ = 1 to 20 do
    let m =
      M.random rng ~state_dim:2 ~input_dim:2 ~output_dim:1
        ~degree:(1 + Csm_rng.int rng 3)
        ~terms:4
    in
    let st = Array.init 2 (fun _ -> F.random rng) in
    let inp = Array.init 2 (fun _ -> F.random rng) in
    let s', y = M.step m ~state:st ~input:inp in
    let point = Array.append st inp in
    Array.iteri
      (fun i p ->
        if not (F.equal s'.(i) (M.Mv.eval p point)) then
          Alcotest.fail "next_state mismatch")
      m.M.next_state;
    Array.iteri
      (fun i p ->
        if not (F.equal y.(i) (M.Mv.eval p point)) then
          Alcotest.fail "output mismatch")
      m.M.output
  done

(* ----- Boolean machines over GF(2^10) ----- *)

module G = Gf2m.Gf1024
module BM = Csm_machine.Boolean_machine.Make (G)

let majority_register_matches_bits () =
  let m = BM.majority_register () in
  (* majority(a,b,c) = ab + bc + ca over GF(2): the cubic terms of the
     Zou construction cancel, leaving degree 2 *)
  Alcotest.(check int) "degree 2" 2 (BM.M.degree m);
  let maj (a : bool array) =
    Array.fold_left (fun c b -> if b then c + 1 else c) 0 a >= 2
  in
  List.iter
    (fun (input : bool array) ->
      let s = [| input.(0) |] and x = [| input.(1); input.(2) |] in
      let bits_next, bits_out =
        BM.step_bits ~next_bits:[| maj |] ~out_bits:[| maj |] s x
      in
      let fs, fy =
        BM.M.step m ~state:(BM.embed_bits s) ~input:(BM.embed_bits x)
      in
      Alcotest.(check (array bool)) "next" bits_next (BM.to_bits fs);
      Alcotest.(check (array bool)) "out" bits_out (BM.to_bits fy))
    (BM.B.all_inputs 3)

let toggle_latch_matches_bits () =
  let m = BM.toggle_latch () in
  Alcotest.(check int) "degree 2" 2 (BM.M.degree m);
  List.iter
    (fun (input : bool array) ->
      let s = [| input.(0) |] and x = [| input.(1); input.(2) |] in
      let expect = input.(0) <> (input.(1) && input.(2)) in
      let fs, _ = BM.M.step m ~state:(BM.embed_bits s) ~input:(BM.embed_bits x) in
      Alcotest.(check bool) "next" expect (BM.to_bits fs).(0))
    (BM.B.all_inputs 3)

let register_bank_semantics () =
  let slots = 3 in
  let m = M.register_bank ~slots in
  Alcotest.(check int) "degree" 2 (M.degree m);
  let state = [| fi 10; fi 20; fi 30 |] in
  (* write 99 to slot 1: output echoes old value 20 *)
  let s, y = M.step m ~state ~input:(M.register_write ~slots ~slot:1 (fi 99)) in
  Alcotest.(check int) "old value echoed" 20 (ti y.(0));
  Alcotest.(check int) "slot 0 untouched" 10 (ti s.(0));
  Alcotest.(check int) "slot 1 written" 99 (ti s.(1));
  Alcotest.(check int) "slot 2 untouched" 30 (ti s.(2))

let register_bank_random_writes () =
  let slots = 4 in
  let m = M.register_bank ~slots in
  let r = Csm_rng.create 21 in
  let reference = Array.init slots (fun i -> 10 * i) in
  let state = ref (Array.map fi reference) in
  for _ = 1 to 50 do
    let slot = Csm_rng.int r slots in
    let v = Csm_rng.int r 1000 in
    let s, y = M.step m ~state:!state ~input:(M.register_write ~slots ~slot (fi v)) in
    Alcotest.(check int) "echo" reference.(slot) (ti y.(0));
    reference.(slot) <- v;
    state := s;
    Array.iteri
      (fun i expect -> Alcotest.(check int) "register" expect (ti s.(i)))
      reference
  done

let ripple_counter_counts () =
  let module G = Gf2m.Gf1024 in
  let module BM2 = Csm_machine.Boolean_machine.Make (G) in
  List.iter
    (fun bits ->
      let m = BM2.ripple_counter ~bits in
      let state = ref (BM2.embed_bits (BM2.bits_of_int ~bits 0)) in
      let size = 1 lsl bits in
      for tick = 1 to (2 * size) + 1 do
        let s, y =
          BM2.M.step m ~state:!state ~input:(BM2.embed_bits [| true |])
        in
        state := s;
        let count = BM2.int_of_bits (BM2.to_bits s) in
        Alcotest.(check int)
          (Printf.sprintf "%d-bit count at tick %d" bits tick)
          (tick mod size) count;
        (* overflow carry fires exactly when wrapping to 0 *)
        let expect_carry = tick mod size = 0 in
        Alcotest.(check bool) "carry" expect_carry ((BM2.to_bits y).(0))
      done;
      (* disabled ticks do nothing *)
      let s, y =
        BM2.M.step m ~state:!state ~input:(BM2.embed_bits [| false |])
      in
      Alcotest.(check int) "hold" (BM2.int_of_bits (BM2.to_bits !state))
        (BM2.int_of_bits (BM2.to_bits s));
      Alcotest.(check bool) "no carry" false ((BM2.to_bits y).(0)))
    [ 1; 2; 3 ]

let suites =
  [
    ( "machine",
      [
        Alcotest.test_case "bank" `Quick bank_semantics;
        Alcotest.test_case "interest market" `Quick interest_semantics;
        Alcotest.test_case "cubic accumulator" `Quick cubic_semantics;
        Alcotest.test_case "pair market" `Quick pair_market_semantics;
        Alcotest.test_case "degree_machine family" `Quick degree_machine_family;
        Alcotest.test_case "multi-round run" `Quick run_accumulates;
        Alcotest.test_case "fleet independence" `Quick fleet_independent;
        Alcotest.test_case "arity checks" `Quick arity_checks;
        Alcotest.test_case "random machine consistency" `Quick
          random_machine_consistent;
        Alcotest.test_case "register bank semantics" `Quick
          register_bank_semantics;
        Alcotest.test_case "register bank random writes" `Quick
          register_bank_random_writes;
      ] );
    ( "boolean machine",
      [
        Alcotest.test_case "majority register vs bits" `Quick
          majority_register_matches_bits;
        Alcotest.test_case "toggle latch vs bits" `Quick
          toggle_latch_matches_bits;
        Alcotest.test_case "ripple counters count" `Quick ripple_counter_counts;
      ] );
  ]
