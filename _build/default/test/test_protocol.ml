(* End-to-end networked CSM: consensus + coded execution + client
   delivery over the simulator, under passive, lying, equivocating and
   withholding adversaries, in both network models.  This realizes the
   Figure-1/Figure-2 scenarios of the paper. *)

open Csm_field
open Csm_core
module F = Fp.Default
module P = Protocol.Make (F)
module E = P.E
module M = E.M

let rng = Csm_rng.create 0xE2E
let fi = F.of_int

let machine = M.bank ()

let setup ?(network = Params.Sync) ?(k = 3) ?(b = 2) () =
  let d = M.degree machine in
  let c = match network with Params.Sync -> 2 | Params.Partial_sync -> 3 in
  let n = Params.composite_degree ~k ~d + (c * b) + 1 in
  let params = Params.make ~network ~n ~k ~d ~b in
  let init = Array.init k (fun i -> [| fi (1000 * (i + 1)) |]) in
  let engine = E.create ~machine ~params ~init in
  let cfg = P.default_config params in
  (cfg, engine, init)

let workload k r = Array.init k (fun m -> [| fi ((10 * r) + m + 1) |])

(* Reference trajectory for comparison. *)
let reference init ~k ~rounds =
  let states = ref (Array.map Array.copy init) in
  List.init rounds (fun r ->
      let next, outs = M.run_fleet machine ~states:!states ~commands:(workload k r) in
      states := next;
      outs)

let check_outcomes ?(expect_all_rounds = true) outcomes refs k b_liars =
  List.iteri
    (fun r (o : P.round_outcome) ->
      if expect_all_rounds then begin
        Alcotest.(check bool)
          (Printf.sprintf "round %d executed" r)
          true o.P.executed;
        Alcotest.(check bool) "honest agree" true o.P.honest_agree;
        let expected = List.nth refs r in
        Array.iteri
          (fun m out ->
            match out with
            | None -> Alcotest.failf "round %d machine %d undelivered" r m
            | Some y ->
              if not (F.equal y.(0) expected.(m).(0)) then
                Alcotest.failf "round %d machine %d wrong output" r m)
          o.P.delivered
      end)
    outcomes;
  ignore k;
  ignore b_liars

let honest_run_sync () =
  let cfg, engine, init = setup () in
  let k = cfg.P.params.Params.k in
  let outcomes =
    P.run cfg engine ~workload:(workload k) ~rounds:4 P.passive_adversary
  in
  check_outcomes outcomes (reference init ~k ~rounds:4) k []

let lying_adversary_sync () =
  let cfg, engine, init = setup () in
  let k = cfg.P.params.Params.k in
  let b = cfg.P.params.Params.b in
  (* liars chosen away from early leaders so no round is skipped *)
  let liars = List.init b (fun i -> cfg.P.params.Params.n - 1 - i) in
  let outcomes =
    P.run cfg engine ~workload:(workload k) ~rounds:4 (P.lying_adversary liars)
  in
  check_outcomes outcomes (reference init ~k ~rounds:4) k liars

let equivocating_execution_sync () =
  (* byz nodes send different g to different peers; honest nodes must
     still decode identically (Remark after Table 2) *)
  let cfg, engine, init = setup () in
  let k = cfg.P.params.Params.k in
  let b = cfg.P.params.Params.b in
  let liars = List.init b (fun i -> cfg.P.params.Params.n - 1 - i) in
  let outcomes =
    P.run cfg engine ~workload:(workload k) ~rounds:3
      (P.equivocating_adversary liars)
  in
  check_outcomes outcomes (reference init ~k ~rounds:3) k liars

let byzantine_leader_round_skipped () =
  (* round 0's leader (node 0) is Byzantine and equivocates: honest nodes
     decide ⊥ and skip; round 1 has an honest leader and proceeds *)
  let cfg, engine, _init = setup () in
  let k = cfg.P.params.Params.k in
  let adv = P.lying_adversary [ 0 ] in
  let outcomes = P.run cfg engine ~workload:(workload k) ~rounds:2 adv in
  let r0 = List.nth outcomes 0 and r1 = List.nth outcomes 1 in
  Alcotest.(check bool) "round 0 skipped" true (r0.P.consensus = P.Skipped);
  Alcotest.(check bool) "round 0 not executed" false r0.P.executed;
  Alcotest.(check bool) "round 1 executed" true r1.P.executed

let withholding_partial_sync () =
  let cfg, engine, init = setup ~network:Params.Partial_sync () in
  let k = cfg.P.params.Params.k in
  let b = cfg.P.params.Params.b in
  let liars = List.init b (fun i -> cfg.P.params.Params.n - 1 - i) in
  let outcomes =
    P.run cfg engine ~workload:(workload k) ~rounds:3
      (P.withholding_adversary liars)
  in
  check_outcomes outcomes (reference init ~k ~rounds:3) k liars

let lying_partial_sync () =
  let cfg, engine, init = setup ~network:Params.Partial_sync () in
  let k = cfg.P.params.Params.k in
  let b = cfg.P.params.Params.b in
  let liars = List.init b (fun i -> cfg.P.params.Params.n - 1 - i) in
  let outcomes =
    P.run cfg engine ~workload:(workload k) ~rounds:3 (P.lying_adversary liars)
  in
  check_outcomes outcomes (reference init ~k ~rounds:3) k liars

let partial_sync_with_slow_network () =
  (* adversarial delays before GST: liveness resumes after *)
  let cfg, engine, init = setup ~network:Params.Partial_sync ~k:2 ~b:1 () in
  let cfg = { cfg with P.gst = 500; pre_gst_delay = 100_000 } in
  let k = cfg.P.params.Params.k in
  let outcomes =
    P.run cfg engine ~workload:(workload k) ~rounds:2 P.passive_adversary
  in
  check_outcomes outcomes (reference init ~k ~rounds:2) k []

let figure2_scenario () =
  (* The paper's Figure 2: K=2 machines, N=3 nodes, node 2 malicious.
     N=3, K=2, d=1 gives d(K-1)=1, so sync decoding tolerates
     2b+1 <= 2 -> b=0: Figure 2's parameters only illustrate the flow,
     so we run its faithful "next size up": N=5 tolerates b=1. *)
  let k = 2 and d = 1 and b = 1 in
  let n = Params.composite_degree ~k ~d + (2 * b) + 1 in
  Alcotest.(check int) "n" 4 n;
  let n = max n 5 in
  let params = Params.make ~network:Params.Sync ~n ~k ~d ~b in
  let init = [| [| fi 10 |]; [| fi 20 |] |] in
  let engine = E.create ~machine ~params ~init in
  let cfg = P.default_config params in
  (* node 2 equivocates in consensus when leader and lies in execution *)
  let adv = P.lying_adversary [ 2 ] in
  let outcomes = P.run cfg engine ~workload:(workload k) ~rounds:3 adv in
  List.iteri
    (fun r (o : P.round_outcome) ->
      if r mod n <> 2 then begin
        Alcotest.(check bool) "executed" true o.P.executed;
        (* the liar is exposed by decoding *)
        match o.P.decoded with
        | Some d ->
          Alcotest.(check bool) "node 2 in error set" true
            (List.mem 2 d.E.error_nodes)
        | None -> Alcotest.fail "no decode"
      end)
    outcomes

let storage_stays_coded () =
  (* after protocol rounds the engine's coded states match the reference *)
  let cfg, engine, init = setup () in
  let k = cfg.P.params.Params.k in
  let rounds = 3 in
  ignore (P.run cfg engine ~workload:(workload k) ~rounds P.passive_adversary);
  let states = ref (Array.map Array.copy init) in
  for r = 0 to rounds - 1 do
    let next, _ = M.run_fleet machine ~states:!states ~commands:(workload k r) in
    states := next
  done;
  Alcotest.(check bool) "coded states consistent" true
    (E.consistent_with engine ~states:!states)

let wire_roundtrip () =
  let module W = P.W in
  for _ = 1 to 50 do
    let k = 1 + Csm_rng.int rng 5 in
    let dim = 1 + Csm_rng.int rng 4 in
    let cmds = Array.init k (fun _ -> Array.init dim (fun _ -> F.random rng)) in
    match W.decode_commands ~k ~dim (W.encode_commands cmds) with
    | None -> Alcotest.fail "wire roundtrip failed"
    | Some back ->
      Array.iteri
        (fun i v ->
          Array.iteri
            (fun j x ->
              if not (F.equal x back.(i).(j)) then Alcotest.fail "wire value")
            v)
        cmds
  done;
  (* malformed rejected *)
  Alcotest.(check bool) "bad arity" true
    (P.W.decode_commands ~k:2 ~dim:1 "1" = None);
  Alcotest.(check bool) "bad int" true
    (P.W.decode_commands ~k:1 ~dim:1 "xyz" = None)

(* Differential testing: the networked protocol and the pure engine,
   fed identical commands, must produce identical per-round outputs and
   end in identical coded states (the network layer adds no semantics). *)
let protocol_vs_engine_differential =
  QCheck.Test.make ~name:"protocol = engine (differential)" ~count:10
    (QCheck.make (QCheck.Gen.return ()))
    (fun () ->
      let k = 2 + Csm_rng.int rng 2 in
      let b = 1 + Csm_rng.int rng 2 in
      let d = M.degree machine in
      let n = Params.composite_degree ~k ~d + (2 * b) + 1 in
      let params = Params.make ~network:Params.Sync ~n ~k ~d ~b in
      let init = Array.init k (fun _ -> [| F.random rng |]) in
      let rounds = 3 in
      let cmds =
        Array.init rounds (fun _ ->
            Array.init k (fun _ -> [| F.random rng |]))
      in
      (* networked run *)
      let e1 = E.create ~machine ~params ~init in
      let cfg = P.default_config params in
      let outcomes =
        P.run cfg e1 ~workload:(fun r -> cmds.(r)) ~rounds P.passive_adversary
      in
      (* pure engine run *)
      let e2 = E.create ~machine ~params ~init in
      let ok = ref true in
      List.iteri
        (fun r (o : P.round_outcome) ->
          let report =
            E.round e2 ~commands:cmds.(r) ~byzantine:(fun _ -> false) ()
          in
          match (o.P.decoded, report.E.decoded) with
          | Some a, Some b' ->
            for m = 0 to k - 1 do
              if not (F.equal a.E.outputs.(m).(0) b'.E.outputs.(m).(0)) then
                ok := false
            done
          | _ -> ok := false)
        outcomes;
      (* identical final coded states *)
      Array.iteri
        (fun i v ->
          Array.iteri
            (fun j x ->
              if not (F.equal x e2.E.coded_states.(i).(j)) then ok := false)
            v)
        e1.E.coded_states;
      !ok)

let suites =
  [
    ( "protocol:e2e",
      [
        Alcotest.test_case "honest run (sync)" `Quick honest_run_sync;
        Alcotest.test_case "lying adversary (sync)" `Quick lying_adversary_sync;
        Alcotest.test_case "equivocating execution (sync)" `Quick
          equivocating_execution_sync;
        Alcotest.test_case "byzantine leader: round skipped, next recovers"
          `Quick byzantine_leader_round_skipped;
        Alcotest.test_case "withholding (partial sync)" `Quick
          withholding_partial_sync;
        Alcotest.test_case "lying (partial sync)" `Quick lying_partial_sync;
        Alcotest.test_case "pre-GST adversarial delays" `Quick
          partial_sync_with_slow_network;
        Alcotest.test_case "figure-2 scenario" `Quick figure2_scenario;
        Alcotest.test_case "coded storage stays consistent" `Quick
          storage_stays_coded;
        Alcotest.test_case "wire roundtrip" `Quick wire_roundtrip;
        QCheck_alcotest.to_alcotest ~long:false protocol_vs_engine_differential;
      ] );
  ]
