(* Linear algebra: solver correctness against constructed systems,
   rank/inverse laws, Vandermonde structure. *)

open Csm_field
open Csm_linalg
module F = Fp.Default
module M = Linalg.Make (F)

let rng = Csm_rng.create 0x11A16

let solve_constructed () =
  (* Build A and x, solve A x = b, check A·sol = b (solution may differ
     from x only if A is singular, but A·sol = b must always hold). *)
  for _ = 1 to 50 do
    let n = 1 + Csm_rng.int rng 10 in
    let a = M.random_mat rng n n in
    let x = M.random_vec rng n in
    let b = M.mat_vec a x in
    match M.solve a b with
    | None -> Alcotest.fail "consistent system reported unsolvable"
    | Some sol ->
      if not (M.vec_equal (M.mat_vec a sol) b) then
        Alcotest.fail "solver returned non-solution"
  done

let solve_inconsistent () =
  (* Rows [1 0; 1 0], rhs [0; 1] is inconsistent. *)
  let a = [| [| F.one; F.zero |]; [| F.one; F.zero |] |] in
  let b = [| F.zero; F.one |] in
  (match M.solve a b with
  | None -> ()
  | Some _ -> Alcotest.fail "inconsistent system reported solvable");
  (* and 0 = 0 row should be fine *)
  let a2 = [| [| F.one; F.zero |]; [| F.zero; F.zero |] |] in
  let b2 = [| F.of_int 5; F.zero |] in
  match M.solve a2 b2 with
  | None -> Alcotest.fail "consistent underdetermined system rejected"
  | Some sol ->
    Alcotest.(check bool) "solves" true (M.vec_equal (M.mat_vec a2 sol) b2)

let inverse_roundtrip () =
  for _ = 1 to 30 do
    let n = 1 + Csm_rng.int rng 8 in
    let a = M.random_mat rng n n in
    match M.inverse a with
    | None ->
      (* singular: rank must be < n *)
      if M.rank a = n then Alcotest.fail "full-rank matrix not inverted"
    | Some ai ->
      let prod = M.mat_mul a ai in
      if not (Array.for_all2 (fun r1 r2 -> M.vec_equal r1 r2) prod (M.identity n))
      then Alcotest.fail "A * A^{-1} <> I"
  done

let vandermonde_full_rank () =
  (* Vandermonde on distinct points is invertible. *)
  for n = 1 to 12 do
    let points = Array.init n (fun i -> F.of_int (i + 1)) in
    let v = M.vandermonde points ~cols:n in
    Alcotest.(check int) "rank" n (M.rank v)
  done

let vandermonde_entries () =
  let points = [| F.of_int 2; F.of_int 3 |] in
  let v = M.vandermonde points ~cols:4 in
  let expect = [| [| 1; 2; 4; 8 |]; [| 1; 3; 9; 27 |] |] in
  Array.iteri
    (fun i row ->
      Array.iteri
        (fun j x ->
          Alcotest.(check int)
            (Printf.sprintf "v[%d][%d]" i j)
            expect.(i).(j) (F.to_int x))
        row)
    v

let matmul_assoc () =
  for _ = 1 to 20 do
    let a = M.random_mat rng 4 5 in
    let b = M.random_mat rng 5 3 in
    let x = M.random_vec rng 3 in
    (* (A·B)·x = A·(B·x) *)
    let lhs = M.mat_vec (M.mat_mul a b) x in
    let rhs = M.mat_vec a (M.mat_vec b x) in
    if not (M.vec_equal lhs rhs) then Alcotest.fail "matmul/matvec mismatch"
  done

let transpose_involutive () =
  let a = M.random_mat rng 5 7 in
  let tt = M.transpose (M.transpose a) in
  Array.iteri
    (fun i row ->
      if not (M.vec_equal row tt.(i)) then Alcotest.fail "transpose^2 <> id")
    a

let dot_bilinear () =
  for _ = 1 to 50 do
    let n = 1 + Csm_rng.int rng 10 in
    let a = M.random_vec rng n
    and b = M.random_vec rng n
    and c = M.random_vec rng n in
    let lhs = M.dot a (M.vec_add b c) in
    let rhs = F.add (M.dot a b) (M.dot a c) in
    if not (F.equal lhs rhs) then Alcotest.fail "dot not bilinear"
  done

let suites =
  [
    ( "linalg",
      [
        Alcotest.test_case "solve constructed systems" `Quick solve_constructed;
        Alcotest.test_case "solve inconsistent/underdetermined" `Quick
          solve_inconsistent;
        Alcotest.test_case "inverse roundtrip" `Quick inverse_roundtrip;
        Alcotest.test_case "vandermonde full rank" `Quick vandermonde_full_rank;
        Alcotest.test_case "vandermonde entries" `Quick vandermonde_entries;
        Alcotest.test_case "matmul associativity with vectors" `Quick
          matmul_assoc;
        Alcotest.test_case "transpose involutive" `Quick transpose_involutive;
        Alcotest.test_case "dot bilinear" `Quick dot_bilinear;
      ] );
  ]
