(* INTERMIX: Algorithm 1 correctness and soundness, constant-time
   commoner checks, interaction bounds, committee election, the
   complexity formula, and the verified delegation pipeline of §6.2. *)

open Csm_field
open Csm_core
module F = Fp.Default
module IX = Csm_intermix.Intermix.Make (F)
module D = Csm_intermix.Delegation.Make (F)
module E = D.E
module M = IX.M

let rng = Csm_rng.create 0x1F1F
let fi = F.of_int

let random_instance ?(n = 12) ?(k = 16) () =
  let a = M.random_mat rng n k in
  let x = M.random_vec rng k in
  (a, x)

let honest_accepted () =
  for _ = 1 to 20 do
    let a, x = random_instance () in
    let w = IX.honest_worker a x in
    let report = IX.audit w a x in
    Alcotest.(check bool) "accept" true (report.IX.result = IX.Accept);
    Alcotest.(check int) "no interaction" 0 report.IX.interactions
  done

let blatant_liar_caught () =
  for _ = 1 to 20 do
    let a, x = random_instance () in
    let bad = Csm_rng.int rng 12 in
    let w =
      IX.malicious_worker ~strategy:IX.Blatant ~bad_rows:[ bad ]
        ~offset:(F.random_nonzero rng) a x
    in
    let report = IX.audit w a x in
    match report.IX.result with
    | IX.Accept -> Alcotest.fail "liar accepted"
    | IX.Alert alert ->
      Alcotest.(check bool) "commoner confirms" true
        (IX.commoner_check a x alert);
      (* blatant lies collapse at the first bisection level *)
      Alcotest.(check int) "one interaction" 1 report.IX.interactions
  done

let adaptive_liar_caught_at_leaf () =
  for _ = 1 to 20 do
    let k = 16 in
    let a, x = random_instance ~k () in
    let w =
      IX.malicious_worker ~strategy:IX.Adaptive ~bad_rows:[ 3 ]
        ~offset:(F.random_nonzero rng) a x
    in
    let report = IX.audit w a x in
    match report.IX.result with
    | IX.Accept -> Alcotest.fail "adaptive liar accepted"
    | IX.Alert alert ->
      Alcotest.(check bool) "commoner confirms" true
        (IX.commoner_check a x alert);
      (* adaptive worst case: exactly log2 K levels *)
      Alcotest.(check int) "log K interactions" 4 report.IX.interactions;
      (match alert with
      | IX.Leaf_mismatch _ -> ()
      | IX.Sum_mismatch _ -> Alcotest.fail "expected leaf mismatch")
  done

let interactions_bounded_by_log () =
  List.iter
    (fun k ->
      let a = M.random_mat rng 6 k in
      let x = M.random_vec rng k in
      let w =
        IX.malicious_worker ~strategy:IX.Adaptive ~bad_rows:[ 0 ]
          ~offset:F.one a x
      in
      let report = IX.audit w a x in
      let log2 = int_of_float (ceil (log (float_of_int k) /. log 2.0)) in
      Alcotest.(check bool)
        (Printf.sprintf "k=%d: <= ceil(log2 k)" k)
        true
        (report.IX.interactions <= log2))
    [ 2; 3; 5; 8; 13; 16; 33; 64; 100 ]

let bogus_alert_dismissed () =
  (* a dishonest auditor accuses an honest worker; commoners dismiss *)
  let a, x = random_instance () in
  let w = IX.honest_worker a x in
  let bogus =
    IX.Sum_mismatch
      {
        IX.c_query = { IX.row = 0; lo = 0; hi = 16 };
        c_claim = w.IX.claimed.(0);
        c_left = F.zero;
        c_right = w.IX.claimed.(0);  (* 0 + y = y: consistent, no fraud *)
        c_mid = 8;
      }
  in
  Alcotest.(check bool) "dismissed" false (IX.commoner_check a x bogus);
  let verdict =
    IX.run_protocol w a x ~auditors:[ 0; 1; 2 ]
      ~dishonest_auditor:(fun i -> if i = 1 then Some bogus else None)
  in
  Alcotest.(check bool) "accepted despite bogus alert" true verdict.IX.accepted;
  Alcotest.(check int) "one dismissed" 1 (List.length verdict.IX.dismissed_alerts)

let one_honest_auditor_suffices () =
  (* all auditors but one are silent accomplices; the honest one exposes *)
  let a, x = random_instance () in
  let w =
    IX.malicious_worker ~strategy:IX.Adaptive ~bad_rows:[ 5 ] ~offset:(fi 9) a x
  in
  let verdict =
    IX.run_protocol w a x ~auditors:[ 0; 1; 2; 3 ]
      ~dishonest_auditor:(fun i ->
        if i < 3 then
          (* accomplices raise only consistent (bogus) alerts *)
          Some
            (IX.Leaf_mismatch
               {
                 l_query = { IX.row = 0; lo = 0; hi = 1 };
                 l_claim = F.mul a.(0).(0) x.(0);
               })
        else None)
  in
  Alcotest.(check bool) "fraud detected" false verdict.IX.accepted;
  Alcotest.(check bool) "at least one valid alert" true
    (verdict.IX.valid_alerts <> [])

let committee_size_formula () =
  (* mu = 1/3, eps = 1e-6: J = ceil(ln eps / ln mu) = ceil(13.8/1.09) = 13 *)
  Alcotest.(check int) "mu=1/3" 13
    (IX.committee_size ~epsilon:1e-6 ~mu:(1.0 /. 3.0));
  Alcotest.(check int) "mu=1/2" 20 (IX.committee_size ~epsilon:1e-6 ~mu:0.5);
  (* honest network still audits with one node *)
  Alcotest.(check int) "mu=0" 1 (IX.committee_size ~epsilon:1e-6 ~mu:0.0);
  (* probability check: mu^J <= eps *)
  let j = IX.committee_size ~epsilon:1e-4 ~mu:0.25 in
  Alcotest.(check bool) "mu^J <= eps" true (0.25 ** float_of_int j <= 1e-4)

let election_self () =
  let r = Csm_rng.create 9 in
  let n = 1000 and j = 10 in
  let elected = IX.elect_self r ~n ~j in
  (* expectation 10; loose bounds *)
  let c = List.length elected in
  Alcotest.(check bool) "plausible committee size" true (c >= 1 && c <= 40);
  List.iter (fun i -> Alcotest.(check bool) "range" true (i >= 0 && i < n)) elected

let election_vrf () =
  let keyring = Csm_crypto.Auth.create_keyring (Csm_rng.create 3) ~n:200 in
  let elected = IX.elect_vrf keyring ~seed:"round-7" ~n:200 ~j:20 in
  Alcotest.(check bool) "some auditors" true (List.length elected > 0);
  (* proofs verify against the right seed, fail against another *)
  List.iter
    (fun (node, proof) ->
      Alcotest.(check bool) "verifies" true
        (IX.verify_vrf_election keyring ~seed:"round-7" ~n:200 ~j:20
           (node, proof));
      Alcotest.(check bool) "wrong seed fails" false
        (IX.verify_vrf_election keyring ~seed:"round-8" ~n:200 ~j:20
           (node, proof)))
    elected;
  (* deterministic: same seed, same committee *)
  let again = IX.elect_vrf keyring ~seed:"round-7" ~n:200 ~j:20 in
  Alcotest.(check int) "deterministic" (List.length elected) (List.length again)

(* Measured complexity vs. the closed form: the audited path must stay
   within the paper's worst-case budget. *)
let complexity_within_formula () =
  let module CF = Counted.Make (Fp.Default) in
  let module IXC = Csm_intermix.Intermix.Make (CF) in
  let module MC = IXC.M in
  let ledger = Csm_metrics.Ledger.create () in
  let scope = Csm_metrics.Scope.of_ledger (module CF) ledger in
  let r = Csm_rng.create 12 in
  let n = 24 and k = 32 and j = 3 in
  let a = MC.random_mat r n k in
  let x = MC.random_vec r k in
  let w =
    IXC.malicious_worker ~scope ~strategy:IXC.Adaptive ~bad_rows:[ 2 ]
      ~offset:CF.one a x
  in
  let verdict =
    IXC.run_protocol ~scope w a x
      ~auditors:(List.init j (fun i -> i))
      ~dishonest_auditor:(fun _ -> None)
  in
  Alcotest.(check bool) "fraud caught" false verdict.IXC.accepted;
  let measured = Csm_metrics.Ledger.grand_total ledger in
  let budget = IXC.worst_case_complexity ~n ~k ~j in
  Alcotest.(check bool)
    (Printf.sprintf "measured %d <= budget %d" measured budget)
    true (measured <= budget)

(* Commoner checks cost O(1): independent of K. *)
let commoner_constant_time () =
  let module CF = Counted.Make (Fp.Default) in
  let module IXC = Csm_intermix.Intermix.Make (CF) in
  let module MC = IXC.M in
  let cost k =
    let r = Csm_rng.create 5 in
    let a = MC.random_mat r 4 k in
    let x = MC.random_vec r k in
    let w =
      IXC.malicious_worker ~strategy:IXC.Adaptive ~bad_rows:[ 1 ] ~offset:CF.one
        a x
    in
    let report = IXC.audit w a x in
    match report.IXC.result with
    | IXC.Accept -> Alcotest.fail "expected alert"
    | IXC.Alert alert ->
      let c = Csm_metrics.Counter.create () in
      CF.with_counter c (fun () -> ignore (IXC.commoner_check a x alert));
      Csm_metrics.Counter.total c
  in
  let c16 = cost 16 and c1024 = cost 1024 in
  Alcotest.(check bool) "O(1) commoner" true (c16 <= 2 && c1024 <= 2)

(* ----- Delegation (§6.2) ----- *)

let machine = E.M.interest_market ()

let delegated_setup () =
  let d = E.M.degree machine in
  let k = 3 in
  let b = 2 in
  let n = Params.composite_degree ~k ~d + (2 * b) + 1 in
  let params = Params.make ~network:Params.Sync ~n ~k ~d ~b in
  let init =
    Array.init k (fun _ -> Array.init 1 (fun _ -> F.random rng))
  in
  (params, init)

let delegated_matches_decentralized () =
  let params, init = delegated_setup () in
  let k = params.Params.k in
  let commands =
    Array.init k (fun _ -> [| F.random rng |])
  in
  (* reference: decentralized engine *)
  let e1 = E.create ~machine ~params ~init in
  let r1 = E.round e1 ~commands ~byzantine:(fun i -> i < params.Params.b) () in
  (* delegated: worker node n-1, committee of 2 honest nodes *)
  let e2 = E.create ~machine ~params ~init in
  let out =
    D.round e2 ~commands
      ~byzantine:(fun i -> i < params.Params.b)
      ~worker:(params.Params.n - 1)
      ~committee:[ params.Params.n - 2; params.Params.n - 3 ]
      ()
  in
  match (r1.E.decoded, out.D.decoded) with
  | Some a, Some b ->
    Alcotest.(check bool) "no fraud" true (out.D.fraud = None);
    for m = 0 to k - 1 do
      if not (F.equal a.E.next_states.(m).(0) b.E.next_states.(m).(0)) then
        Alcotest.fail "delegated state mismatch";
      if not (F.equal a.E.outputs.(m).(0) b.E.outputs.(m).(0)) then
        Alcotest.fail "delegated output mismatch"
    done;
    (* engines end in the same coded states *)
    Array.iteri
      (fun i v ->
        Array.iteri
          (fun j x ->
            if not (F.equal x e2.E.coded_states.(i).(j)) then
              Alcotest.fail "coded state divergence")
          v)
      e1.E.coded_states
  | _ -> Alcotest.fail "a round failed"

let lying_worker_caught stage behavior =
  let params, init = delegated_setup () in
  let k = params.Params.k in
  let commands = Array.init k (fun _ -> [| F.random rng |]) in
  let engine = E.create ~machine ~params ~init in
  let before = Array.map Array.copy engine.E.coded_states in
  let out =
    D.round engine ~behavior ~commands
      ~byzantine:(fun _ -> false)
      ~worker:0
      ~committee:[ 1; 2 ]
      ()
  in
  Alcotest.(check bool) "aborted" true (out.D.decoded = None);
  (match out.D.fraud with
  | Some s when s = stage -> ()
  | Some _ -> Alcotest.fail "fraud at wrong stage"
  | None -> Alcotest.fail "fraud not caught");
  (* states must not have advanced *)
  Array.iteri
    (fun i v ->
      Array.iteri
        (fun j x ->
          if not (F.equal x engine.E.coded_states.(i).(j)) then
            Alcotest.fail "state advanced despite fraud")
        v)
    before

let lying_encode_caught () =
  lying_worker_caught D.Encode (D.Lying_encode { node = 2; offset = fi 7 })

let lying_decode_caught () =
  lying_worker_caught D.Decode_cert (D.Lying_decode { coeff = 1; offset = fi 3 })

let lying_update_caught () =
  lying_worker_caught D.Update (D.Lying_update { node = 4; offset = fi 11 })

let delegated_with_byzantine_nodes () =
  (* worker honest, b nodes lie in their local computation: the decode
     certificate still verifies (tau excludes the liars) and results are
     correct *)
  let params, init = delegated_setup () in
  let k = params.Params.k in
  let b = params.Params.b in
  let commands = Array.init k (fun _ -> [| F.random rng |]) in
  let engine = E.create ~machine ~params ~init in
  let out =
    D.round engine ~commands
      ~byzantine:(fun i -> i < b)
      ~worker:(params.Params.n - 1)
      ~committee:[ params.Params.n - 2 ]
      ()
  in
  match out.D.decoded with
  | None -> Alcotest.fail "round aborted"
  | Some d ->
    Alcotest.(check bool) "no fraud" true (out.D.fraud = None);
    (* liars appear in the error report *)
    List.iter
      (fun liar ->
        Alcotest.(check bool) "liar reported" true
          (List.mem liar d.E.error_nodes))
      (List.init b (fun i -> i));
    (* and the decoded states match the uncoded reference *)
    let next_ref, _ = E.M.run_fleet machine ~states:init ~commands in
    for m = 0 to k - 1 do
      if not (F.equal d.E.next_states.(m).(0) next_ref.(m).(0)) then
        Alcotest.fail "wrong decoded state"
    done

(* INTERPOL reduction: verifiable batch polynomial evaluation. *)
let interpol_honest_and_lying () =
  let coeffs = Array.init 20 (fun _ -> F.random rng) in
  let pts = Array.init 12 (fun i -> fi (i + 1)) in
  let inst = IX.eval_instance ~coeffs ~points:pts in
  (* honest: claimed values match direct Horner evaluation *)
  let w = IX.eval_honest_worker inst in
  let claimed = IX.eval_claimed_values w in
  let horner x =
    let acc = ref F.zero in
    for i = Array.length coeffs - 1 downto 0 do
      acc := F.add (F.mul !acc x) coeffs.(i)
    done;
    !acc
  in
  Array.iteri
    (fun i x ->
      if not (F.equal claimed.(i) (horner x)) then
        Alcotest.fail "claimed eval mismatch")
    pts;
  let verdict =
    IX.verify_eval inst w ~auditors:[ 0; 1 ] ~dishonest_auditor:(fun _ -> None)
  in
  Alcotest.(check bool) "honest accepted" true verdict.IX.accepted;
  (* lying: corrupt one claimed value, keep answering honestly *)
  let bad = { w with IX.claimed = Array.copy w.IX.claimed } in
  bad.IX.claimed.(4) <- F.add bad.IX.claimed.(4) F.one;
  let verdict =
    IX.verify_eval inst bad ~auditors:[ 0 ] ~dishonest_auditor:(fun _ -> None)
  in
  Alcotest.(check bool) "liar caught" false verdict.IX.accepted

(* Batched verification: same results, catches the same frauds, and
   strictly cheaper committee work for multi-dimensional machines. *)
let batched_delegation () =
  let machine2 = E.M.pair_market () in
  let d = E.M.degree machine2 in
  let k = 2 and b = 1 in
  let n = Params.composite_degree ~k ~d + (2 * b) + 1 in
  let params = Params.make ~network:Params.Sync ~n ~k ~d ~b in
  let init =
    Array.init k (fun _ -> Array.init 2 (fun _ -> F.random rng))
  in
  let commands = Array.init k (fun _ -> Array.init 2 (fun _ -> F.random rng)) in
  let run ~batch =
    let engine = E.create ~machine:machine2 ~params ~init in
    let out =
      D.round ~batch engine ~commands
        ~byzantine:(fun i -> i < b)
        ~worker:(n - 1) ~committee:[ 0; 1 ] ()
    in
    (out, engine)
  in
  let out_plain, e_plain = run ~batch:false in
  let out_batch, e_batch = run ~batch:true in
  (match (out_plain.D.decoded, out_batch.D.decoded) with
  | Some a, Some b' ->
    for m = 0 to k - 1 do
      for j = 0 to 1 do
        if not (F.equal a.E.next_states.(m).(j) b'.E.next_states.(m).(j)) then
          Alcotest.fail "batched decode differs"
      done
    done;
    Array.iteri
      (fun i v ->
        Array.iteri
          (fun j x ->
            if not (F.equal x e_batch.E.coded_states.(i).(j)) then
              Alcotest.fail "batched coded state differs")
          v)
      e_plain.E.coded_states
  | _ -> Alcotest.fail "a batched round failed");
  (* every cheating strategy still caught in batch mode *)
  List.iter
    (fun (behavior, stage) ->
      let engine = E.create ~machine:machine2 ~params ~init in
      let out =
        D.round ~batch:true ~behavior engine ~commands
          ~byzantine:(fun _ -> false)
          ~worker:0 ~committee:[ 1; 2 ] ()
      in
      match out.D.fraud with
      | Some s when s = stage -> ()
      | Some _ | None -> Alcotest.fail "batched fraud not caught at stage")
    [
      (D.Lying_encode { node = 1; offset = fi 3 }, D.Encode);
      (D.Lying_decode { coeff = 0; offset = fi 3 }, D.Decode_cert);
      (D.Lying_update { node = 2; offset = fi 3 }, D.Update);
    ];
  (* cost: batched committee work strictly below per-coordinate *)
  let module CF = Counted.Make (Fp.Default) in
  let module DC = Csm_intermix.Delegation.Make (CF) in
  let module EC = DC.E in
  let cost ~batch =
    let ledger = Csm_metrics.Ledger.create () in
    let scope = Csm_metrics.Scope.of_ledger (module CF) ledger in
    let machine = EC.M.pair_market () in
    let params = Params.make ~network:Params.Sync ~n ~k ~d ~b in
    let r = Csm_rng.create 7 in
    let init = Array.init k (fun _ -> Array.init 2 (fun _ -> CF.random r)) in
    let commands = Array.init k (fun _ -> Array.init 2 (fun _ -> CF.random r)) in
    let engine = EC.create ~machine ~params ~init in
    let out =
      DC.round ~scope ~batch engine ~commands
        ~byzantine:(fun _ -> false)
        ~worker:(n - 1) ~committee:[ 0 ] ()
    in
    assert (out.DC.decoded <> None);
    Csm_metrics.Ledger.total ledger (Csm_metrics.Ledger.node_role 0)
  in
  let plain = cost ~batch:false and batched = cost ~batch:true in
  Alcotest.(check bool)
    (Printf.sprintf "batched auditor cost %d < %d" batched plain)
    true (batched < plain)

let tau_threshold_formula () =
  Alcotest.(check int) "n=11,k'=4" 8 (D.tau_threshold ~n:11 ~k':4);
  Alcotest.(check int) "n=12,k'=4" 9 (D.tau_threshold ~n:12 ~k':4)

let suites =
  [
    ( "intermix:algorithm1",
      [
        Alcotest.test_case "honest worker accepted" `Quick honest_accepted;
        Alcotest.test_case "blatant liar caught at level 1" `Quick
          blatant_liar_caught;
        Alcotest.test_case "adaptive liar caught at leaf" `Quick
          adaptive_liar_caught_at_leaf;
        Alcotest.test_case "interactions <= ceil(log2 K)" `Quick
          interactions_bounded_by_log;
        Alcotest.test_case "bogus alert dismissed" `Quick bogus_alert_dismissed;
        Alcotest.test_case "one honest auditor suffices" `Quick
          one_honest_auditor_suffices;
      ] );
    ( "intermix:committee",
      [
        Alcotest.test_case "committee size formula" `Quick committee_size_formula;
        Alcotest.test_case "self election" `Quick election_self;
        Alcotest.test_case "VRF election" `Quick election_vrf;
      ] );
    ( "intermix:complexity",
      [
        Alcotest.test_case "measured <= closed form" `Quick
          complexity_within_formula;
        Alcotest.test_case "commoner check is O(1)" `Quick
          commoner_constant_time;
      ] );
    ( "intermix:delegation",
      [
        Alcotest.test_case "delegated = decentralized" `Quick
          delegated_matches_decentralized;
        Alcotest.test_case "lying encode caught" `Quick lying_encode_caught;
        Alcotest.test_case "lying decode caught" `Quick lying_decode_caught;
        Alcotest.test_case "lying update caught" `Quick lying_update_caught;
        Alcotest.test_case "delegation with byzantine nodes" `Quick
          delegated_with_byzantine_nodes;
        Alcotest.test_case "tau threshold" `Quick tau_threshold_formula;
        Alcotest.test_case "INTERPOL: verifiable polynomial evaluation"
          `Quick interpol_honest_and_lying;
        Alcotest.test_case "batched verification (RLC)" `Quick
          batched_delegation;
      ] );
  ]
