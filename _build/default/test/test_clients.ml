(* Client layer: Validity (only submitted commands execute), Liveness
   (all submitted commands eventually execute), output attribution, and
   rejection of fabricated proposals. *)

open Csm_field
open Csm_core
module F = Fp.Default
module P = Protocol.Make (F)
module E = P.E
module M = E.M

let fi = F.of_int
let machine = M.bank ()

let setup ?(k = 2) ?(b = 1) () =
  let d = M.degree machine in
  let n = Params.composite_degree ~k ~d + (2 * b) + 1 in
  let params = Params.make ~network:Params.Sync ~n ~k ~d ~b in
  let init = Array.init k (fun i -> [| fi (100 * (i + 1)) |]) in
  let engine = E.create ~machine ~params ~init in
  (P.default_config params, engine, init)

(* Three clients interleave deposits to two machines over several
   rounds; every submission must execute exactly once, in order, with
   the right output delivered. *)
let liveness_and_attribution () =
  let cfg, engine, init = setup () in
  let k = cfg.P.params.Params.k in
  (* round r: client (r mod 3) submits (r+1) to machine 0; machine 1
     gets a submission only on even rounds *)
  let submissions r =
    Array.init k (fun m ->
        if m = 0 then [ { P.client = r mod 3; command = [| fi (r + 1) |] } ]
        else if r mod 2 = 0 then
          [ { P.client = 10 + (r mod 2); command = [| fi (10 * (r + 1)) |] } ]
        else [])
  in
  let rounds = 6 in
  let run = P.run_with_clients cfg engine ~submissions ~rounds P.passive_adversary in
  Alcotest.(check int) "no leftovers" 0 run.P.leftover;
  (* all rounds executed *)
  Alcotest.(check int) "all executed" rounds
    (List.length (List.filter (fun o -> o.P.executed) run.P.outcomes));
  (* machine-0 deliveries: client r mod 3 got balance 100 + sum(1..r+1) *)
  let bal = ref 100 in
  List.iteri
    (fun r (d : P.delivery) ->
      Alcotest.(check int) "client id" (r mod 3) d.P.d_client;
      bal := !bal + r + 1;
      match d.P.d_output with
      | Some y -> Alcotest.(check int) "balance" !bal (F.to_int y.(0))
      | None -> Alcotest.fail "no delivery")
    (List.filter (fun d -> d.P.d_machine = 0) run.P.deliveries);
  (* machine 1 executed noops on odd rounds: state advanced only by the
     even-round submissions *)
  let m1 =
    List.filter
      (fun (d : P.delivery) -> d.P.d_machine = 1 && d.P.d_client >= 0)
      run.P.deliveries
  in
  Alcotest.(check int) "m1 executed submissions" 3 (List.length m1);
  ignore init

(* A Byzantine leader proposing a fabricated command vector (not in the
   pool) is rejected by honest validation: the round is skipped, the
   pool is intact, and the command executes under the next leader. *)
let fabricated_proposal_rejected () =
  let cfg, engine, _ = setup () in
  let k = cfg.P.params.Params.k in
  (* node 0 (leader of round 0) proposes corrupted commands *)
  let adv = P.lying_adversary [ 0 ] in
  let submissions r =
    Array.init k (fun m ->
        if r = 0 then [ { P.client = 1; command = [| fi (m + 5) |] } ] else [])
  in
  let run = P.run_with_clients cfg engine ~submissions ~rounds:2 adv in
  let o0 = List.nth run.P.outcomes 0 and o1 = List.nth run.P.outcomes 1 in
  Alcotest.(check bool) "round 0 skipped" false o0.P.executed;
  Alcotest.(check bool) "round 1 executed" true o1.P.executed;
  Alcotest.(check int) "commands eventually executed" 0 run.P.leftover;
  (* the round-1 deliveries carry the round-0 submissions *)
  List.iter
    (fun (d : P.delivery) ->
      Alcotest.(check int) "submitting client" 1 d.P.d_client)
    run.P.deliveries

(* Validity even when the fabricated proposal is well-formed wire data:
   an honest node must reject any value not matching the pool heads. *)
let validate_hook_applied () =
  let cfg, engine, _ = setup () in
  let k = cfg.P.params.Params.k in
  let commands = Array.init k (fun m -> [| fi (m + 1) |]) in
  (* validation that rejects everything: consensus decides, execution
     must still be skipped *)
  let outcome =
    P.run_round ~validate:(fun _ -> false) cfg engine ~round:1 ~commands
      P.passive_adversary
  in
  Alcotest.(check bool) "skipped" true (outcome.P.consensus = P.Skipped);
  Alcotest.(check bool) "not executed" false outcome.P.executed

(* Noop rounds advance machines by zero: state unchanged. *)
let noop_rounds_preserve_state () =
  let cfg, engine, init = setup () in
  let k = cfg.P.params.Params.k in
  let submissions _ = Array.init k (fun _ -> []) in
  let run =
    P.run_with_clients cfg engine ~submissions ~rounds:3 P.passive_adversary
  in
  Alcotest.(check int) "all executed" 3
    (List.length (List.filter (fun o -> o.P.executed) run.P.outcomes));
  (* bank with deposit 0: balance unchanged *)
  Alcotest.(check bool) "state preserved" true
    (E.consistent_with engine ~states:init)

(* The client layer composes with the partially synchronous stack too:
   PBFT consensus, withholding faults, pools and attribution. *)
let clients_partial_sync () =
  let k = 2 and b = 1 in
  let d = M.degree machine in
  let n = Params.composite_degree ~k ~d + (3 * b) + 1 in
  let params = Params.make ~network:Params.Partial_sync ~n ~k ~d ~b in
  let init = Array.init k (fun i -> [| fi (100 * (i + 1)) |]) in
  let engine = E.create ~machine ~params ~init in
  let cfg = P.default_config params in
  let adv = P.withholding_adversary [ n - 1 ] in
  let submissions r =
    Array.init k (fun m ->
        [ { P.client = (10 * m) + r; command = [| fi (r + m + 1) |] } ])
  in
  let run = P.run_with_clients cfg engine ~submissions ~rounds:3 adv in
  Alcotest.(check int) "no leftovers" 0 run.P.leftover;
  List.iter
    (fun (d : P.delivery) ->
      match d.P.d_output with
      | Some _ -> ()
      | None -> Alcotest.fail "partial-sync delivery missing")
    run.P.deliveries;
  Alcotest.(check int) "deliveries" (3 * k) (List.length run.P.deliveries)

let suites =
  [
    ( "protocol:clients",
      [
        Alcotest.test_case "liveness + attribution" `Quick
          liveness_and_attribution;
        Alcotest.test_case "fabricated proposal rejected (validity)" `Quick
          fabricated_proposal_rejected;
        Alcotest.test_case "validate hook applied" `Quick validate_hook_applied;
        Alcotest.test_case "noop rounds preserve state" `Quick
          noop_rounds_preserve_state;
        Alcotest.test_case "client layer under partial sync" `Quick
          clients_partial_sync;
      ] );
  ]
