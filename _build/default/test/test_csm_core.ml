(* CSM core: parameter calculus (Theorems 1–2, Table 2), coded states
   (Section 5.1), and the coded execution engine (Section 5.2) against
   the uncoded ground truth under Byzantine corruption and withholding. *)

open Csm_field
open Csm_core
module F = Fp.Default
module E = Engine.Make (F)
module M = E.M
module C = Coding.Make (F)

let rng = Csm_rng.create 0xC5E
let fi = F.of_int

(* ----- Params ----- *)

let params_formulas () =
  (* sync: K <= (N - 2b - 1)/d + 1 *)
  Alcotest.(check int) "sync n=16 b=2 d=1" 12
    (Params.max_machines ~network:Params.Sync ~n:16 ~b:2 ~d:1);
  Alcotest.(check int) "sync n=16 b=2 d=2" 6
    (Params.max_machines ~network:Params.Sync ~n:16 ~b:2 ~d:2);
  Alcotest.(check int) "partial n=16 b=2 d=1" 10
    (Params.max_machines ~network:Params.Partial_sync ~n:16 ~b:2 ~d:1);
  (* K can never exceed N *)
  Alcotest.(check int) "capped at n" 8
    (Params.max_machines ~network:Params.Sync ~n:8 ~b:0 ~d:1);
  (* infeasible => 0 *)
  Alcotest.(check int) "infeasible" 0
    (Params.max_machines ~network:Params.Sync ~n:4 ~b:2 ~d:1)

let params_duality () =
  (* max_faults and max_machines are inverse bounds *)
  List.iter
    (fun network ->
      for n = 4 to 40 do
        for d = 1 to 3 do
          for b = 0 to n / 3 do
            let k = Params.max_machines ~network ~n ~b ~d in
            if k >= 1 then begin
              let b' = Params.max_faults ~network ~n ~k ~d in
              if b' < b then
                Alcotest.failf "duality violated n=%d d=%d b=%d k=%d b'=%d" n
                  d b k b'
            end
          done
        done
      done)
    [ Params.Sync; Params.Partial_sync ]

let params_table2 () =
  let p = Params.make ~network:Params.Sync ~n:20 ~k:5 ~d:2 ~b:5 in
  (* 2*5+1 = 11 <= 20 - 2*4 = 12 *)
  Alcotest.(check bool) "decoding" true (Params.decoding_ok p);
  Alcotest.(check bool) "consensus" true (Params.consensus_ok p);
  Alcotest.(check bool) "delivery" true (Params.output_delivery_ok p);
  (* b = 6 must break decoding: 13 > 12 *)
  Alcotest.(check bool) "boundary" false
    (Params.decoding_ok { p with Params.b = 6 });
  (* partial sync tighter: 3b+1 <= n - d(k-1) -> b <= (12-1)/3 = 3 *)
  Alcotest.(check int) "partial max_faults" 3
    (Params.max_faults ~network:Params.Partial_sync ~n:20 ~k:5 ~d:2)

let params_theorem_scaling () =
  (* Theorem 1: K_max = Θ(N) for fixed μ, d *)
  let mu = 1.0 /. 4.0 and d = 2 in
  let k64 = Params.theorem_k_max ~network:Params.Sync ~n:64 ~mu ~d in
  let k128 = Params.theorem_k_max ~network:Params.Sync ~n:128 ~mu ~d in
  let k256 = Params.theorem_k_max ~network:Params.Sync ~n:256 ~mu ~d in
  (* linear growth: doubling N roughly doubles K *)
  Alcotest.(check bool) "k128 ~ 2*k64" true (abs (k128 - (2 * k64)) <= 2);
  Alcotest.(check bool) "k256 ~ 2*k128" true (abs (k256 - (2 * k128)) <= 2);
  (* closed form check: floor((1-2μ)N/d + 1 - 1/d) *)
  let expect n =
    int_of_float
      (floor (((1.0 -. (2.0 *. mu)) *. float_of_int n /. float_of_int d) +. 1.0 -. (1.0 /. float_of_int d)))
  in
  Alcotest.(check int) "closed form 64" (expect 64) k64;
  Alcotest.(check int) "closed form 128" (expect 128) k128

(* ----- Coding ----- *)

let coding_matches_interpolant () =
  for _ = 1 to 20 do
    let k = 1 + Csm_rng.int rng 6 in
    let n = k + Csm_rng.int rng 12 in
    let c = C.create ~n ~k in
    let values = Array.init k (fun _ -> F.random rng) in
    let coded = C.encode_scalars c values in
    Array.iteri
      (fun i x ->
        (* coded state = u(α_i) *)
        if not (F.equal x (C.interpolant_at c values c.C.alphas.(i))) then
          Alcotest.fail "coded scalar <> u(alpha)";
        if not (F.equal x (C.encode_scalar_at c ~node:i values)) then
          Alcotest.fail "per-node encode mismatch")
      coded;
    (* interpolant recovers originals at ω *)
    Array.iteri
      (fun k' w ->
        if not (F.equal values.(k') (C.interpolant_at c values w)) then
          Alcotest.fail "u(omega_k) <> S_k")
      c.C.omegas
  done

let coding_fast_matches () =
  for _ = 1 to 15 do
    let k = 1 + Csm_rng.int rng 6 in
    let n = k + 1 + Csm_rng.int rng 12 in
    let c = C.create ~n ~k in
    let dim = 1 + Csm_rng.int rng 3 in
    let vectors =
      Array.init k (fun _ -> Array.init dim (fun _ -> F.random rng))
    in
    let a = C.encode_vectors c vectors in
    let b = C.encode_vectors_fast c vectors in
    Array.iteri
      (fun i v ->
        Array.iteri
          (fun j x ->
            if not (F.equal x b.(i).(j)) then
              Alcotest.fail "fast vector encoding mismatch")
          v)
      a
  done

let coding_identity_when_k1 () =
  (* K = 1: every node stores the state itself coded as constant poly *)
  let c = C.create ~n:5 ~k:1 in
  let coded = C.encode_scalars c [| fi 42 |] in
  Array.iter
    (fun x -> Alcotest.(check int) "constant" 42 (F.to_int x))
    coded

(* ----- Engine ----- *)

let machines =
  [
    ("bank", M.bank ());
    ("interest", M.interest_market ());
    ("cubic", M.cubic_accumulator ());
    ("pair", M.pair_market ());
  ]

let random_states machine k =
  Array.init k (fun _ ->
      Array.init machine.M.state_dim (fun _ -> F.random rng))

let random_commands machine k =
  Array.init k (fun _ ->
      Array.init machine.M.input_dim (fun _ -> F.random rng))

(* Multi-round coded execution with b Byzantine nodes must match the
   uncoded fleet exactly, for every example machine. *)
let coded_matches_uncoded () =
  List.iter
    (fun (name, machine) ->
      let d = M.degree machine in
      let k = 3 in
      let b = 2 in
      let n = Params.composite_degree ~k ~d + (2 * b) + 1 in
      let params = Params.make ~network:Params.Sync ~n ~k ~d ~b in
      let init = random_states machine k in
      let engine = E.create ~machine ~params ~init in
      let byz = Array.init n (fun i -> i < b) in
      (* shuffle byzantine positions *)
      Csm_rng.shuffle rng byz;
      let reference = ref (Array.map Array.copy init) in
      for round = 1 to 5 do
        let commands = random_commands machine k in
        let report =
          E.round engine ~commands ~byzantine:(fun i -> byz.(i)) ()
        in
        let next_ref, out_ref =
          M.run_fleet machine ~states:!reference ~commands
        in
        reference := next_ref;
        match report.E.decoded with
        | None -> Alcotest.failf "%s: decode failed at round %d" name round
        | Some dec ->
          for k' = 0 to k - 1 do
            Array.iteri
              (fun j v ->
                if not (F.equal v next_ref.(k').(j)) then
                  Alcotest.failf "%s: state mismatch" name)
              dec.E.next_states.(k');
            Array.iteri
              (fun j v ->
                if not (F.equal v out_ref.(k').(j)) then
                  Alcotest.failf "%s: output mismatch" name)
              dec.E.outputs.(k')
          done;
          (* coded storage stays consistent with the reference states *)
          if not (E.consistent_with engine ~states:!reference) then
            Alcotest.failf "%s: coded states diverged" name
      done)
    machines

(* Byzantine nodes are identified in error_nodes when they actually lie. *)
let error_nodes_identified () =
  let machine = M.bank () in
  let k = 2 and d = 1 and b = 2 in
  let n = Params.composite_degree ~k ~d + (2 * b) + 1 in
  let params = Params.make ~network:Params.Sync ~n ~k ~d ~b in
  let engine = E.create ~machine ~params ~init:(random_states machine k) in
  let liars = [ 1; 3 ] in
  let report =
    E.round engine
      ~commands:(random_commands machine k)
      ~byzantine:(fun i -> List.mem i liars)
      ()
  in
  match report.E.decoded with
  | None -> Alcotest.fail "decode failed"
  | Some dec -> Alcotest.(check (list int)) "liars found" liars dec.E.error_nodes

(* Boundary: with b = max_faults the round succeeds; with one more
   corrupted node and an adversarial corruption, unique decoding fails
   (reported as None) — matching Table 2 exactly. *)
let boundary_faults () =
  let machine = M.interest_market () in
  let d = M.degree machine in
  let k = 3 in
  let n = 14 in
  let b = Params.max_faults ~network:Params.Sync ~n ~k ~d in
  Alcotest.(check bool) "b >= 1" true (b >= 1);
  let params = Params.make ~network:Params.Sync ~n ~k ~d ~b in
  let init = random_states machine k in
  (* success at b *)
  let engine = E.create ~machine ~params ~init in
  let commands = random_commands machine k in
  let report = E.round engine ~commands ~byzantine:(fun i -> i < b) () in
  Alcotest.(check bool) "succeeds at b" true (report.E.decoded <> None);
  (* failure possible at b+1: corrupt b+1 nodes with random garbage;
     decoding must not return a *wrong* answer silently: either it fails,
     or (with negligible probability for random garbage) ... we assert
     failure for this deterministic seed. *)
  let engine2 = E.create ~machine ~params ~init in
  let report2 =
    E.round engine2 ~commands
      ~byzantine:(fun i -> i <= b)
      ~corruption:(fun ~node:_ g -> Array.map (fun _ -> F.random rng) g)
      ()
  in
  Alcotest.(check bool) "fails beyond b" true (report2.E.decoded = None)

(* Partial synchrony: b nodes withhold entirely, a further... no — the
   same b nodes may either withhold or lie; test the worst split allowed:
   b withholding + b lying requires 2b <= b_tolerated... The paper's model:
   up to b faulty; some subset withholds, the rest lie.  We test all
   splits w + l = b. *)
let partial_sync_splits () =
  let machine = M.bank () in
  let d = 1 and k = 3 in
  let b = 2 in
  let n = Params.composite_degree ~k ~d + (3 * b) + 1 in
  let params = Params.make ~network:Params.Partial_sync ~n ~k ~d ~b in
  for lying = 0 to b do
    (* the remaining b - lying faulty nodes withhold *)
    let init = random_states machine k in
    let engine = E.create ~machine ~params ~init in
    let commands = random_commands machine k in
    (* nodes 0..lying-1 lie; nodes lying..b-1 withhold *)
    let report =
      E.round engine ~commands
        ~byzantine:(fun i -> i < lying)
        ~withheld:(fun i -> i >= lying && i < b)
        ()
    in
    (match report.E.decoded with
    | None -> Alcotest.failf "partial sync failed (lying=%d)" lying
    | Some dec ->
      let next_ref, _ = M.run_fleet machine ~states:init ~commands in
      for k' = 0 to k - 1 do
        if not (F.equal dec.E.next_states.(k').(0) next_ref.(k').(0)) then
          Alcotest.fail "partial sync wrong state"
      done)
  done

(* Storage efficiency: a coded state is exactly state_dim field elements,
   so γ = K·state_dim / state_dim = K. *)
let storage_efficiency () =
  let machine = M.pair_market () in
  let k = 3 and d = 2 in
  let n = 12 in
  let b = Params.max_faults ~network:Params.Sync ~n ~k ~d in
  let params = Params.make ~network:Params.Sync ~n ~k ~d ~b in
  let engine = E.create ~machine ~params ~init:(random_states machine k) in
  Alcotest.(check int) "per-node storage" machine.M.state_dim
    (E.storage_per_node engine);
  Alcotest.(check int) "gamma = K" k (Params.storage_efficiency params)

(* Both decoders drive the engine identically. *)
let engine_decoder_agnostic () =
  let machine = M.interest_market () in
  let k = 3 and d = 2 in
  let b = 2 in
  let n = Params.composite_degree ~k ~d + (2 * b) + 1 in
  let params = Params.make ~network:Params.Sync ~n ~k ~d ~b in
  let init = random_states machine k in
  let commands = random_commands machine k in
  let run algorithm =
    let e = E.create ~machine ~params ~init in
    E.round e ~algorithm ~commands ~byzantine:(fun i -> i < b) ()
  in
  let a = run E.RS.Gao and b' = run E.RS.Berlekamp_welch in
  match (a.E.decoded, b'.E.decoded) with
  | Some da, Some db ->
    for k' = 0 to k - 1 do
      if not (F.equal da.E.next_states.(k').(0) db.E.next_states.(k').(0))
      then Alcotest.fail "decoders disagree in engine"
    done
  | _ -> Alcotest.fail "engine decode failed"

(* The Boolean machine path: CSM over GF(2^10) executing the majority
   register, coded, under faults. *)
let boolean_machine_coded () =
  let module G = Gf2m.Gf1024 in
  let module EG = Engine.Make (G) in
  let module BM = Csm_machine.Boolean_machine.Make (G) in
  let machine = BM.majority_register () in
  let d = BM.M.degree machine in
  let k = 2 in
  let b = 1 in
  let n = Params.composite_degree ~k ~d + (2 * b) + 1 in
  let params = Params.make ~network:Params.Sync ~n ~k ~d ~b in
  let r = Csm_rng.create 31 in
  let init =
    Array.init k (fun _ -> BM.embed_bits [| Csm_rng.bool r |])
  in
  let engine = EG.create ~machine ~params ~init in
  let states = ref (Array.map Array.copy init) in
  for _round = 1 to 4 do
    let commands =
      Array.init k (fun _ ->
          BM.embed_bits [| Csm_rng.bool r; Csm_rng.bool r |])
    in
    let report =
      EG.round engine ~commands ~byzantine:(fun i -> i = 0) ()
    in
    let next_ref, _ = BM.M.run_fleet machine ~states:!states ~commands in
    states := next_ref;
    match report.EG.decoded with
    | None -> Alcotest.fail "boolean coded round failed"
    | Some dec ->
      for k' = 0 to k - 1 do
        if not (G.equal dec.EG.next_states.(k').(0) next_ref.(k').(0)) then
          Alcotest.fail "boolean coded state mismatch"
      done
  done

(* Property: for RANDOM polynomial machines, random parameters within the
   Table-2 bound, random Byzantine sets and random corruptions, multi-round
   coded execution equals the uncoded fleet. *)
let qcheck_engine_random_machines =
  QCheck.Test.make ~name:"coded = uncoded on random machines" ~count:40
    (QCheck.make (QCheck.Gen.return ()))
    (fun () ->
      let d = 1 + Csm_rng.int rng 3 in
      let state_dim = 1 + Csm_rng.int rng 2 in
      let input_dim = 1 + Csm_rng.int rng 2 in
      let output_dim = 1 + Csm_rng.int rng 2 in
      let machine =
        M.random rng ~state_dim ~input_dim ~output_dim ~degree:d ~terms:3
      in
      let d = M.degree machine in
      let k = 1 + Csm_rng.int rng 3 in
      let b = Csm_rng.int rng 3 in
      let n = Params.composite_degree ~k ~d + (2 * b) + 1 + Csm_rng.int rng 4 in
      let params = Params.make ~network:Params.Sync ~n ~k ~d ~b in
      let init =
        Array.init k (fun _ ->
            Array.init state_dim (fun _ -> F.random rng))
      in
      let engine = E.create ~machine ~params ~init in
      let byz = Array.init n (fun i -> i < b) in
      Csm_rng.shuffle rng byz;
      let states = ref (Array.map Array.copy init) in
      let ok = ref true in
      for _ = 1 to 3 do
        let commands =
          Array.init k (fun _ ->
              Array.init input_dim (fun _ -> F.random rng))
        in
        let report =
          E.round engine ~commands
            ~byzantine:(fun i -> byz.(i))
            ~corruption:(fun ~node:_ g -> Array.map (fun _ -> F.random rng) g)
            ()
        in
        let next_ref, out_ref = M.run_fleet machine ~states:!states ~commands in
        states := next_ref;
        match report.E.decoded with
        | None -> ok := false
        | Some dec ->
          let veq a b = Array.for_all2 F.equal a b in
          if
            not
              (Array.for_all2 veq dec.E.next_states next_ref
              && Array.for_all2 veq dec.E.outputs out_ref)
          then ok := false
      done;
      !ok)

(* The register-bank machine (realistic KV workload) through coded
   execution: K banks, random writes, liars corrected every round. *)
let register_bank_coded () =
  let slots = 2 in
  let machine = M.register_bank ~slots in
  let d = M.degree machine in
  let k = 2 and b = 1 in
  let n = Params.composite_degree ~k ~d + (2 * b) + 1 in
  let params = Params.make ~network:Params.Sync ~n ~k ~d ~b in
  let init =
    Array.init k (fun bank ->
        Array.init slots (fun i -> fi ((100 * bank) + i)))
  in
  let engine = E.create ~machine ~params ~init in
  let states = ref (Array.map Array.copy init) in
  for round = 1 to 6 do
    let commands =
      Array.init k (fun bank ->
          M.register_write ~slots
            ~slot:(Csm_rng.int rng slots)
            (fi ((round * 10) + bank)))
    in
    let report = E.round engine ~commands ~byzantine:(fun i -> i = 2) () in
    let next_ref, out_ref = M.run_fleet machine ~states:!states ~commands in
    states := next_ref;
    match report.E.decoded with
    | None -> Alcotest.fail "register bank round failed"
    | Some dec ->
      for m = 0 to k - 1 do
        Array.iteri
          (fun j v ->
            if not (F.equal v next_ref.(m).(j)) then
              Alcotest.fail "register bank state mismatch")
          dec.E.next_states.(m);
        if not (F.equal dec.E.outputs.(m).(0) out_ref.(m).(0)) then
          Alcotest.fail "register bank output mismatch"
      done
  done

(* Field genericity: the engine over the Mersenne prime (no radix-2 NTT
   support: Karatsuba + schoolbook fallbacks throughout) behaves
   identically. *)
let engine_over_mersenne () =
  let module FM = Fp.Mersenne31 in
  let module EM = Engine.Make (FM) in
  let machine = EM.M.interest_market () in
  let d = EM.M.degree machine in
  let k = 3 and b = 2 in
  let n = Params.composite_degree ~k ~d + (2 * b) + 1 in
  let params = Params.make ~network:Params.Sync ~n ~k ~d ~b in
  let r = Csm_rng.create 88 in
  let init = Array.init k (fun _ -> [| FM.random r |]) in
  let engine = EM.create ~machine ~params ~init in
  let states = ref (Array.map Array.copy init) in
  for _ = 1 to 3 do
    let commands = Array.init k (fun _ -> [| FM.random r |]) in
    let report = EM.round engine ~commands ~byzantine:(fun i -> i < b) () in
    let next_ref, _ = EM.M.run_fleet machine ~states:!states ~commands in
    states := next_ref;
    match report.EM.decoded with
    | None -> Alcotest.fail "mersenne decode failed"
    | Some dec ->
      for m = 0 to k - 1 do
        if not (FM.equal dec.EM.next_states.(m).(0) next_ref.(m).(0)) then
          Alcotest.fail "mersenne state mismatch"
      done
  done

(* Tightness of the security bound: colluding liars who report values of
   a CONSISTENT alternative codeword h+δ (δ a polynomial of degree ≤
   d(K−1)).  With c colluders and decoding radius e = ⌊(N−kdim)/2⌋:
     c ≤ e            -> the true h is decoded (attack corrected);
     e < c < N−e      -> no codeword within radius: decoding fails loudly;
     c ≥ N−e          -> the adversary's codeword is certified (security
                         genuinely collapses past the IT limit).
   This shows the Table-2 bound is exactly tight, not just sufficient. *)
let collusion_tightness () =
  let machine = M.bank () in
  let d = 1 and k = 3 in
  let n = 12 in
  let kdim = Params.composite_degree ~k ~d + 1 in
  let e = (n - kdim) / 2 in
  let b_params = Params.max_faults ~network:Params.Sync ~n ~k ~d in
  Alcotest.(check int) "radius = param bound" b_params e;
  let params = Params.make ~network:Params.Sync ~n ~k ~d ~b:b_params in
  let init = random_states machine k in
  let commands = random_commands machine k in
  (* δ(z) = z^{kdim-1} + 1, same degree family as h *)
  let run colluders =
    let engine = E.create ~machine ~params ~init in
    let delta_at alpha = F.add (F.pow alpha (kdim - 1)) F.one in
    let corruption ~node (g : F.t array) =
      let alpha = engine.E.coding.E.Coding.alphas.(node) in
      Array.map (fun v -> F.add v (delta_at alpha)) g
    in
    let report =
      E.round engine ~commands ~byzantine:(fun i -> i < colluders) ~corruption ()
    in
    report.E.decoded
  in
  (* regime 1: within radius -> corrected *)
  (match run e with
  | Some dec ->
    let next_ref, _ = M.run_fleet machine ~states:init ~commands in
    if not (F.equal dec.E.next_states.(0).(0) next_ref.(0).(0)) then
      Alcotest.fail "within radius: wrong decode"
  | None -> Alcotest.fail "within radius: decode failed");
  (* regime 2: between the radii -> loud failure *)
  let mid = e + 1 in
  if mid < n - e then begin
    match run mid with
    | None -> ()
    | Some _ -> Alcotest.fail "mid regime: should not certify any codeword"
  end;
  (* regime 3: overwhelming collusion -> adversary codeword certified *)
  (match run (n - e) with
  | Some dec ->
    let next_ref, _ = M.run_fleet machine ~states:init ~commands in
    if F.equal dec.E.next_states.(0).(0) next_ref.(0).(0) then
      Alcotest.fail "overwhelming collusion: decode should be the forged one"
  | None -> Alcotest.fail "overwhelming collusion: forged codeword certified")

let suites =
  [
    ( "csm:params",
      [
        Alcotest.test_case "closed-form K bounds" `Quick params_formulas;
        Alcotest.test_case "max_faults/max_machines duality" `Quick
          params_duality;
        Alcotest.test_case "table 2 feasibility" `Quick params_table2;
        Alcotest.test_case "theorem 1 linear scaling" `Quick
          params_theorem_scaling;
      ] );
    ( "csm:coding",
      [
        Alcotest.test_case "coded scalar = u(alpha)" `Quick
          coding_matches_interpolant;
        Alcotest.test_case "fast vector encoding" `Quick coding_fast_matches;
        Alcotest.test_case "K=1 degenerate" `Quick coding_identity_when_k1;
      ] );
    ( "csm:engine",
      [
        Alcotest.test_case "coded = uncoded under faults (all machines)"
          `Quick coded_matches_uncoded;
        Alcotest.test_case "liars identified" `Quick error_nodes_identified;
        Alcotest.test_case "table-2 fault boundary" `Quick boundary_faults;
        Alcotest.test_case "partial-sync withhold/lie splits" `Quick
          partial_sync_splits;
        Alcotest.test_case "storage efficiency = K" `Quick storage_efficiency;
        Alcotest.test_case "decoder agnostic" `Quick engine_decoder_agnostic;
        Alcotest.test_case "boolean machine coded over GF(2^10)" `Quick
          boolean_machine_coded;
        Alcotest.test_case "register bank coded (KV workload)" `Quick
          register_bank_coded;
        Alcotest.test_case "collusion tightness (3 regimes)" `Quick
          collusion_tightness;
        Alcotest.test_case "engine over Mersenne31 (no NTT)" `Quick
          engine_over_mersenne;
        QCheck_alcotest.to_alcotest ~long:false qcheck_engine_random_machines;
      ] );
  ]
