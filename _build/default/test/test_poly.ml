(* Polynomial arithmetic: algebraic laws, agreement of the three
   multiplication algorithms, Euclidean division invariants, gcd laws,
   interpolation round-trips, and subproduct-tree fast algorithms vs.
   their naive counterparts. *)

open Csm_field
open Csm_poly
module F = Fp.Default
module P = Poly.Make (F)
module Lag = Lagrange.Make (F)
module Sub = Subproduct.Make (F)

let rng = Csm_rng.create 0xB01

(* Arbitrary polynomial with degree in [-1, max_deg] (zero included). *)
let arb_poly ?(max_deg = 40) () =
  let gen _ =
    let d = Csm_rng.int rng (max_deg + 2) - 1 in
    if d < 0 then P.zero else P.random rng ~degree:d
  in
  QCheck.make ~print:P.to_string (QCheck.Gen.map gen QCheck.Gen.unit)

let arb_elt =
  QCheck.make ~print:F.to_string
    (QCheck.Gen.map (fun _ -> F.random rng) QCheck.Gen.unit)

let poly_eq = P.equal

let qtest name count law = QCheck.Test.make ~name ~count law

let props =
  [
    qtest "add commutative" 200
      (QCheck.pair (arb_poly ()) (arb_poly ()))
      (fun (p, q) -> poly_eq (P.add p q) (P.add q p));
    qtest "mul commutative" 100
      (QCheck.pair (arb_poly ()) (arb_poly ()))
      (fun (p, q) -> poly_eq (P.mul p q) (P.mul q p));
    qtest "mul distributes over add" 100
      (QCheck.triple (arb_poly ()) (arb_poly ()) (arb_poly ()))
      (fun (p, q, r) ->
        poly_eq (P.mul p (P.add q r)) (P.add (P.mul p q) (P.mul p r)));
    qtest "eval is a ring hom (add)" 200
      (QCheck.triple (arb_poly ()) (arb_poly ()) arb_elt)
      (fun (p, q, x) ->
        F.equal (P.eval (P.add p q) x) (F.add (P.eval p x) (P.eval q x)));
    qtest "eval is a ring hom (mul)" 100
      (QCheck.triple (arb_poly ()) (arb_poly ()) arb_elt)
      (fun (p, q, x) ->
        F.equal (P.eval (P.mul p q) x) (F.mul (P.eval p x) (P.eval q x)));
    qtest "karatsuba = schoolbook" 60
      (QCheck.pair (arb_poly ~max_deg:120 ()) (arb_poly ~max_deg:120 ()))
      (fun (p, q) -> poly_eq (P.mul_karatsuba p q) (P.mul_schoolbook p q));
    qtest "ntt = schoolbook" 60
      (QCheck.pair (arb_poly ~max_deg:120 ()) (arb_poly ~max_deg:120 ()))
      (fun (p, q) ->
        P.is_zero p || P.is_zero q
        || poly_eq (P.mul_ntt p q) (P.mul_schoolbook p q));
    qtest "divmod invariant" 100
      (QCheck.pair (arb_poly ~max_deg:60 ()) (arb_poly ~max_deg:25 ()))
      (fun (p, d) ->
        QCheck.assume (not (P.is_zero d));
        let q, r = P.divmod p d in
        poly_eq p (P.add (P.mul q d) r) && P.degree r < P.degree d);
    qtest "divmod_fast = divmod_schoolbook" 30
      (QCheck.pair (arb_poly ~max_deg:300 ()) (arb_poly ~max_deg:130 ()))
      (fun (p, d) ->
        QCheck.assume (not (P.is_zero d));
        let q1, r1 = P.divmod_fast p d in
        let q2, r2 = P.divmod_schoolbook p d in
        poly_eq q1 q2 && poly_eq r1 r2);
    qtest "inv_series inverts" 50
      (arb_poly ~max_deg:40 ())
      (fun d ->
        QCheck.assume (not (P.is_zero d) && not (F.is_zero (P.coeff d 0)));
        let m = 1 + P.degree d + 7 in
        let x = P.inv_series d m in
        let prod = P.truncate (P.mul d x) m in
        poly_eq prod P.one);
    qtest "gcd divides both" 60
      (QCheck.pair (arb_poly ~max_deg:20 ()) (arb_poly ~max_deg:20 ()))
      (fun (p, q) ->
        let g = P.gcd p q in
        (P.is_zero p && P.is_zero q && P.is_zero g)
        || (P.is_zero (P.rem p g) && P.is_zero (P.rem q g)));
    qtest "xgcd bezout identity" 60
      (QCheck.pair (arb_poly ~max_deg:20 ()) (arb_poly ~max_deg:20 ()))
      (fun (p, q) ->
        let g, u, v = P.xgcd p q in
        poly_eq g (P.add (P.mul u p) (P.mul v q)));
    qtest "derivative of product (Leibniz)" 60
      (QCheck.pair (arb_poly ~max_deg:15 ()) (arb_poly ~max_deg:15 ()))
      (fun (p, q) ->
        poly_eq
          (P.derivative (P.mul p q))
          (P.add (P.mul (P.derivative p) q) (P.mul p (P.derivative q))));
    qtest "of_roots vanishes at roots" 40
      (QCheck.make (QCheck.Gen.return ()))
      (fun () ->
        let n = 1 + Csm_rng.int rng 20 in
        let roots = Array.init n (fun _ -> F.random rng) in
        let p = P.of_roots roots in
        P.degree p = n
        && Array.for_all (fun r -> F.is_zero (P.eval p r)) roots);
  ]

(* Interpolation round trip: random poly of degree < k, evaluated at k
   distinct points, reinterpolated. *)
let interp_roundtrip interp () =
  for _ = 1 to 50 do
    let k = 1 + Csm_rng.int rng 30 in
    let p = if k = 1 then P.constant (F.random rng) else P.random rng ~degree:(k - 1) in
    let points = Lag.standard_points k in
    let pairs = Array.map (fun x -> (x, P.eval p x)) points in
    let q = interp pairs in
    if not (poly_eq p q) then
      Alcotest.failf "interpolation mismatch (k=%d): %s vs %s" k
        (P.to_string p) (P.to_string q)
  done

let lagrange_roundtrip () = interp_roundtrip Lag.interpolate ()

let fast_interp_roundtrip () =
  interp_roundtrip
    (fun pairs ->
      Sub.interpolate (Array.map fst pairs) (Array.map snd pairs))
    ()

let coeff_row_matches_basis () =
  for _ = 1 to 50 do
    let k = 2 + Csm_rng.int rng 10 in
    let omegas = Lag.standard_points k in
    let weights = Lag.barycentric_weights omegas in
    let x = F.random rng in
    let row = Lag.coeff_row ~points:omegas ~weights x in
    (* each entry must equal ∏_{l≠j} (x-ω_l)/(ω_j-ω_l) *)
    Array.iteri
      (fun j c ->
        let expect = ref F.one in
        for l = 0 to k - 1 do
          if l <> j then
            expect :=
              F.mul !expect
                (F.div (F.sub x omegas.(l)) (F.sub omegas.(j) omegas.(l)))
        done;
        if not (F.equal c !expect) then Alcotest.fail "coeff_row mismatch")
      row
  done

let coeff_row_indicator () =
  let k = 7 in
  let omegas = Lag.standard_points k in
  let weights = Lag.barycentric_weights omegas in
  for j = 0 to k - 1 do
    let row = Lag.coeff_row ~points:omegas ~weights omegas.(j) in
    Array.iteri
      (fun l c ->
        let want = if l = j then F.one else F.zero in
        if not (F.equal c want) then Alcotest.fail "indicator row wrong")
      row
  done

let coeff_matrix_encodes () =
  (* Encoding via the matrix must equal evaluating the interpolant. *)
  for _ = 1 to 30 do
    let k = 1 + Csm_rng.int rng 8 in
    let n = k + Csm_rng.int rng 10 in
    let omegas = Lag.standard_points k in
    let alphas = Lag.standard_points ~offset:k n in
    let c = Lag.coeff_matrix ~omegas ~alphas in
    let values = Array.init k (fun _ -> F.random rng) in
    let encoded = Lag.encode_with_matrix c values in
    let u = Lag.interpolate (Array.map2 (fun w v -> (w, v)) omegas values) in
    Array.iteri
      (fun i x ->
        if not (F.equal x (P.eval u alphas.(i))) then
          Alcotest.fail "matrix encoding <> interpolant evaluation")
      encoded
  done

let fast_eval_matches_naive () =
  for _ = 1 to 30 do
    let d = Csm_rng.int rng 50 in
    let p = if d = 0 then P.constant (F.random rng) else P.random rng ~degree:d in
    let n = 1 + Csm_rng.int rng 60 in
    let points = Array.init n (fun i -> F.of_int (i * 3 + 1)) in
    let fast = Sub.eval_all p points in
    Array.iteri
      (fun i _ ->
        if not (F.equal fast.(i) (P.eval p points.(i))) then
          Alcotest.fail "fast multipoint eval mismatch")
      points
  done

let root_poly_correct () =
  let points = Array.init 17 (fun i -> F.of_int (i + 1)) in
  let t = Sub.build points in
  let m = Sub.root_poly t in
  Alcotest.(check int) "degree" 17 (P.degree m);
  Array.iter
    (fun x ->
      Alcotest.(check bool) "vanishes" true (F.is_zero (P.eval m x)))
    points

let eval_barycentric_matches () =
  for _ = 1 to 30 do
    let k = 2 + Csm_rng.int rng 10 in
    let points = Lag.standard_points k in
    let weights = Lag.barycentric_weights points in
    let values = Array.init k (fun _ -> F.random rng) in
    let u = Lag.interpolate (Array.map2 (fun p v -> (p, v)) points values) in
    let x = F.random rng in
    let got = Lag.eval_barycentric ~points ~weights ~values x in
    if not (F.equal got (P.eval u x)) then
      Alcotest.fail "barycentric eval mismatch"
  done

let duplicate_points_rejected () =
  let pts = [| F.of_int 1; F.of_int 2; F.of_int 1 |] in
  let raised = ref false in
  (try Lag.check_distinct pts with Invalid_argument _ -> raised := true);
  Alcotest.(check bool) "duplicate detected" true !raised

(* Subproduct/interp also work over char-2 fields, where the NTT path is
   unavailable and Karatsuba is used throughout. *)
let char2_interp () =
  let module G = Gf2m.Gf1024 in
  let module PG = Poly.Make (G) in
  let module SG = Subproduct.Make (G) in
  let r = Csm_rng.create 99 in
  for _ = 1 to 20 do
    let k = 1 + Csm_rng.int r 30 in
    let p = if k = 1 then PG.constant (G.random r) else PG.random r ~degree:(k - 1) in
    let points = Array.init k (fun i -> G.of_int (i + 1)) in
    let values = SG.eval_all p points in
    let q = SG.interpolate points values in
    if not (PG.equal p q) then Alcotest.fail "char2 fast interp mismatch"
  done

let unit_tests =
  [
    Alcotest.test_case "lagrange interpolation roundtrip" `Quick
      lagrange_roundtrip;
    Alcotest.test_case "fast interpolation roundtrip" `Quick
      fast_interp_roundtrip;
    Alcotest.test_case "coeff_row matches lagrange basis" `Quick
      coeff_row_matches_basis;
    Alcotest.test_case "coeff_row at a node point is indicator" `Quick
      coeff_row_indicator;
    Alcotest.test_case "coeff_matrix encodes like interpolant" `Quick
      coeff_matrix_encodes;
    Alcotest.test_case "fast multipoint eval = naive" `Quick
      fast_eval_matches_naive;
    Alcotest.test_case "subproduct root poly" `Quick root_poly_correct;
    Alcotest.test_case "barycentric evaluation" `Quick eval_barycentric_matches;
    Alcotest.test_case "duplicate points rejected" `Quick
      duplicate_points_rejected;
    Alcotest.test_case "fast interp over GF(2^10)" `Quick char2_interp;
  ]

let suites =
  [
    ("poly:laws", List.map (QCheck_alcotest.to_alcotest ~long:false) props);
    ("poly:interp", unit_tests);
  ]
