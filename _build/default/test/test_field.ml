(* Field axioms and arithmetic correctness, over every instantiated field:
   prime fields (default NTT prime, Mersenne, tiny) and binary extension
   fields.  Property tests draw random elements; small fields also get
   exhaustive checks. *)

open Csm_field

let seed = 0xF1E7D

(* Build the alcotest + qcheck suite for one field. *)
module MakeSuite (F : Field_intf.S) (N : sig
  val name : string
end) =
struct
  let rng = Csm_rng.create seed

  let arb =
    QCheck.make
      ~print:(fun x -> F.to_string x)
      (QCheck.Gen.map (fun _ -> F.random rng) QCheck.Gen.unit)

  let qtest name count law = QCheck.Test.make ~name ~count law

  let props =
    [
      qtest "add commutative" 200
        (QCheck.pair arb arb)
        (fun (a, b) -> F.equal (F.add a b) (F.add b a));
      qtest "add associative" 200
        (QCheck.triple arb arb arb)
        (fun (a, b, c) -> F.equal (F.add (F.add a b) c) (F.add a (F.add b c)));
      qtest "mul commutative" 200
        (QCheck.pair arb arb)
        (fun (a, b) -> F.equal (F.mul a b) (F.mul b a));
      qtest "mul associative" 200
        (QCheck.triple arb arb arb)
        (fun (a, b, c) -> F.equal (F.mul (F.mul a b) c) (F.mul a (F.mul b c)));
      qtest "distributivity" 200
        (QCheck.triple arb arb arb)
        (fun (a, b, c) ->
          F.equal (F.mul a (F.add b c)) (F.add (F.mul a b) (F.mul a c)));
      qtest "additive inverse" 200 arb (fun a ->
          F.is_zero (F.add a (F.neg a)));
      qtest "sub = add neg" 200
        (QCheck.pair arb arb)
        (fun (a, b) -> F.equal (F.sub a b) (F.add a (F.neg b)));
      qtest "multiplicative inverse" 200 arb (fun a ->
          F.is_zero a || F.equal (F.mul a (F.inv a)) F.one);
      qtest "div inverse of mul" 200
        (QCheck.pair arb arb)
        (fun (a, b) -> F.is_zero b || F.equal (F.div (F.mul a b) b) a);
      qtest "pow matches repeated mul" 200 arb (fun a ->
          let rec naive acc i = if i = 0 then acc else naive (F.mul acc a) (i - 1) in
          F.equal (F.pow a 7) (naive F.one 7));
      qtest "pow negative exponent" 200 arb (fun a ->
          F.is_zero a || F.equal (F.pow a (-3)) (F.inv (F.pow a 3)));
      qtest "fermat / lagrange order" 200 arb (fun a ->
          F.is_zero a || F.equal (F.pow a (F.order - 1)) F.one);
      qtest "of_int/to_int roundtrip" 200 arb (fun a ->
          F.equal (F.of_int (F.to_int a)) a);
    ]

  let unit_tests =
    [
      Alcotest.test_case "constants" `Quick (fun () ->
          Alcotest.(check bool) "zero is zero" true (F.is_zero F.zero);
          Alcotest.(check bool) "one not zero" (F.order > 1) (not (F.is_zero F.one));
          Alcotest.(check bool) "one*one" true (F.equal (F.mul F.one F.one) F.one));
      Alcotest.test_case "inv zero raises" `Quick (fun () ->
          Alcotest.check_raises "inv 0" Division_by_zero (fun () ->
              ignore (F.inv F.zero)));
      Alcotest.test_case "div by zero raises" `Quick (fun () ->
          Alcotest.check_raises "div 0" Division_by_zero (fun () ->
              ignore (F.div F.one F.zero)));
      Alcotest.test_case "of_int negative" `Quick (fun () ->
          (* of_int is the ring hom only for prime fields; for GF(2^m)
             it is a bit-pattern constructor. *)
          if F.characteristic = F.order then
            Alcotest.(check bool)
              "-1 = neg one" true
              (F.equal (F.of_int (-1)) (F.neg F.one)));
      Alcotest.test_case "random_nonzero" `Quick (fun () ->
          let r = Csm_rng.create 42 in
          for _ = 1 to 100 do
            if F.is_zero (F.random_nonzero r) then
              Alcotest.fail "random_nonzero returned zero"
          done);
      Alcotest.test_case "root_of_unity orders" `Quick (fun () ->
          List.iter
            (fun n ->
              match F.root_of_unity n with
              | None -> ()
              | Some w ->
                Alcotest.(check bool)
                  (Printf.sprintf "w^%d = 1" n)
                  true
                  (F.equal (F.pow w n) F.one);
                if n > 1 then
                  Alcotest.(check bool)
                    (Printf.sprintf "w^%d <> 1 (primitive)" (n / 2))
                    true
                    (not (F.equal (F.pow w (n / 2)) F.one)))
            [ 1; 2; 4; 8; 16; 64; 256 ]);
    ]

  let suite =
    ( "field:" ^ N.name,
      unit_tests @ List.map (QCheck_alcotest.to_alcotest ~long:false) props )
end

module Default_suite =
  MakeSuite
    (Fp.Default)
    (struct
      let name = "fp-default(2013265921)"
    end)

module Mersenne_suite =
  MakeSuite
    (Fp.Mersenne31)
    (struct
      let name = "fp-mersenne31"
    end)

module F97_suite =
  MakeSuite
    (Fp.F97)
    (struct
      let name = "fp-97"
    end)

module Gf256_suite =
  MakeSuite
    (Gf2m.Gf256)
    (struct
      let name = "gf(2^8)"
    end)

module Gf1024_suite =
  MakeSuite
    (Gf2m.Gf1024)
    (struct
      let name = "gf(2^10)"
    end)

module Gf65536_suite =
  MakeSuite
    (Gf2m.Gf65536)
    (struct
      let name = "gf(2^16)"
    end)

(* Exhaustive checks for a tiny field: every pair. *)
let exhaustive_f97 () =
  let module F = Fp.F97 in
  for a = 0 to 96 do
    for b = 0 to 96 do
      let fa = F.of_int a and fb = F.of_int b in
      assert (F.to_int (F.add fa fb) = (a + b) mod 97);
      assert (F.to_int (F.mul fa fb) = a * b mod 97)
    done;
    if a > 0 then begin
      let fa = F.of_int a in
      assert (F.equal (F.mul fa (F.inv fa)) F.one)
    end
  done

(* GF(2^m): table-based mul must agree with a reference carry-less mul
   for every pair in GF(256). *)
let gf256_reference () =
  let module G = Gf2m.Gf256 in
  let modulus = 0x11D in
  let slow a b =
    let r = ref 0 and a = ref a and b = ref b in
    while !b <> 0 do
      if !b land 1 = 1 then r := !r lxor !a;
      b := !b lsr 1;
      a := !a lsl 1;
      if !a land 0x100 <> 0 then a := !a lxor modulus
    done;
    !r
  in
  for a = 0 to 255 do
    for b = 0 to 255 do
      let got = G.to_int (G.mul (G.of_int a) (G.of_int b)) in
      if got <> slow a b then
        Alcotest.failf "gf256 mul %d*%d: got %d want %d" a b got (slow a b)
    done
  done

(* Characteristic-2 specifics and the Appendix-A embedding. *)
let gf_char2 () =
  let module G = Gf2m.Gf1024 in
  let rng = Csm_rng.create 7 in
  for _ = 1 to 200 do
    let a = G.random rng in
    (* x + x = 0 and neg is identity *)
    Alcotest.(check bool) "a+a=0" true (G.is_zero (G.add a a));
    Alcotest.(check bool) "neg a = a" true (G.equal (G.neg a) a);
    (* Frobenius: (a+b)^2 = a^2 + b^2 *)
    let b = G.random rng in
    Alcotest.(check bool)
      "frobenius" true
      (G.equal (G.pow (G.add a b) 2) (G.add (G.pow a 2) (G.pow b 2)))
  done;
  Alcotest.(check bool) "embed 0" true (G.is_zero (G.embed_bit 0));
  Alcotest.(check bool) "embed 1" true (G.equal (G.embed_bit 1) G.one)

let fp_rejects_composite () =
  let exn = ref false in
  (try
     let module Bad = Fp.Make (struct
       let p = 91 (* 7 * 13 *)
     end) in
     ignore Bad.one
   with Invalid_argument _ -> exn := true);
  Alcotest.(check bool) "composite rejected" true !exn

let default_modulus_in_range () =
  for m = 1 to 31 do
    let p = Gf2m.default_modulus m in
    Alcotest.(check bool)
      (Printf.sprintf "degree of modulus %d" m)
      true
      (p land (1 lsl m) <> 0 && p < 1 lsl (m + 1));
    Alcotest.(check bool)
      (Printf.sprintf "irreducibility of modulus %d" m)
      true
      (Gf2m.irreducible_over_gf2 p)
  done;
  (* the Rabin test itself rejects known reducibles *)
  Alcotest.(check bool) "x^2+1 = (x+1)^2 reducible" false
    (Gf2m.irreducible_over_gf2 0b101);
  Alcotest.(check bool) "x^4+x^2+1 reducible" false
    (Gf2m.irreducible_over_gf2 0b10101);
  Alcotest.(check bool) "x^2+x+1 irreducible" true
    (Gf2m.irreducible_over_gf2 0b111)

(* every default field up to m = 31 instantiates (the functor runs the
   Rabin check) and satisfies spot-checked axioms *)
let all_extension_fields_instantiate () =
  for m = 17 to 31 do
    let module G = Gf2m.Make (struct
      let m = m
      let modulus = 0
    end) in
    let r = Csm_rng.create m in
    for _ = 1 to 20 do
      let a = G.random_nonzero r and b = G.random_nonzero r in
      if not (G.equal (G.mul a (G.inv a)) G.one) then
        Alcotest.failf "m=%d: inverse broken" m;
      if not (G.equal (G.mul a b) (G.mul b a)) then
        Alcotest.failf "m=%d: commutativity broken" m
    done
  done;
  (* a reducible custom modulus is rejected *)
  let exn = ref false in
  (try
     let module Bad = Gf2m.Make (struct
       let m = 4
       let modulus = 0b10101 lor (1 lsl 4)  (* degree-4 bits of a reducible *)
     end) in
     ignore Bad.one
   with Invalid_argument _ -> exn := true);
  Alcotest.(check bool) "reducible modulus rejected" true !exn

let extra_suite =
  ( "field:extra",
    [
      Alcotest.test_case "exhaustive F97" `Quick exhaustive_f97;
      Alcotest.test_case "gf256 vs reference mul" `Quick gf256_reference;
      Alcotest.test_case "char-2 identities + embedding" `Quick gf_char2;
      Alcotest.test_case "Fp rejects composite modulus" `Quick
        fp_rejects_composite;
      Alcotest.test_case "gf2m default moduli degrees + irreducibility"
        `Quick default_modulus_in_range;
      Alcotest.test_case "gf2m instantiates for all m <= 31" `Quick
        all_extension_fields_instantiate;
    ] )

let suites =
  [
    Default_suite.suite;
    Mersenne_suite.suite;
    F97_suite.suite;
    Gf256_suite.suite;
    Gf1024_suite.suite;
    Gf65536_suite.suite;
    extra_suite;
  ]
