(* Circuit DSL: compiled polynomials match gate-level evaluation on all
   inputs, degree bounds hold, sharing is respected, and circuit-built
   machines run through CSM. *)

open Csm_mvpoly.Circuit
module G = Csm_field.Gf2m.Gf1024
module C = Csm_mvpoly.Circuit.Make (G)
module BM = Csm_machine.Boolean_machine.Make (G)
module Params = Csm_core.Params
module E = Csm_core.Engine.Make (G)

let all_inputs n =
  List.init (1 lsl n) (fun v -> Array.init n (fun i -> (v lsr i) land 1 = 1))

let embed bits = Array.map (fun b -> if b then G.one else G.zero) bits

let check_gate name ~vars g =
  let p = C.compile ~vars g in
  List.iter
    (fun inputs ->
      let expect = eval_gate g inputs in
      let got = C.Mv.eval p (embed inputs) in
      let got_bit =
        if G.is_zero got then false
        else if G.equal got G.one then true
        else Alcotest.failf "%s: non-bit output" name
      in
      if got_bit <> expect then Alcotest.failf "%s: mismatch" name)
    (all_inputs vars);
  p

let basic_gates () =
  ignore (check_gate "xor" ~vars:2 (input 0 ^^^ input 1));
  ignore (check_gate "and" ~vars:2 (input 0 &&& input 1));
  ignore (check_gate "or" ~vars:2 (input 0 ||| input 1));
  ignore (check_gate "not" ~vars:1 (not_ (input 0)));
  ignore (check_gate "const-t" ~vars:1 tt);
  ignore (check_gate "const-f" ~vars:1 ff)

let composite_circuits () =
  (* full adder: sum and carry *)
  let a = input 0 and b = input 1 and cin = input 2 in
  let sum = a ^^^ b ^^^ cin in
  let carry = (a &&& b) ||| (cin &&& (a ^^^ b)) in
  ignore (check_gate "fa-sum" ~vars:3 sum);
  ignore (check_gate "fa-carry" ~vars:3 carry);
  (* mux *)
  let sel = input 0 and x = input 1 and y = input 2 in
  let mux = (sel &&& x) ||| (not_ sel &&& y) in
  ignore (check_gate "mux" ~vars:3 mux);
  (* 4-input parity (degree 1!) *)
  let parity = input 0 ^^^ input 1 ^^^ input 2 ^^^ input 3 in
  let p = check_gate "parity4" ~vars:4 parity in
  Alcotest.(check int) "parity degree" 1 (C.Mv.total_degree p)

let degree_bound_respected () =
  let a = input 0 and b = input 1 and c = input 2 and d = input 3 in
  let g = (a &&& b) &&& (c ||| d) in
  let p = C.compile ~vars:4 g in
  Alcotest.(check bool) "within and_degree" true
    (C.Mv.total_degree p <= and_degree g);
  Alcotest.(check int) "and_degree" 4 (and_degree g)

let sharing_compiles_dag () =
  (* a diamond: shared subterm appears twice; physical sharing must be
     compiled once (we can only observe this through correctness +
     reasonable size here) *)
  let shared = input 0 &&& input 1 in
  let g = shared ^^^ (shared &&& input 2) in
  ignore (check_gate "diamond" ~vars:3 g)

let majority_circuit_machine () =
  (* majority register built from the DSL instead of the truth table *)
  let s = input 0 and x1 = input 1 and x2 = input 2 in
  let maj = (s &&& x1) ^^^ (x1 &&& x2) ^^^ (s &&& x2) in
  let m =
    BM.of_circuit ~name:"maj-circuit" ~state_bits:1 ~input_bits:2
      ~next:[| maj |] ~outs:[| maj |]
  in
  Alcotest.(check int) "degree 2" 2 (BM.M.degree m);
  (* equals the truth-table machine on all inputs *)
  let reference = BM.majority_register () in
  List.iter
    (fun inputs ->
      let st = [| inputs.(0) |] and x = [| inputs.(1); inputs.(2) |] in
      let s1, y1 = BM.M.step m ~state:(BM.embed_bits st) ~input:(BM.embed_bits x) in
      let s2, y2 =
        BM.M.step reference ~state:(BM.embed_bits st) ~input:(BM.embed_bits x)
      in
      if not (G.equal s1.(0) s2.(0) && G.equal y1.(0) y2.(0)) then
        Alcotest.fail "circuit machine differs from truth-table machine")
    (all_inputs 3)

(* A circuit machine through the full coded pipeline: a 2-bit LFSR
   (x² + x + 1 taps) with enable, coded over GF(2^10) with a liar. *)
let lfsr_coded () =
  let s0 = input 0 and s1 = input 1 and en = input 2 in
  (* next0 = en ? s1 : s0 ; next1 = en ? s0 xor s1 : s1 *)
  let mux sel a b = (sel &&& a) ||| (not_ sel &&& b) in
  let next0 = mux en s1 s0 in
  let next1 = mux en (s0 ^^^ s1) s1 in
  let machine =
    BM.of_circuit ~name:"lfsr2" ~state_bits:2 ~input_bits:1
      ~next:[| next0; next1 |] ~outs:[| next0 |]
  in
  let d = BM.M.degree machine in
  let k = 2 and b = 1 in
  let n = Params.composite_degree ~k ~d + (2 * b) + 1 in
  let params = Params.make ~network:Params.Sync ~n ~k ~d ~b in
  let init = [| BM.embed_bits [| true; false |]; BM.embed_bits [| false; true |] |] in
  let engine = E.create ~machine ~params ~init in
  let rng = Csm_rng.create 5 in
  let states = ref [| [| true; false |]; [| false; true |] |] in
  for _ = 1 to 5 do
    let en_bits = Array.init k (fun _ -> [| Csm_rng.bool rng |]) in
    let commands = Array.map BM.embed_bits en_bits in
    let report = E.round engine ~commands ~byzantine:(fun i -> i = 1) () in
    match report.E.decoded with
    | None -> Alcotest.fail "lfsr coded round failed"
    | Some dec ->
      for m = 0 to k - 1 do
        let bits = BM.to_bits dec.E.next_states.(m) in
        let s = !states.(m) in
        let expect =
          if en_bits.(m).(0) then [| s.(1); s.(0) <> s.(1) |] else s
        in
        if bits <> expect then Alcotest.fail "lfsr state mismatch";
        !states.(m) <- bits
      done
  done

let suites =
  [
    ( "circuit",
      [
        Alcotest.test_case "basic gates" `Quick basic_gates;
        Alcotest.test_case "composite circuits" `Quick composite_circuits;
        Alcotest.test_case "degree bound" `Quick degree_bound_respected;
        Alcotest.test_case "dag sharing" `Quick sharing_compiles_dag;
        Alcotest.test_case "majority via circuit = truth table" `Quick
          majority_circuit_machine;
        Alcotest.test_case "LFSR circuit machine, coded" `Quick lfsr_coded;
      ] );
  ]
