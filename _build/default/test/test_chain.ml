(* Chained (multi-slot) PBFT: per-slot agreement and validity, pipelining
   speedup, independence of slots under crashed leaders, and randomized
   fuzzing of both consensus protocols under random Byzantine subsets. *)

module Auth = Csm_crypto.Auth
module Net = Csm_sim.Net
module Chain = Csm_consensus.Chain
module Pbft = Csm_consensus.Pbft
module DS = Csm_consensus.Dolev_strong

let keyring n seed = Auth.create_keyring (Csm_rng.create seed) ~n

let chain_config ?(n = 7) ?(f = 2) ?(slots = 8) () =
  {
    Chain.n;
    f;
    slots;
    base_timeout = 2000;
    instance = "chain-test";
    keyring = keyring n 0xC4A1;
  }

let value node slot = Printf.sprintf "v-%d-%d" node slot

let check_slot_agreement cfg decisions ~honest ~slot ~expect =
  let decided =
    List.filter_map (fun i -> decisions.(i).(slot)) honest
  in
  Alcotest.(check int)
    (Printf.sprintf "slot %d: all honest decided" slot)
    (List.length honest) (List.length decided);
  match decided with
  | [] -> Alcotest.fail "nobody decided"
  | v :: rest ->
    List.iter (fun v' -> Alcotest.(check string) "agreement" v v') rest;
    (match expect with
    | Some e -> Alcotest.(check string) "validity" e v
    | None -> ());
    ignore cfg

let all_slots_decide () =
  let cfg = chain_config () in
  let { Chain.decisions; _ } =
    Chain.run cfg ~proposals:(fun node slot -> Some (value node slot)) ()
  in
  for slot = 0 to cfg.Chain.slots - 1 do
    check_slot_agreement cfg decisions
      ~honest:(List.init cfg.Chain.n (fun i -> i))
      ~slot
      ~expect:(Some (value 0 slot))
  done

let pipelining_speedup () =
  (* S slots in one simulation must finish far faster than S sequential
     single-slot runs *)
  let slots = 8 in
  let cfg = chain_config ~slots () in
  let { Chain.stats = chain_stats; decisions } =
    Chain.run cfg ~proposals:(fun node slot -> Some (value node slot)) ()
  in
  (* sanity: everything decided *)
  for slot = 0 to slots - 1 do
    check_slot_agreement cfg decisions
      ~honest:(List.init cfg.Chain.n (fun i -> i))
      ~slot ~expect:None
  done;
  let single = Pbft.run (Chain.slot_config cfg 0) ~proposals:(fun _ -> Some "v") () in
  (* happy-path chains idle until the view-0 timers fire at base_timeout;
     decision traffic itself finishes much earlier.  Compare decision
     completion: the chain's last *message* event is bounded by a small
     multiple of the single-slot message time (not slots ×). *)
  let chain_time = chain_stats.Net.end_time in
  let single_time = single.Pbft.stats.Net.end_time in
  Alcotest.(check bool)
    (Printf.sprintf "pipelined %d <= %d x %d slots" chain_time single_time slots)
    true
    (chain_time < slots * single_time)

let slots_independent_under_crashed_leader () =
  (* node 0 crashed: it leads view 0 of EVERY slot, so every slot view
     changes to leader 1 — all slots still decide (val of node 1) *)
  let cfg = chain_config ~slots:5 () in
  let { Chain.decisions; _ } =
    Chain.run cfg
      ~proposals:(fun node slot -> Some (value node slot))
      ~byzantine:(fun i -> if i = 0 then Some Net.silent else None)
      ()
  in
  for slot = 0 to cfg.Chain.slots - 1 do
    check_slot_agreement cfg decisions
      ~honest:(List.init (cfg.Chain.n - 1) (fun i -> i + 1))
      ~slot
      ~expect:(Some (value 1 slot))
  done

let chain_under_partial_sync () =
  let cfg = chain_config ~slots:4 () in
  let latency =
    Net.partial_sync ~gst:15_000 ~delta:10
      ~pre:(fun ~src:_ ~dst:_ ~now:_ -> 500_000)
  in
  let { Chain.decisions; _ } =
    Chain.run cfg ~latency ~max_time:5_000_000
      ~proposals:(fun node slot -> Some (value node slot))
      ()
  in
  for slot = 0 to cfg.Chain.slots - 1 do
    check_slot_agreement cfg decisions
      ~honest:(List.init cfg.Chain.n (fun i -> i))
      ~slot ~expect:None
  done

(* ----- randomized consensus fuzzing ----- *)

(* Random Byzantine subsets (within bounds) with random strategies:
   agreement must hold among honest nodes in every sampled scenario. *)
let fuzz_dolev_strong () =
  let rng = Csm_rng.create 0xF02 in
  for trial = 1 to 25 do
    let n = 4 + Csm_rng.int rng 6 in
    let f = Csm_rng.int rng (n - 1) in
    let cfg =
      {
        DS.n;
        f;
        leader = 0;
        delta = 10;
        instance = Printf.sprintf "fuzz-%d" trial;
        keyring = keyring n (trial * 31);
      }
    in
    let byz = Array.init n (fun _ -> Csm_rng.int rng n < f) in
    byz.(0) <- Csm_rng.bool rng && f > 0;
    let nbyz = Array.fold_left (fun a b -> if b then a + 1 else a) 0 byz in
    if nbyz <= f then begin
      let strategy i : DS.msg Net.behavior option =
        if not byz.(i) then None
        else if i = 0 then
          Some
            (DS.equivocating_leader cfg ~me:0 ~value_a:"A" ~value_b:"B")
        else Some Net.silent
      in
      let { DS.decisions; _ } = DS.run cfg ~proposal:"P" ~byzantine:strategy () in
      let honest =
        List.filter_map
          (fun i -> if byz.(i) then None else Some decisions.(i))
          (List.init n (fun i -> i))
      in
      match honest with
      | [] -> ()
      | first :: rest ->
        List.iter
          (fun d ->
            if d <> first then
              Alcotest.failf "DS fuzz trial %d: disagreement" trial)
          rest
    end
  done

let fuzz_pbft () =
  let rng = Csm_rng.create 0xF03 in
  for trial = 1 to 12 do
    let f = 1 + Csm_rng.int rng 2 in
    let n = (3 * f) + 1 in
    let cfg =
      {
        Pbft.n;
        f;
        base_timeout = 2000;
        instance = Printf.sprintf "fuzzp-%d" trial;
        keyring = keyring n (trial * 53);
      }
    in
    (* random f nodes silent *)
    let bad = Csm_rng.sample rng ~n ~k:f in
    let byz i = if Array.mem i bad then Some Net.silent else None in
    let { Pbft.decisions; _ } =
      Pbft.run cfg
        ~proposals:(fun i -> Some (Printf.sprintf "p%d" i))
        ~byzantine:byz ()
    in
    let honest =
      List.filter_map
        (fun i -> if Array.mem i bad then None else decisions.(i))
        (List.init n (fun i -> i))
    in
    (match honest with
    | [] -> Alcotest.failf "PBFT fuzz trial %d: no honest decisions" trial
    | first :: rest ->
      List.iter
        (fun d ->
          if not (String.equal d first) then
            Alcotest.failf "PBFT fuzz trial %d: disagreement" trial)
        rest);
    if List.length honest <> n - f then
      Alcotest.failf "PBFT fuzz trial %d: liveness (%d/%d decided)" trial
        (List.length honest) (n - f)
  done

(* ----- chained protocol driver: CSM over the pipelined log ----- *)

module F = Csm_field.Fp.Default
module PC = Csm_core.Protocol_chain.Make (F)
module E = PC.E
module M = E.M
module Params = Csm_core.Params

let chained_csm_end_to_end () =
  let machine = M.bank () in
  let k = 2 and b = 1 in
  let d = M.degree machine in
  (* needs BOTH 3b+1 <= n (PBFT) and 3b+1 <= n - d(k-1) (decoding) *)
  let n = Params.composite_degree ~k ~d + (3 * b) + 1 in
  let n = max n ((3 * b) + 1) in
  let params = Params.make ~network:Params.Partial_sync ~n ~k ~d ~b in
  let fi = F.of_int in
  let init = [| [| fi 10 |]; [| fi 20 |] |] in
  let engine = E.create ~machine ~params ~init in
  let keyring = Auth.create_keyring (Csm_rng.create 0xCC) ~n in
  let rounds = 5 in
  let workload r = [| [| fi (r + 1) |]; [| fi (10 * (r + 1)) |] |] in
  let out =
    PC.run ~keyring ~base_timeout:2000
      ~byzantine:(fun i -> i = n - 1)
      engine ~workload ~rounds ()
  in
  Alcotest.(check int) "all rounds reported" rounds (List.length out.PC.reports);
  (* track the reference trajectory *)
  let states = ref (Array.map Array.copy init) in
  List.iter
    (fun (r : PC.round_report) ->
      match (r.PC.agreed, r.PC.decoded) with
      | Some commands, Some dec ->
        let next_ref, _ = M.run_fleet machine ~states:!states ~commands in
        states := next_ref;
        for m = 0 to k - 1 do
          if not (F.equal dec.E.next_states.(m).(0) next_ref.(m).(0)) then
            Alcotest.fail "chained protocol state mismatch"
        done
      | _ -> Alcotest.failf "slot %d did not execute" r.PC.slot)
    out.PC.reports;
  Alcotest.(check bool) "coded states track reference" true
    (E.consistent_with engine ~states:!states)

let chained_requires_partial_sync () =
  let machine = M.bank () in
  let params = Params.make ~network:Params.Sync ~n:7 ~k:2 ~d:1 ~b:2 in
  let engine =
    E.create ~machine ~params ~init:[| [| F.of_int 1 |]; [| F.of_int 2 |] |]
  in
  let keyring = Auth.create_keyring (Csm_rng.create 1) ~n:7 in
  Alcotest.check_raises "sync rejected"
    (Invalid_argument "Protocol_chain.run: chained PBFT is the partial-sync path")
    (fun () ->
      ignore
        (PC.run ~keyring ~base_timeout:2000
           ~byzantine:(fun _ -> false)
           engine
           ~workload:(fun _ -> [| [| F.of_int 1 |]; [| F.of_int 2 |] |])
           ~rounds:1 ()))

let suites =
  [
    ( "consensus:chain",
      [
        Alcotest.test_case "all slots decide with agreement" `Quick
          all_slots_decide;
        Alcotest.test_case "pipelining speedup" `Quick pipelining_speedup;
        Alcotest.test_case "crashed leader: every slot view-changes" `Quick
          slots_independent_under_crashed_leader;
        Alcotest.test_case "chain under partial sync" `Quick
          chain_under_partial_sync;
        Alcotest.test_case "chained CSM end to end" `Quick
          chained_csm_end_to_end;
        Alcotest.test_case "chained driver requires partial sync" `Quick
          chained_requires_partial_sync;
      ] );
    ( "consensus:fuzz",
      [
        Alcotest.test_case "dolev-strong random adversaries" `Quick
          fuzz_dolev_strong;
        Alcotest.test_case "pbft random crash subsets" `Quick fuzz_pbft;
      ] );
  ]
