(* Multivariate polynomials: ring laws, evaluation, the Section-5.2
   composition property, and the Appendix-A Boolean construction. *)

open Csm_field
open Csm_mvpoly
module F = Fp.Default
module Mv = Mvpoly.Make (F)
module P = Csm_poly.Poly.Make (F)

let rng = Csm_rng.create 0x33F

let random_mv ?(vars = 3) ?(max_deg = 4) () =
  Mv.random rng ~vars ~degree:(1 + Csm_rng.int rng max_deg)
    ~terms:(1 + Csm_rng.int rng 5)

let random_point vars = Array.init vars (fun _ -> F.random rng)

let eval_laws () =
  for _ = 1 to 50 do
    let p = random_mv () and q = random_mv () in
    let x = random_point 3 in
    let lhs = Mv.eval (Mv.add p q) x in
    let rhs = F.add (Mv.eval p x) (Mv.eval q x) in
    if not (F.equal lhs rhs) then Alcotest.fail "eval not additive";
    let lhs = Mv.eval (Mv.mul p q) x in
    let rhs = F.mul (Mv.eval p x) (Mv.eval q x) in
    if not (F.equal lhs rhs) then Alcotest.fail "eval not multiplicative"
  done

let manual_eval () =
  (* p = 3*x0^2*x1 + 5*x2 + 7 *)
  let p =
    Mv.of_terms 3
      [
        ([| 2; 1; 0 |], F.of_int 3);
        ([| 0; 0; 1 |], F.of_int 5);
        ([| 0; 0; 0 |], F.of_int 7);
      ]
  in
  let x = [| F.of_int 2; F.of_int 3; F.of_int 4 |] in
  (* 3*4*3 + 5*4 + 7 = 36 + 20 + 7 = 63 *)
  Alcotest.(check int) "manual" 63 (F.to_int (Mv.eval p x));
  Alcotest.(check int) "degree" 3 (Mv.total_degree p)

let total_degree_mul () =
  for _ = 1 to 40 do
    let p = random_mv () and q = random_mv () in
    if not (Mv.is_zero p) && not (Mv.is_zero q) then begin
      (* over a field (integral domain) degrees add *)
      Alcotest.(check int) "deg(pq)=deg p+deg q"
        (Mv.total_degree p + Mv.total_degree q)
        (Mv.total_degree (Mv.mul p q))
    end
  done

let normalization_merges () =
  let p =
    Mv.of_terms 2 [ ([| 1; 0 |], F.of_int 4); ([| 1; 0 |], F.of_int (-4)) ]
  in
  Alcotest.(check bool) "cancels to zero" true (Mv.is_zero p);
  let q = Mv.of_terms 2 [ ([| 1; 1 |], F.of_int 2); ([| 1; 1 |], F.of_int 3) ] in
  Alcotest.(check int) "merged" 1 (List.length (Mv.terms q))

let pow_matches_mul () =
  let p = random_mv ~vars:2 ~max_deg:2 () in
  let lhs = Mv.pow p 3 in
  let rhs = Mv.mul p (Mv.mul p p) in
  Alcotest.(check bool) "p^3 = p*p*p" true (Mv.equal lhs rhs)

(* The key Section-5.2 property: substituting univariate polynomials
   u_j(z) for the variables yields h with h(x) = f(u_1(x), ..) and
   deg h <= d * max_j deg u_j. *)
let composition_property () =
  for _ = 1 to 30 do
    let vars = 2 + Csm_rng.int rng 2 in
    let f = random_mv ~vars ~max_deg:3 () in
    let deg_u = 1 + Csm_rng.int rng 4 in
    let substs =
      Array.init vars (fun _ -> P.to_coeffs (P.random rng ~degree:deg_u))
    in
    let h =
      Mv.compose_univariate f substs
        ~uni_add:(fun a b -> P.to_coeffs (P.add (P.of_coeffs a) (P.of_coeffs b)))
        ~uni_mul:(fun a b -> P.to_coeffs (P.mul (P.of_coeffs a) (P.of_coeffs b)))
    in
    let hp = P.of_coeffs h in
    (* degree bound *)
    let d = Mv.total_degree f in
    if P.degree hp > d * deg_u then
      Alcotest.failf "deg h = %d > %d" (P.degree hp) (d * deg_u);
    (* pointwise agreement *)
    for _ = 1 to 5 do
      let x = F.random rng in
      let point = Array.map (fun u -> P.eval (P.of_coeffs u) x) substs in
      if not (F.equal (P.eval hp x) (Mv.eval f point)) then
        Alcotest.fail "composition pointwise mismatch"
    done
  done

(* ----- Appendix A ----- *)

module G = Gf2m.Gf1024
module B = Boolean.Make (G)

let boolean_matches_function () =
  let cases =
    [
      ("xor3", fun (a : bool array) -> a.(0) <> a.(1) <> a.(2));
      ( "majority",
        fun a ->
          Array.fold_left (fun c b -> if b then c + 1 else c) 0 a >= 2 );
      ("and-or", fun a -> (a.(0) && a.(1)) || a.(2));
      ("const-true", fun _ -> true);
      ("const-false", fun _ -> false);
    ]
  in
  List.iter
    (fun (name, f) ->
      let p = B.of_function ~n:3 f in
      List.iter
        (fun input ->
          let got = B.eval_bits p input in
          if got <> f input then Alcotest.failf "%s: mismatch" name)
        (B.all_inputs 3))
    cases

let boolean_degree_bound () =
  (* the construction has degree <= n *)
  let f (a : bool array) = (a.(0) && a.(1)) <> a.(2) in
  let p = B.of_function ~n:3 f in
  Alcotest.(check bool) "deg <= 3" true (B.Mv.total_degree p <= 3)

let truth_table_roundtrip () =
  let rng = Csm_rng.create 17 in
  for _ = 1 to 10 do
    let n = 1 + Csm_rng.int rng 3 in
    let table = Array.init (1 lsl n) (fun _ -> Csm_rng.bool rng) in
    let p = B.of_truth_table table in
    List.iter
      (fun input ->
        let idx = ref 0 in
        Array.iteri (fun i b -> if b then idx := !idx lor (1 lsl i)) input;
        if B.eval_bits p input <> table.(!idx) then
          Alcotest.fail "truth table mismatch")
      (B.all_inputs n)
  done

(* Embedding invariance (the Appendix-A theorem): evaluating over the
   extension field on embedded bits gives embedded outputs — implicitly
   checked by [eval_bits] not raising; here we also check that arbitrary
   (non-bit) evaluations are well-defined field elements, which is what
   coded execution feeds the polynomial. *)
let nonbit_evaluation_defined () =
  let p = Lazy.force B.majority3 in
  let rng = Csm_rng.create 5 in
  for _ = 1 to 50 do
    let point = Array.init 3 (fun _ -> G.random rng) in
    ignore (B.Mv.eval p point)
  done

let gates () =
  List.iter
    (fun input ->
      let a = input.(0) and b = input.(1) in
      let bits = [| a; b |] in
      if B.eval_bits (B.xor_poly 2 0 1) bits <> (a <> b) then
        Alcotest.fail "xor";
      if B.eval_bits (B.and_poly 2 0 1) bits <> (a && b) then
        Alcotest.fail "and";
      if B.eval_bits (B.or_poly 2 0 1) bits <> (a || b) then Alcotest.fail "or";
      if B.eval_bits (B.not_poly 2 0) bits <> not a then Alcotest.fail "not")
    (B.all_inputs 2)

let suites =
  [
    ( "mvpoly",
      [
        Alcotest.test_case "eval ring laws" `Quick eval_laws;
        Alcotest.test_case "manual evaluation" `Quick manual_eval;
        Alcotest.test_case "degrees add under mul" `Quick total_degree_mul;
        Alcotest.test_case "normalization merges/cancels" `Quick
          normalization_merges;
        Alcotest.test_case "pow" `Quick pow_matches_mul;
        Alcotest.test_case "composition property (Sec 5.2)" `Quick
          composition_property;
      ] );
    ( "boolean (Appendix A)",
      [
        Alcotest.test_case "polynomial matches function" `Quick
          boolean_matches_function;
        Alcotest.test_case "degree bound" `Quick boolean_degree_bound;
        Alcotest.test_case "truth table roundtrip" `Quick truth_table_roundtrip;
        Alcotest.test_case "non-bit evaluation defined" `Quick
          nonbit_evaluation_defined;
        Alcotest.test_case "gates" `Quick gates;
      ] );
  ]
