(* Consensus: Dolev–Strong agreement/validity under equivocation and
   silence; PBFT happy path, crash/Byzantine leaders, view changes, and
   partial synchrony with adversarial pre-GST delays. *)

module Auth = Csm_crypto.Auth
module Net = Csm_sim.Net
module DS = Csm_consensus.Dolev_strong
module Pbft = Csm_consensus.Pbft

let keyring n = Auth.create_keyring (Csm_rng.create 0xA0A) ~n

(* ----- Dolev–Strong ----- *)

let ds_config ?(n = 7) ?(f = 2) ?(leader = 0) () =
  {
    DS.n;
    f;
    leader;
    delta = 10;
    instance = "test-ds";
    keyring = keyring n;
  }

let all_honest_agree () =
  let cfg = ds_config () in
  let { DS.decisions; _ } = DS.run cfg ~proposal:"v42" () in
  Array.iter
    (fun d -> Alcotest.(check bool) "decided v42" true (d = DS.Decided "v42"))
    decisions

let silent_leader_bot () =
  let cfg = ds_config () in
  let { DS.decisions; _ } =
    DS.run cfg
      ~byzantine:(fun i -> if i = 0 then Some Net.silent else None)
      ()
  in
  Array.iteri
    (fun i d ->
      if i <> 0 then Alcotest.(check bool) "bot" true (d = DS.Bot))
    decisions

let equivocating_leader_consistent () =
  (* consistency: all honest decide the same (Bot here, since both values
     get extracted by everyone thanks to relaying) *)
  let cfg = ds_config ~n:7 ~f:2 () in
  let { DS.decisions; _ } =
    DS.run cfg
      ~byzantine:(fun i ->
        if i = 0 then
          Some (DS.equivocating_leader cfg ~me:0 ~value_a:"A" ~value_b:"B")
        else None)
      ()
  in
  let honest = Array.to_list decisions |> List.tl in
  (match honest with
  | first :: rest ->
    List.iter
      (fun d ->
        Alcotest.(check bool) "consistent" true (d = first))
      rest
  | [] -> Alcotest.fail "no honest nodes");
  Alcotest.(check bool) "equivocation yields bot" true
    (List.hd honest = DS.Bot)

let equivocation_with_silent_colluders () =
  (* leader equivocates AND some relays stay silent; honest must still
     agree among themselves *)
  let cfg = ds_config ~n:9 ~f:3 () in
  let { DS.decisions; _ } =
    DS.run cfg
      ~byzantine:(fun i ->
        if i = 0 then
          Some (DS.equivocating_leader cfg ~me:0 ~value_a:"A" ~value_b:"B")
        else if i = 1 || i = 2 then Some Net.silent
        else None)
      ()
  in
  let honest = List.filteri (fun i _ -> i > 2) (Array.to_list decisions) in
  match honest with
  | first :: rest ->
    List.iter (fun d -> Alcotest.(check bool) "consistent" true (d = first)) rest
  | [] -> Alcotest.fail "no honest"

let forged_chain_rejected () =
  (* a message whose chain is signed by the wrong node must be invalid *)
  let cfg = ds_config () in
  let signer1 = Auth.signer cfg.DS.keyring 1 in
  let payload = DS.signed_payload cfg "evil" in
  let sg = Auth.sign signer1 payload in
  (* claims to be leader-signed but signature is node 1's *)
  Alcotest.(check bool) "rejected" false
    (DS.valid_chain cfg "evil" [ (0, sg) ]);
  (* proper leader signature accepted *)
  let signer0 = Auth.signer cfg.DS.keyring 0 in
  let sg0 = Auth.sign signer0 payload in
  Alcotest.(check bool) "accepted" true (DS.valid_chain cfg "evil" [ (0, sg0) ]);
  (* duplicate signers rejected *)
  Alcotest.(check bool) "dup rejected" false
    (DS.valid_chain cfg "evil" [ (0, sg0); (0, sg0) ])

let ds_max_fault_tolerance () =
  (* with signatures, DS tolerates f = n - 2 (all but leader+one honest):
     run n=5, f=3, 3 silent non-leader nodes *)
  let cfg = ds_config ~n:5 ~f:3 () in
  let { DS.decisions; _ } =
    DS.run cfg ~proposal:"v"
      ~byzantine:(fun i -> if i >= 2 then Some Net.silent else None)
      ()
  in
  Alcotest.(check bool) "honest 1 decides v" true
    (decisions.(1) = DS.Decided "v")

(* ----- PBFT ----- *)

let pbft_config ?(n = 7) ?(f = 2) () =
  {
    Pbft.n;
    f;
    base_timeout = 2000;
    instance = "test-pbft";
    keyring = keyring n;
  }

let check_agreement ?(expect : string option) decisions honest =
  let decided =
    List.filter_map
      (fun i -> decisions.(i))
      honest
  in
  Alcotest.(check int) "all honest decided" (List.length honest)
    (List.length decided);
  match decided with
  | [] -> Alcotest.fail "nobody decided"
  | v :: rest ->
    List.iter (fun v' -> Alcotest.(check string) "agreement" v v') rest;
    (match expect with
    | Some e -> Alcotest.(check string) "validity" e v
    | None -> ())

let pbft_happy_path () =
  let cfg = pbft_config () in
  let { Pbft.decisions; stats } =
    Pbft.run cfg ~proposals:(fun i -> Some (Printf.sprintf "val-%d" i)) ()
  in
  check_agreement ~expect:"val-0" decisions (List.init 7 (fun i -> i));
  (* happy path: the run drains by the view-0 timeout (which fires idle —
     every node has already decided), with no view-change traffic after *)
  Alcotest.(check bool) "no view change needed" true
    (stats.Net.end_time <= cfg.Pbft.base_timeout)

let pbft_crashed_leader_view_change () =
  let cfg = pbft_config () in
  let { Pbft.decisions; _ } =
    Pbft.run cfg
      ~proposals:(fun i -> Some (Printf.sprintf "val-%d" i))
      ~byzantine:(fun i -> if i = 0 then Some Net.silent else None)
      ()
  in
  (* leader of view 1 is node 1; its proposal wins *)
  check_agreement ~expect:"val-1" decisions (List.init 6 (fun i -> i + 1))

let pbft_two_crashed_leaders () =
  let cfg = pbft_config () in
  let { Pbft.decisions; _ } =
    Pbft.run cfg
      ~proposals:(fun i -> Some (Printf.sprintf "val-%d" i))
      ~byzantine:(fun i -> if i <= 1 then Some Net.silent else None)
      ()
  in
  check_agreement ~expect:"val-2" decisions (List.init 5 (fun i -> i + 2))

let pbft_partial_sync_adversarial_delays () =
  (* messages crawl before GST; liveness must resume after *)
  let cfg = pbft_config () in
  let gst = 30_000 in
  let latency =
    Net.partial_sync ~gst ~delta:10
      ~pre:(fun ~src:_ ~dst:_ ~now:_ -> 1_000_000)
  in
  let { Pbft.decisions; _ } =
    Pbft.run cfg ~latency ~max_time:2_000_000
      ~proposals:(fun i -> Some (Printf.sprintf "val-%d" i))
      ()
  in
  check_agreement decisions (List.init 7 (fun i -> i))

let pbft_equivocating_leader_safe () =
  (* leader sends different pre-prepares to two halves: safety demands no
     two honest nodes decide differently (they may go through a view
     change and decide a later leader's value). *)
  let cfg = pbft_config () in
  let keyring = cfg.Pbft.keyring in
  let equivocator : Pbft.msg Net.behavior =
    {
      Net.init =
        (fun api ->
          let signer = Auth.signer keyring 0 in
          for dst = 1 to cfg.Pbft.n - 1 do
            let value = if dst <= 3 then "X" else "Y" in
            let payload = Pbft.Pre_prepare { view = 0; value } in
            api.Net.send dst
              {
                Pbft.payload;
                signature = Auth.sign signer (Pbft.payload_string cfg payload);
                signer = 0;
              }
          done);
      on_message = (fun _ ~sender:_ _ -> ());
      on_timer = (fun _ _ -> ());
    }
  in
  let { Pbft.decisions; _ } =
    Pbft.run cfg
      ~proposals:(fun i -> Some (Printf.sprintf "val-%d" i))
      ~byzantine:(fun i -> if i = 0 then Some equivocator else None)
      ()
  in
  let decided = List.filter_map (fun i -> decisions.(i)) (List.init 6 (fun i -> i + 1)) in
  match decided with
  | [] -> () (* stuck is safe, though our timeouts should prevent it *)
  | v :: rest ->
    List.iter (fun v' -> Alcotest.(check string) "safety" v v') rest

let pbft_forged_message_ignored () =
  (* a message with a bad signature must be ignored: node 1 forges a
     pre-prepare pretending to be the leader *)
  let cfg = pbft_config () in
  let forger : Pbft.msg Net.behavior =
    {
      Net.init =
        (fun api ->
          let signer = Auth.signer cfg.Pbft.keyring 1 in
          let payload = Pbft.Pre_prepare { view = 0; value = "forged" } in
          (* signed by node 1 but claiming signer = 0 *)
          api.Net.broadcast
            {
              Pbft.payload;
              signature = Auth.sign signer (Pbft.payload_string cfg payload);
              signer = 0;
            });
      on_message = (fun _ ~sender:_ _ -> ());
      on_timer = (fun _ _ -> ());
    }
  in
  let { Pbft.decisions; _ } =
    Pbft.run cfg
      ~proposals:(fun i -> Some (Printf.sprintf "val-%d" i))
      ~byzantine:(fun i ->
        if i = 0 then Some Net.silent
        else if i = 1 then Some forger
        else None)
      ()
  in
  List.iter
    (fun i ->
      match decisions.(i) with
      | Some v -> Alcotest.(check bool) "not forged" true (v <> "forged")
      | None -> ())
    (List.init 5 (fun i -> i + 2))

(* a full Dolev–Strong instance satisfies every physical trace invariant *)
let ds_trace_invariants () =
  let module Trace = Csm_sim.Trace in
  let cfg = ds_config () in
  let t = Trace.create () in
  let decisions = Array.make cfg.DS.n DS.Bot in
  let behaviors =
    Array.init cfg.DS.n (fun i ->
        DS.honest cfg ~me:i
          ?proposal:(if i = cfg.DS.leader then Some "tv" else None)
          ~on_decide:(fun j d -> decisions.(j) <- d)
          ())
  in
  ignore
    (Net.run ~tracer:(Trace.tracer t)
       ~latency:(Net.sync ~delta:cfg.DS.delta)
       behaviors);
  Alcotest.(check (list string)) "no violations" [] (Trace.check t);
  Alcotest.(check bool) "decided" true (decisions.(1) = DS.Decided "tv")

let suites =
  [
    ( "consensus:dolev-strong",
      [
        Alcotest.test_case "all honest agree" `Quick all_honest_agree;
        Alcotest.test_case "silent leader -> bot" `Quick silent_leader_bot;
        Alcotest.test_case "equivocating leader: consistency" `Quick
          equivocating_leader_consistent;
        Alcotest.test_case "equivocation + silent colluders" `Quick
          equivocation_with_silent_colluders;
        Alcotest.test_case "forged chains rejected" `Quick forged_chain_rejected;
        Alcotest.test_case "tolerates n-2 silent faults" `Quick
          ds_max_fault_tolerance;
        Alcotest.test_case "trace invariants hold" `Quick ds_trace_invariants;
      ] );
    ( "consensus:pbft",
      [
        Alcotest.test_case "happy path" `Quick pbft_happy_path;
        Alcotest.test_case "crashed leader -> view change" `Quick
          pbft_crashed_leader_view_change;
        Alcotest.test_case "two crashed leaders" `Quick pbft_two_crashed_leaders;
        Alcotest.test_case "partial sync adversarial delays" `Quick
          pbft_partial_sync_adversarial_delays;
        Alcotest.test_case "equivocating leader: safety" `Quick
          pbft_equivocating_leader_safe;
        Alcotest.test_case "forged message ignored" `Quick
          pbft_forged_message_ignored;
      ] );
  ]
