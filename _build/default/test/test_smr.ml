(* SMR baselines: correctness of full/partial replication, the vote
   rule, fault-tolerance boundaries (the Table-1 security column), and
   storage accounting. *)

open Csm_field
module F = Fp.Default
module R = Csm_smr.Replication.Make (F)
module M = R.M

let rng = Csm_rng.create 0x55E
let fi = F.of_int

let machine = M.bank ()

let init k = Array.init k (fun i -> [| fi (100 * (i + 1)) |])
let commands k = Array.init k (fun i -> [| fi (i + 1) |])

let vote_rule () =
  let v1 = [| fi 1 |] and v2 = [| fi 2 |] in
  Alcotest.(check bool) "majority wins" true
    (match R.vote ~threshold:2 [ v1; v2; v1 ] with
    | Some v -> F.equal v.(0) (fi 1)
    | None -> false);
  Alcotest.(check bool) "threshold unmet" true
    (R.vote ~threshold:3 [ v1; v2; v1; v2 ] = None);
  Alcotest.(check bool) "empty" true (R.vote ~threshold:1 [] = None)

let full_replication_correct () =
  let n = 7 and k = 3 in
  let b = R.security_full ~n `Sync in
  let t = R.Full.create ~machine ~n ~k ~init:(init k) in
  (* b Byzantine nodes lying, decided outputs still correct *)
  let outs =
    R.Full.round t ~commands:(commands k) ~byzantine:(fun i -> i < b) ~b ()
  in
  Array.iteri
    (fun m o ->
      match o with
      | None -> Alcotest.fail "vote failed"
      | Some y ->
        Alcotest.(check int) "balance" ((100 * (m + 1)) + m + 1) (F.to_int y.(0)))
    outs;
  (* states advanced consistently *)
  let states = R.Full.states t in
  Alcotest.(check int) "state 0" 101 (F.to_int states.(0).(0))

let full_replication_breaks_beyond_bound () =
  let n = 7 and k = 2 in
  let b = R.security_full ~n `Sync in
  let t = R.Full.create ~machine ~n ~k ~init:(init k) in
  (* b+1 colluding liars reporting the same wrong value can win the vote
     or prevent it; the honest value can no longer be guaranteed *)
  let outs =
    R.Full.round t ~commands:(commands k)
      ~byzantine:(fun i -> i <= b)
      ~b ()
  in
  (* with 4 identical liars vs 3 honest and threshold b+1 = 4, the lie
     reaches the threshold: the client is fooled *)
  match outs.(0) with
  | Some y ->
    Alcotest.(check bool) "client fooled beyond bound" false
      (F.equal y.(0) (fi 101))
  | None -> () (* or no quorum: also a failure to deliver correctly *)

let partial_replication_correct () =
  let n = 12 and k = 3 in
  let b = R.security_partial ~n ~k `Sync in
  Alcotest.(check int) "group security" 1 b;
  let t = R.Partial.create ~machine ~n ~k ~init:(init k) in
  (* one liar per group is tolerated *)
  let byz i = i mod (n / k) = 0 in
  let outs = R.Partial.round t ~commands:(commands k) ~byzantine:byz ~b () in
  Array.iteri
    (fun m o ->
      match o with
      | None -> Alcotest.fail "vote failed"
      | Some y ->
        Alcotest.(check int) "balance" ((100 * (m + 1)) + m + 1) (F.to_int y.(0)))
    outs

let partial_replication_targeted_attack () =
  (* the adversary corrupts one whole group: that machine's clients can
     be fooled even though the global fault count is far below N/2 —
     the security cliff the paper's Table 1 captures *)
  let n = 12 and k = 3 in
  let q = n / k in
  let b = R.security_partial ~n ~k `Sync in
  let t = R.Partial.create ~machine ~n ~k ~init:(init k) in
  (* corrupt a majority of group 0 only: q/2+1 = 3 of 4 nodes; total
     faults 3 < N/2 = 6 *)
  let byz i = i < (q / 2) + 1 in
  let outs = R.Partial.round t ~commands:(commands k) ~byzantine:byz ~b () in
  (match outs.(0) with
  | Some y ->
    Alcotest.(check bool) "machine 0 compromised" false
      (F.equal y.(0) (fi 101))
  | None -> ());
  (* other groups unaffected *)
  match outs.(1) with
  | Some y -> Alcotest.(check int) "machine 1 fine" 202 (F.to_int y.(0))
  | None -> Alcotest.fail "machine 1 should decide"

let storage_accounting () =
  let n = 12 and k = 3 in
  let full = R.Full.create ~machine ~n ~k ~init:(init k) in
  let partial = R.Partial.create ~machine ~n ~k ~init:(init k) in
  Alcotest.(check int) "full: k states" k (R.Full.storage_per_node full);
  Alcotest.(check int) "partial: 1 state" 1 (R.Partial.storage_per_node partial);
  (* gamma = total / per-node *)
  Alcotest.(check int) "gamma full" 1 (k / R.Full.storage_per_node full);
  Alcotest.(check int) "gamma partial" k (k / R.Partial.storage_per_node partial)

let multi_round_consistency () =
  let n = 6 and k = 2 in
  let b = R.security_full ~n `Sync in
  let t = R.Full.create ~machine ~n ~k ~init:(init k) in
  let expect = [| 100; 200 |] in
  for r = 1 to 10 do
    let cmds = Array.init k (fun m -> [| fi (r * (m + 1)) |]) in
    expect.(0) <- expect.(0) + r;
    expect.(1) <- expect.(1) + (2 * r);
    let outs = R.Full.round t ~commands:cmds ~byzantine:(fun _ -> false) ~b () in
    Array.iteri
      (fun m o ->
        match o with
        | Some y -> Alcotest.(check int) "running balance" expect.(m) (F.to_int y.(0))
        | None -> Alcotest.fail "no quorum")
      outs
  done

let security_bounds_table () =
  (* Section 3 closed forms *)
  Alcotest.(check int) "full sync" 7 (R.security_full ~n:15 `Sync);
  Alcotest.(check int) "full partial-sync" 4 (R.security_full ~n:15 `Partial_sync);
  Alcotest.(check int) "partial sync" 2 (R.security_partial ~n:15 ~k:3 `Sync);
  Alcotest.(check int) "partial partial-sync" 1
    (R.security_partial ~n:15 ~k:3 `Partial_sync)

let group_layout () =
  let n = 12 and k = 3 in
  let t = R.Partial.create ~machine ~n ~k ~init:(init k) in
  Alcotest.(check int) "group of node 5" 1 (R.Partial.group_of t 5);
  Alcotest.(check (array int)) "members of group 2" [| 8; 9; 10; 11 |]
    (R.Partial.group_members t 2);
  Alcotest.check_raises "k must divide n"
    (Invalid_argument "Partial.create: K must divide N (disjoint groups)")
    (fun () ->
      ignore (R.Partial.create ~machine ~n:10 ~k:3 ~init:(init 3)))

let random_corruptions_never_fool_full () =
  (* random (non-colluding) corruptions never reach the threshold as long
     as liars < b+1 *)
  let n = 9 and k = 2 in
  let b = R.security_full ~n `Sync in
  for trial = 1 to 20 do
    let t = R.Full.create ~machine ~n ~k ~init:(init k) in
    let nbyz = Csm_rng.int rng (b + 1) in
    let byz = Array.init n (fun i -> i < nbyz) in
    Csm_rng.shuffle rng byz;
    let corruption ~node ~machine:_ (y : F.t array) =
      Array.map (fun v -> F.add v (fi (node + trial))) y
    in
    let outs =
      R.Full.round t ~commands:(commands k)
        ~byzantine:(fun i -> byz.(i))
        ~corruption ~b ()
    in
    Array.iter
      (fun o ->
        match o with
        | Some _ -> ()
        | None -> Alcotest.fail "quorum must exist")
      outs
  done

let suites =
  [
    ( "smr",
      [
        Alcotest.test_case "vote rule" `Quick vote_rule;
        Alcotest.test_case "full replication correct under b faults" `Quick
          full_replication_correct;
        Alcotest.test_case "full replication breaks beyond bound" `Quick
          full_replication_breaks_beyond_bound;
        Alcotest.test_case "partial replication correct" `Quick
          partial_replication_correct;
        Alcotest.test_case "partial replication targeted attack" `Quick
          partial_replication_targeted_attack;
        Alcotest.test_case "storage accounting" `Quick storage_accounting;
        Alcotest.test_case "multi-round consistency" `Quick
          multi_round_consistency;
        Alcotest.test_case "security bound formulas" `Quick security_bounds_table;
        Alcotest.test_case "group layout" `Quick group_layout;
        Alcotest.test_case "random corruption never blocks quorum" `Quick
          random_corruptions_never_fool_full;
      ] );
  ]
