test/test_mvpoly.ml: Alcotest Array Boolean Csm_field Csm_mvpoly Csm_poly Csm_rng Fp Gf2m Lazy List Mvpoly
