test/test_extensions.ml: Adversary Alcotest Array Csm_core Csm_field Csm_harness Csm_rng Csm_rs Csm_smr Engine Fp List Params Printf Protocol
