test/test_protocol.ml: Alcotest Array Csm_core Csm_field Csm_rng Fp List Params Printf Protocol QCheck QCheck_alcotest
