test/test_metrics.ml: Alcotest Counted Counter Csm_field Csm_metrics Csm_rng Fp Ledger
