test/test_intermix.ml: Alcotest Array Counted Csm_core Csm_crypto Csm_field Csm_intermix Csm_metrics Csm_rng Fp List Params Printf
