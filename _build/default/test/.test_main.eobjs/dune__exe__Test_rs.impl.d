test/test_rs.ml: Alcotest Array Bm Csm_field Csm_rng Csm_rs Fp Gf2m List Option QCheck Reed_solomon
