test/test_chain.ml: Alcotest Array Csm_consensus Csm_core Csm_crypto Csm_field Csm_rng Csm_sim List Printf String
