test/test_sim.ml: Alcotest Array Csm_sim List
