test/test_clients.ml: Alcotest Array Csm_core Csm_field Fp List Params Protocol
