test/test_field.ml: Alcotest Csm_field Csm_rng Field_intf Fp Gf2m List Printf QCheck QCheck_alcotest
