test/test_linalg.ml: Alcotest Array Csm_field Csm_linalg Csm_rng Fp Linalg Printf
