test/test_machine.ml: Alcotest Array Csm_field Csm_machine Csm_rng Fp Gf2m List Printf
