test/test_smr.ml: Alcotest Array Csm_field Csm_rng Csm_smr Fp
