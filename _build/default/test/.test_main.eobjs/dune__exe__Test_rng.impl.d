test/test_rng.ml: Alcotest Array Csm_rng
