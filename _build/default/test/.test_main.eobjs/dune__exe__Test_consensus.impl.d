test/test_consensus.ml: Alcotest Array Csm_consensus Csm_crypto Csm_rng Csm_sim List Printf
