test/test_poly.ml: Alcotest Array Csm_field Csm_poly Csm_rng Fp Gf2m Lagrange List Poly QCheck QCheck_alcotest Subproduct
