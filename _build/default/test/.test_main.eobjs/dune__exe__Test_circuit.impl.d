test/test_circuit.ml: Alcotest Array Csm_core Csm_field Csm_machine Csm_mvpoly Csm_rng List
