test/test_csm_core.ml: Alcotest Array Coding Csm_core Csm_field Csm_machine Csm_rng Engine Fp Gf2m List Params QCheck QCheck_alcotest
