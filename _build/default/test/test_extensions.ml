(* Extensions beyond the core protocol: erasure-only decoding, node
   recovery/regeneration, straggler-tolerant early decode, and the
   Section-7 random-allocation comparison. *)

open Csm_field
open Csm_core
module F = Fp.Default
module RS = Csm_rs.Reed_solomon.Make (F)
module E = Engine.Make (F)
module P = Protocol.Make (F)
module M = E.M
module RA = Csm_smr.Random_allocation

let rng = Csm_rng.create 0xE77
let fi = F.of_int

(* ----- erasure-only decoding ----- *)

let erasure_decode_roundtrip () =
  for _ = 1 to 30 do
    let k = 1 + Csm_rng.int rng 8 in
    let n = k + Csm_rng.int rng 10 in
    let msg =
      if k = 1 then RS.P.constant (F.random rng) else RS.P.random rng ~degree:(k - 1)
    in
    let pts = Array.init n (fun i -> F.of_int (i + 1)) in
    let word = RS.encode ~message:msg ~points:pts in
    (* crash faults: drop random symbols, keep at least k *)
    let keep_count = k + Csm_rng.int rng (n - k + 1) in
    let keep = Csm_rng.sample rng ~n ~k:keep_count in
    let pairs = Array.map (fun i -> (pts.(i), word.(i))) keep in
    match RS.decode_erasures ~k pairs with
    | Some d ->
      if not (RS.P.equal d.RS.poly msg) then Alcotest.fail "wrong poly"
    | None -> Alcotest.fail "erasure decode failed"
  done

let erasure_decode_rejects_corruption () =
  let k = 3 and n = 8 in
  let msg = RS.P.random rng ~degree:(k - 1) in
  let pts = Array.init n (fun i -> F.of_int (i + 1)) in
  let word = RS.encode ~message:msg ~points:pts in
  let corrupted, _ = RS.corrupt rng ~count:1 word in
  let pairs = Array.map2 (fun x y -> (x, y)) pts corrupted in
  (* one lie makes the received set inconsistent: erasure decoding must
     refuse rather than return a wrong polynomial *)
  match RS.decode_erasures ~k pairs with
  | None -> ()
  | Some d ->
    if not (RS.P.equal d.RS.poly msg) then
      Alcotest.fail "erasure decode certified a wrong polynomial"
    else Alcotest.fail "erasure decode accepted corrupted data"

(* ----- node recovery ----- *)

let machine = M.interest_market ()

let make_engine ?(k = 3) ?(b = 2) () =
  let d = M.degree machine in
  let n = Params.composite_degree ~k ~d + (2 * b) + 1 in
  let params = Params.make ~network:Params.Sync ~n ~k ~d ~b in
  let init =
    Array.init k (fun _ -> Array.init 1 (fun _ -> F.random rng))
  in
  (E.create ~machine ~params ~init, init)

let recovery_honest_peers () =
  let engine, _ = make_engine () in
  let n = engine.E.params.Params.n in
  let victim = 2 in
  let original = Array.copy (E.coded_state engine ~node:victim) in
  (* wipe, then recover from all other peers *)
  engine.E.coded_states.(victim) <- [| F.zero |];
  let reports =
    List.filter_map
      (fun i ->
        if i = victim then None else Some (i, E.coded_state engine ~node:i))
      (List.init n (fun i -> i))
  in
  Alcotest.(check bool) "recovered" true
    (E.recover_node engine ~node:victim ~reports);
  Alcotest.(check bool) "exact state" true
    (Array.for_all2 F.equal original (E.coded_state engine ~node:victim))

let recovery_with_liars () =
  let engine, _ = make_engine () in
  let n = engine.E.params.Params.n in
  let b = engine.E.params.Params.b in
  let victim = 0 in
  let original = Array.copy (E.coded_state engine ~node:victim) in
  let reports =
    List.filter_map
      (fun i ->
        if i = victim then None
        else
          let s = E.coded_state engine ~node:i in
          (* peers 1..b lie about their coded state *)
          let s = if i <= b then Array.map (fun v -> F.add v F.one) s else s in
          Some (i, s))
      (List.init n (fun i -> i))
  in
  (* recovery decodes dimension K from n-1 reports with b lies:
     needs 2b+1 <= (n-1) - (K-1); holds for our parameters *)
  Alcotest.(check bool) "recovered despite liars" true
    (E.recover_node engine ~node:victim ~reports);
  Alcotest.(check bool) "exact state" true
    (Array.for_all2 F.equal original (E.coded_state engine ~node:victim))

let recovery_insufficient_reports () =
  let engine, _ = make_engine () in
  let k = engine.E.params.Params.k in
  (* fewer than K reports cannot determine the state polynomial *)
  let reports = List.init (k - 1) (fun i -> (i + 1, E.coded_state engine ~node:(i + 1))) in
  Alcotest.(check bool) "refused" false
    (E.recover_node engine ~node:0 ~reports)

(* recovered node participates correctly in subsequent rounds *)
let recovery_then_round () =
  let engine, init = make_engine () in
  let n = engine.E.params.Params.n in
  let victim = 3 in
  engine.E.coded_states.(victim) <- [| fi 12345 |];
  let reports =
    List.filter_map
      (fun i ->
        if i = victim then None else Some (i, E.coded_state engine ~node:i))
      (List.init n (fun i -> i))
  in
  assert (E.recover_node engine ~node:victim ~reports);
  let k = engine.E.params.Params.k in
  let commands = Array.init k (fun _ -> [| F.random rng |]) in
  let report =
    E.round engine ~commands
      ~byzantine:(fun i -> i < engine.E.params.Params.b)
      ()
  in
  match report.E.decoded with
  | None -> Alcotest.fail "round failed after recovery"
  | Some dec ->
    let next_ref, _ = M.run_fleet machine ~states:init ~commands in
    for m = 0 to k - 1 do
      if not (F.equal dec.E.next_states.(m).(0) next_ref.(m).(0)) then
        Alcotest.fail "wrong state after recovery"
    done

(* ----- early decode (straggler tolerance) ----- *)

let early_decode_correct_with_liars () =
  (* early decoding at m_min results must still correct b lies when the
     liars are among the fastest responders *)
  let d = M.degree machine in
  let k = 3 and b = 2 in
  let n = Params.composite_degree ~k ~d + (2 * b) + 1 + 5 (* slack 5 *) in
  let params = Params.make ~network:Params.Sync ~n ~k ~d ~b in
  let init = Array.init k (fun i -> [| fi (100 * (i + 1)) |]) in
  let engine = E.create ~machine ~params ~init in
  let cfg = { (P.default_config params) with P.early_decode = true } in
  (* liars are nodes 0..b-1: with uniform latency they are among the
     early arrivals at every node *)
  let adv = P.lying_adversary (List.init b (fun i -> i)) in
  let commands = Array.init k (fun i -> [| fi (i + 7) |]) in
  let times = Array.make n max_int in
  let per_node =
    P.execution_phase ~decode_times:times cfg engine ~commands adv
  in
  let next_ref, _ = M.run_fleet machine ~states:init ~commands in
  Array.iteri
    (fun i result ->
      if not (adv.P.byzantine i) then begin
        match result with
        | None -> Alcotest.failf "node %d failed to decode" i
        | Some dec ->
          for m = 0 to k - 1 do
            if not (F.equal dec.E.next_states.(m).(0) next_ref.(m).(0)) then
              Alcotest.fail "early decode wrong"
          done
      end)
    per_node;
  (* decode happened at the first delivery wave (delta=10), well before
     the full timer *)
  Array.iteri
    (fun i t ->
      if not (adv.P.byzantine i) then
        Alcotest.(check bool) "decoded at first wave" true (t <= cfg.P.delta + 1))
    times

let straggler_sweep_correct () =
  let points = Csm_harness.Stragglers.sweep ~n:12 ~k:2 ~d:2 ~b:1 ~tail:100 () in
  List.iter
    (fun (p : Csm_harness.Stragglers.point) ->
      Alcotest.(check bool)
        (Printf.sprintf "correct at %d stragglers" p.Csm_harness.Stragglers.stragglers)
        true p.Csm_harness.Stragglers.correct;
      (* within the slack, early decode beats waiting for the bound *)
      if p.Csm_harness.Stragglers.stragglers <= p.Csm_harness.Stragglers.slack
      then
        Alcotest.(check bool) "faster than worst-case wait" true
          (p.Csm_harness.Stragglers.t_early
          < p.Csm_harness.Stragglers.t_wait_all))
    points

(* ----- random allocation (Section 7) ----- *)

let allocation_balanced_after_rotation () =
  let t = RA.create ~n:20 ~k:4 in
  let r = Csm_rng.create 9 in
  for _ = 1 to 10 do
    ignore (RA.rotate r t);
    for g = 0 to 3 do
      Alcotest.(check int) "group size" 5 (List.length (RA.members t g))
    done
  done

let allocation_adaptive_owns_group () =
  let t = RA.create ~n:20 ~k:4 in
  let threshold = RA.ownership_threshold t in
  Alcotest.(check int) "threshold" 3 threshold;
  let corrupted = RA.adaptive_corruption t ~budget:threshold in
  let byz i = List.mem i corrupted in
  Alcotest.(check bool) "owned" true (RA.any_group_compromised t ~byzantine:byz);
  (* below the threshold no group can be owned *)
  let corrupted' = RA.adaptive_corruption t ~budget:(threshold - 1) in
  let byz' i = List.mem i corrupted' in
  Alcotest.(check bool) "not owned" false
    (RA.any_group_compromised t ~byzantine:byz')

let allocation_experiment_shape () =
  let n = 24 and k = 6 and epochs = 100 in
  let stat = RA.run_static ~seed:1 ~n ~k ~budget:3 ~epochs in
  let adp0 = RA.run_adaptive ~seed:2 ~n ~k ~budget:3 ~epochs ~delay:0 in
  let adp1 = RA.run_adaptive ~seed:3 ~n ~k ~budget:3 ~epochs ~delay:1 in
  let csm = RA.csm_reference ~n ~k ~d:1 ~budget:3 ~epochs in
  (* instant adaptive adversary always owns a group *)
  Alcotest.(check (float 0.001)) "adaptive delay-0" 1.0 adp0.RA.compromise_rate;
  (* rotation with stale observation collapses toward the static rate *)
  Alcotest.(check bool) "rotation helps" true
    (adp1.RA.compromise_rate < 0.2);
  Alcotest.(check bool) "static rare" true (stat.RA.compromise_rate < 0.2);
  (* but rotation costs migrations; CSM costs none and is never owned *)
  Alcotest.(check bool) "migration cost" true
    (adp1.RA.migrations_per_epoch > 10.0);
  Alcotest.(check (float 0.001)) "csm never" 0.0 csm.RA.compromise_rate;
  Alcotest.(check (float 0.001)) "csm free" 0.0 csm.RA.migrations_per_epoch;
  (* beyond the Table-2 bound CSM is compromised too (honest accounting) *)
  let csm_over = RA.csm_reference ~n ~k ~d:1 ~budget:12 ~epochs in
  Alcotest.(check (float 0.001)) "csm bound honest" 1.0
    csm_over.RA.compromise_rate

(* ----- adversary strategy library ----- *)

module Adv = Adversary.Make (F)

(* Every named strategy, applied by b liars within the bound, is
   corrected over multiple rounds on every example machine dimension. *)
let all_strategies_corrected () =
  let machine = M.pair_market () in
  let d = M.degree machine in
  let k = 2 and b = 2 in
  let n = Params.composite_degree ~k ~d + (2 * b) + 1 in
  let params = Params.make ~network:Params.Sync ~n ~k ~d ~b in
  List.iter
    (fun (strategy : Adv.t) ->
      let r = Csm_rng.create 0xAD5 in
      let init = Array.init k (fun _ -> Array.init 2 (fun _ -> F.random r)) in
      let engine = E.create ~machine ~params ~init in
      let states = ref (Array.map Array.copy init) in
      for round = 0 to 3 do
        let commands =
          Array.init k (fun _ -> Array.init 2 (fun _ -> F.random r))
        in
        let report =
          E.round engine ~commands
            ~byzantine:(fun i -> i < b)
            ~corruption:(strategy.Adv.corruption ~round ~engine)
            ()
        in
        let next_ref, _ = M.run_fleet machine ~states:!states ~commands in
        states := next_ref;
        match report.E.decoded with
        | None -> Alcotest.failf "%s: decode failed" strategy.Adv.name
        | Some dec ->
          for m = 0 to k - 1 do
            for j = 0 to 1 do
              if not (F.equal dec.E.next_states.(m).(j) next_ref.(m).(j))
              then Alcotest.failf "%s: wrong state" strategy.Adv.name
            done
          done
      done)
    (Adv.all ~seed:99)

(* The flip-flop liar is only reported as erroneous on rounds it lies. *)
let flip_flop_detection () =
  let machine = M.bank () in
  let k = 2 and b = 1 in
  let n = Params.composite_degree ~k ~d:1 + (2 * b) + 1 in
  let params = Params.make ~network:Params.Sync ~n ~k ~d:1 ~b in
  let r = Csm_rng.create 4 in
  let init = Array.init k (fun _ -> [| F.random r |]) in
  let engine = E.create ~machine ~params ~init in
  let strategy = Adv.flip_flop (Adv.uniform_shift ()) in
  for round = 0 to 3 do
    let commands = Array.init k (fun _ -> [| F.random r |]) in
    let report =
      E.round engine ~commands
        ~byzantine:(fun i -> i = 0)
        ~corruption:(strategy.Adv.corruption ~round ~engine)
        ()
    in
    match report.E.decoded with
    | None -> Alcotest.fail "flip-flop round failed"
    | Some dec ->
      let expect_liar = round mod 2 = 0 in
      Alcotest.(check bool)
        (Printf.sprintf "round %d detection" round)
        expect_liar
        (List.mem 0 dec.E.error_nodes)
  done

let suites =
  [
    ( "extensions:erasures",
      [
        Alcotest.test_case "erasure decode roundtrip" `Quick
          erasure_decode_roundtrip;
        Alcotest.test_case "erasure decode rejects corruption" `Quick
          erasure_decode_rejects_corruption;
      ] );
    ( "extensions:recovery",
      [
        Alcotest.test_case "recover from honest peers" `Quick
          recovery_honest_peers;
        Alcotest.test_case "recover despite liars" `Quick recovery_with_liars;
        Alcotest.test_case "insufficient reports refused" `Quick
          recovery_insufficient_reports;
        Alcotest.test_case "recovered node participates" `Quick
          recovery_then_round;
      ] );
    ( "extensions:stragglers",
      [
        Alcotest.test_case "early decode corrects fast liars" `Quick
          early_decode_correct_with_liars;
        Alcotest.test_case "sweep correct + faster in slack" `Quick
          straggler_sweep_correct;
      ] );
    ( "extensions:adversaries",
      [
        Alcotest.test_case "all strategies corrected within bound" `Quick
          all_strategies_corrected;
        Alcotest.test_case "flip-flop detected intermittently" `Quick
          flip_flop_detection;
      ] );
    ( "extensions:allocation",
      [
        Alcotest.test_case "balanced after rotation" `Quick
          allocation_balanced_after_rotation;
        Alcotest.test_case "adaptive ownership threshold" `Quick
          allocation_adaptive_owns_group;
        Alcotest.test_case "section-7 experiment shape" `Quick
          allocation_experiment_shape;
      ] );
  ]
