(* The domain pool: chunking edge cases, determinism of the parallel
   engine round (decoded records and ledger totals must be identical for
   any domain count, including under Byzantine corruption), and exact
   operation counting across domains. *)

open Csm_field
open Csm_core
module Pool = Csm_parallel.Pool
module F = Fp.Default
module CF = Counted.Make (F)
module Counter = Csm_metrics.Counter
module Ledger = Csm_metrics.Ledger
module Scope = Csm_metrics.Scope
module E = Engine.Make (F)
module EC = Engine.Make (CF)
module M = E.M

let rng = Csm_rng.create 0xD0A1

let with_domains w f =
  let old = Pool.domains () in
  Pool.set_domains w;
  Fun.protect ~finally:(fun () -> Pool.set_domains old) f

(* ----- chunking edge cases ----- *)

let pool_empty () =
  with_domains 4 (fun () ->
      Alcotest.(check (array int)) "init 0" [||] (Pool.parallel_init 0 (fun i -> i));
      Alcotest.(check (array int)) "map [||]" [||]
        (Pool.parallel_map_array (fun x -> x + 1) [||]);
      Pool.parallel_for 0 (fun _ -> Alcotest.fail "body must not run");
      Alcotest.(check (list int)) "list []" []
        (Pool.parallel_list_map (fun x -> x) []))

let pool_shorter_than_domains () =
  with_domains 4 (fun () ->
      (* fewer elements than domains: every index exactly once, in place *)
      Alcotest.(check (array int)) "len 1" [| 0 |] (Pool.parallel_init 1 (fun i -> i));
      Alcotest.(check (array int)) "len 3" [| 0; 10; 20 |]
        (Pool.parallel_init 3 (fun i -> 10 * i)))

let pool_ragged_chunks () =
  with_domains 4 (fun () ->
      (* 10 elements in chunks of 3: 3+3+3+1 *)
      let hits = Array.make 10 0 in
      Pool.parallel_for ~chunk:3 10 (fun i -> hits.(i) <- hits.(i) + 1);
      Alcotest.(check (array int)) "each index once" (Array.make 10 1) hits;
      let a = Pool.parallel_init ~chunk:3 10 (fun i -> i * i) in
      Alcotest.(check (array int)) "squares" (Array.init 10 (fun i -> i * i)) a)

let pool_matches_sequential () =
  with_domains 4 (fun () ->
      let xs = Array.init 1000 (fun i -> i - 500) in
      let f x = (x * 7) + 3 in
      Alcotest.(check (array int)) "map = Array.map" (Array.map f xs)
        (Pool.parallel_map_array f xs);
      let l = List.init 37 (fun i -> i) in
      Alcotest.(check (list int)) "list_map = List.map" (List.map f l)
        (Pool.parallel_list_map f l))

let pool_exception () =
  with_domains 4 (fun () ->
      (* a failing chunk propagates to the submitter, and the pool
         survives to run the next job *)
      (try
         Pool.parallel_for ~chunk:1 8 (fun i -> if i = 5 then failwith "boom");
         Alcotest.fail "expected exception"
       with Failure m -> Alcotest.(check string) "message" "boom" m);
      Alcotest.(check (array int)) "pool alive" (Array.init 16 (fun i -> i))
        (Pool.parallel_init 16 (fun i -> i)))

let pool_nested () =
  with_domains 4 (fun () ->
      (* nested parallel calls run inline in the worker; no deadlock *)
      let a =
        Pool.parallel_init ~chunk:1 8 (fun i ->
            Array.fold_left ( + ) 0 (Pool.parallel_init 50 (fun j -> i + j)))
      in
      let expect i = (50 * i) + (50 * 49 / 2) in
      Alcotest.(check (array int)) "nested sums" (Array.init 8 expect) a)

let pool_limit () =
  with_domains 4 (fun () ->
      Alcotest.(check int) "domains" 4 (Pool.domains ());
      Pool.with_domain_limit 1 (fun () ->
          (* forced sequential: body runs on the calling domain *)
          (* csm-lint: allow R1 — asserting physical inline execution *)
          let self = Domain.self () in
          Pool.parallel_for ~chunk:1 8 (fun _ ->
              (* csm-lint: allow R1 — asserting physical inline execution *)
              if not (Domain.self () = self) then
                Alcotest.fail "limit 1 must run inline"));
      Alcotest.(check int) "restored" 4 (Pool.domains ()))

(* ----- exact counting across domains ----- *)

let counting_exact () =
  with_domains 4 (fun () ->
      let x = CF.of_int 3 and y = CF.of_int 5 in
      let count_with w =
        Pool.with_domain_limit w (fun () ->
            let c = Counter.create () in
            CF.with_counter c (fun () ->
                Pool.parallel_for ~chunk:1 100 (fun _ -> ignore (CF.mul x y));
                Pool.parallel_for ~chunk:7 100 (fun _ -> ignore (CF.add x y)));
            (Counter.muls c, Counter.adds c))
      in
      Alcotest.(check (pair int int)) "width 1" (100, 100) (count_with 1);
      Alcotest.(check (pair int int)) "width 4" (100, 100) (count_with 4))

let ledger_roles_across_domains () =
  with_domains 4 (fun () ->
      let x = CF.of_int 2 and y = CF.of_int 9 in
      let totals_with w =
        Pool.with_domain_limit w (fun () ->
            let ledger = Ledger.create () in
            let scope = Scope.of_ledger (module CF) ledger in
            Pool.parallel_for ~chunk:1 60 (fun i ->
                Scope.node scope (i mod 3) (fun () ->
                    for _ = 1 to i + 1 do
                      ignore (CF.mul x y)
                    done));
            List.map
              (fun r -> (r, Counter.total (Ledger.counter ledger r)))
              (Ledger.roles ledger)
        )
      in
      Alcotest.(check (list (pair string int))) "per-role totals equal"
        (totals_with 1) (totals_with 4))

(* ----- engine determinism: domains = 1 vs 4 ----- *)

type observation = {
  o_decoded : (F.t array array * F.t array array * int list) option;
  o_states : F.t array array;
  o_roles : (string * int) list;
}

(* Run [rounds] coded rounds (with byz_count Byzantine nodes corrupting
   deterministically) under a fixed domain width; everything observable
   is returned for comparison. *)
let observe ~width ~byz_count ~rounds ~seed =
  with_domains 4 (fun () ->
      Pool.with_domain_limit width (fun () ->
          let r = Csm_rng.create seed in
          let machine = EC.M.pair_market () in
          let d = 2 and k = 5 in
          let b = byz_count in
          let n = Params.composite_degree ~k ~d + (2 * b) + 1 in
          let params = Params.make ~network:Params.Sync ~n ~k ~d ~b in
          let init =
            Array.init k (fun _ -> Array.init 2 (fun _ -> CF.random r))
          in
          let ledger = Ledger.create () in
          let scope = Scope.of_ledger (module CF) ledger in
          let engine = EC.create ~machine ~params ~init in
          let byz = Array.init n (fun i -> i < b) in
          Csm_rng.shuffle r byz;
          let last = ref None in
          for _ = 1 to rounds do
            let commands =
              Array.init k (fun _ -> Array.init 2 (fun _ -> CF.random r))
            in
            let report =
              EC.round ~scope engine ~commands
                ~byzantine:(fun i -> byz.(i))
                ~corruption:(fun ~node g ->
                  Array.map (fun v -> CF.add v (CF.of_int (node + 2))) g)
                ()
            in
            last := report.EC.decoded
          done;
          let repr (v : CF.t array array) =
            Array.map (Array.map CF.to_int) v
          in
          let frepr = Array.map (Array.map F.of_int) in
          {
            o_decoded =
              Option.map
                (fun d ->
                  ( frepr (repr d.EC.next_states),
                    frepr (repr d.EC.outputs),
                    d.EC.error_nodes ))
                !last;
            o_states =
              frepr (repr (Array.init n (fun i -> EC.coded_state engine ~node:i)));
            o_roles =
              List.map
                (fun role -> (role, Counter.total (Ledger.counter ledger role)))
                (List.sort String.compare (Ledger.roles ledger));
          }))

let qcheck_round_deterministic =
  QCheck.Test.make ~name:"round identical under 1 vs 4 domains" ~count:15
    (QCheck.make (QCheck.Gen.return ()))
    (fun () ->
      let byz_count = Csm_rng.int rng 4 in
      let seed = 0xBEEF + Csm_rng.int rng 10_000 in
      let a = observe ~width:1 ~byz_count ~rounds:2 ~seed in
      let b = observe ~width:4 ~byz_count ~rounds:2 ~seed in
      if a.o_decoded <> b.o_decoded then
        QCheck.Test.fail_report "decoded records differ across domain counts";
      if a.o_states <> b.o_states then
        QCheck.Test.fail_report "coded states differ across domain counts";
      if a.o_roles <> b.o_roles then
        QCheck.Test.fail_report "ledger totals differ across domain counts";
      true)

let decode_errors_deterministic () =
  (* byzantine nodes are reported identically whatever the width *)
  let run width =
    with_domains 4 (fun () ->
        Pool.with_domain_limit width (fun () ->
            let r = Csm_rng.create 0xE44 in
            let machine = M.pair_market () in
            let k = 4 and d = 2 and b = 2 in
            let n = Params.composite_degree ~k ~d + (2 * b) + 1 in
            let params = Params.make ~network:Params.Sync ~n ~k ~d ~b in
            let init =
              Array.init k (fun _ -> Array.init 2 (fun _ -> F.random r))
            in
            let engine = E.create ~machine ~params ~init in
            let commands =
              Array.init k (fun _ -> Array.init 2 (fun _ -> F.random r))
            in
            let report =
              E.round engine ~commands ~byzantine:(fun i -> i = 1 || i = 6) ()
            in
            match report.E.decoded with
            | None -> Alcotest.fail "decode failed"
            | Some dec -> dec.E.error_nodes))
  in
  Alcotest.(check (list int)) "error nodes" [ 1; 6 ] (run 1);
  Alcotest.(check (list int)) "error nodes (4 domains)" [ 1; 6 ] (run 4)

let suites =
  [
    ( "parallel.pool",
      [
        Alcotest.test_case "empty inputs" `Quick pool_empty;
        Alcotest.test_case "shorter than domains" `Quick pool_shorter_than_domains;
        Alcotest.test_case "ragged chunks" `Quick pool_ragged_chunks;
        Alcotest.test_case "matches sequential" `Quick pool_matches_sequential;
        Alcotest.test_case "exception propagation" `Quick pool_exception;
        Alcotest.test_case "nested runs inline" `Quick pool_nested;
        Alcotest.test_case "domain limit" `Quick pool_limit;
      ] );
    ( "parallel.metrics",
      [
        Alcotest.test_case "exact op counts" `Quick counting_exact;
        Alcotest.test_case "ledger roles across domains" `Quick
          ledger_roles_across_domains;
      ] );
    ( "parallel.determinism",
      [
        QCheck_alcotest.to_alcotest ~long:false qcheck_round_deterministic;
        Alcotest.test_case "byzantine reporting" `Quick
          decode_errors_deterministic;
      ] );
  ]
