(* Network simulator: delivery, ordering, latency models, timers,
   determinism, halting, and Byzantine equivocation power. *)

module Net = Csm_sim.Net

type msg = Ping of int | Val of string

let ping_pong () =
  (* node 0 pings everyone; each replies; count receipts *)
  let received = Array.make 4 0 in
  let behaviors =
    Array.init 4 (fun i ->
        {
          Net.init =
            (fun api -> if i = 0 then api.Net.broadcast (Ping 0));
          on_message =
            (fun api ~sender m ->
              received.(i) <- received.(i) + 1;
              match m with
              | Ping 0 when i <> 0 -> api.Net.send sender (Ping 1)
              | Ping _ | Val _ -> ());
          on_timer = (fun _ _ -> ());
        })
  in
  let stats = Net.run ~latency:(Net.sync ~delta:5) behaviors in
  Alcotest.(check int) "node 0 got 3 replies" 3 received.(0);
  Alcotest.(check int) "sent" 6 stats.Net.messages_sent;
  Alcotest.(check int) "delivered" 6 stats.Net.messages_delivered;
  (* two hops of 5 *)
  Alcotest.(check int) "end time" 10 stats.Net.end_time

let sync_latency_exact () =
  let arrival = ref (-1) in
  let behaviors =
    [|
      {
        Net.init = (fun api -> api.Net.send 1 (Ping 0));
        on_message = (fun _ ~sender:_ _ -> ());
        on_timer = (fun _ _ -> ());
      };
      {
        Net.init = (fun _ -> ());
        on_message = (fun api ~sender:_ _ -> arrival := api.Net.now ());
        on_timer = (fun _ _ -> ());
      };
    |]
  in
  ignore (Net.run ~latency:(Net.sync ~delta:7) behaviors);
  Alcotest.(check int) "arrives at delta" 7 !arrival

let partial_sync_bounds () =
  (* Before GST the adversary delays messages hugely, but delivery must
     still happen by max(send, gst) + delta. *)
  let gst = 100 and delta = 5 in
  let latency =
    Net.partial_sync ~gst ~delta ~pre:(fun ~src:_ ~dst:_ ~now:_ -> 10_000)
  in
  let arrivals = ref [] in
  let behaviors =
    [|
      {
        Net.init =
          (fun api ->
            api.Net.send 1 (Ping 0);
            (* and one after GST *)
            api.Net.set_timer ~delay:(gst + 10) ~tag:1);
        on_message = (fun _ ~sender:_ _ -> ());
        on_timer = (fun api _ -> api.Net.send 1 (Ping 1));
      };
      {
        Net.init = (fun _ -> ());
        on_message = (fun api ~sender:_ _ -> arrivals := api.Net.now () :: !arrivals);
        on_timer = (fun _ _ -> ());
      };
    |]
  in
  ignore (Net.run ~latency behaviors);
  match List.rev !arrivals with
  | [ first; second ] ->
    Alcotest.(check int) "pre-GST message by gst+delta" (gst + delta) first;
    (* post-GST message takes <= delta *)
    Alcotest.(check bool) "post-GST within delta" true
      (second <= gst + 10 + delta)
  | l -> Alcotest.failf "expected 2 arrivals, got %d" (List.length l)

let timers_fire_in_order () =
  let fired = ref [] in
  let behaviors =
    [|
      {
        Net.init =
          (fun api ->
            api.Net.set_timer ~delay:30 ~tag:3;
            api.Net.set_timer ~delay:10 ~tag:1;
            api.Net.set_timer ~delay:20 ~tag:2);
        on_message = (fun _ ~sender:_ (_ : msg) -> ());
        on_timer = (fun _ tag -> fired := tag :: !fired);
      };
    |]
  in
  ignore (Net.run ~latency:(Net.sync ~delta:1) behaviors);
  Alcotest.(check (list int)) "order" [ 1; 2; 3 ] (List.rev !fired)

let halt_stops_delivery () =
  let got = ref 0 in
  let behaviors =
    [|
      {
        Net.init =
          (fun api ->
            api.Net.send 1 (Ping 0);
            api.Net.set_timer ~delay:50 ~tag:0);
        on_message = (fun _ ~sender:_ _ -> ());
        on_timer = (fun api _ -> api.Net.send 1 (Ping 1));
      };
      {
        Net.init = (fun api -> api.Net.halt ());
        on_message = (fun _ ~sender:_ _ -> incr got);
        on_timer = (fun _ _ -> ());
      };
    |]
  in
  ignore (Net.run ~latency:(Net.sync ~delta:5) behaviors);
  Alcotest.(check int) "halted node receives nothing" 0 !got

let equivocation_possible () =
  (* a Byzantine node can send different values to different peers, but
     the sender identity is stamped truthfully *)
  let seen = Array.make 3 "" in
  let senders = ref [] in
  let behaviors =
    [|
      {
        Net.init =
          (fun api ->
            api.Net.send 1 (Val "to-1");
            api.Net.send 2 (Val "to-2"));
        on_message = (fun _ ~sender:_ _ -> ());
        on_timer = (fun _ _ -> ());
      };
      {
        Net.init = (fun _ -> ());
        on_message =
          (fun _ ~sender m ->
            senders := sender :: !senders;
            match m with Val s -> seen.(1) <- s | Ping _ -> ());
        on_timer = (fun _ _ -> ());
      };
      {
        Net.init = (fun _ -> ());
        on_message =
          (fun _ ~sender m ->
            senders := sender :: !senders;
            match m with Val s -> seen.(2) <- s | Ping _ -> ());
        on_timer = (fun _ _ -> ());
      };
    |]
  in
  ignore (Net.run ~latency:(Net.sync ~delta:2) behaviors);
  Alcotest.(check string) "node1 view" "to-1" seen.(1);
  Alcotest.(check string) "node2 view" "to-2" seen.(2);
  Alcotest.(check (list int)) "senders stamped" [ 0; 0 ] !senders

let determinism () =
  let run () =
    let log = ref [] in
    let behaviors =
      Array.init 5 (fun i ->
          {
            Net.init = (fun api -> if i = 0 then api.Net.broadcast (Ping i));
            on_message =
              (fun api ~sender m ->
                log := (api.Net.now (), sender, i) :: !log;
                match m with
                | Ping p when p < 2 -> api.Net.broadcast (Ping (p + 1))
                | Ping _ | Val _ -> ());
            on_timer = (fun _ _ -> ());
          })
    in
    ignore (Net.run ~latency:(Net.sync ~delta:3) behaviors);
    !log
  in
  Alcotest.(check bool) "identical runs" true (run () = run ())

let event_budget_respected () =
  (* an infinite ping loop must hit the event budget *)
  let behaviors =
    [|
      {
        Net.init = (fun api -> api.Net.send 1 (Ping 0));
        on_message = (fun api ~sender _ -> api.Net.send sender (Ping 0));
        on_timer = (fun _ _ -> ());
      };
      {
        Net.init = (fun _ -> ());
        on_message = (fun api ~sender _ -> api.Net.send sender (Ping 0));
        on_timer = (fun _ _ -> ());
      };
    |]
  in
  match Net.run ~max_events:1000 ~latency:(Net.sync ~delta:1) behaviors with
  | exception Net.Simulation_limit _ -> ()
  | _stats -> Alcotest.fail "expected Simulation_limit"

(* ----- trace recorder + invariant checker ----- *)

module Trace = Csm_sim.Trace

let trace_invariants_hold () =
  (* a busy run: broadcast storm with timers and a halt *)
  let t = Trace.create () in
  let behaviors =
    Array.init 5 (fun i ->
        {
          Net.init =
            (fun api ->
              if i = 0 then api.Net.broadcast (Ping 0);
              api.Net.set_timer ~delay:20 ~tag:i;
              if i = 4 then api.Net.halt ());
          on_message =
            (fun api ~sender:_ m ->
              match m with
              | Ping p when p < 2 -> api.Net.broadcast (Ping (p + 1))
              | Ping _ | Val _ -> ());
          on_timer = (fun _ _ -> ());
        })
  in
  ignore (Net.run ~tracer:(Trace.tracer t) ~latency:(Net.sync ~delta:3) behaviors);
  Alcotest.(check (list string)) "no violations" [] (Trace.check t);
  Alcotest.(check bool) "messages recorded" true (Trace.message_count t > 0)

let trace_deterministic_replay () =
  let capture () =
    let t = Trace.create () in
    let behaviors =
      Array.init 4 (fun i ->
          {
            Net.init = (fun api -> if i = 0 then api.Net.broadcast (Ping 0));
            on_message =
              (fun api ~sender m ->
                match m with
                | Ping 0 -> api.Net.send sender (Ping 1)
                | Ping _ | Val _ -> ());
            on_timer = (fun _ _ -> ());
          })
    in
    ignore (Net.run ~tracer:(Trace.tracer t) ~latency:(Net.sync ~delta:2) behaviors);
    Trace.events t
  in
  Alcotest.(check bool) "identical traces" true (capture () = capture ())

(* the checker actually catches violations: feed it a forged trace *)
let trace_checker_catches () =
  let t = Trace.create () in
  Trace.tracer t (Net.T_deliver { at = 5; src = 0; dst = 1; msg = Ping 0 });
  Alcotest.(check bool) "orphan delivery flagged" true (Trace.check t <> []);
  let t2 = Trace.create () in
  Trace.tracer t2
    (Net.T_timer_fired { at = 3; node = 0; tag = 9 });
  Alcotest.(check bool) "orphan timer flagged" true (Trace.check t2 <> [])

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* a timer re-armed at the same (node, tag, fire time) before firing is
   flagged; set-fire-set-fire is fine *)
let trace_double_set_flagged () =
  let t = Trace.create () in
  Trace.tracer t (Net.T_timer_set { at = 0; node = 2; tag = 7; fire_at = 10 });
  Trace.tracer t (Net.T_timer_set { at = 1; node = 2; tag = 7; fire_at = 10 });
  Trace.tracer t (Net.T_timer_fired { at = 10; node = 2; tag = 7 });
  Trace.tracer t (Net.T_timer_fired { at = 10; node = 2; tag = 7 });
  (match Trace.check t with
  | [ v ] ->
    Alcotest.(check bool)
      "mentions double set" true
      (contains ~sub:"set twice" v)
  | vs ->
    Alcotest.failf "expected exactly one violation, got %d" (List.length vs));
  (* the legal schedule: set, fire, re-set, fire *)
  let ok = Trace.create () in
  Trace.tracer ok (Net.T_timer_set { at = 0; node = 2; tag = 7; fire_at = 5 });
  Trace.tracer ok (Net.T_timer_fired { at = 5; node = 2; tag = 7 });
  Trace.tracer ok (Net.T_timer_set { at = 5; node = 2; tag = 7; fire_at = 5 });
  Trace.tracer ok (Net.T_timer_fired { at = 5; node = 2; tag = 7 });
  Alcotest.(check (list string)) "re-arm after fire is legal" [] (Trace.check ok)

(* violations from different checker passes come back in event order *)
let trace_violations_chronological () =
  let t = Trace.create () in
  (* t=2: orphan timer fire (timer pass); t=4: orphan delivery
     (causality pass).  The old per-pass grouping reported the delivery
     first. *)
  Trace.tracer t (Net.T_timer_fired { at = 2; node = 0; tag = 1 });
  Trace.tracer t (Net.T_deliver { at = 4; src = 0; dst = 1; msg = Ping 0 });
  match Trace.check t with
  | [ first; second ] ->
    Alcotest.(check bool)
      "timer violation first" true
      (contains ~sub:"timer" first);
    Alcotest.(check bool)
      "delivery violation second" true
      (contains ~sub:"delivery" second)
  | vs -> Alcotest.failf "expected two violations, got %d" (List.length vs)

let suites =
  [
    ( "sim",
      [
        Alcotest.test_case "ping pong" `Quick ping_pong;
        Alcotest.test_case "sync latency exact" `Quick sync_latency_exact;
        Alcotest.test_case "partial-sync GST bound" `Quick partial_sync_bounds;
        Alcotest.test_case "timer ordering" `Quick timers_fire_in_order;
        Alcotest.test_case "halt stops delivery" `Quick halt_stops_delivery;
        Alcotest.test_case "equivocation + stamped senders" `Quick
          equivocation_possible;
        Alcotest.test_case "determinism" `Quick determinism;
        Alcotest.test_case "event budget" `Quick event_budget_respected;
      ] );
    ( "sim:trace",
      [
        Alcotest.test_case "invariants hold on busy run" `Quick
          trace_invariants_hold;
        Alcotest.test_case "deterministic replay" `Quick
          trace_deterministic_replay;
        Alcotest.test_case "checker catches forged traces" `Quick
          trace_checker_catches;
        Alcotest.test_case "double timer set flagged" `Quick
          trace_double_set_flagged;
        Alcotest.test_case "violations chronological" `Quick
          trace_violations_chronological;
      ] );
  ]
