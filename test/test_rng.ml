(* PRNG sanity: determinism, bounds, splitting, sampling. *)

let determinism () =
  let a = Csm_rng.create 42 and b = Csm_rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Csm_rng.bits a) (Csm_rng.bits b)
  done

let bounds () =
  let r = Csm_rng.create 7 in
  for _ = 1 to 1000 do
    let v = Csm_rng.int r 10 in
    if v < 0 || v >= 10 then Alcotest.fail "int out of bounds";
    let f = Csm_rng.float r in
    if f < 0.0 || f >= 1.0 then Alcotest.fail "float out of bounds"
  done

let int_rejects_bad_bound () =
  let r = Csm_rng.create 1 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Csm_rng.int: bound must be positive")
    (fun () -> ignore (Csm_rng.int r 0))

let split_independent () =
  let r = Csm_rng.create 11 in
  let c1 = Csm_rng.split r in
  let c2 = Csm_rng.split r in
  (* children differ from each other *)
  let same = ref 0 in
  for _ = 1 to 50 do
    if Csm_rng.bits c1 = Csm_rng.bits c2 then incr same
  done;
  Alcotest.(check int) "children disagree" 0 !same

let sample_distinct () =
  let r = Csm_rng.create 5 in
  for _ = 1 to 50 do
    let n = 1 + Csm_rng.int r 20 in
    let k = 1 + Csm_rng.int r n in
    let s = Csm_rng.sample r ~n ~k in
    Alcotest.(check int) "size" k (Array.length s);
    let sorted = Array.copy s in
    Array.sort Int.compare sorted;
    for i = 0 to k - 2 do
      if sorted.(i) = sorted.(i + 1) then Alcotest.fail "duplicate sample"
    done;
    Array.iter (fun x -> if x < 0 || x >= n then Alcotest.fail "range") s
  done

let copy_snapshots () =
  let r = Csm_rng.create 123 in
  ignore (Csm_rng.bits r);
  let c = Csm_rng.copy r in
  let a = Array.init 10 (fun _ -> Csm_rng.bits r) in
  let b = Array.init 10 (fun _ -> Csm_rng.bits c) in
  Alcotest.(check (array int)) "copy replays" a b

let uniformity_rough () =
  (* crude chi-square-free check: each bucket of 10 gets 5-15% of draws *)
  let r = Csm_rng.create 2026 in
  let counts = Array.make 10 0 in
  let total = 20000 in
  for _ = 1 to total do
    let v = Csm_rng.int r 10 in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iter
    (fun c ->
      if c < total / 20 || c > total * 3 / 20 then
        Alcotest.failf "bucket count %d outside [%d, %d]" c (total / 20)
          (total * 3 / 20))
    counts

let suites =
  [
    ( "rng",
      [
        Alcotest.test_case "determinism" `Quick determinism;
        Alcotest.test_case "bounds" `Quick bounds;
        Alcotest.test_case "int rejects bad bound" `Quick int_rejects_bad_bound;
        Alcotest.test_case "split independence" `Quick split_independent;
        Alcotest.test_case "sample distinct" `Quick sample_distinct;
        Alcotest.test_case "copy snapshots" `Quick copy_snapshots;
        Alcotest.test_case "rough uniformity" `Quick uniformity_rough;
      ] );
  ]
