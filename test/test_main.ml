(* Aggregated test runner: each test_*.ml module exports [suites]. *)

let () =
  Alcotest.run "csm"
    (List.concat
       [
         Test_rng.suites;
         Test_mvpoly.suites;
         Test_machine.suites;
         Test_csm_core.suites;
         Test_sim.suites;
         Test_consensus.suites;
         Test_smr.suites;
         Test_intermix.suites;
         Test_protocol.suites;
         Test_extensions.suites;
         Test_clients.suites;
         Test_chain.suites;
         Test_circuit.suites;
         Test_metrics.suites;
         Test_field.suites;
         Test_poly.suites;
         Test_linalg.suites;
         Test_rs.suites;
         Test_parallel.suites;
         Test_obs.suites;
         Test_transport.suites;
         Test_adversary.suites;
         Test_lint.suites;
       ])
