(* Adversary synthesis engine: strategy DSL codec, bounded search,
   shrinking, the Table-2 tightness pins (safety at b = muN, a
   replayable counterexample at b = muN + 1), byte-for-byte replay of
   the committed fixtures, and the csm_cluster --faults wiring. *)

open Alcotest
module Adv = Csm_adversary
module Strategy = Adv.Strategy
module Oracle = Adv.Oracle
module Search = Adv.Search
module Shrink = Adv.Shrink
module Trace = Adv.Trace
module Certify = Adv.Certify
module Json = Csm_obs.Json

let checkb = check bool
let seed = 0xAD5E

(* ----- DSL: canonicalization and total JSON codec ----- *)

let strategy_roundtrip () =
  let rng = Csm_rng.create 0x5712 in
  for _ = 1 to 200 do
    let s = Strategy.random rng ~n:11 ~rounds_total:4 ~max_nodes:4 in
    match Strategy.of_json (Strategy.to_json s) with
    | Ok s' -> check string "codec round trip" (Strategy.key s) (Strategy.key s')
    | Error m -> failf "round trip rejected %s: %s" (Strategy.name s) m
  done

let strategy_of_json_total () =
  let rng = Csm_rng.create 0xF00D in
  (* structured junk: random JSON scalars and mutated valid documents
     must return Error or a valid strategy, never raise *)
  let junk =
    [
      Json.Null;
      Json.Bool true;
      Json.Int 3;
      Json.Str "plans";
      Json.List [ Json.Int 1 ];
      Json.Obj [ ("plans", Json.Int 1) ];
      Json.Obj [ ("plans", Json.List [ Json.Obj [ ("node", Json.Str "x") ] ]) ];
      Json.Obj
        [
          ( "plans",
            Json.List
              [
                Json.Obj
                  [
                    ("node", Json.Int 0);
                    ( "steps",
                      Json.List
                        [
                          Json.Obj
                            [
                              ("rounds", Json.Obj [ ("kind", Json.Str "nope") ]);
                              ("act", Json.Obj [ ("kind", Json.Str "silence") ]);
                            ];
                        ] );
                  ];
              ] );
        ];
    ]
  in
  List.iter (fun j -> ignore (Strategy.of_json j)) junk;
  for _ = 1 to 50 do
    let s = Strategy.random rng ~n:7 ~rounds_total:3 ~max_nodes:3 in
    (* dropping a random field must not raise *)
    match Strategy.to_json s with
    | Json.Obj fields when fields <> [] ->
      let i = Csm_rng.int rng (List.length fields) in
      ignore (Strategy.of_json (Json.Obj (List.filteri (fun j _ -> j <> i) fields)))
    | _ -> ()
  done

let strategy_canonical () =
  let step = { Strategy.rounds = Strategy.Always; act = Strategy.Shift 1 } in
  let plan node = { Strategy.node; steps = [ step ] } in
  let a = Strategy.make [ plan 2; plan 0; plan 2 ] in
  let b = Strategy.make [ plan 0; plan 2 ] in
  check string "dedup + sort is canonical" (Strategy.key b) (Strategy.key a);
  check (list int) "byz_nodes sorted" [ 0; 2 ] (Strategy.byz_nodes a);
  checkb "empty plans dropped" true
    (Strategy.equal Strategy.honest (Strategy.make [ { Strategy.node = 1; steps = [] } ]))

let enumerate_deterministic () =
  let take n seq = List.of_seq (Seq.take n seq) in
  let keys () =
    List.map Strategy.key
      (take 64 (Strategy.enumerate ~n:9 ~rounds_total:2 ~max_nodes:3))
  in
  check (list string) "same order every call" (keys ()) (keys ());
  let sizes =
    List.map
      (fun s -> Strategy.size s)
      (take 16 (Strategy.enumerate ~n:9 ~rounds_total:2 ~max_nodes:3))
  in
  check int "largest subsets first" 3 (List.hd sizes)

(* ----- oracle pins: the three Table-2 bounds are tight ----- *)

(* At the defender bound the full bounded-exhaustive class must be
   safe; one node past it the recorded fixture strategy must violate.
   This is the unit-test twin of the smoke certificate: small, exact,
   and pinned to the standard Table2 instances. *)
let bound_tight bound () =
  let instance = Oracle.instance_for bound ~seed in
  let b = instance.Oracle.b in
  let at =
    Search.search ~bound ~instance ~max_nodes:b ~budget:1000
      ~schedule:Search.Exhaustive ~seed ()
  in
  checkb "whole at-bound class searched" true at.Search.exhausted;
  check int "no violation at b" 0 (List.length at.Search.witnesses);
  let above =
    Search.search ~stop_at_first:true ~bound ~instance ~max_nodes:(b + 1)
      ~budget:1000 ~schedule:Search.Exhaustive ~seed ()
  in
  checkb "witness at b+1" true (above.Search.witnesses <> [])

let decode_sync_tight = bound_tight Oracle.Decode_sync
let output_delivery_tight = bound_tight Oracle.Output_delivery
let input_totality_tight = bound_tight Oracle.Input_totality

let oracle_deterministic () =
  let bound = Oracle.Decode_sync in
  let instance = Oracle.instance_for bound ~seed in
  let rng = Csm_rng.create 0xDE7 in
  for _ = 1 to 20 do
    let s =
      Strategy.random rng ~n:instance.Oracle.n ~rounds_total:instance.Oracle.rounds
        ~max_nodes:(instance.Oracle.b + 1)
    in
    let r1 = Oracle.check bound instance s in
    let r2 = Oracle.check bound instance s in
    checkb "same verdict twice" true (r1 = r2)
  done

(* ----- shrinking ----- *)

let shrink_minimizes () =
  let bound = Oracle.Output_delivery in
  let instance = Oracle.instance_for bound ~seed in
  let b = instance.Oracle.b in
  let still_fails s =
    Strategy.size s <= b + 1
    &&
    match (Oracle.check bound instance s).Oracle.verdict with
    | Oracle.Violation _ -> true
    | Oracle.Safe -> false
  in
  (* a deliberately baroque witness: b+1 silencers with noisy extras *)
  let plan node =
    {
      Strategy.node;
      steps =
        [
          { Strategy.rounds = Strategy.From 0; act = Strategy.Silence [] };
          { Strategy.rounds = Strategy.Always; act = Strategy.Garbage { seed = 99 } };
        ];
    }
  in
  let fat = Strategy.make (List.init (b + 1) plan) in
  checkb "input fails" true (still_fails fat);
  let minimal, steps = Shrink.shrink ~still_fails fat in
  checkb "minimal still fails" true (still_fails minimal);
  checkb "made progress" true (steps > 0);
  checkb "local minimum: no candidate still fails" true
    (List.for_all (fun c -> not (still_fails c)) (Shrink.candidates minimal));
  (* determinism: shrinking the same witness twice gives the same bytes *)
  let minimal', _ = Shrink.shrink ~still_fails fat in
  check string "canonical" (Strategy.key minimal) (Strategy.key minimal')

(* ----- committed fixtures: byte-for-byte replay ----- *)

let fixture name = Filename.concat "fixtures" ("adversary_" ^ name ^ ".json")

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let fixture_replays name () =
  let path = fixture name in
  match Trace.load ~path with
  | Error m -> failf "%s: %s" path m
  | Ok t -> (
    check string "canonical bytes" (read_file path) (Trace.to_string t);
    checkb "witness is above the defender bound" true
      (Strategy.size t.Trace.strategy = t.Trace.instance.Oracle.b + 1);
    match Trace.replay t with
    | Ok () -> ()
    | Error m -> failf "%s does not replay: %s" path m)

(* ----- certifier: one full bound end to end ----- *)

let certify_one_bound () =
  let r = Certify.certify_bound ~schedule:Search.Exhaustive ~budget:1000 ~seed Oracle.Input_totality in
  checkb "safe at bound" true r.Certify.safety_holds_at_bound;
  checkb "witness above bound" true r.Certify.witness_found_above_bound;
  checkb "witness replays" true r.Certify.replay_ok;
  checkb "at-bound class exhausted" true r.Certify.at_exhausted

(* ----- csm_cluster --faults wiring ----- *)

let cluster_exe =
  Filename.concat
    (Filename.concat (Filename.dirname Sys.executable_name) "../bin")
    "csm_cluster.exe"

let run_cluster args ~stderr_to =
  Sys.command
    (Printf.sprintf "%s %s > /dev/null 2> %s" (Filename.quote cluster_exe) args
       (Filename.quote stderr_to))

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* bad --faults input is a cmdliner usage error (exit 124) whose
   message lists the valid fault kinds *)
let faults_usage_error () =
  let err = Filename.temp_file "csm_adv_faults" ".err" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove err with Sys_error _ -> ())
    (fun () ->
      let rc = run_cluster "--faults 1:bogus -n 3 -k 1 -d 1 -b 1" ~stderr_to:err in
      check int "usage-error exit" 124 rc;
      let msg = read_file err in
      checkb "names the offender" true (contains ~needle:"bogus" msg);
      List.iter
        (fun kind ->
          checkb (Printf.sprintf "lists %s" kind) true (contains ~needle:kind msg))
        [ "drop"; "corrupt"; "lie"; "delay"; "strategy:FILE" ])

(* --faults strategy:FILE runs the cluster under a searched strategy;
   a one-node full-silence plan must behave exactly like 1:drop *)
let faults_strategy_file () =
  let strat = Filename.temp_file "csm_adv_strat" ".json" in
  let err = Filename.temp_file "csm_adv_strat" ".err" in
  Fun.protect
    ~finally:(fun () ->
      (try Sys.remove strat with Sys_error _ -> ());
      try Sys.remove err with Sys_error _ -> ())
    (fun () ->
      let plan =
        {
          Strategy.node = 1;
          steps = [ { Strategy.rounds = Strategy.Always; act = Strategy.Silence [] } ];
        }
      in
      Json.write ~path:strat (Strategy.to_json (Strategy.make [ plan ]));
      let rc =
        run_cluster
          (Printf.sprintf "-n 3 -k 1 -d 1 -b 1 --rounds 2 --seed 7 --faults strategy:%s"
             (Filename.quote strat))
          ~stderr_to:err
      in
      check int "strategy-driven run verifies" 0 rc;
      let rc_missing =
        run_cluster "--faults strategy:/nonexistent-strategy.json -n 3 -k 1 -d 1 -b 1"
          ~stderr_to:err
      in
      check int "missing file is a usage error" 124 rc_missing)

let suites =
  [
    ( "adversary",
      [
        test_case "strategy JSON round trip" `Quick strategy_roundtrip;
        test_case "strategy of_json is total" `Quick strategy_of_json_total;
        test_case "strategy canonicalization" `Quick strategy_canonical;
        test_case "enumerate: deterministic, largest first" `Quick
          enumerate_deterministic;
        test_case "decode-sync bound is tight" `Quick decode_sync_tight;
        test_case "output-delivery bound is tight" `Quick output_delivery_tight;
        test_case "input-totality bound is tight" `Quick input_totality_tight;
        test_case "oracle verdicts are deterministic" `Quick oracle_deterministic;
        test_case "shrink reaches a canonical local minimum" `Quick
          shrink_minimizes;
        test_case "decode fixture replays byte-for-byte" `Quick
          (fixture_replays "decode");
        test_case "output fixture replays byte-for-byte" `Quick
          (fixture_replays "output");
        test_case "totality fixture replays byte-for-byte" `Quick
          (fixture_replays "totality");
        test_case "certify_bound: input-totality end to end" `Quick
          certify_one_bound;
        test_case "--faults lists kinds on bad input" `Quick faults_usage_error;
        test_case "--faults strategy:FILE drives the cluster" `Quick
          faults_strategy_file;
      ] );
  ]
