(* Transport subsystem: frame codec round-trips and fuzzing, strict
   wire decoders, sim-sizer = real-wire-bytes equality, loopback
   transport behavior, node runtime fault payloads, and end-to-end
   cluster runs — including loopback-vs-socket equivalence through the
   csm_cluster binary. *)

module Frame = Csm_wire.Frame
module F = Csm_field.Fp.Default
module W = Csm_core.Wire.Make (F)
module Params = Csm_core.Params
module Transport = Csm_transport.Transport
module Loopback = Csm_transport.Loopback
module Node = Csm_transport.Node
module N = Node.Make (F)
module Cluster = Csm_transport.Cluster
module C = Cluster.Make (F)
module Agg = Csm_obs.Agg
module Json = Csm_obs.Json
module Metric = Csm_obs.Metric
module Live = Csm_obs.Live
module Alert = Csm_obs.Alert

let check = Alcotest.check
let checkb = Alcotest.(check bool)

let all_kinds =
  [ Frame.Command; Frame.Commit; Frame.Result; Frame.Output; Frame.Stats;
    Frame.Shutdown; Frame.Telemetry ]

(* ----- frame codec ----- *)

let frame_round_trip () =
  List.iter
    (fun kind ->
      List.iter
        (fun (sender, round, payload) ->
          let f = Frame.make ~kind ~sender ~round payload in
          let bytes = Frame.encode f in
          check Alcotest.int "encoded size"
            (Frame.encoded_size ~payload_bytes:(String.length payload))
            (String.length bytes);
          match Frame.decode bytes with
          | None -> Alcotest.fail "round trip decode failed"
          | Some g ->
            checkb "kind" true (Frame.kind_eq g.Frame.kind kind);
            check Alcotest.int "sender" sender g.Frame.sender;
            check Alcotest.int "round" round g.Frame.round;
            check Alcotest.string "payload" payload g.Frame.payload)
        [
          (0, 0, "");
          (1, 7, "x");
          (41, 1000000, String.make 257 '\xAB');
          (0x7FFFFFFF, 0x7FFFFFFF, "payload\x00with\xFFbytes");
        ])
    all_kinds

let frame_header_round_trip () =
  let f = Frame.make ~kind:Frame.Result ~sender:3 ~round:9 "abcdef" in
  let bytes = Frame.encode f in
  match Frame.decode_header bytes with
  | None -> Alcotest.fail "header decode failed"
  | Some h ->
    checkb "kind" true (Frame.kind_eq h.Frame.h_kind Frame.Result);
    check Alcotest.int "sender" 3 h.Frame.h_sender;
    check Alcotest.int "round" 9 h.Frame.h_round;
    check Alcotest.int "payload bytes" 6 h.Frame.h_payload_bytes;
    (match
       Frame.of_header h ~body:(String.sub bytes Frame.header_bytes 6)
     with
    | Some g -> checkb "of_header" true (g = f)
    | None -> Alcotest.fail "of_header failed");
    checkb "of_header wrong length" true
      (Option.is_none (Frame.of_header h ~body:"abc"))

(* Truncations, extensions and byte flips of valid encodings must never
   raise; truncations and extensions must decode to None (exact-length
   decoding). *)
let frame_fuzz () =
  let rng = Csm_rng.create 0xF4A2E in
  let n_kinds = List.length all_kinds in
  for _ = 1 to 200 do
    let kind = List.nth all_kinds (Csm_rng.int rng n_kinds) in
    let payload =
      String.init (Csm_rng.int rng 40) (fun _ -> Char.chr (Csm_rng.int rng 256))
    in
    let f =
      Frame.make ~kind
        ~sender:(Csm_rng.int rng 1000)
        ~round:(Csm_rng.int rng 100000)
        payload
    in
    let bytes = Frame.encode f in
    let len = String.length bytes in
    (* every truncation *)
    for cut = 0 to len - 1 do
      checkb "truncated -> None" true
        (Option.is_none (Frame.decode (String.sub bytes 0 cut)))
    done;
    (* extension *)
    checkb "extended -> None" true (Option.is_none (Frame.decode (bytes ^ "\x00")));
    checkb "extended -> None" true (Option.is_none (Frame.decode (bytes ^ bytes)));
    (* random single-byte flips: must not raise, may or may not decode *)
    for _ = 1 to 16 do
      let pos = Csm_rng.int rng len in
      let b = Bytes.of_string bytes in
      Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor (1 + Csm_rng.int rng 255)));
      ignore (Frame.decode (Bytes.to_string b))
    done
  done;
  (* garbage of every small length *)
  for l = 0 to 64 do
    let s = String.init l (fun _ -> Char.chr (Csm_rng.int rng 256)) in
    ignore (Frame.decode s)
  done

let frame_rejects_bad_fields () =
  let f = Frame.make ~kind:Frame.Commit ~sender:5 ~round:2 "hello" in
  let bytes = Bytes.of_string (Frame.encode f) in
  let flip pos v =
    let b = Bytes.copy bytes in
    Bytes.set b pos (Char.chr v);
    Frame.decode (Bytes.to_string b)
  in
  checkb "bad magic 0" true (flip 0 (Char.code 'X') = None);
  checkb "bad magic 1" true (flip 1 (Char.code 'X') = None);
  checkb "bad version" true (flip 2 99 = None);
  checkb "bad kind tag" true (flip 3 0 = None);
  checkb "bad kind tag" true (flip 3 200 = None);
  (* a length claim larger than the body *)
  let b = Bytes.copy bytes in
  Bytes.set_int32_be b 12 1000l;
  checkb "overlong claim" true (Option.is_none (Frame.decode (Bytes.to_string b)));
  checkb "make rejects negative sender" true
    (try
       ignore (Frame.make ~kind:Frame.Commit ~sender:(-1) ~round:0 "");
       false
     with Invalid_argument _ -> true);
  checkb "make rejects huge payload" true
    (try
       ignore
         (Frame.make ~kind:Frame.Commit ~sender:0 ~round:0
            (String.make (Frame.max_payload_bytes + 1) 'x'));
       false
     with Invalid_argument _ -> true)

(* ----- frame v2: the trace extension ----- *)

let mk_ext trace_id hlc = { Frame.trace_id; hlc }

(* v2 frames round-trip through encode/decode and through the
   header+body streaming path, carrying the extension verbatim. *)
let frame_v2_round_trip () =
  List.iter
    (fun kind ->
      List.iter
        (fun (trace_id, hlc, payload) ->
          let ext = mk_ext trace_id hlc in
          let f = Frame.make ~ext ~kind ~sender:7 ~round:3 payload in
          check Alcotest.int "v2 version" Frame.ext_version f.Frame.version;
          let bytes = Frame.encode f in
          check Alcotest.int "v2 size"
            (Frame.header_bytes + Frame.ext_bytes + String.length payload)
            (String.length bytes);
          (match Frame.decode bytes with
          | None -> Alcotest.fail "v2 decode failed"
          | Some g ->
            checkb "v2 round trip" true (g = f);
            (match g.Frame.ext with
            | Some e ->
              checkb "trace id" true (Int64.equal e.Frame.trace_id trace_id);
              checkb "hlc" true (Int64.equal e.Frame.hlc hlc)
            | None -> Alcotest.fail "v2 lost its extension"));
          (* streaming path: header then body *)
          match Frame.decode_header bytes with
          | None -> Alcotest.fail "v2 header decode failed"
          | Some h ->
            check Alcotest.int "body bytes"
              (Frame.ext_bytes + String.length payload)
              (Frame.body_bytes h);
            let body =
              String.sub bytes Frame.header_bytes (Frame.body_bytes h)
            in
            (match Frame.of_header h ~body with
            | Some g -> checkb "of_header v2" true (g = f)
            | None -> Alcotest.fail "of_header v2 failed"))
        [
          (0L, 0L, "");
          (1L, 42L, "x");
          (0xDEADBEEFCAFEL, Int64.max_int, String.make 100 '\x80');
          (Int64.minus_one, 0x8000000000000000L, "bytes\x00\xff");
        ])
    all_kinds

(* v1 and v2 coexist on one wire: untraced frames keep the exact
   pre-extension layout, and each version rejects the other's length. *)
let frame_cross_version () =
  let payload = "cross-version" in
  let v1 = Frame.make ~kind:Frame.Output ~sender:1 ~round:5 payload in
  let v2 =
    Frame.make ~ext:(mk_ext 99L 1234L) ~kind:Frame.Output ~sender:1 ~round:5
      payload
  in
  let b1 = Frame.encode v1 and b2 = Frame.encode v2 in
  (* v1 bytes: version byte 1, no extension, old size *)
  check Alcotest.int "v1 size"
    (Frame.encoded_size ~payload_bytes:(String.length payload))
    (String.length b1);
  check Alcotest.int "v1 version byte" 1 (Char.code b1.[2]);
  check Alcotest.int "v2 version byte" Frame.ext_version (Char.code b2.[2]);
  (* the extension sits between header and payload; the payload bytes
     and the length field are identical across versions *)
  check Alcotest.string "payload bytes equal"
    (String.sub b1 Frame.header_bytes (String.length payload))
    (String.sub b2
       (Frame.header_bytes + Frame.ext_bytes)
       (String.length payload));
  check Alcotest.string "length field equal"
    (String.sub b1 12 4)
    (String.sub b2 12 4);
  (match Frame.decode b1 with
  | Some g ->
    checkb "v1 decodes ext-free" true (Option.is_none g.Frame.ext);
    check Alcotest.int "v1 stays v1" 1 g.Frame.version
  | None -> Alcotest.fail "v1 decode failed");
  (* version byte toggled without the matching body resize must fail *)
  let flip_version bytes v =
    let b = Bytes.of_string bytes in
    Bytes.set b 2 (Char.chr v);
    Frame.decode (Bytes.to_string b)
  in
  checkb "v1 bytes claiming v2" true
    (Option.is_none (flip_version b1 Frame.ext_version));
  checkb "v2 bytes claiming v1" true (Option.is_none (flip_version b2 1));
  checkb "unknown version 3" true (Option.is_none (flip_version b2 3));
  (* make: version and extension presence must agree *)
  checkb "make rejects v2 without ext" true
    (try
       ignore
         (Frame.make ~version:Frame.ext_version ~kind:Frame.Output ~sender:0
            ~round:0 "");
       false
     with Invalid_argument _ -> true);
  checkb "make rejects v1 with ext" true
    (try
       ignore
         (Frame.make ~version:1 ~ext:(mk_ext 1L 1L) ~kind:Frame.Output
            ~sender:0 ~round:0 "");
       false
     with Invalid_argument _ -> true)

(* Truncating into (or past) the 16-byte extension, or padding beyond
   it, must decode to None on both the one-shot and streaming paths. *)
let frame_v2_ext_rejection () =
  let f =
    Frame.make ~ext:(mk_ext 7L 7L) ~kind:Frame.Commit ~sender:2 ~round:1
      "payload"
  in
  let bytes = Frame.encode f in
  for cut = Frame.header_bytes to String.length bytes - 1 do
    checkb "truncated ext/payload" true
      (Option.is_none (Frame.decode (String.sub bytes 0 cut)))
  done;
  checkb "oversized" true (Option.is_none (Frame.decode (bytes ^ "\x00")));
  match Frame.decode_header bytes with
  | None -> Alcotest.fail "header decode failed"
  | Some h ->
    let body = String.sub bytes Frame.header_bytes (Frame.body_bytes h) in
    checkb "of_header short body" true
      (Option.is_none
         (Frame.of_header h ~body:(String.sub body 0 (Frame.ext_bytes - 1))));
    checkb "of_header long body" true
      (Option.is_none (Frame.of_header h ~body:(body ^ "!")))

(* QCheck: encode/decode is the identity on arbitrary well-formed
   frames, traced or not. *)
let arb_frame =
  let open QCheck in
  let gen =
    Gen.map
      (fun ((kind_i, sender, round), (payload, ext)) ->
        let kind = List.nth all_kinds (kind_i mod List.length all_kinds) in
        let ext =
          Option.map (fun (t, h) -> mk_ext (Int64.of_int t) (Int64.of_int h)) ext
        in
        match ext with
        | Some ext -> Frame.make ~ext ~kind ~sender ~round payload
        | None -> Frame.make ~kind ~sender ~round payload)
      (Gen.pair
         (Gen.triple Gen.nat Gen.nat Gen.nat)
         (Gen.pair Gen.string (Gen.opt (Gen.pair Gen.nat Gen.nat))))
  in
  QCheck.make
    ~print:(fun f -> Format.asprintf "%a" Frame.pp f)
    gen

let qcheck_frame_round_trip =
  QCheck.Test.make ~name:"frame v1/v2 encode-decode identity" ~count:500
    arb_frame (fun f ->
      match Frame.decode (Frame.encode f) with
      | Some g -> g = f
      | None -> false)

(* ----- strict wire decoders ----- *)

let decimal_strictness () =
  let dim = 3 in
  let ok s = W.decode_vector ~dim s <> None in
  checkb "canonical accepted" true (ok "1,2,3");
  checkb "zero accepted" true (ok "0,0,0");
  checkb "trailing underscore" false (ok "1,2,3_");
  checkb "leading zero" false (ok "01,2,3");
  checkb "hex prefix" false (ok "0x1,2,3");
  checkb "trailing comma" false (ok "1,2,3,");
  checkb "leading space" false (ok " 1,2,3");
  checkb "negative" false (ok "-1,2,3");
  checkb "too few" false (ok "1,2");
  checkb "too many" false (ok "1,2,3,4");
  checkb "empty part" false (ok "1,,3");
  checkb "19 digits" false (ok "1234567890123456789,2,3");
  checkb "empty dim 0" true (W.decode_vector ~dim:0 "" = Some [||]);
  checkb "nonempty dim 0" true (W.decode_vector ~dim:0 "1" = None);
  (* round trip *)
  let rng = Csm_rng.create 0xDEC1 in
  for _ = 1 to 50 do
    let v = Array.init dim (fun _ -> F.random rng) in
    match W.decode_vector ~dim (W.encode_vector v) with
    | None -> Alcotest.fail "decimal round trip"
    | Some w -> Array.iteri (fun i x -> checkb "elt" true (F.equal x w.(i))) v
  done

let binary_round_trips () =
  let rng = Csm_rng.create 0xB14 in
  for _ = 1 to 50 do
    let dim = 1 + Csm_rng.int rng 6 in
    let v = Array.init dim (fun _ -> F.random rng) in
    let s = W.encode_vector_bin v in
    check Alcotest.int "vector_bytes" (W.vector_bytes ~dim) (String.length s);
    (match W.decode_vector_bin ~dim s with
    | None -> Alcotest.fail "vector bin round trip"
    | Some w -> Array.iteri (fun i x -> checkb "elt" true (F.equal x w.(i))) v);
    let k = 1 + Csm_rng.int rng 4 in
    let cs = Array.init k (fun _ -> Array.init dim (fun _ -> F.random rng)) in
    let sc = W.encode_commands_bin cs in
    check Alcotest.int "commands_bytes"
      (W.commands_bytes ~k ~dim)
      (String.length sc);
    (match W.decode_commands_bin ~k ~dim sc with
    | None -> Alcotest.fail "commands bin round trip"
    | Some ds ->
      Array.iteri
        (fun i row ->
          Array.iteri (fun j x -> checkb "elt" true (F.equal x ds.(i).(j))) row)
        cs);
    (* matrix with mixed row widths *)
    let rows =
      Array.init (1 + Csm_rng.int rng 5) (fun _ ->
          Array.init (Csm_rng.int rng 5) (fun _ -> F.random rng))
    in
    match W.decode_matrix_bin (W.encode_matrix_bin rows) with
    | None -> Alcotest.fail "matrix bin round trip"
    | Some ds ->
      check Alcotest.int "rows" (Array.length rows) (Array.length ds);
      Array.iteri
        (fun i row ->
          check Alcotest.int "row dim" (Array.length row) (Array.length ds.(i));
          Array.iteri (fun j x -> checkb "elt" true (F.equal x ds.(i).(j))) row)
        rows
  done

(* Every binary decoder is exact: truncated and extended bodies are
   rejected, and the node's Corrupt mangling is always detected. *)
let binary_strictness () =
  let rng = Csm_rng.create 0xB57 in
  for _ = 1 to 50 do
    let dim = 1 + Csm_rng.int rng 5 in
    let v = Array.init dim (fun _ -> F.random rng) in
    let s = W.encode_vector_bin v in
    checkb "vec truncated" true
      (W.decode_vector_bin ~dim (String.sub s 0 (String.length s - 1)) = None);
    checkb "vec extended" true (W.decode_vector_bin ~dim (s ^ "\x00") = None);
    checkb "vec corrupt fault" true
      (W.decode_vector_bin ~dim (N.corrupt_payload s) = None);
    let k = 2 in
    let cs = Array.init k (fun _ -> v) in
    let sc = W.encode_commands_bin cs in
    checkb "cmds truncated" true
      (W.decode_commands_bin ~k ~dim (String.sub sc 0 (String.length sc - 1))
      = None);
    checkb "cmds corrupt fault" true
      (W.decode_commands_bin ~k ~dim (N.corrupt_payload sc) = None);
    let m = W.encode_matrix_bin [| v; v |] in
    checkb "matrix truncated" true
      (W.decode_matrix_bin (String.sub m 0 (String.length m - 1)) = None);
    checkb "matrix extended" true (W.decode_matrix_bin (m ^ "\x01") = None);
    checkb "matrix corrupt fault" true
      (W.decode_matrix_bin (N.corrupt_payload m) = None)
  done;
  (* fuzz: random garbage never raises *)
  for _ = 1 to 500 do
    let s =
      String.init (Csm_rng.int rng 64) (fun _ -> Char.chr (Csm_rng.int rng 256))
    in
    (* csm-lint: allow R7 — the fuzz oracle is "never raises"; the verdict itself is irrelevant *)
    ignore (W.decode_vector_bin ~dim:(Csm_rng.int rng 6) s);
    (* csm-lint: allow R7 — fuzz oracle, as above *)
    ignore (W.decode_commands_bin ~k:(Csm_rng.int rng 4) ~dim:(Csm_rng.int rng 4) s);
    (* csm-lint: allow R7 — fuzz oracle, as above *)
    ignore (W.decode_matrix_bin s)
  done

(* ----- the sim's sizers equal real wire bytes ----- *)

let sim_sizes_equal_wire_bytes () =
  let rng = Csm_rng.create 0x512E in
  for _ = 1 to 30 do
    let dim = 1 + Csm_rng.int rng 8 in
    let g = Array.init dim (fun _ -> F.random rng) in
    (* the execution-phase sizer in lib/core/protocol.ml computes
       [Frame.encoded_size ~payload_bytes:(W.vector_bytes ~dim)]; a real
       Result frame carrying the same vector must measure exactly that *)
    let sim_size =
      Frame.encoded_size ~payload_bytes:(W.vector_bytes ~dim:(Array.length g))
    in
    let real_frame =
      Frame.make ~kind:Frame.Result ~sender:0 ~round:0 (W.encode_vector_bin g)
    in
    check Alcotest.int "sim size = socket bytes" sim_size
      (String.length (Frame.encode real_frame))
  done

(* ----- loopback transport ----- *)

let loopback_send_recv () =
  let net = Loopback.create ~endpoints:3 in
  let a = Loopback.endpoint net ~id:0 in
  let b = Loopback.endpoint net ~id:1 in
  let f1 = Frame.make ~kind:Frame.Commit ~sender:0 ~round:1 "one" in
  let f2 = Frame.make ~kind:Frame.Result ~sender:0 ~round:1 "two" in
  a.Transport.send ~dst:1 f1;
  a.Transport.send ~dst:1 f2;
  (match b.Transport.recv ~timeout:1.0 with
  | Some g -> checkb "first frame" true (g = f1)
  | None -> Alcotest.fail "no first frame");
  (match b.Transport.recv ~timeout:1.0 with
  | Some g -> checkb "second frame" true (g = f2)
  | None -> Alcotest.fail "no second frame");
  (* deadline on an empty mailbox *)
  let t0 = Unix.gettimeofday () in
  checkb "deadline None" true (b.Transport.recv ~timeout:0.05 = None);
  checkb "deadline waited" true (Unix.gettimeofday () -. t0 >= 0.04);
  (* stats: counted at hand-off and delivery, full frame bytes *)
  let sa = Transport.snapshot a and sb = Transport.snapshot b in
  check Alcotest.int "a sent" 2 sa.Transport.frames_sent;
  check Alcotest.int "b received" 2 sb.Transport.frames_received;
  check Alcotest.int "a bytes" (Frame.size f1 + Frame.size f2)
    sa.Transport.bytes_sent;
  check Alcotest.int "b bytes" sa.Transport.bytes_sent
    sb.Transport.bytes_received;
  a.Transport.close ();
  b.Transport.close ()

(* ----- node runtime pieces ----- *)

let stats_payload_round_trip () =
  let s =
    {
      Transport.frames_sent = 12;
      frames_received = 34;
      bytes_sent = 5678;
      bytes_received = 91011;
      frame_errors = 3;
    }
  in
  let p = N.stats_payload s in
  check Alcotest.int "payload size" 40 (String.length p);
  (match N.decode_stats_payload p with
  | Some t -> checkb "round trip" true (t = s)
  | None -> Alcotest.fail "stats decode failed");
  checkb "wrong length" true (N.decode_stats_payload (p ^ "\x00") = None);
  checkb "truncated" true (N.decode_stats_payload (String.sub p 0 39) = None)

(* ----- end-to-end cluster runs (loopback, in-process) ----- *)

let cluster_cfg ?(faults = []) ?(rounds = 2) ?(seed = 42) ?(trace = false)
    ?(telemetry = false) ?stream ?live () =
  {
    C.params = Params.make ~network:Params.Sync ~n:3 ~k:1 ~d:1 ~b:1;
    rounds;
    seed;
    mode = Cluster.Loopback;
    faults;
    deadline = 10.0;
    trace;
    telemetry;
    stream;
    live;
  }

let total_frame_errors (r : C.result) =
  Array.fold_left
    (fun acc s ->
      match s with Some s -> acc + s.Transport.frame_errors | None -> acc)
    0 r.C.stats

let cluster_loopback_fault_free () =
  let r = C.run (cluster_cfg ()) in
  checkb "verified" true r.C.ok;
  Array.iter (fun c -> check Alcotest.int "all outputs" 3 c) r.C.outputs_received;
  check Alcotest.int "no frame errors" 0 (total_frame_errors r);
  Array.iteri
    (fun i s ->
      match s with
      | Some _ -> ()
      | None -> Alcotest.failf "endpoint %d sent no stats" i)
    r.C.stats

let cluster_loopback_drop_fault () =
  let r = C.run (cluster_cfg ~faults:[ (1, Node.Drop) ] ()) in
  checkb "verified with dropping node" true r.C.ok;
  Array.iter (fun c -> check Alcotest.int "honest outputs" 2 c) r.C.outputs_received;
  check Alcotest.int "no frame errors" 0 (total_frame_errors r);
  (match r.C.stats.(1) with
  | Some s ->
    (* the snapshot precedes the Stats reply, so a dropper reports 0 *)
    check Alcotest.int "dropper sent nothing" 0 s.Transport.frames_sent
  | None -> Alcotest.fail "dropper sent no stats")

let cluster_loopback_corrupt_fault () =
  let r = C.run (cluster_cfg ~faults:[ (2, Node.Corrupt) ] ()) in
  checkb "verified with corrupting node" true r.C.ok;
  checkb "corruption detected" true (total_frame_errors r > 0)

let cluster_loopback_delay_fault () =
  let r = C.run (cluster_cfg ~faults:[ (0, Node.Delay 0.01) ] ()) in
  checkb "verified with delaying node" true r.C.ok;
  Array.iter (fun c -> check Alcotest.int "all outputs" 3 c) r.C.outputs_received

(* Determinism: two loopback runs at one seed produce identical ledgers
   and identical per-endpoint counters. *)
let cluster_loopback_deterministic () =
  let a = C.run (cluster_cfg ()) and b = C.run (cluster_cfg ()) in
  checkb "ledgers equal" true (a.C.ledger = b.C.ledger);
  checkb "stats equal" true (a.C.stats = b.C.stats)

let contains_sub hay needle =
  let nl = String.length needle in
  let found = ref false in
  for i = 0 to String.length hay - nl do
    if String.sub hay i nl = needle then found := true
  done;
  !found

(* Traced run: every endpoint ships a telemetry bundle, flight rings
   pair cross-node send→recv flows, the merged Chrome trace carries
   flow events, and an untraced run gathers nothing. *)
let cluster_loopback_telemetry () =
  let r = C.run (cluster_cfg ~trace:true ~telemetry:true ()) in
  checkb "verified" true r.C.ok;
  let bundles = r.C.telemetry in
  check Alcotest.int "bundles: 3 nodes + client" 4 (List.length bundles);
  List.iteri
    (fun i (b : Agg.bundle) ->
      check Alcotest.int "bundle node order" i b.Agg.b_node;
      checkb "flight ring non-empty" true (b.Agg.b_flight <> []))
    bundles;
  checkb "cross-node flows paired" true (Agg.cross_flows bundles >= 1);
  checkb "hlc advanced" true (Agg.max_hlc bundles > 0);
  let trace = Json.to_string (Agg.cluster_trace bundles) in
  checkb "merged trace parses" true
    (match Json.parse trace with
    | _ -> true
    | exception Json.Parse_error _ -> false);
  checkb "trace has flow starts" true (contains_sub trace "\"ph\":\"s\"");
  checkb "trace has flow ends" true (contains_sub trace "\"ph\":\"f\"");
  checkb "trace has wire slices" true (contains_sub trace "\"cat\":\"csm.wire\"");
  (* telemetry off: nothing gathered, result shape unchanged *)
  let r0 = C.run (cluster_cfg ()) in
  checkb "no bundles untraced" true
    (match r0.C.telemetry with [] -> true | _ -> false)

(* In-flight streaming: a loopback run with a live store merges the
   nodes' csm-node-telemetry/2 deltas while rounds are still running,
   the commit ticks feed the lambda window, and a lying node (well-
   formed wrong Result vectors) trips the suspicion alert before the
   run ends — the live-observability acceptance path. *)
let cluster_loopback_streaming () =
  Metric.enable ();
  Metric.reset ();
  Fun.protect
    ~finally:(fun () ->
      Metric.reset ();
      Metric.disable ())
    (fun () ->
      let live = Live.create ~k:1 () in
      let r =
        C.run
          (cluster_cfg ~rounds:8 ~faults:[ (1, Node.Lie Node.lie_default) ] ~stream:0.01 ~live
             ())
      in
      let lam = Live.lambda live in
      checkb "verified: the decode corrects the lie" true r.C.ok;
      check Alcotest.int "lie frames are well-formed" 0 (total_frame_errors r);
      checkb "run_seconds measured" true (r.C.run_seconds > 0.0);
      check Alcotest.int "every round committed" 8 (Live.commits live);
      let applied, _, rejected = Live.deltas live in
      checkb "deltas applied in flight" true (applied > 0);
      check Alcotest.int "no rejected deltas" 0 rejected;
      checkb "windowed lambda positive" true (lam > 0.0);
      (* the decoder attributed the lie: suspicion reached the live
         view through the deltas and fired the alert mid-run *)
      checkb "suspicion alert fired" true
        (Alert.first_fired (Live.alerts live) "suspicion" <> None);
      let scrape = Live.scrape live in
      checkb "scrape carries windowed lambda" true
        (contains_sub scrape "csm_window_lambda");
      checkb "scrape carries the alert gauge" true
        (contains_sub scrape "csm_alerts_firing{rule=\"suspicion\"} 1");
      checkb "scrape carries merged node suspicion" true
        (contains_sub scrape "csm_node_suspicion");
      (match Json.parse (Json.to_string (Live.windows_json live)) with
      | Json.Obj fields ->
        checkb "windows.json has schema" true
          (List.mem_assoc "schema" fields && List.mem_assoc "lambda" fields)
      | _ -> Alcotest.fail "windows.json not an object"
      | exception Json.Parse_error m -> Alcotest.failf "windows.json: %s" m);
      (* idempotency end-to-end: re-applying a stale synthetic delta
         changes nothing *)
      let before = Csm_obs.Prom.render_views (Live.node_views live) in
      (match
         Live.apply live
           (Agg.delta_payload ~node:0 ~scope:Agg.Process ~seq:1 ~full:false
              ~views:[] ~events:[] ())
       with
      | `Stale -> ()
      | `Applied -> Alcotest.fail "stale delta applied"
      | `Malformed -> Alcotest.fail "synthetic delta malformed");
      check Alcotest.string "state unchanged by stale delta" before
        (Csm_obs.Prom.render_views (Live.node_views live)))

(* ----- loopback vs socket equivalence through the binary ----- *)

(* The driver is a declared dune dep living next to this executable's
   directory; resolve it relative to the test binary so the test works
   from any cwd (dune runtest, dune exec, direct invocation). *)
let cluster_exe =
  Filename.concat
    (Filename.concat (Filename.dirname Sys.executable_name) "../bin")
    "csm_cluster.exe"

let run_cluster_exe args out =
  let cmd =
    Printf.sprintf "%s %s --out %s > /dev/null 2>&1" (Filename.quote cluster_exe)
      args (Filename.quote out)
  in
  Sys.command cmd

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* The reports differ only in config.transport and the wall-clock
   fields (run_seconds and the lambda derived from it) — everything
   else (host, ledgers, per-endpoint counters) must be identical. *)
let normalize s =
  match Json.parse s with
  | Json.Obj fields ->
    Json.to_string
      (Json.Obj
         (List.filter_map
            (fun (k, v) ->
              match (k, v) with
              | ("run_seconds" | "lambda"), _ -> None
              | "config", Json.Obj cf ->
                Some
                  ( k,
                    Json.Obj
                      (List.map
                         (fun (ck, cv) ->
                           if ck = "transport" then (ck, Json.Str "X")
                           else (ck, cv))
                         cf) )
              | _ -> Some (k, v))
            fields))
  | other -> Json.to_string other
  | exception Json.Parse_error m -> Alcotest.failf "report not JSON: %s" m

let equivalence args =
  let out_loop = Filename.temp_file "csm_cluster_loop" ".json" in
  let out_sock = Filename.temp_file "csm_cluster_sock" ".json" in
  Fun.protect
    ~finally:(fun () ->
      (try Sys.remove out_loop with Sys_error _ -> ());
      try Sys.remove out_sock with Sys_error _ -> ())
    (fun () ->
      let rc1 = run_cluster_exe ("--transport loopback " ^ args) out_loop in
      check Alcotest.int "loopback exit" 0 rc1;
      let rc2 = run_cluster_exe ("--transport socket " ^ args) out_sock in
      check Alcotest.int "socket exit" 0 rc2;
      check Alcotest.string "identical reports"
        (normalize (read_file out_loop))
        (normalize (read_file out_sock)))

let loopback_socket_equivalent () =
  equivalence "-n 3 -k 1 -d 1 -b 1 --rounds 2 --seed 42"

let loopback_socket_equivalent_drop () =
  equivalence "-n 3 -k 1 -d 1 -b 1 --rounds 2 --seed 7 --faults 1:drop"

let socket_corrupt_detected () =
  let out = Filename.temp_file "csm_cluster_corrupt" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove out with Sys_error _ -> ())
    (fun () ->
      let rc =
        run_cluster_exe
          "--transport socket -n 3 -k 1 -d 1 -b 1 --rounds 2 --faults \
           2:corrupt --expect-frame-errors"
          out
      in
      check Alcotest.int "corrupt run exit" 0 rc;
      let report = read_file out in
      checkb "report says ok" true
        (let needle = "\"ok\":true" in
         let nl = String.length needle in
         let found = ref false in
         for i = 0 to String.length report - nl do
           if String.sub report i nl = needle then found := true
         done;
         !found))

let suites =
  [
    ( "transport",
      [
        Alcotest.test_case "frame round trip, all kinds" `Quick
          frame_round_trip;
        Alcotest.test_case "frame header round trip" `Quick
          frame_header_round_trip;
        Alcotest.test_case "frame fuzz: total decoding" `Quick frame_fuzz;
        Alcotest.test_case "frame rejects bad fields" `Quick
          frame_rejects_bad_fields;
        Alcotest.test_case "frame v2 round trip, all kinds" `Quick
          frame_v2_round_trip;
        Alcotest.test_case "frame v1/v2 cross-version" `Quick
          frame_cross_version;
        Alcotest.test_case "frame v2 extension rejection" `Quick
          frame_v2_ext_rejection;
        QCheck_alcotest.to_alcotest ~long:false qcheck_frame_round_trip;
        Alcotest.test_case "decimal decoder strictness" `Quick
          decimal_strictness;
        Alcotest.test_case "binary codec round trips" `Quick
          binary_round_trips;
        Alcotest.test_case "binary decoder strictness + fuzz" `Quick
          binary_strictness;
        Alcotest.test_case "sim sizers equal real wire bytes" `Quick
          sim_sizes_equal_wire_bytes;
        Alcotest.test_case "loopback send/recv/deadline/stats" `Quick
          loopback_send_recv;
        Alcotest.test_case "stats payload round trip" `Quick
          stats_payload_round_trip;
        Alcotest.test_case "cluster loopback fault-free" `Quick
          cluster_loopback_fault_free;
        Alcotest.test_case "cluster loopback drop fault" `Quick
          cluster_loopback_drop_fault;
        Alcotest.test_case "cluster loopback corrupt fault" `Quick
          cluster_loopback_corrupt_fault;
        Alcotest.test_case "cluster loopback delay fault" `Quick
          cluster_loopback_delay_fault;
        Alcotest.test_case "cluster loopback deterministic" `Quick
          cluster_loopback_deterministic;
        Alcotest.test_case "cluster loopback streaming + alerts" `Quick
          cluster_loopback_streaming;
        Alcotest.test_case "cluster loopback telemetry + trace" `Quick
          cluster_loopback_telemetry;
        Alcotest.test_case "loopback = socket (binary, fault-free)" `Quick
          loopback_socket_equivalent;
        Alcotest.test_case "loopback = socket (binary, drop fault)" `Quick
          loopback_socket_equivalent_drop;
        Alcotest.test_case "socket corrupt fault detected" `Quick
          socket_corrupt_detected;
      ] );
  ]
