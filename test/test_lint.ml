(* csm-lint analyzer tests: per-rule inline fixtures (a bad snippet
   that must fire, a good twin that must stay silent), the suppression
   and baseline machinery, the lockdep order checker, and a self-check
   that the repo itself lints clean against the committed baseline. *)

module Finding = Csm_analysis.Finding
module Driver = Csm_analysis.Driver
module Baseline = Csm_analysis.Baseline
module Lockdep = Csm_parallel.Lockdep

let rules fs = List.map (fun (f : Finding.t) -> f.Finding.rule) fs

let fires rule ?registry ~path src =
  Alcotest.(check bool)
    (Printf.sprintf "%s fires in %s" rule path)
    true
    (List.mem rule (rules (Driver.lint_string ?registry ~path src)))

let silent rule ?registry ~path src =
  Alcotest.(check bool)
    (Printf.sprintf "%s silent in %s" rule path)
    false
    (List.mem rule (rules (Driver.lint_string ?registry ~path src)))

(* ----- R1: determinism boundary ----- *)

let r1 () =
  fires "R1" ~path:"lib/core/x.ml" "let r () = Random.int 7";
  fires "R1" ~path:"lib/core/x.ml" "let t () = Unix.gettimeofday ()";
  fires "R1" ~path:"lib/core/x.ml" "let t () = Sys.time ()";
  fires "R1" ~path:"lib/core/x.ml" "let d () = (Domain.self () :> int)";
  (* Csm_rng is the sanctioned source *)
  silent "R1" ~path:"lib/core/x.ml" "let r g = Csm_rng.int g 7";
  (* the nondeterministic layers are allowlisted *)
  silent "R1" ~path:"lib/obs/x.ml" "let t () = Unix.gettimeofday ()";
  silent "R1" ~path:"lib/transport/x.ml" "let t () = Unix.gettimeofday ()";
  silent "R1" ~path:"lib/sim/net.ml" "let t () = Unix.gettimeofday ()"

(* ----- R2: polymorphic comparison ----- *)

let r2 () =
  fires "R2" ~path:"lib/core/x.ml" "let f a b = a.Frame.kind = b.Frame.kind";
  fires "R2" ~path:"lib/core/x.ml" "let f x = x = F.zero";
  fires "R2" ~path:"lib/core/x.ml" "let f x = compare x Fp.one";
  fires "R2" ~path:"lib/core/x.ml" "let f x = Hashtbl.hash (Gf2m.mul x x)";
  fires "R2" ~path:"lib/core/x.ml" "let f l = List.sort compare l";
  fires "R2" ~path:"lib/rs/x.ml" "let f l = List.map compare l";
  silent "R2" ~path:"lib/core/x.ml" "let f a b = F.equal a b";
  (* int-returning accessors compare fine *)
  silent "R2" ~path:"lib/core/x.ml" "let f x y = F.to_int x = F.to_int y";
  silent "R2" ~path:"lib/core/x.ml" "let f l = List.sort Int.compare l";
  (* bare compare is only banned wholesale in the algebra layers *)
  silent "R2" ~path:"lib/core/x.ml" "let f = compare"

(* ----- R3: mutex discipline ----- *)

let r3 () =
  fires "R3" ~path:"lib/core/x.ml"
    "let m = Mutex.create ()\nlet f () = Mutex.lock m; work (); Mutex.unlock m";
  silent "R3" ~path:"lib/core/x.ml"
    "let m = Mutex.create ()\n\
     let f () =\n\
    \  Mutex.lock m;\n\
    \  Fun.protect ~finally:(fun () -> Mutex.unlock m) work";
  (* unlock in an exception-handler position also counts *)
  silent "R3" ~path:"lib/core/x.ml"
    "let m = Mutex.create ()\n\
     let f () =\n\
    \  Mutex.lock m;\n\
    \  (try work () with e -> Mutex.unlock m; raise e);\n\
    \  Mutex.unlock m";
  (* Lockdep.lock is held to the same standard *)
  fires "R3" ~path:"lib/core/x.ml"
    "let l = Lockdep.create \"x\"\n\
     let f () = Lockdep.lock l; work (); Lockdep.unlock l";
  silent "R3" ~path:"lib/core/x.ml"
    "let l = Lockdep.create \"x\"\nlet f () = Lockdep.with_lock l work"

(* ----- R4: shared mutable state registry ----- *)

let r4 () =
  fires "R4" ~path:"lib/core/x.ml" "let total = ref 0";
  fires "R4" ~path:"lib/core/x.ml" "let tbl = Hashtbl.create 16";
  fires "R4" ~path:"lib/core/x.ml" "let buf = Array.make 8 0";
  (* registered state is fine *)
  (let registry = Hashtbl.create 4 in
   Hashtbl.replace registry "lib/core/x.ml:total" ();
   silent "R4" ~registry ~path:"lib/core/x.ml" "let total = ref 0");
  (* atomics are lock-free but still shared mutable state: registry *)
  fires "R4" ~path:"lib/core/x.ml" "let total = Atomic.make 0";
  (let registry = Hashtbl.create 4 in
   Hashtbl.replace registry "lib/core/x.ml:total" ();
   silent "R4" ~registry ~path:"lib/core/x.ml" "let total = Atomic.make 0");
  (* op counters wrap atomics; same rule *)
  fires "R4" ~path:"lib/core/x.ml" "let c = Csm_metrics.Counter.create ()";
  (* a bare lock holds no data; it is the locking story, not the state *)
  silent "R4" ~path:"lib/core/x.ml" "let m = Mutex.create ()";
  (* function-local state is not shared *)
  silent "R4" ~path:"lib/core/x.ml" "let f () = let c = ref 0 in incr c; !c";
  (* out of scope: tests may keep local toplevel state *)
  silent "R4" ~path:"test/x.ml" "let total = ref 0"

(* ----- R5: decoder totality ----- *)

let r5 () =
  fires "R5" ~path:"lib/wire/x.ml"
    "let decode s = if String.length s < 4 then failwith \"short\" else s";
  fires "R5" ~path:"lib/wire/x.ml" "let decode_header s = Option.get (parse s)";
  fires "R5" ~path:"lib/core/x.ml" "let decode_row l = List.hd l";
  fires "R5" ~path:"lib/wire/x.ml"
    "let of_header h = if bad h then raise Exit else h";
  silent "R5" ~path:"lib/wire/x.ml"
    "let decode s = if String.length s < 4 then None else Some s";
  (* encoders may validate caller input *)
  silent "R5" ~path:"lib/wire/x.ml"
    "let encode v = if v < 0 then invalid_arg \"encode\" else string_of_int v";
  (* outside lib/ the rule does not apply *)
  silent "R5" ~path:"test/x.ml" "let decode s = failwith s"

(* ----- suppressions ----- *)

let suppressions () =
  silent "R1" ~path:"lib/core/x.ml"
    "(* csm-lint: allow R1 — fixture *)\nlet t () = Unix.gettimeofday ()";
  (* same-line comments work too *)
  silent "R4" ~path:"lib/core/x.ml"
    "let total = ref 0 (* csm-lint: allow R4 — fixture *)";
  (* a suppression for one rule does not silence another *)
  fires "R1" ~path:"lib/core/x.ml"
    "(* csm-lint: allow R2 — wrong rule *)\nlet t () = Unix.gettimeofday ()";
  (* two lines below the comment is out of range *)
  fires "R1" ~path:"lib/core/x.ml"
    "(* csm-lint: allow R1 — too far *)\nlet a = 1\nlet t () = Sys.time ()"

(* ----- parse failures are findings, not crashes ----- *)

let parse_failure () =
  let fs = Driver.lint_string ~path:"lib/core/x.ml" "let let let" in
  Alcotest.(check (list string)) "parse finding" [ "parse" ] (rules fs)

(* ----- baseline ----- *)

let baseline () =
  let f text =
    ( Finding.make ~rule:"R1" ~severity:Finding.Error ~file:"lib/x.ml" ~line:3
        ~col:0 "msg",
      text )
  in
  let entries =
    [
      {
        Baseline.rule = "R1";
        file = "lib/x.ml";
        text = "let t = Sys.time ()";
        count = 1;
        reason = "r";
      };
    ]
  in
  (* matching (rule, file, text) absorbs exactly [count] findings *)
  let fresh, baselined =
    Baseline.apply entries [ f "let t = Sys.time ()"; f "let t = Sys.time ()" ]
  in
  Alcotest.(check int) "one absorbed" 1 (List.length baselined);
  Alcotest.(check int) "one fresh" 1 (List.length fresh);
  (* a different line text does not match *)
  let fresh, baselined = Baseline.apply entries [ f "let other = 1" ] in
  Alcotest.(check int) "no match absorbed" 0 (List.length baselined);
  Alcotest.(check int) "no match fresh" 1 (List.length fresh)

(* ----- the repo itself lints clean ----- *)

(* dune runs tests from _build/default/test; the repo root is one up.
   The baseline and registry are declared as test deps so they are
   present in the sandbox. *)
let self_check () =
  let r = Driver.lint_tree ~root:".." ~baseline_path:"../lint/baseline.json" in
  Alcotest.(check bool) "scanned a real tree" true (r.Driver.files_scanned > 50);
  Alcotest.(check (list string))
    "repo lints clean (fix the finding or justify it in lint/baseline.json)"
    []
    (List.map Finding.to_line r.Driver.fresh)

(* ----- lockdep: the runtime lock-order checker ----- *)

(* Take a and b in opposite orders: the second order closes a cycle in
   the global order graph and must surface as a violation. *)
let lockdep_inversion () =
  Lockdep.reset ();
  Lockdep.enable ();
  Fun.protect
    ~finally:(fun () ->
      Lockdep.disable ();
      Lockdep.reset ())
    (fun () ->
      let a = Lockdep.create "test.a" in
      let b = Lockdep.create "test.b" in
      Lockdep.with_lock a (fun () -> Lockdep.with_lock b (fun () -> ()));
      Alcotest.(check (list string)) "a->b is fine" [] (Lockdep.violations ());
      let raised = ref false in
      (try Lockdep.with_lock b (fun () -> Lockdep.with_lock a (fun () -> ()))
       with Lockdep.Order_violation _ -> raised := true);
      Alcotest.(check bool) "b->a raises Order_violation" true !raised;
      Alcotest.(check bool)
        "violation recorded" true
        (Lockdep.violations () <> []))

let lockdep_disabled_is_silent () =
  Lockdep.reset ();
  Lockdep.disable ();
  let a = Lockdep.create "test.c" in
  let b = Lockdep.create "test.d" in
  Lockdep.with_lock a (fun () -> Lockdep.with_lock b (fun () -> ()));
  Lockdep.with_lock b (fun () -> Lockdep.with_lock a (fun () -> ()));
  Alcotest.(check (list string)) "no tracking when off" []
    (Lockdep.violations ())

let suites =
  [
    ( "lint",
      [
        Alcotest.test_case "R1 determinism boundary" `Quick r1;
        Alcotest.test_case "R2 polymorphic comparison" `Quick r2;
        Alcotest.test_case "R3 mutex discipline" `Quick r3;
        Alcotest.test_case "R4 shared state registry" `Quick r4;
        Alcotest.test_case "R5 decoder totality" `Quick r5;
        Alcotest.test_case "suppression comments" `Quick suppressions;
        Alcotest.test_case "parse failure is a finding" `Quick parse_failure;
        Alcotest.test_case "baseline keying" `Quick baseline;
        Alcotest.test_case "repo self-check" `Quick self_check;
      ] );
    ( "lockdep",
      [
        Alcotest.test_case "inverted pair detected" `Quick lockdep_inversion;
        Alcotest.test_case "disabled is silent" `Quick lockdep_disabled_is_silent;
      ] );
  ]
