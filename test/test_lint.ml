(* csm-lint analyzer tests: per-rule inline fixtures (a bad snippet
   that must fire, a good twin that must stay silent), the suppression
   and baseline machinery, the lockdep order checker, and a self-check
   that the repo itself lints clean against the committed baseline. *)

module Finding = Csm_analysis.Finding
module Driver = Csm_analysis.Driver
module Baseline = Csm_analysis.Baseline
module Lockdep = Csm_parallel.Lockdep

let rules fs = List.map (fun (f : Finding.t) -> f.Finding.rule) fs

let fires rule ?registry ~path src =
  Alcotest.(check bool)
    (Printf.sprintf "%s fires in %s" rule path)
    true
    (List.mem rule (rules (Driver.lint_string ?registry ~path src)))

let silent rule ?registry ~path src =
  Alcotest.(check bool)
    (Printf.sprintf "%s silent in %s" rule path)
    false
    (List.mem rule (rules (Driver.lint_string ?registry ~path src)))

(* ----- R1: determinism boundary ----- *)

let r1 () =
  fires "R1" ~path:"lib/core/x.ml" "let r () = Random.int 7";
  fires "R1" ~path:"lib/core/x.ml" "let t () = Unix.gettimeofday ()";
  fires "R1" ~path:"lib/core/x.ml" "let t () = Sys.time ()";
  fires "R1" ~path:"lib/core/x.ml" "let d () = (Domain.self () :> int)";
  (* Csm_rng is the sanctioned source *)
  silent "R1" ~path:"lib/core/x.ml" "let r g = Csm_rng.int g 7";
  (* the nondeterministic layers are allowlisted *)
  silent "R1" ~path:"lib/obs/x.ml" "let t () = Unix.gettimeofday ()";
  silent "R1" ~path:"lib/transport/x.ml" "let t () = Unix.gettimeofday ()";
  silent "R1" ~path:"lib/sim/net.ml" "let t () = Unix.gettimeofday ()"

(* ----- R2: polymorphic comparison ----- *)

let r2 () =
  fires "R2" ~path:"lib/core/x.ml" "let f a b = a.Frame.kind = b.Frame.kind";
  fires "R2" ~path:"lib/core/x.ml" "let f x = x = F.zero";
  fires "R2" ~path:"lib/core/x.ml" "let f x = compare x Fp.one";
  fires "R2" ~path:"lib/core/x.ml" "let f x = Hashtbl.hash (Gf2m.mul x x)";
  fires "R2" ~path:"lib/core/x.ml" "let f l = List.sort compare l";
  fires "R2" ~path:"lib/rs/x.ml" "let f l = List.map compare l";
  silent "R2" ~path:"lib/core/x.ml" "let f a b = F.equal a b";
  (* int-returning accessors compare fine *)
  silent "R2" ~path:"lib/core/x.ml" "let f x y = F.to_int x = F.to_int y";
  silent "R2" ~path:"lib/core/x.ml" "let f l = List.sort Int.compare l";
  (* bare compare is only banned wholesale in the algebra layers *)
  silent "R2" ~path:"lib/core/x.ml" "let f = compare"

(* ----- R3: mutex discipline ----- *)

let r3 () =
  fires "R3" ~path:"lib/core/x.ml"
    "let m = Mutex.create ()\nlet f () = Mutex.lock m; work (); Mutex.unlock m";
  silent "R3" ~path:"lib/core/x.ml"
    "let m = Mutex.create ()\n\
     let f () =\n\
    \  Mutex.lock m;\n\
    \  Fun.protect ~finally:(fun () -> Mutex.unlock m) work";
  (* unlock in an exception-handler position also counts *)
  silent "R3" ~path:"lib/core/x.ml"
    "let m = Mutex.create ()\n\
     let f () =\n\
    \  Mutex.lock m;\n\
    \  (try work () with e -> Mutex.unlock m; raise e);\n\
    \  Mutex.unlock m";
  (* Lockdep.lock is held to the same standard *)
  fires "R3" ~path:"lib/core/x.ml"
    "let l = Lockdep.create \"x\"\n\
     let f () = Lockdep.lock l; work (); Lockdep.unlock l";
  silent "R3" ~path:"lib/core/x.ml"
    "let l = Lockdep.create \"x\"\nlet f () = Lockdep.with_lock l work"

(* ----- R4: shared mutable state registry ----- *)

let r4 () =
  fires "R4" ~path:"lib/core/x.ml" "let total = ref 0";
  fires "R4" ~path:"lib/core/x.ml" "let tbl = Hashtbl.create 16";
  fires "R4" ~path:"lib/core/x.ml" "let buf = Array.make 8 0";
  (* registered state is fine *)
  (let registry = Hashtbl.create 4 in
   Hashtbl.replace registry "lib/core/x.ml:total" ();
   silent "R4" ~registry ~path:"lib/core/x.ml" "let total = ref 0");
  (* atomics are lock-free but still shared mutable state: registry *)
  fires "R4" ~path:"lib/core/x.ml" "let total = Atomic.make 0";
  (let registry = Hashtbl.create 4 in
   Hashtbl.replace registry "lib/core/x.ml:total" ();
   silent "R4" ~registry ~path:"lib/core/x.ml" "let total = Atomic.make 0");
  (* op counters wrap atomics; same rule *)
  fires "R4" ~path:"lib/core/x.ml" "let c = Csm_metrics.Counter.create ()";
  (* a bare lock holds no data; it is the locking story, not the state *)
  silent "R4" ~path:"lib/core/x.ml" "let m = Mutex.create ()";
  (* function-local state is not shared *)
  silent "R4" ~path:"lib/core/x.ml" "let f () = let c = ref 0 in incr c; !c";
  (* out of scope: tests may keep local toplevel state *)
  silent "R4" ~path:"test/x.ml" "let total = ref 0"

(* ----- R5: decoder totality ----- *)

let r5 () =
  fires "R5" ~path:"lib/wire/x.ml"
    "let decode s = if String.length s < 4 then failwith \"short\" else s";
  fires "R5" ~path:"lib/wire/x.ml" "let decode_header s = Option.get (parse s)";
  fires "R5" ~path:"lib/core/x.ml" "let decode_row l = List.hd l";
  fires "R5" ~path:"lib/wire/x.ml"
    "let of_header h = if bad h then raise Exit else h";
  silent "R5" ~path:"lib/wire/x.ml"
    "let decode s = if String.length s < 4 then None else Some s";
  (* encoders may validate caller input *)
  silent "R5" ~path:"lib/wire/x.ml"
    "let encode v = if v < 0 then invalid_arg \"encode\" else string_of_int v";
  (* outside lib/ the rule does not apply *)
  silent "R5" ~path:"test/x.ml" "let decode s = failwith s"

(* ----- suppressions ----- *)

let suppressions () =
  silent "R1" ~path:"lib/core/x.ml"
    "(* csm-lint: allow R1 — fixture *)\nlet t () = Unix.gettimeofday ()";
  (* same-line comments work too *)
  silent "R4" ~path:"lib/core/x.ml"
    "let total = ref 0 (* csm-lint: allow R4 — fixture *)";
  (* a suppression for one rule does not silence another *)
  fires "R1" ~path:"lib/core/x.ml"
    "(* csm-lint: allow R2 — wrong rule *)\nlet t () = Unix.gettimeofday ()";
  (* two lines below the comment is out of range *)
  fires "R1" ~path:"lib/core/x.ml"
    "(* csm-lint: allow R1 — too far *)\nlet a = 1\nlet t () = Sys.time ()"

(* ----- parse failures are findings, not crashes ----- *)

let parse_failure () =
  let fs = Driver.lint_string ~path:"lib/core/x.ml" "let let let" in
  Alcotest.(check (list string)) "parse finding" [ "parse" ] (rules fs)

(* ----- baseline ----- *)

let baseline () =
  let f text =
    ( Finding.make ~rule:"R1" ~severity:Finding.Error ~file:"lib/x.ml" ~line:3
        ~col:0 "msg",
      text )
  in
  let entries =
    [
      {
        Baseline.rule = "R1";
        file = "lib/x.ml";
        text = "let t = Sys.time ()";
        count = 1;
        reason = "r";
      };
    ]
  in
  (* matching (rule, file, text) absorbs exactly [count] findings *)
  let fresh, baselined =
    Baseline.apply entries [ f "let t = Sys.time ()"; f "let t = Sys.time ()" ]
  in
  Alcotest.(check int) "one absorbed" 1 (List.length baselined);
  Alcotest.(check int) "one fresh" 1 (List.length fresh);
  (* a different line text does not match *)
  let fresh, baselined = Baseline.apply entries [ f "let other = 1" ] in
  Alcotest.(check int) "no match absorbed" 0 (List.length baselined);
  Alcotest.(check int) "no match fresh" 1 (List.length fresh)

(* ----- whole-program passes: taint (R6-R8), lock order (R9) ----- *)

let wp_rules ?registry ?expected sources =
  rules (Driver.lint_strings ?registry ?expected sources)

let wp_fires rule ?registry ?expected sources =
  Alcotest.(check bool)
    (rule ^ " fires")
    true
    (List.mem rule (wp_rules ?registry ?expected sources))

let wp_silent rule ?registry ?expected sources =
  Alcotest.(check bool)
    (rule ^ " silent")
    false
    (List.mem rule (wp_rules ?registry ?expected sources))

let r6_taint () =
  (* a transport read sizes a buffer unsanitized *)
  wp_fires "R6"
    [ ("lib/transport/ta.ml", "let f tr = Bytes.create (Transport.recv tr)") ];
  (* the good twin crosses a total decoder first *)
  wp_silent "R6"
    [
      ( "lib/transport/ta.ml",
        "let f tr =\n\
        \  match decode_len (Transport.recv tr) with\n\
        \  | Some n -> Bytes.create n\n\
        \  | None -> Bytes.create 0" );
    ];
  (* a conjunction of range comparisons is bounds-checking: the
     guarded branch is clean, the unguarded sibling is not *)
  wp_silent "R6"
    [
      ( "lib/transport/ta.ml",
        "let f tr n =\n\
        \  let i = Transport.recv tr in\n\
        \  if i >= 0 && i < n then Bytes.create i else Bytes.create 0" );
    ];
  (* mod-bounded slot arithmetic is bounds-checked indexing *)
  wp_silent "R6"
    [
      ( "lib/transport/ta.ml",
        "let f tr arr = Array.get arr (Transport.recv tr mod Array.length arr)"
      );
    ]

let r6_interprocedural () =
  (* the sink lives one module away: Wa.write_at lets its index
     parameter reach Bytes.set *)
  let sink_unit = ("lib/wire/wa.ml", "let write_at buf i v = Bytes.set buf i v") in
  wp_fires "R6"
    [
      sink_unit;
      ( "lib/transport/wb.ml",
        "let f tr buf = Wa.write_at buf (Transport.recv tr) 'x'" );
    ];
  (* sanitizing in the caller satisfies the callee's summary *)
  wp_silent "R6"
    [
      sink_unit;
      ( "lib/transport/wb.ml",
        "let f tr buf =\n\
        \  match decode_idx (Transport.recv tr) with\n\
        \  | Some i -> Wa.write_at buf i 'x'\n\
        \  | None -> ()" );
    ];
  (* per-parameter precision: the value position never reaches the
     index sink, so an untrusted byte there is fine *)
  wp_silent "R6"
    [
      sink_unit;
      ( "lib/transport/wb.ml",
        "let f tr buf = Wa.write_at buf 0 (Transport.recv tr)" );
    ]

let r7_whole_program () =
  wp_fires "R7" [ ("lib/wire/wc.ml", "let f s = ignore (decode_cmd s)") ];
  wp_fires "R7" [ ("lib/wire/wc.ml", "let f s = let _ = decode_cmd s in ()") ];
  wp_fires "R7" [ ("lib/wire/wc.ml", "let f s = Option.get (decode_cmd s)") ];
  wp_silent "R7"
    [
      ( "lib/wire/wc.ml",
        "let f s = match decode_cmd s with Some c -> c | None -> 0" );
    ]

let r8_global_escape () =
  let src =
    "let cache = Hashtbl.create 8\n\
     let g tr = Hashtbl.replace cache 0 (Transport.recv tr)"
  in
  wp_fires "R8" [ ("lib/obs/wx.ml", src) ];
  (* registering the global (with its trust story) accepts the store *)
  (let registry = Hashtbl.create 4 in
   Hashtbl.replace registry "lib/obs/wx.ml:cache" ();
   wp_silent "R8" ~registry [ ("lib/obs/wx.ml", src) ]);
  (* sanitized before the store: no escape *)
  wp_silent "R8"
    [
      ( "lib/obs/wx.ml",
        "let cache = Hashtbl.create 8\n\
         let g tr =\n\
        \  match decode_cmd (Transport.recv tr) with\n\
        \  | Some c -> Hashtbl.replace cache 0 c\n\
        \  | None -> ()" );
    ]

let r9_static_lock_order () =
  let inversion =
    "let a = Mutex.create ()\n\
     let b = Mutex.create ()\n\
     let f () = Mutex.lock a; Mutex.lock b; Mutex.unlock b; Mutex.unlock a\n\
     let g () = Mutex.lock b; Mutex.lock a; Mutex.unlock a; Mutex.unlock b"
  in
  wp_fires "R9" [ ("lib/core/lx.ml", inversion) ];
  (* same order on both paths: no cycle *)
  wp_silent "R9"
    [
      ( "lib/core/lx.ml",
        "let a = Mutex.create ()\n\
         let b = Mutex.create ()\n\
         let f () = Mutex.lock a; Mutex.lock b; Mutex.unlock b; Mutex.unlock a\n\
         let g () = Mutex.lock a; Mutex.lock b; Mutex.unlock b; Mutex.unlock a"
      );
    ];
  (* a static order contradicting the runtime-recorded order *)
  let one_order =
    "let a = Mutex.create ()\n\
     let b = Mutex.create ()\n\
     let f () = Mutex.lock a; Mutex.lock b; Mutex.unlock b; Mutex.unlock a"
  in
  wp_fires "R9" ~expected:[ ("Lx.b", "Lx.a") ]
    [ ("lib/core/lx.ml", one_order) ];
  wp_silent "R9" ~expected:[ ("Lx.a", "Lx.b") ]
    [ ("lib/core/lx.ml", one_order) ]

let taint_suppressions () =
  (* an allow marker covers the next line, same as the per-file rules *)
  wp_silent "R6"
    [
      ( "lib/transport/ta.ml",
        "(* csm-lint: allow R6 — fixture *)\n\
         let f tr = Bytes.create (Transport.recv tr)" );
    ];
  (* an allow at the sink inside the callee silences every caller:
     the justification covers the flow, not just the line *)
  wp_silent "R6"
    [
      ( "lib/wire/wa.ml",
        "let write_at buf i v =\n\
        \  (* csm-lint: allow R6 — fixture: caller-validated index *)\n\
        \  Bytes.set buf i v" );
      ( "lib/transport/wb.ml",
        "let f tr buf = Wa.write_at buf (Transport.recv tr) 'x'" );
    ];
  (* the wrong rule does not silence a taint finding *)
  wp_fires "R6"
    [
      ( "lib/transport/ta.ml",
        "(* csm-lint: allow R7 — wrong rule *)\n\
         let f tr = Bytes.create (Transport.recv tr)" );
    ]

(* ----- baseline normalization and reason carry-over ----- *)

let baseline_normalized () =
  let entries =
    [
      {
        Baseline.rule = "R1";
        file = "lib/x.ml";
        text = "let t =   Sys.time\t()";
        count = 1;
        reason = "r";
      };
    ]
  in
  let f text =
    ( Finding.make ~rule:"R1" ~severity:Finding.Error ~file:"lib/x.ml" ~line:3
        ~col:0 "msg",
      text )
  in
  (* reformatting (indentation, alignment, tabs) still matches *)
  let fresh, baselined = Baseline.apply entries [ f "let t = Sys.time ()" ] in
  Alcotest.(check int) "reformatted line absorbed" 1 (List.length baselined);
  Alcotest.(check int) "no fresh" 0 (List.length fresh);
  (* token changes do not *)
  let fresh, baselined = Baseline.apply entries [ f "let t = Sys.timex ()" ] in
  Alcotest.(check int) "token change not absorbed" 0 (List.length baselined);
  Alcotest.(check int) "token change fresh" 1 (List.length fresh)

let baseline_update_reasons () =
  let old =
    [
      {
        Baseline.rule = "R1";
        file = "lib/x.ml";
        text = "let t = Sys.time ()";
        count = 1;
        reason = "because reviewed";
      };
    ]
  in
  let f text =
    ( Finding.make ~rule:"R1" ~severity:Finding.Error ~file:"lib/x.ml" ~line:3
        ~col:0 "msg",
      text )
  in
  let entries =
    Baseline.of_findings ~old
      [ f "let t =   Sys.time ()"; f "let u = Unix.time ()" ]
  in
  Alcotest.(check int) "two entries" 2 (List.length entries);
  let reason_of text =
    (List.find (fun e -> e.Baseline.text = text) entries).Baseline.reason
  in
  (* the surviving key keeps its reason even though the line was
     reformatted; the new one demands justification *)
  Alcotest.(check string)
    "carried reason" "because reviewed"
    (reason_of "let t = Sys.time ()");
  Alcotest.(check string)
    "new entry flagged" "TODO: justify or fix"
    (reason_of "let u = Unix.time ()")

(* ----- SARIF output matches the checked-in golden file ----- *)

let sarif_golden () =
  let fs =
    Driver.lint_strings
      [
        ( "lib/transport/sg.ml",
          "let f tr = Bytes.create (Transport.recv tr)\n\
           let g s = ignore (decode_cmd s)" );
      ]
  in
  let got = Csm_obs.Json.to_string (Csm_analysis.Sarif.render fs) in
  let want =
    String.trim
      (In_channel.with_open_bin "fixtures/lint_sarif_golden.json"
         In_channel.input_all)
  in
  Alcotest.(check string) "sarif matches the golden file" want got

(* ----- the repo itself lints clean ----- *)

(* dune runs tests from _build/default/test; the repo root is one up.
   The baseline and registry are declared as test deps so they are
   present in the sandbox. *)
let self_check () =
  let r =
    Driver.lint_tree ~taint:true ~root:".."
      ~baseline_path:"../lint/baseline.json" ()
  in
  Alcotest.(check bool) "scanned a real tree" true (r.Driver.files_scanned > 50);
  Alcotest.(check (list string))
    "repo lints clean (fix the finding or justify it in lint/baseline.json)"
    []
    (List.map Finding.to_line r.Driver.fresh)

(* ----- lockdep: the runtime lock-order checker ----- *)

(* Take a and b in opposite orders: the second order closes a cycle in
   the global order graph and must surface as a violation. *)
let lockdep_inversion () =
  Lockdep.reset ();
  Lockdep.enable ();
  Fun.protect
    ~finally:(fun () ->
      Lockdep.disable ();
      Lockdep.reset ())
    (fun () ->
      let a = Lockdep.create "test.a" in
      let b = Lockdep.create "test.b" in
      (* csm-lint: allow R9 — deliberate inversion below; this test exercises the runtime checker *)
      Lockdep.with_lock a (fun () -> Lockdep.with_lock b (fun () -> ()));
      Alcotest.(check (list string)) "a->b is fine" [] (Lockdep.violations ());
      let raised = ref false in
      (* csm-lint: allow R9 — the inversion under test *)
      (try Lockdep.with_lock b (fun () -> Lockdep.with_lock a (fun () -> ()))
       with Lockdep.Order_violation _ -> raised := true);
      Alcotest.(check bool) "b->a raises Order_violation" true !raised;
      Alcotest.(check bool)
        "violation recorded" true
        (Lockdep.violations () <> []))

let lockdep_disabled_is_silent () =
  Lockdep.reset ();
  Lockdep.disable ();
  let a = Lockdep.create "test.c" in
  let b = Lockdep.create "test.d" in
  (* csm-lint: allow R9 — deliberate inversion: disabled lockdep must stay silent *)
  Lockdep.with_lock a (fun () -> Lockdep.with_lock b (fun () -> ()));
  (* csm-lint: allow R9 — deliberate inversion, as above *)
  Lockdep.with_lock b (fun () -> Lockdep.with_lock a (fun () -> ()));
  Alcotest.(check (list string)) "no tracking when off" []
    (Lockdep.violations ())

let suites =
  [
    ( "lint",
      [
        Alcotest.test_case "R1 determinism boundary" `Quick r1;
        Alcotest.test_case "R2 polymorphic comparison" `Quick r2;
        Alcotest.test_case "R3 mutex discipline" `Quick r3;
        Alcotest.test_case "R4 shared state registry" `Quick r4;
        Alcotest.test_case "R5 decoder totality" `Quick r5;
        Alcotest.test_case "suppression comments" `Quick suppressions;
        Alcotest.test_case "parse failure is a finding" `Quick parse_failure;
        Alcotest.test_case "baseline keying" `Quick baseline;
        Alcotest.test_case "repo self-check" `Quick self_check;
      ] );
    ( "taint",
      [
        Alcotest.test_case "R6 untrusted to sink" `Quick r6_taint;
        Alcotest.test_case "R6 interprocedural" `Quick r6_interprocedural;
        Alcotest.test_case "R7 verdict discarded" `Quick r7_whole_program;
        Alcotest.test_case "R8 taint into global" `Quick r8_global_escape;
        Alcotest.test_case "R9 static lock order" `Quick r9_static_lock_order;
        Alcotest.test_case "taint suppressions" `Quick taint_suppressions;
        Alcotest.test_case "baseline normalization" `Quick baseline_normalized;
        Alcotest.test_case "baseline reason carry" `Quick
          baseline_update_reasons;
        Alcotest.test_case "sarif golden" `Quick sarif_golden;
      ] );
    ( "lockdep",
      [
        Alcotest.test_case "inverted pair detected" `Quick lockdep_inversion;
        Alcotest.test_case "disabled is silent" `Quick lockdep_disabled_is_silent;
      ] );
  ]
