(* Field axioms and arithmetic correctness, over every instantiated field:
   prime fields (default NTT prime, Mersenne, tiny) and binary extension
   fields.  Property tests draw random elements; small fields also get
   exhaustive checks. *)

open Csm_field

let seed = 0xF1E7D

(* Build the alcotest + qcheck suite for one field. *)
module MakeSuite (F : Field_intf.S) (N : sig
  val name : string
end) =
struct
  let rng = Csm_rng.create seed

  let arb =
    QCheck.make
      ~print:(fun x -> F.to_string x)
      (QCheck.Gen.map (fun _ -> F.random rng) QCheck.Gen.unit)

  let qtest name count law = QCheck.Test.make ~name ~count law

  let props =
    [
      qtest "add commutative" 200
        (QCheck.pair arb arb)
        (fun (a, b) -> F.equal (F.add a b) (F.add b a));
      qtest "add associative" 200
        (QCheck.triple arb arb arb)
        (fun (a, b, c) -> F.equal (F.add (F.add a b) c) (F.add a (F.add b c)));
      qtest "mul commutative" 200
        (QCheck.pair arb arb)
        (fun (a, b) -> F.equal (F.mul a b) (F.mul b a));
      qtest "mul associative" 200
        (QCheck.triple arb arb arb)
        (fun (a, b, c) -> F.equal (F.mul (F.mul a b) c) (F.mul a (F.mul b c)));
      qtest "distributivity" 200
        (QCheck.triple arb arb arb)
        (fun (a, b, c) ->
          F.equal (F.mul a (F.add b c)) (F.add (F.mul a b) (F.mul a c)));
      qtest "additive inverse" 200 arb (fun a ->
          F.is_zero (F.add a (F.neg a)));
      qtest "sub = add neg" 200
        (QCheck.pair arb arb)
        (fun (a, b) -> F.equal (F.sub a b) (F.add a (F.neg b)));
      qtest "multiplicative inverse" 200 arb (fun a ->
          F.is_zero a || F.equal (F.mul a (F.inv a)) F.one);
      qtest "div inverse of mul" 200
        (QCheck.pair arb arb)
        (fun (a, b) -> F.is_zero b || F.equal (F.div (F.mul a b) b) a);
      qtest "pow matches repeated mul" 200 arb (fun a ->
          let rec naive acc i = if i = 0 then acc else naive (F.mul acc a) (i - 1) in
          F.equal (F.pow a 7) (naive F.one 7));
      qtest "pow negative exponent" 200 arb (fun a ->
          F.is_zero a || F.equal (F.pow a (-3)) (F.inv (F.pow a 3)));
      qtest "fermat / lagrange order" 200 arb (fun a ->
          F.is_zero a || F.equal (F.pow a (F.order - 1)) F.one);
      qtest "of_int/to_int roundtrip" 200 arb (fun a ->
          F.equal (F.of_int (F.to_int a)) a);
    ]

  let unit_tests =
    [
      Alcotest.test_case "constants" `Quick (fun () ->
          Alcotest.(check bool) "zero is zero" true (F.is_zero F.zero);
          Alcotest.(check bool) "one not zero" (F.order > 1) (not (F.is_zero F.one));
          Alcotest.(check bool) "one*one" true (F.equal (F.mul F.one F.one) F.one));
      Alcotest.test_case "inv zero raises" `Quick (fun () ->
          Alcotest.check_raises "inv 0" Division_by_zero (fun () ->
              ignore (F.inv F.zero)));
      Alcotest.test_case "div by zero raises" `Quick (fun () ->
          Alcotest.check_raises "div 0" Division_by_zero (fun () ->
              ignore (F.div F.one F.zero)));
      Alcotest.test_case "of_int negative" `Quick (fun () ->
          (* of_int is the ring hom only for prime fields; for GF(2^m)
             it is a bit-pattern constructor. *)
          if F.characteristic = F.order then
            Alcotest.(check bool)
              "-1 = neg one" true
              (F.equal (F.of_int (-1)) (F.neg F.one)));
      Alcotest.test_case "random_nonzero" `Quick (fun () ->
          let r = Csm_rng.create 42 in
          for _ = 1 to 100 do
            if F.is_zero (F.random_nonzero r) then
              Alcotest.fail "random_nonzero returned zero"
          done);
      Alcotest.test_case "root_of_unity orders" `Quick (fun () ->
          List.iter
            (fun n ->
              match F.root_of_unity n with
              | None -> ()
              | Some w ->
                Alcotest.(check bool)
                  (Printf.sprintf "w^%d = 1" n)
                  true
                  (F.equal (F.pow w n) F.one);
                if n > 1 then
                  Alcotest.(check bool)
                    (Printf.sprintf "w^%d <> 1 (primitive)" (n / 2))
                    true
                    (not (F.equal (F.pow w (n / 2)) F.one)))
            [ 1; 2; 4; 8; 16; 64; 256 ]);
    ]

  let suite =
    ( "field:" ^ N.name,
      unit_tests @ List.map (QCheck_alcotest.to_alcotest ~long:false) props )
end

module Default_suite =
  MakeSuite
    (Fp.Default)
    (struct
      let name = "fp-default(2013265921)"
    end)

module Mersenne_suite =
  MakeSuite
    (Fp.Mersenne31)
    (struct
      let name = "fp-mersenne31"
    end)

module F97_suite =
  MakeSuite
    (Fp.F97)
    (struct
      let name = "fp-97"
    end)

module Gf256_suite =
  MakeSuite
    (Gf2m.Gf256)
    (struct
      let name = "gf(2^8)"
    end)

module Gf1024_suite =
  MakeSuite
    (Gf2m.Gf1024)
    (struct
      let name = "gf(2^10)"
    end)

module Gf65536_suite =
  MakeSuite
    (Gf2m.Gf65536)
    (struct
      let name = "gf(2^16)"
    end)

(* Exhaustive checks for a tiny field: every pair. *)
let exhaustive_f97 () =
  let module F = Fp.F97 in
  for a = 0 to 96 do
    for b = 0 to 96 do
      let fa = F.of_int a and fb = F.of_int b in
      assert (F.to_int (F.add fa fb) = (a + b) mod 97);
      assert (F.to_int (F.mul fa fb) = a * b mod 97)
    done;
    if a > 0 then begin
      let fa = F.of_int a in
      assert (F.equal (F.mul fa (F.inv fa)) F.one)
    end
  done

(* GF(2^m): table-based mul must agree with a reference carry-less mul
   for every pair in GF(256). *)
let gf256_reference () =
  let module G = Gf2m.Gf256 in
  let modulus = 0x11D in
  let slow a b =
    let r = ref 0 and a = ref a and b = ref b in
    while !b <> 0 do
      if !b land 1 = 1 then r := !r lxor !a;
      b := !b lsr 1;
      a := !a lsl 1;
      if !a land 0x100 <> 0 then a := !a lxor modulus
    done;
    !r
  in
  for a = 0 to 255 do
    for b = 0 to 255 do
      let got = G.to_int (G.mul (G.of_int a) (G.of_int b)) in
      if got <> slow a b then
        Alcotest.failf "gf256 mul %d*%d: got %d want %d" a b got (slow a b)
    done
  done

(* Characteristic-2 specifics and the Appendix-A embedding. *)
let gf_char2 () =
  let module G = Gf2m.Gf1024 in
  let rng = Csm_rng.create 7 in
  for _ = 1 to 200 do
    let a = G.random rng in
    (* x + x = 0 and neg is identity *)
    Alcotest.(check bool) "a+a=0" true (G.is_zero (G.add a a));
    Alcotest.(check bool) "neg a = a" true (G.equal (G.neg a) a);
    (* Frobenius: (a+b)^2 = a^2 + b^2 *)
    let b = G.random rng in
    Alcotest.(check bool)
      "frobenius" true
      (G.equal (G.pow (G.add a b) 2) (G.add (G.pow a 2) (G.pow b 2)))
  done;
  Alcotest.(check bool) "embed 0" true (G.is_zero (G.embed_bit 0));
  Alcotest.(check bool) "embed 1" true (G.equal (G.embed_bit 1) G.one)

let fp_rejects_composite () =
  let exn = ref false in
  (try
     let module Bad = Fp.Make (struct
       let p = 91 (* 7 * 13 *)
     end) in
     ignore Bad.one
   with Invalid_argument _ -> exn := true);
  Alcotest.(check bool) "composite rejected" true !exn

let default_modulus_in_range () =
  for m = 1 to 31 do
    let p = Gf2m.default_modulus m in
    Alcotest.(check bool)
      (Printf.sprintf "degree of modulus %d" m)
      true
      (p land (1 lsl m) <> 0 && p < 1 lsl (m + 1));
    Alcotest.(check bool)
      (Printf.sprintf "irreducibility of modulus %d" m)
      true
      (Gf2m.irreducible_over_gf2 p)
  done;
  (* the Rabin test itself rejects known reducibles *)
  Alcotest.(check bool) "x^2+1 = (x+1)^2 reducible" false
    (Gf2m.irreducible_over_gf2 0b101);
  Alcotest.(check bool) "x^4+x^2+1 reducible" false
    (Gf2m.irreducible_over_gf2 0b10101);
  Alcotest.(check bool) "x^2+x+1 irreducible" true
    (Gf2m.irreducible_over_gf2 0b111)

(* every default field up to m = 31 instantiates (the functor runs the
   Rabin check) and satisfies spot-checked axioms *)
let all_extension_fields_instantiate () =
  for m = 17 to 31 do
    let module G = Gf2m.Make (struct
      let m = m
      let modulus = 0
    end) in
    let r = Csm_rng.create m in
    for _ = 1 to 20 do
      let a = G.random_nonzero r and b = G.random_nonzero r in
      if not (G.equal (G.mul a (G.inv a)) G.one) then
        Alcotest.failf "m=%d: inverse broken" m;
      if not (G.equal (G.mul a b) (G.mul b a)) then
        Alcotest.failf "m=%d: commutativity broken" m
    done
  done;
  (* a reducible custom modulus is rejected *)
  let exn = ref false in
  (try
     let module Bad = Gf2m.Make (struct
       let m = 4
       let modulus = 0b10101 lor (1 lsl 4)  (* degree-4 bits of a reducible *)
     end) in
     ignore Bad.one
   with Invalid_argument _ -> exn := true);
  Alcotest.(check bool) "reducible modulus rejected" true !exn

(* Regression: a modulus whose x is NOT a multiplicative generator (the
   AES polynomial x^8+x^4+x^3+x+1 = 0x11B; ord(x) = 51) must still get
   exp/log tables — the generator search tries 2, 3, ... — instead of
   silently dropping to the shift-and-reduce mul. *)
let gf2m_aes_modulus () =
  let module A = Gf2m.Make (struct
    let m = 8
    let modulus = 0x11B
  end) in
  Alcotest.(check bool) "AES field is table-backed" true A.table_backed;
  Alcotest.(check bool) "default gf256 is table-backed too" true
    Gf2m.Gf256.table_backed;
  let v = A.of_int in
  (* FIPS-197 worked example and a known inverse pair *)
  Alcotest.(check int) "57*83=C1" 0xC1 (A.to_int (A.mul (v 0x57) (v 0x83)));
  Alcotest.(check int) "53*CA=01" 0x01 (A.to_int (A.mul (v 0x53) (v 0xCA)));
  for a = 1 to 255 do
    if not (A.equal (A.mul (v a) (A.inv (v a))) A.one) then
      Alcotest.failf "AES field: inv broken at %d" a;
    if A.to_int (A.div (A.mul (v a) (v 0x53)) (v 0x53)) <> a then
      Alcotest.failf "AES field: div roundtrip broken at %d" a
  done

(* Byte-packed batch kernels must agree with the scalar ops, element by
   element, for every kernel entry point. *)
let batch_matches_scalar (type a) (module G : Field_intf.S with type t = a)
    name =
  match G.batch () with
  | None -> Alcotest.failf "%s: expected batch kernels" name
  | Some b ->
    let rng = Csm_rng.create 0xB47C in
    for _ = 1 to 20 do
      let n = 1 + Csm_rng.int rng 40 in
      let xs = Array.init n (fun _ -> G.random rng) in
      let ys = Array.init n (fun _ -> G.random rng) in
      let c = G.random rng in
      let px = b.Field_intf.pack xs in
      (* pack/unpack roundtrip *)
      Array.iteri
        (fun i x ->
          if not (G.equal x (b.Field_intf.unpack px).(i)) then
            Alcotest.failf "%s: pack/unpack mismatch" name)
        xs;
      (* dot *)
      let expect_dot =
        Array.fold_left G.add G.zero (Array.map2 G.mul xs ys)
      in
      if not (G.equal (b.Field_intf.dot px (b.Field_intf.pack ys)) expect_dot)
      then Alcotest.failf "%s: dot mismatch" name;
      (* axpy: acc <- acc + c*x *)
      let acc = b.Field_intf.pack ys in
      b.Field_intf.axpy ~acc ~c ~x:px;
      let got = b.Field_intf.unpack acc in
      Array.iteri
        (fun i y ->
          if not (G.equal (G.add y (G.mul c xs.(i))) got.(i)) then
            Alcotest.failf "%s: axpy mismatch" name)
        ys;
      (* scale *)
      let got = b.Field_intf.unpack (b.Field_intf.scale ~c ~x:px) in
      Array.iteri
        (fun i x ->
          if not (G.equal (G.mul c x) got.(i)) then
            Alcotest.failf "%s: scale mismatch" name)
        xs;
      (* eval_many = little-endian Horner at each point *)
      let m = 1 + Csm_rng.int rng 6 in
      let coeffs = Array.init m (fun _ -> G.random rng) in
      let horner x =
        let acc = ref G.zero in
        for i = m - 1 downto 0 do
          acc := G.add (G.mul !acc x) coeffs.(i)
        done;
        !acc
      in
      let got = b.Field_intf.unpack (b.Field_intf.eval_many ~coeffs ~xs:px) in
      Array.iteri
        (fun i x ->
          if not (G.equal (horner x) got.(i)) then
            Alcotest.failf "%s: eval_many mismatch" name)
        xs
    done

let batch_kernels () =
  batch_matches_scalar (module Gf2m.Gf256) "gf256";
  batch_matches_scalar (module Gf2m.Gf65536) "gf65536";
  (* prime fields and mid-size binary fields have no byte kernels *)
  Alcotest.(check bool) "fp batch is None" true
    (Option.is_none (Fp.Default.batch ()));
  Alcotest.(check bool) "gf1024 batch is None" true
    (Option.is_none (Gf2m.Gf1024.batch ()))

let extra_suite =
  ( "field:extra",
    [
      Alcotest.test_case "exhaustive F97" `Quick exhaustive_f97;
      Alcotest.test_case "gf256 vs reference mul" `Quick gf256_reference;
      Alcotest.test_case "char-2 identities + embedding" `Quick gf_char2;
      Alcotest.test_case "Fp rejects composite modulus" `Quick
        fp_rejects_composite;
      Alcotest.test_case "gf2m default moduli degrees + irreducibility"
        `Quick default_modulus_in_range;
      Alcotest.test_case "gf2m instantiates for all m <= 31" `Quick
        all_extension_fields_instantiate;
      Alcotest.test_case "AES modulus gets tables (regression)" `Quick
        gf2m_aes_modulus;
      Alcotest.test_case "byte-packed batch kernels match scalar" `Quick
        batch_kernels;
    ] )

let suites =
  [
    Default_suite.suite;
    Mersenne_suite.suite;
    F97_suite.suite;
    Gf256_suite.suite;
    Gf1024_suite.suite;
    Gf65536_suite.suite;
    extra_suite;
  ]
