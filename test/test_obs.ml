(* Observability layer: span tracer determinism, exporter JSON
   round-trip, the disabled fast path, and op-delta attribution against
   the metrics ledger. *)

module Span = Csm_obs.Span
module Clock = Csm_obs.Clock
module Flight = Csm_obs.Flight
module Agg = Csm_obs.Agg
module Event = Csm_obs.Event
module Summary = Csm_obs.Summary
module Exporter = Csm_obs.Exporter
module Json = Csm_obs.Json
module Metric = Csm_obs.Metric
module Prom = Csm_obs.Prom
module Pool = Csm_parallel.Pool
module Counter = Csm_metrics.Counter
module Ledger = Csm_metrics.Ledger
module Scope = Csm_metrics.Scope
module CF = Csm_field.Counted.Make (Csm_field.Fp.Default)
module E = Csm_core.Engine.Make (CF)
module M = E.M
module Params = Csm_core.Params

(* run [f] with tracing on and a clean buffer; always restore the
   disabled state so other suites see zero tracer overhead *)
let traced f =
  Span.reset ();
  Span.enable ();
  Fun.protect
    ~finally:(fun () ->
      Span.disable ();
      Span.reset ())
    f

let small_round ~scope () =
  let d = 2 and n = 11 and k = 3 and b = 2 in
  let machine = M.degree_machine d in
  let params = Params.make ~network:Params.Sync ~n ~k ~d ~b in
  let rng = Csm_rng.create 0x0B5 in
  let init =
    Array.init k (fun _ ->
        Array.init machine.M.state_dim (fun _ -> CF.random rng))
  in
  let commands =
    Array.init k (fun _ ->
        Array.init machine.M.input_dim (fun _ -> CF.random rng))
  in
  let engine = E.create ~machine ~params ~init in
  let report =
    E.round ~scope engine ~commands ~byzantine:(fun i -> i >= n - b) ()
  in
  Alcotest.(check bool) "round decoded" true (report.E.decoded <> None)

(* The engine's phase spans are emitted by the coordinating domain in a
   fixed order; worker-domain spans (rs.decode) interleave by wall
   clock but their multiset is schedule-independent.  After the
   merge-sort by (start, id), both properties must hold at any domain
   width. *)
let nesting_deterministic () =
  let phase_names =
    [ "engine.round"; "engine.encode"; "engine.compute"; "engine.decode";
      "engine.reencode" ]
  in
  let capture width =
    traced (fun () ->
        Pool.with_domain_limit width (fun () -> small_round ~scope:Scope.null ());
        Span.records ())
  in
  let phases records =
    List.filter_map
      (fun (r : Span.record) ->
        if List.mem r.Span.name phase_names then
          Some (r.Span.name, r.Span.depth, r.Span.parent >= 0)
        else None)
      records
  in
  let name_counts records =
    List.sort String.compare
      (List.map (fun (r : Span.record) -> r.Span.name) records)
  in
  let seq = capture 1 in
  let par = capture 4 in
  Alcotest.(check (list (triple string int bool)))
    "phase spans identical across widths" (phases seq) (phases par);
  Alcotest.(check (list string))
    "span multiset identical across widths" (name_counts seq) (name_counts par);
  (* nesting: every phase sub-span is depth 1 under engine.round *)
  List.iter
    (fun (name, depth, has_parent) ->
      if name <> "engine.round" then begin
        Alcotest.(check int) (name ^ " depth") 1 depth;
        Alcotest.(check bool) (name ^ " parented") true has_parent
      end)
    (phases seq);
  (* ids strictly increase along the sorted single-domain record list *)
  let ids =
    List.filter_map
      (fun (r : Span.record) ->
        if List.mem r.Span.name phase_names then Some r.Span.id else None)
      seq
  in
  Alcotest.(check bool)
    "sorted by (start, id)" true
    (List.sort Int.compare ids = ids)

(* ----- a minimal JSON parser, enough to round-trip the exporter ----- *)

exception Bad of string

let parse_json (s : string) =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then s.[!pos] else raise (Bad "eof") in
  let advance () = incr pos in
  let rec skip_ws () =
    if !pos < n && (match s.[!pos] with ' ' | '\n' | '\t' | '\r' -> true | _ -> false)
    then begin advance (); skip_ws () end
  in
  let expect c =
    skip_ws ();
    if peek () <> c then raise (Bad (Printf.sprintf "expected %c at %d" c !pos));
    advance ()
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        (match peek () with
        | 'u' ->
          advance ();
          for _ = 1 to 4 do
            (match peek () with
            | '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> advance ()
            | _ -> raise (Bad "bad \\u escape"))
          done;
          Buffer.add_char b '?'
        | ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') as c ->
          advance ();
          Buffer.add_char b c
        | _ -> raise (Bad "bad escape"));
        go ()
      | c when Char.code c < 0x20 -> raise (Bad "raw control char in string")
      | c ->
        advance ();
        Buffer.add_char b c;
        go ()
    in
    go ();
    Buffer.contents b
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | '{' ->
      advance ();
      skip_ws ();
      if peek () = '}' then begin advance (); `Obj [] end
      else begin
        let rec members acc =
          let key = parse_string () in
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | ',' -> advance (); skip_ws (); members ((key, v) :: acc)
          | '}' -> advance (); `Obj (List.rev ((key, v) :: acc))
          | _ -> raise (Bad "bad object")
        in
        skip_ws ();
        members []
      end
    | '[' ->
      advance ();
      skip_ws ();
      if peek () = ']' then begin advance (); `List [] end
      else begin
        let rec elems acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | ',' -> advance (); elems (v :: acc)
          | ']' -> advance (); `List (List.rev (v :: acc))
          | _ -> raise (Bad "bad array")
        in
        elems []
      end
    | '"' -> `Str (parse_string ())
    | 't' -> pos := !pos + 4; `Bool true
    | 'f' -> pos := !pos + 5; `Bool false
    | 'n' -> pos := !pos + 4; `Null
    | '-' | '0' .. '9' ->
      let start = !pos in
      let num c =
        match c with
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while !pos < n && num s.[!pos] do advance () done;
      `Num (float_of_string (String.sub s start (!pos - start)))
    | c -> raise (Bad (Printf.sprintf "unexpected %c" c))
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then raise (Bad "trailing garbage");
  v

let exporter_round_trips () =
  let records =
    traced (fun () ->
        Span.with_ ~name:"outer"
          ~attrs:[ ("weird", "quote\"back\\slash\nnewline") ]
          (fun () ->
            Span.with_ ~name:"inner" (fun () -> ());
            Span.with_ ~name:"inner" (fun () -> ()));
        Span.records ())
  in
  Alcotest.(check int) "three spans" 3 (List.length records);
  let json = Exporter.chrome_trace records in
  (match parse_json (Json.to_string json) with
  | `Obj fields ->
    (match List.assoc "traceEvents" fields with
    | `List evs ->
      Alcotest.(check int) "three events" 3 (List.length evs);
      List.iter
        (function
          | `Obj ev ->
            List.iter
              (fun key ->
                Alcotest.(check bool) ("has " ^ key) true (List.mem_assoc key ev))
              [ "name"; "ph"; "ts"; "dur"; "pid"; "tid"; "args" ]
          | _ -> Alcotest.fail "event not an object")
        evs
    | _ -> Alcotest.fail "traceEvents not a list")
  | _ -> Alcotest.fail "trace not an object");
  (* the run-report building blocks parse too *)
  (match parse_json (Json.to_string (Exporter.host ~domains:4 ())) with
  | `Obj fields ->
    Alcotest.(check bool) "host has ocaml_version" true
      (List.mem_assoc "ocaml_version" fields)
  | _ -> Alcotest.fail "host not an object");
  match
    parse_json (Json.to_string (Exporter.span_summary_json (Summary.by_name records)))
  with
  | `List (_ :: _) -> ()
  | _ -> Alcotest.fail "summary not a non-empty list"

(* with tracing disabled, the instrumented wrapper is one atomic load:
   no allocation, and nothing is buffered *)
let disabled_fast_path () =
  Span.disable ();
  Span.reset ();
  let f = fun () -> () in
  (* warm up so the closure and any lazy setup are allocated already *)
  for _ = 1 to 10 do
    Span.with_ ~name:"noop" f
  done;
  let before = Gc.minor_words () in
  for _ = 1 to 10_000 do
    Span.with_ ~name:"noop" f
  done;
  let after = Gc.minor_words () in
  Alcotest.(check (float 0.0)) "no allocation when disabled" 0.0 (after -. before);
  Alcotest.(check int) "no records buffered" 0 (List.length (Span.records ()))

(* the span's sampled op deltas must agree with the ledger: the
   engine.round span covers exactly the scoped work of one round, and
   its children partition it *)
let op_deltas_match_ledger () =
  let ledger = Ledger.create () in
  let scope = Scope.of_ledger (module CF) ledger in
  let records = traced (fun () -> small_round ~scope (); Span.records ()) in
  let find name =
    match
      List.filter (fun (r : Span.record) -> r.Span.name = name) records
    with
    | [ r ] -> r
    | rs -> Alcotest.failf "expected one %s span, got %d" name (List.length rs)
  in
  let round = find "engine.round" in
  let la, lm, li = Ledger.op_totals ledger in
  Alcotest.(check (triple int int int))
    "round delta = ledger totals" (la, lm, li)
    (round.Span.d_adds, round.Span.d_muls, round.Span.d_invs);
  Alcotest.(check bool) "round did real work" true (la + lm + li > 0);
  (* children partition the round's ops (the corruption callback runs
     outside the ledger scope, so nothing leaks between phases) *)
  let sum =
    List.fold_left
      (fun (a, m, i) name ->
        let r = find name in
        (a + r.Span.d_adds, m + r.Span.d_muls, i + r.Span.d_invs))
      (0, 0, 0)
      [ "engine.encode"; "engine.compute"; "engine.decode"; "engine.reencode" ]
  in
  Alcotest.(check (triple int int int))
    "phase deltas partition the round" (la, lm, li) sum;
  (* the grand total also matches the weighted ledger accounting *)
  Alcotest.(check int)
    "weighted total consistent"
    (Ledger.grand_total ledger)
    (la + lm + (Counter.inv_weight * li))

(* ----- Json: the library parser round-trips its own emitter ----- *)

let json_parse_round_trip () =
  let doc =
    Json.Obj
      [
        ("schema", Json.Str "csm-test/1");
        ("pi", Json.Float Float.pi);
        (* nanosecond-scale duration: must survive emit/parse exactly *)
        ("ns", Json.Float 1.234567891e-9);
        ("denormal", Json.Float 5e-324);
        ("neg", Json.Int (-42));
        ("big", Json.Int max_int);
        ("esc", Json.Str "quote\"back\\slash\nnewline\ttab\001ctl");
        ("unicode", Json.Str "\xce\xbb \xce\xb3 \xce\xb2");
        ( "list",
          Json.List [ Json.Null; Json.Bool true; Json.Bool false; Json.Float 0.1 ]
        );
        ("nested", Json.Obj [ ("empty_list", Json.List []); ("empty_obj", Json.Obj []) ]);
      ]
  in
  let s = Json.to_string doc in
  let parsed = Json.parse s in
  (* parse ∘ emit is a fixed point on the emitted text *)
  Alcotest.(check string) "parse/re-emit fixed point" s (Json.to_string parsed);
  let fval key =
    match Option.bind (Json.member key parsed) Json.to_float_opt with
    | Some f -> f
    | None -> Alcotest.failf "missing float field %s" key
  in
  Alcotest.(check (float 0.0)) "pi exact" Float.pi (fval "pi");
  Alcotest.(check (float 0.0)) "nanoseconds exact" 1.234567891e-9 (fval "ns");
  Alcotest.(check (float 0.0)) "denormal exact" 5e-324 (fval "denormal");
  (match Option.bind (Json.member "esc" parsed) Json.to_string_opt with
  | Some str ->
    Alcotest.(check string) "escapes decode" "quote\"back\\slash\nnewline\ttab\001ctl" str
  | None -> Alcotest.fail "missing esc");
  (* shortest-form float text round-trips bit-exactly *)
  List.iter
    (fun f ->
      Alcotest.(check bool)
        (Printf.sprintf "float_repr round-trips %h" f)
        true
        (Float.equal (float_of_string (Json.float_repr f)) f))
    [ 0.1; 1.0 /. 3.0; 1e300; 5e-324; 1.234567891e-9; Float.pi; -0.0 ];
  (* malformed input is rejected, not silently truncated *)
  match Json.parse "{} trailing" with
  | exception Json.Parse_error _ -> ()
  | _ -> Alcotest.fail "trailing garbage accepted"

(* ----- metrics registry ----- *)

(* run [f] with the metrics registry enabled and empty; restore the
   disabled state and drop the test instruments afterwards *)
let metered f =
  Metric.reset ();
  Metric.enable ();
  Fun.protect
    ~finally:(fun () ->
      Metric.disable ();
      Metric.reset ())
    f

(* the quantile estimate is the upper bound of the bucket holding the
   exact nearest-rank value — i.e. within one bucket of the truth *)
let hist_quantile_within_bucket () =
  metered (fun () ->
      let buckets = Metric.log_buckets ~lo:1.0 ~factor:2.0 ~count:10 () in
      let h = Metric.histogram ~buckets "test_quantile" in
      let data = Array.init 100 (fun i -> float_of_int (i + 1)) in
      Array.iter (Metric.observe h) data;
      let snap = Metric.snapshot h in
      Alcotest.(check int) "count" 100 snap.Metric.s_count;
      let bucket_ub v =
        match Array.find_opt (fun b -> v <= b) buckets with
        | Some b -> b
        | None -> infinity
      in
      List.iter
        (fun q ->
          let rank = max 1 (int_of_float (ceil (q *. 100.))) in
          let exact = data.(rank - 1) in
          let est = Metric.quantile snap q in
          Alcotest.(check bool)
            (Printf.sprintf "q=%.2f estimate covers the exact value" q)
            true (est >= exact);
          Alcotest.(check (float 0.0))
            (Printf.sprintf "q=%.2f lands in the exact value's bucket" q)
            (bucket_ub exact) est)
        [ 0.01; 0.25; 0.5; 0.9; 0.95; 0.99; 1.0 ];
      Alcotest.(check (float 0.0))
        "empty histogram quantile is 0"
        0.0
        (Metric.quantile (Metric.snapshot (Metric.histogram ~buckets "test_empty")) 0.5))

let snapshot_eq =
  Alcotest.testable
    (fun fmt (s : Metric.snapshot) ->
      Format.fprintf fmt "{count=%d; sum=%g; counts=[%s]}" s.Metric.s_count
        s.Metric.s_sum
        (String.concat ";"
           (Array.to_list (Array.map string_of_int s.Metric.s_counts))))
    ( = )

(* merge is associative and commutative, and per-domain shards merge to
   the same snapshot at any domain width (integer-valued observations
   keep the float sum exact in any accumulation order) *)
let hist_merge_schedule_independent () =
  metered (fun () ->
      let buckets = Metric.log_buckets ~lo:1.0 ~factor:2.0 ~count:12 () in
      let mk name obs =
        let h = Metric.histogram ~buckets name in
        List.iter (Metric.observe h) obs;
        Metric.snapshot h
      in
      (* include underflow (0.5), interior, and overflow (5000) buckets *)
      let a = mk "test_merge_a" [ 1.0; 3.0; 700.0 ]
      and b = mk "test_merge_b" [ 2.0; 2.0; 64.0 ]
      and c = mk "test_merge_c" [ 5000.0; 0.5 ] in
      Alcotest.check snapshot_eq "commutative" (Metric.merge a b)
        (Metric.merge b a);
      Alcotest.check snapshot_eq "associative"
        (Metric.merge (Metric.merge a b) c)
        (Metric.merge a (Metric.merge b c));
      let snap_at width =
        let h =
          Metric.histogram ~buckets (Printf.sprintf "test_width_%d" width)
        in
        Pool.with_domain_limit width (fun () ->
            Pool.parallel_for 1000 (fun i ->
                Metric.observe h (float_of_int (1 + (i mod 100)))));
        Metric.snapshot h
      in
      let seq = snap_at 1 in
      Alcotest.(check int) "sequential count" 1000 seq.Metric.s_count;
      List.iter
        (fun w ->
          Alcotest.check snapshot_eq
            (Printf.sprintf "width %d snapshot = sequential" w)
            seq (snap_at w))
        [ 2; 4; 8 ])

(* with metrics disabled every record call is one atomic load: no
   allocation, and nothing reaches the instruments *)
let metric_disabled_fast_path () =
  Metric.disable ();
  let c = Metric.counter "test_disabled_total" in
  let g = Metric.gauge "test_disabled_gauge" in
  let h = Metric.histogram "test_disabled_seconds" in
  let f = fun () -> () in
  (* warm up so closures and shards-to-be are already allocated *)
  for _ = 1 to 10 do
    Metric.inc c;
    Metric.set g 1.0;
    Metric.add g 1.0;
    Metric.observe h 2.0;
    Metric.time h f
  done;
  let before = Gc.minor_words () in
  for _ = 1 to 10_000 do
    Metric.inc c;
    Metric.set g 1.0;
    Metric.add g 1.0;
    Metric.observe h 2.0;
    Metric.time h f
  done;
  let after = Gc.minor_words () in
  Alcotest.(check (float 0.0)) "no allocation when disabled" 0.0 (after -. before);
  Alcotest.(check int) "counter untouched" 0 (Metric.counter_value c);
  Alcotest.(check (float 0.0)) "gauge untouched" 0.0 (Metric.gauge_value g);
  Alcotest.(check int) "histogram untouched" 0 (Metric.snapshot h).Metric.s_count

(* ----- Prometheus exposition: line-format checker ----- *)

(* The validator behind `make metrics-smoke`: every line of an
   exposition document must be a HELP/TYPE header or a well-formed
   sample, every sample's family must have a TYPE header, label values
   must use only the three legal escapes, and the value must parse. *)

let is_name_start = function 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true | _ -> false
let is_name_char c = is_name_start c || match c with '0' .. '9' -> true | _ -> false

let check_sample_line families line =
  let n = String.length line in
  let pos = ref 0 in
  while !pos < n && is_name_char line.[!pos] do incr pos done;
  if !pos = 0 || not (is_name_start line.[0]) then
    Alcotest.failf "bad sample name: %S" line;
  let name = String.sub line 0 !pos in
  if !pos < n && line.[!pos] = '{' then begin
    incr pos;
    let rec labels () =
      let start = !pos in
      while !pos < n && is_name_char line.[!pos] do incr pos done;
      if !pos = start then Alcotest.failf "empty label name: %S" line;
      if !pos >= n || line.[!pos] <> '=' then Alcotest.failf "expected '=': %S" line;
      incr pos;
      if !pos >= n || line.[!pos] <> '"' then
        Alcotest.failf "label value not quoted: %S" line;
      incr pos;
      let rec value () =
        if !pos >= n then Alcotest.failf "unterminated label value: %S" line
        else
          match line.[!pos] with
          | '"' -> incr pos
          | '\\' ->
            if !pos + 1 >= n then Alcotest.failf "dangling escape: %S" line;
            (match line.[!pos + 1] with
            | '\\' | '"' | 'n' -> pos := !pos + 2
            | bad -> Alcotest.failf "illegal escape \\%c: %S" bad line);
            value ()
          | _ ->
            incr pos;
            value ()
      in
      value ();
      if !pos < n && line.[!pos] = ',' then begin
        incr pos;
        labels ()
      end
      else if !pos < n && line.[!pos] = '}' then incr pos
      else Alcotest.failf "bad label block: %S" line
    in
    labels ()
  end;
  if !pos >= n || line.[!pos] <> ' ' then
    Alcotest.failf "expected space before value: %S" line;
  incr pos;
  let v = String.sub line !pos (n - !pos) in
  (match float_of_string_opt v with
  | Some _ -> ()
  | None ->
    if not (List.mem v [ "+Inf"; "-Inf"; "NaN" ]) then
      Alcotest.failf "bad sample value %S: %S" v line);
  let declared nm = Hashtbl.mem families nm in
  let histo_series suffix =
    String.ends_with ~suffix name
    && declared (String.sub name 0 (String.length name - String.length suffix))
  in
  if
    not
      (declared name || histo_series "_bucket" || histo_series "_sum"
     || histo_series "_count")
  then Alcotest.failf "sample %s has no TYPE header" name

let check_header_line families line =
  match String.split_on_char ' ' line with
  | "#" :: (("HELP" | "TYPE") as kw) :: name :: rest ->
    if
      name = ""
      || (not (is_name_start name.[0]))
      || not (String.for_all is_name_char name)
    then Alcotest.failf "bad metric name in header: %S" line;
    if kw = "TYPE" then begin
      match rest with
      | [ ("counter" | "gauge" | "histogram" | "summary" | "untyped") ] ->
        Hashtbl.replace families name ()
      | _ -> Alcotest.failf "bad TYPE line: %S" line
    end
  | _ -> Alcotest.failf "bad comment line: %S" line

let check_prom_format doc =
  (match String.length doc with
  | 0 -> Alcotest.fail "empty exposition"
  | n ->
    if doc.[n - 1] <> '\n' then
      Alcotest.fail "exposition must end with a newline");
  let families = Hashtbl.create 16 in
  List.iter
    (fun line ->
      if line <> "" then
        if line.[0] = '#' then check_header_line families line
        else check_sample_line families line)
    (String.split_on_char '\n' doc)

let prom_exposition_well_formed () =
  metered (fun () ->
      let c =
        Metric.counter ~help:"messages"
          ~labels:[ ("node", "0"); ("dir", "sent") ]
          "csm_test_messages_total"
      in
      Metric.inc ~by:3 c;
      let g =
        Metric.gauge ~help:"help with \\ backslash\nand newline"
          ~labels:[ ("node", "quote\"back\\slash\nnl") ]
          "csm_test_suspicion"
      in
      Metric.set g 1.5;
      let h =
        Metric.histogram ~help:"latency"
          ~buckets:(Metric.log_buckets ~lo:1.0 ~factor:2.0 ~count:4 ())
          "csm_test_latency_seconds"
      in
      List.iter (Metric.observe h) [ 0.5; 3.0; 100.0 ];
      let doc = Prom.render () in
      check_prom_format doc;
      let lines = String.split_on_char '\n' doc in
      let has line = List.mem line lines in
      List.iter
        (fun expected ->
          Alcotest.(check bool) (Printf.sprintf "has %S" expected) true
            (has expected))
        [
          "csm_test_messages_total{dir=\"sent\",node=\"0\"} 3";
          "csm_test_suspicion{node=\"quote\\\"back\\\\slash\\nnl\"} 1.5";
          "csm_test_latency_seconds_bucket{le=\"+Inf\"} 3";
          "csm_test_latency_seconds_sum 103.5";
          "csm_test_latency_seconds_count 3";
          "# TYPE csm_test_latency_seconds histogram";
        ];
      (* cumulative bucket counts are non-decreasing *)
      let bucket_counts =
        List.filter_map
          (fun line ->
            if
              String.length line > 0
              && String.starts_with ~prefix:"csm_test_latency_seconds_bucket{"
                   line
            then
              match String.rindex_opt line ' ' with
              | Some i ->
                Some
                  (int_of_string
                     (String.sub line (i + 1) (String.length line - i - 1)))
              | None -> None
            else None)
          lines
      in
      Alcotest.(check bool) "cumulative buckets non-decreasing" true
        (List.sort Int.compare bucket_counts = bucket_counts);
      (* the checker actually rejects malformed documents *)
      List.iter
        (fun bad ->
          match check_prom_format bad with
          | exception _ -> ()
          | () -> Alcotest.failf "checker accepted malformed %S" bad)
        [
          "no_type_header 1\n";
          "# TYPE x counter\nx{l=\"bad\\q\"} 1\n";
          "# TYPE x counter\nx notanumber\n";
          "# TYPE x counter\nx 1";
        ])

(* ----- hybrid logical clock ----- *)

let hlc_pack_accessors () =
  let s = Clock.pack ~ms:1234 ~count:7 in
  Alcotest.(check int) "ms component" 1234 (Clock.ms s);
  Alcotest.(check int) "count component" 7 (Clock.count s);
  Alcotest.(check (float 1e-9)) "seconds" 1.234 (Clock.seconds s);
  (* causal order: counter breaks ties within a millisecond *)
  Alcotest.(check bool) "count orders within ms" true
    (Clock.compare (Clock.pack ~ms:1234 ~count:7) (Clock.pack ~ms:1234 ~count:8)
    < 0);
  Alcotest.(check bool) "ms dominates count" true
    (Clock.compare
       (Clock.pack ~ms:1234 ~count:65535)
       (Clock.pack ~ms:1235 ~count:0)
    < 0);
  List.iter
    (fun (label, f) ->
      match f () with
      | exception Invalid_argument _ -> ()
      | (_ : Clock.stamp) -> Alcotest.failf "pack accepted %s" label)
    [
      ("negative ms", fun () -> Clock.pack ~ms:(-1) ~count:0);
      ("negative count", fun () -> Clock.pack ~ms:0 ~count:(-1));
      ("oversized count", fun () -> Clock.pack ~ms:0 ~count:0x10000);
    ]

let hlc_now_monotone () =
  let prev = ref (Clock.now ()) in
  for _ = 1 to 1000 do
    let s = Clock.now () in
    if Clock.compare !prev s >= 0 then
      Alcotest.failf "now not strictly increasing: %a then %a" Clock.pp !prev
        Clock.pp s;
    prev := s
  done;
  (* peek reads without advancing *)
  let p = Clock.peek () in
  Alcotest.(check bool) "peek does not advance" true
    (Clock.compare p (Clock.peek ()) = 0);
  Alcotest.(check bool) "peek at least last now" true (Clock.compare !prev p <= 0)

let hlc_observe_merges () =
  let local = Clock.now () in
  (* a remote stamp from a host whose wall clock runs 5s ahead *)
  let remote = Clock.pack ~ms:(Clock.ms local + 5000) ~count:3 in
  let recv = Clock.observe remote in
  Alcotest.(check bool) "recv after remote" true (Clock.compare remote recv < 0);
  Alcotest.(check bool) "recv after prior local" true
    (Clock.compare local recv < 0);
  Alcotest.(check bool) "later sends after recv" true
    (Clock.compare recv (Clock.now ()) < 0);
  (* causality pulled the HLC ahead of this host's wall clock *)
  Alcotest.(check bool) "skew is observable" true
    (Clock.skew_seconds (Clock.peek ()) >= 0.0);
  (* a stale remote stamp merges as a no-op on the physical component *)
  let before = Clock.peek () in
  let after = Clock.observe (Clock.pack ~ms:1 ~count:1) in
  Alcotest.(check bool) "stale observe keeps going forward" true
    (Clock.compare before after < 0);
  Alcotest.(check int) "stale observe keeps local ms" (Clock.ms before)
    (Clock.ms after)

let hlc_join_and_wire () =
  let a = Clock.pack ~ms:10 ~count:9
  and b = Clock.pack ~ms:11 ~count:2
  and c = Clock.pack ~ms:11 ~count:7 in
  Alcotest.(check int) "join = max" (max a (max b c))
    (Clock.join a (Clock.join b c));
  Alcotest.(check int) "join commutes" (Clock.join a b) (Clock.join b a);
  Alcotest.(check int) "join associative"
    (Clock.join (Clock.join a b) c)
    (Clock.join a (Clock.join b c));
  Alcotest.(check int) "join idempotent" a (Clock.join a a);
  (* wire encoding round-trips every component *)
  List.iter
    (fun s ->
      Alcotest.(check int) "of_wire inverts to_wire" s
        (Clock.of_wire (Clock.to_wire s)))
    [ a; b; c; Clock.pack ~ms:0 ~count:0; Clock.now () ];
  (* an untrusted out-of-range u64 clamps to the no-op stamp 0 *)
  Alcotest.(check int) "negative u64 clamps" 0 (Clock.of_wire Int64.minus_one);
  Alcotest.(check int) "max u64 clamps" 0 (Clock.of_wire Int64.min_int)

let hlc_mono_clock () =
  let m1 = Clock.mono () in
  let m2 = Clock.mono () in
  Alcotest.(check bool) "mono positive" true (m1 > 0.0);
  Alcotest.(check bool) "mono never decreases" true (m2 >= m1)

(* ----- flight recorder ring ----- *)

let flight_ring_bounds () =
  (match Flight.create ~capacity:0 ~node:0 () with
  | exception Invalid_argument _ -> ()
  | (_ : Flight.t) -> Alcotest.fail "created a zero-capacity ring");
  let f = Flight.create ~capacity:4 ~node:2 () in
  Alcotest.(check int) "node id" 2 (Flight.node f);
  Alcotest.(check int) "capacity" 4 (Flight.capacity f);
  for round = 0 to 5 do
    Flight.record f ~hlc:(Clock.now ()) ~round "phase"
  done;
  Alcotest.(check int) "recorded counts overwrites" 6 (Flight.recorded f);
  let entries = Flight.entries f in
  Alcotest.(check int) "ring keeps capacity entries" 4 (List.length entries);
  Alcotest.(check (list int)) "oldest first, newest kept" [ 2; 3; 4; 5 ]
    (List.map (fun e -> e.Flight.f_round) entries);
  let hlcs = List.map (fun e -> e.Flight.f_hlc) entries in
  Alcotest.(check bool) "entries in HLC order" true
    (List.sort Clock.compare hlcs = hlcs)

let flight_entry_json_total () =
  let f = Flight.create ~capacity:2 ~node:1 () in
  Flight.record f ~trace:0x1D5EEDL
    ~attrs:[ ("dst", "3"); ("frame", "Share") ]
    ~hlc:(Clock.now ()) ~round:7 "send";
  let e = List.hd (Flight.entries f) in
  (match Flight.decode_entry_json (Flight.entry_json e) with
  | None -> Alcotest.fail "entry_json did not decode"
  | Some d ->
    Alcotest.(check int) "hlc survives" e.Flight.f_hlc d.Flight.f_hlc;
    Alcotest.(check int64) "trace survives" e.Flight.f_trace d.Flight.f_trace;
    Alcotest.(check int) "round survives" e.Flight.f_round d.Flight.f_round;
    Alcotest.(check string) "kind survives" e.Flight.f_kind d.Flight.f_kind;
    Alcotest.(check (list (pair string string))) "attrs survive"
      e.Flight.f_attrs d.Flight.f_attrs);
  (* decoding is total on malformed documents *)
  List.iter
    (fun (label, j) ->
      match Flight.decode_entry_json j with
      | None -> ()
      | Some _ -> Alcotest.failf "decoded malformed entry: %s" label)
    [
      ("non-object", Json.Str "x");
      ("empty object", Json.Obj []);
      ( "wrong field type",
        Json.Obj [ ("hlc", Json.Str "nope"); ("round", Json.Int 1) ] );
    ]

(* ----- telemetry bundles and aggregation ----- *)

let agg_bundle_round_trip () =
  let f = Flight.create ~capacity:8 ~node:3 () in
  Flight.record f ~trace:42L
    ~attrs:[ ("dst", "0"); ("frame", "Output") ]
    ~hlc:(Clock.now ()) ~round:1 "send";
  Flight.record f ~hlc:(Clock.now ()) ~round:1 "phase";
  let payload = Agg.bundle_payload ~node:3 ~flight:f () in
  (match Agg.decode_bundle payload with
  | None -> Alcotest.fail "own bundle did not decode"
  | Some b ->
    Alcotest.(check int) "node id" 3 b.Agg.b_node;
    Alcotest.(check int) "pid" (Unix.getpid ()) b.Agg.b_pid;
    Alcotest.(check bool) "snapshot hlc set" true (b.Agg.b_hlc > 0);
    Alcotest.(check int) "flight total" (Flight.recorded f)
      b.Agg.b_flight_recorded;
    Alcotest.(check int) "flight entries" 2 (List.length b.Agg.b_flight);
    Alcotest.(check (list string)) "flight kinds in order" [ "send"; "phase" ]
      (List.map (fun e -> e.Flight.f_kind) b.Agg.b_flight));
  (* Byzantine telemetry payloads are dropped, not fatal *)
  List.iter
    (fun (label, payload) ->
      match Agg.decode_bundle payload with
      | None -> ()
      | Some _ -> Alcotest.failf "decoded %s" label)
    [
      ("garbage", "\x00\xffnot json");
      ("wrong schema", Json.to_string (Json.Obj [ ("schema", Json.Str "x/1") ]));
      ( "schema without node",
        Json.to_string (Json.Obj [ ("schema", Json.Str Agg.schema) ]) );
    ]

let mk_bundle ?(views = []) ?(flight = []) ?(scope = Agg.Process) ~node ~pid
    ~hlc () =
  {
    Agg.b_node = node;
    b_pid = pid;
    b_scope = scope;
    b_hlc = hlc;
    b_views = views;
    b_spans = [];
    b_events = [];
    b_flight = flight;
    b_flight_recorded = List.length flight;
  }

let agg_dedup_by_pid () =
  let bundles =
    [
      mk_bundle ~node:1 ~pid:77 ~hlc:10 ();
      mk_bundle ~node:0 ~pid:77 ~hlc:20 ();
      mk_bundle ~node:2 ~pid:88 ~hlc:5 ();
    ]
  in
  let reps = Agg.dedup bundles in
  Alcotest.(check (list int)) "one rep per pid, sorted by node" [ 0; 2 ]
    (List.map (fun b -> b.Agg.b_node) reps);
  Alcotest.(check int) "latest snapshot wins" 20
    (List.find (fun b -> b.Agg.b_pid = 77) reps).Agg.b_hlc;
  Alcotest.(check int) "max_hlc joins all" 20 (Agg.max_hlc bundles)

(* Node-scope bundles key on (pid, node index): two forked nodes on
   different hosts may collide on pid, and neither may swallow the
   other's telemetry — the regression the scope-aware dedup fixes. *)
let agg_dedup_scope () =
  let bundles =
    [
      mk_bundle ~scope:Agg.Node ~node:1 ~pid:77 ~hlc:10 ();
      mk_bundle ~scope:Agg.Node ~node:0 ~pid:77 ~hlc:20 ();
      mk_bundle ~scope:Agg.Node ~node:1 ~pid:77 ~hlc:30 ();
      mk_bundle ~scope:Agg.Node ~node:2 ~pid:88 ~hlc:5 ();
    ]
  in
  let reps = Agg.dedup bundles in
  Alcotest.(check (list int)) "one rep per (pid, node), sorted" [ 0; 1; 2 ]
    (List.map (fun b -> b.Agg.b_node) reps);
  Alcotest.(check int) "latest snapshot wins per node" 30
    (List.find (fun b -> b.Agg.b_node = 1) reps).Agg.b_hlc;
  (* a Process-scope loopback bundle still dedups on pid alone *)
  let mixed =
    [
      mk_bundle ~scope:Agg.Process ~node:0 ~pid:99 ~hlc:1 ();
      mk_bundle ~scope:Agg.Process ~node:1 ~pid:99 ~hlc:2 ();
      mk_bundle ~scope:Agg.Node ~node:1 ~pid:99 ~hlc:3 ();
    ]
  in
  Alcotest.(check int) "process scope still keys on pid" 2
    (List.length (Agg.dedup mixed))

let counter_view name v =
  {
    Metric.name;
    help = "";
    kind = Metric.K_counter;
    samples = [ { Metric.labels = [ ("node", "0") ]; value = Metric.V_counter v } ];
  }

let gauge_view name v =
  {
    Metric.name;
    help = "";
    kind = Metric.K_gauge;
    samples = [ { Metric.labels = []; value = Metric.V_gauge v } ];
  }

let agg_merge_views () =
  let a = [ counter_view "csm_x_total" 3; gauge_view "csm_g" 1.5 ]
  and b = [ counter_view "csm_x_total" 4; gauge_view "csm_g" 2.5 ] in
  let value name merged =
    match List.find_opt (fun (v : Metric.view) -> v.Metric.name = name) merged with
    | Some { Metric.samples = [ { Metric.value; _ } ]; _ } -> value
    | _ -> Alcotest.failf "family %s missing from merge" name
  in
  let m = Agg.merge_views [ a; b ] in
  (match value "csm_x_total" m with
  | Metric.V_counter n -> Alcotest.(check int) "counters sum" 7 n
  | _ -> Alcotest.fail "counter kind lost");
  (match value "csm_g" m with
  | Metric.V_gauge g -> Alcotest.(check (float 0.0)) "gauges take max" 2.5 g
  | _ -> Alcotest.fail "gauge kind lost");
  (* arrival order of node bundles must not matter *)
  Alcotest.(check string) "merge commutes"
    (Prom.render_views (Agg.merge_views [ a; b ]))
    (Prom.render_views (Agg.merge_views [ b; a ]));
  Alcotest.(check string) "merge associative"
    (Prom.render_views (Agg.merge_views [ a; b; b ]))
    (Prom.render_views
       (Agg.merge_views [ Agg.merge_views [ a; b ]; b ]))

let agg_cross_flow_pairing () =
  Alcotest.(check string) "flow key shape" "1/Share/0->1"
    (Agg.flow_key ~round:1 ~frame:"Share" ~src:0 ~dst:1);
  let send = Flight.create ~capacity:8 ~node:0 () in
  let recv = Flight.create ~capacity:8 ~node:1 () in
  Flight.record send
    ~attrs:[ ("dst", "1"); ("frame", "Share") ]
    ~hlc:(Clock.now ()) ~round:1 "send";
  Flight.record recv
    ~attrs:[ ("src", "0"); ("frame", "Share") ]
    ~hlc:(Clock.now ()) ~round:1 "recv";
  (* unmatched: wrong round, wrong kind, missing peer attr *)
  Flight.record recv
    ~attrs:[ ("src", "0"); ("frame", "Share") ]
    ~hlc:(Clock.now ()) ~round:2 "recv";
  Flight.record recv ~attrs:[ ("frame", "Share") ] ~hlc:(Clock.now ()) ~round:1
    "recv";
  Flight.record recv ~hlc:(Clock.now ()) ~round:1 "phase";
  let bundles =
    [
      mk_bundle ~node:0 ~pid:100 ~hlc:1 ~flight:(Flight.entries send) ();
      mk_bundle ~node:1 ~pid:101 ~hlc:2 ~flight:(Flight.entries recv) ();
    ]
  in
  Alcotest.(check int) "exactly the matched pair" 1 (Agg.cross_flows bundles);
  (* the merged trace carries the pair as s/f flow events *)
  let trace = Json.to_string (Agg.cluster_trace bundles) in
  let has sub =
    let n = String.length sub in
    let rec go i =
      i + n <= String.length trace && (String.sub trace i n = sub || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool) "flow start emitted" true (has "\"ph\":\"s\"");
  Alcotest.(check bool) "flow end emitted" true (has "\"ph\":\"f\"")

(* ----- event log: monotonic timestamps ----- *)

let event_mono_field () =
  let saved = Event.current_level () in
  Event.reset ();
  Event.set_level (Some Event.Debug);
  Fun.protect
    ~finally:(fun () ->
      Event.set_level saved;
      Event.reset ())
    (fun () ->
      Event.emit Event.Info "a";
      Event.emit ~attrs:[ ("k", "v") ] Event.Warn "b";
      Event.emit Event.Debug "c";
      let evs = Event.recent () in
      Alcotest.(check (list string)) "all three recorded" [ "a"; "b"; "c" ]
        (List.map (fun (e : Event.t) -> e.Event.name) evs);
      let seqs = List.map (fun (e : Event.t) -> e.Event.seq) evs in
      Alcotest.(check bool) "seq strictly increasing" true
        (List.sort_uniq Int.compare seqs = seqs);
      let monos = List.map (fun (e : Event.t) -> e.Event.mono) evs in
      Alcotest.(check bool) "mono positive" true (List.for_all (fun m -> m > 0.0) monos);
      Alcotest.(check bool) "mono never decreases" true
        (List.sort Float.compare monos = monos))

(* ----- Prometheus escaping edge cases ----- *)

let prom_escaping_edge_cases () =
  metered (fun () ->
      let bs = "\\" in
      List.iter
        (fun (name, label_value) ->
          Metric.set (Metric.gauge ~labels:[ ("l", label_value) ] name) 1.0)
        [
          ("csm_test_esc_empty", "");
          ("csm_test_esc_bs", bs);
          ("csm_test_esc_nl", "\n");
          ("csm_test_esc_trailing_bs", "x" ^ bs);
          ("csm_test_esc_mixed", "a\"b" ^ bs ^ "c\nd");
        ];
      let doc = Prom.render () in
      check_prom_format doc;
      let lines = String.split_on_char '\n' doc in
      List.iter
        (fun expected ->
          Alcotest.(check bool) (Printf.sprintf "has %S" expected) true
            (List.mem expected lines))
        [
          "csm_test_esc_empty{l=\"\"} 1";
          "csm_test_esc_bs{l=\"" ^ bs ^ bs ^ "\"} 1";
          "csm_test_esc_nl{l=\"" ^ bs ^ "n\"} 1";
          "csm_test_esc_trailing_bs{l=\"x" ^ bs ^ bs ^ "\"} 1";
          "csm_test_esc_mixed{l=\"a" ^ bs ^ "\"b" ^ bs ^ bs ^ "c" ^ bs
          ^ "nd\"} 1";
        ];
      (* label_block output is itself parseable by the line checker *)
      Alcotest.(check string) "label_block escapes"
        ("{l=\"a" ^ bs ^ bs ^ "b\"}")
        (Prom.label_block [ ("l", "a" ^ bs ^ "b") ]))

(* ----- live streaming telemetry: windows, deltas, alerts, http ----- *)

module Window = Csm_obs.Window
module Alert = Csm_obs.Alert
module Live = Csm_obs.Live
module Http = Csm_obs.Http

(* All window tests drive the clock explicitly through ?now — nothing
   here depends on wall time. *)
let window_rate_basics () =
  let w = Window.create ~bucket_s:1.0 ~span_s:4.0 () in
  Alcotest.(check (float 0.0)) "empty rate" 0.0 (Window.rate ~now:10.0 w);
  Window.mark ~now:10.0 w;
  Window.add ~now:10.5 w 10.0;
  Window.add ~now:11.5 w 10.0;
  Alcotest.(check (float 0.0)) "total" 20.0 (Window.total ~now:12.0 w);
  Alcotest.(check (float 1e-9)) "rate over covered span" 10.0
    (Window.rate ~now:12.0 w);
  (* far past the span every bucket has expired *)
  Alcotest.(check (float 0.0)) "expired" 0.0 (Window.total ~now:100.0 w)

let window_rotation_no_double_count () =
  let w = Window.create ~bucket_s:1.0 ~span_s:4.0 () in
  Window.add ~now:0.5 w 7.0;
  (* the ring has ceil(span/bucket)+1 = 5 slots; time 5.5 reuses slot
     0 — the old count must be reclaimed, not added to *)
  Window.add ~now:5.5 w 3.0;
  Alcotest.(check (float 0.0)) "slot reclaimed on reuse" 3.0
    (Window.total ~now:5.5 w);
  (* an in-span revisit of the same bucket accumulates *)
  Window.add ~now:5.9 w 2.0;
  Alcotest.(check (float 0.0)) "same live bucket accumulates" 5.0
    (Window.total ~now:6.0 w)

let window_hist_quantiles () =
  let h = Window.hist_create ~buckets:[| 0.01; 0.1; 1.0 |] () in
  for _ = 1 to 90 do
    Window.hist_observe ~now:1.0 h 0.05
  done;
  for _ = 1 to 10 do
    Window.hist_observe ~now:1.0 h 0.5
  done;
  let s = Window.hist_snapshot ~now:1.5 h in
  Alcotest.(check int) "count" 100 s.Metric.s_count;
  let p50 = Metric.quantile s 0.5 and p99 = Metric.quantile s 0.99 in
  Alcotest.(check bool) "p50 in the 0.01..0.1 bucket" true
    (p50 > 0.01 && p50 <= 0.1);
  Alcotest.(check bool) "p99 in the 0.1..1.0 bucket" true
    (p99 > 0.1 && p99 <= 1.0);
  (* rotation: far in the future everything has aged out *)
  Alcotest.(check int) "expired" 0
    (Window.hist_snapshot ~now:1000.0 h).Metric.s_count

(* integer-valued floats keep every sum exact, so the merge laws can
   demand structural equality *)
let slots_arb =
  QCheck.make
    ~print:(fun s ->
      String.concat ";"
        (List.map (fun (i, v) -> Printf.sprintf "%d:%g" i v) s))
    QCheck.Gen.(
      small_list (pair (int_bound 20) (map float_of_int (int_bound 1000))))

let qcheck_window_merge_assoc =
  QCheck.Test.make ~name:"window slot merge associative" ~count:200
    (QCheck.triple slots_arb slots_arb slots_arb)
    (fun (a, b, c) ->
      Window.merge a (Window.merge b c) = Window.merge (Window.merge a b) c)

let qcheck_window_merge_comm =
  QCheck.Test.make ~name:"window slot merge commutative" ~count:200
    (QCheck.pair slots_arb slots_arb)
    (fun (a, b) -> Window.merge a b = Window.merge b a)

let qcheck_window_merge_total =
  QCheck.Test.make ~name:"window slot merge preserves mass" ~count:200
    (QCheck.pair slots_arb slots_arb)
    (fun (a, b) ->
      Window.slots_total (Window.merge a b)
      = Window.slots_total a +. Window.slots_total b)

(* a synthetic delta payload: one node's cumulative counter value *)
let delta_payload ~node ~seq ~full v =
  Agg.delta_payload ~node ~scope:Agg.Node ~seq ~full
    ~views:
      [
        {
          Metric.name = "csm_test_live_total";
          help = "";
          kind = Metric.K_counter;
          samples =
            [ { Metric.labels = [ ("node", string_of_int node) ];
                value = Metric.V_counter v } ];
        };
      ]
    ~events:[] ()

let live_delta_merge_idempotent () =
  let p1 = delta_payload ~node:0 ~seq:1 ~full:true 5 in
  let p2 = delta_payload ~node:0 ~seq:2 ~full:false 8 in
  let p3 = delta_payload ~node:0 ~seq:3 ~full:false 12 in
  let ordered = Live.create ~k:1 () in
  List.iter (fun p -> ignore (Live.apply ordered p)) [ p1; p2; p3 ];
  let chaotic = Live.create ~k:1 () in
  (* duplicated and reordered: the per-source seq plus cumulative
     values must converge to the same state *)
  List.iter
    (fun p -> ignore (Live.apply chaotic p))
    [ p1; p1; p2; p1; p3; p2; p3; p3 ];
  Alcotest.(check string) "same merged views"
    (Prom.render_views (Live.node_views ordered))
    (Prom.render_views (Live.node_views chaotic));
  let applied, stale, rejected = Live.deltas chaotic in
  Alcotest.(check int) "three applied" 3 applied;
  Alcotest.(check int) "five stale" 5 stale;
  Alcotest.(check int) "none rejected" 0 rejected;
  Alcotest.(check bool) "garbage rejected" true
    (Live.apply chaotic "\x00nope" = `Malformed);
  (* a fresh source (different node) does not collide *)
  Alcotest.(check bool) "other node applies" true
    (Live.apply chaotic (delta_payload ~node:1 ~seq:1 ~full:true 2) = `Applied)

let live_lambda_window () =
  let live = Live.create ~k:2 () in
  Live.mark_start ~now:100.0 live;
  List.iter (fun t -> Live.note_commit ~now:t live) [ 100.5; 101.0; 101.5 ];
  (* 3 commits x k=2 over the 2s covered span *)
  Alcotest.(check (float 1e-6)) "windowed lambda" 3.0
    (Live.lambda ~now:102.0 live);
  Alcotest.(check int) "commits" 3 (Live.commits live)

let alert_parse_fixpoint () =
  List.iter
    (fun spec ->
      match Alert.parse spec with
      | None -> Alcotest.failf "parse %S failed" spec
      | Some r ->
        Alcotest.(check string) ("fixpoint " ^ spec) (Alert.to_string r)
          (Alert.to_string
             (Option.get (Alert.parse (Alert.to_string r)))))
    [
      "csm_node_suspicion>0";
      "skew:csm_hlc_skew_seconds>=0.25";
      "floor:csm_window_lambda<10";
      "csm_x<=3.5";
      " spaced : csm_y > 1 ";
    ];
  List.iter
    (fun spec ->
      Alcotest.(check bool) ("rejects " ^ spec) true (Alert.parse spec = None))
    [ ""; "nope"; "m>"; ">1"; "bad name:m>1"; "m>nan"; "m!1"; ":m>1" ]

let alert_engine_edges () =
  let rule = Alert.rule ~name:"r" ~metric:"m" ~cmp:Alert.Gt 5.0 in
  let e = Alert.create [ rule ] in
  let values v metric = if metric = "m" then v else [] in
  Alcotest.(check int) "quiet below threshold" 0
    (List.length (Alert.evaluate e ~now:1.0 (values [ 4.0 ])));
  Alcotest.(check bool) "not firing" true (Alert.firing e = []);
  (* rising edge fires once, stays firing without re-edging *)
  Alcotest.(check int) "rising edge" 1
    (List.length (Alert.evaluate e ~now:2.0 (values [ 4.0; 6.0 ])));
  Alcotest.(check int) "no re-edge while firing" 0
    (List.length (Alert.evaluate e ~now:3.0 (values [ 7.0 ])));
  Alcotest.(check (option (float 0.0))) "first_fired time" (Some 2.0)
    (Alert.first_fired e "r");
  (* falling edge resolves; a later rise is a new edge, first stays *)
  Alcotest.(check int) "resolve" 0
    (List.length (Alert.evaluate e ~now:4.0 (values [ 1.0 ])));
  Alcotest.(check bool) "not firing after resolve" true (Alert.firing e = []);
  Alcotest.(check int) "re-fire" 1
    (List.length (Alert.evaluate e ~now:5.0 (values [ 9.0 ])));
  Alcotest.(check (option (float 0.0))) "first time sticky" (Some 2.0)
    (Alert.first_fired e "r");
  Alcotest.(check bool) "fired_ever" true (Alert.fired_ever e);
  (* no data = not firing *)
  ignore (Alert.evaluate e ~now:6.0 (fun _ -> []));
  Alcotest.(check bool) "missing family quiet" true (Alert.firing e = []);
  match Alert.views e with
  | [ v ] ->
    Alcotest.(check string) "gauge family" "csm_alerts_firing" v.Metric.name
  | _ -> Alcotest.fail "expected one synthesized family"

let http_serve_scrape () =
  let hits = ref 0 in
  let srv =
    Http.serve ~port:0 (fun path ->
        match path with
        | "/metrics" ->
          incr hits;
          Some (Http.text "csm_up 1\n")
        | "/healthz" -> Some (Http.text "ok\n")
        | _ -> None)
  in
  Fun.protect
    ~finally:(fun () -> Http.stop srv)
    (fun () ->
      let port = Http.port srv in
      (match Http.get ~port "/metrics" with
      | Some (200, body) -> Alcotest.(check string) "body" "csm_up 1\n" body
      | other ->
        Alcotest.failf "GET /metrics: %s"
          (match other with
          | Some (c, _) -> string_of_int c
          | None -> "no response"));
      (match Http.get ~port "/healthz" with
      | Some (200, body) -> Alcotest.(check string) "healthz" "ok\n" body
      | _ -> Alcotest.fail "GET /healthz failed");
      (match Http.get ~port "/nope" with
      | Some (404, _) -> ()
      | _ -> Alcotest.fail "expected 404");
      Alcotest.(check int) "handler ran once" 1 !hits);
  (* stop is idempotent and frees the port *)
  Http.stop srv

let event_overwrite_counts_drops () =
  let saved = Event.current_level () in
  Event.reset ();
  Event.set_level (Some Event.Debug);
  Fun.protect
    ~finally:(fun () ->
      Event.set_level saved;
      Event.reset ())
    (fun () ->
      Alcotest.(check int) "clean" 0 (Event.dropped ());
      for i = 1 to Event.capacity + 5 do
        Event.emit Event.Info (string_of_int i)
      done;
      Alcotest.(check int) "overwrites counted" 5 (Event.dropped ());
      Alcotest.(check int) "ring holds capacity" Event.capacity
        (List.length (Event.recent ()));
      (* since: the tail strictly after a seq *)
      let all = Event.recent () in
      let nth = List.nth all (List.length all - 3) in
      Alcotest.(check int) "since tail" 2
        (List.length (Event.since nth.Event.seq)))

let suites =
  [
    ( "obs",
      [
        Alcotest.test_case "nesting deterministic across widths" `Quick
          nesting_deterministic;
        Alcotest.test_case "exporter round-trips valid JSON" `Quick
          exporter_round_trips;
        Alcotest.test_case "disabled fast path allocates nothing" `Quick
          disabled_fast_path;
        Alcotest.test_case "op deltas match ledger" `Quick
          op_deltas_match_ledger;
        Alcotest.test_case "Json parser round-trips the emitter" `Quick
          json_parse_round_trip;
        Alcotest.test_case "histogram quantile within one bucket" `Quick
          hist_quantile_within_bucket;
        Alcotest.test_case "histogram merge schedule-independent" `Quick
          hist_merge_schedule_independent;
        Alcotest.test_case "metric disabled path allocates nothing" `Quick
          metric_disabled_fast_path;
        Alcotest.test_case "Prometheus exposition well-formed" `Quick
          prom_exposition_well_formed;
        Alcotest.test_case "Prometheus escaping edge cases" `Quick
          prom_escaping_edge_cases;
        Alcotest.test_case "HLC pack/accessors" `Quick hlc_pack_accessors;
        Alcotest.test_case "HLC now strictly monotone" `Quick hlc_now_monotone;
        Alcotest.test_case "HLC observe merges remote stamps" `Quick
          hlc_observe_merges;
        Alcotest.test_case "HLC join laws and wire codec" `Quick
          hlc_join_and_wire;
        Alcotest.test_case "monotonic clock never decreases" `Quick
          hlc_mono_clock;
        Alcotest.test_case "flight ring bounds and order" `Quick
          flight_ring_bounds;
        Alcotest.test_case "flight entry JSON total codec" `Quick
          flight_entry_json_total;
        Alcotest.test_case "telemetry bundle round trip" `Quick
          agg_bundle_round_trip;
        Alcotest.test_case "bundle dedup by pid" `Quick agg_dedup_by_pid;
        Alcotest.test_case "bundle dedup scope-aware" `Quick agg_dedup_scope;
        Alcotest.test_case "view merge sums/maxes, order-free" `Quick
          agg_merge_views;
        Alcotest.test_case "cross-node flow pairing" `Quick
          agg_cross_flow_pairing;
        Alcotest.test_case "event log monotonic timestamps" `Quick
          event_mono_field;
      ] );
    ( "live",
      [
        Alcotest.test_case "window rate over covered span" `Quick
          window_rate_basics;
        Alcotest.test_case "window rotation never double-counts" `Quick
          window_rotation_no_double_count;
        Alcotest.test_case "window histogram quantiles + expiry" `Quick
          window_hist_quantiles;
        QCheck_alcotest.to_alcotest ~long:false qcheck_window_merge_assoc;
        QCheck_alcotest.to_alcotest ~long:false qcheck_window_merge_comm;
        QCheck_alcotest.to_alcotest ~long:false qcheck_window_merge_total;
        Alcotest.test_case "delta merge idempotent under dup/reorder" `Quick
          live_delta_merge_idempotent;
        Alcotest.test_case "lambda window from commit ticks" `Quick
          live_lambda_window;
        Alcotest.test_case "alert spec parse fixpoint" `Quick
          alert_parse_fixpoint;
        Alcotest.test_case "alert engine edge detection" `Quick
          alert_engine_edges;
        Alcotest.test_case "http scrape endpoint serves and 404s" `Quick
          http_serve_scrape;
        Alcotest.test_case "event ring overwrite counts drops" `Quick
          event_overwrite_counts_drops;
      ] );
  ]
