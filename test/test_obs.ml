(* Observability layer: span tracer determinism, exporter JSON
   round-trip, the disabled fast path, and op-delta attribution against
   the metrics ledger. *)

module Span = Csm_obs.Span
module Summary = Csm_obs.Summary
module Exporter = Csm_obs.Exporter
module Json = Csm_obs.Json
module Pool = Csm_parallel.Pool
module Counter = Csm_metrics.Counter
module Ledger = Csm_metrics.Ledger
module Scope = Csm_metrics.Scope
module CF = Csm_field.Counted.Make (Csm_field.Fp.Default)
module E = Csm_core.Engine.Make (CF)
module M = E.M
module Params = Csm_core.Params

(* run [f] with tracing on and a clean buffer; always restore the
   disabled state so other suites see zero tracer overhead *)
let traced f =
  Span.reset ();
  Span.enable ();
  Fun.protect
    ~finally:(fun () ->
      Span.disable ();
      Span.reset ())
    f

let small_round ~scope () =
  let d = 2 and n = 11 and k = 3 and b = 2 in
  let machine = M.degree_machine d in
  let params = Params.make ~network:Params.Sync ~n ~k ~d ~b in
  let rng = Csm_rng.create 0x0B5 in
  let init =
    Array.init k (fun _ ->
        Array.init machine.M.state_dim (fun _ -> CF.random rng))
  in
  let commands =
    Array.init k (fun _ ->
        Array.init machine.M.input_dim (fun _ -> CF.random rng))
  in
  let engine = E.create ~machine ~params ~init in
  let report =
    E.round ~scope engine ~commands ~byzantine:(fun i -> i >= n - b) ()
  in
  Alcotest.(check bool) "round decoded" true (report.E.decoded <> None)

(* The engine's phase spans are emitted by the coordinating domain in a
   fixed order; worker-domain spans (rs.decode) interleave by wall
   clock but their multiset is schedule-independent.  After the
   merge-sort by (start, id), both properties must hold at any domain
   width. *)
let nesting_deterministic () =
  let phase_names =
    [ "engine.round"; "engine.encode"; "engine.compute"; "engine.decode";
      "engine.reencode" ]
  in
  let capture width =
    traced (fun () ->
        Pool.with_domain_limit width (fun () -> small_round ~scope:Scope.null ());
        Span.records ())
  in
  let phases records =
    List.filter_map
      (fun (r : Span.record) ->
        if List.mem r.Span.name phase_names then
          Some (r.Span.name, r.Span.depth, r.Span.parent >= 0)
        else None)
      records
  in
  let name_counts records =
    List.sort compare
      (List.map (fun (r : Span.record) -> r.Span.name) records)
  in
  let seq = capture 1 in
  let par = capture 4 in
  Alcotest.(check (list (triple string int bool)))
    "phase spans identical across widths" (phases seq) (phases par);
  Alcotest.(check (list string))
    "span multiset identical across widths" (name_counts seq) (name_counts par);
  (* nesting: every phase sub-span is depth 1 under engine.round *)
  List.iter
    (fun (name, depth, has_parent) ->
      if name <> "engine.round" then begin
        Alcotest.(check int) (name ^ " depth") 1 depth;
        Alcotest.(check bool) (name ^ " parented") true has_parent
      end)
    (phases seq);
  (* ids strictly increase along the sorted single-domain record list *)
  let ids =
    List.filter_map
      (fun (r : Span.record) ->
        if List.mem r.Span.name phase_names then Some r.Span.id else None)
      seq
  in
  Alcotest.(check bool)
    "sorted by (start, id)" true
    (List.sort compare ids = ids)

(* ----- a minimal JSON parser, enough to round-trip the exporter ----- *)

exception Bad of string

let parse_json (s : string) =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then s.[!pos] else raise (Bad "eof") in
  let advance () = incr pos in
  let rec skip_ws () =
    if !pos < n && (match s.[!pos] with ' ' | '\n' | '\t' | '\r' -> true | _ -> false)
    then begin advance (); skip_ws () end
  in
  let expect c =
    skip_ws ();
    if peek () <> c then raise (Bad (Printf.sprintf "expected %c at %d" c !pos));
    advance ()
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        (match peek () with
        | 'u' ->
          advance ();
          for _ = 1 to 4 do
            (match peek () with
            | '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> advance ()
            | _ -> raise (Bad "bad \\u escape"))
          done;
          Buffer.add_char b '?'
        | ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') as c ->
          advance ();
          Buffer.add_char b c
        | _ -> raise (Bad "bad escape"));
        go ()
      | c when Char.code c < 0x20 -> raise (Bad "raw control char in string")
      | c ->
        advance ();
        Buffer.add_char b c;
        go ()
    in
    go ();
    Buffer.contents b
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | '{' ->
      advance ();
      skip_ws ();
      if peek () = '}' then begin advance (); `Obj [] end
      else begin
        let rec members acc =
          let key = parse_string () in
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | ',' -> advance (); skip_ws (); members ((key, v) :: acc)
          | '}' -> advance (); `Obj (List.rev ((key, v) :: acc))
          | _ -> raise (Bad "bad object")
        in
        skip_ws ();
        members []
      end
    | '[' ->
      advance ();
      skip_ws ();
      if peek () = ']' then begin advance (); `List [] end
      else begin
        let rec elems acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | ',' -> advance (); elems (v :: acc)
          | ']' -> advance (); `List (List.rev (v :: acc))
          | _ -> raise (Bad "bad array")
        in
        elems []
      end
    | '"' -> `Str (parse_string ())
    | 't' -> pos := !pos + 4; `Bool true
    | 'f' -> pos := !pos + 5; `Bool false
    | 'n' -> pos := !pos + 4; `Null
    | '-' | '0' .. '9' ->
      let start = !pos in
      let num c =
        match c with
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while !pos < n && num s.[!pos] do advance () done;
      `Num (float_of_string (String.sub s start (!pos - start)))
    | c -> raise (Bad (Printf.sprintf "unexpected %c" c))
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then raise (Bad "trailing garbage");
  v

let exporter_round_trips () =
  let records =
    traced (fun () ->
        Span.with_ ~name:"outer"
          ~attrs:[ ("weird", "quote\"back\\slash\nnewline") ]
          (fun () ->
            Span.with_ ~name:"inner" (fun () -> ());
            Span.with_ ~name:"inner" (fun () -> ()));
        Span.records ())
  in
  Alcotest.(check int) "three spans" 3 (List.length records);
  let json = Exporter.chrome_trace records in
  (match parse_json (Json.to_string json) with
  | `Obj fields ->
    (match List.assoc "traceEvents" fields with
    | `List evs ->
      Alcotest.(check int) "three events" 3 (List.length evs);
      List.iter
        (function
          | `Obj ev ->
            List.iter
              (fun key ->
                Alcotest.(check bool) ("has " ^ key) true (List.mem_assoc key ev))
              [ "name"; "ph"; "ts"; "dur"; "pid"; "tid"; "args" ]
          | _ -> Alcotest.fail "event not an object")
        evs
    | _ -> Alcotest.fail "traceEvents not a list")
  | _ -> Alcotest.fail "trace not an object");
  (* the run-report building blocks parse too *)
  (match parse_json (Json.to_string (Exporter.host ~domains:4 ())) with
  | `Obj fields ->
    Alcotest.(check bool) "host has ocaml_version" true
      (List.mem_assoc "ocaml_version" fields)
  | _ -> Alcotest.fail "host not an object");
  match
    parse_json (Json.to_string (Exporter.span_summary_json (Summary.by_name records)))
  with
  | `List (_ :: _) -> ()
  | _ -> Alcotest.fail "summary not a non-empty list"

(* with tracing disabled, the instrumented wrapper is one atomic load:
   no allocation, and nothing is buffered *)
let disabled_fast_path () =
  Span.disable ();
  Span.reset ();
  let f = fun () -> () in
  (* warm up so the closure and any lazy setup are allocated already *)
  for _ = 1 to 10 do
    Span.with_ ~name:"noop" f
  done;
  let before = Gc.minor_words () in
  for _ = 1 to 10_000 do
    Span.with_ ~name:"noop" f
  done;
  let after = Gc.minor_words () in
  Alcotest.(check (float 0.0)) "no allocation when disabled" 0.0 (after -. before);
  Alcotest.(check int) "no records buffered" 0 (List.length (Span.records ()))

(* the span's sampled op deltas must agree with the ledger: the
   engine.round span covers exactly the scoped work of one round, and
   its children partition it *)
let op_deltas_match_ledger () =
  let ledger = Ledger.create () in
  let scope = Scope.of_ledger (module CF) ledger in
  let records = traced (fun () -> small_round ~scope (); Span.records ()) in
  let find name =
    match
      List.filter (fun (r : Span.record) -> r.Span.name = name) records
    with
    | [ r ] -> r
    | rs -> Alcotest.failf "expected one %s span, got %d" name (List.length rs)
  in
  let round = find "engine.round" in
  let la, lm, li = Ledger.op_totals ledger in
  Alcotest.(check (triple int int int))
    "round delta = ledger totals" (la, lm, li)
    (round.Span.d_adds, round.Span.d_muls, round.Span.d_invs);
  Alcotest.(check bool) "round did real work" true (la + lm + li > 0);
  (* children partition the round's ops (the corruption callback runs
     outside the ledger scope, so nothing leaks between phases) *)
  let sum =
    List.fold_left
      (fun (a, m, i) name ->
        let r = find name in
        (a + r.Span.d_adds, m + r.Span.d_muls, i + r.Span.d_invs))
      (0, 0, 0)
      [ "engine.encode"; "engine.compute"; "engine.decode"; "engine.reencode" ]
  in
  Alcotest.(check (triple int int int))
    "phase deltas partition the round" (la, lm, li) sum;
  (* the grand total also matches the weighted ledger accounting *)
  Alcotest.(check int)
    "weighted total consistent"
    (Ledger.grand_total ledger)
    (la + lm + (Counter.inv_weight * li))

let suites =
  [
    ( "obs",
      [
        Alcotest.test_case "nesting deterministic across widths" `Quick
          nesting_deterministic;
        Alcotest.test_case "exporter round-trips valid JSON" `Quick
          exporter_round_trips;
        Alcotest.test_case "disabled fast path allocates nothing" `Quick
          disabled_fast_path;
        Alcotest.test_case "op deltas match ledger" `Quick
          op_deltas_match_ledger;
      ] );
  ]
