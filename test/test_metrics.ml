(* Metrics: counters, counted-field wrapper, ledger, throughput formula. *)

open Csm_metrics
open Csm_field

let counter_basics () =
  let c = Counter.create () in
  Counter.add c;
  Counter.add c;
  Counter.mul c;
  Counter.inv c;
  Alcotest.(check int) "adds" 2 (Counter.adds c);
  Alcotest.(check int) "muls" 1 (Counter.muls c);
  Alcotest.(check int) "invs" 1 (Counter.invs c);
  Alcotest.(check int) "total" (2 + 1 + Counter.inv_weight) (Counter.total c);
  Counter.reset c;
  Alcotest.(check int) "reset" 0 (Counter.total c)

let counter_diff () =
  let c = Counter.create () in
  Counter.add c;
  let before = Counter.snapshot c in
  Counter.mul c;
  Counter.mul c;
  Counter.inv c;
  let da, dm, di = Counter.diff ~before ~after:(Counter.snapshot c) in
  Alcotest.(check int) "diff adds" 0 da;
  Alcotest.(check int) "diff muls" 2 dm;
  Alcotest.(check int) "diff invs" 1 di;
  Alcotest.(check int)
    "diff total weighted" (2 + Counter.inv_weight)
    (Counter.total_of (da, dm, di));
  (* the copy is a frozen counter; snapshot of the copy matches *)
  let frozen = Counter.copy c in
  Counter.add c;
  Alcotest.(check int) "copy frozen adds" 1 (Counter.adds frozen);
  Alcotest.(check int) "live adds" 2 (Counter.adds c)

module CF = Counted.Make (Fp.F97)

let counted_field_counts () =
  let c = Csm_metrics.Counter.create () in
  CF.with_counter c (fun () ->
      let a = CF.of_int 5 and b = CF.of_int 9 in
      ignore (CF.add a b);
      ignore (CF.mul a b);
      ignore (CF.inv a);
      ignore (CF.sub a b));
  Alcotest.(check int) "adds" 2 (Counter.adds c);
  Alcotest.(check int) "muls" 1 (Counter.muls c);
  Alcotest.(check int) "invs" 1 (Counter.invs c)

let counted_field_correct () =
  (* the wrapper must not change arithmetic *)
  let rng = Csm_rng.create 4 in
  for _ = 1 to 200 do
    let a = Csm_rng.int rng 97 and b = 1 + Csm_rng.int rng 96 in
    let x = CF.of_int a and y = CF.of_int b in
    Alcotest.(check int) "add" ((a + b) mod 97) (CF.to_int (CF.add x y));
    Alcotest.(check int) "mul" (a * b mod 97) (CF.to_int (CF.mul x y));
    Alcotest.(check int) "div-mul" a (CF.to_int (CF.mul (CF.div x y) y))
  done

(* A domain where no counter was ever installed runs on the null
   sentinel: ops execute uncounted (the short-circuit), and a counter
   installed afterwards sees exactly its own scope. *)
let counted_unsampled_short_circuit () =
  let d =
    Domain.spawn (fun () ->
        ignore (CF.mul (CF.of_int 3) (CF.of_int 5));
        ignore (CF.add CF.one CF.one);
        let c = Counter.create () in
        CF.with_counter c (fun () -> ignore (CF.mul CF.one CF.one));
        (Counter.muls c, Counter.adds c))
  in
  let muls, adds = Domain.join d in
  Alcotest.(check int) "only the sampled mul" 1 muls;
  Alcotest.(check int) "unsampled add not attributed" 0 adds

(* The batch kernels must charge exactly the scalar loop's op counts:
   len muls + len adds for dot and axpy, len muls for scale, and
   |coeffs|·len of each for eval_many. *)
module CG = Counted.Make (Gf2m.Gf256)

let counted_batch_exact () =
  let b =
    match CG.batch () with
    | Some b -> b
    | None -> Alcotest.fail "counted gf256 has no batch kernels"
  in
  let rng = Csm_rng.create 0xBA7C in
  let n = 13 in
  let xs = Array.init n (fun _ -> CG.random rng) in
  let ys = Array.init n (fun _ -> CG.random rng) in
  let px = b.Field_intf.pack xs and py = b.Field_intf.pack ys in
  let measure f =
    let c = Counter.create () in
    CG.with_counter c f;
    (Counter.adds c, Counter.muls c)
  in
  Alcotest.(check (pair int int))
    "dot" (n, n)
    (measure (fun () -> ignore (b.Field_intf.dot px py)));
  Alcotest.(check (pair int int))
    "axpy" (n, n)
    (measure (fun () ->
         b.Field_intf.axpy ~acc:(Bytes.copy py) ~c:xs.(0) ~x:px));
  Alcotest.(check (pair int int))
    "scale" (0, n)
    (measure (fun () -> ignore (b.Field_intf.scale ~c:xs.(0) ~x:px)));
  let m = 5 in
  let coeffs = Array.init m (fun _ -> CG.random rng) in
  Alcotest.(check (pair int int))
    "eval_many"
    (m * n, m * n)
    (measure (fun () -> ignore (b.Field_intf.eval_many ~coeffs ~xs:px)));
  (* and the batch results equal the (counted) scalar loops *)
  let scalar_dot =
    Array.fold_left CG.add CG.zero (Array.map2 CG.mul xs ys)
  in
  Alcotest.(check bool) "dot value" true
    (CG.equal (b.Field_intf.dot px py) scalar_dot)

let with_counter_restores () =
  let outer = Counter.create () in
  let inner = Counter.create () in
  CF.set_counter outer;
  CF.with_counter inner (fun () -> ignore (CF.add CF.one CF.one));
  ignore (CF.add CF.one CF.one);
  Alcotest.(check int) "inner got 1" 1 (Counter.adds inner);
  Alcotest.(check int) "outer got 1" 1 (Counter.adds outer);
  (* restores on exception too *)
  (try
     CF.with_counter inner (fun () -> failwith "boom")
   with Failure _ -> ());
  ignore (CF.add CF.one CF.one);
  Alcotest.(check int) "outer got 2" 2 (Counter.adds outer)

let ledger_roles () =
  let l = Ledger.create () in
  let c0 = Ledger.node l 0 in
  Counter.mul c0;
  Counter.mul c0;
  let w = Ledger.counter l "worker" in
  Counter.add w;
  Alcotest.(check int) "node-0 total" 2 (Ledger.total l (Ledger.node_role 0));
  Alcotest.(check int) "worker total" 1 (Ledger.total l "worker");
  Alcotest.(check int) "grand" 3 (Ledger.grand_total l);
  Alcotest.(check (list string)) "roles" [ "node-0"; "worker" ] (Ledger.roles l);
  let costs = Ledger.per_node_costs l ~n:2 in
  Alcotest.(check (array int)) "per-node" [| 2; 0 |] costs

let throughput_formula () =
  (* K commands, per-node costs all equal c: lambda = K / c *)
  let l = Ledger.throughput ~commands:10 ~node_costs:[| 5; 5; 5; 5 |] in
  Alcotest.(check (float 1e-9)) "uniform" 2.0 l;
  (* unequal costs average *)
  let l2 = Ledger.throughput ~commands:8 ~node_costs:[| 2; 6 |] in
  Alcotest.(check (float 1e-9)) "mean" 2.0 l2

let suites =
  [
    ( "metrics",
      [
        Alcotest.test_case "counter basics" `Quick counter_basics;
        Alcotest.test_case "counter diff" `Quick counter_diff;
        Alcotest.test_case "counted field counts" `Quick counted_field_counts;
        Alcotest.test_case "counted field is transparent" `Quick
          counted_field_correct;
        Alcotest.test_case "with_counter restores" `Quick with_counter_restores;
        Alcotest.test_case "unsampled domain short-circuits" `Quick
          counted_unsampled_short_circuit;
        Alcotest.test_case "batch kernels charge exact op counts" `Quick
          counted_batch_exact;
        Alcotest.test_case "ledger roles" `Quick ledger_roles;
        Alcotest.test_case "throughput formula" `Quick throughput_formula;
      ] );
  ]
