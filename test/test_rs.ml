(* Reed–Solomon: round-trips, random error patterns up to the decoding
   radius for both decoders, failure beyond the radius, erasure-shortened
   decoding (the partially synchronous path), and agreement-set (τ)
   correctness used by the Section-6.2 verification. *)

open Csm_field
open Csm_rs
module F = Fp.Default
module RS = Reed_solomon.Make (F)
module P = RS.P

let rng = Csm_rng.create 0x5EED

let points n = Array.init n (fun i -> F.of_int (i + 1))

let random_message k =
  if k = 1 then P.constant (F.random rng) else P.random rng ~degree:(k - 1)

let check_decodes ~what decoder ~k pairs expect =
  match decoder ~k pairs with
  | None -> Alcotest.failf "%s: decoding failed" what
  | Some d ->
    if not (P.equal d.RS.poly expect) then
      Alcotest.failf "%s: wrong polynomial" what

let roundtrip_no_errors () =
  for _ = 1 to 40 do
    let k = 1 + Csm_rng.int rng 12 in
    let n = k + Csm_rng.int rng 20 in
    let msg = random_message k in
    let pts = points n in
    let word = RS.encode ~message:msg ~points:pts in
    let fast = RS.encode_fast ~message:msg ~points:pts in
    Array.iteri
      (fun i x ->
        if not (F.equal x fast.(i)) then Alcotest.fail "encode_fast mismatch")
      word;
    let pairs = Array.map2 (fun x y -> (x, y)) pts word in
    check_decodes ~what:"bw clean" RS.decode_bw ~k pairs msg;
    check_decodes ~what:"gao clean" RS.decode_gao ~k pairs msg
  done

let decodes_up_to_radius () =
  for _ = 1 to 60 do
    let k = 1 + Csm_rng.int rng 8 in
    let extra = 2 + Csm_rng.int rng 16 in
    let n = k + extra in
    let e_max = RS.max_errors ~n ~k in
    let e = Csm_rng.int rng (e_max + 1) in
    let msg = random_message k in
    let pts = points n in
    let word = RS.encode ~message:msg ~points:pts in
    let corrupted, positions = RS.corrupt rng ~count:e word in
    let pairs = Array.map2 (fun x y -> (x, y)) pts corrupted in
    (match RS.decode_bw ~k pairs with
    | None -> Alcotest.failf "bw failed with e=%d <= %d (n=%d k=%d)" e e_max n k
    | Some d ->
      if not (P.equal d.RS.poly msg) then Alcotest.fail "bw wrong poly";
      if d.RS.errors <> positions then
        Alcotest.fail "bw reported wrong error positions");
    match RS.decode_gao ~k pairs with
    | None -> Alcotest.failf "gao failed with e=%d <= %d" e e_max
    | Some d ->
      if not (P.equal d.RS.poly msg) then Alcotest.fail "gao wrong poly";
      if d.RS.errors <> positions then
        Alcotest.fail "gao reported wrong error positions"
  done

let agreement_set_certificate () =
  (* |τ| >= n - e and τ ∪ errors partitions 1..n *)
  let k = 4 and n = 15 in
  let e_max = RS.max_errors ~n ~k in
  let msg = random_message k in
  let pts = points n in
  let word = RS.encode ~message:msg ~points:pts in
  let corrupted, _ = RS.corrupt rng ~count:e_max word in
  let pairs = Array.map2 (fun x y -> (x, y)) pts corrupted in
  match RS.decode ~k pairs with
  | None -> Alcotest.fail "decode failed"
  | Some d ->
    Alcotest.(check bool)
      "|tau| >= n - e" true
      (List.length d.RS.agreement >= n - e_max);
    let all = List.sort Int.compare (d.RS.agreement @ d.RS.errors) in
    Alcotest.(check (list int)) "partition" (List.init n (fun i -> i)) all

let fails_beyond_radius () =
  (* With e_max + 1 adversarial errors the decoder must not return the
     original message as a certified decode... it may either fail or
     return a different codeword that satisfies the certificate; what it
     must never do is certify a polynomial that disagrees with n-e of
     the received values.  We additionally construct a targeted attack:
     corrupt e_max+1 positions toward a *different* codeword, and check
     the decoder does not return the original. *)
  for _ = 1 to 30 do
    let k = 1 + Csm_rng.int rng 6 in
    let n = k + 2 + Csm_rng.int rng 10 in
    let e_max = RS.max_errors ~n ~k in
    let msg = random_message k in
    let other = random_message k in
    QCheck.assume (not (P.equal msg other));
    let pts = points n in
    let word = RS.encode ~message:msg ~points:pts in
    let other_word = RS.encode ~message:other ~points:pts in
    (* Move e_max+1 positions toward the other codeword. *)
    let w = Array.copy word in
    let moved = ref 0 in
    (try
       for i = 0 to n - 1 do
         if !moved > e_max then raise Exit;
         if not (F.equal w.(i) other_word.(i)) then begin
           w.(i) <- other_word.(i);
           incr moved
         end
       done
     with Exit -> ());
    if !moved = e_max + 1 then begin
      let pairs = Array.map2 (fun x y -> (x, y)) pts w in
      match RS.decode ~k pairs with
      | None -> ()
      | Some d ->
        (* any certified output must satisfy the agreement bound *)
        Alcotest.(check bool)
          "certificate holds" true
          (List.length d.RS.agreement >= n - e_max)
    end
  done

let erasure_decoding () =
  (* Partial-sync path: only n - b symbols arrive, up to b of them wrong.
     Decode the shortened code: need 2e <= (n - b) - k. *)
  for _ = 1 to 40 do
    let k = 1 + Csm_rng.int rng 6 in
    let b = 1 + Csm_rng.int rng 4 in
    (* choose n so that the shortened code still corrects b errors *)
    let n = k + (3 * b) + Csm_rng.int rng 6 in
    let msg = random_message k in
    let pts = points n in
    let word = RS.encode ~message:msg ~points:pts in
    (* withhold b random symbols *)
    let withheld = Csm_rng.sample rng ~n ~k:b in
    let keep =
      Array.of_list
        (List.filter
           (fun i -> not (Array.mem i withheld))
           (List.init n (fun i -> i)))
    in
    let short_pts = Array.map (fun i -> pts.(i)) keep in
    let short_word = Array.map (fun i -> word.(i)) keep in
    let m = Array.length short_word in
    let e_cap = RS.max_errors ~n:m ~k in
    let e = min b e_cap in
    let corrupted, _ = RS.corrupt rng ~count:e short_word in
    let pairs = Array.map2 (fun x y -> (x, y)) short_pts corrupted in
    check_decodes ~what:"erasure+error" RS.decode_gao ~k pairs msg
  done

let decoders_agree () =
  (* On arbitrary (possibly undecodable) inputs, BW and Gao either both
     fail or both return the same polynomial. *)
  for _ = 1 to 60 do
    let k = 1 + Csm_rng.int rng 5 in
    let n = k + Csm_rng.int rng 12 in
    let pts = points n in
    let values = Array.init n (fun _ -> F.random rng) in
    let pairs = Array.map2 (fun x y -> (x, y)) pts values in
    match (RS.decode_bw ~k pairs, RS.decode_gao ~k pairs) with
    | None, None -> ()
    | Some a, Some b ->
      if not (P.equal a.RS.poly b.RS.poly) then
        Alcotest.fail "decoders disagree on output"
    | Some _, None | None, Some _ ->
      Alcotest.fail "one decoder succeeded, the other failed"
  done

(* Regression: decoding a codeword of the ZERO polynomial with errors.
   The Gao remainder sequence collapses to zero in one division here;
   an early version returned the pre-collapse remainder and failed. *)
let zero_codeword_with_errors () =
  List.iter
    (fun (k, n) ->
      let e = RS.max_errors ~n ~k in
      let pts = points n in
      let word = Array.make n F.zero in
      let corrupted, _ = RS.corrupt rng ~count:e word in
      let pairs = Array.map2 (fun x y -> (x, y)) pts corrupted in
      (match RS.decode_gao ~k pairs with
      | Some d when P.is_zero d.RS.poly -> ()
      | Some _ -> Alcotest.fail "gao: wrong poly for zero codeword"
      | None -> Alcotest.fail "gao: failed on zero codeword");
      match RS.decode_bw ~k pairs with
      | Some d when P.is_zero d.RS.poly -> ()
      | Some _ -> Alcotest.fail "bw: wrong poly for zero codeword"
      | None -> Alcotest.fail "bw: failed on zero codeword")
    [ (3, 5); (3, 9); (1, 7); (5, 15) ]

let max_errors_formula () =
  Alcotest.(check int) "n=7,k=3" 2 (RS.max_errors ~n:7 ~k:3);
  Alcotest.(check int) "n=8,k=3" 2 (RS.max_errors ~n:8 ~k:3);
  Alcotest.(check int) "n=9,k=3" 3 (RS.max_errors ~n:9 ~k:3);
  Alcotest.(check int) "n=k" 0 (RS.max_errors ~n:5 ~k:5)

let gf256_rs () =
  (* The classic RS(255, k) field also works end to end. *)
  let module G = Gf2m.Gf256 in
  let module R = Reed_solomon.Make (G) in
  let module PG = R.P in
  let r = Csm_rng.create 3 in
  for _ = 1 to 10 do
    let k = 1 + Csm_rng.int r 8 in
    let n = k + 6 in
    let msg = if k = 1 then PG.constant (G.random r) else PG.random r ~degree:(k - 1) in
    let pts = Array.init n (fun i -> G.of_int (i + 1)) in
    let word = R.encode ~message:msg ~points:pts in
    let corrupted, _ = R.corrupt r ~count:(R.max_errors ~n ~k) word in
    let pairs = Array.map2 (fun x y -> (x, y)) pts corrupted in
    match R.decode ~k pairs with
    | None -> Alcotest.fail "gf256 decode failed"
    | Some d ->
      if not (PG.equal d.R.poly msg) then Alcotest.fail "gf256 wrong poly"
  done

(* ----- optimistic fast path ----- *)

let optimistic_hit () =
  (* clean word through a prepared context: full agreement, no errors *)
  for _ = 1 to 20 do
    let k = 1 + Csm_rng.int rng 8 in
    let n = k + 2 + Csm_rng.int rng 16 in
    let msg = random_message k in
    let pts = points n in
    let word = RS.encode ~message:msg ~points:pts in
    let pairs = Array.map2 (fun x y -> (x, y)) pts word in
    let ctx = RS.prepare_fast ~k pts in
    match RS.decode_optimistic ~ctx ~k pairs with
    | None -> Alcotest.fail "hit path failed on clean word"
    | Some d ->
      if not (P.equal d.RS.poly msg) then Alcotest.fail "hit wrong poly";
      Alcotest.(check (list int)) "no errors" [] d.RS.errors;
      Alcotest.(check int) "full agreement" n (List.length d.RS.agreement)
  done

let optimistic_fallback_matches_gao () =
  (* within the radius the optimistic decoder must equal Gao exactly,
     whether the fast path was attempted (and missed) or disabled *)
  for _ = 1 to 40 do
    let k = 1 + Csm_rng.int rng 6 in
    let n = k + 2 + Csm_rng.int rng 14 in
    let e_max = RS.max_errors ~n ~k in
    let e = if e_max = 0 then 0 else 1 + Csm_rng.int rng e_max in
    let msg = random_message k in
    let pts = points n in
    let word = RS.encode ~message:msg ~points:pts in
    let corrupted, positions = RS.corrupt rng ~count:e word in
    let pairs = Array.map2 (fun x y -> (x, y)) pts corrupted in
    (match RS.decode_optimistic ~k pairs with
    | None -> Alcotest.fail "optimistic failed within radius"
    | Some d ->
      if not (P.equal d.RS.poly msg) then Alcotest.fail "optimistic wrong poly";
      if e > 0 && d.RS.errors <> positions then
        Alcotest.fail "optimistic wrong error positions");
    match RS.decode ~algorithm:RS.Optimistic_fallback_only ~k pairs with
    | None -> Alcotest.fail "fallback-only failed within radius"
    | Some d ->
      if not (P.equal d.RS.poly msg) then Alcotest.fail "fallback-only wrong poly"
  done

let optimistic_erasure_rescue () =
  (* Corrupt beyond the full-code radius: every plain decoder fails,
     but with the liars suspected the shortened decode recovers and the
     reclassified error set names exactly the liars.  A wrongly added
     honest suspect only shrinks the survivor set; the answer stands. *)
  for _ = 1 to 20 do
    let k = 2 + Csm_rng.int rng 4 in
    let n = k + 8 + Csm_rng.int rng 8 in
    let e_max = RS.max_errors ~n ~k in
    let c = e_max + 1 in
    let msg = random_message k in
    let pts = points n in
    let word = RS.encode ~message:msg ~points:pts in
    let corrupted, positions = RS.corrupt rng ~count:c word in
    let pairs = Array.map2 (fun x y -> (x, y)) pts corrupted in
    Alcotest.(check bool)
      "gao fails beyond radius" true
      (Option.is_none (RS.decode_gao ~k pairs));
    Alcotest.(check bool)
      "optimistic w/o suspects fails too" true
      (Option.is_none (RS.decode_optimistic ~k pairs));
    (match RS.decode_optimistic ~suspects:positions ~k pairs with
    | None -> Alcotest.fail "erasure-assisted decode failed"
    | Some d ->
      if not (P.equal d.RS.poly msg) then Alcotest.fail "erasure wrong poly";
      Alcotest.(check (list int)) "errors = liars" positions d.RS.errors);
    let honest = List.find (fun i -> not (List.mem i positions)) (List.init n Fun.id) in
    match RS.decode_optimistic ~suspects:(honest :: positions) ~k pairs with
    | None -> Alcotest.fail "erasure with one wrong suspicion failed"
    | Some d ->
      if not (P.equal d.RS.poly msg) then
        Alcotest.fail "wrong-suspicion erasure wrong poly"
  done

(* ----- syndrome decoder (BM + Chien) on classical points ----- *)

module BM = Bm.Make (F)

let bm_roundtrip_and_errors () =
  (* n must divide |F|-1 = 2^27·3·5 *)
  List.iter
    (fun (n, k) ->
      let inst = BM.instance ~n in
      for _ = 1 to 15 do
        let msg = if k = 1 then BM.P.constant (F.random rng) else BM.P.random rng ~degree:(k - 1) in
        let word = BM.encode inst ~message:msg in
        let t_cap = (n - k) / 2 in
        let e = Csm_rng.int rng (t_cap + 1) in
        let corrupted, positions = RS.corrupt rng ~count:e word in
        match BM.decode inst ~k corrupted with
        | None -> Alcotest.failf "bm failed with e=%d <= %d (n=%d,k=%d)" e t_cap n k
        | Some d ->
          if not (BM.P.equal d.BM.message msg) then Alcotest.fail "bm wrong poly";
          Alcotest.(check (list int)) "positions" positions
            (List.sort Int.compare d.BM.error_positions)
      done)
    [ (15, 5); (16, 4); (32, 8); (30, 10); (60, 20) ]

let bm_agrees_with_bw () =
  (* same instances decoded by BM and by Berlekamp–Welch over the same
     structured points *)
  let n = 30 and k = 8 in
  let inst = BM.instance ~n in
  let alpha = Option.get (F.root_of_unity n) in
  let points = Array.init n (fun i -> F.pow alpha i) in
  for _ = 1 to 15 do
    let word = Array.init n (fun _ -> F.random rng) in
    let pairs = Array.map2 (fun x y -> (x, y)) points word in
    match (BM.decode inst ~k word, RS.decode_bw ~k pairs) with
    | None, None -> ()
    | Some a, Some b ->
      if not (BM.P.equal a.BM.message b.RS.poly) then
        Alcotest.fail "bm and bw disagree"
    | Some _, None -> Alcotest.fail "bm decoded, bw did not"
    | None, Some _ -> Alcotest.fail "bw decoded, bm did not"
  done

let bm_beyond_radius_fails () =
  let n = 16 and k = 4 in
  let inst = BM.instance ~n in
  let msg = BM.P.random rng ~degree:(k - 1) in
  let word = BM.encode inst ~message:msg in
  let t_cap = (n - k) / 2 in
  let corrupted, _ = RS.corrupt rng ~count:(t_cap + 2) word in
  match BM.decode inst ~k corrupted with
  | None -> () (* the usual outcome beyond the radius *)
  | Some d ->
    (* decode certifies internally (all syndromes vanish after
       correction), so a Some here means the corruption happened to land
       within distance t of ANOTHER codeword; it must then differ from
       the original message *)
    Alcotest.(check bool) "different codeword" true
      (not (BM.P.equal d.BM.message msg))

let bm_zero_codeword () =
  let n = 16 and k = 4 in
  let inst = BM.instance ~n in
  let word = Array.make n F.zero in
  let corrupted, _ = RS.corrupt rng ~count:((n - k) / 2) word in
  match BM.decode inst ~k corrupted with
  | Some d when BM.P.is_zero d.BM.message -> ()
  | Some _ -> Alcotest.fail "bm wrong poly for zero codeword"
  | None -> Alcotest.fail "bm failed on zero codeword"

(* Regression: a received word of the wrong length (a Byzantine node
   truncating or padding its share) must yield None, not an exception. *)
let bm_wrong_length_is_none () =
  let n = 16 and k = 4 in
  let inst = BM.instance ~n in
  let word = BM.encode inst ~message:(BM.P.random rng ~degree:(k - 1)) in
  List.iter
    (fun len ->
      Alcotest.(check bool)
        (Printf.sprintf "len %d -> None" len)
        true
        (Option.is_none
           (BM.decode inst ~k (Array.sub (Array.append word word) 0 len))))
    [ 0; 1; n - 1; n + 1; 2 * n ]

(* ----- cross-decoder agreement (QCheck) ----- *)

(* On classical points (powers of a primitive n-th root of unity, so the
   syndrome decoder applies too), all five decode entry points must
   agree: BW, Gao, BM, optimistic, and optimistic with the fast path
   force-disabled.  Within the radius they must all return the original
   message; beyond it they must still agree with each other (including
   agreeing to fail). *)
let qcheck_cross_decoder =
  let n = 30 in
  let inst = BM.instance ~n in
  let alpha = Option.get (F.root_of_unity n) in
  let pts = Array.init n (fun i -> F.pow alpha i) in
  QCheck.Test.make ~name:"five decoders agree on classical points" ~count:120
    QCheck.(triple (int_range 1 8) (int_range 0 15) (int_range 0 1_000_000))
    (fun (k, e, seed) ->
      let r = Csm_rng.create (0xC0DE + seed) in
      let msg =
        if k = 1 then P.constant (F.random r) else P.random r ~degree:(k - 1)
      in
      let word = Array.map (P.eval msg) pts in
      let corrupted, _ = RS.corrupt r ~count:e word in
      let pairs = Array.map2 (fun x y -> (x, y)) pts corrupted in
      let rs_results =
        [
          RS.decode_bw ~k pairs;
          RS.decode_gao ~k pairs;
          RS.decode_optimistic ~k pairs;
          RS.decode ~algorithm:RS.Optimistic_fallback_only ~k pairs;
        ]
      in
      let polys =
        List.map (Option.map (fun d -> d.RS.poly)) rs_results
        @ [ Option.map (fun d -> d.BM.message) (BM.decode inst ~k corrupted) ]
      in
      let same a b =
        match (a, b) with
        | None, None -> true
        | Some p, Some q -> P.equal p q
        | _ -> false
      in
      let head = List.hd polys in
      List.for_all (same head) polys
      && (e > RS.max_errors ~n ~k || same head (Some msg)))

let all_none_beyond_radius () =
  (* Random corruption just past the radius: every decoder must refuse
     (deterministic seeds — a coincidental nearby codeword would show up
     as a stable failure here, not flakiness). *)
  let n = 24 and k = 6 in
  let inst = BM.instance ~n in
  let alpha = Option.get (F.root_of_unity n) in
  let pts = Array.init n (fun i -> F.pow alpha i) in
  let e = RS.max_errors ~n ~k + 1 in
  for _ = 1 to 20 do
    let msg = random_message k in
    let word = Array.map (P.eval msg) pts in
    let corrupted, _ = RS.corrupt rng ~count:e word in
    let pairs = Array.map2 (fun x y -> (x, y)) pts corrupted in
    Alcotest.(check bool) "bw none" true (Option.is_none (RS.decode_bw ~k pairs));
    Alcotest.(check bool) "gao none" true
      (Option.is_none (RS.decode_gao ~k pairs));
    Alcotest.(check bool) "optimistic none" true
      (Option.is_none (RS.decode_optimistic ~k pairs));
    Alcotest.(check bool) "bm none" true
      (Option.is_none (BM.decode inst ~k corrupted))
  done

let suites =
  [
    ( "reed-solomon",
      [
        Alcotest.test_case "roundtrip, both decoders, fast encode" `Quick
          roundtrip_no_errors;
        Alcotest.test_case "decodes up to radius (random errors)" `Quick
          decodes_up_to_radius;
        Alcotest.test_case "agreement set certificate" `Quick
          agreement_set_certificate;
        Alcotest.test_case "beyond radius never mis-certifies" `Quick
          fails_beyond_radius;
        Alcotest.test_case "erasure + error decoding (partial sync)" `Quick
          erasure_decoding;
        Alcotest.test_case "zero codeword with errors (regression)" `Quick
          zero_codeword_with_errors;
        Alcotest.test_case "BW and Gao agree everywhere" `Quick decoders_agree;
        Alcotest.test_case "max_errors formula" `Quick max_errors_formula;
        Alcotest.test_case "GF(256) end to end" `Quick gf256_rs;
      ] );
    ( "reed-solomon:optimistic",
      [
        Alcotest.test_case "fast-path hit on clean words" `Quick optimistic_hit;
        Alcotest.test_case "fallback equals Gao within radius" `Quick
          optimistic_fallback_matches_gao;
        Alcotest.test_case "suspicion-guided erasure rescue" `Quick
          optimistic_erasure_rescue;
        QCheck_alcotest.to_alcotest ~long:false qcheck_cross_decoder;
        Alcotest.test_case "all decoders refuse beyond radius" `Quick
          all_none_beyond_radius;
      ] );
    ( "reed-solomon:bm",
      [
        Alcotest.test_case "BM roundtrip + random errors" `Quick
          bm_roundtrip_and_errors;
        Alcotest.test_case "BM agrees with BW" `Quick bm_agrees_with_bw;
        Alcotest.test_case "BM beyond radius" `Quick bm_beyond_radius_fails;
        Alcotest.test_case "BM zero codeword" `Quick bm_zero_codeword;
        Alcotest.test_case "BM wrong-length word is None (regression)" `Quick
          bm_wrong_length_is_none;
      ] );
  ]
