(* The CSM wire frame: the length-prefixed binary envelope every
   protocol message travels in, shared by the discrete-event simulator's
   byte accounting and the real transports in [Csm_transport].

   Layout (big-endian, 16-byte header):

     offset 0   'C'              magic
     offset 1   'S'
     offset 2   version          (currently 1)
     offset 3   kind tag         (see [kind])
     offset 4   sender id        u32
     offset 8   round            u32
     offset 12  payload length   u32  (<= [max_payload_bytes])
     offset 16  payload bytes

   Decoding is total: every malformed input — wrong magic, unknown
   version or tag, negative/oversized fields, truncated or trailing
   bytes — yields [None], never an exception, so a Byzantine peer
   cannot crash a receiver with a crafted frame.  Authentication is
   deliberately NOT the frame's job (signatures live in [Csm_crypto]);
   the sender field is the unauthenticated channel claim. *)

type kind =
  | Command  (* client -> nodes: the round's K command vectors *)
  | Commit  (* node -> node: consensus payload over the agreed commands *)
  | Result  (* node -> node: the coded execution result g_i *)
  | Output  (* node -> client: decoded per-machine outputs + next states *)
  | Stats  (* node -> client: end-of-run transport counters *)
  | Shutdown  (* client -> nodes: drain and exit *)

let tag_of_kind = function
  | Command -> 1
  | Commit -> 2
  | Result -> 3
  | Output -> 4
  | Stats -> 5
  | Shutdown -> 6

let kind_eq a b = tag_of_kind a = tag_of_kind b

let kind_of_tag = function
  | 1 -> Some Command
  | 2 -> Some Commit
  | 3 -> Some Result
  | 4 -> Some Output
  | 5 -> Some Stats
  | 6 -> Some Shutdown
  | _ -> None

let kind_name = function
  | Command -> "command"
  | Commit -> "commit"
  | Result -> "result"
  | Output -> "output"
  | Stats -> "stats"
  | Shutdown -> "shutdown"

type t = {
  version : int;
  kind : kind;
  sender : int;
  round : int;
  payload : string;
}

let current_version = 1
let header_bytes = 16
let max_payload_bytes = 1 lsl 24
let max_id = 0x7FFFFFFF

let encoded_size ~payload_bytes = header_bytes + payload_bytes
let size t = encoded_size ~payload_bytes:(String.length t.payload)

let make ?(version = current_version) ~kind ~sender ~round payload =
  if version < 0 || version > 0xFF then invalid_arg "Frame.make: version";
  if sender < 0 || sender > max_id then invalid_arg "Frame.make: sender";
  if round < 0 || round > max_id then invalid_arg "Frame.make: round";
  if String.length payload > max_payload_bytes then
    invalid_arg "Frame.make: payload too large";
  { version; kind; sender; round; payload }

let encode t =
  if t.version < 0 || t.version > 0xFF then invalid_arg "Frame.encode: version";
  if t.sender < 0 || t.sender > max_id then invalid_arg "Frame.encode: sender";
  if t.round < 0 || t.round > max_id then invalid_arg "Frame.encode: round";
  let len = String.length t.payload in
  if len > max_payload_bytes then invalid_arg "Frame.encode: payload too large";
  let b = Bytes.create (header_bytes + len) in
  Bytes.set b 0 'C';
  Bytes.set b 1 'S';
  Bytes.set b 2 (Char.chr t.version);
  Bytes.set b 3 (Char.chr (tag_of_kind t.kind));
  Bytes.set_int32_be b 4 (Int32.of_int t.sender);
  Bytes.set_int32_be b 8 (Int32.of_int t.round);
  Bytes.set_int32_be b 12 (Int32.of_int len);
  Bytes.blit_string t.payload 0 b header_bytes len;
  Bytes.unsafe_to_string b

type header = {
  h_version : int;
  h_kind : kind;
  h_sender : int;
  h_round : int;
  h_payload_bytes : int;
}

let decode_header ?(pos = 0) s =
  if pos < 0 || String.length s - pos < header_bytes then None
  else if s.[pos] <> 'C' || s.[pos + 1] <> 'S' then None
  else
    let version = Char.code s.[pos + 2] in
    if version <> current_version then None
    else
      match kind_of_tag (Char.code s.[pos + 3]) with
      | None -> None
      | Some k ->
        let u32 off = Int32.to_int (String.get_int32_be s (pos + off)) in
        let sender = u32 4 and round = u32 8 and len = u32 12 in
        if sender < 0 || round < 0 || len < 0 || len > max_payload_bytes then
          None
        else
          Some
            {
              h_version = version;
              h_kind = k;
              h_sender = sender;
              h_round = round;
              h_payload_bytes = len;
            }

let of_header h ~payload =
  if String.length payload <> h.h_payload_bytes then None
  else
    Some
      {
        version = h.h_version;
        kind = h.h_kind;
        sender = h.h_sender;
        round = h.h_round;
        payload;
      }

let decode s =
  match decode_header s with
  | None -> None
  | Some h ->
    if String.length s <> header_bytes + h.h_payload_bytes then None
    else of_header h ~payload:(String.sub s header_bytes h.h_payload_bytes)

let pp ppf t =
  Format.fprintf ppf "%s[v%d from=%d round=%d %dB]" (kind_name t.kind)
    t.version t.sender t.round (String.length t.payload)
