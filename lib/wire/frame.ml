(* The CSM wire frame: the length-prefixed binary envelope every
   protocol message travels in, shared by the discrete-event simulator's
   byte accounting and the real transports in [Csm_transport].

   Layout (big-endian, 16-byte header):

     offset 0   'C'              magic
     offset 1   'S'
     offset 2   version          (1 = bare, 2 = with trace extension)
     offset 3   kind tag         (see [kind])
     offset 4   sender id        u32
     offset 8   round            u32
     offset 12  payload length   u32  (<= [max_payload_bytes])
     offset 16  extension        (version 2 only, [ext_bytes] bytes)
     ...        payload bytes

   Version-2 frames carry a fixed 16-byte causal-trace extension
   between the header and the payload:

     ext offset 0   trace id     u64  (one causal trace, e.g. a round)
     ext offset 8   HLC stamp    u64  (hybrid-logical-clock send time)

   The payload-length field counts payload bytes only, never the
   extension, so version-1 consumers that ignore unknown versions and
   version-2 consumers agree on where a frame ends.  Decoding is total:
   every malformed input — wrong magic, unknown version or tag,
   negative/oversized fields, truncated extension, truncated or
   trailing bytes — yields [None], never an exception, so a Byzantine
   peer cannot crash a receiver with a crafted frame.  Authentication
   is deliberately NOT the frame's job (signatures live in
   [Csm_crypto]); the sender field is the unauthenticated channel
   claim, and the extension is an unauthenticated observability hint —
   consumers must treat its contents as untrusted input. *)

type kind =
  | Command  (* client -> nodes: the round's K command vectors *)
  | Commit  (* node -> node: consensus payload over the agreed commands *)
  | Result  (* node -> node: the coded execution result g_i *)
  | Output  (* node -> client: decoded per-machine outputs + next states *)
  | Stats  (* node -> client: end-of-run transport counters *)
  | Shutdown  (* client -> nodes: drain and exit *)
  | Telemetry  (* node -> client: end-of-run observability bundle *)

let tag_of_kind = function
  | Command -> 1
  | Commit -> 2
  | Result -> 3
  | Output -> 4
  | Stats -> 5
  | Shutdown -> 6
  | Telemetry -> 7

let kind_eq a b = tag_of_kind a = tag_of_kind b

let kind_of_tag = function
  | 1 -> Some Command
  | 2 -> Some Commit
  | 3 -> Some Result
  | 4 -> Some Output
  | 5 -> Some Stats
  | 6 -> Some Shutdown
  | 7 -> Some Telemetry
  | _ -> None

let kind_name = function
  | Command -> "command"
  | Commit -> "commit"
  | Result -> "result"
  | Output -> "output"
  | Stats -> "stats"
  | Shutdown -> "shutdown"
  | Telemetry -> "telemetry"

type ext = {
  trace_id : int64;  (* the causal trace this frame belongs to *)
  hlc : int64;  (* packed hybrid-logical-clock stamp at send time *)
}

type t = {
  version : int;
  kind : kind;
  sender : int;
  round : int;
  ext : ext option;  (* Some iff version >= ext_version *)
  payload : string;
}

let current_version = 1
let ext_version = 2
let header_bytes = 16
let ext_bytes = 16
let max_payload_bytes = 1 lsl 24
let max_id = 0x7FFFFFFF

let ext_bytes_of_version v = if v >= ext_version then ext_bytes else 0
let encoded_size ~payload_bytes = header_bytes + payload_bytes

let size t =
  header_bytes
  + ext_bytes_of_version t.version
  + String.length t.payload

let check_fields ~ctx ~version ~sender ~round ~payload_len ~has_ext =
  if version < 0 || version > 0xFF then invalid_arg (ctx ^ ": version");
  if has_ext <> (version >= ext_version) then
    invalid_arg (ctx ^ ": extension requires version >= 2 (and vice versa)");
  if sender < 0 || sender > max_id then invalid_arg (ctx ^ ": sender");
  if round < 0 || round > max_id then invalid_arg (ctx ^ ": round");
  if payload_len > max_payload_bytes then
    invalid_arg (ctx ^ ": payload too large")

let make ?version ?ext ~kind ~sender ~round payload =
  let version =
    match version with
    | Some v -> v
    | None -> ( match ext with None -> current_version | Some _ -> ext_version)
  in
  check_fields ~ctx:"Frame.make" ~version ~sender ~round
    ~payload_len:(String.length payload)
    ~has_ext:(Option.is_some ext);
  { version; kind; sender; round; ext; payload }

let encode t =
  let len = String.length t.payload in
  check_fields ~ctx:"Frame.encode" ~version:t.version ~sender:t.sender
    ~round:t.round ~payload_len:len
    ~has_ext:(Option.is_some t.ext);
  let eb = ext_bytes_of_version t.version in
  let b = Bytes.create (header_bytes + eb + len) in
  Bytes.set b 0 'C';
  Bytes.set b 1 'S';
  Bytes.set b 2 (Char.chr t.version);
  Bytes.set b 3 (Char.chr (tag_of_kind t.kind));
  Bytes.set_int32_be b 4 (Int32.of_int t.sender);
  Bytes.set_int32_be b 8 (Int32.of_int t.round);
  Bytes.set_int32_be b 12 (Int32.of_int len);
  (match t.ext with
  | None -> ()
  | Some e ->
    Bytes.set_int64_be b header_bytes e.trace_id;
    Bytes.set_int64_be b (header_bytes + 8) e.hlc);
  Bytes.blit_string t.payload 0 b (header_bytes + eb) len;
  Bytes.unsafe_to_string b

type header = {
  h_version : int;
  h_kind : kind;
  h_sender : int;
  h_round : int;
  h_ext_bytes : int;  (* 0 for v1, 16 for v2 *)
  h_payload_bytes : int;
}

let body_bytes h = h.h_ext_bytes + h.h_payload_bytes

let decode_header ?(pos = 0) s =
  if pos < 0 || String.length s - pos < header_bytes then None
  else if s.[pos] <> 'C' || s.[pos + 1] <> 'S' then None
  else
    let version = Char.code s.[pos + 2] in
    if version <> current_version && version <> ext_version then None
    else
      match kind_of_tag (Char.code s.[pos + 3]) with
      | None -> None
      | Some k ->
        let u32 off = Int32.to_int (String.get_int32_be s (pos + off)) in
        let sender = u32 4 and round = u32 8 and len = u32 12 in
        if sender < 0 || round < 0 || len < 0 || len > max_payload_bytes then
          None
        else
          Some
            {
              h_version = version;
              h_kind = k;
              h_sender = sender;
              h_round = round;
              h_ext_bytes = ext_bytes_of_version version;
              h_payload_bytes = len;
            }

(* [body] is everything after the 16 header bytes: the extension (when
   the header claims version 2) immediately followed by the payload. *)
let of_header h ~body =
  if String.length body <> body_bytes h then None
  else
    let ext =
      if h.h_ext_bytes = 0 then None
      else
        Some
          {
            trace_id = String.get_int64_be body 0;
            hlc = String.get_int64_be body 8;
          }
    in
    Some
      {
        version = h.h_version;
        kind = h.h_kind;
        sender = h.h_sender;
        round = h.h_round;
        ext;
        payload = String.sub body h.h_ext_bytes h.h_payload_bytes;
      }

let decode s =
  match decode_header s with
  | None -> None
  | Some h ->
    if String.length s <> header_bytes + body_bytes h then None
    else of_header h ~body:(String.sub s header_bytes (body_bytes h))

let pp ppf t =
  Format.fprintf ppf "%s[v%d from=%d round=%d %dB%s]" (kind_name t.kind)
    t.version t.sender t.round (String.length t.payload)
    (match t.ext with
    | None -> ""
    | Some e -> Printf.sprintf " trace=%Lx hlc=%Lx" e.trace_id e.hlc)
