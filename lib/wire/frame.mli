(** Versioned tagged wire frame: the binary envelope of every CSM
    protocol message, shared by the simulator's byte accounting (the
    [?size] sizers of [Csm_sim.Net.run]) and the real transports.

    Two wire versions coexist: version 1 is the bare header + payload,
    version 2 inserts a fixed 16-byte causal-trace extension (64-bit
    trace id + 64-bit hybrid-logical-clock stamp) between header and
    payload.  The header's length field counts payload bytes only, so
    both versions frame identically on a byte stream.

    Decoding is total — malformed input yields [None], never raises —
    so a Byzantine peer cannot crash a receiver with a crafted frame.
    The sender field is the unauthenticated channel claim; signatures
    are [Csm_crypto]'s job, and the trace extension is an
    unauthenticated observability hint. *)

type kind =
  | Command  (** client → nodes: the round's K command vectors *)
  | Commit  (** node → node: consensus payload over the agreed commands *)
  | Result  (** node → node: the coded execution result gᵢ *)
  | Output  (** node → client: decoded outputs Ŷ + next states Ŝ *)
  | Stats  (** node → client: end-of-run transport counters *)
  | Shutdown  (** client → nodes: drain and exit *)
  | Telemetry  (** node → client: end-of-run observability bundle *)

val tag_of_kind : kind -> int
val kind_of_tag : int -> kind option

(** [kind_eq a b]: structural kind equality without polymorphic
    compare. *)
val kind_eq : kind -> kind -> bool
val kind_name : kind -> string

type ext = {
  trace_id : int64;  (** the causal trace this frame belongs to *)
  hlc : int64;  (** packed HLC stamp at send time (see {!Csm_obs.Clock}) *)
}
(** The version-2 causal-trace extension.  16 bytes on the wire:
    big-endian trace id then big-endian HLC stamp. *)

type t = {
  version : int;
  kind : kind;
  sender : int;
  round : int;
  ext : ext option;  (** [Some] iff [version >= ext_version] *)
  payload : string;
}

val current_version : int
(** The bare v1 wire version — the default of {!make} without [?ext]. *)

val ext_version : int
(** The first version carrying the trace extension (2). *)

val header_bytes : int
(** Fixed header size (16): magic, version, kind, sender, round,
    payload length. *)

val ext_bytes : int
(** Size of the version-2 trace extension (16). *)

val max_payload_bytes : int
(** Decoders reject larger length claims before allocating. *)

val encoded_size : payload_bytes:int -> int
(** Exact on-wire size of a {e version-1} frame carrying
    [payload_bytes] of payload.  The simulator sizers use this so
    simulated byte counts equal real socket bytes; for a frame value of
    either version use {!size}. *)

val size : t -> int
(** Exact on-wire size of [t], extension included:
    [String.length (encode t) = size t]. *)

val make :
  ?version:int -> ?ext:ext -> kind:kind -> sender:int -> round:int -> string -> t
(** Without [?version], the version is inferred from [?ext]: bare
    frames are v1, extended frames are v2.
    @raise Invalid_argument on out-of-range fields or a version/ext
    mismatch (an extension requires version ≥ {!ext_version} and vice
    versa). *)

val encode : t -> string
(** @raise Invalid_argument on out-of-range fields. *)

val decode : string -> t option
(** Exact-length decode: trailing bytes after the payload are rejected. *)

type header = {
  h_version : int;
  h_kind : kind;
  h_sender : int;
  h_round : int;
  h_ext_bytes : int;  (** 0 for v1, {!ext_bytes} for v2 *)
  h_payload_bytes : int;
}

val decode_header : ?pos:int -> string -> header option
(** Validate the 16 header bytes at [pos] (magic, version, tag, field
    ranges) and return the parsed header — the socket read loop's first
    step before reading [body_bytes h] more. *)

val body_bytes : header -> int
(** Bytes that follow the header on the wire: extension + payload. *)

val of_header : header -> body:string -> t option
(** [body] is everything after the 16 header bytes — the extension
    (when the header claims one) immediately followed by the payload.
    Rejects a body whose length differs from [body_bytes h]. *)

val pp : Format.formatter -> t -> unit
