(** Versioned tagged wire frame: the binary envelope of every CSM
    protocol message, shared by the simulator's byte accounting (the
    [?size] sizers of [Csm_sim.Net.run]) and the real transports.

    Decoding is total — malformed input yields [None], never raises —
    so a Byzantine peer cannot crash a receiver with a crafted frame.
    The sender field is the unauthenticated channel claim; signatures
    are [Csm_crypto]'s job. *)

type kind =
  | Command  (** client → nodes: the round's K command vectors *)
  | Commit  (** node → node: consensus payload over the agreed commands *)
  | Result  (** node → node: the coded execution result gᵢ *)
  | Output  (** node → client: decoded outputs Ŷ + next states Ŝ *)
  | Stats  (** node → client: end-of-run transport counters *)
  | Shutdown  (** client → nodes: drain and exit *)

val tag_of_kind : kind -> int
val kind_of_tag : int -> kind option

(** [kind_eq a b]: structural kind equality without polymorphic
    compare. *)
val kind_eq : kind -> kind -> bool
val kind_name : kind -> string

type t = {
  version : int;
  kind : kind;
  sender : int;
  round : int;
  payload : string;
}

val current_version : int

val header_bytes : int
(** Fixed header size (16): magic, version, kind, sender, round,
    payload length. *)

val max_payload_bytes : int
(** Decoders reject larger length claims before allocating. *)

val encoded_size : payload_bytes:int -> int
(** Exact on-wire size of a frame carrying [payload_bytes] of payload;
    [String.length (encode t) = encoded_size ~payload_bytes:(String.length
    t.payload)].  The simulator sizers use this so simulated byte
    counts equal real socket bytes. *)

val size : t -> int

val make : ?version:int -> kind:kind -> sender:int -> round:int -> string -> t
(** @raise Invalid_argument on out-of-range fields. *)

val encode : t -> string
(** @raise Invalid_argument on out-of-range fields. *)

val decode : string -> t option
(** Exact-length decode: trailing bytes after the payload are rejected. *)

type header = {
  h_version : int;
  h_kind : kind;
  h_sender : int;
  h_round : int;
  h_payload_bytes : int;
}

val decode_header : ?pos:int -> string -> header option
(** Validate the 16 header bytes at [pos] (magic, version, tag, field
    ranges) and return the parsed header — the socket read loop's first
    step before reading [h_payload_bytes] more. *)

val of_header : header -> payload:string -> t option
(** Rejects a payload whose length differs from the header claim. *)

val pp : Format.formatter -> t -> unit
