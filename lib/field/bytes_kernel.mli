(** Byte-packed batch kernels backing {!Field_intf.S.batch} for the
    table-backed binary fields: elements packed one byte (GF(2^8)) or two
    bytes little-endian (GF(2^16)) each, with axpy / dot / scale / Horner
    running at the byte level.  Each kernel performs exactly the field
    operations of the scalar loop it replaces, so bulk op accounting
    stays exact. *)

val make8 : modulus:int -> mul:(int -> int -> int) -> int Field_intf.batch
(** GF(2^8) kernels over a sliced 256×256 product table (built from
    [mul] once per reduction [modulus] and shared across
    instantiations). *)

val make16 : mul:(int -> int -> int) -> int Field_intf.batch
(** GF(2^16) kernels; products go through the field's own O(1)
    table-backed [mul]. *)
