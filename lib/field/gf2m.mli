(** Binary extension fields GF(2^m) with the Appendix-A bit embedding. *)

module type PARAMS = sig
  val m : int

  val modulus : int
  (** Bits of the irreducible degree-m reduction polynomial including the
      leading x^m term, or 0 to use a built-in default. *)
end

val default_modulus : int -> int
(** Built-in irreducible polynomial of degree [m] (1 ≤ m ≤ 31).
    @raise Invalid_argument outside that range. *)

val irreducible_over_gf2 : int -> bool
(** Rabin's irreducibility test for a bit-packed GF(2) polynomial
    (used to validate every modulus at field instantiation). *)

module Make (P : PARAMS) : sig
  include Field_intf.S

  val m : int

  val embed_bit : int -> t
  (** Appendix-A embedding: bit 0 ↦ 00…0, bit 1 ↦ 00…01 in GF(2^m). *)

  val table_backed : bool
  (** Whether mul/inv run on exp/log tables.  Always true for m ≤ 16:
      the tables are built over a searched multiplicative generator (not
      necessarily x) and forced at instantiation, so a silently slow
      small field cannot exist. *)
end

module Gf256 : sig
  include Field_intf.S

  val m : int
  val embed_bit : int -> t
  val table_backed : bool
end

module Gf1024 : sig
  include Field_intf.S

  val m : int
  val embed_bit : int -> t
  val table_backed : bool
end

module Gf65536 : sig
  include Field_intf.S

  val m : int
  val embed_bit : int -> t
  val table_backed : bool
end
