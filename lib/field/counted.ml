(* Operation-counting wrapper around any field.

   The wrapper writes into a swappable current counter so that a protocol
   simulation can attribute costs per role ("now node 3 is computing",
   "now the worker is computing") without changing the field type flowing
   through the algebraic code.

   The current counter is domain-local: each domain routes its own
   operations, so parallel per-node fan-out attributes every node's work
   to that node's counter without cross-domain interference.  A pool
   propagator carries the submitting domain's current counter into the
   workers, so a parallel region *inside* one attribution scope (e.g.
   the per-coordinate decodes of a single decoder role) still lands on
   the right counter; combined with atomic counters this keeps measured
   totals exact — identical for any domain count. *)

module Make (F : Field_intf.S) : sig
  include Field_intf.S with type t = F.t

  val set_counter : Csm_metrics.Counter.t -> unit
  (** Route this domain's subsequent operation counts into the given
      counter. *)

  val counter : unit -> Csm_metrics.Counter.t
  (** The counter currently receiving this domain's counts. *)

  val with_counter : Csm_metrics.Counter.t -> (unit -> 'a) -> 'a
  (** Run a thunk with counts routed to the given counter, restoring the
      previous counter afterwards (exception-safe).  Scopes nest and are
      per-domain. *)
end = struct
  type t = F.t

  let key = Domain.DLS.new_key (fun () -> Csm_metrics.Counter.create ())

  let set_counter c = Domain.DLS.set key c
  let counter () = Domain.DLS.get key

  (* Carry the submitter's current counter into pool workers for the
     duration of each parallel job. *)
  let () =
    Csm_parallel.Pool.register_propagator (fun () ->
        let c = Domain.DLS.get key in
        fun () -> Domain.DLS.set key c)

  let with_counter c f =
    let saved = Domain.DLS.get key in
    Domain.DLS.set key c;
    Fun.protect ~finally:(fun () -> Domain.DLS.set key saved) f

  let zero = F.zero
  let one = F.one
  let of_int = F.of_int
  let to_int = F.to_int

  let add a b =
    Csm_metrics.Counter.add (Domain.DLS.get key);
    F.add a b

  let sub a b =
    Csm_metrics.Counter.add (Domain.DLS.get key);
    F.sub a b

  let neg a =
    Csm_metrics.Counter.add (Domain.DLS.get key);
    F.neg a

  let mul a b =
    Csm_metrics.Counter.mul (Domain.DLS.get key);
    F.mul a b

  let inv a =
    Csm_metrics.Counter.inv (Domain.DLS.get key);
    F.inv a

  let div a b =
    Csm_metrics.Counter.inv (Domain.DLS.get key);
    F.div a b

  let pow x n =
    (* Charge the square-and-multiply cost explicitly so that pow-heavy
       code (e.g. Vandermonde construction) is accounted for: two
       multiplications per exponent bit. *)
    let c = Domain.DLS.get key in
    let rec count e acc = if e = 0 then acc else count (e lsr 1) (acc + 2) in
    let muls = count (abs n) 0 in
    for _ = 1 to muls do
      Csm_metrics.Counter.mul c
    done;
    if n < 0 then Csm_metrics.Counter.inv c;
    F.pow x n

  let equal = F.equal
  let compare = F.compare
  let is_zero = F.is_zero
  let order = F.order
  let characteristic = F.characteristic
  let root_of_unity = F.root_of_unity
  let random = F.random
  let random_nonzero = F.random_nonzero
  let pp = F.pp
  let to_string = F.to_string
end
