(* Operation-counting wrapper around any field.

   The wrapper writes into a swappable current counter so that a protocol
   simulation can attribute costs per role ("now node 3 is computing",
   "now the worker is computing") without changing the field type flowing
   through the algebraic code.

   The current counter is domain-local: each domain routes its own
   operations, so parallel per-node fan-out attributes every node's work
   to that node's counter without cross-domain interference.  A pool
   propagator carries the submitting domain's current counter into the
   workers, so a parallel region *inside* one attribution scope (e.g.
   the per-coordinate decodes of a single decoder role) still lands on
   the right counter; combined with atomic counters this keeps measured
   totals exact — identical for any domain count.

   When nothing is sampling — no [set_counter]/[with_counter] installed
   a counter on this domain — the DLS slot holds the shared [null]
   sentinel and every operation short-circuits past the atomic
   increment: one DLS read and one physical comparison, instead of an
   atomic read-modify-write per field op.  That keeps un-measured runs
   (wall-clock benchmarks, the transport cluster) close to the raw
   field's speed while measured runs stay exact. *)

module Make (F : Field_intf.S) : sig
  include Field_intf.S with type t = F.t

  val set_counter : Csm_metrics.Counter.t -> unit
  (** Route this domain's subsequent operation counts into the given
      counter. *)

  val counter : unit -> Csm_metrics.Counter.t
  (** The counter currently receiving this domain's counts. *)

  val with_counter : Csm_metrics.Counter.t -> (unit -> 'a) -> 'a
  (** Run a thunk with counts routed to the given counter, restoring the
      previous counter afterwards (exception-safe).  Scopes nest and are
      per-domain. *)
end = struct
  type t = F.t

  (* Sentinel meaning "no one is sampling on this domain".  Never read
     for its counts; compared physically in every hot op.  (Registered
     in lint/shared_state.allow: written only through the sentinel-aware
     ops below.) *)
  let null = Csm_metrics.Counter.create ()

  let key = Domain.DLS.new_key (fun () -> null)

  let set_counter c = Domain.DLS.set key c
  let counter () = Domain.DLS.get key

  (* Carry the submitter's current counter into pool workers for the
     duration of each parallel job. *)
  let () =
    Csm_parallel.Pool.register_propagator (fun () ->
        let c = Domain.DLS.get key in
        fun () -> Domain.DLS.set key c)

  let with_counter c f =
    let saved = Domain.DLS.get key in
    Domain.DLS.set key c;
    Fun.protect ~finally:(fun () -> Domain.DLS.set key saved) f

  let zero = F.zero
  let one = F.one
  let of_int = F.of_int
  let to_int = F.to_int

  let add a b =
    let c = Domain.DLS.get key in
    if c != null then Csm_metrics.Counter.add c;
    F.add a b

  let sub a b =
    let c = Domain.DLS.get key in
    if c != null then Csm_metrics.Counter.add c;
    F.sub a b

  let neg a =
    let c = Domain.DLS.get key in
    if c != null then Csm_metrics.Counter.add c;
    F.neg a

  let mul a b =
    let c = Domain.DLS.get key in
    if c != null then Csm_metrics.Counter.mul c;
    F.mul a b

  let inv a =
    let c = Domain.DLS.get key in
    if c != null then Csm_metrics.Counter.inv c;
    F.inv a

  let div a b =
    let c = Domain.DLS.get key in
    if c != null then Csm_metrics.Counter.inv c;
    F.div a b

  let pow x n =
    (* Charge the square-and-multiply cost explicitly so that pow-heavy
       code (e.g. Vandermonde construction) is accounted for: two
       multiplications per exponent bit. *)
    let c = Domain.DLS.get key in
    if c != null then begin
      let rec count e acc = if e = 0 then acc else count (e lsr 1) (acc + 2) in
      Csm_metrics.Counter.bulk c ~adds:0 ~muls:(count (abs n) 0)
        ~invs:(if n < 0 then 1 else 0)
    end;
    F.pow x n

  let equal = F.equal
  let compare = F.compare
  let is_zero = F.is_zero
  let order = F.order
  let characteristic = F.characteristic
  let root_of_unity = F.root_of_unity
  let random = F.random
  let random_nonzero = F.random_nonzero

  (* Batch kernels: delegate to the base field's, charging the scalar
     loops' exact op counts in bulk (one fetch_and_add per kind) against
     whatever counter is sampling when the kernel runs. *)
  let charge ~adds ~muls =
    let c = Domain.DLS.get key in
    if c != null then Csm_metrics.Counter.bulk c ~adds ~muls ~invs:0

  let batch_kernel =
    lazy
      (match F.batch () with
      | None -> None
      | Some b ->
        let elems v = Bytes.length v / b.Field_intf.width in
        Some
          {
            b with
            Field_intf.axpy =
              (fun ~acc ~c ~x ->
                let n = elems x in
                charge ~adds:n ~muls:n;
                b.Field_intf.axpy ~acc ~c ~x);
            dot =
              (fun a v ->
                let n = elems a in
                charge ~adds:n ~muls:n;
                b.Field_intf.dot a v);
            scale =
              (fun ~c ~x ->
                charge ~adds:0 ~muls:(elems x);
                b.Field_intf.scale ~c ~x);
            eval_many =
              (fun ~coeffs ~xs ->
                let n = elems xs * Array.length coeffs in
                charge ~adds:n ~muls:n;
                b.Field_intf.eval_many ~coeffs ~xs);
          })

  let batch () = Lazy.force batch_kernel

  let pp = F.pp
  let to_string = F.to_string
end
