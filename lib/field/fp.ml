(* Prime fields F_p with p < 2^31, represented by ints in [0, p).

   Products of two residues fit in 62 bits, so native int arithmetic is
   exact without any big-integer dependency.  The default instance is the
   NTT-friendly prime p = 15 * 2^27 + 1 = 2013265921 (two-adicity 27),
   which makes radix-2 NTT polynomial multiplication available for the
   quasi-linear coding path of Section 6.2. *)

module type PRIME = sig
  val p : int
end

module Make (P : PRIME) : Field_intf.S = struct
  let () =
    if P.p < 2 then invalid_arg "Fp.Make: p must be >= 2";
    if P.p >= 1 lsl 31 then invalid_arg "Fp.Make: p must be < 2^31";
    (* Trial-division primality check; fields are instantiated once at
       startup, so the O(sqrt p) cost is irrelevant. *)
    let rec check d =
      if d * d > P.p then ()
      else if P.p mod d = 0 then invalid_arg "Fp.Make: p is not prime"
      else check (d + 1)
    in
    check 2

  type t = int

  let p = P.p
  let order = p
  let characteristic = p

  let zero = 0
  let one = 1 mod p

  let of_int x =
    let r = x mod p in
    if r < 0 then r + p else r

  let to_int x = x

  let add a b =
    let s = a + b in
    if s >= p then s - p else s

  let sub a b =
    let d = a - b in
    if d < 0 then d + p else d

  let neg a = if a = 0 then 0 else p - a

  let mul a b = a * b mod p

  let equal (a : int) b = a = b
  let compare (a : int) b = Int.compare a b
  let is_zero a = a = 0

  let rec pow_pos base e acc =
    if e = 0 then acc
    else if e land 1 = 1 then pow_pos (mul base base) (e lsr 1) (mul acc base)
    else pow_pos (mul base base) (e lsr 1) acc

  let inv a =
    if a = 0 then raise Division_by_zero
    else
      (* Extended Euclid on (a, p); p prime so gcd = 1. *)
      let rec go r0 r1 s0 s1 =
        if r1 = 0 then s0
        else
          let q = r0 / r1 in
          go r1 (r0 - (q * r1)) s1 (s0 - (q * s1))
      in
      let s = go a p 1 0 in
      of_int s

  let div a b = mul a (inv b)

  let pow x n =
    if n >= 0 then pow_pos x n one
    else pow_pos (inv x) (-n) one

  (* Multiplicative generator of F_p^*: factor p-1 by trial division and
     search candidates g such that g^((p-1)/q) <> 1 for every prime q. *)
  let prime_factors n =
    let rec go n d acc =
      if n = 1 then acc
      else if d * d > n then n :: acc
      else if n mod d = 0 then
        let rec strip n = if n mod d = 0 then strip (n / d) else n in
        go (strip n) (d + 1) (d :: acc)
      else go n (d + 1) acc
    in
    go n 2 []

  let generator =
    lazy
      (if p = 2 then 1
       else
         let factors = prime_factors (p - 1) in
         let is_gen g =
           List.for_all (fun q -> not (equal (pow g ((p - 1) / q)) one)) factors
         in
         let rec search g =
           if g >= p then failwith "Fp: no generator found"
           else if is_gen g then g
           else search (g + 1)
         in
         search 2)

  let root_of_unity n =
    if n <= 0 then None
    else if n = 1 then Some one
    else if (p - 1) mod n <> 0 then None
    else Some (pow (Lazy.force generator) ((p - 1) / n))

  let random rng = Csm_rng.int rng p

  let random_nonzero rng =
    if p = 2 then 1 else 1 + Csm_rng.int rng (p - 1)

  (* No packed representation for prime fields: elements span up to 31
     bits and products need the generic modular path, so the scalar
     functor interface is already the right shape. *)
  let batch () = None

  let pp ppf x = Format.pp_print_int ppf x
  let to_string = string_of_int
end

(* Default field: NTT-friendly 31-bit prime, two-adicity 27. *)
module Default = Make (struct
  let p = 2013265921
end)

(* Mersenne prime 2^31 - 1: large field without radix-2 NTT support,
   exercises the generic (Karatsuba) polynomial-arithmetic path. *)
module Mersenne31 = Make (struct
  let p = 2147483647
end)

(* Small fields for exhaustive tests and boundary experiments. *)
module F97 = Make (struct
  let p = 97
end)

module F257 = Make (struct
  let p = 257
end)
