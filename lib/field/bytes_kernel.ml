(* Byte-packed batch kernels for the table-backed binary fields.

   The coding layer's hot loops (axpy rows of the N×K Lagrange matrix,
   Horner evaluation of a recovered polynomial at many points) spend
   most of their time in per-element closure calls when driven through
   the boxed [Field_intf.S] interface.  For GF(2^8) and GF(2^16) the
   elements fit in one / two bytes, addition is XOR, and multiplication
   is a table lookup, so the same loops run an order of magnitude
   faster over packed [Bytes.t] vectors.

   Operation-count contract (see [Field_intf.batch]): every kernel
   performs exactly the field operations of the scalar reference loop —
   axpy/dot are one mul + one add per element, scale one mul, eval_many
   |coeffs| muls + adds per point — so [Counted]'s bulk accounting stays
   exact and ledgers are identical whichever backend ran.

   GF(2^8) additionally gets a sliced 256×256 product table (one flat
   64 KiB [Bytes.t]: index a·256+b holds a·b) so the inner loop is a
   single indexed load, no log/antilog arithmetic.  The table depends
   only on the reduction modulus, so it is built once per modulus and
   shared by every instantiation (registered in
   lint/shared_state.allow). *)

let locked m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let mul8_lock = Mutex.create ()
let mul8_cache : (int, Bytes.t) Hashtbl.t = Hashtbl.create 2

let mul8_table ~modulus ~mul =
  locked mul8_lock (fun () ->
      match Hashtbl.find_opt mul8_cache modulus with
      | Some t -> t
      | None ->
        let t = Bytes.create 65536 in
        for a = 0 to 255 do
          let row = a lsl 8 in
          for b = 0 to 255 do
            Bytes.unsafe_set t (row lor b) (Char.unsafe_chr (mul a b))
          done
        done;
        Hashtbl.replace mul8_cache modulus t;
        t)

(* ----- GF(2^8): one byte per element ----- *)

let make8 ~modulus ~mul : int Field_intf.batch =
  let tab = mul8_table ~modulus ~mul in
  let mul8 a b = Char.code (Bytes.unsafe_get tab ((a lsl 8) lor b)) in
  let get v i = Char.code (Bytes.unsafe_get v i) in
  let set v i x = Bytes.unsafe_set v i (Char.unsafe_chr x) in
  let len v = Bytes.length v in
  let pack a =
    let n = Array.length a in
    let v = Bytes.create n in
    for i = 0 to n - 1 do
      set v i (a.(i) land 0xFF)
    done;
    v
  in
  let unpack v = Array.init (len v) (get v) in
  let axpy ~acc ~c ~x =
    let n = len x in
    if len acc <> n then invalid_arg "Bytes_kernel.axpy: length mismatch";
    let row = c lsl 8 in
    for i = 0 to n - 1 do
      set acc i
        (get acc i lxor Char.code (Bytes.unsafe_get tab (row lor get x i)))
    done
  in
  let dot a b =
    let n = len a in
    if len b <> n then invalid_arg "Bytes_kernel.dot: length mismatch";
    let acc = ref 0 in
    for i = 0 to n - 1 do
      acc := !acc lxor mul8 (get a i) (get b i)
    done;
    !acc
  in
  let scale ~c ~x =
    let n = len x in
    let out = Bytes.create n in
    let row = c lsl 8 in
    for i = 0 to n - 1 do
      Bytes.unsafe_set out i (Bytes.unsafe_get tab (row lor get x i))
    done;
    out
  in
  let eval_many ~coeffs ~xs =
    let n = len xs in
    let acc = Bytes.make n '\000' in
    for i = Array.length coeffs - 1 downto 0 do
      let c = coeffs.(i) land 0xFF in
      for j = 0 to n - 1 do
        set acc j (mul8 (get acc j) (get xs j) lxor c)
      done
    done;
    acc
  in
  { Field_intf.width = 1; pack; unpack; axpy; dot; scale; eval_many }

(* ----- GF(2^16): two bytes per element, little-endian; multiplication
   through the field's own (table-backed) [mul] ----- *)

let make16 ~mul : int Field_intf.batch =
  let get v i = Bytes.get_uint16_le v (2 * i) in
  let set v i x = Bytes.set_uint16_le v (2 * i) x in
  let len v = Bytes.length v / 2 in
  let pack a =
    let n = Array.length a in
    let v = Bytes.create (2 * n) in
    for i = 0 to n - 1 do
      set v i (a.(i) land 0xFFFF)
    done;
    v
  in
  let unpack v = Array.init (len v) (get v) in
  let axpy ~acc ~c ~x =
    let n = len x in
    if len acc <> n then invalid_arg "Bytes_kernel.axpy: length mismatch";
    for i = 0 to n - 1 do
      set acc i (get acc i lxor mul c (get x i))
    done
  in
  let dot a b =
    let n = len a in
    if len b <> n then invalid_arg "Bytes_kernel.dot: length mismatch";
    let acc = ref 0 in
    for i = 0 to n - 1 do
      acc := !acc lxor mul (get a i) (get b i)
    done;
    !acc
  in
  let scale ~c ~x =
    let n = len x in
    let out = Bytes.create (2 * n) in
    for i = 0 to n - 1 do
      set out i (mul c (get x i))
    done;
    out
  in
  let eval_many ~coeffs ~xs =
    let n = len xs in
    let acc = Bytes.make (2 * n) '\000' in
    for i = Array.length coeffs - 1 downto 0 do
      let c = coeffs.(i) land 0xFFFF in
      for j = 0 to n - 1 do
        set acc j (mul (get acc j) (get xs j) lxor c)
      done
    done;
    acc
  in
  { Field_intf.width = 2; pack; unpack; axpy; dot; scale; eval_many }
