(** Signatures for finite fields.

    Everything in the reproduction (polynomials, Reed–Solomon codes, the
    CSM engine, INTERMIX) is a functor over [S] so that the same code runs
    over prime fields and over binary extension fields (Appendix A). *)

type 'a batch = {
  width : int;  (** bytes per packed element *)
  pack : 'a array -> Bytes.t;
  unpack : Bytes.t -> 'a array;
  axpy : acc:Bytes.t -> c:'a -> x:Bytes.t -> unit;
      (** [acc.(i) <- acc.(i) + c·x.(i)] for every packed element; exactly
          one multiplication and one addition per element, like the scalar
          loop it replaces. *)
  dot : Bytes.t -> Bytes.t -> 'a;
      (** Σᵢ a.(i)·b.(i); one multiplication and one addition per
          element. *)
  scale : c:'a -> x:Bytes.t -> Bytes.t;
      (** Fresh packed vector c·x; one multiplication per element. *)
  eval_many : coeffs:'a array -> xs:Bytes.t -> Bytes.t;
      (** Horner evaluation of the (little-endian) coefficient vector at
          every packed point: |coeffs| multiplications and additions per
          point — the same count as [Poly.eval] per point. *)
}
(** A byte-packed batch backend: vectors of field elements stored [width]
    bytes each in a [Bytes.t], with the inner loops of the coding layer
    (axpy / dot / scale / Horner) running at the byte level instead of
    one boxed closure call per element.  Operation-count semantics are
    part of the contract: each function performs exactly the field
    operations of the scalar reference loop, so a counting wrapper can
    charge them in bulk and stay exact. *)

module type S = sig
  type t

  val zero : t
  val one : t

  val of_int : int -> t
  (** Canonical injection: reduces its argument into the field.  Accepts
      any int (negative ints are reduced to the equivalent residue in
      prime fields; in GF(2^m) the low [m] bits are kept). *)

  val to_int : t -> int
  (** Canonical integer representative in [\[0, order)]. *)

  val add : t -> t -> t
  val sub : t -> t -> t
  val neg : t -> t
  val mul : t -> t -> t

  val inv : t -> t
  (** @raise Division_by_zero on [zero]. *)

  val div : t -> t -> t
  (** @raise Division_by_zero when the divisor is [zero]. *)

  val pow : t -> int -> t
  (** [pow x n] for any int [n] (negative exponents invert).
      [pow zero 0 = one] by convention. *)

  val equal : t -> t -> bool
  val compare : t -> t -> int
  val is_zero : t -> bool

  val order : int
  (** Number of elements |F|.  All fields in this repo have order that
      fits in an OCaml int. *)

  val characteristic : int

  val root_of_unity : int -> t option
  (** [root_of_unity n] is a primitive n-th root of unity when one exists
      (used for NTT-based polynomial multiplication); [None] otherwise. *)

  val random : Csm_rng.t -> t
  val random_nonzero : Csm_rng.t -> t

  val pp : Format.formatter -> t -> unit
  val to_string : t -> string

  val batch : unit -> t batch option
  (** Byte-packed batch kernels for this field, when it has them (the
      table-backed GF(2^8)/GF(2^16) instances); [None] falls back to the
      scalar functor path.  The result is memoized — calling repeatedly
      is cheap. *)
end
