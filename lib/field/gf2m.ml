(* Binary extension fields GF(2^m), elements as m-bit ints.

   Used for the Appendix-A path: a state machine over bits is lifted to
   GF(2^m) with 2^m >= N so that Lagrange encoding has enough distinct
   evaluation points, and the Boolean transition polynomial evaluates
   identically on embedded bits (addition = XOR matches GF(2) addition).

   Multiplication is carry-less (Russian peasant) with modular reduction
   by an irreducible polynomial; for m <= 16 we additionally build
   exp/log tables over a multiplicative generator, giving O(1)
   multiplication and inversion.  The generator is found by search (the
   multiplicative group of a finite field is cyclic, so one always
   exists), which makes the tables independent of whether x itself is
   primitive — the AES polynomial 0x11B, where x has order 51, gets the
   same O(1) arithmetic as the primitive defaults.  Table construction
   is forced at functor instantiation so a silently table-less small
   field (the old behavior when x was not primitive: every mul fell back
   to the bit loop) cannot exist. *)

module type PARAMS = sig
  val m : int

  val modulus : int
  (** Bits of the irreducible degree-m reduction polynomial, including
      the leading x^m term; 0 selects a built-in default for [m]. *)
end

(* ----- GF(2)[x] arithmetic on bit-packed polynomials, used for the
   Rabin irreducibility check that validates every modulus. ----- *)
module F2x = struct
  (* position of the highest set bit *)
  let degree p =
    if p = 0 then -1
    else begin
      let d = ref 0 in
      let q = ref p in
      while !q > 1 do
        q := !q lsr 1;
        incr d
      done;
      !d
    end

  let rec pmod a b =
    let da = degree a and db = degree b in
    if da < db then a else pmod (a lxor (b lsl (da - db))) b

  (* multiplication mod f, operands of degree < deg f ≤ 31 *)
  let mulmod a b f =
    let df = degree f in
    let r = ref 0 and a = ref a and b = ref b in
    while !b <> 0 do
      if !b land 1 = 1 then r := !r lxor !a;
      b := !b lsr 1;
      a := !a lsl 1;
      if degree !a = df then a := !a lxor f
    done;
    !r

  (* x^(2^k) mod f by repeated squaring of the Frobenius image; the seed
     x itself is reduced first (it matters only when deg f = 1) *)
  let x_pow_pow2 k f =
    let x = ref (pmod 0b10 f) in
    for _ = 1 to k do
      x := mulmod !x !x f
    done;
    !x

  let rec gcd a b = if b = 0 then a else gcd b (pmod a b)

  let prime_divisors m =
    let rec go m d acc =
      if m = 1 then acc
      else if d * d > m then m :: acc
      else if m mod d = 0 then
        let rec strip m = if m mod d = 0 then strip (m / d) else m in
        go (strip m) (d + 1) (d :: acc)
      else go m (d + 1) acc
    in
    go m 2 []

  (* Rabin's test: f of degree m over GF(2) is irreducible iff
     x^(2^m) ≡ x (mod f) and gcd(x^(2^(m/q)) − x, f) = 1 for every
     prime q | m. *)
  let irreducible f =
    let m = degree f in
    if m < 1 then false
    else if m = 1 then true (* every degree-1 polynomial is irreducible *)
    else
      x_pow_pow2 m f = 0b10
      && List.for_all
           (fun q -> gcd (x_pow_pow2 (m / q) f lxor 0b10) f |> degree = 0)
           (prime_divisors m)
end

(* Standard irreducible polynomials, degree 1..31 (validated by Rabin's
   test on first use — a wrong entry fails fast, loudly). *)
let default_modulus = function
  | 1 -> 0x3
  | 2 -> 0x7
  | 3 -> 0xB
  | 4 -> 0x13
  | 5 -> 0x25
  | 6 -> 0x43
  | 7 -> 0x89
  | 8 -> 0x11D
  | 9 -> 0x211
  | 10 -> 0x409
  | 11 -> 0x805
  | 12 -> 0x1053
  | 13 -> 0x201B
  | 14 -> 0x4443
  | 15 -> 0x8003
  | 16 -> 0x1100B
  | 17 -> 0x20009
  | 18 -> 0x40081
  | 19 -> 0x80027
  | 20 -> 0x100009
  | 21 -> 0x200005  (* x^21 + x^2 + 1 *)
  | 22 -> 0x400003  (* x^22 + x + 1 *)
  | 23 -> 0x800021  (* x^23 + x^5 + 1 *)
  | 24 -> 0x100001B (* x^24 + x^4 + x^3 + x + 1 *)
  | 25 -> 0x2000009 (* x^25 + x^3 + 1 *)
  | 26 -> 0x4000047 (* x^26 + x^6 + x^2 + x + 1 *)
  | 27 -> 0x8000027 (* x^27 + x^5 + x^2 + x + 1 *)
  | 28 -> 0x10000009 (* x^28 + x^3 + 1 *)
  | 29 -> 0x20000005 (* x^29 + x^2 + 1 *)
  | 30 -> 0x40000053 (* x^30 + x^6 + x^4 + x + 1 *)
  | 31 -> 0x80000009 (* x^31 + x^3 + 1 *)
  | m -> invalid_arg (Printf.sprintf "Gf2m: no default modulus for m=%d" m)

module Make (P : PARAMS) : sig
  include Field_intf.S

  val m : int
  val embed_bit : int -> t
  (** Appendix-A embedding of a bit: 0 ↦ 00…0, 1 ↦ 00…01. *)

  val table_backed : bool
  (** Whether mul/inv run on exp/log tables (always true for m ≤ 16). *)
end = struct
  let m = P.m

  let () =
    if m < 1 || m > 31 then invalid_arg "Gf2m.Make: m must be in [1, 31]"

  let modulus = if P.modulus = 0 then default_modulus m else P.modulus

  let () =
    if modulus land (1 lsl m) = 0 || modulus >= 1 lsl (m + 1) then
      invalid_arg "Gf2m.Make: modulus must have degree exactly m";
    if not (F2x.irreducible modulus) then
      invalid_arg "Gf2m.Make: modulus is not irreducible"

  type t = int

  let order = 1 lsl m
  let characteristic = 2
  let mask = order - 1

  let zero = 0
  let one = 1

  let of_int x = x land mask
  let to_int x = x

  let add a b = a lxor b
  let sub = add
  let neg a = a

  let mul_slow a b =
    let r = ref 0 and a = ref a and b = ref b in
    while !b <> 0 do
      if !b land 1 = 1 then r := !r lxor !a;
      b := !b lsr 1;
      a := !a lsl 1;
      if !a land order <> 0 then a := !a lxor modulus
    done;
    !r

  (* exp/log tables over a multiplicative generator, found by search:
     g generates iff its powers enumerate all 2^m − 1 nonzero elements,
     which the filling loop itself detects (a repeat before the end, or
     not returning to 1, rejects g). *)
  let tables =
    lazy
      (if m > 16 then None
       else begin
         let exp = Array.make (2 * (order - 1)) 0 in
         let log = Array.make order (-1) in
         let try_generator g =
           Array.fill log 0 order (-1);
           let x = ref 1 in
           let ok = ref true in
           (try
              for i = 0 to order - 2 do
                if log.(!x) >= 0 then begin
                  ok := false;
                  raise Exit
                end;
                exp.(i) <- !x;
                log.(!x) <- i;
                x := mul_slow !x g
              done
            with Exit -> ());
           !ok && !x = 1
         in
         let rec search g =
           if g >= order then
             (* unreachable: the multiplicative group is cyclic *)
             invalid_arg "Gf2m.Make: no multiplicative generator found"
           else if try_generator g then g
           else search (g + 1)
         in
         ignore (search 2);
         (* Duplicate the exp table so that exp.(i+j) needs no mod. *)
         for i = 0 to order - 2 do
           exp.(i + order - 1) <- exp.(i)
         done;
         Some (exp, log)
       end)

  (* Fail fast: a small field must be table-backed.  [search] always
     terminates before [order] because the group is cyclic, so this is a
     pure safety net against table-construction bugs. *)
  let () =
    if m <= 16 then
      match Lazy.force tables with
      | Some _ -> ()
      | None -> invalid_arg "Gf2m.Make: exp/log table construction failed"

  let table_backed = m <= 16

  let mul a b =
    match Lazy.force tables with
    | Some (exp, log) ->
      if a = 0 || b = 0 then 0 else exp.(log.(a) + log.(b))
    | None -> mul_slow a b

  let equal (a : int) b = a = b
  let compare (a : int) b = Int.compare a b
  let is_zero a = a = 0

  let rec pow_pos base e acc =
    if e = 0 then acc
    else if e land 1 = 1 then pow_pos (mul base base) (e lsr 1) (mul acc base)
    else pow_pos (mul base base) (e lsr 1) acc

  let inv a =
    if a = 0 then raise Division_by_zero
    else
      match Lazy.force tables with
      | Some (exp, log) -> if a = 1 then 1 else exp.(order - 1 - log.(a))
      | None -> pow_pos a (order - 2) one

  let div a b = mul a (inv b)

  let pow x n =
    if n >= 0 then pow_pos x n one
    else pow_pos (inv x) (-n) one

  (* Characteristic 2: no nontrivial 2^k-th roots of unity, so NTT-based
     multiplication is unavailable; polynomial code falls back to
     Karatsuba. *)
  let root_of_unity n = if n = 1 then Some one else None

  let random rng = Csm_rng.int rng order

  let random_nonzero rng = 1 + Csm_rng.int rng (order - 1)

  let embed_bit b = b land 1

  (* Byte-packed batch kernels for the one- and two-byte fields; [mul]
     above is table-backed for these sizes, so the kernels inherit O(1)
     products. *)
  let batch_kernel =
    lazy
      (if m = 8 then Some (Bytes_kernel.make8 ~modulus ~mul)
       else if m = 16 then Some (Bytes_kernel.make16 ~mul)
       else None)

  let batch () = Lazy.force batch_kernel

  let pp ppf x = Format.fprintf ppf "0x%x" x
  let to_string x = Printf.sprintf "0x%x" x
end

(* GF(256): the classic Reed-Solomon field. *)
module Gf256 = Make (struct
  let m = 8
  let modulus = 0
end)

(* GF(2^10): enough evaluation points for networks up to N = 1023. *)
module Gf1024 = Make (struct
  let m = 10
  let modulus = 0
end)

(* GF(2^16): headroom for the largest scaling sweeps. *)
module Gf65536 = Make (struct
  let m = 16
  let modulus = 0
end)

let irreducible_over_gf2 = F2x.irreducible
