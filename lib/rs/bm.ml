(* Syndrome-based Reed–Solomon decoding: Berlekamp–Massey + Chien search.

   For the classical point set xᵢ = αⁱ (α a primitive n-th root of
   unity) the evaluation code {(f(α⁰), …, f(αⁿ⁻¹)) : deg f < k} has
   parity checks Sⱼ = Σᵢ rᵢ α^{ij} = 0 for j = 1..n−k, so the syndromes
   depend only on the error pattern:

     Sⱼ = Σ_l e_l X_l^j,   X_l = α^{i_l}.

   Berlekamp–Massey computes the error-locator polynomial
   σ(z) = ∏ (1 − X_l z) as the shortest LFSR generating the syndrome
   sequence; Chien search finds its roots; the error values are
   recovered from the (generalized Vandermonde) linear system in the
   located positions — avoiding Forney's-formula convention pitfalls at
   a negligible O(t³) cost.

   This decoder is O(n·t) + O(t²) + O(t³) — much lighter than
   Berlekamp–Welch's O(n³) — but requires the structured point set,
   which is why the general-points decoders (BW, Gao) remain the CSM
   defaults.  Cross-checked against both in the tests. *)

module Field_intf = Csm_field.Field_intf

module Make (F : Field_intf.S) = struct
  module P = Csm_poly.Poly.Make (F)
  module M = Csm_linalg.Linalg.Make (F)

  type instance = {
    n : int;
    alpha : F.t;  (* primitive n-th root of unity *)
    points : F.t array;  (* αⁱ for i = 0..n−1 *)
  }

  let instance ~n =
    match F.root_of_unity n with
    | None ->
      invalid_arg
        (Printf.sprintf "Bm.instance: field has no primitive %d-th root" n)
    | Some alpha ->
      let points = Array.make n F.one in
      for i = 1 to n - 1 do
        points.(i) <- F.mul points.(i - 1) alpha
      done;
      { n; alpha; points }

  let encode inst ~message =
    if P.degree message >= inst.n then invalid_arg "Bm.encode: degree too high";
    Array.map (P.eval message) inst.points

  (* Syndromes S_1 .. S_{n-k}: Sⱼ = Σᵢ rᵢ (α^j)^i = r(αʲ) viewing the
     received word as a polynomial. *)
  let syndromes inst ~k (received : F.t array) =
    let r_poly = P.of_coeffs received in
    Array.init (inst.n - k) (fun j -> P.eval r_poly (F.pow inst.alpha (j + 1)))

  (* Berlekamp–Massey over F: shortest LFSR (connection polynomial σ,
     constant term 1) generating the sequence. *)
  let berlekamp_massey (s : F.t array) =
    let n = Array.length s in
    let sigma = ref [| F.one |] in
    let b = ref [| F.one |] in
    let l = ref 0 in
    let m = ref 1 in
    let b_coeff = ref F.one in
    for i = 0 to n - 1 do
      (* discrepancy d = s_i + Σ_{j=1..L} σ_j s_{i-j} *)
      let d = ref s.(i) in
      for j = 1 to !l do
        if j < Array.length !sigma then
          d := F.add !d (F.mul !sigma.(j) s.(i - j))
      done;
      if F.is_zero !d then incr m
      else if 2 * !l <= i then begin
        let t = Array.copy !sigma in
        (* σ ← σ − (d/b)·z^m·B *)
        let coef = F.div !d !b_coeff in
        let blen = Array.length !b in
        let need = !m + blen in
        let sig' = Array.make (max (Array.length !sigma) need) F.zero in
        Array.blit !sigma 0 sig' 0 (Array.length !sigma);
        for j = 0 to blen - 1 do
          sig'.(j + !m) <- F.sub sig'.(j + !m) (F.mul coef !b.(j))
        done;
        sigma := sig';
        l := i + 1 - !l;
        b := t;
        b_coeff := !d;
        m := 1
      end
      else begin
        let coef = F.div !d !b_coeff in
        let blen = Array.length !b in
        let need = !m + blen in
        let sig' = Array.make (max (Array.length !sigma) need) F.zero in
        Array.blit !sigma 0 sig' 0 (Array.length !sigma);
        for j = 0 to blen - 1 do
          sig'.(j + !m) <- F.sub sig'.(j + !m) (F.mul coef !b.(j))
        done;
        sigma := sig';
        incr m
      end
    done;
    (P.normalize !sigma, !l)

  (* Chien search: error locations i with σ(α^{-i}) = 0. *)
  let chien inst sigma =
    let locations = ref [] in
    for i = inst.n - 1 downto 0 do
      let x = F.inv inst.points.(i) in
      if F.is_zero (P.eval sigma x) then locations := i :: !locations
    done;
    !locations

  type decoded = {
    message : P.t;
    error_positions : int list;
  }

  let decode inst ~k (received : F.t array) : decoded option =
    if Array.length received <> inst.n then None
    else begin
    let t_cap = (inst.n - k) / 2 in
    let s = syndromes inst ~k received in
    if Array.for_all F.is_zero s then begin
      (* no errors: interpolate directly (first k points suffice) *)
      let module Lag = Csm_poly.Lagrange.Make (F) in
      let pairs = Array.init k (fun i -> (inst.points.(i), received.(i))) in
      Some { message = Lag.interpolate pairs; error_positions = [] }
    end
    else begin
      let sigma, l = berlekamp_massey s in
      if l > t_cap then None
      else begin
        let locations = chien inst sigma in
        if List.length locations <> l then None
        else begin
          (* error values from Sⱼ = Σ_l e_l X_l^j, j = 1..l *)
          let xs = List.map (fun i -> inst.points.(i)) locations in
          let a =
            M.init_mat l l (fun row col ->
                F.pow (List.nth xs col) (row + 1))
          in
          let rhs = Array.init l (fun j -> s.(j)) in
          match M.solve a rhs with
          | None -> None
          | Some evals ->
            let corrected = Array.copy received in
            List.iteri
              (fun idx pos ->
                corrected.(pos) <- F.sub corrected.(pos) evals.(idx))
              locations;
            (* all syndromes of the corrected word must vanish *)
            let s' = syndromes inst ~k corrected in
            if not (Array.for_all F.is_zero s') then None
            else begin
              let module Lag = Csm_poly.Lagrange.Make (F) in
              let pairs =
                Array.init k (fun i -> (inst.points.(i), corrected.(i)))
              in
              let message = Lag.interpolate pairs in
              (* certify: the message explains every corrected symbol *)
              let ok = ref true in
              Array.iteri
                (fun i x ->
                  if not (F.equal (P.eval message inst.points.(i)) x) then
                    ok := false)
                corrected;
              if !ok then Some { message; error_positions = locations }
              else None
            end
        end
      end
    end
    end
end
