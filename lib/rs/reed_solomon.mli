(** Reed–Solomon encoding and noisy-interpolation decoding over arbitrary
    evaluation points — the error-correction engine of CSM's execution
    phase (Section 5.2) and of the verified decoding of Section 6.2. *)

module Field_intf = Csm_field.Field_intf

module Make (F : Field_intf.S) : sig
  module P : module type of Csm_poly.Poly.Make (F)

  val max_errors : n:int -> k:int -> int
  (** Unique-decoding radius e = ⌊(n−k)/2⌋ for length n, dimension k.
      @raise Invalid_argument when n < k. *)

  val encode : message:P.t -> points:F.t array -> F.t array
  (** Evaluate the message polynomial (degree < k) at each point.
      @raise Invalid_argument when the degree is ≥ the code length. *)

  val encode_fast : message:P.t -> points:F.t array -> F.t array
  (** Same, via subproduct-tree multipoint evaluation (quasi-linear). *)

  type decoded = {
    poly : P.t;  (** recovered message polynomial, degree < k *)
    agreement : int list;
        (** positions where the codeword matches — the certificate set τ
            of equation (9) in the paper *)
    errors : int list;  (** corrected positions *)
  }

  val decode_bw : k:int -> (F.t * F.t) array -> decoded option
  (** Berlekamp–Welch: [None] when more than ⌊(n−k)/2⌋ errors. *)

  val decode_gao : k:int -> (F.t * F.t) array -> decoded option
  (** Gao's extended-Euclid decoder; same guarantee as [decode_bw]. *)

  type fast_ctx
  (** Round-independent precomputation for the optimistic decoder over a
      fixed received-point set (prepared subproduct trees over the first
      k points and over all points — the Remark-4 argument).  Safe to
      share across domains once built. *)

  val prepare_fast : k:int -> F.t array -> fast_ctx
  (** @raise Invalid_argument when the point set is shorter than k. *)

  val decode_optimistic :
    ?ctx:fast_ctx ->
    ?suspects:int list ->
    ?force_fallback:bool ->
    k:int ->
    (F.t * F.t) array ->
    decoded option
  (** Optimistic fast path: interpolate the first k received points and
      accept when the candidate explains {e every} point (the
      certificate set τ of eq. (9) is everything — the fault-free
      round), else fall back to [decode_gao], and finally — when
      [suspects] (indices into the pair array) is nonempty — to
      erasure-assisted decoding with the suspects pre-erased, always
      re-validated against the full pair set.  Agrees with [decode_gao]
      on every input within the unique-decoding radius.
      [force_fallback] skips the candidate attempt (CI hook).  A [ctx]
      that does not match the pairs' points is ignored (a fresh one is
      built), so a stale cache can never corrupt a decode. *)

  type algorithm = Berlekamp_welch | Gao | Optimistic | Optimistic_fallback_only

  val default_algorithm : unit -> algorithm
  (** Selected by CSM_RS_FASTPATH: unset/["on"] ↦ [Optimistic], ["off"]
      ↦ [Gao], ["force-fallback"] ↦ [Optimistic_fallback_only] (read
      once, then cached).
      @raise Invalid_argument on any other value. *)

  val decode :
    ?algorithm:algorithm ->
    ?ctx:fast_ctx ->
    ?suspects:int list ->
    k:int ->
    (F.t * F.t) array ->
    decoded option
  (** Default algorithm is [default_algorithm ()]; [ctx]/[suspects] are
      used by the optimistic modes and ignored otherwise. *)

  val decode_erasures : k:int -> (F.t * F.t) array -> decoded option
  (** Erasure-only (crash-fault) decoding: all received symbols trusted;
      needs only k symbols; [None] if the received symbols are not
      consistent with one degree-(k−1) polynomial. *)

  val corrupt : Csm_rng.t -> count:int -> F.t array -> F.t array * int list
  (** [corrupt rng ~count w] flips [count] distinct positions of [w] to
      fresh wrong values; returns the corrupted word and the sorted list
      of corrupted positions. *)
end
