(* Reed–Solomon codes over arbitrary evaluation points.

   CSM's execution phase is exactly noisy polynomial interpolation: the N
   coded results g_i = h(α_i) form an RS codeword of dimension
   d(K−1)+1 and length N, with up to b arbitrary errors (Section 5.2).
   Erasures (withheld messages in the partially synchronous setting) are
   handled by decoding the shortened code over the received points only.

   Three decoders are provided and cross-checked in the tests:
   - Berlekamp–Welch (the paper's named choice): one linear system,
     O(n³) by Gaussian elimination;
   - Gao: partial extended Euclid on (∏(z−xᵢ), interpolant), O(n²)
     with fast interpolation;
   - optimistic: interpolate the first k received points with a
     precomputed Lagrange coefficient matrix, verify the candidate
     against the remaining points with precomputed Vandermonde rows
     (the certificate set τ of equation (9) must be everything), and
     only on a mismatch fall back to Gao and then — when the caller has
     accumulated per-node suspicion — to erasure-assisted decoding with
     the suspects pre-erased.  The fault-free round therefore costs n
     dot products of length k instead of a full error decode, run on
     the byte-packed batch kernels when the field provides them; the
     matrices are round-independent (Remark 4) and can be cached by the
     caller via [prepare_fast].

   The algorithm default is environment-selectable (CSM_RS_FASTPATH =
   on | off | force-fallback) so the protocol stack and the cluster
   nodes switch modes without recompilation, and benches can pin each
   mode explicitly. *)

module Field_intf = Csm_field.Field_intf

module Make (F : Field_intf.S) = struct
  module P = Csm_poly.Poly.Make (F)
  module Lag = Csm_poly.Lagrange.Make (F)
  module Sub = Csm_poly.Subproduct.Make (F)
  module M = Csm_linalg.Linalg.Make (F)

  let max_errors ~n ~k =
    if n < k then invalid_arg "Reed_solomon.max_errors: n < k";
    (n - k) / 2

  let encode ~message ~points =
    if P.degree message >= Array.length points then
      invalid_arg "Reed_solomon.encode: message degree too high for length";
    Array.map (P.eval message) points

  let encode_fast ~message ~points = Sub.eval_all message points

  type decoded = {
    poly : P.t;  (* the recovered message polynomial, degree < k *)
    agreement : int list;  (* indices i with poly(xᵢ) = yᵢ (the set τ) *)
    errors : int list;  (* complement: positions corrected *)
  }

  let classify ~poly pairs =
    let agreement = ref [] and errors = ref [] in
    Array.iteri
      (fun i (x, y) ->
        if F.equal (P.eval poly x) y then agreement := i :: !agreement
        else errors := i :: !errors)
      pairs;
    (List.rev !agreement, List.rev !errors)

  (* Accept a candidate only if it satisfies the unique-decoding
     certificate: agreement on at least n - e positions. *)
  let validate ~k pairs poly =
    if P.degree poly > k - 1 then None
    else begin
      let n = Array.length pairs in
      let e = max_errors ~n ~k in
      let agreement, errors = classify ~poly pairs in
      if List.length agreement >= n - e then Some { poly; agreement; errors }
      else None
    end

  (* Berlekamp–Welch.  Unknowns: Q of degree <= k-1+e and monic E of
     degree e, satisfying Q(xᵢ) = yᵢ·E(xᵢ) for every i.  With E monic
     the linear system has k+2e unknowns and n >= k+2e equations:
       Σ_j Q_j xᵢʲ − yᵢ Σ_{j<e} E_j xᵢʲ = yᵢ xᵢᵉ. *)
  let decode_bw ~k pairs =
    let n = Array.length pairs in
    if n < k then None
    else begin
      let e = max_errors ~n ~k in
      if e = 0 then
        (* No error capacity: direct interpolation on the first k points,
           then validation against all of them. *)
        let sub = Array.sub pairs 0 k in
        let poly = Lag.interpolate sub in
        validate ~k pairs poly
      else begin
        let unknowns = k + (2 * e) in
        let a =
          M.init_mat n unknowns (fun i j ->
              let x, y = pairs.(i) in
              if j < k + e then F.pow x j
              else
                (* coefficient of E_{j-(k+e)} *)
                F.neg (F.mul y (F.pow x (j - (k + e)))))
        in
        let b =
          Array.map (fun (x, y) -> F.mul y (F.pow x e)) pairs
        in
        match M.solve a b with
        | None -> None
        | Some sol ->
          let q = P.normalize (Array.sub sol 0 (k + e)) in
          let e_coeffs = Array.make (e + 1) F.one in
          Array.blit sol (k + e) e_coeffs 0 e;
          let e_poly = P.normalize e_coeffs in
          let f, r = P.divmod q e_poly in
          if not (P.is_zero r) then None else validate ~k pairs f
      end
    end

  (* Gao decoder: partial extended Euclid on g₀ = ∏(z−xᵢ) and the full
     interpolant g₁, stopping when the remainder degree drops below
     ⌈(n+k)/2⌉; then f = g/v if the division is exact. *)
  let decode_gao ~k pairs =
    let n = Array.length pairs in
    if n < k then None
    else begin
      let points = Array.map fst pairs in
      let values = Array.map snd pairs in
      let tree = Sub.build points in
      let g0 = Sub.root_poly tree in
      let g1 = Sub.interpolate_tree tree values in
      if P.degree g1 <= k - 1 then validate ~k pairs g1
      else begin
        let stop = (n + k + 1) / 2 in
        let g, _u, v = P.xgcd_until ~stop g0 g1 in
        if P.is_zero v then None
        else
          let f, r = P.divmod g v in
          if not (P.is_zero r) then None else validate ~k pairs f
      end
    end

  (* ----- optimistic fast path ----- *)

  (* Round-independent precomputation for a fixed received-point set —
     the Remark-4 argument applied to decoding.  Two matrices:

       fc_interp  k×k     row i maps the first-k received values to
                          coefficient i of their interpolant (the
                          transposed Lagrange-basis coefficients)
       fc_vand    (n−k)×k row j evaluates a coefficient vector at tail
                          point x_{k+j} (Vandermonde row)

     so the per-round fast path is nothing but n dot products of length
     k — and when the field exposes byte-packed batch kernels the rows
     are additionally pre-packed (fc_interp_b / fc_vand_b) so each dot
     runs on Bytes with identical op counts.  The head needs no
     verification: interpolation is exact on its own points. *)
  type fast_ctx = {
    fc_points : F.t array;
    fc_k : int;
    fc_interp : F.t array array;
    fc_vand : F.t array array;
    fc_interp_b : Bytes.t array option;
    fc_vand_b : Bytes.t array option;
  }

  let prepare_fast ~k points =
    let n = Array.length points in
    if n < k || k < 1 then invalid_arg "Reed_solomon.prepare_fast";
    let head = Array.sub points 0 k in
    (* m(z) = ∏ⱼ (z − xⱼ) over the head, expanded incrementally *)
    let m = Array.make (k + 1) F.zero in
    m.(0) <- F.one;
    Array.iteri
      (fun j x ->
        for i = j + 1 downto 1 do
          m.(i) <- F.sub m.(i - 1) (F.mul x m.(i))
        done;
        m.(0) <- F.neg (F.mul x m.(0)))
      head;
    (* Lagrange basis Lⱼ = m/(z−xⱼ) · 1/m'(xⱼ): synthetic division
       gives qⱼ = m/(z−xⱼ), and m'(xⱼ) = qⱼ(xⱼ) *)
    let basis =
      Array.map
        (fun x ->
          let q = Array.make k F.zero in
          q.(k - 1) <- m.(k);
          for i = k - 1 downto 1 do
            q.(i - 1) <- F.add m.(i) (F.mul x q.(i))
          done;
          let at_x = ref F.zero in
          for i = k - 1 downto 0 do
            at_x := F.add (F.mul !at_x x) q.(i)
          done;
          let w = F.inv !at_x in
          Array.map (fun c -> F.mul w c) q)
        head
    in
    let interp =
      Array.init k (fun i -> Array.init k (fun j -> basis.(j).(i)))
    in
    let vand =
      Array.init (n - k) (fun j ->
          let x = points.(k + j) in
          let row = Array.make k F.one in
          for i = 1 to k - 1 do
            row.(i) <- F.mul row.(i - 1) x
          done;
          row)
    in
    let interp_b, vand_b =
      match F.batch () with
      | None -> (None, None)
      | Some b ->
        ( Some (Array.map b.Field_intf.pack interp),
          Some (Array.map b.Field_intf.pack vand) )
    in
    {
      fc_points = Array.copy points;
      fc_k = k;
      fc_interp = interp;
      fc_vand = vand;
      fc_interp_b = interp_b;
      fc_vand_b = vand_b;
    }

  let ctx_matches ctx ~k points =
    ctx.fc_k = k
    && Array.length ctx.fc_points = Array.length points
    && (let ok = ref true in
        Array.iteri
          (fun i x -> if not (F.equal x ctx.fc_points.(i)) then ok := false)
          points;
        !ok)

  let record_fastpath outcome =
    let module Metric = Csm_obs.Metric in
    if Metric.enabled () then
      Metric.inc (Csm_obs.Telemetry.rs_fastpath ~outcome)

  (* Optimistic decode: interpolate the first k received points, accept
     immediately when the candidate explains every point (zero errors —
     the common fault-free round), otherwise run the full error decoder,
     and as a last resort erase the [suspects] (indices into [pairs],
     e.g. nodes with accumulated decoder suspicion) and decode the
     shortened code.  Within the unique-decoding radius the result is
     identical to [decode_gao] (the fast path only ever accepts a
     zero-error full agreement, which Gao also finds); the erasure last
     resort extends the reach beyond that radius under the
     erasure-and-error certificate 2e + s <= n − k. *)
  let decode_optimistic ?ctx ?(suspects = []) ?(force_fallback = false) ~k
      pairs =
    let n = Array.length pairs in
    if n < k || k < 1 then None
    else begin
      let ctx =
        match ctx with
        | Some c when ctx_matches c ~k (Array.map fst pairs) -> c
        | _ -> prepare_fast ~k (Array.map fst pairs)
      in
      let candidate =
        if force_fallback then None
        else
          Csm_obs.Span.with_ ~name:"rs.fastpath" (fun () ->
              let head = Array.init k (fun i -> snd pairs.(i)) in
              (* n dot products of length k: interpolate through the
                 head, then walk the tail Vandermonde rows, bailing at
                 the first disagreeing point.  The scalar loop and the
                 byte-packed kernels charge identical op counts, so
                 ledgers are backend-independent. *)
              let scalar_dot row v =
                let acc = ref F.zero in
                for j = 0 to Array.length row - 1 do
                  acc := F.add !acc (F.mul row.(j) v.(j))
                done;
                !acc
              in
              let coeffs, ok =
                match (F.batch (), ctx.fc_interp_b, ctx.fc_vand_b) with
                | Some b, Some irows, Some vrows ->
                  let hv = b.Field_intf.pack head in
                  let coeffs =
                    Array.map (fun row -> b.Field_intf.dot row hv) irows
                  in
                  let cv = b.Field_intf.pack coeffs in
                  let ok = ref true and j = ref 0 in
                  while !ok && !j < Array.length vrows do
                    if
                      F.equal (b.Field_intf.dot vrows.(!j) cv)
                        (snd pairs.(k + !j))
                    then incr j
                    else ok := false
                  done;
                  (coeffs, !ok)
                | _ ->
                  let coeffs =
                    Array.map (fun row -> scalar_dot row head) ctx.fc_interp
                  in
                  let ok = ref true and j = ref 0 in
                  while !ok && !j < Array.length ctx.fc_vand do
                    if
                      F.equal
                        (scalar_dot ctx.fc_vand.(!j) coeffs)
                        (snd pairs.(k + !j))
                    then incr j
                    else ok := false
                  done;
                  (coeffs, !ok)
              in
              if ok then
                Some
                  {
                    poly = P.normalize coeffs;
                    agreement = List.init n Fun.id;
                    errors = [];
                  }
              else None)
      in
      match candidate with
      | Some d ->
        record_fastpath "hit";
        Some d
      | None -> (
        match decode_gao ~k pairs with
        | Some d ->
          record_fastpath "fallback";
          Some d
        | None ->
          let survivors =
            let keep = Array.make n true in
            List.iter
              (fun i -> if i >= 0 && i < n then keep.(i) <- false)
              suspects;
            let out = ref [] in
            for i = n - 1 downto 0 do
              if keep.(i) then out := pairs.(i) :: !out
            done;
            Array.of_list !out
          in
          if
            suspects = []
            || Array.length survivors = n
            || Array.length survivors < k
          then None
          else
            (* Erasure-assisted: decode the shortened code with the
               suspects pre-erased.  [decode_gao] certifies the result
               against the survivors' own radius, which is exactly the
               erasure-and-error bound 2e + s <= n − k (s erased
               suspects, e errors among the survivors) — a wrong
               suspicion only shrinks the survivor set, it cannot relax
               that certificate.  The agreement set τ and the corrected
               positions are then reclassified against the full pair
               set, so suspects that actually lied surface in
               [errors]. *)
            match decode_gao ~k survivors with
            | None -> None
            | Some d ->
              let agreement, errors = classify ~poly:d.poly pairs in
              record_fastpath "erasure";
              Some { poly = d.poly; agreement; errors })
    end

  type algorithm = Berlekamp_welch | Gao | Optimistic | Optimistic_fallback_only

  (* CSM_RS_FASTPATH: on (default) | off | force-fallback.  Read once. *)
  let env_algorithm =
    lazy
      (match Sys.getenv_opt "CSM_RS_FASTPATH" with
      | Some "off" -> Gao
      | Some "force-fallback" -> Optimistic_fallback_only
      | Some "on" | Some "" | None -> Optimistic
      | Some other ->
        invalid_arg
          (Printf.sprintf
             "CSM_RS_FASTPATH=%s (expected on | off | force-fallback)" other))

  let default_algorithm () = Lazy.force env_algorithm

  let algorithm_name = function
    | Berlekamp_welch -> "berlekamp_welch"
    | Gao -> "gao"
    | Optimistic -> "optimistic"
    | Optimistic_fallback_only -> "optimistic_fallback_only"

  let decode ?algorithm ?ctx ?suspects ~k pairs =
    let algorithm =
      match algorithm with Some a -> a | None -> default_algorithm ()
    in
    Csm_obs.Span.with_ ~name:"rs.decode" (fun () ->
        let result =
          match algorithm with
          | Berlekamp_welch -> decode_bw ~k pairs
          | Gao -> decode_gao ~k pairs
          | Optimistic -> decode_optimistic ?ctx ?suspects ~k pairs
          | Optimistic_fallback_only ->
            decode_optimistic ?ctx ?suspects ~force_fallback:true ~k pairs
        in
        let module Metric = Csm_obs.Metric in
        let module Tel = Csm_obs.Telemetry in
        if Metric.enabled () then begin
          let alg = algorithm_name algorithm in
          (match result with
          | Some d ->
            Metric.inc
              (Tel.rs_decodes ~algorithm:alg
                 ~outcome:(if d.errors = [] then "clean" else "corrected"));
            if d.errors <> [] then
              Metric.inc ~by:(List.length d.errors) Tel.rs_corrected_symbols
          | None -> Metric.inc (Tel.rs_decodes ~algorithm:alg ~outcome:"failed"))
        end;
        result)

  (* Erasure-only decoding (crash faults): every received symbol is
     trusted, so interpolating through any k of them must explain all of
     them.  O(n·k) after interpolation — much cheaper than error
     decoding, and it needs only k symbols instead of k + 2e. *)
  let decode_erasures ~k pairs =
    let n = Array.length pairs in
    if n < k then None
    else begin
      let poly = Lag.interpolate (Array.sub pairs 0 k) in
      let agreement, errors = classify ~poly pairs in
      if errors = [] then Some { poly; agreement; errors }
      else None
    end

  (* Corrupt a codeword in [count] distinct positions chosen by [rng],
     guaranteeing each corrupted symbol actually changes.  Test/adversary
     utility. *)
  let corrupt rng ~count codeword =
    let n = Array.length codeword in
    if count > n then invalid_arg "Reed_solomon.corrupt: count > n";
    let word = Array.copy codeword in
    let idx = Csm_rng.sample rng ~n ~k:count in
    Array.iter
      (fun i ->
        let rec fresh () =
          let v = F.random rng in
          if F.equal v codeword.(i) then fresh () else v
        in
        word.(i) <- fresh ())
      idx;
    (word, Array.to_list idx |> List.sort Int.compare)
end
