(* Reed–Solomon codes over arbitrary evaluation points.

   CSM's execution phase is exactly noisy polynomial interpolation: the N
   coded results g_i = h(α_i) form an RS codeword of dimension
   d(K−1)+1 and length N, with up to b arbitrary errors (Section 5.2).
   Erasures (withheld messages in the partially synchronous setting) are
   handled by decoding the shortened code over the received points only.

   Two decoders are provided and cross-checked in the tests:
   - Berlekamp–Welch (the paper's named choice): one linear system,
     O(n³) by Gaussian elimination;
   - Gao: partial extended Euclid on (∏(z−xᵢ), interpolant), O(n²)
     with fast interpolation. *)

module Field_intf = Csm_field.Field_intf

module Make (F : Field_intf.S) = struct
  module P = Csm_poly.Poly.Make (F)
  module Lag = Csm_poly.Lagrange.Make (F)
  module Sub = Csm_poly.Subproduct.Make (F)
  module M = Csm_linalg.Linalg.Make (F)

  let max_errors ~n ~k =
    if n < k then invalid_arg "Reed_solomon.max_errors: n < k";
    (n - k) / 2

  let encode ~message ~points =
    if P.degree message >= Array.length points then
      invalid_arg "Reed_solomon.encode: message degree too high for length";
    Array.map (P.eval message) points

  let encode_fast ~message ~points = Sub.eval_all message points

  type decoded = {
    poly : P.t;  (* the recovered message polynomial, degree < k *)
    agreement : int list;  (* indices i with poly(xᵢ) = yᵢ (the set τ) *)
    errors : int list;  (* complement: positions corrected *)
  }

  let classify ~poly pairs =
    let agreement = ref [] and errors = ref [] in
    Array.iteri
      (fun i (x, y) ->
        if F.equal (P.eval poly x) y then agreement := i :: !agreement
        else errors := i :: !errors)
      pairs;
    (List.rev !agreement, List.rev !errors)

  (* Accept a candidate only if it satisfies the unique-decoding
     certificate: agreement on at least n - e positions. *)
  let validate ~k pairs poly =
    if P.degree poly > k - 1 then None
    else begin
      let n = Array.length pairs in
      let e = max_errors ~n ~k in
      let agreement, errors = classify ~poly pairs in
      if List.length agreement >= n - e then Some { poly; agreement; errors }
      else None
    end

  (* Berlekamp–Welch.  Unknowns: Q of degree <= k-1+e and monic E of
     degree e, satisfying Q(xᵢ) = yᵢ·E(xᵢ) for every i.  With E monic
     the linear system has k+2e unknowns and n >= k+2e equations:
       Σ_j Q_j xᵢʲ − yᵢ Σ_{j<e} E_j xᵢʲ = yᵢ xᵢᵉ. *)
  let decode_bw ~k pairs =
    let n = Array.length pairs in
    if n < k then None
    else begin
      let e = max_errors ~n ~k in
      if e = 0 then
        (* No error capacity: direct interpolation on the first k points,
           then validation against all of them. *)
        let sub = Array.sub pairs 0 k in
        let poly = Lag.interpolate sub in
        validate ~k pairs poly
      else begin
        let unknowns = k + (2 * e) in
        let a =
          M.init_mat n unknowns (fun i j ->
              let x, y = pairs.(i) in
              if j < k + e then F.pow x j
              else
                (* coefficient of E_{j-(k+e)} *)
                F.neg (F.mul y (F.pow x (j - (k + e)))))
        in
        let b =
          Array.map (fun (x, y) -> F.mul y (F.pow x e)) pairs
        in
        match M.solve a b with
        | None -> None
        | Some sol ->
          let q = P.normalize (Array.sub sol 0 (k + e)) in
          let e_coeffs = Array.make (e + 1) F.one in
          Array.blit sol (k + e) e_coeffs 0 e;
          let e_poly = P.normalize e_coeffs in
          let f, r = P.divmod q e_poly in
          if not (P.is_zero r) then None else validate ~k pairs f
      end
    end

  (* Gao decoder: partial extended Euclid on g₀ = ∏(z−xᵢ) and the full
     interpolant g₁, stopping when the remainder degree drops below
     ⌈(n+k)/2⌉; then f = g/v if the division is exact. *)
  let decode_gao ~k pairs =
    let n = Array.length pairs in
    if n < k then None
    else begin
      let points = Array.map fst pairs in
      let values = Array.map snd pairs in
      let tree = Sub.build points in
      let g0 = Sub.root_poly tree in
      let g1 = Sub.interpolate_tree tree values in
      if P.degree g1 <= k - 1 then validate ~k pairs g1
      else begin
        let stop = (n + k + 1) / 2 in
        let g, _u, v = P.xgcd_until ~stop g0 g1 in
        if P.is_zero v then None
        else
          let f, r = P.divmod g v in
          if not (P.is_zero r) then None else validate ~k pairs f
      end
    end

  type algorithm = Berlekamp_welch | Gao

  let decode ?(algorithm = Gao) ~k pairs =
    Csm_obs.Span.with_ ~name:"rs.decode" (fun () ->
        let result =
          match algorithm with
          | Berlekamp_welch -> decode_bw ~k pairs
          | Gao -> decode_gao ~k pairs
        in
        let module Metric = Csm_obs.Metric in
        let module Tel = Csm_obs.Telemetry in
        if Metric.enabled () then begin
          let alg =
            match algorithm with
            | Berlekamp_welch -> "berlekamp_welch"
            | Gao -> "gao"
          in
          (match result with
          | Some d ->
            Metric.inc
              (Tel.rs_decodes ~algorithm:alg
                 ~outcome:(if d.errors = [] then "clean" else "corrected"));
            if d.errors <> [] then
              Metric.inc ~by:(List.length d.errors) Tel.rs_corrected_symbols
          | None -> Metric.inc (Tel.rs_decodes ~algorithm:alg ~outcome:"failed"))
        end;
        result)

  (* Erasure-only decoding (crash faults): every received symbol is
     trusted, so interpolating through any k of them must explain all of
     them.  O(n·k) after interpolation — much cheaper than error
     decoding, and it needs only k symbols instead of k + 2e. *)
  let decode_erasures ~k pairs =
    let n = Array.length pairs in
    if n < k then None
    else begin
      let poly = Lag.interpolate (Array.sub pairs 0 k) in
      let agreement, errors = classify ~poly pairs in
      if errors = [] then Some { poly; agreement; errors }
      else None
    end

  (* Corrupt a codeword in [count] distinct positions chosen by [rng],
     guaranteeing each corrupted symbol actually changes.  Test/adversary
     utility. *)
  let corrupt rng ~count codeword =
    let n = Array.length codeword in
    if count > n then invalid_arg "Reed_solomon.corrupt: count > n";
    let word = Array.copy codeword in
    let idx = Csm_rng.sample rng ~n ~k:count in
    Array.iter
      (fun i ->
        let rec fresh () =
          let v = F.random rng in
          if F.equal v codeword.(i) then fresh () else v
        in
        word.(i) <- fresh ())
      idx;
    (word, Array.to_list idx |> List.sort Int.compare)
end
