(** The exploration driver: run candidate strategies from one of three
    schedules through an {!Oracle} and collect violations.

    - [Exhaustive] walks {!Strategy.enumerate}'s bounded class in its
      deterministic order and reports [exhausted = true] when the whole
      class fit in the budget — the premise of the at-bound safety
      certificate.
    - [Random] draws heterogeneous strategies from {!Strategy.random}.
    - [Greedy] keeps a small elite by oracle signal (corrected decoder
      errors, withheld symbols, stalled nodes) and escalates it with
      {!Strategy.mutate} — strategies that raise suspicion get refined.

    Every schedule is deterministic in ([seed], [budget]); duplicates
    (by {!Strategy.key}) are evaluated once. *)

type schedule = Exhaustive | Random | Greedy

val schedule_name : schedule -> string
val schedule_of_name : string -> (schedule, string) result

type outcome = {
  candidates : int;  (** oracle evaluations actually performed *)
  witnesses : (Strategy.t * Oracle.result) list;
      (** violating strategies, in discovery order *)
  exhausted : bool;
      (** [Exhaustive] only: the whole class fit within the budget *)
}

val search :
  ?stop_at_first:bool ->
  bound:Oracle.bound ->
  instance:Oracle.instance ->
  max_nodes:int ->
  budget:int ->
  schedule:schedule ->
  seed:int ->
  unit ->
  outcome
(** [max_nodes] caps how many nodes a candidate may control — the
    certifier runs once at the defender bound and once one past it.
    Increments [csm_adversary_candidates_total] and
    [csm_adversary_violations_total] when metrics are enabled. *)
