(** Table-2 tightness certification.

    For each bound the certifier runs the search twice against the SAME
    defender (thresholds built from the assumed bound b):

    - at the bound: candidates control at most b nodes; the certificate
      requires that no searched strategy violates safety or liveness
      (with the exhaustive schedule and enough budget this covers the
      whole bounded class — [at_exhausted] records whether it did);
    - one past the bound: candidates control up to b + 1 nodes; the
      certificate requires a violation witness, which is then shrunk to
      a canonical trace and replayed from its own serialization.

    Both booleans are hard-gated by [bin/bench_gate] on the
    [csm-bench-adversary/1] document built from {!report_to_json}. *)

type bound_report = {
  bound : Oracle.bound;
  instance : Oracle.instance;
  at_candidates : int;
  at_exhausted : bool;
  safety_holds_at_bound : bool;
  above_candidates : int;
  witness : Trace.t option;  (** shrunk, canonical *)
  witness_found_above_bound : bool;
  replay_ok : bool;
}

type report = {
  schedule : Search.schedule;
  budget : int;
  seed : int;
  bounds : bound_report list;
  safety_holds_at_bound : bool;  (** conjunction over [bounds] *)
  witness_found_above_bound : bool;  (** conjunction over [bounds] *)
  replay_ok : bool;  (** conjunction over [bounds] *)
}

val certify_bound :
  schedule:Search.schedule -> budget:int -> seed:int -> Oracle.bound ->
  bound_report

val all :
  ?bounds:Oracle.bound list ->
  schedule:Search.schedule ->
  budget:int ->
  seed:int ->
  unit ->
  report
(** Defaults to {!Oracle.certified_bounds} (one representative per
    Table-2 inequality). *)

val report_to_json : report -> Csm_obs.Json.t
