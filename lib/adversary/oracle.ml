(* The four bound oracles.  Each one builds the defender at the assumed
   bound [inst.b], lets the strategy control whatever nodes it names,
   and checks the paper's guarantee from the point of view of honest
   observers.  Everything is seeded: the only randomness is Csm_rng
   streams derived from [inst.seed] and the action seeds embedded in the
   strategy itself. *)

module F = Csm_field.Fp.Default
module E = Csm_core.Engine.Make (F)
module P = Csm_core.Protocol.Make (F)
module Params = Csm_core.Params
module M = E.M
module Table2 = Csm_harness.Table2
module Metric = Csm_obs.Metric

type bound = Decode_sync | Decode_partial | Output_delivery | Input_totality

let all_bounds = [ Decode_sync; Decode_partial; Output_delivery; Input_totality ]
let certified_bounds = [ Decode_sync; Output_delivery; Input_totality ]

let bound_name = function
  | Decode_sync -> "decode-sync"
  | Decode_partial -> "decode-partial"
  | Output_delivery -> "output-delivery"
  | Input_totality -> "input-totality"

let bound_of_name = function
  | "decode-sync" -> Ok Decode_sync
  | "decode-partial" -> Ok Decode_partial
  | "output-delivery" -> Ok Output_delivery
  | "input-totality" -> Ok Input_totality
  | s ->
    Error
      (Printf.sprintf
         "unknown bound %S (expected decode-sync, decode-partial, \
          output-delivery or input-totality)"
         s)

let bound_inequality = function
  | Decode_sync -> "2b+1 <= N - d(K-1)"
  | Decode_partial -> "3b+1 <= N - d(K-1)"
  | Output_delivery -> "2b+1 <= N"
  | Input_totality -> "3b+1 <= N"

type instance = { n : int; k : int; d : int; b : int; rounds : int; seed : int }

let instance_for bound ~seed =
  let cases = Table2.standard_cases in
  match bound with
  | Decode_sync ->
    let n, k, d =
      match
        List.find_map
          (function Table2.Decode_sync { n; k; d } -> Some (n, k, d) | _ -> None)
          cases
      with
      | Some nkd -> nkd
      | None -> (11, 3, 2)
    in
    let b = Params.max_faults ~network:Params.Sync ~n ~k ~d in
    { n; k; d; b; rounds = 4; seed }
  | Decode_partial ->
    let n, k, d =
      match
        List.find_map
          (function
            | Table2.Decode_partial { n; k; d } -> Some (n, k, d) | _ -> None)
          cases
      with
      | Some nkd -> nkd
      | None -> (14, 3, 1)
    in
    let b = Params.max_faults ~network:Params.Partial_sync ~n ~k ~d in
    { n; k; d; b; rounds = 4; seed }
  | Output_delivery ->
    let n =
      match
        List.find_map
          (function Table2.Output { n } -> Some n | _ -> None)
          cases
      with
      | Some n -> n
      | None -> 9
    in
    { n; k = 1; d = 1; b = (n - 1) / 2; rounds = 1; seed }
  | Input_totality ->
    let n =
      match
        List.find_map
          (function Table2.Consensus_partial { n } -> Some n | _ -> None)
          cases
      with
      | Some n -> n
      | None -> 7
    in
    { n; k = 1; d = 1; b = (n - 1) / 3; rounds = 1; seed }

type violation_kind = Safety | Liveness

let violation_kind_name = function Safety -> "safety" | Liveness -> "liveness"

let violation_kind_of_name = function
  | "safety" -> Ok Safety
  | "liveness" -> Ok Liveness
  | s -> Error (Printf.sprintf "unknown violation kind %S" s)

type verdict = Safe | Violation of { kind : violation_kind; detail : string }
type result = { verdict : verdict; signal : float }

exception Found of { kind : violation_kind; detail : string }

(* Verdicts must not depend on decoder-suspicion state accumulated by
   earlier candidates (or by the host process): suspicion adds erasure
   decoding power, so a stale gauge could silently flip a liveness
   witness.  The oracle therefore always evaluates with metrics off. *)
let without_metrics f =
  if Metric.enabled () then begin
    Metric.disable ();
    Fun.protect ~finally:Metric.enable f
  end
  else f ()

let eq_vec a b =
  Array.length a = Array.length b
  &&
  let ok = ref true in
  Array.iteri (fun i x -> if not (F.equal x b.(i)) then ok := false) a;
  !ok

let eq_mat a b =
  Array.length a = Array.length b
  &&
  let ok = ref true in
  Array.iteri (fun i row -> if not (eq_vec row b.(i)) then ok := false) a;
  !ok

(* The perturbed result vector node [i] reports to [observer] in round
   [r] under [act].  Codeword mirrors Adversary.colluding_codeword: one
   δ(z) of degree < code_dimension shared by every colluder, evaluated
   at the liar's own point — the consistent fake that makes the bound
   exactly tight. *)
let corrupt_result engine inst ~act ~node:i ~round:r ~observer:o v =
  match act with
  | Strategy.Silence _ -> v (* not silenced toward this observer *)
  | Strategy.Shift c -> Array.map (fun x -> F.add x (F.of_int c)) v
  | Strategy.Coord { index; delta } ->
    let v' = Array.copy v in
    if index >= 0 && index < Array.length v' then
      v'.(index) <- F.add v'.(index) (F.of_int delta);
    v'
  | Strategy.Codeword { seed } ->
    let kdim = Params.code_dimension ~k:inst.k ~d:inst.d in
    let drng = Csm_rng.create (seed + (r * 7919)) in
    let coeffs = Array.init kdim (fun _ -> F.random drng) in
    let alpha = engine.E.coding.E.Coding.alphas.(i) in
    let dv = ref F.zero in
    for j = kdim - 1 downto 0 do
      dv := F.add (F.mul !dv alpha) coeffs.(j)
    done;
    Array.map (fun x -> F.add x !dv) v
  | Strategy.Garbage { seed } ->
    let grng = Csm_rng.create (seed + (r * 7919) + (i * 131)) in
    Array.map (fun _ -> F.random grng) v
  | Strategy.Equivocate { seed } ->
    let grng = Csm_rng.create (seed + (r * 7919) + (i * 131) + ((o + 1) * 8161)) in
    Array.map (fun _ -> F.random grng) v

(* Honest observers whose decode we audit: the lowest honest node plus
   every honest node a Silence step singles out (those see a different
   received set, so they are where equivocation/selective silence can
   bite).  Capped to keep candidate cost bounded. *)
let observers_of inst strat =
  let byz = Strategy.byz_nodes strat in
  let is_byz i = List.mem i byz in
  let base =
    let rec first i = if i >= inst.n then [] else if is_byz i then first (i + 1) else [ i ] in
    first 0
  in
  let targets =
    List.concat_map
      (fun (p : Strategy.plan) ->
        List.concat_map
          (fun (s : Strategy.step) ->
            match s.Strategy.act with Strategy.Silence ts -> ts | _ -> [])
          p.Strategy.steps)
      strat.Strategy.plans
  in
  let targets =
    List.filter (fun t -> t >= 0 && t < inst.n && not (is_byz t)) targets
  in
  let all = List.sort_uniq Int.compare (base @ targets) in
  let rec take k = function
    | [] -> []
    | _ when k = 0 -> []
    | x :: tl -> x :: take (k - 1) tl
  in
  take 4 all

let check_decode ~partial inst strat =
  let machine = M.degree_machine inst.d in
  let network = if partial then Params.Partial_sync else Params.Sync in
  let params = Params.make ~network ~n:inst.n ~k:inst.k ~d:inst.d ~b:inst.b in
  let rng = Csm_rng.create inst.seed in
  let init =
    Array.init inst.k (fun _ ->
        Array.init machine.M.state_dim (fun _ -> F.random rng))
  in
  let engine = E.create ~machine ~params ~init in
  let byz = Strategy.byz_nodes strat in
  let is_byz i = List.mem i byz in
  let observers = observers_of inst strat in
  let signal = ref 0.0 in
  (* Partial synchrony: the scheduler may stall one honest result per
     faulty node — the decoder must proceed after N − x receipts (the
     model behind 3b+1, mirroring Table2.decoding_partial). *)
  let stalled_budget = if partial then Strategy.size strat else 0 in
  let verdict =
    try
      for r = 0 to inst.rounds - 1 do
        let commands =
          Array.init inst.k (fun _ ->
              Array.init machine.M.input_dim (fun _ -> F.random rng))
        in
        let report = E.round engine ~commands ~byzantine:(fun _ -> false) () in
        let truth =
          match report.E.decoded with
          | Some dcd -> dcd
          | None ->
            raise
              (Found
                 {
                   kind = Liveness;
                   detail = Printf.sprintf "round %d: honest baseline undecodable" r;
                 })
        in
        let g = report.E.computed in
        List.iter
          (fun o ->
            let stalled = ref stalled_budget in
            let received = ref [] in
            for i = inst.n - 1 downto 0 do
              if is_byz i then begin
                match Strategy.action_at strat ~node:i ~round:r with
                | None -> received := (i, g.(i)) :: !received
                | Some act ->
                  if Strategy.silent_toward act ~observer:o then
                    signal := !signal +. 0.25
                  else
                    received :=
                      (i, corrupt_result engine inst ~act ~node:i ~round:r ~observer:o g.(i))
                      :: !received
              end
              else if i <> o && !stalled > 0 then
                (* stall the highest-id honest results *)
                decr stalled
              else received := (i, g.(i)) :: !received
            done;
            match E.decode_results engine !received with
            | None ->
              raise
                (Found
                   {
                     kind = Liveness;
                     detail =
                       Printf.sprintf "observer %d round %d: decode failed" o r;
                   })
            | Some dcd ->
              signal := !signal +. float_of_int (List.length dcd.E.error_nodes);
              if
                not
                  (eq_mat dcd.E.next_states truth.E.next_states
                  && eq_mat dcd.E.outputs truth.E.outputs)
              then
                raise
                  (Found
                     {
                       kind = Safety;
                       detail =
                         Printf.sprintf
                           "observer %d round %d: decoded wrong results" o r;
                     }))
          observers
      done;
      Safe
    with Found { kind; detail } -> Violation { kind; detail }
  in
  { verdict; signal = !signal }

let check_output inst strat =
  let truth = [| F.of_int 7 |] in
  let threshold = inst.b + 1 in
  let byz = Strategy.byz_nodes strat in
  let signal = ref 0.0 in
  let responses =
    List.filter_map
      (fun i ->
        if not (List.mem i byz) then Some truth
        else
          match Strategy.action_at strat ~node:i ~round:0 with
          | None -> Some truth
          | Some (Strategy.Silence _) ->
            signal := !signal +. 0.25;
            None
          | Some (Strategy.Shift c) ->
            signal := !signal +. 1.0;
            Some (Array.map (fun x -> F.add x (F.of_int c)) truth)
          | Some (Strategy.Coord { index; delta }) ->
            signal := !signal +. 1.0;
            let v = Array.copy truth in
            if index >= 0 && index < Array.length v then
              v.(index) <- F.add v.(index) (F.of_int delta);
            Some v
          | Some (Strategy.Codeword { seed }) ->
            (* the shared colluding lie: same seed → same vector *)
            signal := !signal +. 1.0;
            let r = Csm_rng.create (0xD0 + seed) in
            Some (Array.map (fun x -> F.add x (F.random r)) truth)
          | Some (Strategy.Garbage { seed }) ->
            signal := !signal +. 1.0;
            let r = Csm_rng.create (seed + (i * 131)) in
            Some (Array.map (fun _ -> F.random r) truth)
          | Some (Strategy.Equivocate { seed }) ->
            signal := !signal +. 1.0;
            let r = Csm_rng.create (seed + (i * 131) + 7) in
            Some (Array.map (fun _ -> F.random r) truth))
      (List.init inst.n (fun i -> i))
  in
  let verdict =
    match P.vote ~threshold responses with
    | None ->
      Violation { kind = Liveness; detail = "client vote reached no value" }
    | Some v ->
      if eq_vec v truth then Safe
      else
        Violation
          { kind = Safety; detail = "client accepted a forged output" }
  in
  { verdict; signal = !signal }

let check_totality inst strat =
  let module Pbft = Csm_consensus.Pbft in
  let module Net = Csm_sim.Net in
  let keyring = Csm_crypto.Auth.create_keyring (Csm_rng.create inst.seed) ~n:inst.n in
  let cfg =
    { Pbft.n = inst.n; f = inst.b; base_timeout = 2000; instance = "adv"; keyring }
  in
  let byz = Strategy.byz_nodes strat in
  (* PBFT is single-slot: gate plans on their round-0 action (timed
     schedules coarsen to "active at round 0 or not"). *)
  let act_of i = Strategy.action_at strat ~node:i ~round:0 in
  let proposals i =
    match act_of i with
    | Some (Strategy.Shift _ | Strategy.Coord _ | Strategy.Codeword _) ->
      Some "w"
    | Some (Strategy.Garbage _ | Strategy.Equivocate _) ->
      Some (Printf.sprintf "w%d" i)
    | Some (Strategy.Silence _) | None -> Some "v"
  in
  let byzantine i =
    if not (List.mem i byz) then None
    else
      match act_of i with
      | Some (Strategy.Silence []) -> Some Net.silent
      | Some (Strategy.Silence targets) ->
        Some
          (Net.filter_sends
             (fun ~dst ~now:_ -> not (List.mem dst targets))
             (Pbft.honest cfg ~me:i ~proposal:"v"
                ~on_decide:(fun _ _ -> ())
                ()))
      | _ -> None
  in
  let { Pbft.decisions; stats } = Pbft.run cfg ~proposals ~byzantine () in
  let honest =
    List.filter_map
      (fun i -> if List.mem i byz then None else Some (i, decisions.(i)))
      (List.init inst.n (fun i -> i))
  in
  let undecided =
    List.filter_map
      (fun (i, d) -> match d with None -> Some i | Some _ -> None)
      honest
  in
  (* gradient for the greedy schedule: strategies that force view
     changes push end_time up — partial progress toward a stall *)
  let delay_score =
    Float.min 8.0
      (float_of_int stats.Csm_sim.Net.end_time
      /. float_of_int (max 1 cfg.Pbft.base_timeout))
  in
  let signal =
    (0.25 *. float_of_int (Strategy.size strat))
    +. (10.0 *. float_of_int (List.length undecided))
    +. (0.5 *. delay_score)
  in
  let verdict =
    match undecided with
    | i :: _ ->
      Violation
        {
          kind = Liveness;
          detail = Printf.sprintf "honest node %d never decided" i;
        }
    | [] -> (
      let decided =
        List.filter_map
          (fun (i, d) -> match d with Some v -> Some (i, v) | None -> None)
          honest
      in
      match decided with
      | [] -> Safe (* no honest node at all: vacuous *)
      | (_, first) :: rest -> (
        match
          List.find_opt (fun (_, v) -> not (String.equal v first)) rest
        with
        | Some (i, _) ->
          Violation
            {
              kind = Safety;
              detail = Printf.sprintf "honest node %d decided differently" i;
            }
        | None -> Safe))
  in
  { verdict; signal }

let check bound inst strat =
  without_metrics (fun () ->
      match bound with
      | Decode_sync -> check_decode ~partial:false inst strat
      | Decode_partial -> check_decode ~partial:true inst strat
      | Output_delivery -> check_output inst strat
      | Input_totality -> check_totality inst strat)
