(* Plain-data Byzantine strategy DSL.  See the interface for the model;
   this file adds the JSON codec (total), the canonical ordering used
   for dedup, and the three candidate generators (bounded-exhaustive
   atoms, heterogeneous random sampling, structural mutation). *)

module Json = Csm_obs.Json

type rounds =
  | Always
  | Only of int list
  | From of int
  | Until of int
  | Every of { period : int; phase : int }

type action =
  | Silence of int list
  | Shift of int
  | Coord of { index : int; delta : int }
  | Codeword of { seed : int }
  | Garbage of { seed : int }
  | Equivocate of { seed : int }

type step = { rounds : rounds; act : action }
type plan = { node : int; steps : step list }
type t = { plans : plan list }

let make plans =
  let plans = List.filter (fun p -> p.steps <> []) plans in
  let seen = Hashtbl.create 8 in
  let plans =
    List.filter
      (fun p ->
        if Hashtbl.mem seen p.node then false
        else begin
          Hashtbl.add seen p.node ();
          true
        end)
      plans
  in
  { plans = List.sort (fun a b -> Int.compare a.node b.node) plans }

let honest = { plans = [] }
let byz_nodes t = List.map (fun p -> p.node) t.plans
let size t = List.length t.plans

let active r ~round =
  match r with
  | Always -> true
  | Only l -> List.mem round l
  | From x -> round >= x
  | Until x -> round < x
  | Every { period; phase } -> round mod max 1 period = phase

let action_at t ~node ~round =
  match List.find_opt (fun p -> p.node = node) t.plans with
  | None -> None
  | Some p ->
    List.find_map
      (fun s -> if active s.rounds ~round then Some s.act else None)
      p.steps

let silent_toward act ~observer =
  match act with
  | Silence [] -> true
  | Silence targets -> List.mem observer targets
  | _ -> false

(* ----- JSON codec ----- *)

let rounds_to_json = function
  | Always -> Json.Obj [ ("kind", Json.Str "always") ]
  | Only l ->
    Json.Obj
      [ ("kind", Json.Str "only");
        ("rounds", Json.List (List.map (fun r -> Json.Int r) l)) ]
  | From r -> Json.Obj [ ("kind", Json.Str "from"); ("round", Json.Int r) ]
  | Until r -> Json.Obj [ ("kind", Json.Str "until"); ("round", Json.Int r) ]
  | Every { period; phase } ->
    Json.Obj
      [ ("kind", Json.Str "every");
        ("period", Json.Int period);
        ("phase", Json.Int phase) ]

let act_to_json = function
  | Silence targets ->
    Json.Obj
      [ ("kind", Json.Str "silence");
        ("targets", Json.List (List.map (fun x -> Json.Int x) targets)) ]
  | Shift offset ->
    Json.Obj [ ("kind", Json.Str "shift"); ("offset", Json.Int offset) ]
  | Coord { index; delta } ->
    Json.Obj
      [ ("kind", Json.Str "coord");
        ("index", Json.Int index);
        ("delta", Json.Int delta) ]
  | Codeword { seed } ->
    Json.Obj [ ("kind", Json.Str "codeword"); ("seed", Json.Int seed) ]
  | Garbage { seed } ->
    Json.Obj [ ("kind", Json.Str "garbage"); ("seed", Json.Int seed) ]
  | Equivocate { seed } ->
    Json.Obj [ ("kind", Json.Str "equivocate"); ("seed", Json.Int seed) ]

let to_json t =
  Json.Obj
    [
      ( "plans",
        Json.List
          (List.map
             (fun p ->
               Json.Obj
                 [
                   ("node", Json.Int p.node);
                   ( "steps",
                     Json.List
                       (List.map
                          (fun s ->
                            Json.Obj
                              [
                                ("rounds", rounds_to_json s.rounds);
                                ("act", act_to_json s.act);
                              ])
                          p.steps) );
                 ])
             t.plans) );
    ]

let ( let* ) r f = Result.bind r f

let int_field j key =
  match Option.bind (Json.member key j) Json.to_int_opt with
  | Some i -> Ok i
  | None -> Error (Printf.sprintf "missing integer field %S" key)

let str_field j key =
  match Option.bind (Json.member key j) Json.to_string_opt with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "missing string field %S" key)

let int_list_field j key =
  match Json.member key j with
  | Some (Json.List l) ->
    List.fold_left
      (fun acc x ->
        let* acc = acc in
        match Json.to_int_opt x with
        | Some i -> Ok (i :: acc)
        | None -> Error (Printf.sprintf "non-integer entry in %S" key))
      (Ok []) l
    |> Result.map List.rev
  | _ -> Error (Printf.sprintf "missing list field %S" key)

let rounds_of_json j =
  let* kind = str_field j "kind" in
  match kind with
  | "always" -> Ok Always
  | "only" ->
    let* l = int_list_field j "rounds" in
    Ok (Only l)
  | "from" ->
    let* r = int_field j "round" in
    Ok (From r)
  | "until" ->
    let* r = int_field j "round" in
    Ok (Until r)
  | "every" ->
    let* period = int_field j "period" in
    let* phase = int_field j "phase" in
    Ok (Every { period; phase })
  | k -> Error (Printf.sprintf "unknown rounds kind %S" k)

let act_of_json j =
  let* kind = str_field j "kind" in
  match kind with
  | "silence" ->
    let* targets = int_list_field j "targets" in
    Ok (Silence targets)
  | "shift" ->
    let* offset = int_field j "offset" in
    Ok (Shift offset)
  | "coord" ->
    let* index = int_field j "index" in
    let* delta = int_field j "delta" in
    Ok (Coord { index; delta })
  | "codeword" ->
    let* seed = int_field j "seed" in
    Ok (Codeword { seed })
  | "garbage" ->
    let* seed = int_field j "seed" in
    Ok (Garbage { seed })
  | "equivocate" ->
    let* seed = int_field j "seed" in
    Ok (Equivocate { seed })
  | k -> Error (Printf.sprintf "unknown action kind %S" k)

let step_of_json j =
  match Json.member "rounds" j with
  | None -> Error "step missing \"rounds\""
  | Some rj -> (
    let* rounds = rounds_of_json rj in
    match Json.member "act" j with
    | None -> Error "step missing \"act\""
    | Some aj ->
      let* act = act_of_json aj in
      Ok { rounds; act })

let of_json j =
  match Json.member "plans" j with
  | Some (Json.List plans) ->
    let* plans =
      List.fold_left
        (fun acc pj ->
          let* acc = acc in
          let* node = int_field pj "node" in
          match Json.member "steps" pj with
          | Some (Json.List steps) ->
            let* steps =
              List.fold_left
                (fun acc sj ->
                  let* acc = acc in
                  let* s = step_of_json sj in
                  Ok (s :: acc))
                (Ok []) steps
              |> Result.map List.rev
            in
            Ok ({ node; steps } :: acc)
          | _ -> Error "plan missing \"steps\" list")
        (Ok []) plans
      |> Result.map List.rev
    in
    Ok (make plans)
  | _ -> Error "strategy missing \"plans\" list"

let key t = Json.to_string (to_json t)
let equal a b = String.equal (key a) (key b)

let act_name = function
  | Silence [] -> "silence"
  | Silence ts ->
    Printf.sprintf "silence->%s"
      (String.concat "+" (List.map string_of_int ts))
  | Shift c -> Printf.sprintf "shift%+d" c
  | Coord { index; delta } -> Printf.sprintf "coord[%d]%+d" index delta
  | Codeword _ -> "codeword"
  | Garbage _ -> "garbage"
  | Equivocate _ -> "equivocate"

let rounds_name = function
  | Always -> ""
  | Only l ->
    Printf.sprintf "@%s" (String.concat "," (List.map string_of_int l))
  | From r -> Printf.sprintf "@>=%d" r
  | Until r -> Printf.sprintf "@<%d" r
  | Every { period; phase } -> Printf.sprintf "@%%%d=%d" period phase

let name t =
  if t.plans = [] then "honest"
  else
    String.concat ";"
      (List.map
         (fun p ->
           Printf.sprintf "%d:%s" p.node
             (String.concat "|"
                (List.map
                   (fun s -> act_name s.act ^ rounds_name s.rounds)
                   p.steps)))
         t.plans)

let pp ppf t = Format.pp_print_string ppf (name t)

(* ----- candidate generators ----- *)

(* The atom alphabet: one (rounds, action) pair per adversarial idea.
   GST sits at rounds_total/2 so From/Until model post-/pre-GST
   windows; seeds are fixed constants — determinism comes from the
   data, never from ambient state. *)
let atoms ~n ~rounds_total =
  let gst = max 1 (rounds_total / 2) in
  let observer = 0 in
  ignore n;
  [
    { rounds = Always; act = Silence [] };
    { rounds = Always; act = Silence [ observer ] };
    { rounds = Always; act = Shift 1 };
    { rounds = Always; act = Coord { index = 0; delta = 1 } };
    { rounds = Always; act = Codeword { seed = 0xC0DE } };
    { rounds = Always; act = Garbage { seed = 0x6AB } };
    { rounds = Always; act = Equivocate { seed = 0xE9 } };
    { rounds = Every { period = 2; phase = 0 }; act = Shift 1 };
    { rounds = From gst; act = Garbage { seed = 0x6AB } };
    { rounds = Until gst; act = Silence [] };
    { rounds = Only [ 0 ]; act = Codeword { seed = 0xC0DE } };
    { rounds = Always; act = Shift (-1) };
  ]

(* Node pool for the exhaustive class: a prefix of max_nodes + 2 ids
   (symmetry over evaluation points makes larger pools near-redundant;
   random/greedy sample the full id range). *)
let pool ~n ~max_nodes = min n (max_nodes + 2)

let subsets_upto ~pool ~max_nodes =
  (* non-empty subsets of [0, pool) with ≤ max_nodes elements, LARGEST
     size first (above-bound witnesses need every controlled node, so
     they surface within small budgets; shrinking restores minimality),
     lexicographic within a size *)
  let top = min max_nodes pool in
  let rec choose start size =
    if size = 0 then Seq.return []
    else
      Seq.concat
        (Seq.map
           (fun first ->
             Seq.map
               (fun rest -> first :: rest)
               (choose (first + 1) (size - 1)))
           (Seq.init (pool - start) (fun i -> start + i)))
  in
  Seq.concat (Seq.map (fun i -> choose 0 (top - i)) (Seq.init top (fun i -> i)))

let enumerate ~n ~rounds_total ~max_nodes =
  let atoms = atoms ~n ~rounds_total in
  let pool = pool ~n ~max_nodes in
  Seq.concat
    (Seq.map
       (fun nodes ->
         Seq.map
           (fun atom ->
             make (List.map (fun node -> { node; steps = [ atom ] }) nodes))
           (List.to_seq atoms))
       (subsets_upto ~pool ~max_nodes))

let random_step rng ~n ~rounds_total =
  let rounds =
    match Csm_rng.int rng 5 with
    | 0 -> Always
    | 1 -> Only [ Csm_rng.int rng (max 1 rounds_total) ]
    | 2 -> From (Csm_rng.int rng (max 1 rounds_total))
    | 3 -> Until (1 + Csm_rng.int rng (max 1 rounds_total))
    | _ ->
      Every { period = 2 + Csm_rng.int rng 2; phase = Csm_rng.int rng 2 }
  in
  let act =
    match Csm_rng.int rng 6 with
    | 0 ->
      Silence
        (if Csm_rng.bool rng then []
         else [ Csm_rng.int rng (max 1 n) ])
    | 1 -> Shift (1 + Csm_rng.int rng 3)
    | 2 -> Coord { index = Csm_rng.int rng 2; delta = 1 + Csm_rng.int rng 2 }
    | 3 -> Codeword { seed = Csm_rng.int rng 1024 }
    | 4 -> Garbage { seed = Csm_rng.int rng 1024 }
    | _ -> Equivocate { seed = Csm_rng.int rng 1024 }
  in
  { rounds; act }

let random rng ~n ~rounds_total ~max_nodes =
  let count = 1 + Csm_rng.int rng (max 1 max_nodes) in
  let nodes = Csm_rng.sample rng ~n ~k:(min count n) in
  make
    (Array.to_list nodes
    |> List.map (fun node ->
           let steps =
             List.init
               (1 + Csm_rng.int rng 2)
               (fun _ -> random_step rng ~n ~rounds_total)
           in
           { node; steps }))

let mutate rng ~n ~rounds_total ~max_nodes t =
  let plans = t.plans in
  let fresh_plan () =
    {
      node = Csm_rng.int rng (max 1 n);
      steps = [ random_step rng ~n ~rounds_total ];
    }
  in
  let replace_nth l i f = List.mapi (fun j x -> if j = i then f x else x) l in
  let mutated =
    match (plans, Csm_rng.int rng 4) with
    | [], _ -> [ fresh_plan () ]
    | _, 0 when List.length plans < max_nodes ->
      (* escalate: recruit another Byzantine node — half the time as a
         colluder copying an existing plan (uniform collusion is the
         known-tight attack class), half the time with a fresh step *)
      let recruit =
        if Csm_rng.bool rng then
          let copied =
            List.nth plans (Csm_rng.int rng (List.length plans))
          in
          { node = Csm_rng.int rng (max 1 n); steps = copied.steps }
        else fresh_plan ()
      in
      recruit :: plans
    | _, 1 when List.length plans > 1 ->
      (* demote one node back to honest *)
      let drop = Csm_rng.int rng (List.length plans) in
      List.filteri (fun i _ -> i <> drop) plans
    | _, 2 ->
      (* rewrite one node's whole plan *)
      let i = Csm_rng.int rng (List.length plans) in
      replace_nth plans i (fun p ->
          { p with steps = [ random_step rng ~n ~rounds_total ] })
    | _ ->
      (* append a step to one node (layered schedule) *)
      let i = Csm_rng.int rng (List.length plans) in
      replace_nth plans i (fun p ->
          { p with steps = p.steps @ [ random_step rng ~n ~rounds_total ] })
  in
  make mutated
