(* Exploration schedules over the strategy DSL.  All state (dedup cache,
   elites, rng) lives inside the [search] call — the module holds no
   mutable state, so concurrent searches cannot interfere and replays
   are exact. *)

module Metric = Csm_obs.Metric
module Tel = Csm_obs.Telemetry

type schedule = Exhaustive | Random | Greedy

let schedule_name = function
  | Exhaustive -> "exhaustive"
  | Random -> "random"
  | Greedy -> "greedy"

let schedule_of_name = function
  | "exhaustive" -> Ok Exhaustive
  | "random" -> Ok Random
  | "greedy" -> Ok Greedy
  | s ->
    Error
      (Printf.sprintf
         "unknown schedule %S (expected exhaustive, random or greedy)" s)

type outcome = {
  candidates : int;
  witnesses : (Strategy.t * Oracle.result) list;
  exhausted : bool;
}

(* Greedy tuning: a small population refined a few survivors at a time.
   Constants, not knobs — the budget is the only dial. *)
let population = 16
let elites = 4
let mutations_per_elite = 4

let search ?(stop_at_first = false) ~bound ~instance ~max_nodes ~budget
    ~schedule ~seed () =
  let n = instance.Oracle.n in
  let rounds_total = instance.Oracle.rounds in
  let seen = Hashtbl.create 64 in
  let candidates = ref 0 in
  let witnesses = ref [] in
  let admissible strat =
    Strategy.size strat <= max_nodes
    && List.for_all (fun i -> i >= 0 && i < n) (Strategy.byz_nodes strat)
  in
  (* evaluate once per canonical key; returns the result when the
     candidate was fresh and admissible *)
  let eval strat =
    if not (admissible strat) then None
    else begin
      let key = Strategy.key strat in
      if Hashtbl.mem seen key then None
      else begin
        Hashtbl.add seen key ();
        incr candidates;
        if Metric.enabled () then
          Metric.inc
            (Tel.adversary_candidates ~bound:(Oracle.bound_name bound)
               ~schedule:(schedule_name schedule));
        let result = Oracle.check bound instance strat in
        (match result.Oracle.verdict with
        | Oracle.Safe -> ()
        | Oracle.Violation { kind; _ } ->
          witnesses := (strat, result) :: !witnesses;
          if Metric.enabled () then
            Metric.inc
              (Tel.adversary_violations ~bound:(Oracle.bound_name bound)
                 ~kind:(Oracle.violation_kind_name kind)));
        Some result
      end
    end
  in
  let done_ () =
    !candidates >= budget || (stop_at_first && !witnesses <> [])
  in
  let exhausted = ref false in
  (match schedule with
  | Exhaustive ->
    let rec walk seq =
      if done_ () then ()
      else
        match Seq.uncons seq with
        | None -> exhausted := true
        | Some (strat, rest) ->
          ignore (eval strat);
          walk rest
    in
    walk (Strategy.enumerate ~n ~rounds_total ~max_nodes)
  | Random ->
    let rng = Csm_rng.create seed in
    (* bound draws, not just evaluations: a small space must not spin
       once every strategy has been seen *)
    let draws = ref 0 in
    while (not (done_ ())) && !draws < budget * 4 do
      incr draws;
      ignore (eval (Strategy.random rng ~n ~rounds_total ~max_nodes))
    done
  | Greedy ->
    let rng = Csm_rng.create seed in
    let scored = ref [] in
    let consider strat =
      match eval strat with
      | None -> ()
      | Some r -> scored := (r.Oracle.signal, strat) :: !scored
    in
    for _ = 1 to population do
      if not (done_ ()) then
        consider (Strategy.random rng ~n ~rounds_total ~max_nodes)
    done;
    let stalls = ref 0 in
    while (not (done_ ())) && !stalls < 8 do
      let before = !candidates in
      let ranked =
        List.stable_sort (fun (a, _) (b, _) -> Float.compare b a) !scored
      in
      let rec take k = function
        | [] -> []
        | _ when k = 0 -> []
        | x :: tl -> x :: take (k - 1) tl
      in
      let elite = take elites ranked in
      List.iter
        (fun (_, strat) ->
          for _ = 1 to mutations_per_elite do
            if not (done_ ()) then
              consider (Strategy.mutate rng ~n ~rounds_total ~max_nodes strat)
          done)
        elite;
      (* keep exploring when mutation stops finding fresh candidates *)
      if not (done_ ()) then
        consider (Strategy.random rng ~n ~rounds_total ~max_nodes);
      if !candidates = before then incr stalls else stalls := 0
    done);
  {
    candidates = !candidates;
    witnesses = List.rev !witnesses;
    exhausted = !exhausted;
  }
