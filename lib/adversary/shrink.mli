(** QCheck-style greedy shrinking to a canonical counterexample.

    Candidate moves, tried in a fixed order (fewer nodes, then fewer
    steps, then structurally simpler actions/schedules/seeds), each
    re-validated against [still_fails]; the first accepted move
    restarts the scan, so the result is a local minimum reached
    deterministically — the same witness always shrinks to the same
    canonical trace. *)

val candidates : Strategy.t -> Strategy.t list
(** All single-move simplifications, most aggressive first (exposed for
    tests). *)

val shrink : still_fails:(Strategy.t -> bool) -> Strategy.t -> Strategy.t * int
(** [(minimal, accepted_steps)].  [still_fails] must hold for the input;
    every intermediate accepted strategy also satisfies it.  Bounded
    (at most a few hundred predicate calls); increments
    [csm_adversary_shrink_steps_total] when metrics are enabled. *)
