(* csm-adversary-trace/1: canonical, seed-embedded counterexamples.
   Emission order is fixed so equal traces have equal bytes — the
   committed fixtures are compared byte-for-byte on replay. *)

module Json = Csm_obs.Json

let schema = "csm-adversary-trace/1"

type provenance = {
  schedule : Search.schedule;
  budget : int;
  seed : int;
  candidates : int;
  shrink_steps : int;
}

type t = {
  bound : Oracle.bound;
  instance : Oracle.instance;
  strategy : Strategy.t;
  kind : Oracle.violation_kind;
  detail : string;
  search : provenance;
}

let instance_to_json (i : Oracle.instance) =
  Json.Obj
    [
      ("n", Json.Int i.Oracle.n);
      ("k", Json.Int i.Oracle.k);
      ("d", Json.Int i.Oracle.d);
      ("b", Json.Int i.Oracle.b);
      ("rounds", Json.Int i.Oracle.rounds);
      ("seed", Json.Int i.Oracle.seed);
    ]

let ( let* ) r f = Result.bind r f

let int_field j key =
  match Option.bind (Json.member key j) Json.to_int_opt with
  | Some i -> Ok i
  | None -> Error (Printf.sprintf "missing integer field %S" key)

let str_field j key =
  match Option.bind (Json.member key j) Json.to_string_opt with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "missing string field %S" key)

let obj_field j key =
  match Json.member key j with
  | Some o -> Ok o
  | None -> Error (Printf.sprintf "missing field %S" key)

let instance_of_json j =
  let* n = int_field j "n" in
  let* k = int_field j "k" in
  let* d = int_field j "d" in
  let* b = int_field j "b" in
  let* rounds = int_field j "rounds" in
  let* seed = int_field j "seed" in
  Ok { Oracle.n; k; d; b; rounds; seed }

let to_json t =
  Json.Obj
    [
      ("schema", Json.Str schema);
      ("bound", Json.Str (Oracle.bound_name t.bound));
      ("inequality", Json.Str (Oracle.bound_inequality t.bound));
      ("instance", instance_to_json t.instance);
      ("strategy", Strategy.to_json t.strategy);
      ( "violation",
        Json.Obj
          [
            ("kind", Json.Str (Oracle.violation_kind_name t.kind));
            ("detail", Json.Str t.detail);
          ] );
      ( "search",
        Json.Obj
          [
            ("schedule", Json.Str (Search.schedule_name t.search.schedule));
            ("budget", Json.Int t.search.budget);
            ("seed", Json.Int t.search.seed);
            ("candidates", Json.Int t.search.candidates);
            ("shrink_steps", Json.Int t.search.shrink_steps);
          ] );
    ]

let of_json j =
  let* s = str_field j "schema" in
  if not (String.equal s schema) then
    Error (Printf.sprintf "unsupported schema %S (want %S)" s schema)
  else
    let* bound = Result.bind (str_field j "bound") Oracle.bound_of_name in
    let* instance = Result.bind (obj_field j "instance") instance_of_json in
    let* strategy = Result.bind (obj_field j "strategy") Strategy.of_json in
    let* violation = obj_field j "violation" in
    let* kind =
      Result.bind (str_field violation "kind") Oracle.violation_kind_of_name
    in
    let* detail = str_field violation "detail" in
    let* search = obj_field j "search" in
    let* schedule =
      Result.bind (str_field search "schedule") Search.schedule_of_name
    in
    let* budget = int_field search "budget" in
    let* seed = int_field search "seed" in
    let* candidates = int_field search "candidates" in
    let* shrink_steps = int_field search "shrink_steps" in
    Ok
      {
        bound;
        instance;
        strategy;
        kind;
        detail;
        search = { schedule; budget; seed; candidates; shrink_steps };
      }

let to_string t = Json.to_string (to_json t) ^ "\n"

let write ~path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string t))

let load ~path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error e -> Error e
  | contents -> (
    match Json.parse contents with
    | exception Json.Parse_error e ->
      Error (Printf.sprintf "%s: %s" path e)
    | j -> of_json j)

let replay t =
  let r = Oracle.check t.bound t.instance t.strategy in
  match r.Oracle.verdict with
  | Oracle.Safe ->
    Error "replay diverged: the recorded strategy no longer violates"
  | Oracle.Violation { kind; detail } ->
    if
      String.equal
        (Oracle.violation_kind_name kind)
        (Oracle.violation_kind_name t.kind)
      && String.equal detail t.detail
    then Ok ()
    else
      Error
        (Printf.sprintf
           "replay diverged: recorded %s (%s), replayed %s (%s)"
           (Oracle.violation_kind_name t.kind)
           t.detail
           (Oracle.violation_kind_name kind)
           detail)
