(** The Byzantine strategy DSL: plain, serializable data composing
    per-node, per-round behaviors — the search space of the adversary
    synthesis engine.

    A strategy is a set of node plans; each plan is an ordered list of
    steps, and the first step whose round schedule matches the current
    round decides that node's action (no match: the node acts honestly
    that round).  Actions cover the paper's authenticated-faults
    adversary: selective silence toward a target set, structured
    corrupt-coded-symbol patterns (a valid-looking codeword off by one
    coordinate, a colluding low-degree codeword shift), unstructured
    garbage, receiver-dependent equivocation, and GST-shaped timing via
    the [From]/[Until] schedules.  Everything is plain data — two
    strategies with equal [key]s run identically from the same seed. *)

type rounds =
  | Always
  | Only of int list  (** exactly these rounds *)
  | From of int  (** rounds ≥ r: the post-GST attack window *)
  | Until of int  (** rounds < r: delayed delivery until (around) GST *)
  | Every of { period : int; phase : int }
      (** rounds r with r mod period = phase: flip-flop schedules *)

type action =
  | Silence of int list
      (** withhold the Result toward these observers ([[]]: everyone) *)
  | Shift of int  (** add a constant to every coordinate *)
  | Coord of { index : int; delta : int }
      (** a valid-looking codeword off by [delta] at one coordinate *)
  | Codeword of { seed : int }
      (** colluding low-degree polynomial shift δ(z): every liar
          reports (h+δ)(αᵢ) — the bound-tight consistent fake *)
  | Garbage of { seed : int }  (** fresh pseudo-random vector *)
  | Equivocate of { seed : int }
      (** a different wrong vector per receiver *)

type step = { rounds : rounds; act : action }
type plan = { node : int; steps : step list }
type t = { plans : plan list }

val make : plan list -> t
(** Canonicalize: drop empty plans, dedup nodes (first plan wins), sort
    by node id. *)

val honest : t
val byz_nodes : t -> int list
val size : t -> int
(** Number of Byzantine nodes. *)

val active : rounds -> round:int -> bool

val action_at : t -> node:int -> round:int -> action option
(** First matching step's action; [None] = honest this round. *)

val silent_toward : action -> observer:int -> bool
(** Does this action withhold the symbol from [observer]? *)

val key : t -> string
(** Canonical serialization — equal keys ⇔ identical behavior. *)

val equal : t -> t -> bool
val name : t -> string
val pp : Format.formatter -> t -> unit

val to_json : t -> Csm_obs.Json.t
val of_json : Csm_obs.Json.t -> (t, string) result
(** Total: malformed documents return [Error]. *)

val atoms : n:int -> rounds_total:int -> step list
(** The single-step alphabet the bounded-exhaustive schedule composes:
    silence (full and selective), shifts, one-coordinate lies, the
    colluding codeword, garbage, equivocation, a flip-flop schedule and
    pre-/post-GST windows sized to [rounds_total]. *)

val enumerate : n:int -> rounds_total:int -> max_nodes:int -> t Seq.t
(** Bounded-exhaustive class: every non-empty subset of ≤ [max_nodes]
    nodes from a small prefix pool, uniformly running each atom.
    Deterministic order, largest subsets first so above-bound witnesses
    surface within small budgets; heterogeneous plans are reached by
    the random and greedy schedules. *)

val random : Csm_rng.t -> n:int -> rounds_total:int -> max_nodes:int -> t
(** Heterogeneous sample: each chosen node gets 1–2 independently drawn
    steps. *)

val mutate : Csm_rng.t -> n:int -> rounds_total:int -> max_nodes:int -> t -> t
(** One structural edit (add/remove/replace a plan or step), for the
    greedy escalation schedule. *)
