(** Replayable counterexample traces ([csm-adversary-trace/1]).

    A trace is self-contained: the bound, the exact instance (seeds
    included), the shrunk strategy and the recorded violation, plus the
    search provenance that found it.  [replay] re-runs the oracle from
    the embedded data and demands the identical violation; serialization
    is canonical, so re-emitting a loaded trace reproduces the file
    byte for byte. *)

val schema : string

type provenance = {
  schedule : Search.schedule;
  budget : int;
  seed : int;  (** search seed *)
  candidates : int;  (** oracle evaluations before the witness *)
  shrink_steps : int;
}

type t = {
  bound : Oracle.bound;
  instance : Oracle.instance;
  strategy : Strategy.t;
  kind : Oracle.violation_kind;
  detail : string;
  search : provenance;
}

val to_json : t -> Csm_obs.Json.t
val of_json : Csm_obs.Json.t -> (t, string) result

val to_string : t -> string
(** Canonical bytes: JSON document plus a trailing newline. *)

val write : path:string -> t -> unit
val load : path:string -> (t, string) result

val replay : t -> (unit, string) result
(** Re-run the embedded strategy through the oracle; [Ok] exactly when
    the violation kind and detail match the recording. *)
