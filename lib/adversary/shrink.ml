(* Greedy first-accepting shrink.  The move order encodes "simpler":
   dropping a whole node beats dropping a step beats simplifying an
   action beats flattening a schedule beats zeroing a seed — so the
   fixpoint is the structurally smallest strategy that still violates
   the oracle. *)

module Metric = Csm_obs.Metric
module Tel = Csm_obs.Telemetry

open Strategy

(* one-step-simpler variants of an action, preferred first *)
let simpler_actions = function
  | Silence [] -> []
  | Silence _ -> [ Silence [] ]
  | Shift 1 -> [ Silence [] ]
  | Shift _ -> [ Shift 1 ]
  | Coord { index = _; delta = 1 } -> [ Shift 1 ]
  | Coord { index; delta = _ } -> [ Coord { index; delta = 1 }; Shift 1 ]
  | Codeword { seed = 0 } -> [ Shift 1 ]
  | Codeword { seed = _ } -> [ Codeword { seed = 0 }; Shift 1 ]
  | Garbage { seed = 0 } -> [ Codeword { seed = 0 }; Shift 1 ]
  | Garbage { seed = _ } -> [ Garbage { seed = 0 } ]
  | Equivocate { seed = 0 } -> [ Garbage { seed = 0 } ]
  | Equivocate { seed = _ } -> [ Equivocate { seed = 0 } ]

let simpler_rounds = function
  | Always -> []
  | Only [ 0 ] -> [ Always ]
  | Only [ _ ] -> [ Only [ 0 ]; Always ]
  | Only (r :: _) -> [ Only [ r ] ]
  | Only [] -> []
  | From r -> [ Always; Only [ r ] ]
  | Until _ -> [ Always; Only [ 0 ] ]
  | Every { period = _; phase } -> [ Always; Only [ phase ] ]

let replace_nth l i x = List.mapi (fun j y -> if j = i then x else y) l
let remove_nth l i = List.filteri (fun j _ -> j <> i) l

let candidates t =
  let plans = t.plans in
  let with_plans ps = make ps in
  let drop_plan =
    if List.length plans <= 1 then []
    else List.mapi (fun i _ -> with_plans (remove_nth plans i)) plans
  in
  let drop_step =
    List.concat
      (List.mapi
         (fun i p ->
           if List.length p.steps <= 1 then []
           else
             List.mapi
               (fun j _ ->
                 with_plans
                   (replace_nth plans i { p with steps = remove_nth p.steps j }))
               p.steps)
         plans)
  in
  let edit_step f =
    List.concat
      (List.mapi
         (fun i p ->
           List.concat
             (List.mapi
                (fun j s ->
                  List.map
                    (fun s' ->
                      with_plans
                        (replace_nth plans i
                           { p with steps = replace_nth p.steps j s' }))
                    (f s))
                p.steps))
         plans)
  in
  let simplify_act =
    edit_step (fun s ->
        List.map (fun act -> { s with act }) (simpler_actions s.act))
  in
  let simplify_rounds =
    edit_step (fun s ->
        List.map (fun rounds -> { s with rounds }) (simpler_rounds s.rounds))
  in
  drop_plan @ drop_step @ simplify_act @ simplify_rounds

let max_accepted = 64
let max_checks = 512

let shrink ~still_fails t =
  let checks = ref 0 in
  let steps = ref 0 in
  let current = ref t in
  let progress = ref true in
  while !progress && !steps < max_accepted && !checks < max_checks do
    progress := false;
    let key0 = key !current in
    let rec try_moves = function
      | [] -> ()
      | c :: rest ->
        if !checks >= max_checks then ()
        else if String.equal (key c) key0 then try_moves rest
        else begin
          incr checks;
          if still_fails c then begin
            current := c;
            incr steps;
            progress := true;
            if Metric.enabled () then Metric.inc Tel.adversary_shrink_steps
          end
          else try_moves rest
        end
    in
    try_moves (candidates !current)
  done;
  (!current, !steps)
