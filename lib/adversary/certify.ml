(* The two-sided certificate: no violation with ≤ b nodes, a shrunk and
   replayable violation with b + 1.  The shrink predicate keeps the
   above-bound admissibility cap, so minimization can never cheat by
   escaping the searched class. *)

module Json = Csm_obs.Json

type bound_report = {
  bound : Oracle.bound;
  instance : Oracle.instance;
  at_candidates : int;
  at_exhausted : bool;
  safety_holds_at_bound : bool;
  above_candidates : int;
  witness : Trace.t option;
  witness_found_above_bound : bool;
  replay_ok : bool;
}

type report = {
  schedule : Search.schedule;
  budget : int;
  seed : int;
  bounds : bound_report list;
  safety_holds_at_bound : bool;
  witness_found_above_bound : bool;
  replay_ok : bool;
}

let certify_bound ~schedule ~budget ~seed bound =
  let instance = Oracle.instance_for bound ~seed in
  let b = instance.Oracle.b in
  let at =
    Search.search ~bound ~instance ~max_nodes:b ~budget ~schedule ~seed ()
  in
  let above =
    Search.search ~stop_at_first:true ~bound ~instance ~max_nodes:(b + 1)
      ~budget ~schedule ~seed ()
  in
  let witness =
    match above.Search.witnesses with
    | [] -> None
    | (strat, _) :: _ ->
      let still_fails s =
        Strategy.size s <= b + 1
        && List.for_all
             (fun i -> i >= 0 && i < instance.Oracle.n)
             (Strategy.byz_nodes s)
        &&
        match (Oracle.check bound instance s).Oracle.verdict with
        | Oracle.Violation _ -> true
        | Oracle.Safe -> false
      in
      let minimal, shrink_steps = Shrink.shrink ~still_fails strat in
      (* record the minimal strategy's own violation, not the seed
         witness's — replay checks kind AND detail *)
      (match (Oracle.check bound instance minimal).Oracle.verdict with
      | Oracle.Violation { kind; detail } ->
        Some
          {
            Trace.bound;
            instance;
            strategy = minimal;
            kind;
            detail;
            search =
              {
                Trace.schedule;
                budget;
                seed;
                candidates = above.Search.candidates;
                shrink_steps;
              };
          }
      | Oracle.Safe -> None)
  in
  let replay_ok =
    match witness with
    | None -> false
    | Some t -> (
      (* round-trip through the canonical bytes, then replay *)
      match Trace.of_json (Json.parse (Trace.to_string t)) with
      | Error _ -> false
      | Ok t' ->
        String.equal (Trace.to_string t') (Trace.to_string t)
        && (match Trace.replay t' with Ok () -> true | Error _ -> false))
  in
  {
    bound;
    instance;
    at_candidates = at.Search.candidates;
    at_exhausted = at.Search.exhausted;
    safety_holds_at_bound = at.Search.witnesses = [];
    above_candidates = above.Search.candidates;
    witness;
    witness_found_above_bound = witness <> None;
    replay_ok;
  }

let all ?(bounds = Oracle.certified_bounds) ~schedule ~budget ~seed () =
  let reports =
    List.map (fun b -> certify_bound ~schedule ~budget ~seed b) bounds
  in
  {
    schedule;
    budget;
    seed;
    bounds = reports;
    safety_holds_at_bound =
      List.for_all (fun (r : bound_report) -> r.safety_holds_at_bound) reports;
    witness_found_above_bound =
      List.for_all
        (fun (r : bound_report) -> r.witness_found_above_bound)
        reports;
    replay_ok = List.for_all (fun (r : bound_report) -> r.replay_ok) reports;
  }

let bound_report_to_json r =
  let i = r.instance in
  Json.Obj
    [
      ("bound", Json.Str (Oracle.bound_name r.bound));
      ("inequality", Json.Str (Oracle.bound_inequality r.bound));
      ( "instance",
        Json.Obj
          [
            ("n", Json.Int i.Oracle.n);
            ("k", Json.Int i.Oracle.k);
            ("d", Json.Int i.Oracle.d);
            ("b", Json.Int i.Oracle.b);
            ("rounds", Json.Int i.Oracle.rounds);
            ("seed", Json.Int i.Oracle.seed);
          ] );
      ("at_bound_candidates", Json.Int r.at_candidates);
      ("at_bound_exhausted", Json.Bool r.at_exhausted);
      ("safety_holds_at_bound", Json.Bool r.safety_holds_at_bound);
      ("above_bound_candidates", Json.Int r.above_candidates);
      ("witness_found_above_bound", Json.Bool r.witness_found_above_bound);
      ("replay_ok", Json.Bool r.replay_ok);
      ( "witness",
        match r.witness with
        | None -> Json.Null
        | Some t ->
          Json.Obj
            [
              ("strategy", Json.Str (Strategy.name t.Trace.strategy));
              ("nodes", Json.Int (Strategy.size t.Trace.strategy));
              ("kind", Json.Str (Oracle.violation_kind_name t.Trace.kind));
              ("detail", Json.Str t.Trace.detail);
              ("shrink_steps", Json.Int t.Trace.search.Trace.shrink_steps);
            ] );
    ]

let report_to_json r =
  Json.Obj
    [
      ("schedule", Json.Str (Search.schedule_name r.schedule));
      ("budget", Json.Int r.budget);
      ("seed", Json.Int r.seed);
      ("bounds", Json.List (List.map bound_report_to_json r.bounds));
      ("safety_holds_at_bound", Json.Bool r.safety_holds_at_bound);
      ("witness_found_above_bound", Json.Bool r.witness_found_above_bound);
      ("replay_ok", Json.Bool r.replay_ok);
    ]
