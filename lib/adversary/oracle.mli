(** Safety/liveness oracles for the Table-2 bounds: evaluate one
    strategy on one instance and report whether the defender's guarantee
    survived.

    The instances are derived from {!Csm_harness.Table2.standard_cases}
    so the searched tightness certificates and the scripted boundary
    checks exercise the same configurations.  [instance.b] is always the
    DEFENDER's assumed bound — thresholds, decode radii and PBFT quorums
    are built from it — while the strategy under test may control more
    nodes; that asymmetry is exactly what the tightness certifier
    probes. *)

type bound =
  | Decode_sync  (** 2b + 1 ≤ N − d(K−1) *)
  | Decode_partial  (** 3b + 1 ≤ N − d(K−1) *)
  | Output_delivery  (** 2b + 1 ≤ N *)
  | Input_totality  (** 3b + 1 ≤ N (PBFT, partial synchrony) *)

val all_bounds : bound list

val certified_bounds : bound list
(** The three Table-2 bound families certified by the smoke gate (one
    representative per inequality; [Decode_partial] stays reachable from
    the CLI). *)

val bound_name : bound -> string
val bound_of_name : string -> (bound, string) result
val bound_inequality : bound -> string

type instance = {
  n : int;
  k : int;
  d : int;
  b : int;  (** the defender's assumed fault bound *)
  rounds : int;
  seed : int;  (** seeds initial states, commands and keyrings *)
}

val instance_for : bound -> seed:int -> instance
(** The standard instance (first matching [Table2.standard_cases]
    entry) with the defender bound computed from the paper's
    inequality. *)

type violation_kind = Safety | Liveness

val violation_kind_name : violation_kind -> string
val violation_kind_of_name : string -> (violation_kind, string) result

type verdict = Safe | Violation of { kind : violation_kind; detail : string }

type result = {
  verdict : verdict;
  signal : float;
      (** Search gradient: corrected decoder error locations, withheld
          symbols, stalled honest nodes.  Strictly an escalation hint —
          never part of the verdict. *)
}

val check : bound -> instance -> Strategy.t -> result
(** Deterministic: same bound, instance and strategy always produce the
    same result.  Runs with metrics disabled so decoder-suspicion state
    accumulated elsewhere cannot leak into verdicts. *)
