(* Real socket transport: one listening socket per endpoint (Unix
   domain by default, TCP loopback optionally), length-prefixed frames
   on byte streams.

   Receive path: an accept thread hands each inbound connection to a
   reader thread that loops { read 16 header bytes; validate via
   [Frame.decode_header]; read the claimed body } and pushes decoded
   frames into the endpoint's mailbox.  A malformed header is
   unrecoverable on a byte stream (framing is lost), so it counts one
   frame error and drops the connection — the sender can reconnect; the
   receiver never crashes.

   Send path: per-peer queues drained by per-peer sender threads, so
   [send] returns immediately and a dead or silent peer cannot stall a
   protocol round.  Connections are opened lazily with retry and
   exponential backoff (peers of a freshly forked cluster come up in
   arbitrary order); a frame that cannot be written after a reconnect
   is dropped.

   Deadlines: [recv ~timeout] bounds how long a round waits on the
   mailbox, the receiver-side defence against withholding peers. *)

module Frame = Csm_wire.Frame
module Lockdep = Csm_parallel.Lockdep

type addr =
  | Uds of string  (* directory holding ep-<id>.sock *)
  | Tcp of int  (* base port; endpoint i listens on base + i *)

let sockaddr_of addr id =
  match addr with
  | Uds dir ->
    Unix.ADDR_UNIX (Filename.concat dir (Printf.sprintf "ep-%d.sock" id))
  | Tcp base -> Unix.ADDR_INET (Unix.inet_addr_loopback, base + id)

let poll_interval = 0.0005

(* Backoff schedule for connect retries: 2ms doubling, capped. *)
let backoff_delay attempt = min 0.1 (0.002 *. (2. ** float_of_int attempt))

let rec really_read fd buf pos len =
  if len > 0 then begin
    let n = Unix.read fd buf pos len in
    if n = 0 then raise End_of_file;
    really_read fd buf (pos + n) (len - n)
  end

let rec really_write fd buf pos len =
  if len > 0 then begin
    let n = Unix.write fd buf pos len in
    really_write fd buf (pos + n) (len - n)
  end

type peer = {
  pq : string Queue.t;
  pm : Lockdep.t;
  pc : Condition.t;
  mutable fd : Unix.file_descr option;
  mutable started : bool;
}

let endpoint ~addr ~id ~endpoints =
  if id < 0 || id >= endpoints then invalid_arg "Socket.endpoint: bad id";
  let closed = ref false in
  let incoming : Frame.t Queue.t = Queue.create () in
  let im = Lockdep.create "socket.incoming" in
  let conns : Unix.file_descr list ref = ref [] in
  let cm = Lockdep.create "socket.conns" in
  (* --- listener --- *)
  let domain =
    match addr with Uds _ -> Unix.PF_UNIX | Tcp _ -> Unix.PF_INET
  in
  let listener = Unix.socket domain Unix.SOCK_STREAM 0 in
  let sa = sockaddr_of addr id in
  (match addr with
  | Uds dir ->
    (try Unix.unlink (Filename.concat dir (Printf.sprintf "ep-%d.sock" id))
     with Unix.Unix_error _ -> ())
  | Tcp _ -> Unix.setsockopt listener Unix.SO_REUSEADDR true);
  Unix.bind listener sa;
  Unix.listen listener 64;
  let t =
    {
      Transport.id;
      endpoints;
      send = (fun ~dst:_ _ -> ());
      recv = (fun ~timeout:_ -> None);
      close = (fun () -> ());
      stats = Transport.zero_stats ();
      stats_mutex = Lockdep.create "socket.stats";
    }
  in
  (* --- readers --- *)
  let reader conn =
    let hdr = Bytes.create Frame.header_bytes in
    (try
       while not !closed do
         really_read conn hdr 0 Frame.header_bytes;
         match Frame.decode_header (Bytes.to_string hdr) with
         | None ->
           (* framing lost: count and drop the connection *)
           Transport.record_error t;
           raise Exit
         | Some h ->
           let body_len = Frame.body_bytes h in
           let body = Bytes.create body_len in
           really_read conn body 0 body_len;
           Transport.record_received t (Frame.header_bytes + body_len);
           (match Frame.of_header h ~body:(Bytes.unsafe_to_string body) with
           | Some fr -> Lockdep.with_lock im (fun () -> Queue.push fr incoming)
           | None -> Transport.record_error t)
       done
     with
    | End_of_file | Exit | Unix.Unix_error _ -> ()
    | _ -> ());
    Lockdep.with_lock cm (fun () ->
        conns := List.filter (fun fd -> fd != conn) !conns);
    try Unix.close conn with Unix.Unix_error _ -> ()
  in
  let _accept_thread =
    Thread.create
      (fun () ->
        try
          while not !closed do
            let conn, _ = Unix.accept listener in
            Lockdep.with_lock cm (fun () -> conns := conn :: !conns);
            ignore (Thread.create reader conn)
          done
        with Unix.Unix_error _ | Invalid_argument _ -> ())
      ()
  in
  (* --- senders --- *)
  let peers =
    Array.init endpoints (fun _ ->
        {
          pq = Queue.create ();
          pm = Lockdep.create "socket.peer";
          pc = Condition.create ();
          fd = None;
          started = false;
        })
  in
  let connect_with_backoff dst =
    let rec go attempt =
      if !closed then None
      else begin
        let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
        match Unix.connect fd (sockaddr_of addr dst) with
        | () -> Some fd
        | exception Unix.Unix_error _ ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          Thread.delay (backoff_delay attempt);
          go (attempt + 1)
      end
    in
    go 0
  in
  let sender_loop dst =
    let peer = peers.(dst) in
    let ensure_fd () =
      match peer.fd with
      | Some fd -> Some fd
      | None ->
        let fd = connect_with_backoff dst in
        peer.fd <- fd;
        fd
    in
    let write_frame bytes =
      let attempt fd =
        try
          really_write fd (Bytes.unsafe_of_string bytes) 0 (String.length bytes);
          true
        with Unix.Unix_error _ | End_of_file ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          peer.fd <- None;
          false
      in
      match ensure_fd () with
      | None -> ()  (* endpoint closed while retrying: drop *)
      | Some fd ->
        if not (attempt fd) then (
          (* one reconnect, then give up on this frame *)
          match ensure_fd () with
          | Some fd2 -> ignore (attempt fd2)
          | None -> ())
    in
    let rec loop () =
      let item =
        Lockdep.with_lock peer.pm (fun () ->
            while Queue.is_empty peer.pq && not !closed do
              Lockdep.wait peer.pc peer.pm
            done;
            if Queue.is_empty peer.pq then None else Some (Queue.pop peer.pq))
      in
      match item with
      | Some bytes ->
        write_frame bytes;
        loop ()
      | None -> ()  (* closed and drained *)
    in
    loop ()
  in
  let send ~dst frame =
    if (not !closed) && dst >= 0 && dst < endpoints then begin
      let bytes = Frame.encode frame in
      Transport.record_sent t (String.length bytes);
      let peer = peers.(dst) in
      Lockdep.with_lock peer.pm (fun () ->
          if not peer.started then begin
            peer.started <- true;
            ignore (Thread.create sender_loop dst)
          end;
          Queue.push bytes peer.pq;
          Condition.signal peer.pc)
    end
  in
  let recv ~timeout =
    let deadline = Unix.gettimeofday () +. timeout in
    let rec loop () =
      if !closed then None
      else begin
        let item =
          Lockdep.with_lock im (fun () ->
              if Queue.is_empty incoming then None
              else Some (Queue.pop incoming))
        in
        match item with
        | Some fr -> Some fr
        | None ->
          if Unix.gettimeofday () >= deadline then None
          else begin
            Thread.delay poll_interval;
            loop ()
          end
      end
    in
    loop ()
  in
  let close () =
    if not !closed then begin
      (* let sender threads flush their queues (bounded) *)
      let flush_deadline = Unix.gettimeofday () +. 1.0 in
      let pending () =
        Array.exists
          (fun p ->
            Lockdep.with_lock p.pm (fun () -> not (Queue.is_empty p.pq)))
          peers
      in
      while pending () && Unix.gettimeofday () < flush_deadline do
        Thread.delay 0.002
      done;
      closed := true;
      Array.iter
        (fun p ->
          Lockdep.with_lock p.pm (fun () -> Condition.broadcast p.pc))
        peers;
      (try Unix.close listener with Unix.Unix_error _ -> ());
      Array.iter
        (fun p ->
          match p.fd with
          | Some fd -> (
            p.fd <- None;
            try Unix.close fd with Unix.Unix_error _ -> ())
          | None -> ())
        peers;
      let cs =
        Lockdep.with_lock cm (fun () ->
            let cs = !conns in
            conns := [];
            cs)
      in
      List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) cs;
      match addr with
      | Uds dir -> (
        try Unix.unlink (Filename.concat dir (Printf.sprintf "ep-%d.sock" id))
        with Unix.Unix_error _ -> ())
      | Tcp _ -> ()
    end
  in
  { t with Transport.send; recv; close }
