(** In-process loopback transport, bit-compatible with the socket path:
    frames are encoded on send and decoded on receive, so byte counts
    and corruption handling match a real socket run exactly, while
    delivery is immediate and deterministic. *)

type net

val create : endpoints:int -> net
(** One shared in-memory network with [endpoints] mailboxes (node ids
    [0 .. endpoints-1]; by convention the cluster client is the last). *)

val endpoint : net -> id:int -> Transport.t
(** The endpoint for [id]; safe to drive from its own thread. *)
