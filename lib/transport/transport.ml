(* The transport abstraction: what a CSM node runtime needs from the
   network, as a record of closures so in-process loopback and real
   sockets are interchangeable at runtime (the cluster driver picks one
   from a CLI flag).

   Contract shared by every implementation:

   - [send] hands a frame to the transport and returns immediately; it
     never blocks on a dead, slow or silent peer (per-peer queues, so a
     Byzantine peer cannot stall a round from the sender side);
   - [recv] returns the next delivered frame, waiting at most [timeout]
     seconds; [None] means the deadline passed — the receiver-side
     guard against silent peers;
   - a frame that fails header validation is counted in
     [stats.frame_errors] and dropped, never surfaced as an exception;
   - [stats] counts frames/bytes at the moment of hand-off to the
     transport ([send]) and of delivery to the endpoint's queue, so
     loopback and socket runs of the same protocol produce identical
     counts. *)

module Frame = Csm_wire.Frame
module Lockdep = Csm_parallel.Lockdep

type stats = {
  mutable frames_sent : int;
  mutable frames_received : int;
  mutable bytes_sent : int;
  mutable bytes_received : int;
  mutable frame_errors : int;
}

let zero_stats () =
  {
    frames_sent = 0;
    frames_received = 0;
    bytes_sent = 0;
    bytes_received = 0;
    frame_errors = 0;
  }

type t = {
  id : int;  (* this endpoint's id; frames it sends carry it as sender *)
  endpoints : int;  (* valid destination ids are 0 .. endpoints-1 *)
  send : dst:int -> Frame.t -> unit;
  recv : timeout:float -> Frame.t option;
  close : unit -> unit;
  stats : stats;
  stats_mutex : Lockdep.t;
}

let locked t f = Lockdep.with_lock t.stats_mutex f

let record_sent t bytes =
  locked t (fun () ->
      t.stats.frames_sent <- t.stats.frames_sent + 1;
      t.stats.bytes_sent <- t.stats.bytes_sent + bytes)

let record_received t bytes =
  locked t (fun () ->
      t.stats.frames_received <- t.stats.frames_received + 1;
      t.stats.bytes_received <- t.stats.bytes_received + bytes)

let record_error t =
  locked t (fun () -> t.stats.frame_errors <- t.stats.frame_errors + 1)

let snapshot t =
  locked t (fun () ->
      {
        frames_sent = t.stats.frames_sent;
        frames_received = t.stats.frames_received;
        bytes_sent = t.stats.bytes_sent;
        bytes_received = t.stats.bytes_received;
        frame_errors = t.stats.frame_errors;
      })
