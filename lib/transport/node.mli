(** One CSM node runtime over an abstract {!Transport.t}: owns its coded
    state S̃ᵢ (in a local engine instance) and speaks the Frame protocol
    for the commit → compute → decode round structure.  Inbound payloads
    are validated at intake with the total binary decoders: malformed
    bodies count one transport frame error and are dropped, never
    raised; collect loops are deadline-bounded so silent peers cannot
    stall a round. *)

module Field_intf = Csm_field.Field_intf
module Frame = Csm_wire.Frame
module Params = Csm_core.Params

type lie_spec = {
  l_offset : int;  (** field perturbation added to targeted coordinates *)
  l_coord : int option;  (** [None]: every coordinate; [Some c]: just c *)
  l_period : int;  (** lie on rounds r with (r − l_from) mod period = 0 *)
  l_from : int;  (** first lying round *)
}

val lie_default : lie_spec
(** Offset 1, every coordinate, every round from round 0 — the
    original always-on [lie] fault. *)

val lie_spec_eq : lie_spec -> lie_spec -> bool
val lie_active : lie_spec -> round:int -> bool

type fault =
  | Honest
  | Drop  (** withhold every protocol frame *)
  | Delay of float  (** send protocol frames late by this many seconds *)
  | Corrupt  (** mangle every protocol payload (detectably malformed) *)
  | Lie of lie_spec
      (** broadcast a well-formed but wrong Result vector while keeping
          honest local state and honest Commit echoes — intake
          validation passes; only the peers' Reed–Solomon decode
          catches it, attributing the error locations to the liar
          (suspicion gauge, live [suspicion] alert).  The spec
          parameterizes the perturbation and its round schedule, so
          synthesized adversary strategies map onto it. *)

val fault_name : fault -> string

val delivers : fault -> bool
(** Whether a node with this fault contributes validated protocol frames
    ([Honest]/[Delay]/[Lie] do; [Drop] withholds, [Corrupt] frames are
    rejected at intake). *)

module Make (F : Field_intf.S) : sig
  module W : module type of Csm_core.Wire.Make (F)
  module E : module type of Csm_core.Engine.Make (F)
  module M = E.M

  type config = {
    node : int;
    params : Params.t;
    machine : M.t;
    init : F.t array array;  (** the K initial states, shared by all *)
    rounds : int;
    fault : fault;  (** this node's own transport-level fault *)
    faults : (int * fault) list;  (** the whole cluster's fault map *)
    deadline : float;  (** per-wait upper bound, seconds *)
    trace : bool;
        (** stamp outbound protocol frames with the v2 trace extension
            (trace id + HLC send stamp) and enable span recording; off,
            the node's wire bytes are identical to the pre-v2 runtime *)
    telemetry : bool;
        (** after the Stats reply, ship a [csm-node-telemetry/1] bundle
            (metrics, spans, events, flight ring) in a Telemetry frame *)
    stream : float option;
        (** emit in-flight [csm-node-telemetry/2] delta frames to the
            client at most this often (seconds) while running — changed
            families with cumulative values, a full snapshot first and
            every tenth emission, plus the new event-log tail.  [None]:
            end-of-run telemetry only.  Deltas are control frames,
            exempt from the node's fault like Stats *)
    scope : Csm_obs.Agg.scope;
        (** what this runtime's registry snapshots describe: [Process]
            when node threads share one registry (loopback), [Node]
            when this process owns it (forked modes) — drives the
            client-side source keying and dedup *)
  }

  val corrupt_payload : string -> string
  (** The [Corrupt] fault's mangling (exposed for tests): flips a byte
      and drops the last, so every total decoder rejects the result. *)

  val stats_payload : Transport.stats -> string
  (** Binary Stats-frame payload: five big-endian u64 counters. *)

  val decode_stats_payload : string -> Transport.stats option

  val run : config -> Transport.t -> unit
  (** Run all configured rounds, wait for the client's [Shutdown], reply
      with a [Stats] frame, close the transport.  Never raises on
      Byzantine input. *)
end
