(* In-process loopback transport: per-endpoint mailboxes of *encoded*
   frames.  Bit-compatible with the socket path — every frame goes
   through [Frame.encode] on send and [Frame.decode] on receive, so
   byte counts, size limits and corruption detection behave exactly as
   over a real socket — while delivery is immediate and in send order,
   which keeps single-process cluster tests deterministic and fast.

   Endpoints may live on different threads of one process (the cluster
   driver runs one node per thread); mailboxes are mutex-guarded and
   [recv] polls with a short sleep, which is plenty for protocol-scale
   message rates.

   Counting: received frames/bytes are recorded at delivery into the
   destination mailbox (send time), mirroring the socket transport's
   reader-thread intake — so both transports report identical counts
   for the same protocol run. *)

module Frame = Csm_wire.Frame
module Lockdep = Csm_parallel.Lockdep

type slot = {
  q : string Queue.t;
  m : Lockdep.t;
  stats : Transport.stats;
  sm : Lockdep.t;
}

type net = { slots : slot array }

let create ~endpoints =
  if endpoints < 1 then invalid_arg "Loopback.create: endpoints >= 1";
  {
    slots =
      Array.init endpoints (fun _ ->
          {
            q = Queue.create ();
            m = Lockdep.create "loopback.mailbox";
            stats = Transport.zero_stats ();
            sm = Lockdep.create "loopback.stats";
          });
  }

let poll_interval = 0.0005

let endpoint net ~id =
  let endpoints = Array.length net.slots in
  if id < 0 || id >= endpoints then invalid_arg "Loopback.endpoint: bad id";
  let me = net.slots.(id) in
  let closed = ref false in
  let t =
    {
      Transport.id;
      endpoints;
      send = (fun ~dst:_ _ -> ());  (* replaced below *)
      recv = (fun ~timeout:_ -> None);
      close = (fun () -> closed := true);
      stats = me.stats;
      stats_mutex = me.sm;
    }
  in
  let send ~dst frame =
    if (not !closed) && dst >= 0 && dst < endpoints then begin
      let bytes = Frame.encode frame in
      let len = String.length bytes in
      Transport.record_sent t len;
      let peer = net.slots.(dst) in
      Lockdep.with_lock peer.sm (fun () ->
          peer.stats.frames_received <- peer.stats.frames_received + 1;
          peer.stats.bytes_received <- peer.stats.bytes_received + len);
      Lockdep.with_lock peer.m (fun () -> Queue.push bytes peer.q)
    end
  in
  let recv ~timeout =
    let deadline = Unix.gettimeofday () +. timeout in
    let rec loop () =
      if !closed then None
      else begin
        let item =
          Lockdep.with_lock me.m (fun () ->
              if Queue.is_empty me.q then None else Some (Queue.pop me.q))
        in
        match item with
        | Some bytes -> (
          match Frame.decode bytes with
          | Some fr -> Some fr
          | None ->
            Transport.record_error t;
            loop ())
        | None ->
          if Unix.gettimeofday () >= deadline then None
          else begin
            Thread.delay poll_interval;
            loop ()
          end
      end
    in
    loop ()
  in
  { t with Transport.send; recv }
