(** The transport abstraction of the node runtime: non-blocking [send],
    deadline-bounded [recv], totals counted identically by every
    implementation (loopback and sockets are interchangeable and
    bit-compatible on the wire).

    Invariants every implementation provides:
    - [send] never blocks on a dead/slow/silent peer;
    - [recv ~timeout] returns [None] once the deadline passes;
    - malformed frames are counted in [stats.frame_errors] and dropped,
      never raised. *)

module Frame = Csm_wire.Frame
module Lockdep = Csm_parallel.Lockdep

type stats = {
  mutable frames_sent : int;
  mutable frames_received : int;
  mutable bytes_sent : int;  (** full frame bytes, header included *)
  mutable bytes_received : int;
  mutable frame_errors : int;  (** malformed frames detected and dropped *)
}

val zero_stats : unit -> stats

type t = {
  id : int;
  endpoints : int;
  send : dst:int -> Frame.t -> unit;
  recv : timeout:float -> Frame.t option;
  close : unit -> unit;
  stats : stats;
  stats_mutex : Lockdep.t;
      (** checked lock ({!Csm_parallel.Lockdep}): CSM_LOCKDEP=1 folds
          stats acquisitions into the global lock-order graph *)
}

val record_sent : t -> int -> unit
val record_received : t -> int -> unit
val record_error : t -> unit

val snapshot : t -> stats
(** Consistent copy of the counters (they are updated from reader
    threads in the socket transport). *)
