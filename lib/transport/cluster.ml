(* The multi-node cluster driver: N node runtimes plus one client,
   wired over loopback (threads in this process) or real sockets (one
   forked child process per node), same protocol bytes either way.

   The client (endpoint N) drives R rounds: broadcast the round's
   commands, collect the nodes' decoded Output frames, accept the
   payload b+1 nodes agree on (the vote — up to b Byzantine nodes may
   ship arbitrary bytes, so agreement among b+1 pins the honest value).
   The per-round accepted payloads form the cluster ledger, which
   [verify] compares byte-for-byte against a fault-free single-process
   engine run at the same seed.

   Fork safety (OCaml 5): socket mode forks the node children BEFORE
   the parent touches the domain pool or spawns any thread — the
   client endpoint, the client loop and the in-process reference run
   all happen strictly after the forks, and each child pins its pool
   to one domain and leaves with [Unix._exit]. *)

module Field_intf = Csm_field.Field_intf
module Frame = Csm_wire.Frame
module Params = Csm_core.Params
module Pool = Csm_parallel.Pool
module Clock = Csm_obs.Clock
module Flight = Csm_obs.Flight
module Agg = Csm_obs.Agg
module Live = Csm_obs.Live

type mode =
  | Loopback  (** threads in this process, in-memory frames *)
  | Uds of string  (** forked processes, Unix-domain sockets in a dir *)
  | Tcp of int  (** forked processes, TCP loopback from a base port *)

let mode_name = function
  | Loopback -> "loopback"
  | Uds _ -> "socket"
  | Tcp _ -> "tcp"

module Make (F : Field_intf.S) = struct
  module N = Node.Make (F)
  module W = N.W
  module E = N.E
  module M = N.M

  type config = {
    params : Params.t;
    rounds : int;
    seed : int;
    mode : mode;
    faults : (int * Node.fault) list;
    deadline : float;
    trace : bool;  (* v2 trace extensions + per-node spans *)
    telemetry : bool;  (* gather end-of-run Telemetry bundles *)
    stream : float option;
        (* nodes emit in-flight csm-node-telemetry/2 deltas at most
           this often; loopback threads share one registry, so there
           only node 0 streams (independent per-thread sequence
           numbers over one source would shadow each other) *)
    live : Live.t option;
        (* the client-side live store the deltas merge into — also fed
           the client's own commit ticks (the λ window) *)
  }

  type result = {
    ledger : string option array;  (* accepted Output payload per round *)
    reference : string array;  (* fault-free single-process payloads *)
    outputs_received : int array;  (* validated Output frames per round *)
    stats : Transport.stats option array;  (* n nodes then the client *)
    telemetry : Agg.bundle list;
        (* decoded node bundles (ordered by node id) then the client's
           own, when cfg.telemetry; [] otherwise *)
    run_seconds : float;
        (* client wall time from the first Command broadcast to the
           last round's vote — the whole-run λ denominator *)
    ok : bool;  (* every round accepted and equal to the reference *)
  }

  (* The round's causal trace id, derived from the seed so every frame
     of one logical round shares it across all processes. *)
  let trace_id cfg r =
    Int64.add
      (Int64.mul (Int64.of_int cfg.seed) 1_000_003L)
      (Int64.of_int (r + 1))

  (* Deterministic shared inputs: both the cluster's client and the
     reference run derive them from the seed alone. *)

  let initial_states cfg =
    Array.init cfg.params.Params.k (fun i -> [| F.of_int (1000 * (i + 1)) |])

  let machine cfg = M.degree_machine cfg.params.Params.d

  let workload rng ~k r =
    Array.init k (fun m -> [| F.of_int ((10 * r) + m + 1 + Csm_rng.int rng 5) |])

  (* The byte string a correct node ships in its round-[r] Output frame:
     the decoded outputs Ŷ then the decoded next states Ŝ. *)
  let reference_ledger cfg =
    let params = cfg.params in
    let machine = machine cfg in
    let engine =
      E.create ~machine ~params ~init:(initial_states cfg)
    in
    let rng = Csm_rng.create cfg.seed in
    Array.init cfg.rounds (fun r ->
        let commands = workload rng ~k:params.Params.k r in
        let report =
          E.round engine ~commands ~byzantine:(fun _ -> false) ()
        in
        match report.E.decoded with
        | Some d -> W.encode_matrix_bin (Array.append d.E.outputs d.E.next_states)
        | None -> assert false (* fault-free decode cannot fail *))

  (* ---- the client loop ---- *)

  let fault_of cfg i =
    match List.assoc_opt i cfg.faults with Some f -> f | None -> Node.Honest

  let client_run cfg (tr : Transport.t) =
    let n = cfg.params.Params.n in
    let b = cfg.params.Params.b in
    let k = cfg.params.Params.k in
    let rng = Csm_rng.create cfg.seed in
    let flight = Flight.create ~node:n () in
    let expected_outputs =
      n
      - List.length
          (List.filter
             (fun i -> not (Node.delivers (fault_of cfg i)))
             (List.init n (fun i -> i)))
    in
    (* stamp client control/protocol frames exactly like the nodes do *)
    let stamp ~trace frame =
      if not cfg.trace then frame
      else
        {
          frame with
          Frame.version = Frame.ext_version;
          ext = Some { Frame.trace_id = trace; hlc = Clock.to_wire (Clock.now ()) };
        }
    in
    let send ~trace ~dst frame =
      let frame = stamp ~trace frame in
      Flight.record flight ~trace
        ~attrs:
          [ ("dst", string_of_int dst); ("frame", Frame.kind_name frame.Frame.kind) ]
        ~hlc:
          (match frame.Frame.ext with
          | Some e -> Clock.of_wire e.Frame.hlc
          | None -> Clock.now ())
        ~round:frame.Frame.round "send";
      tr.Transport.send ~dst frame
    in
    let record_recv (fr : Frame.t) =
      let hlc =
        match fr.Frame.ext with
        | Some e -> Clock.observe (Clock.of_wire e.Frame.hlc)
        | None -> Clock.now ()
      in
      Flight.record flight
        ~trace:(match fr.Frame.ext with Some e -> e.Frame.trace_id | None -> 0L)
        ~attrs:
          [
            ("src", string_of_int fr.Frame.sender);
            ("frame", Frame.kind_name fr.Frame.kind);
          ]
        ~hlc ~round:fr.Frame.round "recv"
    in
    let ledger = Array.make cfg.rounds None in
    let outputs_received = Array.make cfg.rounds 0 in
    (* a Telemetry frame carries an in-flight delta; merge it into the
       live store (idempotent — duplicates and reordering are dropped
       by the per-source sequence numbers) *)
    let live_apply (fr : Frame.t) =
      match cfg.live with
      | None -> ()
      | Some live -> (
        match Live.apply live fr.Frame.payload with
        | `Applied | `Stale -> ()
        | `Malformed -> Transport.record_error tr)
    in
    let started = Unix.gettimeofday () in
    Option.iter Live.mark_start cfg.live;
    for r = 0 to cfg.rounds - 1 do
      let commands = workload rng ~k r in
      let payload = W.encode_commands_bin commands in
      let cmd = Frame.make ~kind:Frame.Command ~sender:n ~round:r payload in
      for i = 0 to n - 1 do
        send ~trace:(trace_id cfg r) ~dst:i cmd
      done;
      (* collect Output frames for this round; a corrupted payload fails
         matrix validation at intake — counted and dropped *)
      let got : (int, string) Hashtbl.t = Hashtbl.create 16 in
      let limit = Unix.gettimeofday () +. cfg.deadline in
      let finished () = Hashtbl.length got >= expected_outputs in
      let rec collect () =
        if (not (finished ())) && Unix.gettimeofday () < limit then begin
          (match tr.Transport.recv ~timeout:0.05 with
          | Some fr
            when Frame.kind_eq fr.Frame.kind Frame.Output
                 && fr.Frame.round = r
                 && fr.Frame.sender >= 0
                 && fr.Frame.sender < n -> (
            match W.decode_matrix_bin fr.Frame.payload with
            | Some _ ->
              record_recv fr;
              Hashtbl.replace got fr.Frame.sender fr.Frame.payload
            | None -> Transport.record_error tr)
          | Some fr when Frame.kind_eq fr.Frame.kind Frame.Stats -> ()
            (* late stats cannot occur before shutdown; ignore *)
          | Some fr
            when Frame.kind_eq fr.Frame.kind Frame.Telemetry
                 && fr.Frame.sender >= 0
                 && fr.Frame.sender < n ->
            live_apply fr
          | Some _ -> Transport.record_error tr
          | None -> ());
          collect ()
        end
      in
      collect ();
      outputs_received.(r) <- Hashtbl.length got;
      (* the vote: accept the payload at least b+1 nodes shipped *)
      let tally : (string, int) Hashtbl.t = Hashtbl.create 4 in
      Hashtbl.iter
        (fun _ p ->
          Hashtbl.replace tally p
            (1 + Option.value ~default:0 (Hashtbl.find_opt tally p)))
        got;
      Hashtbl.iter
        (fun p c ->
          if c >= b + 1 && Option.is_none ledger.(r) then ledger.(r) <- Some p)
        tally;
      (* the λ feed: the client, the only endpoint that knows what was
         accepted, ticks the live window k commands per vote — never
         derived from per-node counters, which would overcount ×n *)
      if Option.is_some ledger.(r) then Option.iter Live.note_commit cfg.live
    done;
    let run_seconds = Unix.gettimeofday () -. started in
    (* shutdown: every node answers with its transport counters (and,
       in telemetry mode, its observability bundle) *)
    let bye = Frame.make ~kind:Frame.Shutdown ~sender:n ~round:cfg.rounds "" in
    for i = 0 to n - 1 do
      send ~trace:0L ~dst:i bye
    done;
    let stats : Transport.stats option array = Array.make (n + 1) None in
    let bundles : (int, Agg.bundle) Hashtbl.t = Hashtbl.create 8 in
    let limit = Unix.gettimeofday () +. cfg.deadline in
    let have_all () =
      let c = ref 0 in
      for i = 0 to n - 1 do
        if
          Option.is_some stats.(i)
          && ((not cfg.telemetry) || Hashtbl.mem bundles i)
        then incr c
      done;
      !c = n
    in
    let rec gather () =
      if (not (have_all ())) && Unix.gettimeofday () < limit then begin
        (match tr.Transport.recv ~timeout:0.05 with
        | Some fr
          when Frame.kind_eq fr.Frame.kind Frame.Stats
               && fr.Frame.sender >= 0
               && fr.Frame.sender < n -> (
          match N.decode_stats_payload fr.Frame.payload with
          | Some s -> stats.(fr.Frame.sender) <- Some s
          | None -> Transport.record_error tr)
        | Some fr
          when Frame.kind_eq fr.Frame.kind Frame.Telemetry
               && fr.Frame.sender >= 0
               && fr.Frame.sender < n -> (
          (* either an end-of-run v1 bundle or a straggling v2 delta *)
          match
            if cfg.telemetry then Agg.decode_bundle fr.Frame.payload else None
          with
          | Some bdl ->
            record_recv fr;
            Hashtbl.replace bundles fr.Frame.sender bdl
          | None -> (
            match cfg.live with
            | Some _ -> live_apply fr
            | None ->
              (* no live store: in telemetry mode this was a malformed
                 bundle; otherwise an unexpected kind we ignore, as the
                 pre-streaming driver did *)
              if cfg.telemetry then Transport.record_error tr))
        | Some _ -> ()  (* stragglers from the last round *)
        | None -> ());
        gather ()
      end
    in
    gather ();
    let node_bundles =
      List.filter_map
        (fun i -> Hashtbl.find_opt bundles i)
        (List.init n (fun i -> i))
    in
    (ledger, outputs_received, stats, node_bundles, flight, run_seconds)

  let node_config cfg i =
    (* loopback node threads share this process's registry: their
       snapshots describe the process, and only node 0 streams (per-
       thread sequence numbers over one shared source would collide,
       making most deltas look stale).  Forked nodes own their
       registries: Node scope, everyone streams. *)
    let scope = match cfg.mode with Loopback -> Agg.Process | _ -> Agg.Node in
    let stream =
      match cfg.mode with
      | Loopback when i <> 0 -> None
      | _ -> cfg.stream
    in
    {
      N.node = i;
      params = cfg.params;
      machine = machine cfg;
      init = initial_states cfg;
      rounds = cfg.rounds;
      fault = fault_of cfg i;
      faults = cfg.faults;
      deadline = cfg.deadline;
      trace = cfg.trace;
      telemetry = cfg.telemetry;
      stream;
      scope;
    }

  (* ---- loopback mode: one thread per node ---- *)

  let run_loopback cfg =
    let n = cfg.params.Params.n in
    let net = Loopback.create ~endpoints:(n + 1) in
    (* The node threads all live in this domain, and the domain pool's
       job slot is strictly one-submitter: cap the effective width at 1
       while they are alive so every engine primitive runs as a plain
       inline loop on its own thread. *)
    Pool.with_domain_limit 1 (fun () ->
        let threads =
          List.init n (fun i ->
              Thread.create
                (fun () ->
                  try N.run (node_config cfg i) (Loopback.endpoint net ~id:i)
                  with _ -> ())
                ())
        in
        let client = Loopback.endpoint net ~id:n in
        let ledger, outputs_received, node_stats, bundles, flight, run_seconds =
          client_run cfg client
        in
        List.iter Thread.join threads;
        let stats = Array.copy node_stats in
        stats.(n) <- Some (Transport.snapshot client);
        client.Transport.close ();
        (ledger, outputs_received, stats, bundles, flight, run_seconds))

  (* ---- socket mode: one forked process per node ---- *)

  let run_socket cfg addr =
    let n = cfg.params.Params.n in
    (* fork FIRST: the children must not inherit pool domains or
       threads, so the parent does no engine/pool/thread work yet *)
    let pids =
      List.init n (fun i ->
          match Unix.fork () with
          | 0 ->
            let code =
              try
                Pool.set_domains 1;
                let tr = Socket.endpoint ~addr ~id:i ~endpoints:(n + 1) in
                N.run (node_config cfg i) tr;
                0
              with _ -> 1
            in
            Unix._exit code
          | pid -> pid)
    in
    let client = Socket.endpoint ~addr ~id:n ~endpoints:(n + 1) in
    let ledger, outputs_received, node_stats, bundles, flight, run_seconds =
      client_run cfg client
    in
    let stats = Array.copy node_stats in
    stats.(n) <- Some (Transport.snapshot client);
    client.Transport.close ();
    (* bounded reaping: children exit right after their Stats reply *)
    let reap pid =
      let limit = Unix.gettimeofday () +. cfg.deadline +. 2.0 in
      let rec wait () =
        match Unix.waitpid [ Unix.WNOHANG ] pid with
        | 0, _ ->
          if Unix.gettimeofday () >= limit then begin
            (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
            ignore (Unix.waitpid [] pid)
          end
          else begin
            Thread.delay 0.01;
            wait ()
          end
        | _ -> ()
        | exception Unix.Unix_error (Unix.ECHILD, _, _) -> ()
      in
      wait ()
    in
    List.iter reap pids;
    (ledger, outputs_received, stats, bundles, flight, run_seconds)

  let run cfg =
    let n = cfg.params.Params.n in
    let ledger, outputs_received, stats, node_bundles, client_flight, run_seconds
        =
      match cfg.mode with
      | Loopback -> run_loopback cfg
      | Uds dir -> run_socket cfg (Socket.Uds dir)
      | Tcp base -> run_socket cfg (Socket.Tcp base)
    in
    (* the client's own bundle goes through the same wire codec as the
       nodes', so every entry in [telemetry] has one provenance *)
    let telemetry =
      if not cfg.telemetry then []
      else
        node_bundles
        @ Option.to_list
            (Agg.decode_bundle
               (Agg.bundle_payload ~node:n ~flight:client_flight ()))
    in
    (* the reference run spins up the pool — strictly after any forks *)
    let reference = reference_ledger cfg in
    let ok = ref true in
    Array.iteri
      (fun r entry ->
        match entry with
        | Some p when p = reference.(r) -> ()
        | _ -> ok := false)
      ledger;
    { ledger; reference; outputs_received; stats; telemetry; run_seconds;
      ok = !ok }
end
