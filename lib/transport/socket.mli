(** Real socket transport (Unix-domain or TCP loopback): one listening
    socket per endpoint, length-prefixed {!Csm_wire.Frame} frames on the
    byte stream, per-peer sender threads with connection retry and
    exponential backoff, reader threads that validate every header and
    count malformed frames instead of crashing. *)

type addr =
  | Uds of string
      (** Directory holding one [ep-<id>.sock] Unix-domain socket per
          endpoint. *)
  | Tcp of int
      (** Base port on 127.0.0.1; endpoint [i] listens on [base + i]. *)

val sockaddr_of : addr -> int -> Unix.sockaddr
(** The listening address of endpoint [id] under [addr]. *)

val endpoint : addr:addr -> id:int -> endpoints:int -> Transport.t
(** Create endpoint [id] of a cluster of [endpoints]: binds and listens
    immediately (so peers can connect as soon as they come up), connects
    outbound lazily on first [send] to each destination. *)
