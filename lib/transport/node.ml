(* The per-process CSM node runtime: one node of the cluster, holding
   its own coded state S̃ᵢ inside a local engine instance and speaking
   the Frame wire protocol over an abstract {!Transport.t}.

   Round structure (client is endpoint [n]):

     Command (client → all)   the round's K command vectors
     Commit  (node → nodes)   echo of the command payload; a round
                              proceeds once b+1 endorsements of the
                              node's own view arrive (self included)
     compute                  X̃ᵢ = encode(commands), gᵢ = f(S̃ᵢ, X̃ᵢ)
     Result  (node → nodes)   gᵢ, binary vector payload
     decode                   Reed–Solomon decode of the collected gⱼ
     Output  (node → client)  decoded Ŷ rows then next-state Ŝ rows
     re-encode                S̃ᵢ(t+1) from the decoded next states

   Every inbound payload is validated at intake with the total binary
   decoders — a truncated or corrupted body counts one transport frame
   error and is dropped, so a Byzantine peer can lie (the code corrects
   lies) or babble garbage (dropped and counted) but never crash or
   wedge the node; collect loops bound their waiting with the
   [deadline] so silent peers cannot stall a round either.

   The runtime's own faults ([Drop]/[Delay]/[Corrupt]) apply to the
   frames it *sends* — that is how the cluster driver turns a node
   Byzantine at the transport layer. *)

module Field_intf = Csm_field.Field_intf
module Frame = Csm_wire.Frame
module Params = Csm_core.Params
module Clock = Csm_obs.Clock
module Flight = Csm_obs.Flight
module Agg = Csm_obs.Agg
module Span = Csm_obs.Span
module Metric = Csm_obs.Metric
module Tel = Csm_obs.Telemetry
module Event = Csm_obs.Event

type lie_spec = {
  l_offset : int;
  l_coord : int option;
  l_period : int;
  l_from : int;
}

let lie_default = { l_offset = 1; l_coord = None; l_period = 1; l_from = 0 }

let lie_spec_eq a b =
  a.l_offset = b.l_offset
  && (match (a.l_coord, b.l_coord) with
     | None, None -> true
     | Some x, Some y -> x = y
     | _ -> false)
  && a.l_period = b.l_period && a.l_from = b.l_from

let lie_active l ~round =
  round >= l.l_from && (round - l.l_from) mod max 1 l.l_period = 0

type fault =
  | Honest
  | Drop  (** withhold every protocol frame *)
  | Delay of float  (** send protocol frames late by this many seconds *)
  | Corrupt  (** mangle every protocol payload (detectably malformed) *)
  | Lie of lie_spec
      (** ship a well-formed but wrong Result vector — the undetectable-
          at-intake Byzantine case only the Reed–Solomon decode catches
          (and attributes, feeding the suspicion gauge); the spec
          parameterizes the perturbation (offset, optional single
          coordinate) and its round schedule (period/first round) *)

let fault_name = function
  | Honest -> "honest"
  | Drop -> "drop"
  | Delay _ -> "delay"
  | Corrupt -> "corrupt"
  | Lie l when lie_spec_eq l lie_default -> "lie"
  | Lie l ->
    Printf.sprintf "lie(o=%d,c=%s,p=%d,f=%d)" l.l_offset
      (match l.l_coord with None -> "*" | Some c -> string_of_int c)
      l.l_period l.l_from

(* Sent by a [Drop] node: nothing.  A [Corrupt] node's frames arrive but
   fail payload validation, so they add to frame errors, not to the
   protocol state.  [Delay] frames arrive late but intact; a [Lie]
   node's frames validate everywhere — only the decode unmasks them. *)
let delivers = function
  | Honest | Delay _ | Lie _ -> true
  | Drop | Corrupt -> false

module Make (F : Field_intf.S) = struct
  module W = Csm_core.Wire.Make (F)
  module E = Csm_core.Engine.Make (F)
  module M = E.M

  type config = {
    node : int;
    params : Params.t;
    machine : M.t;
    init : F.t array array;  (* the K initial states, shared by all *)
    rounds : int;
    fault : fault;
    faults : (int * fault) list;  (* the whole cluster's fault map *)
    deadline : float;  (* per-wait upper bound, seconds *)
    trace : bool;  (* stamp frame-v2 trace extensions + merge HLC *)
    telemetry : bool;  (* ship a Telemetry bundle after the Stats reply *)
    stream : float option;
        (* emit a csm-node-telemetry/2 delta frame to the client at
           most this often (seconds) while running; None = end-of-run
           telemetry only *)
    scope : Agg.scope;
        (* what this runtime's registry snapshots describe: [Process]
           when node threads share the process registry (loopback),
           [Node] when this process owns it (forked modes) *)
  }

  (* Peers whose protocol frames will actually arrive (and validate). *)
  let expected_peers cfg =
    let n = cfg.params.Params.n in
    let dead i =
      match List.assoc_opt i cfg.faults with
      | Some f -> not (delivers f)
      | None -> false
    in
    n - List.length (List.filter dead (List.init n (fun i -> i)))

  (* Mangle a payload so every total decoder rejects it: flip a byte and
     drop the last one — the fixed-width decoders check exact length,
     the self-describing ones check exact consumption. *)
  let corrupt_payload p =
    if String.length p = 0 then "\x00"
    else begin
      let b = Bytes.of_string (String.sub p 0 (String.length p - 1)) in
      if Bytes.length b > 0 then
        Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0xFF));
      Bytes.to_string b
    end

  (* ---- inbox: validated protocol state, filled by [pump] ---- *)

  type inbox = {
    commands : (int, string * F.t array array) Hashtbl.t;
        (* round → (payload, decoded commands), client frames only *)
    commits : (int * int, string) Hashtbl.t;  (* (round, sender) → payload *)
    results : (int * int, F.t array) Hashtbl.t;  (* (round, sender) → gⱼ *)
    traces : (int, int64) Hashtbl.t;
        (* round → causal trace id, adopted from the first valid
           extended frame of the round (the client's Command) *)
    flight : Flight.t;  (* this node's always-on black box *)
    mutable shutdown : bool;
    (* streaming-delta emitter state (config.stream = Some _) *)
    mutable st_seq : int;  (* deltas emitted so far *)
    mutable st_next : float;  (* wall time the next delta is due *)
    mutable st_last_event : int;  (* newest event seq already shipped *)
    st_sent : (string, Metric.view) Hashtbl.t;
        (* family name → view as last shipped, for changed-family
           detection (views are immutable snapshots; structural
           equality is exact) *)
  }

  let make_inbox ~node () =
    {
      commands = Hashtbl.create 16;
      commits = Hashtbl.create 64;
      results = Hashtbl.create 64;
      traces = Hashtbl.create 16;
      flight = Flight.create ~node ();
      shutdown = false;
      st_seq = 0;
      st_next = 0.0;
      st_last_event = 0;
      st_sent = Hashtbl.create 32;
    }

  let trace_of inbox round =
    Option.value ~default:0L (Hashtbl.find_opt inbox.traces round)

  (* Stamp an outbound protocol frame (trace mode): promote it to
     wire v2 carrying the round's trace id and a fresh HLC send stamp. *)
  let stamp cfg inbox frame =
    if not cfg.trace then frame
    else
      {
        frame with
        Frame.version = Frame.ext_version;
        ext =
          Some
            {
              Frame.trace_id = trace_of inbox frame.Frame.round;
              hlc = Clock.to_wire (Clock.now ());
            };
      }

  let record_send inbox ~dst (frame : Frame.t) =
    let hlc, trace =
      match frame.Frame.ext with
      | Some e -> (Clock.of_wire e.Frame.hlc, e.Frame.trace_id)
      | None -> (Clock.now (), trace_of inbox frame.Frame.round)
    in
    Flight.record inbox.flight ~trace
      ~attrs:
        [
          ("dst", string_of_int dst);
          ("frame", Frame.kind_name frame.Frame.kind);
        ]
      ~hlc ~round:frame.Frame.round "send"

  let send_protocol cfg inbox (tr : Transport.t) ~dst frame =
    let frame = stamp cfg inbox frame in
    match cfg.fault with
    | Honest | Lie _ ->
      (* a Lie node's *protocol machinery* is honest — the lie is
         injected into the Result payload itself, in run_round *)
      record_send inbox ~dst frame;
      tr.Transport.send ~dst frame
    | Drop -> ()
    | Delay t ->
      Thread.delay t;
      record_send inbox ~dst frame;
      tr.Transport.send ~dst frame
    | Corrupt ->
      record_send inbox ~dst frame;
      tr.Transport.send ~dst
        { frame with Frame.payload = corrupt_payload frame.Frame.payload }

  (* In-flight telemetry: at most every [interval] seconds, ship a
     csm-node-telemetry/2 delta straight to the client.  Values are
     cumulative and frames carry a per-source sequence number, so the
     client's merge is idempotent — a duplicated, reordered or lost
     frame can never corrupt the live aggregates.  Non-full frames
     carry only the families that changed since the last emission; a
     full registry snapshot goes out first and every tenth emission so
     a late-joining scraper converges.  Like Stats, these are control
     frames exempt from the node's fault — the live view needs even a
     Byzantine node's health (the client validates the contents,
     totally). *)
  let maybe_stream cfg (tr : Transport.t) inbox =
    match cfg.stream with
    | None -> ()
    | Some interval ->
      let now = Unix.gettimeofday () in
      if now >= inbox.st_next then begin
        inbox.st_next <- now +. interval;
        if Metric.enabled () then begin
          Tel.sample_runtime ();
          Metric.set
            (Tel.hlc_skew ~node:cfg.node)
            (Clock.skew_seconds (Clock.peek ()))
        end;
        let seq = inbox.st_seq + 1 in
        inbox.st_seq <- seq;
        let full = seq = 1 || seq mod 10 = 0 in
        let families = Metric.families () in
        let views =
          if full then families
          else
            List.filter
              (fun (v : Metric.view) ->
                match Hashtbl.find_opt inbox.st_sent v.Metric.name with
                | Some prev -> prev <> v
                | None -> true)
              families
        in
        List.iter
          (fun (v : Metric.view) ->
            Hashtbl.replace inbox.st_sent v.Metric.name v)
          views;
        let events = Event.since inbox.st_last_event in
        List.iter
          (fun (e : Event.t) ->
            if e.Event.seq > inbox.st_last_event then
              inbox.st_last_event <- e.Event.seq)
          events;
        tr.Transport.send ~dst:cfg.params.Params.n
          (stamp cfg inbox
             (Frame.make ~kind:Frame.Telemetry ~sender:cfg.node ~round:seq
                (Agg.delta_payload ~node:cfg.node ~scope:cfg.scope ~seq ~full
                   ~views ~events ())))
      end

  (* An adversary-chosen round number is a Hashtbl key into the inbox:
     left unvalidated, a forged stream of distinct rounds grows
     protocol state (commands/commits/results/traces) without bound.
     Rounds are dense — 0..rounds-1 for protocol frames, with [rounds]
     itself serving as the shutdown/stats epoch — so a total decoder
     bounds the key space to rounds+1 values. *)
  let decode_round ~rounds r = if r >= 0 && r <= rounds then Some r else None

  (* Intake-time validation: bound the round and decode the payload
     with the total decoders the moment the frame arrives, so a
     malformed frame is counted and dropped exactly once no matter when
     the round logic looks. *)
  let dispatch cfg (tr : Transport.t) inbox (fr : Frame.t) =
    let n = cfg.params.Params.n in
    let k = cfg.params.Params.k in
    let sender = fr.Frame.sender in
    (* HLC receive rule: fold the sender's stamp in before anything
       else, so the local clock (and the flight entry below) is already
       causally after the send *)
    let rx_hlc, rx_trace =
      match fr.Frame.ext with
      | Some e -> (Clock.observe (Clock.of_wire e.Frame.hlc), e.Frame.trace_id)
      | None -> (Clock.now (), 0L)
    in
    let record_recv ~round () =
      if rx_trace <> 0L && not (Hashtbl.mem inbox.traces round) then
        (* csm-lint: allow R6 — trace ids are opaque correlation tokens: the key is the validated round, the value fixed-width, never indexed or interpreted *)
        Hashtbl.replace inbox.traces round rx_trace;
      Flight.record inbox.flight ~trace:rx_trace
        ~attrs:
          [
            ("src", string_of_int sender);
            ("frame", Frame.kind_name fr.Frame.kind);
          ]
        ~hlc:rx_hlc ~round "recv"
    in
    let record_bad ~round reason =
      Transport.record_error tr;
      Flight.record inbox.flight ~trace:rx_trace
        ~attrs:
          [
            ("src", string_of_int sender);
            ("frame", Frame.kind_name fr.Frame.kind);
            ("reason", reason);
          ]
        ~hlc:rx_hlc ~round "error"
    in
    match decode_round ~rounds:cfg.rounds fr.Frame.round with
    | None ->
      (* the flight entry logs the forged value, but nothing keys on it *)
      record_bad ~round:fr.Frame.round "bad-round"
    | Some round -> (
      match fr.Frame.kind with
      | Frame.Command when sender = n -> (
        match
          W.decode_commands_bin ~k ~dim:cfg.machine.M.input_dim
            fr.Frame.payload
        with
        | Some cs ->
          record_recv ~round ();
          if not (Hashtbl.mem inbox.commands round) then
            Hashtbl.replace inbox.commands round (fr.Frame.payload, cs)
        | None -> record_bad ~round "bad-payload")
      | Frame.Commit when sender >= 0 && sender < n && sender <> cfg.node -> (
        match
          W.decode_commands_bin ~k ~dim:cfg.machine.M.input_dim
            fr.Frame.payload
        with
        | Some _ ->
          record_recv ~round ();
          if not (Hashtbl.mem inbox.commits (round, sender)) then
            Hashtbl.replace inbox.commits (round, sender) fr.Frame.payload
        | None -> record_bad ~round "bad-payload")
      | Frame.Result when sender >= 0 && sender < n && sender <> cfg.node -> (
        let dim = cfg.machine.M.state_dim + cfg.machine.M.output_dim in
        match W.decode_vector_bin ~dim fr.Frame.payload with
        | Some g ->
          record_recv ~round ();
          if not (Hashtbl.mem inbox.results (round, sender)) then
            Hashtbl.replace inbox.results (round, sender) g
        | None -> record_bad ~round "bad-payload")
      | Frame.Shutdown when sender = n ->
        record_recv ~round ();
        inbox.shutdown <- true
      | _ ->
        (* unexpected kind/sender combination: malformed at the
           protocol level, counted like any other bad frame *)
        record_bad ~round "unexpected-kind")

  (* Drain everything already delivered, waiting at most [within] for
     the first frame. *)
  let pump ?(within = 0.0) cfg tr inbox =
    let rec drain ~timeout =
      match tr.Transport.recv ~timeout with
      | Some fr ->
        dispatch cfg tr inbox fr;
        drain ~timeout:0.0
      | None -> ()
    in
    drain ~timeout:within

  (* Pump until [cond] holds or [cfg.deadline] passes.  Every lap also
     gives the streaming emitter a chance to fire — waits are where a
     node spends its wall time, so this is what keeps deltas flowing
     even while a round stalls on a straggler. *)
  let wait_until cfg tr inbox cond =
    let limit = Unix.gettimeofday () +. cfg.deadline in
    let rec loop () =
      pump cfg tr inbox;
      maybe_stream cfg tr inbox;
      if cond () then true
      else if inbox.shutdown || Unix.gettimeofday () >= limit then cond ()
      else begin
        pump ~within:0.05 cfg tr inbox;
        loop ()
      end
    in
    loop ()

  (* ---- one protocol round ---- *)

  let phase inbox ~round name =
    if Metric.enabled () then Metric.inc (Tel.node_phases ~phase:name);
    Flight.record inbox.flight ~trace:(trace_of inbox round)
      ~attrs:[ ("phase", name) ]
      ~hlc:(Clock.now ()) ~round "phase"

  let run_round cfg (tr : Transport.t) engine inbox r =
    let n = cfg.params.Params.n in
    let b = cfg.params.Params.b in
    let me = cfg.node in
    (* 1. the round's commands, from the client *)
    let got_commands =
      wait_until cfg tr inbox (fun () -> Hashtbl.mem inbox.commands r)
    in
    if not got_commands then false
    else begin
      let cmd_payload, commands = Hashtbl.find inbox.commands r in
      phase inbox ~round:r "commands";
      (* 2. commit: echo the command payload to every peer, then wait
         for the peers expected to deliver; proceed on b+1 matching
         endorsements (self included) *)
      let commit = Frame.make ~kind:Frame.Commit ~sender:me ~round:r cmd_payload in
      for j = 0 to n - 1 do
        if j <> me then send_protocol cfg inbox tr ~dst:j commit
      done;
      let expected_commits = expected_peers cfg - 1 (* peers, sans self *) in
      let commits_in () =
        Hashtbl.fold
          (fun (r', _) _ acc -> if r' = r then acc + 1 else acc)
          inbox.commits 0
      in
      ignore (wait_until cfg tr inbox (fun () -> commits_in () >= expected_commits));
      let matching =
        1
        + Hashtbl.fold
            (fun (r', _) p acc -> if r' = r && p = cmd_payload then acc + 1 else acc)
            inbox.commits 0
      in
      let committed = matching >= b + 1 in
      if not committed then false
      else begin
      phase inbox ~round:r "committed";
      (* 3. compute gᵢ over the committed commands *)
      let coded_command = E.node_encode_command engine ~node:me ~commands in
      let g = E.node_compute engine ~node:me ~coded_command in
      phase inbox ~round:r "computed";
      (* 4. broadcast the result, keep our own.  A [Lie] node ships a
         well-formed but wrong vector (coordinates nudged per its
         lie_spec, on the spec's round schedule) while keeping the
         honest gᵢ locally — intake validation passes everywhere and
         only the peers' Reed–Solomon decode catches and attributes the
         lie *)
      let broadcast_g =
        match cfg.fault with
        | Lie l when lie_active l ~round:r ->
          let off = F.of_int l.l_offset in
          (match l.l_coord with
          | None -> Array.map (fun x -> F.add x off) g
          | Some c ->
            let g' = Array.copy g in
            if c >= 0 && c < Array.length g' then g'.(c) <- F.add g'.(c) off;
            g')
        | _ -> g
      in
      let result =
        Frame.make ~kind:Frame.Result ~sender:me ~round:r
          (W.encode_vector_bin broadcast_g)
      in
      for j = 0 to n - 1 do
        if j <> me then send_protocol cfg inbox tr ~dst:j result
      done;
      Hashtbl.replace inbox.results (r, me) g;
      (* 5. collect and decode *)
      let expected_results = expected_peers cfg in
      let results_in () =
        Hashtbl.fold
          (fun (r', _) _ acc -> if r' = r then acc + 1 else acc)
          inbox.results 0
      in
      ignore
        (wait_until cfg tr inbox (fun () -> results_in () >= expected_results));
      let received =
        List.sort
          (fun (a, _) (b, _) -> Int.compare a b)
          (Hashtbl.fold
             (fun (r', j) g acc -> if r' = r then (j, g) :: acc else acc)
             inbox.results [])
      in
      (* decode algorithm comes from RS.default_algorithm (), i.e. the
         CSM_RS_FASTPATH env var: optimistic verify-first fast path by
         default, with Gao + suspicion-guided erasures as fallback *)
      match E.decode_results engine received with
      | None ->
        phase inbox ~round:r "decode-failed";
        false
      | Some d ->
        phase inbox ~round:r "decoded";
        (* attribute decoder-corrected error locations, like the
           simulator protocol does: the suspicion gauge is both the
           erasure hint for later decodes and the live alert signal *)
        if Metric.enabled () then begin
          List.iter
            (fun j ->
              Metric.inc (Tel.decode_errors ~node:j);
              Metric.add (Tel.node_suspicion ~node:j) 1.0)
            d.E.error_nodes;
          Metric.inc ~by:cfg.params.Params.k
            (Tel.commands_committed ~node:me)
        end;
        (* 6. ship the decoded outputs + next states to the client *)
        let payload =
          W.encode_matrix_bin (Array.append d.E.outputs d.E.next_states)
        in
        send_protocol cfg inbox tr ~dst:n
          (Frame.make ~kind:Frame.Output ~sender:me ~round:r payload);
        (* 7. advance our own coded state *)
        E.node_update_state engine ~node:me ~next_states:d.E.next_states;
        true
      end
    end

  (* Binary stats payload: five big-endian u64 counters. *)
  let stats_payload (s : Transport.stats) =
    let b = Bytes.create 40 in
    List.iteri
      (fun i v -> Bytes.set_int64_be b (8 * i) (Int64.of_int v))
      [
        s.Transport.frames_sent;
        s.Transport.frames_received;
        s.Transport.bytes_sent;
        s.Transport.bytes_received;
        s.Transport.frame_errors;
      ];
    Bytes.to_string b

  let decode_stats_payload p =
    if String.length p <> 40 then None
    else begin
      let v i = Int64.to_int (String.get_int64_be p (8 * i)) in
      let ok = ref true in
      for i = 0 to 4 do
        if v i < 0 then ok := false
      done;
      if not !ok then None
      else
        Some
          {
            Transport.frames_sent = v 0;
            frames_received = v 1;
            bytes_sent = v 2;
            bytes_received = v 3;
            frame_errors = v 4;
          }
    end

  (* ---- entry point: run all rounds, then answer the shutdown ---- *)

  let run cfg (tr : Transport.t) =
    if cfg.trace then Span.enable ();
    let engine =
      E.create ~machine:cfg.machine ~params:cfg.params ~init:cfg.init
    in
    let inbox = make_inbox ~node:cfg.node () in
    let n = cfg.params.Params.n in
    let node_attr = [ ("node", string_of_int cfg.node) ] in
    for r = 0 to cfg.rounds - 1 do
      if not inbox.shutdown then begin
        let t0 = Unix.gettimeofday () in
        ignore
          (Span.with_ ~name:"node.round"
             ~attrs:(("round", string_of_int r) :: node_attr)
             (fun () -> run_round cfg tr engine inbox r));
        if Metric.enabled () then
          Metric.observe Tel.round_latency (Unix.gettimeofday () -. t0)
      end
    done;
    (* flush the emitter so the final cumulative values are on the wire
       before the shutdown handshake *)
    if cfg.stream <> None then begin
      inbox.st_next <- 0.0;
      maybe_stream cfg tr inbox
    end;
    (* wait for the client's shutdown, reply with our counters (control
       frames are exempt from the node's fault: the driver needs them) *)
    ignore (wait_until cfg tr inbox (fun () -> inbox.shutdown));
    let snap = Transport.snapshot tr in
    tr.Transport.send ~dst:n
      (Frame.make ~kind:Frame.Stats ~sender:cfg.node ~round:cfg.rounds
         (stats_payload snap));
    (* telemetry rides after the Stats reply so the counters above never
       include it; like Stats, it is a control frame exempt from the
       node's fault — the aggregator needs even a Byzantine node's
       bundle (its contents are validated, totally, on the client) *)
    if cfg.telemetry then begin
      if Metric.enabled () then
        Metric.set
          (Tel.hlc_skew ~node:cfg.node)
          (Clock.skew_seconds (Clock.peek ()));
      tr.Transport.send ~dst:n
        (stamp cfg inbox
           (Frame.make ~kind:Frame.Telemetry ~sender:cfg.node ~round:cfg.rounds
              (Agg.bundle_payload ~node:cfg.node ~flight:inbox.flight ())))
    end;
    tr.Transport.close ()
end
