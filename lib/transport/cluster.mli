(** Multi-node cluster driver: N node runtimes plus a voting client
    over loopback threads or forked socket processes, verified against
    a fault-free single-process engine run at the same seed. *)

module Field_intf = Csm_field.Field_intf
module Params = Csm_core.Params

type mode =
  | Loopback  (** threads in this process, in-memory frames *)
  | Uds of string  (** forked processes, Unix-domain sockets in a dir *)
  | Tcp of int  (** forked processes, TCP loopback from a base port *)

val mode_name : mode -> string

module Make (F : Field_intf.S) : sig
  module N : module type of Node.Make (F)
  module W = N.W
  module E = N.E
  module M = N.M

  type config = {
    params : Params.t;
    rounds : int;
    seed : int;
    mode : mode;
    faults : (int * Node.fault) list;
    deadline : float;  (** per-wait upper bound, seconds *)
    trace : bool;
        (** stamp every protocol frame (client and nodes) with the
            frame-v2 trace extension and record per-node spans; off, the
            wire bytes are identical to the pre-v2 runtime *)
    telemetry : bool;
        (** gather each node's end-of-run [csm-node-telemetry/1] bundle
            (metrics, spans, events, flight ring) for cluster-wide
            aggregation *)
    stream : float option;
        (** nodes emit in-flight [csm-node-telemetry/2] delta frames at
            most this often (seconds).  Loopback threads share one
            registry, so there only node 0 streams; forked nodes all
            do.  [None]: end-of-run telemetry only *)
    live : Csm_obs.Live.t option;
        (** client-side live store the deltas merge into; also receives
            the client's commit ticks (k commands per accepted round —
            the windowed-λ feed) and the run-start mark *)
  }

  type result = {
    ledger : string option array;
        (** per round, the Output payload at least b+1 nodes agreed on *)
    reference : string array;
        (** the payloads of a fault-free single-process run, same seed *)
    outputs_received : int array;
        (** validated Output frames the client saw per round *)
    stats : Transport.stats option array;
        (** per-endpoint transport counters: the n nodes, then the
            client last *)
    telemetry : Csm_obs.Agg.bundle list;
        (** when [config.telemetry]: the decoded node bundles (node-id
            order) then the client's own, every entry round-tripped
            through the wire codec; [[]] otherwise *)
    run_seconds : float;
        (** client wall time from the first Command broadcast to the
            last round's vote — the whole-run λ denominator the live
            windowed rate is checked against *)
    ok : bool;  (** every round accepted and byte-equal to the reference *)
  }

  val initial_states : config -> F.t array array
  val machine : config -> M.t

  val workload : Csm_rng.t -> k:int -> int -> F.t array array
  (** The deterministic per-round commands both the client and the
      reference run derive from the seed. *)

  val reference_ledger : config -> string array

  val run : config -> result
  (** Run the cluster end to end (socket modes fork one child per node
      before doing any pool/thread work in the parent) and verify the
      voted ledger against the reference. *)
end
