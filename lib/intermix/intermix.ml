(* INTERMIX: information-theoretically verifiable matrix–vector
   multiplication (Section 6.1, Algorithm 1).

   Roles:
   - the worker computes Ŷ = A·X and broadcasts it (possibly lying);
   - each auditor recomputes A·X; on a mismatch at some row i it
     interactively bisects: it asks the worker for the two half
     inner-products of the current segment, checks that they sum to the
     worker's prior claim for the segment, and recurses into a half that
     is wrong — after ≤ log₂K rounds the fraud is pinned either to a
     sum inconsistency or to a singleton claim, both checkable in O(1);
   - commoners verify an auditor's alert in constant time.

   The worker is modeled as an oracle over segment queries, so malicious
   strategies can answer adaptively.  Soundness is information-theoretic:
   whatever the oracle answers, if Ŷ ≠ A·X an honest auditor produces an
   alert that any commoner confirms with one addition-comparison or one
   singleton product. *)

module Field_intf = Csm_field.Field_intf
module Scope = Csm_metrics.Scope
module Span = Csm_obs.Span

module Make (F : Field_intf.S) = struct
  module M = Csm_linalg.Linalg.Make (F)

  (* A segment query: the inner product A_row[lo..hi) · X[lo..hi). *)
  type query = { row : int; lo : int; hi : int }

  type worker = {
    claimed : F.t array;  (* Ŷ as broadcast *)
    answer : query -> F.t;  (* oracle for bisection queries *)
  }

  let true_answer (a : M.mat) (x : M.vec) { row; lo; hi } =
    let acc = ref F.zero in
    for j = lo to hi - 1 do
      acc := F.add !acc (F.mul a.(row).(j) x.(j))
    done;
    !acc

  let honest_worker ?(scope = Scope.null) ?(role = "worker") a x =
    let claimed = scope.Scope.run ~role (fun () -> M.mat_vec a x) in
    {
      claimed;
      answer = (fun q -> scope.Scope.run ~role (fun () -> true_answer a x q));
    }

  (* Malicious strategies.

     [Blatant]: lies on [bad_rows] of Ŷ and answers queries honestly —
     the first bisection level exposes a sum mismatch.

     [Adaptive]: lies on [bad_rows] and keeps its answers *consistent*
     with its own previous lies for as long as possible (splitting the
     lie into one half at each level); the fraud survives every sum
     check and is only pinned at a singleton claim — the worst case for
     the number of interactive rounds. *)
  type strategy = Blatant | Adaptive

  let malicious_worker ?(scope = Scope.null) ?(role = "worker")
      ~(strategy : strategy) ~bad_rows ~offset a x =
    let claimed =
      scope.Scope.run ~role (fun () ->
          let y = M.mat_vec a x in
          List.iter (fun r -> y.(r) <- F.add y.(r) offset) bad_rows;
          y)
    in
    let answer q =
      scope.Scope.run ~role (fun () ->
          let truth = true_answer a x q in
          match strategy with
          | Blatant -> truth
          | Adaptive ->
            (* Maintain the lie along the leftmost path of the lied-on
               rows: a query fully inside a bad row whose segment
               contains index [q.lo = 0 side] keeps the offset on the
               left half. *)
            if List.mem q.row bad_rows && q.lo = 0 then F.add truth offset
            else truth)
    in
    { claimed; answer }

  (* One bisection step as shown to the commoners. *)
  type challenge = {
    c_query : query;  (* the segment whose claim is being split *)
    c_claim : F.t;  (* worker's claim for that segment *)
    c_left : F.t;  (* worker's answers for the two halves *)
    c_right : F.t;
    c_mid : int;
  }

  type alert =
    | Sum_mismatch of challenge
        (* left + right ≠ claim: one addition to check *)
    | Leaf_mismatch of { l_query : query; l_claim : F.t }
        (* singleton segment: claim ≠ A[row][lo]·X[lo], one product *)

  type audit_result = Accept | Alert of alert

  type audit_report = {
    result : audit_result;
    interactions : int;  (* bisection levels used *)
  }

  (* Algorithm 1, run by an honest auditor. *)
  let audit ?(scope = Scope.null) ?(role = "auditor") (w : worker)
      (a : M.mat) (x : M.vec) : audit_report =
    Span.with_ ~ops:scope.Scope.ops ~name:"intermix.audit"
      ~attrs:[ ("role", role) ]
      (fun () ->
    scope.Scope.run ~role (fun () ->
        let y = M.mat_vec a x in
        let n = M.rows a and k = M.cols a in
        let bad = ref (-1) in
        for i = n - 1 downto 0 do
          if not (F.equal y.(i) w.claimed.(i)) then bad := i
        done;
        if !bad < 0 then { result = Accept; interactions = 0 }
        else begin
          let row = !bad in
          (* recurse on segments; claim = worker's commitment for seg *)
          let rec bisect ~lo ~hi ~claim ~level =
            if hi - lo = 1 then
              {
                result =
                  Alert (Leaf_mismatch { l_query = { row; lo; hi }; l_claim = claim });
                interactions = level;
              }
            else begin
              let mid = lo + ((hi - lo) / 2) in
              let ql = { row; lo; hi = mid } and qr = { row; lo = mid; hi } in
              let zl = w.answer ql and zr = w.answer qr in
              if not (F.equal (F.add zl zr) claim) then
                {
                  result =
                    Alert
                      (Sum_mismatch
                         {
                           c_query = { row; lo; hi };
                           c_claim = claim;
                           c_left = zl;
                           c_right = zr;
                           c_mid = mid;
                         });
                  interactions = level + 1;
                }
              else begin
                (* locate a lying half by recomputing both *)
                let tl = true_answer a x ql in
                if not (F.equal zl tl) then
                  bisect ~lo ~hi:mid ~claim:zl ~level:(level + 1)
                else bisect ~lo:mid ~hi ~claim:zr ~level:(level + 1)
              end
            end
          in
          bisect ~lo:0 ~hi:k ~claim:w.claimed.(row) ~level:0
        end))
    |> fun report ->
    (if Csm_obs.Metric.enabled () then
       let result =
         match report.result with Accept -> "accept" | Alert _ -> "alert"
       in
       Csm_obs.Metric.inc (Csm_obs.Telemetry.intermix_audits ~result));
    report

  (* Commoner verification: O(1) field work regardless of K and N.
     Returns [true] when the alert is valid, i.e. the worker is exposed;
     a dishonest auditor's bogus alert returns [false] and is dismissed. *)
  let commoner_check ?(scope = Scope.null) ?(role = "commoner") (a : M.mat)
      (x : M.vec) (alert : alert) : bool =
    scope.Scope.run ~role (fun () ->
        match alert with
        | Sum_mismatch c ->
          not (F.equal (F.add c.c_left c.c_right) c.c_claim)
        | Leaf_mismatch { l_query; l_claim } ->
          not
            (F.equal l_claim
               (F.mul a.(l_query.row).(l_query.lo) x.(l_query.lo))))

  (* Full protocol outcome for a network of N nodes: the committee
     audits; commoners accept the worker's Ŷ iff no *valid* alert is
     raised.  Dishonest auditors can only raise invalid alerts (dismissed)
     or stay silent. *)
  type verdict = {
    accepted : bool;  (* network accepts Ŷ *)
    valid_alerts : alert list;
    dismissed_alerts : alert list;
    max_interactions : int;
  }

  let run_protocol ?(scope = Scope.null) (w : worker) (a : M.mat) (x : M.vec)
      ~(auditors : int list) ~(dishonest_auditor : int -> alert option) :
      verdict =
    Span.with_ ~ops:scope.Scope.ops ~name:"intermix.verify"
      ~attrs:[ ("auditors", string_of_int (List.length auditors)) ]
      (fun () ->
    let valid = ref [] and dismissed = ref [] in
    let max_inter = ref 0 in
    List.iter
      (fun aud ->
        match dishonest_auditor aud with
        | Some bogus ->
          (* a dishonest auditor raising a bogus alert *)
          if commoner_check ~scope a x bogus then valid := bogus :: !valid
          else dismissed := bogus :: !dismissed
        | None ->
          (* attribute audit work to the auditor's NODE role so that
             per-node throughput accounting includes committee costs *)
          let report =
            audit ~scope ~role:(Csm_metrics.Ledger.node_role aud) w a x
          in
          max_inter := max !max_inter report.interactions;
          (match report.result with
          | Accept -> ()
          | Alert alert ->
            if commoner_check ~scope a x alert then valid := alert :: !valid
            else dismissed := alert :: !dismissed))
      auditors;
    {
      accepted = !valid = [];
      valid_alerts = !valid;
      dismissed_alerts = !dismissed;
      max_interactions = !max_inter;
    })

  (* ----- Committee election (Section 6.1) ----- *)

  (* J = ⌈log ε / log μ⌉: smallest J with μ^J ≤ ε. *)
  let committee_size ~epsilon ~mu =
    if epsilon <= 0.0 || epsilon >= 1.0 then
      invalid_arg "Intermix.committee_size: epsilon in (0,1)";
    if mu <= 0.0 then 1
    else if mu >= 1.0 then invalid_arg "Intermix.committee_size: mu < 1"
    else max 1 (int_of_float (ceil (log epsilon /. log mu)))

  (* Local coin: each node self-elects with probability J/N. *)
  let elect_self rng ~n ~j =
    let p = float_of_int j /. float_of_int n in
    List.filter (fun _ -> Csm_rng.float rng < p) (List.init n (fun i -> i))

  (* VRF election: node i is an auditor for [seed] iff its verified VRF
     value is below J/N.  Identities stay secret until nodes reveal
     their proofs (Remark: hinders adaptive corruption). *)
  let elect_vrf keyring ~seed ~n ~j =
    let threshold = float_of_int j /. float_of_int n in
    List.filter_map
      (fun i ->
        let signer = Csm_crypto.Auth.signer keyring i in
        let value, proof = Csm_crypto.Auth.vrf_eval signer ~input:seed in
        if value < threshold then Some (i, proof) else None)
      (List.init n (fun i -> i))

  let verify_vrf_election keyring ~seed ~n ~j (node, proof) =
    ignore node;
    let threshold = float_of_int j /. float_of_int n in
    match Csm_crypto.Auth.vrf_verify keyring ~input:seed proof with
    | Some v -> v < threshold
    | None -> false

  (* Worst-case complexity formula of Section 6.1:
     (J+1)·c(AX) + 8JK + 3J·log K + N − J − 1, with c(AX) = 2NK. *)
  let worst_case_complexity ~n ~k ~j =
    let c_ax = 2 * n * k in
    let log_k =
      int_of_float (ceil (log (float_of_int (max 2 k)) /. log 2.0))
    in
    ((j + 1) * c_ax) + (8 * j * k) + (3 * j * log_k) + n - j - 1

  (* ----- Verifiable polynomial evaluation (INTERPOL [42]) -----

     Evaluating p(x) = Σ cᵢ xⁱ is the inner product of the coefficient
     vector with the power vector (1, x, x², …), so batch evaluation of
     one polynomial at many points is exactly a matrix–vector product
     with a Vandermonde "matrix of queries": row i = powers of xᵢ,
     vector = coefficients.  INTERMIX therefore verifies delegated
     polynomial evaluation as-is; this wrapper packages that reduction
     (the paper cites INTERPOL as the sibling construction). *)

  type eval_instance = {
    ei_matrix : M.mat;  (* Vandermonde of the evaluation points *)
    ei_coeffs : M.vec;  (* the polynomial's coefficients *)
  }

  let eval_instance ~(coeffs : F.t array) ~(points : F.t array) =
    let cols = Array.length coeffs in
    if cols = 0 then invalid_arg "Intermix.eval_instance: empty polynomial";
    { ei_matrix = M.vandermonde points ~cols; ei_coeffs = Array.copy coeffs }

  let eval_honest_worker ?scope ?role inst =
    honest_worker ?scope ?role inst.ei_matrix inst.ei_coeffs

  let eval_claimed_values w = w.claimed

  let verify_eval ?scope inst w ~auditors ~dishonest_auditor =
    run_protocol ?scope w inst.ei_matrix inst.ei_coeffs ~auditors
      ~dishonest_auditor
end
