(* Centralized encoding/decoding with INTERMIX verification
   (Section 6.2): a single worker performs all coding operations with
   quasi-linear algorithms, a random committee audits each matrix–vector
   identity, and everyone else verifies alerts in constant time.

   Per round:
     1. command encoding  — worker computes X̃ = C·X (fast interpolation +
        multipoint evaluation); identity verified: X̃ = C·X;
     2. local computation — every node computes gᵢ = f(S̃ᵢ, X̃ᵢ) (O(1));
     3. decoding          — worker Reed–Solomon-decodes each coordinate,
        broadcasting the coefficients b and the agreement set τ;
        verified: |τ| ≥ ⌈(N+K'+1)/2⌉ and g_τ = V_τ·b  (equation (9));
     4. evaluation        — worker computes outputs/next states = Ω·b
        (equation (8)); verified by INTERMIX on Ω;
     5. state update      — worker computes S̃(t+1) = C·S(t+1) (fast);
        verified by INTERMIX on C.

   All verifications are per result coordinate.  Costs are attributed to
   node roles (the worker and auditors are ordinary network nodes), so a
   ledger's per-node totals are exactly the denominator of the paper's
   throughput metric. *)

module Field_intf = Csm_field.Field_intf
module Scope = Csm_metrics.Scope
module Span = Csm_obs.Span
module Params = Csm_core.Params

module Make (F : Field_intf.S) = struct
  module E = Csm_core.Engine.Make (F)
  module C = Csm_core.Coding.Make (F)
  module IX = Intermix.Make (F)
  module RS = Csm_rs.Reed_solomon.Make (F)
  module P = RS.P
  module M = IX.M
  module Sub = Csm_poly.Subproduct.Make (F)

  type worker_behavior =
    | Honest
    | Lying_encode of { node : int; offset : F.t }
        (* corrupts node's coded command *)
    | Lying_decode of { coeff : int; offset : F.t }
        (* corrupts coefficient [coeff] of the decoded polynomial *)
    | Lying_update of { node : int; offset : F.t }
        (* corrupts node's updated coded state *)

  type fraud_stage = Encode | Decode_cert | Evaluate | Update

  let fraud_stage_name = function
    | Encode -> "encode"
    | Decode_cert -> "decode_cert"
    | Evaluate -> "evaluate"
    | Update -> "update"

  type outcome = {
    decoded : E.decoded option;  (* None iff the round aborted on fraud *)
    fraud : fraud_stage option;  (* stage at which fraud was caught *)
    max_interactions : int;
  }

  let node_role = Csm_metrics.Ledger.node_role

  (* Run one INTERMIX instance with worker claims [claimed] for A·x,
     given an oracle honest about A·x asides from the initial claim
     (the §6.2 worker has nothing to gain by lying in bisection: either
     way a valid alert results; we model the adaptive liar in the unit
     tests of Algorithm 1 itself). *)
  let verify ?(scope = Scope.null) ~committee ~worker a x claimed =
    let w =
      {
        IX.claimed;
        answer =
          (fun q ->
            scope.Scope.run ~role:(node_role worker) (fun () ->
                IX.true_answer a x q));
      }
    in
    let verdict =
      IX.run_protocol ~scope w a x
        ~auditors:committee
        ~dishonest_auditor:(fun _ -> None)
    in
    verdict

  let tau_threshold ~n ~k' = (n + k' + 1 + 1) / 2  (* ⌈(N+K'+1)/2⌉ *)

  (* Batch verification: instead of one INTERMIX instance per result
     coordinate, the committee draws a random challenge r and verifies
     the single combined identity  A·(Σⱼ rʲ xⱼ) = Σⱼ rʲ yⱼ.  If any
     coordinate identity is false, the combination is false except with
     probability (dim−1)/|F| over r (Schwartz–Zippel) — negligible for
     our 31-bit field.  This cuts the committee's work by the result
     dimension. *)
  let combine_columns ~r (columns : F.t array array) =
    let dim = Array.length columns in
    let len = Array.length columns.(0) in
    let out = Array.make len F.zero in
    let power = ref F.one in
    for j = 0 to dim - 1 do
      for i = 0 to len - 1 do
        out.(i) <- F.add out.(i) (F.mul !power columns.(j).(i))
      done;
      power := F.mul !power r
    done;
    out

  (* One delegated round. *)
  let round ?(scope = Scope.null) ?(behavior = Honest) ?(batch = false)
      ?(challenge_rng = Csm_rng.create 0xBA7C)
      ?(corruption = E.default_corruption) (engine : E.t) ~commands
      ~byzantine ~worker ~committee () : outcome =
    Span.with_ ~ops:scope.Scope.ops ~name:"delegate.round" (fun () ->
    let p = engine.E.params in
    let n = p.Params.n and k = p.Params.k in
    let k' = Params.composite_degree ~k ~d:p.Params.d in
    let coding = engine.E.coding in
    let cmatrix = coding.C.cmatrix in
    let max_inter = ref 0 in
    let fraud = ref None in
    let check stage verdict =
      max_inter := max !max_inter verdict.IX.max_interactions;
      if not verdict.IX.accepted && !fraud = None then fraud := Some stage
    in
    let input_dim = engine.E.machine.E.M.input_dim in
    let wrole = node_role worker in
    (* Verify a family of identities A·xⱼ = yⱼ sharing the matrix A:
       per-coordinate, or as one random-linear-combination instance. *)
    let verify_columns stage a ~(xs : F.t array array)
        ~(claims : F.t array array) =
      if batch && Array.length xs > 1 then begin
        let r = F.random_nonzero challenge_rng in
        let x = combine_columns ~r xs in
        let y = combine_columns ~r claims in
        check stage (verify ~scope ~committee ~worker a x y)
      end
      else
        Array.iteri
          (fun j x -> check stage (verify ~scope ~committee ~worker a x claims.(j)))
          xs
    in

    (* --- Stage 1: command encoding --- *)
    let coded_commands =
      Span.with_ ~ops:scope.Scope.ops ~name:"delegate.encode" (fun () ->
      scope.Scope.run ~role:wrole (fun () ->
          let enc = C.encode_vectors_fast coding commands in
          (match behavior with
          | Lying_encode { node; offset } ->
            enc.(node) <- Array.map (fun v -> F.add v offset) enc.(node)
          | Honest | Lying_decode _ | Lying_update _ -> ());
          enc))
    in
    (* verify: column j of coded commands = C · column j *)
    verify_columns Encode cmatrix
      ~xs:(Array.init input_dim (fun j -> Array.init k (fun m -> commands.(m).(j))))
      ~claims:
        (Array.init input_dim (fun j ->
             Array.init n (fun i -> coded_commands.(i).(j))));
    if !fraud <> None then
      { decoded = None; fraud = !fraud; max_interactions = !max_inter }
    else begin
      (* --- Stage 2: local computation at every node --- *)
      let computed =
        Span.with_ ~ops:scope.Scope.ops ~name:"delegate.compute" (fun () ->
            Array.init n (fun i ->
                let g =
                  E.node_compute ~scope engine ~node:i
                    ~coded_command:coded_commands.(i)
                in
                if byzantine i then corruption ~node:i g else g))
      in
      (* --- Stage 3: worker decodes each coordinate, with certificate --- *)
      let dim = E.result_dim engine in
      let kdim = k' + 1 in
      let decode_coord j =
        scope.Scope.run ~role:wrole (fun () ->
            let pairs =
              Array.init n (fun i -> (coding.C.alphas.(i), computed.(i).(j)))
            in
            match RS.decode ~k:kdim pairs with
            | None -> None
            | Some d ->
              let coeffs = Array.make kdim F.zero in
              Array.iteri (fun c v -> coeffs.(c) <- v) (P.to_coeffs d.RS.poly);
              (match behavior with
              | Lying_decode { coeff; offset } when coeff < kdim ->
                coeffs.(coeff) <- F.add coeffs.(coeff) offset
              | Honest | Lying_encode _ | Lying_update _ | Lying_decode _ ->
                ());
              Some (coeffs, d.RS.agreement))
      in
      let per_coord =
        Span.with_ ~ops:scope.Scope.ops ~name:"delegate.decode" (fun () ->
            Array.init dim decode_coord)
      in
      if Array.exists (fun o -> o = None) per_coord then
        (* undecodable: too many faulty nodes — same outcome as the
           decentralized engine *)
        { decoded = None; fraud = None; max_interactions = !max_inter }
      else begin
        let per_coord =
          Array.map (function Some x -> x | None -> assert false) per_coord
        in
        (* verify each coordinate's certificate *)
        Array.iteri
          (fun j (coeffs, tau) ->
            if !fraud = None then begin
              (* size check (every commoner does this in O(|τ|) int ops) *)
              if List.length tau < tau_threshold ~n ~k' then begin
                fraud := Some Decode_cert
              end
              else begin
                let tau_arr = Array.of_list tau in
                let v_tau =
                  M.vandermonde
                    (Array.map (fun i -> coding.C.alphas.(i)) tau_arr)
                    ~cols:kdim
                in
                let g_tau =
                  Array.map (fun i -> computed.(i).(j)) tau_arr
                in
                check Decode_cert
                  (verify ~scope ~committee ~worker v_tau coeffs g_tau)
              end
            end)
          per_coord;
        if !fraud <> None then
          { decoded = None; fraud = !fraud; max_interactions = !max_inter }
        else begin
          (* --- Stage 4: evaluation at the ωs (equation (8)) --- *)
          let omega_vdm = M.vandermonde coding.C.omegas ~cols:kdim in
          let sd = engine.E.machine.E.M.state_dim in
          let next_states =
            Array.init k (fun _ -> Array.make sd F.zero)
          in
          let outputs =
            Array.init k (fun _ ->
                Array.make engine.E.machine.E.M.output_dim F.zero)
          in
          let eval_claims =
            Array.map
              (fun (coeffs, _tau) ->
                scope.Scope.run ~role:wrole (fun () ->
                    M.mat_vec omega_vdm coeffs))
              per_coord
          in
          verify_columns Evaluate omega_vdm
            ~xs:(Array.map fst per_coord)
            ~claims:eval_claims;
          Array.iteri
            (fun j claimed ->
              Array.iteri
                (fun m v ->
                  if j < sd then next_states.(m).(j) <- v
                  else outputs.(m).(j - sd) <- v)
                claimed)
            eval_claims;
          if !fraud <> None then
            { decoded = None; fraud = !fraud; max_interactions = !max_inter }
          else begin
            (* --- Stage 5: coded state update --- *)
            let new_coded =
              Span.with_ ~ops:scope.Scope.ops ~name:"delegate.reencode"
                (fun () ->
                  scope.Scope.run ~role:wrole (fun () ->
                      let enc = C.encode_vectors_fast coding next_states in
                      (match behavior with
                      | Lying_update { node; offset } ->
                        enc.(node) <-
                          Array.map (fun v -> F.add v offset) enc.(node)
                      | Honest | Lying_encode _ | Lying_decode _ -> ());
                      enc))
            in
            verify_columns Update cmatrix
              ~xs:
                (Array.init sd (fun j ->
                     Array.init k (fun m -> next_states.(m).(j))))
              ~claims:
                (Array.init sd (fun j ->
                     Array.init n (fun i -> new_coded.(i).(j))));
            if !fraud <> None then
              { decoded = None; fraud = !fraud; max_interactions = !max_inter }
            else begin
              (* adopt: each node stores its verified coded state *)
              engine.E.coded_states <- Array.map Array.copy new_coded;
              engine.E.round_index <- engine.E.round_index + 1;
              (* derive error set for reporting: nodes outside every τ *)
              let all_errors =
                List.sort_uniq Int.compare
                  (Array.to_list per_coord
                  |> List.concat_map (fun (_, tau) ->
                         List.filter
                           (fun i -> not (List.mem i tau))
                           (List.init n (fun i -> i))))
              in
              {
                decoded =
                  Some
                    { E.next_states; outputs; error_nodes = all_errors };
                fraud = None;
                max_interactions = !max_inter;
              }
            end
          end
        end
      end
    end)
    |> fun outcome ->
    (match outcome.fraud with
    | Some stage ->
      if Csm_obs.Metric.enabled () then
        Csm_obs.Metric.inc
          (Csm_obs.Telemetry.delegation_fraud ~stage:(fraud_stage_name stage));
      Csm_obs.Event.emit
        ~attrs:[ ("stage", fraud_stage_name stage) ]
        Csm_obs.Event.Warn "delegation.fraud_caught"
    | None -> ());
    outcome
end
