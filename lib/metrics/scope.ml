(* Cost-attribution scopes.

   Protocol engines are written against a plain field; measurement
   harnesses instantiate them with a counted field and pass a scope that
   routes operation counts to the right ledger role while a given
   node/worker/auditor is "computing".  The default scope is free. *)

type t = {
  run : 'a. role:string -> (unit -> 'a) -> 'a;
  ops : unit -> int * int * int;
      (* current (adds, muls, invs) totals of whatever this scope counts
         into; the span tracer samples it at span boundaries *)
}

let no_ops () = (0, 0, 0)
let null = { run = (fun ~role:_ f -> f ()); ops = no_ops }

(* The shape of [Csm_field.Counted.Make(_)]'s counter plumbing. *)
module type COUNTED_RUNNER = sig
  val with_counter : Counter.t -> (unit -> 'a) -> 'a
end

let of_ledger (module R : COUNTED_RUNNER) ledger =
  {
    run = (fun ~role f -> R.with_counter (Ledger.counter ledger role) f);
    ops = (fun () -> Ledger.op_totals ledger);
  }

let node t i f = t.run ~role:(Ledger.node_role i) f
