(* Field-operation counters.

   The paper measures throughput in "number of additions and multiplications
   in F" (Section 2.2); a counter records exactly those, split by kind so
   that analyses can weight them differently if desired.

   Counts are atomic ints: the parallel engine attributes work from
   several domains to one role (e.g. all per-coordinate decodes of a
   round land on the decoder's counter), and exact totals — identical
   for any domain count — are an acceptance criterion for every
   operation-counted table. *)

type t = {
  adds : int Atomic.t;  (* additions, subtractions, negations *)
  muls : int Atomic.t;  (* multiplications *)
  invs : int Atomic.t;  (* inversions / divisions *)
}

let create () = { adds = Atomic.make 0; muls = Atomic.make 0; invs = Atomic.make 0 }

let reset t =
  Atomic.set t.adds 0;
  Atomic.set t.muls 0;
  Atomic.set t.invs 0

let add t = Atomic.incr t.adds
let mul t = Atomic.incr t.muls
let inv t = Atomic.incr t.invs

(* Bulk charge for the byte-packed batch kernels: one fetch_and_add per
   kind instead of one atomic increment per element, with identical
   totals to the element-at-a-time path. *)
let bulk t ~adds ~muls ~invs =
  if adds > 0 then ignore (Atomic.fetch_and_add t.adds adds);
  if muls > 0 then ignore (Atomic.fetch_and_add t.muls muls);
  if invs > 0 then ignore (Atomic.fetch_and_add t.invs invs)

let adds t = Atomic.get t.adds
let muls t = Atomic.get t.muls
let invs t = Atomic.get t.invs

(* Total cost in field operations.  An inversion by extended Euclid or
   Fermat costs O(log p) multiplications; we charge a flat weight so that
   totals remain architecture-independent.  The paper's complexity model
   counts additions and multiplications; inversions only appear inside
   interpolation where their count is dominated by multiplications. *)
let inv_weight = 32

let total t = adds t + muls t + (inv_weight * invs t)

(* Cheap snapshot: three atomic loads, no allocation of new atomics.
   Spans use snapshot/diff to attribute op deltas to a region without
   resetting counters that other roles/domains are still writing. *)
let snapshot t = (adds t, muls t, invs t)

let diff ~before:(a0, m0, i0) ~after:(a1, m1, i1) =
  (a1 - a0, m1 - m0, i1 - i0)

let total_of (a, m, i) = a + m + (inv_weight * i)

let copy t =
  {
    adds = Atomic.make (adds t);
    muls = Atomic.make (muls t);
    invs = Atomic.make (invs t);
  }

let accumulate ~into t =
  ignore (Atomic.fetch_and_add into.adds (adds t));
  ignore (Atomic.fetch_and_add into.muls (muls t));
  ignore (Atomic.fetch_and_add into.invs (invs t))

let pp ppf t =
  Format.fprintf ppf "{adds=%d; muls=%d; invs=%d; total=%d}" (adds t) (muls t)
    (invs t) (total t)
