(** Per-role operation-cost ledger for protocol runs. *)

type t

val create : unit -> t

val counter : t -> string -> Counter.t
(** [counter t role] returns (creating if needed) the counter for [role]. *)

val node_role : int -> string
(** Canonical role name for compute node [i]. *)

val node : t -> int -> Counter.t
(** Counter for compute node [i]. *)

val roles : t -> string list
(** All roles seen so far, sorted. *)

val total : t -> string -> int
(** Total weighted cost recorded for a role (0 if unseen). *)

val grand_total : t -> int

val op_totals : t -> int * int * int
(** Unweighted (adds, muls, invs) summed over all roles — the span
    tracer's operation source. *)

val reset : t -> unit

val throughput : commands:int -> node_costs:int array -> float
(** λ = commands / (mean per-node cost), the paper's Section-2.2 metric. *)

val per_node_costs : t -> n:int -> int array
(** Costs of roles [node-0 .. node-(n-1)]. *)

val pp : Format.formatter -> t -> unit
