(* Per-role cost ledger.

   A protocol run attributes field-operation counts to named roles
   ("node 3", "worker", "auditor 1", "commoner", ...).  The throughput
   metric of the paper averages the per-node execution-phase cost over the
   network, so the ledger keeps one counter per role and can aggregate.

   Role lookup is mutex-protected: the parallel engine resolves roles
   from worker domains concurrently (counter increments themselves are
   atomic, see [Counter]).  The mutex is a [Lockdep] checked lock so a
   CSM_LOCKDEP=1 run folds ledger acquisitions into the global lock
   order graph. *)

module Lockdep = Csm_parallel.Lockdep

type t = {
  table : (string, Counter.t) Hashtbl.t;
  lock : Lockdep.t;
}

let create () = { table = Hashtbl.create 16; lock = Lockdep.create "ledger" }

let locked t f = Lockdep.with_lock t.lock f

(* Unlocked lookup-or-create, for use inside [locked] sections. *)
let counter_unlocked t role =
  match Hashtbl.find_opt t.table role with
  | Some c -> c
  | None ->
    let c = Counter.create () in
    Hashtbl.add t.table role c;
    c

let counter t role = locked t (fun () -> counter_unlocked t role)

let node_role i = Printf.sprintf "node-%d" i

let node t i = counter t (node_role i)

let roles t =
  locked t (fun () -> Hashtbl.fold (fun k _ acc -> k :: acc) t.table [])
  |> List.sort String.compare

let total t role =
  match locked t (fun () -> Hashtbl.find_opt t.table role) with
  | Some c -> Counter.total c
  | None -> 0

let grand_total t =
  locked t (fun () ->
      Hashtbl.fold (fun _ c acc -> acc + Counter.total c) t.table 0)

(* Unweighted (adds, muls, invs) totals across every role: the span
   tracer samples this at span start/end to attribute exact op deltas
   to pipeline phases, whatever roles the work lands on. *)
let op_totals t =
  locked t (fun () ->
      Hashtbl.fold
        (fun _ c (a, m, i) ->
          (a + Counter.adds c, m + Counter.muls c, i + Counter.invs c))
        t.table (0, 0, 0))

let reset t = locked t (fun () -> Hashtbl.iter (fun _ c -> Counter.reset c) t.table)

(* Throughput per the paper's definition (Section 2.2):
   λ = K / ((Σ_{i=1..N} per-node cost) / N).
   [node_costs] are the execution-phase operation counts of the N nodes
   (including any worker/auditor overhead attributed to them). *)
let throughput ~commands ~node_costs =
  let n = Array.length node_costs in
  if n = 0 then 0.0
  else begin
    let sum = Array.fold_left ( + ) 0 node_costs in
    if sum = 0 then infinity
    else float_of_int commands /. (float_of_int sum /. float_of_int n)
  end

let per_node_costs t ~n =
  Array.init n (fun i -> total t (node_role i))

let pp ppf t =
  let rs = roles t in
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-14s %a@," r Counter.pp (counter t r))
    rs;
  Format.fprintf ppf "@]"
