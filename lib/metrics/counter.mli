(** Field-operation counters used to measure the paper's throughput metric
    λ = K / (Σᵢ per-node operation count / N), Section 2.2.

    Counters are domain-safe: increments are atomic, so work attributed
    to one role from several domains (the parallel engine's fan-out)
    still yields exact totals, identical for any domain count. *)

type t

val create : unit -> t

val reset : t -> unit

val add : t -> unit
(** Record one addition / subtraction / negation. *)

val mul : t -> unit
(** Record one multiplication. *)

val inv : t -> unit
(** Record one inversion / division. *)

val bulk : t -> adds:int -> muls:int -> invs:int -> unit
(** Record many operations at once (one atomic add per kind) — the batch
    kernels' accounting path.  Totals are identical to issuing the same
    number of single-op records. *)

val adds : t -> int
val muls : t -> int
val invs : t -> int

val inv_weight : int
(** Flat cost charged per inversion in [total]. *)

val total : t -> int
(** Total operation count: [adds + muls + inv_weight * invs]. *)

val snapshot : t -> int * int * int
(** Cheap (adds, muls, invs) snapshot — three atomic loads, no
    allocation — for attributing op deltas to a span without resetting
    a counter that other roles / domains are still writing. *)

val diff :
  before:int * int * int -> after:int * int * int -> int * int * int
(** Component-wise [after - before] of two snapshots. *)

val total_of : int * int * int -> int
(** Weighted total of a snapshot/diff triple ([total] on live
    counters). *)

val copy : t -> t
(** Immutable counter holding the current counts. *)

val accumulate : into:t -> t -> unit
(** [accumulate ~into t] adds [t]'s counts into [into]. *)

val pp : Format.formatter -> t -> unit
