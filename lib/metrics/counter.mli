(** Field-operation counters used to measure the paper's throughput metric
    λ = K / (Σᵢ per-node operation count / N), Section 2.2.

    Counters are domain-safe: increments are atomic, so work attributed
    to one role from several domains (the parallel engine's fan-out)
    still yields exact totals, identical for any domain count. *)

type t

val create : unit -> t

val reset : t -> unit

val add : t -> unit
(** Record one addition / subtraction / negation. *)

val mul : t -> unit
(** Record one multiplication. *)

val inv : t -> unit
(** Record one inversion / division. *)

val adds : t -> int
val muls : t -> int
val invs : t -> int

val inv_weight : int
(** Flat cost charged per inversion in [total]. *)

val total : t -> int
(** Total operation count: [adds + muls + inv_weight * invs]. *)

val snapshot : t -> t
(** Immutable copy of the current counts. *)

val diff : before:t -> after:t -> t
(** Counts accumulated between two snapshots. *)

val accumulate : into:t -> t -> unit
(** [accumulate ~into t] adds [t]'s counts into [into]. *)

val pp : Format.formatter -> t -> unit
