(** Cost-attribution scopes: route field-operation counts to ledger
    roles while protocol engines execute on behalf of a node. *)

type t = {
  run : 'a. role:string -> (unit -> 'a) -> 'a;
  ops : unit -> int * int * int;
      (** current (adds, muls, invs) totals of this scope's sink; spans
          sample it at their boundaries to record per-phase op deltas *)
}

val null : t
(** No-op scope (no measurement; [ops] is constantly [(0, 0, 0)]). *)

module type COUNTED_RUNNER = sig
  val with_counter : Counter.t -> (unit -> 'a) -> 'a
end

val of_ledger : (module COUNTED_RUNNER) -> Ledger.t -> t
(** Scope that counts into [ledger], per role. *)

val node : t -> int -> (unit -> 'a) -> 'a
(** [node t i f] runs [f] attributed to compute node [i]. *)
