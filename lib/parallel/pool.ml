(* Shared-memory domain pool for the hot paths of the coded engine.

   Design constraints, in order:

   1. Determinism.  Every primitive writes results by index, so outputs
      are bit-identical for any domain count, and [CSM_DOMAINS=1] (or
      [with_domain_limit 1]) degenerates to a plain [for] loop executing
      the exact sequential schedule — same operations, same order.
   2. Zero cost when unused.  No domain is spawned until the first
      parallel job actually needs one; with one domain configured every
      entry point is a direct loop.
   3. Safe nesting.  A task that itself calls a parallel primitive (the
      harness sweeps run engine rounds that fan out internally) runs the
      inner loop inline in its own domain instead of deadlocking on the
      shared queue.
   4. Exact measurement.  Operation-counting state is domain-local (see
      [Csm_field.Counted]); [register_propagator] lets such state be
      captured in the submitting domain and re-installed in each worker
      before it touches a job, so cost attribution is identical under
      any domain count.

   The pool is a single global work queue: one job at a time, chunks
   claimed by an atomic cursor, submitter participating as a worker.
   This fits the engine's fan-out shape (wide, uniform, short-lived
   jobs) without the complexity of work stealing. *)

let hard_cap = 128

type job = {
  run : int -> unit;  (* execute one chunk *)
  chunks : int;
  width : int;  (* participating domains, including the submitter *)
  installs : (unit -> unit) list;  (* captured domain-local environment *)
  next : int Atomic.t;  (* next chunk to claim *)
  completed : int Atomic.t;  (* chunks finished *)
  failed : exn option Atomic.t;  (* first failure, re-raised at join *)
}

let lock = Lockdep.create "pool"
let work_cond = Condition.create ()
let done_cond = Condition.create ()

(* Generation counter + current job, both guarded by [lock].  Workers
   sleep until the generation moves past the last one they served. *)
let seq = ref 0
let job_slot : job option ref = ref None
let spawned = ref 0

(* True while this domain is executing pool work (worker domains always;
   the submitting domain for the duration of a job).  Any parallel entry
   point reached while engaged runs inline. *)
let engaged = Domain.DLS.new_key (fun () -> false)

let propagators : (unit -> (unit -> unit)) list ref = ref []
let register_propagator f = propagators := f :: !propagators

let env_size =
  lazy
    (match Sys.getenv_opt "CSM_DOMAINS" with
    | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some d when d >= 1 -> min d hard_cap
      | Some _ | None -> Domain.recommended_domain_count ())
    | None -> Domain.recommended_domain_count ())

(* 0 = not yet configured: take CSM_DOMAINS / recommended on first use. *)
let configured = ref 0

let domains () = if !configured = 0 then Lazy.force env_size else !configured

let set_domains d =
  if d < 1 then invalid_arg "Pool.set_domains: need at least 1 domain";
  configured := min d hard_cap

let limit = ref max_int

let with_domain_limit d f =
  if d < 1 then invalid_arg "Pool.with_domain_limit: need at least 1 domain";
  let saved = !limit in
  limit := d;
  Fun.protect ~finally:(fun () -> limit := saved) f

let effective_width () = min (domains ()) !limit

(* Claim and run chunks until the cursor runs past the end.  Shared by
   workers and the submitter.  After a failure remaining chunks are
   still claimed (so completion counting stays exact) but not run. *)
let rec work_chunks j =
  let c = Atomic.fetch_and_add j.next 1 in
  if c < j.chunks then begin
    (if Atomic.get j.failed = None then
       try j.run c
       with e -> ignore (Atomic.compare_and_set j.failed None (Some e)));
    if Atomic.fetch_and_add j.completed 1 + 1 = j.chunks then
      Lockdep.with_lock lock (fun () -> Condition.broadcast done_cond);
    work_chunks j
  end

let rec worker_loop id last_seq =
  let s, j =
    Lockdep.with_lock lock (fun () ->
        while !seq = last_seq do
          Lockdep.wait work_cond lock
        done;
        (!seq, !job_slot))
  in
  (match j with
  | Some j when id + 1 < j.width ->
    List.iter (fun install -> install ()) j.installs;
    work_chunks j
  | Some _ | None -> ());
  worker_loop id s

let ensure_workers count =
  if !spawned < count then
    Lockdep.with_lock lock (fun () ->
        let s0 = !seq in
        while !spawned < count do
          let id = !spawned in
          ignore
            (Domain.spawn (fun () ->
                 Domain.DLS.set engaged true;
                 worker_loop id s0));
          incr spawned
        done)

let run_job ~width ~chunks run =
  ensure_workers (width - 1);
  let installs = List.rev_map (fun capture -> capture ()) !propagators in
  let j =
    {
      run;
      chunks;
      width;
      installs;
      next = Atomic.make 0;
      completed = Atomic.make 0;
      failed = Atomic.make None;
    }
  in
  Domain.DLS.set engaged true;
  Lockdep.with_lock lock (fun () ->
      job_slot := Some j;
      incr seq;
      Condition.broadcast work_cond);
  work_chunks j;
  Lockdep.with_lock lock (fun () ->
      while Atomic.get j.completed < j.chunks do
        Lockdep.wait done_cond lock
      done;
      job_slot := None);
  Domain.DLS.set engaged false;
  match Atomic.get j.failed with Some e -> raise e | None -> ()

let default_chunk n width = max 1 ((n + (4 * width) - 1) / (4 * width))

let parallel_for_range ?chunk ~lo ~hi f =
  let n = hi - lo in
  if n > 0 then begin
    let width = effective_width () in
    if width <= 1 || n = 1 || Domain.DLS.get engaged then
      for i = lo to hi - 1 do
        f i
      done
    else begin
      let c =
        match chunk with
        | Some c when c >= 1 -> c
        | Some _ -> invalid_arg "Pool.parallel_for: chunk must be >= 1"
        | None -> default_chunk n width
      in
      let chunks = (n + c - 1) / c in
      if chunks <= 1 then
        for i = lo to hi - 1 do
          f i
        done
      else
        run_job ~width:(min width chunks) ~chunks (fun idx ->
            let start = lo + (idx * c) in
            let stop = min hi (start + c) in
            for i = start to stop - 1 do
              f i
            done)
    end
  end

let parallel_for ?chunk n f = parallel_for_range ?chunk ~lo:0 ~hi:n f

let parallel_init ?chunk n f =
  if n <= 0 then [||]
  else begin
    (* f 0 runs in the submitting domain and seeds the array, so f is
       called exactly once per index (no placeholder tricks, float
       arrays stay unboxed). *)
    let first = f 0 in
    let res = Array.make n first in
    parallel_for_range ?chunk ~lo:1 ~hi:n (fun i -> res.(i) <- f i);
    res
  end

let parallel_map_array ?chunk f a =
  parallel_init ?chunk (Array.length a) (fun i -> f a.(i))

let parallel_list_map f l =
  Array.to_list (parallel_map_array f (Array.of_list l))
