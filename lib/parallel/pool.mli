(** Lazily-initialized domain pool with deterministic chunked fan-out.

    Sizing: [CSM_DOMAINS] in the environment (default
    [Domain.recommended_domain_count ()], clamped to [1, 128]), overridable
    at runtime with [set_domains] / [with_domain_limit].  No domain is
    spawned until the first job that needs one.

    Determinism guarantee: every primitive writes results by index, so
    outputs are bit-identical for any domain count; with an effective
    width of 1 the primitives are plain sequential loops executing the
    exact sequential schedule.  Nested calls (a task invoking a parallel
    primitive) run inline in the calling domain. *)

val domains : unit -> int
(** Configured domain count (env / [set_domains]); at least 1. *)

val set_domains : int -> unit
(** Override the configured domain count (clamped to [1, 128]).  Call
    from the main domain only; growth spawns workers lazily. *)

val with_domain_limit : int -> (unit -> 'a) -> 'a
(** [with_domain_limit d f] runs [f] with the effective width capped at
    [d] (1 = exact sequential execution).  Restores on exit, including
    exceptional exit.  Used by benches and tests to compare domain
    counts within one process. *)

val register_propagator : (unit -> (unit -> unit)) -> unit
(** [register_propagator capture] registers domain-local state to carry
    into workers: at each job submission [capture ()] runs in the
    submitting domain and returns an [install] function that each
    participating worker runs before claiming chunks.  Used by the
    counted field to route operation counts to the submitter's current
    counter, keeping measured totals exact under any domain count. *)

val parallel_for : ?chunk:int -> int -> (int -> unit) -> unit
(** [parallel_for ?chunk n f] runs [f i] for every [i] in [0, n);
    [chunk] indices per task (default: enough for ~4 chunks per
    domain).  Exceptions raised by [f] are re-raised at the call site
    (first one wins); remaining chunks are skipped. *)

val parallel_for_range : ?chunk:int -> lo:int -> hi:int -> (int -> unit) -> unit
(** [parallel_for] over [lo, hi). *)

val parallel_init : ?chunk:int -> int -> (int -> 'a) -> 'a array
(** Like [Array.init] with the body parallelized; [f] is called exactly
    once per index, results written by index ([f 0] runs first, in the
    calling domain). *)

val parallel_map_array : ?chunk:int -> ('a -> 'b) -> 'a array -> 'b array
(** Like [Array.map] with the body parallelized. *)

val parallel_list_map : ('a -> 'b) -> 'a list -> 'b list
(** Like [List.map] with the body parallelized (order preserved).  Meant
    for coarse-grained work such as independent harness configurations. *)
