(* Runtime lock-order checker: a [Mutex] wrapper that, when enabled
   ([CSM_LOCKDEP=1] or [enable ()]), records which locks are held by
   the acquiring thread and folds every held→acquired pair into one
   process-global order graph.  An acquisition that would close a cycle
   in that graph — i.e. two call paths taking the same pair of locks in
   opposite orders, the classic ABBA deadlock seed — is recorded as a
   violation and raised as {!Order_violation} at the next release of a
   checked lock.

   Keying is per (domain, thread): the pool's worker domains and the
   transport's sender/reader threads each get their own acquisition
   stack, so the graph sees the true interleaving of the multicore and
   multi-thread stacks.  Disabled, [lock]/[unlock] cost one atomic load
   on top of the raw mutex and allocate nothing.

   The checker's own bookkeeping is guarded by a plain private mutex
   (the meta-lock), which is deliberately exempt from checking — it is
   only ever taken with the wrapped mutex graph as data, never while
   user code runs. *)

type t = {
  m : Mutex.t;
  name : string;
  id : int;
}

exception Order_violation of string

let enabled_flag =
  Atomic.make
    (match Sys.getenv_opt "CSM_LOCKDEP" with
    | Some ("1" | "true" | "on" | "yes") -> true
    | Some _ | None -> false)

let enabled () = Atomic.get enabled_flag
let enable () = Atomic.set enabled_flag true
let disable () = Atomic.set enabled_flag false

let next_id = Atomic.make 0

(* ----- global order graph, guarded by [meta] ----- *)

let meta = Mutex.create ()
let names : (int, string) Hashtbl.t = Hashtbl.create 32
let succs : (int, int list ref) Hashtbl.t = Hashtbl.create 64  (* a → taken-while-holding-a *)
let stacks : (int * int, int list ref) Hashtbl.t = Hashtbl.create 32
let pending : string list ref = ref []  (* violations not yet raised *)
let recorded : string list ref = ref []  (* every violation ever seen *)

let locked_meta f =
  Mutex.lock meta;
  Fun.protect ~finally:(fun () -> Mutex.unlock meta) f

let create name =
  let id = Atomic.fetch_and_add next_id 1 in
  locked_meta (fun () -> Hashtbl.replace names id name);
  { m = Mutex.create (); name; id }

let name t = t.name

(* Acquisition stacks are keyed by the physical (domain, thread) pair;
   no randomness or wall-clock flows from here. *)
(* csm-lint: allow R1 — physical execution-context key, not scheduling *)
let self_key () = ((Domain.self () :> int), Thread.id (Thread.self ()))

let stack_of key =
  match Hashtbl.find_opt stacks key with
  | Some s -> s
  | None ->
    let s = ref [] in
    Hashtbl.replace stacks key s;
    s

(* Is [dst] reachable from [src] in the order graph?  Called under
   [meta]; the graph is kept acyclic, so plain DFS terminates. *)
let reachable src dst =
  let seen = Hashtbl.create 16 in
  let rec go v =
    v = dst
    || (not (Hashtbl.mem seen v))
       && begin
            Hashtbl.replace seen v ();
            match Hashtbl.find_opt succs v with
            | None -> false
            | Some l -> List.exists go !l
          end
  in
  go src

let lock_name id =
  match Hashtbl.find_opt names id with
  | Some n -> Printf.sprintf "%s#%d" n id
  | None -> Printf.sprintf "#%d" id

(* Record that [t] is being acquired while [held] are held: add each
   held→t edge, refusing (and recording a violation for) any edge that
   would close a cycle — i.e. t already precedes the held lock
   somewhere else in the process. *)
let record_acquire t =
  locked_meta (fun () ->
      let stack = stack_of (self_key ()) in
      List.iter
        (fun h ->
          if h <> t.id then begin
            let l =
              match Hashtbl.find_opt succs h with
              | Some l -> l
              | None ->
                let l = ref [] in
                Hashtbl.replace succs h l;
                l
            in
            if not (List.mem t.id !l) then begin
              if reachable t.id h then begin
                let msg =
                  Printf.sprintf
                    "lock-order inversion: acquiring %s while holding %s, \
                     but %s is ordered before %s elsewhere"
                    (lock_name t.id) (lock_name h) (lock_name t.id)
                    (lock_name h)
                in
                pending := msg :: !pending;
                recorded := msg :: !recorded
              end
              else l := t.id :: !l
            end
          end)
        !stack;
      stack := t.id :: !stack)

let record_release t =
  locked_meta (fun () ->
      let stack = stack_of (self_key ()) in
      let rec drop = function
        | [] -> []
        | x :: tl -> if x = t.id then tl else x :: drop tl
      in
      stack := drop !stack;
      let p = !pending in
      pending := [];
      p)

let lock t =
  if Atomic.get enabled_flag then record_acquire t;
  (* Release pairing is the caller's obligation, enforced by R3 at
     every call site. *)
  (* csm-lint: allow R3 — this IS the checked acquire primitive *)
  Mutex.lock t.m

(* Violations surface at release time (the cycle check itself runs as
   edges are added): the release is the first point where raising
   cannot leave the caller's critical section half-entered. *)
let unlock t =
  Mutex.unlock t.m;
  if Atomic.get enabled_flag then
    match record_release t with
    | [] -> ()
    | msg :: _ -> raise (Order_violation msg)

(* Not [Fun.protect]: a violation raised by [unlock] must reach the
   caller as [Order_violation], not wrapped in [Finally_raised].  When
   [f] itself raises, its exception wins and any simultaneous violation
   stays available through [violations]. *)
let with_lock t f =
  lock t;
  match f () with
  | v ->
    unlock t;
    v
  | exception e ->
    let bt = Printexc.get_raw_backtrace () in
    (try unlock t with Order_violation _ -> ());
    Printexc.raise_with_backtrace e bt

(* Condition-variable wait on a checked lock.  The mutex is released
   and re-acquired by [Condition.wait] itself; for ordering purposes
   the lock never leaves the acquisition stack — it is re-held before
   control returns, exactly like classic lockdep treats condvars. *)
let wait cond t = Condition.wait cond t.m

let violations () = locked_meta (fun () -> List.rev !recorded)

(* ----- export: the observed graph, for the static R9 cross-check ----- *)

let plain_name id =
  match Hashtbl.find_opt names id with
  | Some n -> n
  | None -> Printf.sprintf "#%d" id

(* Every held→acquired edge observed so far, as (held, acquired) name
   pairs, deduplicated and sorted — the runtime twin of the analyzer's
   static acquisition graph. *)
let edges () =
  locked_meta (fun () ->
      Hashtbl.fold
        (fun src l acc ->
          List.fold_left
            (fun acc dst ->
              let e = (plain_name src, plain_name dst) in
              if List.mem e acc then acc else e :: acc)
            acc !l)
        succs []
      |> List.sort (fun (a1, b1) (a2, b2) ->
             match String.compare a1 a2 with
             | 0 -> String.compare b1 b2
             | c -> c))

let export path =
  let es = edges () in
  Out_channel.with_open_text path (fun oc ->
      output_string oc
        "# CSM_LOCKDEP runtime lock-order edges: \"a -> b\" means b was\n\
         # acquired while a was held.  Regenerate with `make lockdep-export`;\n\
         # csm-lint --taint flags any static edge that contradicts an order\n\
         # recorded here (rule R9).\n";
      List.iter (fun (a, b) -> Printf.fprintf oc "%s -> %s\n" a b) es)

(* [CSM_LOCKDEP_EXPORT=path] dumps the observed graph when the process
   exits, so any checked run can refresh lint/lock_order.expected. *)
let () =
  match Sys.getenv_opt "CSM_LOCKDEP_EXPORT" with
  | Some path when path <> "" -> at_exit (fun () -> export path)
  | _ -> ()

let reset () =
  locked_meta (fun () ->
      Hashtbl.reset succs;
      Hashtbl.reset stacks;
      pending := [];
      recorded := [])
