(** Runtime lock-order checker: a [Mutex] wrapper recording per-thread
    acquisition stacks into one process-global order graph, with cycle
    detection — two code paths taking the same pair of locks in
    opposite orders (the ABBA deadlock seed) raise {!Order_violation}.

    Enabled by [CSM_LOCKDEP=1] in the environment or {!enable};
    disabled, [lock]/[unlock] cost one atomic load over the raw mutex
    and allocate nothing.  The pool, ledger and transport mutexes are
    all of this type, so a [CSM_LOCKDEP=1] cluster run checks the whole
    concurrent stack. *)

type t

exception Order_violation of string

val create : string -> t
(** [create name] makes a checked mutex; [name] labels violations. *)

val name : t -> string

val lock : t -> unit
(** Acquire; when checking is on, record every held→this edge and flag
    any edge that closes a cycle in the global order graph. *)

val unlock : t -> unit
(** Release.  @raise Order_violation when checking is on and an
    inversion was detected since the last release on this thread. *)

val with_lock : t -> (unit -> 'a) -> 'a
(** [with_lock t f] runs [f] with [t] held; releases on any exit,
    exceptional included.  The preferred form everywhere a condition
    variable is not involved. *)

val wait : Condition.t -> t -> unit
(** [Condition.wait] on the underlying mutex (caller must hold [t]);
    the lock stays on the acquisition stack across the wait, as it is
    re-held before control returns. *)

val enabled : unit -> bool
val enable : unit -> unit
val disable : unit -> unit

val violations : unit -> string list
(** Every violation recorded since the last {!reset}, oldest first
    (including ones already raised). *)

val reset : unit -> unit
(** Clear the order graph, acquisition stacks and violation log (for
    tests that deliberately invert a pair). *)

val edges : unit -> (string * string) list
(** Every held→acquired edge observed since the last {!reset}, as
    (held, acquired) name pairs, deduplicated and sorted. *)

val export : string -> unit
(** Write {!edges} to [path] in the [lint/lock_order.expected] format
    ("a -> b" lines, ['#'] comments).  Also runs automatically at
    process exit when [CSM_LOCKDEP_EXPORT=path] is set, so a
    [CSM_LOCKDEP=1] run can refresh the committed expectation that
    csm-lint's static R9 pass cross-checks. *)
