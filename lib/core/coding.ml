(* Lagrange coded states and commands (Section 5.1).

   A coding context fixes the machine points ω₁..ω_K and node points
   α₁..α_N (arbitrary distinct field elements; we take 0..K−1 and
   K..K+N−1) and precomputes the N×K coefficient matrix
   C = [c_{ik}], c_{ik} = ∏_{ℓ≠k} (αᵢ−ω_ℓ)/(ω_k−ω_ℓ).

   Vectors (states and commands are elements of F^dim) are coded
   coordinate-wise: node i's coded state has the same dimension — hence
   the same size — as a single machine's state, giving γ = K. *)

module Field_intf = Csm_field.Field_intf
module Pool = Csm_parallel.Pool
module Span = Csm_obs.Span

module Make (F : Field_intf.S) = struct
  module P = Csm_poly.Poly.Make (F)
  module Lag = Csm_poly.Lagrange.Make (F)
  module Sub = Csm_poly.Subproduct.Make (F)

  type t = {
    n : int;
    k : int;
    omegas : F.t array;  (* K machine points *)
    alphas : F.t array;  (* N node points *)
    cmatrix : F.t array array;  (* N×K encoding matrix *)
    omega_weights : F.t array;  (* barycentric weights of the ωs *)
    omega_prepared : Sub.prepared Lazy.t;  (* fast-interp context (§6.2) *)
    alpha_prepared : Sub.prepared Lazy.t;  (* fast-eval context (§6.2) *)
    omega_packed : Bytes.t option Lazy.t;
        (* ωs packed for the byte kernels, when the field has them *)
  }

  let create ~n ~k =
    if k < 1 || n < k then invalid_arg "Coding.create: need 1 <= K <= N";
    if F.order < n + k then
      invalid_arg "Coding.create: field too small for K+N distinct points";
    let omegas = Lag.standard_points k in
    let alphas = Lag.standard_points ~offset:k n in
    let cmatrix = Lag.coeff_matrix ~omegas ~alphas in
    let omega_weights = Lag.barycentric_weights omegas in
    {
      n;
      k;
      omegas;
      alphas;
      cmatrix;
      omega_weights;
      omega_prepared = lazy (Sub.prepare omegas);
      alpha_prepared = lazy (Sub.prepare alphas);
      omega_packed =
        lazy
          (match F.batch () with
          | Some b -> Some (b.Field_intf.pack omegas)
          | None -> None);
    }

  (* Encode K scalars into N coded scalars: X̃ = C·X. *)
  let encode_scalars t (values : F.t array) =
    if Array.length values <> t.k then invalid_arg "Coding.encode_scalars";
    Lag.encode_with_matrix t.cmatrix values

  (* Encode one scalar for one node only (the per-node O(K) operation a
     node performs in the decentralized path). *)
  let encode_scalar_at t ~node (values : F.t array) =
    let row = t.cmatrix.(node) in
    let acc = ref F.zero in
    Array.iteri (fun j c -> acc := F.add !acc (F.mul c values.(j))) row;
    !acc

  (* Encode K vectors (one per machine, common dimension) into N coded
     vectors, coordinate-wise.  The N output rows are independent, so
     they fan out across the domain pool (each row written by index:
     bit-identical output for any domain count).

     When the field has byte-packed batch kernels (GF(2^8)/GF(2^16)) the
     K input rows are packed once and each output row is K axpy passes
     over packed vectors — the same K·dim multiplications and additions
     as the scalar loop, charged in bulk, an order of magnitude fewer
     closure calls. *)
  let encode_vectors t (vectors : F.t array array) =
    if Array.length vectors <> t.k then invalid_arg "Coding.encode_vectors";
    let dim = if t.k = 0 then 0 else Array.length vectors.(0) in
    Array.iter
      (fun v ->
        if Array.length v <> dim then
          invalid_arg "Coding.encode_vectors: ragged input")
      vectors;
    Span.with_ ~name:"coding.encode_vectors" (fun () ->
        match F.batch () with
        | Some b when dim > 0 ->
          let packed = Array.map b.Field_intf.pack vectors in
          Pool.parallel_init t.n (fun i ->
              let row = t.cmatrix.(i) in
              let acc = Bytes.make (dim * b.Field_intf.width) '\000' in
              for k = 0 to t.k - 1 do
                b.Field_intf.axpy ~acc ~c:row.(k) ~x:packed.(k)
              done;
              b.Field_intf.unpack acc)
        | _ ->
          Pool.parallel_init t.n (fun i ->
              let row = t.cmatrix.(i) in
              Array.init dim (fun j ->
                  let acc = ref F.zero in
                  for k = 0 to t.k - 1 do
                    acc := F.add !acc (F.mul row.(k) vectors.(k).(j))
                  done;
                  !acc)))

  let encode_vector_at t ~node (vectors : F.t array array) =
    let row = t.cmatrix.(node) in
    let dim = Array.length vectors.(0) in
    match F.batch () with
    | Some b when dim > 0 ->
      let acc = Bytes.make (dim * b.Field_intf.width) '\000' in
      for k = 0 to t.k - 1 do
        b.Field_intf.axpy ~acc ~c:row.(k) ~x:(b.Field_intf.pack vectors.(k))
      done;
      b.Field_intf.unpack acc
    | _ ->
      Array.init dim (fun j ->
          let acc = ref F.zero in
          for k = 0 to t.k - 1 do
            acc := F.add !acc (F.mul row.(k) vectors.(k).(j))
          done;
          !acc)

  (* Fast (quasi-linear) encoding used by the centralized worker:
     interpolate v_t(z) through (ω_k, value_k), then multipoint-evaluate
     at all αs, both with the round-independent prepared trees.
     Coordinate-wise over vectors. *)
  let encode_vectors_fast t (vectors : F.t array array) =
    Span.with_ ~name:"coding.encode_fast" (fun () ->
        let dim = Array.length vectors.(0) in
        let om = Lazy.force t.omega_prepared in
        let al = Lazy.force t.alpha_prepared in
        let per_coord j =
          let values = Array.init t.k (fun k -> vectors.(k).(j)) in
          let poly = Sub.interpolate_prepared om values in
          Sub.eval_prepared al poly
        in
        (* one interpolate+multievaluate per coordinate: the natural
           parallel unit of the centralized worker (§6.2) *)
        let coords = Pool.parallel_init ~chunk:1 dim per_coord in
        Array.init t.n (fun i -> Array.init dim (fun j -> coords.(j).(i))))

  (* Decode-side inner loop: evaluate a recovered round polynomial h_j
     at every machine point ω.  Horner per point either way — the byte
     kernels run it over the packed ωs with |coeffs| muls + adds per
     point, exactly the scalar [P.eval] count. *)
  let eval_at_omegas t (poly : P.t) =
    match (F.batch (), Lazy.force t.omega_packed) with
    | Some b, Some xs ->
      b.Field_intf.unpack (b.Field_intf.eval_many ~coeffs:poly ~xs)
    | _ -> Array.map (P.eval poly) t.omegas

  (* Evaluate the interpolant of the K machine values at an arbitrary
     point (used by tests to cross-check coded states). *)
  let interpolant_at t (values : F.t array) x =
    Lag.eval_barycentric ~points:t.omegas ~weights:t.omega_weights ~values x
end
