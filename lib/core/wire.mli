(** Deterministic wire encodings of field-element vectors: canonical
    decimal strings (the consensus value format) and fixed-width binary
    (the [Csm_wire.Frame] payload format of the real transports).

    Every decoder is total and exact — trailing garbage, non-canonical
    digits, truncated or extended bodies yield [None], never an
    exception. *)

module Field_intf = Csm_field.Field_intf

module Make (F : Field_intf.S) : sig
  (** {1 Canonical decimal strings} *)

  val encode_vector : F.t array -> string

  val decode_vector : dim:int -> string -> F.t array option
  (** Strict: exactly [dim] comma-separated canonical decimals (digits
      only, no leading zeros, ≤ 18 digits). *)

  val encode_commands : F.t array array -> string
  (** K command vectors, ';'-separated. *)

  val decode_commands : k:int -> dim:int -> string -> F.t array array option

  (** {1 Fixed-width binary (frame payloads)} *)

  val elt_bytes : int
  (** 8: each element is one big-endian u64. *)

  val vector_bytes : dim:int -> int
  (** Exact payload size of an encoded [dim]-vector — the value the
      simulator's [?size] sizers feed to [Csm_wire.Frame.encoded_size]. *)

  val commands_bytes : k:int -> dim:int -> int

  val encode_vector_bin : F.t array -> string
  val decode_vector_bin : dim:int -> string -> F.t array option

  val encode_commands_bin : F.t array array -> string
  val decode_commands_bin : k:int -> dim:int -> string -> F.t array array option

  val encode_matrix_bin : F.t array array -> string
  (** Self-describing rows of possibly different widths (the Output
      frame payload: K output rows followed by K next-state rows). *)

  val decode_matrix_bin : string -> F.t array array option
end
