(** The coded execution engine of Section 5.2 (network-free, phase by
    phase, deterministic). *)

module Field_intf = Csm_field.Field_intf
module Scope = Csm_metrics.Scope

module Make (F : Field_intf.S) : sig
  module Coding : module type of Coding.Make (F)
  module M : module type of Csm_machine.Machine.Make (F)
  module RS : module type of Csm_rs.Reed_solomon.Make (F)

  type t = {
    machine : M.t;
    params : Params.t;
    coding : Coding.t;
    mutable coded_states : F.t array array;
    mutable round_index : int;
    mutable rs_ctx : (F.t array * RS.fast_ctx) option;
        (** cached optimistic-decode precomputation (prepared subproduct
            trees), keyed by the received-point set — rebuilt only when
            the set of reporting nodes changes *)
  }

  val result_dim : t -> int
  (** state_dim + output_dim: the dimension of gᵢ. *)

  val create : machine:M.t -> params:Params.t -> init:F.t array array -> t
  (** @raise Invalid_argument on arity/degree/feasibility violations. *)

  val coded_state : t -> node:int -> F.t array

  val node_encode_command :
    ?scope:Scope.t -> t -> node:int -> commands:F.t array array -> F.t array

  val node_compute :
    ?scope:Scope.t -> t -> node:int -> coded_command:F.t array -> F.t array
  (** gᵢ = f(S̃ᵢ, X̃ᵢ), next-state coordinates first. *)

  type decoded = {
    next_states : F.t array array;
    outputs : F.t array array;
    error_nodes : int list;
  }

  val decode_results :
    ?scope:Scope.t ->
    ?role:string ->
    ?algorithm:RS.algorithm ->
    t ->
    (int * F.t array) list ->
    decoded option
  (** Noisy-interpolation decoding of received (node, gᵢ) results;
      [None] when any coordinate exceeds the decoding radius.  The
      algorithm defaults to [RS.default_algorithm ()] (CSM_RS_FASTPATH):
      optimistic modes reuse the engine-cached [rs_ctx] across
      coordinates and rounds and pass nodes with accumulated
      csm_node_suspicion as erasure candidates for the decoder's last
      resort. *)

  val node_update_state :
    ?scope:Scope.t -> t -> node:int -> next_states:F.t array array -> unit

  type corruption = node:int -> F.t array -> F.t array

  val default_corruption : corruption

  type round_report = {
    decoded : decoded option;
    computed : F.t array array;
  }

  val round :
    ?scope:Scope.t ->
    ?algorithm:RS.algorithm ->
    ?corruption:corruption ->
    ?withheld:(int -> bool) ->
    ?decode_role:string ->
    t ->
    commands:F.t array array ->
    byzantine:(int -> bool) ->
    unit ->
    round_report
  (** One full decentralized round; advances the coded states on
      success. *)

  val consistent_with : t -> states:F.t array array -> bool
  (** Do the coded states equal the encoding of the given reference
      states? *)

  val storage_per_node : t -> int

  val min_results : t -> int
  (** Earliest result count at which decoding tolerates b lies:
      d(K−1) + 2b + 1.  Results beyond this are straggler slack. *)

  val recover_coded_state :
    t -> node:int -> reports:(int * F.t array) list -> F.t array option
  (** Regenerate a node's coded state from peers' coded states (up to b
      of which may be lies): Reed–Solomon decoding of the degree-(K−1)
      state polynomial, evaluated at the node's point. *)

  val recover_node : t -> node:int -> reports:(int * F.t array) list -> bool
  (** [recover_coded_state] + install; [false] when undecodable. *)
end
