(** Lagrange coded states/commands (Section 5.1): the universal N×K
    encoding matrix and coordinate-wise vector coding. *)

module Field_intf = Csm_field.Field_intf

module Make (F : Field_intf.S) : sig
  module P : module type of Csm_poly.Poly.Make (F)

  module Sub : module type of Csm_poly.Subproduct.Make (F)

  type t = {
    n : int;
    k : int;
    omegas : F.t array;
    alphas : F.t array;
    cmatrix : F.t array array;
    omega_weights : F.t array;
    omega_prepared : Sub.prepared Lazy.t;
    alpha_prepared : Sub.prepared Lazy.t;
    omega_packed : Bytes.t option Lazy.t;
  }

  val create : n:int -> k:int -> t
  (** Machine points 0..K−1, node points K..K+N−1.
      @raise Invalid_argument if K > N or the field is too small. *)

  val encode_scalars : t -> F.t array -> F.t array
  (** All N coded scalars: C·values. *)

  val encode_scalar_at : t -> node:int -> F.t array -> F.t
  (** One node's coded scalar in O(K). *)

  val encode_vectors : t -> F.t array array -> F.t array array
  (** Coordinate-wise coding of K equal-dimension vectors into N coded
      vectors. *)

  val encode_vector_at : t -> node:int -> F.t array array -> F.t array

  val encode_vectors_fast : t -> F.t array array -> F.t array array
  (** Quasi-linear path (fast interpolation + multipoint evaluation) used
      by the centralized worker of Section 6.2. *)

  val eval_at_omegas : t -> P.t -> F.t array
  (** Evaluate a recovered round polynomial at every ω (the decode-side
      inner loop); runs on the byte-packed batch kernels when the field
      has them, with identical operation counts to per-point Horner. *)

  val interpolant_at : t -> F.t array -> F.t -> F.t
  (** Evaluate the degree-(K−1) interpolant of the machine values at any
      point. *)
end
