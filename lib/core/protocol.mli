(** The full networked CSM protocol: consensus phase (Dolev–Strong or
    PBFT) + coded execution phase over the simulator, with client-side
    output delivery (Figure 1 / Section 2.1 of the paper). *)

module Field_intf = Csm_field.Field_intf
module Auth = Csm_crypto.Auth

module Make (F : Field_intf.S) : sig
  module E : module type of Engine.Make (F)
  module W : module type of Wire.Make (F)

  type config = {
    params : Params.t;
    delta : int;
    keyring : Auth.keyring;
    pbft_base_timeout : int;
    gst : int;
    pre_gst_delay : int;
    early_decode : bool;
        (** sync mode: decode at d(K−1)+2b+1 results instead of waiting Δ
            (straggler tolerance) *)
  }

  val default_config : Params.t -> config

  type adversary = {
    byzantine : int -> bool;
    exec_message : node:int -> dst:int -> F.t array -> F.t array option;
        (** per-destination execution-phase message ([None] withholds) *)
    consensus_equivocate : bool;
    client_lie : node:int -> F.t array -> F.t array;
  }

  val passive_adversary : adversary
  val lying_adversary : int list -> adversary
  val equivocating_adversary : int list -> adversary
  (** Correct vectors to even peers, corrupted to odd peers. *)

  val withholding_adversary : int list -> adversary

  type consensus_outcome =
    | Agreed of F.t array array
    | Skipped
    | Disagreement

  val execution_phase :
    ?scope:Csm_metrics.Scope.t ->
    ?latency_override:Csm_sim.Net.latency ->
    ?decode_times:int array ->
    config ->
    E.t ->
    commands:F.t array array ->
    adversary ->
    E.decoded option array
  (** Per-node decode results after the simulated execution phase
      (Byzantine slots are [None]).  [decode_times.(i)] receives the
      simulation time at which honest node [i] decoded.  When tracing is
      enabled the phase emits "exec.phase" with "exec.encode",
      "exec.compute" and "exec.deliver" sub-spans. *)

  val vote : threshold:int -> F.t array list -> F.t array option

  type round_outcome = {
    round : int;
    consensus : consensus_outcome;
    executed : bool;
    honest_agree : bool;
    decoded : E.decoded option;
    delivered : F.t array option array;
  }

  val run_round :
    ?scope:Csm_metrics.Scope.t ->
    ?validate:(string -> bool) ->
    config ->
    E.t ->
    round:int ->
    commands:F.t array array ->
    adversary ->
    round_outcome
  (** [validate] is applied by honest nodes to the agreed wire value
      (the Validity property); rejection skips the round consistently. *)

  val run :
    ?scope:Csm_metrics.Scope.t ->
    ?progress:(round_outcome -> unit) ->
    config ->
    E.t ->
    workload:(int -> F.t array array) ->
    rounds:int ->
    adversary ->
    round_outcome list
  (** [progress] is invoked after each round completes (live tickers /
      logging); it does not affect the protocol. *)

  type submission = { client : int; command : F.t array }

  type delivery = {
    d_round : int;
    d_machine : int;
    d_client : int;  (** -1 for noop slots *)
    d_output : F.t array option;
  }

  type client_run = {
    outcomes : round_outcome list;
    deliveries : delivery list;
    leftover : int;
  }

  val noop_command : int -> F.t array

  val run_with_clients :
    ?scope:Csm_metrics.Scope.t ->
    config ->
    E.t ->
    submissions:(int -> submission list array) ->
    rounds:int ->
    adversary ->
    client_run
  (** Full client layer: per-round per-machine submissions enter shared
      pools; leaders propose pool heads; honest nodes enforce Validity;
      executed commands are dequeued with outputs attributed to their
      submitting clients. *)
end
