(* The coded execution engine (Section 5.2), network-free.

   One round:
     1. every node i forms its coded command X̃ᵢ = Σₖ c_{ik} Xₖ (O(K) per
        coordinate);
     2. node i computes gᵢ = f(S̃ᵢ, X̃ᵢ) ∈ F^{state_dim + output_dim} —
        coordinate j of gᵢ is the evaluation at αᵢ of the univariate
        polynomial h_j(z) = f_j(u_t(z), v_t(z)) of degree ≤ d(K−1);
     3. Byzantine nodes report arbitrary vectors; withheld vectors model
        the partially synchronous setting;
     4. decoding: per coordinate, Reed–Solomon decode the received
        (αᵢ, gᵢ[j]) pairs with dimension d(K−1)+1, then evaluate the
        recovered h_j at ω₁..ω_K and split into next states and outputs;
     5. every node re-encodes its coded state from the decoded next
        states: S̃ᵢ(t+1) = Σₖ c_{ik} Ŝₖ(t+1).

   The engine is deterministic and exposes each phase separately so the
   network protocol driver, the INTERMIX delegation layer, and the
   measurement harnesses can reuse the same verified pieces. *)

module Field_intf = Csm_field.Field_intf
module Scope = Csm_metrics.Scope
module Pool = Csm_parallel.Pool
module Span = Csm_obs.Span

module Make (F : Field_intf.S) = struct
  module Coding = Coding.Make (F)
  module M = Csm_machine.Machine.Make (F)
  module RS = Csm_rs.Reed_solomon.Make (F)

  type t = {
    machine : M.t;
    params : Params.t;
    coding : Coding.t;
    mutable coded_states : F.t array array;  (* n × state_dim *)
    mutable round_index : int;
    mutable rs_ctx : (F.t array * RS.fast_ctx) option;
        (* optimistic-decode precomputation, keyed by the received-point
           set it was prepared for; reused while the same nodes report
           (the common case round after round — Remark 4) *)
  }

  let result_dim t = t.machine.M.state_dim + t.machine.M.output_dim

  let create ~machine ~params ~init =
    let open Params in
    if Array.length init <> params.k then
      invalid_arg "Engine.create: need K initial states";
    if M.degree machine > params.d then
      invalid_arg "Engine.create: machine degree exceeds params.d";
    if not (valid params) then invalid_arg "Engine.create: infeasible params";
    let coding = Coding.create ~n:params.n ~k:params.k in
    {
      machine;
      params;
      coding;
      coded_states = Coding.encode_vectors coding init;
      round_index = 0;
      rs_ctx = None;
    }

  let coded_state t ~node = t.coded_states.(node)

  (* Step 1 (per node). *)
  let node_encode_command ?(scope = Scope.null) t ~node ~commands =
    Scope.node scope node (fun () ->
        Coding.encode_vector_at t.coding ~node commands)

  (* Step 2 (per node): gᵢ = f(S̃ᵢ, X̃ᵢ), next-state part first. *)
  let node_compute ?(scope = Scope.null) t ~node ~coded_command =
    Scope.node scope node (fun () ->
        let s', y =
          M.step t.machine ~state:t.coded_states.(node) ~input:coded_command
        in
        Array.append s' y)

  type decoded = {
    next_states : F.t array array;  (* k × state_dim *)
    outputs : F.t array array;  (* k × output_dim *)
    error_nodes : int list;  (* nodes whose reported results were wrong *)
  }

  (* Suspected-Byzantine positions in a received-result list, from the
     accumulated csm_node_suspicion gauge (error locations attributed by
     earlier decodes).  Feeds the optimistic decoder's erasure-assisted
     last resort; empty when metrics are off — suspicion only ever
     *adds* decoding power beyond the plain error radius, so honest
     results are identical either way. *)
  let suspect_positions (recv : (int * F.t array) array) =
    let module Metric = Csm_obs.Metric in
    let module Tel = Csm_obs.Telemetry in
    if not (Metric.enabled ()) then []
    else begin
      let sus = ref [] in
      Array.iteri
        (fun idx (node, _) ->
          if Metric.gauge_value (Tel.node_suspicion ~node) > 0.0 then
            sus := idx :: !sus)
        recv;
      List.rev !sus
    end

  (* Step 4: decode from the received results ((node, vector) pairs;
     missing nodes model withholding).  Attributed to [role].

     The algorithm defaults to [RS.default_algorithm] (CSM_RS_FASTPATH):
     the optimistic modes share one [RS.fast_ctx] across all coordinates
     and rounds, cached on the engine and rebuilt only when the set of
     reporting nodes changes.

     The [dim] coordinates are independent Reed–Solomon instances, so
     they decode across the domain pool (chunk 1: one decode is the
     grain).  Every coordinate writes disjoint slots of [next_states] /
     [outputs] and its own error list, merged sequentially afterwards —
     the decoded record is bit-identical for any domain count.  All
     coordinates are decoded even after one fails, keeping the work (and
     the operation counts) independent of scheduling. *)
  let decode_results ?(scope = Scope.null) ?(role = "decoder") ?algorithm t
      (received : (int * F.t array) list) : decoded option =
    let algorithm =
      match algorithm with Some a -> a | None -> RS.default_algorithm ()
    in
    Span.with_ ~ops:scope.Scope.ops ~name:"engine.decode" (fun () ->
    scope.Scope.run ~role (fun () ->
        let dim = result_dim t in
        let kdim = Params.code_dimension ~k:t.params.Params.k ~d:t.params.Params.d in
        let sd = t.machine.M.state_dim in
        let recv = Array.of_list received in
        let xs =
          Array.map (fun (node, _) -> t.coding.Coding.alphas.(node)) recv
        in
        let xs_equal a b =
          Array.length a = Array.length b
          && (let ok = ref true in
              Array.iteri
                (fun i x -> if not (F.equal x b.(i)) then ok := false)
                a;
              !ok)
        in
        let ctx =
          match algorithm with
          | RS.Optimistic | RS.Optimistic_fallback_only
            when Array.length xs >= kdim -> (
            match t.rs_ctx with
            | Some (pxs, c) when xs_equal pxs xs -> Some c
            | _ ->
              let c = RS.prepare_fast ~k:kdim xs in
              t.rs_ctx <- Some (xs, c);
              Some c)
          | _ -> None
        in
        let suspects = suspect_positions recv in
        let next_states =
          Array.init t.params.Params.k (fun _ -> Array.make sd F.zero)
        in
        let outputs =
          Array.init t.params.Params.k (fun _ ->
              Array.make t.machine.M.output_dim F.zero)
        in
        let coord_ok = Array.make dim true in
        let coord_errors = Array.make dim [] in
        Pool.parallel_for ~chunk:1 dim (fun j ->
            let pairs =
              Array.init (Array.length recv) (fun i ->
                  (xs.(i), (snd recv.(i)).(j)))
            in
            match RS.decode ~algorithm ?ctx ~suspects ~k:kdim pairs with
            | None -> coord_ok.(j) <- false
            | Some d ->
              (* error positions (indices into [received]) *)
              coord_errors.(j) <- d.RS.errors;
              (* evaluate h_j at each ω *)
              Array.iteri
                (fun k v ->
                  if j < sd then next_states.(k).(j) <- v
                  else outputs.(k).(j - sd) <- v)
                (Coding.eval_at_omegas t.coding d.RS.poly));
        if Array.for_all (fun x -> x) coord_ok then begin
          let errors = ref [] in
          Array.iter
            (fun idxs ->
              List.iter
                (fun idx ->
                  let node, _ = recv.(idx) in
                  if not (List.mem node !errors) then errors := node :: !errors)
                idxs)
            coord_errors;
          Some
            { next_states; outputs; error_nodes = List.sort Int.compare !errors }
        end
        else None))

  (* Step 5 (per node): re-encode the coded state. *)
  let node_update_state ?(scope = Scope.null) t ~node ~next_states =
    Scope.node scope node (fun () ->
        t.coded_states.(node) <-
          Coding.encode_vector_at t.coding ~node next_states)

  type corruption = node:int -> F.t array -> F.t array

  let default_corruption : corruption =
   fun ~node:_ g -> Array.map (fun v -> F.add v F.one) g

  type round_report = {
    decoded : decoded option;  (* None = decoding failed (too many faults) *)
    computed : F.t array array;  (* raw gᵢ as reported (post-corruption) *)
  }

  (* A full decentralized round.  [byzantine] nodes report corrupted
     vectors; [withheld] nodes report nothing (partial sync).  Honest
     decoding is attributed to [decode_role] (callers measuring per-node
     decode cost run it once per node; honest nodes reconstruct identical
     polynomials).  On success the engine advances every node's coded
     state (Byzantine nodes' storage doesn't matter: their future lies
     are arbitrary anyway). *)
  let round ?(scope = Scope.null) ?algorithm
      ?(corruption = default_corruption) ?(withheld = fun _ -> false)
      ?(decode_role = "decoder") t ~commands ~byzantine () : round_report =
    let n = t.params.Params.n in
    if Array.length commands <> t.params.Params.k then
      invalid_arg "Engine.round: need K commands";
    Span.with_ ~ops:scope.Scope.ops ~name:"engine.round" (fun () ->
    (* steps 1–2 at every node: the N per-node encodes (and then the N
       computes) are independent, so each phase fans out across the
       domain pool under its own span.  The [corruption] callback is
       user code (it may be stateful, e.g. an RNG), so it is applied
       sequentially afterwards in node order — exactly the schedule the
       sequential engine used. *)
    let coded_commands =
      Span.with_ ~ops:scope.Scope.ops ~name:"engine.encode" (fun () ->
          Pool.parallel_init n (fun i ->
              node_encode_command ~scope t ~node:i ~commands))
    in
    let computed =
      Span.with_ ~ops:scope.Scope.ops ~name:"engine.compute" (fun () ->
          Pool.parallel_init n (fun i ->
              node_compute ~scope t ~node:i
                ~coded_command:coded_commands.(i)))
    in
    Array.iteri
      (fun i g -> if byzantine i then computed.(i) <- corruption ~node:i g)
      computed;
    (* step 3–4: collect non-withheld results, decode *)
    let received =
      List.filter_map
        (fun i -> if withheld i then None else Some (i, computed.(i)))
        (List.init n (fun i -> i))
    in
    let decoded = decode_results ~scope ~role:decode_role ?algorithm t received in
    (* step 5: per-node re-encodes are independent (each writes its own
       coded-state slot) *)
    (match decoded with
    | Some d ->
      Span.with_ ~ops:scope.Scope.ops ~name:"engine.reencode" (fun () ->
          Pool.parallel_for n (fun i ->
              node_update_state ~scope t ~node:i ~next_states:d.next_states));
      t.round_index <- t.round_index + 1
    | None -> ());
    { decoded; computed })

  (* Ground-truth check used by tests: the coded states must remain the
     coordinate-wise Lagrange encoding of the reference states. *)
  let consistent_with t ~states =
    let expect = Coding.encode_vectors t.coding states in
    let eq a b =
      Array.length a = Array.length b
      && (let r = ref true in
          Array.iteri (fun i x -> if not (F.equal x b.(i)) then r := false) a;
          !r)
    in
    let all = ref true in
    Array.iteri
      (fun i v -> if not (eq v t.coded_states.(i)) then all := false)
      expect;
    !all

  (* Storage accounting (field elements per node): a single coded state. *)
  let storage_per_node t = t.machine.M.state_dim

  (* Minimum number of results needed to start decoding a round while
     still tolerating b lies among them: m with 2b + 1 <= m - d(K-1).
     Any results beyond this are straggler slack — a node may decode as
     soon as [min_results] arrive (the coded-computing latency win). *)
  let min_results t =
    Params.composite_degree ~k:t.params.Params.k ~d:t.params.Params.d
    + (2 * t.params.Params.b) + 1

  (* Node recovery / regeneration: a node that lost its coded state
     rebuilds it from other nodes' coded states.  The peers' states
     S̃ⱼ = u(αⱼ) are evaluations of the degree-(K−1) state polynomial, so
     they form a Reed-Solomon codeword of dimension K: with m reports of
     which up to b are lies, decoding needs 2b + 1 <= m - (K-1).  The
     recovered polynomial is evaluated at the joining node's point. *)
  let recover_coded_state t ~node ~(reports : (int * F.t array) list) =
    let sd = t.machine.M.state_dim in
    let kdim = t.params.Params.k in
    let out = Array.make sd F.zero in
    let coord_ok = Array.make sd true in
    (* per-coordinate decodes are independent RS instances, same shape
       as [decode_results] *)
    Pool.parallel_for ~chunk:1 sd (fun j ->
        let pairs =
          Array.of_list
            (List.map
               (fun (peer, s) -> (t.coding.Coding.alphas.(peer), s.(j)))
               reports)
        in
        match RS.decode ~k:kdim pairs with
        | None -> coord_ok.(j) <- false
        | Some d ->
          out.(j) <- RS.P.eval d.RS.poly t.coding.Coding.alphas.(node));
    if Array.for_all (fun x -> x) coord_ok then Some out else None

  let recover_node t ~node ~reports =
    match recover_coded_state t ~node ~reports with
    | None -> false
    | Some s ->
      t.coded_states.(node) <- s;
      true
end
