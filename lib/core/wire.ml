(* Wire serialization of field-element vectors.

   Two formats, both deterministic:

   - a decimal string encoding, used as the consensus value format
     (consensus protocols agree on byte strings, and signed values are
     compared as strings, so the encoding must be canonical: exactly
     one accepted spelling per vector);
   - a fixed-width binary encoding (8-byte big-endian per element),
     used as [Csm_wire.Frame] payloads by the real transports and by
     the simulator's byte accounting.

   Every decoder is total and exact: inputs with trailing garbage,
   non-canonical digits, truncated or extended bodies yield [None] and
   never raise — a Byzantine peer must not be able to crash a decoder
   or sneak two spellings of the same value past a string equality
   check. *)

module Field_intf = Csm_field.Field_intf

module Make (F : Field_intf.S) = struct
  (* ----- canonical decimal strings (consensus values) ----- *)

  let encode_vector (v : F.t array) =
    String.concat "," (Array.to_list (Array.map (fun x -> string_of_int (F.to_int x)) v))

  (* Strict non-negative decimal: digits only, no leading zeros (except
     "0" itself), at most 18 digits (< 2⁶⁰, comfortably inside native
     int).  [int_of_string]'s leniency (underscores, 0x/0o/0b prefixes,
     leading zeros) would accept many spellings of one value — trailing
     garbage like "3_" decodes as 3 — which breaks the canonicity the
     consensus layer relies on. *)
  let parse_nat s =
    let len = String.length s in
    if len = 0 || len > 18 then None
    else if len > 1 && s.[0] = '0' then None
    else
      let rec go i acc =
        if i = len then Some acc
        else
          match s.[i] with
          | '0' .. '9' as c -> go (i + 1) ((acc * 10) + (Char.code c - 48))
          | _ -> None
      in
      go 0 0

  let decode_vector ~dim s =
    if s = "" && dim = 0 then Some [||]
    else
      let parts = String.split_on_char ',' s in
      if List.length parts <> dim then None
      else
        let decoded = List.filter_map parse_nat parts in
        if List.length decoded <> dim then None
        else Some (Array.of_list (List.map F.of_int decoded))

  (* K command vectors, ';'-separated. *)
  let encode_commands (commands : F.t array array) =
    String.concat ";" (Array.to_list (Array.map encode_vector commands))

  let decode_commands ~k ~dim s =
    let parts = String.split_on_char ';' s in
    if List.length parts <> k then None
    else
      let decoded = List.filter_map (decode_vector ~dim) parts in
      if List.length decoded = k then Some (Array.of_list decoded) else None

  (* ----- fixed-width binary (transport frame payloads) ----- *)

  let elt_bytes = 8
  let vector_bytes ~dim = dim * elt_bytes
  let commands_bytes ~k ~dim = k * vector_bytes ~dim

  let encode_vector_bin (v : F.t array) =
    let b = Bytes.create (vector_bytes ~dim:(Array.length v)) in
    Array.iteri
      (fun i x -> Bytes.set_int64_be b (i * elt_bytes) (Int64.of_int (F.to_int x)))
      v;
    Bytes.unsafe_to_string b

  (* Read one element at [off]; negative values and values beyond
     [max_int] (i.e. not representable in a native int) are rejected. *)
  let read_elt s off =
    let x = String.get_int64_be s off in
    if Int64.compare x 0L < 0 || Int64.compare x (Int64.of_int max_int) > 0
    then None
    else Some (F.of_int (Int64.to_int x))

  let decode_vector_bin_at s ~pos ~dim =
    let ok = ref true in
    let v =
      Array.init dim (fun i ->
          match read_elt s (pos + (i * elt_bytes)) with
          | Some x -> x
          | None ->
            ok := false;
            F.zero)
    in
    if !ok then Some v else None

  let decode_vector_bin ~dim s =
    if dim < 0 || String.length s <> vector_bytes ~dim then None
    else decode_vector_bin_at s ~pos:0 ~dim

  let encode_commands_bin (commands : F.t array array) =
    String.concat "" (Array.to_list (Array.map encode_vector_bin commands))

  let decode_commands_bin ~k ~dim s =
    if k < 0 || dim < 0 || String.length s <> commands_bytes ~k ~dim then None
    else begin
      (* total: a single bad row aborts the whole decode with [None]
         without ever forcing an option (R5) *)
      let rows = Array.make k [||] in
      let ok = ref true in
      for i = 0 to k - 1 do
        match decode_vector_bin_at s ~pos:(i * vector_bytes ~dim) ~dim with
        | Some row -> rows.(i) <- row
        | None -> ok := false
      done;
      if !ok then Some rows else None
    end

  (* Self-describing matrix (rows of possibly different widths): u32
     row count, then per row a u32 width followed by the elements.
     Used for the Output frame payload (K output rows + K next-state
     rows).  Caps bound the allocation a corrupted length claim can
     force before the exact-length check. *)

  let max_matrix_rows = 1 lsl 16
  let max_matrix_dim = 1 lsl 20

  let encode_matrix_bin (rows : F.t array array) =
    let buf = Buffer.create 64 in
    let u32 v =
      let b = Bytes.create 4 in
      Bytes.set_int32_be b 0 (Int32.of_int v);
      Buffer.add_bytes buf b
    in
    u32 (Array.length rows);
    Array.iter
      (fun row ->
        u32 (Array.length row);
        Buffer.add_string buf (encode_vector_bin row))
      rows;
    Buffer.contents buf

  let decode_matrix_bin s =
    let len = String.length s in
    let u32 pos =
      if pos + 4 > len then None
      else
        let v = Int32.to_int (String.get_int32_be s pos) in
        if v < 0 then None else Some v
    in
    match u32 0 with
    | None -> None
    | Some rows when rows > max_matrix_rows -> None
    | Some rows ->
      let out = Array.make rows [||] in
      let rec go i pos =
        if i = rows then if pos = len then Some out else None
        else
          match u32 pos with
          | None -> None
          | Some dim when dim > max_matrix_dim -> None
          | Some dim ->
            let body = pos + 4 in
            if body + vector_bytes ~dim > len then None
            else (
              match decode_vector_bin_at s ~pos:body ~dim with
              | None -> None
              | Some row ->
                out.(i) <- row;
                go (i + 1) (body + vector_bytes ~dim))
      in
      go 0 4
end
