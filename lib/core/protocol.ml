(* The full networked CSM protocol (Figure 1): consensus phase + coded
   execution phase over the discrete-event simulator, with client-side
   output delivery.

   Synchronous rounds:
     1. consensus on the round's command vector via Dolev–Strong signed
        broadcast, leader rotating per round (a Byzantine leader can at
        worst force ⊥, skipping its round);
     2. every node computes gᵢ on its coded state and broadcasts it;
        Byzantine nodes may send different corrupted vectors to
        different peers (equivocation) or withhold;
     3. after Δ each node decodes the N results (up to b wrong) and
        sends each machine's output to the submitting client;
     4. a client accepts an output on b+1 matching responses.

   Partially synchronous rounds use PBFT for consensus, and a node
   starts decoding as soon as N − b results have arrived (it cannot
   distinguish a withholding fault from a slow link). *)

module Field_intf = Csm_field.Field_intf
module Net = Csm_sim.Net
module Auth = Csm_crypto.Auth
module DS = Csm_consensus.Dolev_strong
module Pbft = Csm_consensus.Pbft
module Pool = Csm_parallel.Pool
module Scope = Csm_metrics.Scope
module Span = Csm_obs.Span
module Metric = Csm_obs.Metric
module Tel = Csm_obs.Telemetry
module Event = Csm_obs.Event

module Make (F : Field_intf.S) = struct
  module E = Engine.Make (F)
  module W = Wire.Make (F)

  type config = {
    params : Params.t;
    delta : int;  (* synchronous bound *)
    keyring : Auth.keyring;
    pbft_base_timeout : int;
    gst : int;  (* partial sync: global stabilization time *)
    pre_gst_delay : int;  (* adversarial delay before GST *)
    early_decode : bool;
        (* sync mode: decode as soon as d(K-1)+2b+1 results arrive
           instead of waiting the full Δ — the straggler-tolerance win
           of coded computing *)
  }

  let default_config params =
    {
      params;
      delta = 10;
      keyring = Auth.create_keyring (Csm_rng.create 0xC0DE) ~n:params.Params.n;
      pbft_base_timeout = 2000;
      gst = 0;
      pre_gst_delay = 0;
      early_decode = false;
    }

  (* What a Byzantine node sends to [dst] in the execution phase, given
     the correct result; [None] withholds.  Equivocation: the function
     may depend on [dst]. *)
  type adversary = {
    byzantine : int -> bool;
    exec_message : node:int -> dst:int -> F.t array -> F.t array option;
    consensus_equivocate : bool;  (* Byzantine leaders equivocate *)
    client_lie : node:int -> F.t array -> F.t array;
        (* corrupted per-machine output sent to clients *)
  }

  let passive_adversary =
    {
      byzantine = (fun _ -> false);
      exec_message = (fun ~node:_ ~dst:_ g -> Some g);
      consensus_equivocate = false;
      client_lie = (fun ~node:_ y -> y);
    }

  (* The default active adversary: [liars] corrupt uniformly (add one),
     equivocate in consensus when leading, and lie to clients. *)
  let lying_adversary liars =
    {
      byzantine = (fun i -> List.mem i liars);
      exec_message =
        (fun ~node:_ ~dst:_ g -> Some (Array.map (fun v -> F.add v F.one) g));
      consensus_equivocate = true;
      client_lie = (fun ~node:_ y -> Array.map (fun v -> F.add v F.one) y);
    }

  (* An equivocating execution-phase adversary: sends the correct vector
     to even-numbered peers and a corrupted one to odd-numbered peers. *)
  let equivocating_adversary liars =
    {
      byzantine = (fun i -> List.mem i liars);
      exec_message =
        (fun ~node:_ ~dst g ->
          if dst mod 2 = 0 then Some g
          else Some (Array.map (fun v -> F.add v F.one) g));
      consensus_equivocate = true;
      client_lie = (fun ~node:_ y -> Array.map (fun v -> F.add v F.one) y);
    }

  (* A withholding adversary (relevant for partial synchrony). *)
  let withholding_adversary liars =
    {
      byzantine = (fun i -> List.mem i liars);
      exec_message = (fun ~node:_ ~dst:_ _ -> None);
      consensus_equivocate = false;
      client_lie = (fun ~node:_ y -> Array.map (fun v -> F.add v F.one) y);
    }

  (* ----- Consensus phase ----- *)

  type consensus_outcome =
    | Agreed of F.t array array
    | Skipped  (* honest nodes agreed on ⊥ *)
    | Disagreement  (* protocol violation: honest nodes split *)

  let consensus_sync ?(validate = fun _ -> true) cfg ~round ~leader ~commands
      adv =
    let p = cfg.params in
    let ds_cfg =
      {
        DS.n = p.Params.n;
        f = p.Params.b;
        leader;
        delta = cfg.delta;
        instance = Printf.sprintf "csm-round-%d" round;
        keyring = cfg.keyring;
      }
    in
    let proposal = W.encode_commands commands in
    let byz i =
      if not (adv.byzantine i) then None
      else if i = leader && adv.consensus_equivocate then
        (* propose two different command vectors *)
        let alt =
          Array.map (Array.map (fun v -> F.add v F.one)) commands
        in
        Some
          (DS.equivocating_leader ds_cfg ~me:i ~value_a:proposal
             ~value_b:(W.encode_commands alt))
      else Some Net.silent
    in
    let { DS.decisions; _ } = DS.run ds_cfg ~proposal ~byzantine:byz () in
    let honest =
      List.filter_map
        (fun i -> if adv.byzantine i then None else Some decisions.(i))
        (List.init p.Params.n (fun i -> i))
    in
    match honest with
    | [] -> Skipped
    | first :: rest ->
      if not (List.for_all (DS.decision_eq first) rest) then Disagreement
      else begin
        match first with
        | DS.Bot -> Skipped
        | DS.Decided s ->
          (* Validity (Section 2.1): honest nodes accept only proposals
             drawn from commands actually submitted by clients; a
             fabricated proposal is consistently rejected and the round
             skipped. *)
          if not (validate s) then Skipped
          else begin
            match
              W.decode_commands ~k:p.Params.k
                ~dim:
                  (match commands with
                  | [||] -> 0
                  | _ -> Array.length commands.(0))
                s
            with
            | Some cmds -> Agreed cmds
            | None -> Skipped
          end
      end

  let consensus_partial_sync ?(validate = fun _ -> true) cfg ~round ~commands
      adv =
    let p = cfg.params in
    let pbft_cfg =
      {
        Pbft.n = p.Params.n;
        f = p.Params.b;
        base_timeout = cfg.pbft_base_timeout;
        instance = Printf.sprintf "csm-round-%d" round;
        keyring = cfg.keyring;
      }
    in
    let proposal = W.encode_commands commands in
    let latency =
      Net.partial_sync ~gst:cfg.gst ~delta:cfg.delta
        ~pre:(fun ~src:_ ~dst:_ ~now:_ -> cfg.pre_gst_delay)
    in
    let { Pbft.decisions; _ } =
      Pbft.run pbft_cfg
        ~proposals:(fun _ -> Some proposal)
        ~byzantine:(fun i -> if adv.byzantine i then Some Net.silent else None)
        ~latency ~max_time:5_000_000 ()
    in
    let honest =
      List.filter_map
        (fun i -> if adv.byzantine i then None else decisions.(i))
        (List.init p.Params.n (fun i -> i))
    in
    match honest with
    | [] -> Skipped
    | first :: rest ->
      if not (List.for_all (fun d -> String.equal d first) rest) then
        Disagreement
      else if not (validate first) then Skipped
      else begin
        match
          W.decode_commands ~k:p.Params.k
            ~dim:
              (match commands with
              | [||] -> 0
              | _ -> Array.length commands.(0))
            first
        with
        | Some cmds -> Agreed cmds
        | None -> Skipped
      end

  (* ----- Execution phase ----- *)

  type exec_msg = Result of F.t array

  (* Run the execution phase on the simulator.  Returns per-honest-node
     decoded results (which must agree) and the raw per-node messages the
     clients would receive.  Optionally records each honest node's decode
     completion time into [decode_times]. *)
  let execution_phase ?(scope = Scope.null)
      ?(latency_override : Net.latency option)
      ?(decode_times : int array option) cfg (engine : E.t) ~commands adv =
    Span.with_ ~ops:scope.Scope.ops ~name:"exec.phase" (fun () ->
    let p = cfg.params in
    let n = p.Params.n and b = p.Params.b in
    let decoded : E.decoded option array = Array.make n None in
    let decode_attempted = Array.make n false in
    let sync = p.Params.network = Params.Sync in
    let threshold =
      if not sync then n - b
      else if cfg.early_decode then E.min_results engine
      else n
    in
    (* Steps 1–2 of every node (encode the agreed commands, run the step
       function on the coded state) are independent of the network
       schedule, so compute them up front across the domain pool; the
       simulated init hooks then just read their slot.  Honest and
       Byzantine nodes compute the same gᵢ — the adversary corrupts
       per-destination messages, not the computation. *)
    let coded_commands =
      Span.with_ ~ops:scope.Scope.ops ~name:"exec.encode" (fun () ->
          Pool.parallel_init n (fun i ->
              E.node_encode_command ~scope engine ~node:i ~commands))
    in
    let computed =
      Span.with_ ~ops:scope.Scope.ops ~name:"exec.compute" (fun () ->
          Pool.parallel_init n (fun i ->
              E.node_compute ~scope engine ~node:i
                ~coded_command:coded_commands.(i)))
    in
    let behaviors =
      Array.init n (fun i ->
          let received : (int * F.t array) list ref = ref [] in
          let my_g = ref [||] in
          let try_decode now =
            if not decode_attempted.(i) then begin
              decode_attempted.(i) <- true;
              (* algorithm defaults to RS.default_algorithm (), so the
                 CSM_RS_FASTPATH optimistic fast path governs the
                 simulated nodes exactly as it does the socket runtime *)
              decoded.(i) <- E.decode_results ~scope engine !received;
              match decode_times with
              | Some times -> times.(i) <- now
              | None -> ()
            end
          in
          if adv.byzantine i then
            {
              Net.init =
                (fun api ->
                  let g = computed.(i) in
                  for dst = 0 to n - 1 do
                    if dst <> i then
                      match adv.exec_message ~node:i ~dst g with
                      | Some g' -> api.Net.send dst (Result g')
                      | None -> ()
                  done);
              on_message = (fun _ ~sender:_ _ -> ());
              on_timer = (fun _ _ -> ());
            }
          else
            {
              Net.init =
                (fun api ->
                  let g = computed.(i) in
                  my_g := g;
                  received := [ (i, g) ];
                  api.Net.broadcast (Result g);
                  if sync then
                    api.Net.set_timer ~delay:(cfg.delta + 1) ~tag:0);
              on_message =
                (fun api ~sender (Result g) ->
                  if not (List.mem_assoc sender !received) then begin
                    received := (sender, g) :: !received;
                    if
                      ((not sync) || cfg.early_decode)
                      && List.length !received >= threshold
                    then try_decode (api.Net.now ())
                  end);
              on_timer =
                (fun api tag -> if tag = 0 then try_decode (api.Net.now ()));
            })
    in
    let latency =
      match latency_override with
      | Some l -> l
      | None ->
        if sync then Net.sync ~delta:cfg.delta
        else
          Net.partial_sync ~gst:cfg.gst ~delta:cfg.delta
            ~pre:(fun ~src:_ ~dst:_ ~now:_ -> cfg.pre_gst_delay)
    in
    let stats =
      Span.with_ ~ops:scope.Scope.ops ~name:"exec.deliver" (fun () ->
          Net.run ~latency
            (* real wire bytes: a Result frame carrying the binary
               vector encoding of gᵢ — the socket transport sends
               exactly this many bytes *)
            ~size:(fun (Result g) ->
              Csm_wire.Frame.encoded_size
                ~payload_bytes:(W.vector_bytes ~dim:(Array.length g)))
            behaviors)
    in
    Tel.record_per_node ~layer:"execution" ~sent:stats.Net.sent_by
      ~received:stats.Net.received_by ~bytes_sent:stats.Net.bytes_sent_by
      ~bytes_received:stats.Net.bytes_received_by;
    decoded)

  (* Client vote: first value with ≥ threshold matches. *)
  let vote ~threshold responses =
    let eq a b =
      Array.length a = Array.length b
      && (let ok = ref true in
          Array.iteri (fun i x -> if not (F.equal x b.(i)) then ok := false) a;
          !ok)
    in
    let rec go groups = function
      | [] -> None
      | r :: rest -> (
        let groups =
          match List.find_opt (fun (v, _) -> eq v r) groups with
          | Some (v, c) ->
            (v, c + 1) :: List.filter (fun (v', _) -> not (eq v' v)) groups
          | None -> (r, 1) :: groups
        in
        match List.find_opt (fun (_, c) -> c >= threshold) groups with
        | Some (v, _) -> Some v
        | None -> go groups rest)
    in
    go [] responses

  type round_outcome = {
    round : int;
    consensus : consensus_outcome;
    executed : bool;  (* decoding succeeded at the honest nodes *)
    honest_agree : bool;  (* all honest decoders produced identical results *)
    decoded : E.decoded option;
    delivered : F.t array option array;  (* per-machine client decisions *)
  }

  (* Round-level health signals: outcome counters, the per-node
     suspicion gauge fed by the decoder's error locations (counted once
     per round, from the honest nodes' agreed decode — not once per
     decoder, which would multiply by n − b), and warn/error events for
     anomalous rounds. *)
  let record_round_outcome (o : round_outcome) =
    if Metric.enabled () then begin
      let result =
        match o.consensus with
        | Disagreement -> "disagreement"
        | Skipped -> "skipped"
        | Agreed _ -> if o.executed then "executed" else "decode_failed"
      in
      Metric.inc (Tel.rounds_total ~result);
      match o.decoded with
      | Some d ->
        List.iter
          (fun node ->
            Metric.inc (Tel.decode_errors ~node);
            Metric.add (Tel.node_suspicion ~node) 1.0)
          d.E.error_nodes
      | None -> ()
    end;
    let round_attr = ("round", string_of_int o.round) in
    (match o.consensus with
    | Disagreement ->
      Event.emit ~attrs:[ round_attr ] Event.Error "consensus.disagreement"
    | Skipped -> Event.emit ~attrs:[ round_attr ] Event.Warn "round.skipped"
    | Agreed _ ->
      if not o.executed then
        Event.emit ~attrs:[ round_attr ] Event.Error "round.decode_failed"
      else begin
        if not o.honest_agree then
          Event.emit ~attrs:[ round_attr ] Event.Error "round.honest_split";
        match o.decoded with
        | Some d when d.E.error_nodes <> [] ->
          Event.emit
            ~attrs:
              [
                round_attr;
                ( "nodes",
                  String.concat ","
                    (List.map string_of_int d.E.error_nodes) );
              ]
            Event.Warn "decode.errors_corrected"
        | _ -> Event.emit ~attrs:[ round_attr ] Event.Debug "round.executed"
      end)

  let run_round ?(scope = Scope.null) ?validate cfg (engine : E.t) ~round
      ~commands adv : round_outcome =
    let outcome =
      Metric.time Tel.round_latency (fun () ->
    Span.with_ ~ops:scope.Scope.ops
      ~attrs:[ ("round", string_of_int round) ]
      ~name:"protocol.round"
      (fun () ->
    let p = cfg.params in
    let n = p.Params.n and b = p.Params.b in
    let leader = round mod n in
    let consensus =
      match p.Params.network with
      | Params.Sync ->
        Span.with_ ~name:"consensus.dolev_strong" (fun () ->
            consensus_sync ?validate cfg ~round ~leader ~commands adv)
      | Params.Partial_sync ->
        Span.with_ ~name:"consensus.pbft" (fun () ->
            consensus_partial_sync ?validate cfg ~round ~commands adv)
    in
    match consensus with
    | Skipped | Disagreement ->
      {
        round;
        consensus;
        executed = false;
        honest_agree = true;
        decoded = None;
        delivered = Array.make p.Params.k None;
      }
    | Agreed commands ->
      let per_node = execution_phase ~scope cfg engine ~commands adv in
      (* all honest nodes must decode identically *)
      let honest_results =
        List.filter_map
          (fun i -> if adv.byzantine i then None else per_node.(i))
          (List.init n (fun i -> i))
      in
      let equal_decoded (a : E.decoded) (b : E.decoded) =
        let veq x y =
          Array.for_all2 (fun u v -> F.equal u v) x y
        in
        Array.for_all2 veq a.E.next_states b.E.next_states
        && Array.for_all2 veq a.E.outputs b.E.outputs
      in
      let honest_agree =
        match honest_results with
        | [] -> true
        | first :: rest -> List.for_all (equal_decoded first) rest
      in
      let decoded =
        match honest_results with first :: _ -> Some first | [] -> None
      in
      (match decoded with
      | Some d ->
        (* every node updates its coded state from the decoded states *)
        Span.with_ ~ops:scope.Scope.ops ~name:"exec.reencode" (fun () ->
            for i = 0 to n - 1 do
              E.node_update_state ~scope engine ~node:i
                ~next_states:d.E.next_states
            done);
        engine.E.round_index <- engine.E.round_index + 1
      | None -> ());
      (* client delivery: each node sends Ŷ_k; byz nodes lie *)
      let delivered =
        match decoded with
        | None -> Array.make p.Params.k None
        | Some d ->
          Array.init p.Params.k (fun m ->
              let responses =
                List.map
                  (fun i ->
                    if adv.byzantine i then
                      adv.client_lie ~node:i d.E.outputs.(m)
                    else d.E.outputs.(m))
                  (List.init n (fun i -> i))
              in
              vote ~threshold:(b + 1) responses)
      in
      {
        round;
        consensus;
        executed = decoded <> None;
        honest_agree;
        decoded;
        delivered;
      }))
    in
    record_round_outcome outcome;
    outcome

  let run ?(scope = Scope.null) ?progress cfg engine ~workload ~rounds adv =
    List.init rounds (fun r ->
        let commands = workload r in
        let outcome = run_round ~scope cfg engine ~round:r ~commands adv in
        (match progress with Some f -> f outcome | None -> ());
        outcome)

  (* ----- Client layer: submission pools, validity, liveness -----

     Clients broadcast their commands to every node (Section 2.1), so
     all honest nodes share a consistent view of the per-machine command
     pools.  Each round the leader proposes the pool heads (a zero
     "noop" for empty pools); honest nodes validate the agreed proposal
     against the pool — the Validity property — and executed commands
     are dequeued and their outputs attributed to the submitting
     client. *)

  type submission = { client : int; command : F.t array }

  type delivery = {
    d_round : int;
    d_machine : int;
    d_client : int;  (* -1 for noop rounds *)
    d_output : F.t array option;  (* the voted client decision *)
  }

  type client_run = {
    outcomes : round_outcome list;
    deliveries : delivery list;
    leftover : int;  (* submissions still queued at the end *)
  }

  let noop_command dim = Array.make dim F.zero

  let run_with_clients ?(scope = Scope.null) cfg (engine : E.t)
      ~(submissions : int -> submission list array) ~rounds adv : client_run =
    let p = cfg.params in
    let k = p.Params.k in
    let dim = engine.E.machine.E.M.input_dim in
    let pools : submission Queue.t array = Array.init k (fun _ -> Queue.create ()) in
    let deliveries = ref [] in
    let outcomes = ref [] in
    for r = 0 to rounds - 1 do
      (* clients submit (broadcast) this round's commands *)
      let incoming = submissions r in
      if Array.length incoming <> k then
        invalid_arg "run_with_clients: submissions arity";
      Array.iteri
        (fun m subs -> List.iter (fun s -> Queue.push s pools.(m)) subs)
        incoming;
      (* the proposal: pool heads (noop for empty pools) *)
      let heads =
        Array.init k (fun m ->
            if Queue.is_empty pools.(m) then None else Some (Queue.peek pools.(m)))
      in
      let commands =
        Array.map
          (function Some s -> s.command | None -> noop_command dim)
          heads
      in
      (* validity: the agreed value must be exactly the pool heads *)
      let expected = W.encode_commands commands in
      let validate s = String.equal s expected in
      let outcome = run_round ~scope ~validate cfg engine ~round:r ~commands adv in
      outcomes := outcome :: !outcomes;
      if outcome.executed then begin
        (* dequeue executed commands, attribute outputs to clients *)
        Array.iteri
          (fun m head ->
            let client =
              match head with
              | Some s ->
                ignore (Queue.pop pools.(m));
                s.client
              | None -> -1
            in
            deliveries :=
              {
                d_round = r;
                d_machine = m;
                d_client = client;
                d_output = outcome.delivered.(m);
              }
              :: !deliveries)
          heads
      end
    done;
    {
      outcomes = List.rev !outcomes;
      deliveries = List.rev !deliveries;
      leftover = Array.fold_left (fun acc q -> acc + Queue.length q) 0 pools;
    }
end
