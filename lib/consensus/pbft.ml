(* PBFT single-slot consensus ([10, 11]) for the partially synchronous
   setting: N = 3f + 1 nodes, leader of view v is v mod N.

   Message flow (happy path):
     leader:   PrePrepare(v, value)
     replicas: Prepare(v, digest)        — on a valid pre-prepare
     replicas: Commit(v, digest)         — on 2f+1 matching prepares
     decide                              — on 2f+1 matching commits

   A replica that enters a view arms a timeout (doubling per view); if
   it expires without a decision the replica broadcasts
   ViewChange(v+1, prepared-cert option) and moves to v+1.  On 2f+1
   view-change messages for v', the leader of v' broadcasts
   NewView(v', value', justification) where value' is the value of the
   highest prepared certificate it has seen (or its own proposal when
   none) — preserving safety across views.  Replicas treat a valid
   NewView as the PrePrepare of v'.

   View-change signatures cover only the view number (not the optional
   prepared certificate), so a NewView justification is exactly
   verifiable by every replica; the certificate itself is a quorum of
   Prepare signatures and is validated independently.

   Simplifications vs. production PBFT (see DESIGN.md): one slot (no
   sequence numbers, checkpoints or garbage collection). *)

module Auth = Csm_crypto.Auth
module Net = Csm_sim.Net
module Metric = Csm_obs.Metric
module Tel = Csm_obs.Telemetry

type digest = string

let digest_of (value : string) : digest = Digest.string value

type prepared_cert = {
  pc_view : int;
  pc_value : string;
  pc_prepares : (int * Auth.signature) list;  (* quorum of Prepare signers *)
}

type payload =
  | Pre_prepare of { view : int; value : string }
  | Prepare of { view : int; digest : digest }
  | Commit of { view : int; digest : digest }
  | View_change of { new_view : int; prepared : prepared_cert option }
  | New_view of {
      view : int;
      value : string;
      justification : (int * Auth.signature) list;
    }
  | Decided of { value : string }
      (* decision transfer: a decided replica's answer to a peer still
         view-changing — a receiver adopts after f+1 matching answers
         (at least one honest), so a Byzantine leader that selectively
         withholds the value cannot starve a replica that already holds
         a commit quorum *)

type msg = { payload : payload; signature : Auth.signature; signer : int }

type config = {
  n : int;
  f : int;  (* n = 3f + 1 *)
  base_timeout : int;  (* view-0 timeout; doubles per view *)
  instance : string;
  keyring : Auth.keyring;
}

let leader_of cfg view = view mod cfg.n

(* Deterministic serialization for signing.  The prepared certificate is
   deliberately excluded from the View_change payload (see header). *)
let payload_string cfg (p : payload) =
  let body =
    match p with
    | Pre_prepare { view; value } -> Printf.sprintf "pp|%d|%s" view value
    | Prepare { view; digest } -> Printf.sprintf "p|%d|%s" view digest
    | Commit { view; digest } -> Printf.sprintf "c|%d|%s" view digest
    | View_change { new_view; prepared = _ } -> Printf.sprintf "vc|%d" new_view
    | New_view { view; value; justification = _ } ->
      Printf.sprintf "nv|%d|%s" view value
    | Decided { value } -> Printf.sprintf "dd|%s" value
  in
  cfg.instance ^ "!" ^ body

type phase = Idle | Preprepared | Prepared | Decided

let phase_name = function
  | Pre_prepare _ -> "pre_prepare"
  | Prepare _ -> "prepare"
  | Commit _ -> "commit"
  | View_change _ -> "view_change"
  | New_view _ -> "new_view"
  | Decided _ -> "decided"

type node_state = {
  mutable view : int;
  mutable phase : phase;
  mutable value : string option;  (* value accepted in the current view *)
  mutable prepares : (int * Auth.signature) list;
  mutable commits : int list;
  mutable last_prepared : prepared_cert option;
  mutable view_changes : (int * (int * Auth.signature) list) list;
  mutable decided : string option;
  mutable timer_view : int;
  mutable pending_prepares : (int * int * digest * Auth.signature) list;
  mutable pending_commits : (int * int * digest) list;
  mutable decided_votes : (int * string) list;  (* Decided answers seen *)
}

let timeout_for cfg view = cfg.base_timeout * (1 lsl min view 16)

let quorum cfg = (2 * cfg.f) + 1

(* A prepared certificate is valid if it carries a quorum of distinct,
   correctly signed Prepare messages for its view/value. *)
let valid_cert cfg (pc : prepared_cert) =
  let payload =
    payload_string cfg
      (Prepare { view = pc.pc_view; digest = digest_of pc.pc_value })
  in
  let signers = List.sort_uniq Int.compare (List.map fst pc.pc_prepares) in
  List.length signers >= quorum cfg
  && List.for_all
       (fun (id, sg) -> Auth.verify cfg.keyring ~id payload sg)
       pc.pc_prepares

let honest cfg ~me ?proposal ~(on_decide : int -> string -> unit) () :
    msg Net.behavior =
  let signer = Auth.signer cfg.keyring me in
  let st =
    {
      view = 0;
      phase = Idle;
      value = None;
      prepares = [];
      commits = [];
      last_prepared = None;
      view_changes = [];
      decided = None;
      timer_view = 0;
      pending_prepares = [];
      pending_commits = [];
      decided_votes = [];
    }
  in
  let make p =
    { payload = p; signature = Auth.sign signer (payload_string cfg p); signer = me }
  in
  let arm_timer api =
    st.timer_view <- st.view;
    api.Net.set_timer ~delay:(timeout_for cfg st.view) ~tag:st.view
  in
  let record_prepare id sg = st.prepares <- (id, sg) :: st.prepares in
  let record_commit id = st.commits <- id :: st.commits in
  let rec handle api (m : msg) =
    if
      not
        (Auth.verify cfg.keyring ~id:m.signer
           (payload_string cfg m.payload)
           m.signature)
    then ()
    else
      match st.decided with
      | Some v -> (
        (* a view-changing peer is behind: answer with the decision *)
        match m.payload with
        | View_change _ when m.signer <> me ->
          api.Net.send m.signer (make (Decided { value = v }))
        | _ -> ())
      | None -> begin
        (* counted after signature verification: only authenticated
           messages advance the protocol *)
        if Metric.enabled () then
          Metric.inc (Tel.pbft_messages ~phase:(phase_name m.payload));
        match m.payload with
        | Pre_prepare { view; value } ->
          on_pre_prepare api ~sender:m.signer view value
        | New_view { view; value; justification } ->
          if view >= st.view && m.signer = leader_of cfg view then begin
            let vc_payload =
              payload_string cfg (View_change { new_view = view; prepared = None })
            in
            let signers =
              List.sort_uniq Int.compare (List.map fst justification)
            in
            let ok =
              List.length signers >= quorum cfg
              && List.for_all
                   (fun (id, sg) -> Auth.verify cfg.keyring ~id vc_payload sg)
                   justification
            in
            if ok then begin
              enter_view api view;
              on_pre_prepare api ~sender:m.signer view value
            end
          end
        | Prepare { view; digest } -> (
          if view = st.view then
            match st.value with
            | Some v when String.equal (digest_of v) digest ->
              if not (List.mem_assoc m.signer st.prepares) then begin
                record_prepare m.signer m.signature;
                maybe_prepared api
              end
            | Some _ | None ->
              if
                not
                  (List.exists
                     (fun (s, vw, _, _) -> s = m.signer && vw = view)
                     st.pending_prepares)
              then
                st.pending_prepares <-
                  (m.signer, view, digest, m.signature) :: st.pending_prepares)
        | Commit { view; digest } -> (
          if view = st.view then
            match st.value with
            | Some v when String.equal (digest_of v) digest ->
              if not (List.mem m.signer st.commits) then begin
                record_commit m.signer;
                maybe_committed api
              end
            | Some _ | None ->
              if
                not
                  (List.exists
                     (fun (s, vw, _) -> s = m.signer && vw = view)
                     st.pending_commits)
              then
                st.pending_commits <-
                  (m.signer, view, digest) :: st.pending_commits)
        | Decided { value } ->
          if not (List.mem_assoc m.signer st.decided_votes) then begin
            st.decided_votes <- (m.signer, value) :: st.decided_votes;
            let matching =
              List.filter
                (fun (_, v) -> String.equal v value)
                st.decided_votes
            in
            if List.length matching >= cfg.f + 1 then begin
              st.decided <- Some value;
              st.phase <- Decided;
              on_decide me value
            end
          end
        | View_change { new_view; prepared } ->
          if new_view >= st.view then begin
            (match prepared with
            | Some pc when valid_cert cfg pc ->
              let better =
                match st.last_prepared with
                | None -> true
                | Some cur -> pc.pc_view > cur.pc_view
              in
              if better then st.last_prepared <- Some pc
            | Some _ | None -> ());
            let existing =
              match List.assoc_opt new_view st.view_changes with
              | Some l -> l
              | None -> []
            in
            if not (List.mem_assoc m.signer existing) then begin
              let updated = (m.signer, m.signature) :: existing in
              st.view_changes <-
                (new_view, updated)
                :: List.remove_assoc new_view st.view_changes;
              if
                List.length updated >= quorum cfg
                && leader_of cfg new_view = me
                && new_view >= st.view
              then begin
                enter_view api new_view;
                if st.value = None then begin
                  let value =
                    match st.last_prepared with
                    | Some pc -> pc.pc_value
                    | None -> (
                      match proposal with Some v -> v | None -> "")
                  in
                  let nv =
                    make
                      (New_view
                         { view = new_view; value; justification = updated })
                  in
                  api.Net.broadcast nv;
                  handle api nv
                end
              end
            end
          end
      end

    and on_pre_prepare api ~sender view value =
      if view = st.view && sender = leader_of cfg view && st.value = None then begin
        st.value <- Some value;
        st.phase <- Preprepared;
        let p = make (Prepare { view; digest = digest_of value }) in
        api.Net.broadcast p;
        handle api p;
        drain_buffers api
      end

    and drain_buffers api =
      match st.value with
      | None -> ()
      | Some v ->
        let d = digest_of v in
        List.iter
          (fun (s, view, dg, sg) ->
            if view = st.view && String.equal dg d
               && not (List.mem_assoc s st.prepares)
            then record_prepare s sg)
          st.pending_prepares;
        List.iter
          (fun (s, view, dg) ->
            if view = st.view && String.equal dg d && not (List.mem s st.commits)
            then record_commit s)
          st.pending_commits;
        maybe_prepared api;
        maybe_committed api

    and maybe_prepared api =
      match (st.phase, st.value) with
      | Preprepared, Some v when List.length st.prepares >= quorum cfg ->
        st.phase <- Prepared;
        st.last_prepared <-
          Some { pc_view = st.view; pc_value = v; pc_prepares = st.prepares };
        let c = make (Commit { view = st.view; digest = digest_of v }) in
        api.Net.broadcast c;
        handle api c
      | _ -> ()

    and maybe_committed _api =
      match (st.phase, st.value) with
      | Prepared, Some v when List.length st.commits >= quorum cfg ->
        if st.decided = None then begin
          st.decided <- Some v;
          st.phase <- Decided;
          on_decide me v
      end
    | _ -> ()

  and enter_view api view =
    if view > st.view then begin
      st.view <- view;
      st.phase <- Idle;
      st.value <- None;
      st.prepares <- [];
      st.commits <- [];
      arm_timer api;
      drain_buffers api
    end
  in
  {
    Net.init =
      (fun api ->
        arm_timer api;
        if me = leader_of cfg 0 then
          match proposal with
          | Some value ->
            let pp = make (Pre_prepare { view = 0; value }) in
            api.Net.broadcast pp;
            handle api pp
          | None -> ());
    on_message = (fun api ~sender:_ m -> handle api m);
    on_timer =
      (fun api view ->
        if st.decided = None && view = st.view && st.timer_view = view then begin
          let next = st.view + 1 in
          let vc =
            make (View_change { new_view = next; prepared = st.last_prepared })
          in
          api.Net.broadcast vc;
          enter_view api next;
          handle api vc
        end);
  }

type outcome = {
  decisions : string option array;
  stats : Net.stats;
}

let run cfg ?(proposals = fun _ -> None) ?(byzantine = fun _ -> None)
    ?(latency = Net.sync ~delta:10) ?(max_time = 200_000) () : outcome =
  Csm_obs.Span.with_ ~name:"pbft.run"
    ~attrs:[ ("instance", cfg.instance) ]
    (fun () ->
      let decisions = Array.make cfg.n None in
      let on_decide i v = decisions.(i) <- Some v in
      let behaviors =
        Array.init cfg.n (fun i ->
            match byzantine i with
            | Some b -> b
            | None -> honest cfg ~me:i ?proposal:(proposals i) ~on_decide ())
      in
      let stats =
        Net.run ~max_time ~latency
          (* real wire bytes: a Commit frame whose payload carries the
             serialized message + 16-byte signature + signer id *)
          ~size:(fun m ->
            Csm_wire.Frame.encoded_size
              ~payload_bytes:(String.length (payload_string cfg m.payload) + 24))
          behaviors
      in
      Tel.record_per_node ~layer:"consensus" ~sent:stats.Net.sent_by
        ~received:stats.Net.received_by ~bytes_sent:stats.Net.bytes_sent_by
        ~bytes_received:stats.Net.bytes_received_by;
      if Metric.enabled () then
        Metric.observe
          (Tel.consensus_latency ~protocol:"pbft")
          (float_of_int stats.Net.end_time);
      { decisions; stats })
