(** PBFT single-slot consensus for the partially synchronous setting
    (N = 3f + 1), with view changes. *)

module Auth = Csm_crypto.Auth
module Net = Csm_sim.Net

type digest = string

val digest_of : string -> digest

type prepared_cert = {
  pc_view : int;
  pc_value : string;
  pc_prepares : (int * Auth.signature) list;
}

type payload =
  | Pre_prepare of { view : int; value : string }
  | Prepare of { view : int; digest : digest }
  | Commit of { view : int; digest : digest }
  | View_change of { new_view : int; prepared : prepared_cert option }
  | New_view of {
      view : int;
      value : string;
      justification : (int * Auth.signature) list;
    }
  | Decided of { value : string }
      (** decision transfer: a decided replica's answer to a peer still
          view-changing; the peer adopts the value once f + 1 distinct
          replicas report it (at least one of them honest), so a
          Byzantine leader that selectively withholds the pre-prepare
          cannot starve a replica forever *)

type msg = { payload : payload; signature : Auth.signature; signer : int }

type config = {
  n : int;
  f : int;
  base_timeout : int;
  instance : string;
  keyring : Auth.keyring;
}

val leader_of : config -> int -> int
val payload_string : config -> payload -> string
val quorum : config -> int
val valid_cert : config -> prepared_cert -> bool
val timeout_for : config -> int -> int

val honest :
  config ->
  me:int ->
  ?proposal:string ->
  on_decide:(int -> string -> unit) ->
  unit ->
  msg Net.behavior

type outcome = {
  decisions : string option array;
  stats : Net.stats;
}

val run :
  config ->
  ?proposals:(int -> string option) ->
  ?byzantine:(int -> msg Net.behavior option) ->
  ?latency:Net.latency ->
  ?max_time:int ->
  unit ->
  outcome
