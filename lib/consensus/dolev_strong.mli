(** Dolev–Strong authenticated broadcast: the synchronous consensus
    primitive of the paper (tolerates any b < N with signatures). *)

module Auth = Csm_crypto.Auth
module Net = Csm_sim.Net

type msg = {
  value : string;
  chain : (int * Auth.signature) list;  (** leader's signature first *)
}

type config = {
  n : int;
  f : int;  (** faults tolerated; the protocol runs f + 1 rounds *)
  leader : int;
  delta : int;  (** synchronous network bound = round length *)
  instance : string;  (** domain separation for signatures *)
  keyring : Auth.keyring;
}

type decision = Decided of string | Bot

val decision_eq : decision -> decision -> bool
(** Structural equality on decisions without polymorphic compare. *)

val signed_payload : config -> string -> string

val valid_chain : config -> string -> (int * Auth.signature) list -> bool
(** Leader-first, pairwise-distinct signers, all signatures valid. *)

val honest :
  config ->
  me:int ->
  ?proposal:string ->
  on_decide:(int -> decision -> unit) ->
  unit ->
  msg Net.behavior

val equivocating_leader :
  config -> me:int -> value_a:string -> value_b:string -> msg Net.behavior
(** Sends one value to half the nodes and another to the rest
    (Figure 2(a)). *)

val late_injector : config -> me:int -> stash:(int * msg) option -> msg Net.behavior
(** Withholds, then delivers a stashed message to one victim in the last
    round. *)

type outcome = {
  decisions : decision array;
  stats : Net.stats;
}

val run :
  config ->
  ?proposal:string ->
  ?byzantine:(int -> msg Net.behavior option) ->
  unit ->
  outcome
(** Execute one broadcast instance; [byzantine i] overrides node i's
    behavior. *)
