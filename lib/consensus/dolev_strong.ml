(* Dolev–Strong authenticated broadcast (the "Byzantine generals protocol
   [28]" the paper uses for the synchronous consensus phase).

   With transferable signatures the protocol tolerates any number b < N
   of Byzantine nodes:

   - round 0: the leader signs its value and broadcasts it;
   - round r: a node that receives a value carrying r valid distinct
     signatures, the first being the leader's, adds it to its extracted
     set; if the set was previously smaller it appends its own signature
     and relays (rounds continue through f + 1);
   - after round f + 1, a node decides the unique extracted value, or
     the default ⊥ if it extracted zero or several values (the leader
     equivocated).

   Consistency holds for any b ≤ f: if an honest node extracts v in
   round r ≤ f, its relay makes all honest nodes extract v by round
   r + 1 ≤ f + 1; a value extracted in round f + 1 carries f + 1
   signatures, one of which is honest, so every honest node already
   extracted it. *)

module Auth = Csm_crypto.Auth
module Net = Csm_sim.Net

type msg = {
  value : string;
  chain : (int * Auth.signature) list;  (* leader first *)
}

type config = {
  n : int;
  f : int;  (* maximum faults tolerated; rounds = f + 1 *)
  leader : int;
  delta : int;  (* synchronous bound = round length *)
  instance : string;  (* domain separation for signatures *)
  keyring : Auth.keyring;
}

type decision = Decided of string | Bot

let decision_eq a b =
  match (a, b) with
  | Bot, Bot -> true
  | Decided x, Decided y -> String.equal x y
  | Bot, Decided _ | Decided _, Bot -> false

type node_state = {
  mutable extracted : string list;  (* values extracted so far (≤ 2 kept) *)
  mutable decision : decision option;
}

let signed_payload cfg value = cfg.instance ^ "!" ^ value

(* Validate a chain of signatures on [value]: leader first, all valid,
   pairwise-distinct signers. *)
let valid_chain cfg value chain =
  match chain with
  | [] -> false
  | (first, _) :: _ when first <> cfg.leader -> false
  | _ ->
    let payload = signed_payload cfg value in
    let rec distinct seen = function
      | [] -> true
      | (id, _) :: rest ->
        (not (List.mem id seen)) && distinct (id :: seen) rest
    in
    distinct [] chain
    && List.for_all
         (fun (id, sg) -> Auth.verify cfg.keyring ~id payload sg)
         chain

let decide_tag = 0xDEC1DE

(* Honest node behavior.  [on_decide] fires exactly once per node. *)
let honest cfg ~me ?proposal ~(on_decide : int -> decision -> unit) () :
    msg Net.behavior =
  let signer = Auth.signer cfg.keyring me in
  let st = { extracted = []; decision = None } in
  let current_round api = api.Net.now () / cfg.delta in
  let relay api value chain =
    let round = current_round api in
    if round <= cfg.f && not (List.exists (fun (id, _) -> id = me) chain) then begin
      let sg = Auth.sign signer (signed_payload cfg value) in
      api.Net.broadcast { value; chain = chain @ [ (me, sg) ] }
    end
  in
  let extract api value chain =
    if
      List.length st.extracted < 2
      && not (List.mem value st.extracted)
    then begin
      st.extracted <- value :: st.extracted;
      relay api value chain
    end
  in
  {
    Net.init =
      (fun api ->
        (* Everyone scheduls the decision point; the leader proposes. *)
        api.Net.set_timer
          ~delay:(((cfg.f + 1) * cfg.delta) + (cfg.delta / 2))
          ~tag:decide_tag;
        if me = cfg.leader then
          match proposal with
          | None -> ()
          | Some value ->
            let sg = Auth.sign signer (signed_payload cfg value) in
            st.extracted <- [ value ];
            api.Net.broadcast { value; chain = [ (me, sg) ] });
    on_message =
      (fun api ~sender:_ m ->
        let round = current_round api in
        if
          st.decision = None
          && List.length m.chain >= round
          && valid_chain cfg m.value m.chain
        then extract api m.value m.chain);
    on_timer =
      (fun _api tag ->
        if tag = decide_tag && st.decision = None then begin
          let d =
            match st.extracted with [ v ] -> Decided v | [] | _ -> Bot
          in
          st.decision <- Some d;
          on_decide me d
        end);
  }

(* ----- Byzantine strategies for experiments and tests ----- *)

(* Leader sends value_a to the first half of the nodes and value_b to
   the rest (classic equivocation; Figure 2(a) of the paper). *)
let equivocating_leader cfg ~me ~value_a ~value_b : msg Net.behavior =
  let signer = Auth.signer cfg.keyring me in
  {
    Net.init =
      (fun api ->
        let sign v = Auth.sign signer (signed_payload cfg v) in
        for dst = 0 to cfg.n - 1 do
          if dst <> me then begin
            let v = if dst < cfg.n / 2 then value_a else value_b in
            api.Net.send dst { value = v; chain = [ (me, sign v) ] }
          end
        done);
    on_message = (fun _ ~sender:_ _ -> ());
    on_timer = (fun _ _ -> ());
  }

(* Relay that withholds until the last round, then reveals a second
   leader-signed value only to a victim subset (tests that late values
   carrying enough signatures are still extracted consistently).  The
   conspirators must include the leader to craft the second value. *)
let late_injector cfg ~me:_ ~stash : msg Net.behavior =
  {
    Net.init =
      (fun api ->
        api.Net.set_timer ~delay:((cfg.f * cfg.delta) + 1) ~tag:1);
    on_message = (fun _ ~sender:_ _ -> ());
    on_timer =
      (fun api tag ->
        if tag = 1 then
          match stash with
          | Some (victim, m) -> api.Net.send victim m
          | None -> ());
  }

type outcome = {
  decisions : decision array;
  stats : Net.stats;
}

(* Run one broadcast instance: [behaviors.(i)] overrides the honest
   behavior for Byzantine slots. *)
let run cfg ?proposal ?(byzantine = fun _ -> None) () : outcome =
  Csm_obs.Span.with_ ~name:"dolev_strong.run"
    ~attrs:[ ("instance", cfg.instance) ]
    (fun () ->
  let decisions = Array.make cfg.n Bot in
  let on_decide i d = decisions.(i) <- d in
  let behaviors =
    Array.init cfg.n (fun i ->
        match byzantine i with
        | Some b -> b
        | None ->
          let proposal = if i = cfg.leader then proposal else None in
          honest cfg ~me:i ?proposal ~on_decide ())
  in
  let stats =
    Net.run
      ~max_time:(((cfg.f + 2) * cfg.delta) + cfg.delta)
      ~latency:(Net.sync ~delta:cfg.delta)
        (* real wire bytes: a Commit frame whose payload carries the
           value plus 24 bytes per chain link (16-byte signature +
           signer id) *)
      ~size:(fun m ->
        Csm_wire.Frame.encoded_size
          ~payload_bytes:(String.length m.value + (24 * List.length m.chain)))
      behaviors
  in
  let module Tel = Csm_obs.Telemetry in
  let module Metric = Csm_obs.Metric in
  Tel.record_per_node ~layer:"consensus" ~sent:stats.Net.sent_by
    ~received:stats.Net.received_by ~bytes_sent:stats.Net.bytes_sent_by
    ~bytes_received:stats.Net.bytes_received_by;
  if Metric.enabled () then
    Metric.observe
      (Tel.consensus_latency ~protocol:"dolev_strong")
      (float_of_int stats.Net.end_time);
  { decisions; stats })
