(* Subproduct trees: fast multipoint evaluation and fast interpolation.

   These are the quasi-linear algorithms ([24,34] in the paper) that the
   centralized worker of Section 6.2 uses to encode commands at all N
   points and to interpolate the round polynomial, giving per-round
   coding complexity O(N log² N log log N) instead of O(N·K). *)

module Field_intf = Csm_field.Field_intf

module Make (F : Field_intf.S) = struct
  module P = Poly.Make (F)
  module Lag = Lagrange.Make (F)

  type tree =
    | Leaf of F.t  (* the point x; subproduct is (z - x) *)
    | Node of P.t * tree * tree  (* product polynomial of the leaves below *)

  let tree_poly = function
    | Leaf x -> [| F.neg x; F.one |]
    | Node (p, _, _) -> p

  let rec build_range points lo hi =
    if lo = hi then Leaf points.(lo)
    else
      let mid = (lo + hi) / 2 in
      let left = build_range points lo mid in
      let right = build_range points (mid + 1) hi in
      Node (P.mul (tree_poly left) (tree_poly right), left, right)

  let build points =
    if Array.length points = 0 then
      invalid_arg "Subproduct.build: empty point set";
    build_range points 0 (Array.length points - 1)

  let root_poly t = tree_poly t

  (* Remainder tree: p mod each leaf's (z - x) is p(x). *)
  let eval_tree p t =
    let out = ref [] in
    let rec go p t =
      match t with
      | Leaf x ->
        let v = if P.degree p <= 0 then P.coeff p 0 else P.eval p x in
        out := v :: !out
      | Node (node_poly, left, right) ->
        let p = if P.degree p >= P.degree node_poly then P.rem p node_poly else p in
        go p left;
        go p right
    in
    go p t;
    Array.of_list (List.rev !out)

  (* Fast multipoint evaluation: p at every point, O(M(n) log n). *)
  let eval_all p points =
    if Array.length points = 0 then [||]
    else eval_tree p (build points)

  (* Fast interpolation through (points, values):
       m(z)  = ∏ (z - xᵢ)           (root of the tree)
       wᵢ    = yᵢ / m'(xᵢ)
       f(z)  = Σ wᵢ · m(z)/(z - xᵢ) combined up the tree.            *)
  let interpolate_tree t values =
    let m' = P.derivative (tree_poly t) in
    let denoms = eval_tree m' t in
    let weights = Array.mapi (fun i y -> F.div y denoms.(i)) values in
    let idx = ref 0 in
    let rec combine t =
      match t with
      | Leaf _ ->
        let w = weights.(!idx) in
        incr idx;
        P.constant w
      | Node (_, left, right) ->
        let cl = combine left in
        let cr = combine right in
        P.add (P.mul cl (tree_poly right)) (P.mul cr (tree_poly left))
    in
    combine t

  let interpolate points values =
    if Array.length points <> Array.length values then
      invalid_arg "Subproduct.interpolate: length mismatch";
    if Array.length points = 0 then P.zero
    else interpolate_tree (build points) values

  (* Precomputed context for a fixed point set: the tree and the
     inverted derivative values 1/m'(xᵢ) are round-independent (the
     same Remark-4 argument as the coefficient matrix C), leaving only
     the weight scaling and the O(M(n) log n) combination per round. *)
  type prepared = {
    p_tree : tree;
    p_inv_denoms : F.t array;  (* 1 / m'(xᵢ), leaf order *)
  }

  let prepare points =
    let t = build points in
    let m' = P.derivative (tree_poly t) in
    let denoms = eval_tree m' t in
    (* m'(xᵢ) ≠ 0 for distinct points; one inversion for the whole batch *)
    { p_tree = t; p_inv_denoms = Lag.batch_inv denoms }

  let interpolate_prepared p values =
    let weights = Array.mapi (fun i y -> F.mul y p.p_inv_denoms.(i)) values in
    let idx = ref 0 in
    let rec combine t =
      match t with
      | Leaf _ ->
        let w = weights.(!idx) in
        incr idx;
        P.constant w
      | Node (_, left, right) ->
        let cl = combine left in
        let cr = combine right in
        P.add (P.mul cl (tree_poly right)) (P.mul cr (tree_poly left))
    in
    combine p.p_tree

  let eval_prepared p poly = eval_tree poly p.p_tree
end
