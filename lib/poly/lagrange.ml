(* Lagrange interpolation and the CSM coding coefficients.

   The heart of the Coded State design (Section 5.1): given machine
   points ω₁..ω_K and node points α₁..α_N, node i stores
   S̃ᵢ = u(αᵢ) = Σₖ c_{ik} Sₖ with c_{ik} = ∏_{ℓ≠k} (αᵢ−ω_ℓ)/(ω_k−ω_ℓ).
   This module provides the classic O(K²) interpolation, O(K)-per-point
   coefficient rows via barycentric weights, and the full N×K matrix C
   that INTERMIX verifies products against. *)

module Field_intf = Csm_field.Field_intf

module Make (F : Field_intf.S) = struct
  module P = Poly.Make (F)

  let check_distinct points =
    let n = Array.length points in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        if F.equal points.(i) points.(j) then
          invalid_arg "Lagrange: evaluation points must be distinct"
      done
    done

  (* Newton interpolation via divided differences, O(n^2). *)
  let interpolate pairs =
    let n = Array.length pairs in
    if n = 0 then P.zero
    else begin
      let xs = Array.map fst pairs in
      check_distinct xs;
      (* divided-difference coefficients *)
      let dd = Array.map snd pairs in
      for j = 1 to n - 1 do
        for i = n - 1 downto j do
          dd.(i) <-
            F.div (F.sub dd.(i) dd.(i - 1)) (F.sub xs.(i) xs.(i - j))
        done
      done;
      (* expand the Newton form Σ dd_i ∏_{j<i} (z - x_j) *)
      let acc = ref P.zero in
      for i = n - 1 downto 0 do
        acc := P.add (P.mul !acc [| F.neg xs.(i); F.one |]) (P.constant dd.(i))
      done;
      !acc
    end

  (* Montgomery's trick: invert a whole batch with a single field
     inversion and 3(n−1) multiplications, instead of n inversions.
     Inversions cost ~[Counter.inv_weight] multiplications each, so this
     is the difference between O(n log p) and O(n + log p) per batch.
     @raise Division_by_zero when any element is zero. *)
  let batch_inv xs =
    let n = Array.length xs in
    if n = 0 then [||]
    else begin
      let prefix = Array.make n F.one in
      let acc = ref F.one in
      for i = 0 to n - 1 do
        prefix.(i) <- !acc;
        (* prefix.(i) = x₀·…·x_{i−1} *)
        acc := F.mul !acc xs.(i)
      done;
      let out = Array.make n F.zero in
      let tail = ref (F.inv !acc) in
      (* tail = 1/(x₀·…·x_i) on entry to iteration i *)
      for i = n - 1 downto 0 do
        out.(i) <- F.mul !tail prefix.(i);
        tail := F.mul !tail xs.(i)
      done;
      out
    end

  (* Barycentric weights w_k = 1 / ∏_{ℓ≠k} (ω_k − ω_ℓ), O(n²)
     multiplications and — via [batch_inv] — one inversion total. *)
  let barycentric_weights points =
    check_distinct points;
    let n = Array.length points in
    let prods =
      Array.init n (fun k ->
          let prod = ref F.one in
          for l = 0 to n - 1 do
            if l <> k then prod := F.mul !prod (F.sub points.(k) points.(l))
          done;
          !prod)
    in
    batch_inv prods

  (* Row of Lagrange-basis values ℓ_k(x) for all k, computed in O(n) from
     precomputed weights using prefix/suffix products of (x − ω_ℓ).
     If x coincides with some ω_j the row is the indicator of j. *)
  let coeff_row ~points ~weights x =
    let n = Array.length points in
    let hit = ref (-1) in
    for j = 0 to n - 1 do
      if F.equal x points.(j) then hit := j
    done;
    if !hit >= 0 then
      Array.init n (fun k -> if k = !hit then F.one else F.zero)
    else begin
      let prefix = Array.make (n + 1) F.one in
      for i = 0 to n - 1 do
        prefix.(i + 1) <- F.mul prefix.(i) (F.sub x points.(i))
      done;
      let suffix = Array.make (n + 1) F.one in
      for i = n - 1 downto 0 do
        suffix.(i) <- F.mul suffix.(i + 1) (F.sub x points.(i))
      done;
      Array.init n (fun k ->
          F.mul (F.mul prefix.(k) suffix.(k + 1)) weights.(k))
    end

  (* The N×K encoding matrix C = [c_{ik}] of Section 5.1, row i being the
     Lagrange-basis values at αᵢ.  Rows are independent, so they are
     computed across the domain pool (written by index: deterministic). *)
  let coeff_matrix ~omegas ~alphas =
    let weights = barycentric_weights omegas in
    Csm_parallel.Pool.parallel_map_array
      (fun alpha -> coeff_row ~points:omegas ~weights alpha)
      alphas

  (* Encode one scalar per machine into one coded scalar per node:
     x̃ᵢ = Σₖ c_{ik} xₖ. *)
  let encode_with_matrix matrix values =
    Array.map
      (fun row ->
        let acc = ref F.zero in
        Array.iteri (fun k c -> acc := F.add !acc (F.mul c values.(k))) row;
        !acc)
      matrix

  (* Barycentric evaluation of the interpolant at x, O(n) given weights. *)
  let eval_barycentric ~points ~weights ~values x =
    let row = coeff_row ~points ~weights x in
    let acc = ref F.zero in
    Array.iteri (fun k c -> acc := F.add !acc (F.mul c values.(k))) row;
    !acc

  (* Distinct evaluation points 0, 1, ..., n-1 injected into F (requires
     |F| >= total).  [offset] lets callers place ωs and αs on disjoint
     ranges, matching the paper's "arbitrary distinct elements". *)
  let standard_points ?(offset = 0) n =
    if offset + n > F.order then
      invalid_arg "Lagrange.standard_points: field too small";
    Array.init n (fun i -> F.of_int (offset + i))
end
