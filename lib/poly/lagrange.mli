(** Lagrange interpolation and the CSM coding coefficient matrix
    (Section 5.1 of the paper). *)

module Field_intf = Csm_field.Field_intf

module Make (F : Field_intf.S) : sig
  module P : module type of Poly.Make (F)

  val check_distinct : F.t array -> unit
  (** @raise Invalid_argument on duplicate points. *)

  val interpolate : (F.t * F.t) array -> P.t
  (** Newton interpolation through the given (point, value) pairs; O(n²).
      @raise Invalid_argument on duplicate points. *)

  val batch_inv : F.t array -> F.t array
  (** Montgomery's trick: elementwise inverses with one field inversion
      and 3(n−1) multiplications.
      @raise Division_by_zero when any element is zero. *)

  val barycentric_weights : F.t array -> F.t array
  (** wₖ = 1 / ∏_{ℓ≠k} (xₖ − x_ℓ); O(n²) once per point set, with a
      single inversion via [batch_inv]. *)

  val coeff_row : points:F.t array -> weights:F.t array -> F.t -> F.t array
  (** Lagrange basis values ℓₖ(x) for all k, in O(n).  When x equals one
      of the points the row is that point's indicator vector. *)

  val coeff_matrix : omegas:F.t array -> alphas:F.t array -> F.t array array
  (** The N×K matrix C = [c_{ik}] with c_{ik} = ℓₖ(αᵢ): the universal
      state/command encoding matrix of CSM. *)

  val encode_with_matrix : F.t array array -> F.t array -> F.t array
  (** [encode_with_matrix c values] computes C·values (one coded scalar
      per node). *)

  val eval_barycentric :
    points:F.t array ->
    weights:F.t array ->
    values:F.t array ->
    F.t ->
    F.t
  (** Evaluate the interpolant at a point in O(n). *)

  val standard_points : ?offset:int -> int -> F.t array
  (** The points [offset, offset+1, …, offset+n-1] injected into F.
      @raise Invalid_argument when the field is too small. *)
end
