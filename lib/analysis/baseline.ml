(* Accepted-findings baseline.

   An entry is keyed by (rule, file, normalized source line text)
   rather than by line number, so unrelated edits that shift lines do
   not invalidate it; [count] bounds how many findings the entry may
   absorb, so a *new* violation on an already-baselined line still
   fails the gate.  Every entry carries a human reason — the baseline
   is a reviewed allowlist, not a dumping ground.

   Line text is normalized (whitespace runs collapsed to one space,
   ends trimmed) on both sides of the comparison, so reformatting —
   re-indentation, alignment changes, tabs vs spaces — does not
   invalidate entries either.  Only edits that change the tokens on
   the line do. *)

module Json = Csm_obs.Json

(* Collapse every whitespace run to a single space and trim. *)
let normalize s =
  let b = Buffer.create (String.length s) in
  let pending = ref false in
  String.iter
    (fun c ->
      if c = ' ' || c = '\t' || c = '\r' || c = '\012' then pending := true
      else begin
        if !pending && Buffer.length b > 0 then Buffer.add_char b ' ';
        pending := false;
        Buffer.add_char b c
      end)
    s;
  Buffer.contents b

type entry = {
  rule : string;
  file : string;
  text : string;  (* normalized source line at the finding *)
  count : int;
  reason : string;
}

let key e = (e.rule, e.file, normalize e.text)

let entry_of_json j =
  let str name = Option.bind (Json.member name j) Json.to_string_opt in
  let int name = Option.bind (Json.member name j) Json.to_int_opt in
  match (str "rule", str "file", str "text") with
  | Some rule, Some file, Some text ->
    Some
      {
        rule;
        file;
        text;
        count = Option.value ~default:1 (int "count");
        reason = Option.value ~default:"" (str "reason");
      }
  | _ -> None

let load path : entry list =
  if not (Sys.file_exists path) then []
  else
    match Json.parse_file path with
    | exception Json.Parse_error _ -> []
    | j -> (
      match Json.member "entries" j with
      | Some (Json.List items) -> List.filter_map entry_of_json items
      | _ -> [])

let json_of_entry e =
  Json.Obj
    [
      ("rule", Json.Str e.rule);
      ("file", Json.Str e.file);
      ("text", Json.Str e.text);
      ("count", Json.Int e.count);
      ("reason", Json.Str e.reason);
    ]

let save path entries =
  let entries =
    List.sort
      (fun a b ->
        match String.compare a.file b.file with
        | 0 -> (
          match String.compare a.rule b.rule with
          | 0 -> String.compare a.text b.text
          | c -> c)
        | c -> c)
      entries
  in
  Json.write ~path
    (Json.Obj
       [
         ("version", Json.Int 1);
         ("entries", Json.List (List.map json_of_entry entries));
       ])

(* Partition findings into (new, baselined).  Each finding arrives with
   the trimmed text of its source line. *)
let apply entries (pairs : (Finding.t * string) list) =
  let budget : (string * string * string, int ref) Hashtbl.t =
    Hashtbl.create 16
  in
  List.iter
    (fun e ->
      let k = key e in
      match Hashtbl.find_opt budget k with
      | Some r -> r := !r + e.count
      | None -> Hashtbl.add budget k (ref e.count))
    entries;
  List.partition_map
    (fun ((f : Finding.t), text) ->
      let k = (f.Finding.rule, f.Finding.file, normalize text) in
      match Hashtbl.find_opt budget k with
      | Some r when !r > 0 ->
        decr r;
        Right f
      | _ -> Left f)
    pairs

(* Entries for the current findings, carrying reasons over from [old]
   where the key survives. *)
let of_findings ~old (pairs : (Finding.t * string) list) =
  let reasons = Hashtbl.create 16 in
  List.iter (fun e -> Hashtbl.replace reasons (key e) e.reason) old;
  let counts : (string * string * string, int ref) Hashtbl.t =
    Hashtbl.create 16
  in
  let order = ref [] in
  List.iter
    (fun ((f : Finding.t), text) ->
      let k = (f.Finding.rule, f.Finding.file, normalize text) in
      match Hashtbl.find_opt counts k with
      | Some r -> incr r
      | None ->
        Hashtbl.add counts k (ref 1);
        order := k :: !order)
    pairs;
  List.rev_map
    (fun ((rule, file, text) as k) ->
      {
        rule;
        file;
        text;
        count = !(Hashtbl.find counts k);
        reason =
          (match Hashtbl.find_opt reasons k with
          | Some r when r <> "" -> r
          | _ -> "TODO: justify or fix");
      })
    !order
