(* File discovery, parsing, and the lint pipeline:

     parse -> rules -> in-source suppressions -> baseline

   [lint_string] is the test-facing entry point (fixtures are inline
   strings); [lint_tree] walks lib/ bin/ bench/ test/ under a root and
   is what bin/csm_lint runs. *)

let scan_dirs = [ "lib"; "bin"; "bench"; "test" ]

let read_file path = In_channel.with_open_bin path In_channel.input_all

let line_texts src = Array.of_list (String.split_on_char '\n' src)

let text_at lines n =
  if n >= 1 && n <= Array.length lines then String.trim lines.(n - 1) else ""

(* Findings for one source string, with in-source suppressions already
   applied.  [path] decides which rules and scopes apply and must be
   repo-relative ("lib/core/wire.ml"). *)
let lint_string ?registry ~path src : Finding.t list =
  let ctx = Rules.make_ctx ?registry ~path () in
  let lb = Lexing.from_string src in
  Lexing.set_filename lb path;
  let findings =
    try
      if Filename.check_suffix path ".mli" then
        Rules.run_signature ctx (Parse.interface lb)
      else Rules.run ctx (Parse.implementation lb)
    with exn ->
      let line, col =
        match exn with
        | Syntaxerr.Error err ->
          let p = (Syntaxerr.location_of_error err).Location.loc_start in
          (p.Lexing.pos_lnum, p.Lexing.pos_cnum - p.Lexing.pos_bol)
        | _ -> (1, 0)
      in
      [
        Finding.make ~rule:"parse" ~severity:Finding.Error ~file:path ~line
          ~col "source does not parse";
      ]
  in
  let sup = Suppress.scan src in
  let findings =
    List.filter
      (fun (f : Finding.t) ->
        not (Suppress.active sup ~rule:f.Finding.rule ~line:f.Finding.line))
      findings
  in
  (* nested-binding scans can report one site twice; keep one *)
  List.sort_uniq Finding.order findings

(* The R4 registry: one "<file>:<name>" token per line, '#' comments,
   free-text reason after the token. *)
let load_registry path =
  let t = Hashtbl.create 32 in
  if Sys.file_exists path then
    String.split_on_char '\n' (read_file path)
    |> List.iter (fun line ->
           let line = String.trim line in
           if line <> "" && line.[0] <> '#' then
             let tok =
               match String.index_opt line ' ' with
               | Some i -> String.sub line 0 i
               | None -> line
             in
             Hashtbl.replace t tok ());
  t

let is_source f =
  Filename.check_suffix f ".ml" || Filename.check_suffix f ".mli"

let skip_dir name =
  name = "" || name.[0] = '.' || name.[0] = '_' (* _build and friends *)

(* All source files under root's scan dirs, as repo-relative paths in
   deterministic order. *)
let source_files ~root =
  let out = ref [] in
  let rec walk rel =
    let abs = Filename.concat root rel in
    let entries = Sys.readdir abs in
    Array.sort String.compare entries;
    Array.iter
      (fun name ->
        let rel' = rel ^ "/" ^ name in
        let abs' = Filename.concat root rel' in
        if Sys.is_directory abs' then begin
          if not (skip_dir name) then walk rel'
        end
        else if is_source name then out := rel' :: !out)
      entries
  in
  List.iter
    (fun d -> if Sys.file_exists (Filename.concat root d) then walk d)
    scan_dirs;
  List.rev !out

(* ----- whole-program passes (R6–R9) ----- *)

(* Apply each unit's in-source suppression markers to whole-program
   findings, exactly as [lint_string] does for the per-file rules. *)
let apply_suppressions units findings =
  let by_path = Hashtbl.create 16 in
  List.iter
    (fun (u : Program.unit_) -> Hashtbl.replace by_path u.Program.path u)
    units;
  List.filter
    (fun (f : Finding.t) ->
      match Hashtbl.find_opt by_path f.Finding.file with
      | Some u ->
        not
          (Suppress.active u.Program.suppress ~rule:f.Finding.rule
             ~line:f.Finding.line)
      | None -> true)
    findings

(* Taint (R6–R8) and lock-order (R9) findings over a set of parsed
   units, suppressions applied.  Also returns the static lock edges
   for [--graph-out] / lockdep-export comparison. *)
let whole_program ?registry ?(expected = []) units =
  let taint = Taint.analyze ?registry units in
  let lg = Lockgraph.analyze ~expected units in
  let findings = apply_suppressions units (taint @ lg.Lockgraph.findings) in
  (List.sort_uniq Finding.order findings, lg.Lockgraph.edges)

(* Test-facing multi-unit entry point: whole-program rules only, over
   inline fixture sources. *)
let lint_strings ?registry ?expected (sources : (string * string) list) :
    Finding.t list =
  let units =
    List.map (fun (path, src) -> Program.of_string ~path src) sources
  in
  fst (whole_program ?registry ?expected units)

type result = {
  files_scanned : int;
  fresh : Finding.t list;  (* not baselined, not suppressed *)
  baselined : Finding.t list;
  pairs : (Finding.t * string) list;  (* every finding with its line text *)
  (* static acquisition graph, with the site that created each edge *)
  lock_edges : (string * string * Location.t) list;
}

let load_expected path =
  if Sys.file_exists path then Lockgraph.parse_expected (read_file path)
  else []

let lint_tree ?(taint = false) ~root ~baseline_path () =
  let registry =
    load_registry (Filename.concat root "lint/shared_state.allow")
  in
  let files = source_files ~root in
  let sources =
    List.map (fun rel -> (rel, read_file (Filename.concat root rel))) files
  in
  let pairs =
    List.concat_map
      (fun (rel, src) ->
        let lines = line_texts src in
        lint_string ~registry ~path:rel src
        |> List.map (fun (f : Finding.t) -> (f, text_at lines f.Finding.line)))
      sources
  in
  let wp_pairs, lock_edges =
    if not taint then ([], [])
    else begin
      let units =
        List.filter_map
          (fun (rel, src) ->
            if Filename.check_suffix rel ".ml" then
              Some (Program.of_string ~path:rel src)
            else None)
          sources
      in
      let expected =
        load_expected (Filename.concat root "lint/lock_order.expected")
      in
      let findings, edges = whole_program ~registry ~expected units in
      let by_path = Hashtbl.create 64 in
      List.iter
        (fun (u : Program.unit_) -> Hashtbl.replace by_path u.Program.path u)
        units;
      ( List.map
          (fun (f : Finding.t) ->
            let text =
              match Hashtbl.find_opt by_path f.Finding.file with
              | Some u -> Program.line_text u f.Finding.line
              | None -> ""
            in
            (f, text))
          findings,
        edges )
    end
  in
  let pairs = pairs @ wp_pairs in
  let baseline = Baseline.load baseline_path in
  let fresh, baselined = Baseline.apply baseline pairs in
  {
    files_scanned = List.length files;
    fresh = List.sort Finding.order fresh;
    baselined = List.sort Finding.order baselined;
    pairs;
    lock_edges;
  }
