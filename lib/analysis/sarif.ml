(* SARIF 2.1.0 rendering of lint findings, for CI annotation uptake.
   Deliberately minimal: one run, one driver, one result per finding.
   The output is deterministic (rules sorted, findings in Finding.order)
   so it can be golden-tested. *)

module Json = Csm_obs.Json

let rule_descriptions =
  [
    ("R1", "determinism boundary: no ambient randomness/clock in core");
    ("R2", "no polymorphic comparison on field/frame values");
    ("R3", "mutex release discipline");
    ("R4", "module-level mutable state must be registered");
    ("R5", "decode_*/of_header must be total");
    ("R6", "untrusted value reaches a sink without a sanitizer");
    ("R7", "sanitizer verdict discarded or bypassed");
    ("R8", "taint escapes into unregistered module-level mutable state");
    ("R9", "static lock-order cycle or runtime-export contradiction");
    ("parse", "source does not parse");
  ]

let level_of = function Finding.Error -> "error" | Finding.Warning -> "warning"

let result_of (f : Finding.t) =
  Json.Obj
    [
      ("ruleId", Json.Str f.Finding.rule);
      ("level", Json.Str (level_of f.Finding.severity));
      ("message", Json.Obj [ ("text", Json.Str f.Finding.message) ]);
      ( "locations",
        Json.List
          [
            Json.Obj
              [
                ( "physicalLocation",
                  Json.Obj
                    [
                      ( "artifactLocation",
                        Json.Obj [ ("uri", Json.Str f.Finding.file) ] );
                      ( "region",
                        Json.Obj
                          [
                            ("startLine", Json.Int f.Finding.line);
                            ("startColumn", Json.Int (f.Finding.col + 1));
                          ] );
                    ] );
              ];
          ] );
    ]

let render (findings : Finding.t list) : Json.t =
  let findings = List.sort Finding.order findings in
  let rules =
    List.map
      (fun (id, desc) ->
        Json.Obj
          [
            ("id", Json.Str id);
            ( "shortDescription",
              Json.Obj [ ("text", Json.Str desc) ] );
          ])
      rule_descriptions
  in
  Json.Obj
    [
      ( "$schema",
        Json.Str
          "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"
      );
      ("version", Json.Str "2.1.0");
      ( "runs",
        Json.List
          [
            Json.Obj
              [
                ( "tool",
                  Json.Obj
                    [
                      ( "driver",
                        Json.Obj
                          [
                            ("name", Json.Str "csm-lint");
                            ("informationUri", Json.Str "DESIGN.md");
                            ("rules", Json.List rules);
                          ] );
                    ] );
                ("results", Json.List (List.map result_of findings));
              ];
          ] );
    ]
