(* R9: static lock-order graph, checked against the runtime lockdep
   export.

   The runtime checker (lib/parallel/lockdep.ml, [CSM_LOCKDEP=1]) sees
   only the interleavings a given run happens to produce.  This pass
   builds the acquisition graph from source — an edge a -> b whenever
   lock b can be taken while a is held — and fails on

     * cycles in the static graph (a deadlock no run has hit yet), and
     * static edges whose *reverse* is recorded in the committed
       runtime export [lint/lock_order.expected] (the static and
       dynamic views disagree about which order is canonical — one of
       them is wrong, or the code genuinely takes the locks both ways).

   Lock identities:
     * [Lockdep.create "name"]  — the string literal, whether bound to
       a variable ([let im = Lockdep.create "socket.incoming" in ...])
       or a record field ([pm = Lockdep.create "socket.peer"]; the
       field label then resolves accesses like [peer.pm] anywhere)
     * [Mutex.create ()] in a module-level binding or record field —
       named "<Module>.<binding>" (e.g. "Metric.reg_lock"); these never
       appear in the runtime export (lockdep wraps only [Lockdep.t]),
       so they participate in cycle detection only
   A field label constructed with different locks in different modules
   (e.g. [stats_mutex] = "socket.stats" in one backend and
   "loopback.stats" in the other) resolves to the *set* of them; edges
   are added for every member — a sound over-approximation.
   lib/parallel/lockdep.ml itself is excluded: its [meta] mutex is the
   checker's own bookkeeping, acquired transiently around every user
   lock, and would otherwise fabricate edges to everything.

   Acquisition nesting:
     * [Lockdep.with_lock L f] — [f] runs under L
     * [Mutex.lock L; rest] / [Lockdep.lock L; rest] — the rest of the
       sequence runs under L (until a matching unlock)
     * calling a function [g] while holding H adds every H -> acq(g)
       edge, where acq(g) is the summary of locks [g] (transitively)
       acquires; a function argument passed to [g] is assumed to run
       under app(g) — the locks [g] holds at the points it *invokes a
       parameter* — not under everything [g] acquires.  That
       distinction is what keeps [Span.with_ ... (fun () -> ...)]
       (thunk runs after the registry lock is released) and
       [Pool.run] (tasks run on worker domains) from fabricating
       edges, while [locked t (fun () -> ...)] wrappers still nest
       correctly.
     * a lambda that is *not* an argument (let-bound, stored in a
       record/queue) runs at an unknown later point: its body is
       walked with nothing held.
   Summaries are computed to a fixpoint over the same whole-program
   def table the taint pass uses.  Locks that can't be resolved to an
   identity (e.g. a mutex received as a parameter) are skipped: R9 can
   miss edges, it does not invent identities. *)

open Parsetree

module S = Set.Make (String)

module Edges = Map.Make (struct
  type t = string * string

  let compare (a1, b1) (a2, b2) =
    match String.compare a1 a2 with 0 -> String.compare b1 b2 | c -> c
end)

(* ----- expected-order file ----- *)

(* "a -> b" per line; '#' starts a comment; blank lines ignored. *)
let parse_expected src =
  String.split_on_char '\n' src
  |> List.filter_map (fun line ->
         let line =
           match String.index_opt line '#' with
           | Some i -> String.sub line 0 i
           | None -> line
         in
         let line = String.trim line in
         if line = "" then None
         else
           match String.index_opt line '-' with
           | Some i when i + 1 < String.length line && line.[i + 1] = '>' ->
             let a = String.trim (String.sub line 0 i) in
             let b =
               String.trim (String.sub line (i + 2) (String.length line - i - 2))
             in
             if a = "" || b = "" then None else Some (a, b)
           | _ -> None)

let render_expected ~header edges =
  let b = Buffer.create 256 in
  List.iter (fun l -> Buffer.add_string b ("# " ^ l ^ "\n")) header;
  List.iter (fun (a, bb) -> Buffer.add_string b (a ^ " -> " ^ bb ^ "\n")) edges;
  Buffer.contents b

(* ----- lock identity collection ----- *)

let lockdep_create_name e =
  match e.pexp_desc with
  | Pexp_apply (h, [ (_, arg) ]) -> (
    match Taint.head_of h with
    | Some parts -> (
      match Program.strip_lib parts with
      | [ "Lockdep"; "create" ] -> (
        match arg.pexp_desc with
        | Pexp_constant (Pconst_string (s, _, _)) -> Some s
        | _ -> None)
      | _ -> None)
    | None -> None)
  | _ -> None

let is_mutex_create e =
  match e.pexp_desc with
  | Pexp_apply (h, _) -> (
    match Taint.head_of h with
    | Some parts -> Program.strip_lib parts = [ "Mutex"; "create" ]
    | None -> false)
  | _ -> false

(* The runtime checker's own internals are not part of the analyzed
   program. *)
let excluded_unit (u : Program.unit_) =
  Filename.basename u.Program.path = "lockdep.ml"

type identities = {
  (* (unit modname, binding) -> lock names *)
  vars : (string * string, S.t) Hashtbl.t;
  (* (unit modname, field label) -> lock names: a field access in a
     unit resolves against that unit's own record constructions first —
     field labels like [lock] repeat across otherwise-unrelated record
     types, and a global pool would cross-link their lock graphs *)
  unit_fields : (string * string, S.t) Hashtbl.t;
  (* field label -> lock names, program-wide fallback for accessors
     living outside the constructing unit (transport.ml's
     [t.stats_mutex], built by both backends) *)
  fields : (string, S.t) Hashtbl.t;
}

let add tbl key name =
  let cur = Option.value ~default:S.empty (Hashtbl.find_opt tbl key) in
  Hashtbl.replace tbl key (S.add name cur)

let collect_identities units =
  let ids =
    {
      vars = Hashtbl.create 32;
      unit_fields = Hashtbl.create 32;
      fields = Hashtbl.create 32;
    }
  in
  List.iter
    (fun (u : Program.unit_) ->
      let modname = u.Program.modname in
      let it = Ast_iterator.default_iterator in
      let expr it e =
        (match e.pexp_desc with
        | Pexp_record (fls, _) ->
          List.iter
            (fun (({ txt; _ } : Longident.t Location.loc), v) ->
              match List.rev (Longident.flatten txt) with
              | label :: _ -> (
                match lockdep_create_name v with
                | Some name ->
                  add ids.unit_fields (modname, label) name;
                  add ids.fields label name
                | None ->
                  if is_mutex_create v then begin
                    add ids.unit_fields (modname, label) (modname ^ "." ^ label);
                    add ids.fields label (modname ^ "." ^ label)
                  end)
              | [] -> ())
            fls
        | _ -> ());
        Ast_iterator.default_iterator.expr it e
      in
      let it = { it with expr } in
      match u.Program.structure with
      | Some str ->
        it.structure it str;
        List.iter
          (fun si ->
            match si.pstr_desc with
            | Pstr_value (_, vbs) ->
              List.iter
                (fun vb ->
                  match Rules.binding_name vb.pvb_pat with
                  | Some v -> (
                    match lockdep_create_name vb.pvb_expr with
                    | Some name -> add ids.vars (modname, v) name
                    | None ->
                      if is_mutex_create vb.pvb_expr then
                        add ids.vars (modname, v) (modname ^ "." ^ v))
                  | None -> ())
                vbs
            | _ -> ())
          str
      | None -> ())
    units;
  ids

(* ----- summaries and walk context ----- *)

type summary = {
  mutable acq : S.t;  (* locks this def may (transitively) acquire *)
  mutable app : S.t;  (* locks held where it may invoke a parameter *)
}

type gctx = {
  ids : identities;
  modname : string;
  summaries : (string * string, summary) Hashtbl.t;
  locals : (string, summary) Hashtbl.t;
  aliases : (string, string) Hashtbl.t;
  mutable params : S.t;  (* parameter names of the def being walked *)
  mutable edges : Location.t Edges.t;
  mutable acquired : S.t;
  mutable applies : S.t;
}

let resolve_summary ctx key =
  match key with
  | None -> None
  | Some (Some m, v) -> Hashtbl.find_opt ctx.summaries (m, v)
  | Some (None, v) -> (
    match Hashtbl.find_opt ctx.locals v with
    | Some s -> Some s
    | None -> Hashtbl.find_opt ctx.summaries (ctx.modname, v))

let head_key ctx e =
  match Taint.head_of e with
  | None -> None
  | Some parts ->
    let parts =
      match parts with
      | m :: rest when Hashtbl.mem ctx.aliases m ->
        Hashtbl.find ctx.aliases m :: rest
      | _ -> parts
    in
    Program.ref_key parts

let is_param ctx e =
  match e.pexp_desc with
  | Pexp_ident { txt = Longident.Lident v; _ } -> S.mem v ctx.params
  | _ -> false

(* Resolve a lock expression to its possible identities. [env] maps
   locally [let]-bound variables to lock-name sets. *)
let rec resolve_lock ctx env e : S.t =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> (
    match Program.strip_lib (Longident.flatten txt) with
    | [ v ] -> (
      match List.assoc_opt v env with
      | Some s -> s
      | None ->
        Option.value ~default:S.empty
          (Hashtbl.find_opt ctx.ids.vars (ctx.modname, v)))
    | [ m; v ] ->
      Option.value ~default:S.empty (Hashtbl.find_opt ctx.ids.vars (m, v))
    | _ -> S.empty)
  | Pexp_field (_, { txt; _ }) -> (
    match List.rev (Longident.flatten txt) with
    | label :: _ -> (
      match Hashtbl.find_opt ctx.ids.unit_fields (ctx.modname, label) with
      | Some s -> s
      | None ->
        Option.value ~default:S.empty (Hashtbl.find_opt ctx.ids.fields label))
    | [] -> S.empty)
  | Pexp_constraint (e, _) -> resolve_lock ctx env e
  | _ -> S.empty

let record_edges ctx ~loc held locks =
  S.iter
    (fun l ->
      S.iter
        (fun h ->
          if h <> l && not (Edges.mem (h, l) ctx.edges) then
            ctx.edges <- Edges.add (h, l) loc ctx.edges)
        held)
    locks

let acquire ctx ~loc held locks =
  record_edges ctx ~loc held locks;
  ctx.acquired <- S.union ctx.acquired locks

(* Walk an expression under [held]; returns the held-set for the next
   statement in an enclosing sequence (raw [Mutex.lock]/[unlock]
   mutate it). *)
let rec walk ctx env held e : S.t =
  match e.pexp_desc with
  | Pexp_apply (h, args) -> walk_apply ctx env held e h args
  | Pexp_sequence (a, b) ->
    let held' = walk ctx env held a in
    walk ctx env held' b
  | Pexp_let (_, vbs, body) ->
    let env' =
      List.fold_left
        (fun acc vb ->
          ignore (walk ctx acc held vb.pvb_expr);
          match (Rules.binding_name vb.pvb_pat, lockdep_create_name vb.pvb_expr)
          with
          | Some v, Some name -> (v, S.singleton name) :: acc
          | Some v, None when is_mutex_create vb.pvb_expr ->
            (v, S.singleton (ctx.modname ^ "." ^ v)) :: acc
          | _ -> acc)
        env vbs
    in
    ignore (walk ctx env' held body);
    held
  (* a lambda not in argument position runs at an unknown later point:
     nothing can be assumed held *)
  | Pexp_fun (_, _, _, body) | Pexp_newtype (_, body) ->
    ignore (walk ctx env S.empty body);
    held
  | Pexp_function cases ->
    List.iter (fun c -> ignore (walk ctx env S.empty c.pc_rhs)) cases;
    held
  | Pexp_match (scrut, cases) | Pexp_try (scrut, cases) ->
    ignore (walk ctx env held scrut);
    List.iter
      (fun c ->
        (match c.pc_guard with
        | Some g -> ignore (walk ctx env held g)
        | None -> ());
        ignore (walk ctx env held c.pc_rhs))
      cases;
    held
  | Pexp_ifthenelse (c, a, b) ->
    ignore (walk ctx env held c);
    ignore (walk ctx env held a);
    (match b with Some b -> ignore (walk ctx env held b) | None -> ());
    held
  | Pexp_tuple es | Pexp_array es ->
    List.iter (fun e -> ignore (walk ctx env held e)) es;
    held
  | Pexp_construct (_, Some a) | Pexp_variant (_, Some a) ->
    ignore (walk ctx env held a);
    held
  | Pexp_record (fls, base) ->
    List.iter (fun (_, e) -> ignore (walk ctx env held e)) fls;
    (match base with Some b -> ignore (walk ctx env held b) | None -> ());
    held
  | Pexp_field (b, _) ->
    ignore (walk ctx env held b);
    held
  | Pexp_setfield (a, _, b) ->
    ignore (walk ctx env held a);
    ignore (walk ctx env held b);
    held
  | Pexp_constraint (e, _) | Pexp_coerce (e, _, _) | Pexp_open (_, e)
  | Pexp_lazy e | Pexp_assert e ->
    walk ctx env held e
  | Pexp_while (c, body) ->
    ignore (walk ctx env held c);
    ignore (walk ctx env held body);
    held
  | Pexp_for (_, lo, hi, _, body) ->
    ignore (walk ctx env held lo);
    ignore (walk ctx env held hi);
    ignore (walk ctx env held body);
    held
  | Pexp_letmodule (_, _, body) | Pexp_letexception (_, body) ->
    walk ctx env held body
  | _ -> held

and walk_apply ctx env held app h args =
  let loc = app.pexp_loc in
  match (Taint.head_of h |> Option.map Program.strip_lib, args) with
  | Some [ "Lockdep"; "with_lock" ], (_, lockexpr) :: rest ->
    let locks = resolve_lock ctx env lockexpr in
    acquire ctx ~loc held locks;
    let inner = S.union held locks in
    List.iter (fun (_, a) -> run_arg ctx env ~invokes:true ~under:inner a) rest;
    held
  | Some ([ "Mutex"; "lock" ] | [ "Lockdep"; "lock" ]), [ (_, lockexpr) ] ->
    let locks = resolve_lock ctx env lockexpr in
    acquire ctx ~loc held locks;
    S.union held locks
  | Some ([ "Mutex"; "unlock" ] | [ "Lockdep"; "unlock" ]), [ (_, lockexpr) ]
    ->
    S.diff held (resolve_lock ctx env lockexpr)
  (* the spawned body runs on a fresh domain/thread holding nothing *)
  | Some ([ "Domain"; "spawn" ] | [ "Thread"; "create" ]), _ ->
    List.iter
      (fun (_, a) -> run_arg ctx env ~invokes:true ~under:S.empty a)
      args;
    held
  | _ ->
    let under, invokes =
      match resolve_summary ctx (head_key ctx h) with
      | Some s ->
        (* known callee: everything it acquires nests under what we
           hold; its function arguments run under app(s).  It counts
           as invoking ident parameters only when app(s) is nonempty —
           i.e. it demonstrably invokes a parameter under a lock —
           otherwise every data argument that happens to be one of our
           parameters would record a bogus applies fact *)
        record_edges ctx ~loc held s.acq;
        ctx.acquired <- S.union ctx.acquired s.acq;
        (S.union held s.app, not (S.is_empty s.app))
      | None ->
        (* unknown callee ([Fun.protect], [List.iter], ...): assume it
           may invoke its function arguments synchronously, under what
           we currently hold.  Only [Fun.protect] is trusted to invoke
           a bare ident argument (the mutex-release idiom); anything
           else gets that credit only for syntactic lambdas — an ident
           passed to an arbitrary callee (or an operator like [<]) is
           usually data, not a callback *)
        let fp =
          Taint.head_of h |> Option.map Program.strip_lib
          = Some [ "Fun"; "protect" ]
        in
        (held, fp)
    in
    List.iter (fun (_, a) -> run_arg ctx env ~invokes ~under a) args;
    held

(* A callee argument, assumed to run under [under]: lambdas descend
   with that held-set; a parameter of the current def records an
   [applies] fact when the callee is known to invoke it; an ident
   naming a known def contributes that def's acquisitions as edges. *)
and run_arg ctx env ~invokes ~under a =
  match a.pexp_desc with
  | Pexp_fun (_, _, _, body) | Pexp_newtype (_, body) ->
    ignore (walk ctx env under body)
  | Pexp_function cases ->
    List.iter (fun c -> ignore (walk ctx env under c.pc_rhs)) cases
  | Pexp_ident _ when is_param ctx a ->
    if invokes && not (S.is_empty under) then
      ctx.applies <- S.union ctx.applies under
  | Pexp_ident _ -> (
    match resolve_summary ctx (head_key ctx a) with
    | Some s when invokes ->
      record_edges ctx ~loc:a.pexp_loc under s.acq;
      ctx.acquired <- S.union ctx.acquired s.acq
    | _ -> ())
  | _ -> ignore (walk ctx env under a)

let rec param_names e =
  match e.pexp_desc with
  | Pexp_fun (_, _, p, body) ->
    List.fold_left
      (fun s v -> S.add v s)
      (param_names body)
      (Taint.pat_vars p)
  | Pexp_newtype (_, body) -> param_names body
  | _ -> S.empty

(* ----- analysis entry ----- *)

type result = {
  findings : Finding.t list;
  edges : (string * string * Location.t) list;
}

let analyze ?(expected = []) (units : Program.unit_ list) : result =
  let units = List.filter (fun u -> not (excluded_unit u)) units in
  let ids = collect_identities units in
  let per_unit =
    List.map
      (fun (u : Program.unit_) ->
        let aliases, _globals, defs = Taint.collect_unit u in
        (u, aliases, defs))
      units
  in
  let summaries : (string * string, summary) Hashtbl.t = Hashtbl.create 128 in
  let unit_locals : (string, (string, summary) Hashtbl.t) Hashtbl.t =
    Hashtbl.create 32
  in
  List.iter
    (fun ((u : Program.unit_), _aliases, defs) ->
      let locals = Hashtbl.create 16 in
      Hashtbl.replace unit_locals u.Program.path locals;
      List.iter
        (fun (name, _) ->
          let s = { acq = S.empty; app = S.empty } in
          if not (Hashtbl.mem summaries (u.Program.modname, name)) then
            Hashtbl.replace summaries (u.Program.modname, name) s;
          if not (Hashtbl.mem locals name) then Hashtbl.replace locals name s)
        defs)
    per_unit;
  let ctx_for (u : Program.unit_) aliases =
    {
      ids;
      modname = u.Program.modname;
      summaries;
      locals =
        Option.value
          ~default:(Hashtbl.create 1)
          (Hashtbl.find_opt unit_locals u.Program.path);
      aliases;
      params = S.empty;
      edges = Edges.empty;
      acquired = S.empty;
      applies = S.empty;
    }
  in
  (* fixpoint on (acq, app) summaries; the edge set of the final round
     is the graph *)
  let changed = ref true in
  let rounds = ref 0 in
  let final_edges = ref Edges.empty in
  while !changed && !rounds < 12 do
    changed := false;
    incr rounds;
    final_edges := Edges.empty;
    List.iter
      (fun ((u : Program.unit_), aliases, defs) ->
        let ctx = ctx_for u aliases in
        List.iter
          (fun (name, expr) ->
            ctx.params <- param_names expr;
            ctx.acquired <- S.empty;
            ctx.applies <- S.empty;
            ctx.edges <- Edges.empty;
            ignore (walk ctx [] S.empty expr);
            (match Hashtbl.find_opt ctx.locals name with
            | Some s ->
              if
                not
                  (S.subset ctx.acquired s.acq && S.subset ctx.applies s.app)
              then begin
                s.acq <- S.union s.acq ctx.acquired;
                s.app <- S.union s.app ctx.applies;
                changed := true
              end
            | None -> ());
            Edges.iter
              (fun k loc ->
                if not (Edges.mem k !final_edges) then
                  final_edges := Edges.add k loc !final_edges)
              ctx.edges)
          defs)
      per_unit
  done;
  let edges =
    Edges.fold (fun (a, b) loc acc -> (a, b, loc) :: acc) !final_edges []
    |> List.sort (fun (a1, b1, _) (a2, b2, _) ->
           match String.compare a1 a2 with
           | 0 -> String.compare b1 b2
           | c -> c)
  in
  let findings = ref [] in
  let report ~loc msg =
    let p = loc.Location.loc_start in
    let file = p.Lexing.pos_fname in
    findings :=
      Finding.make ~rule:"R9" ~severity:Finding.Error ~file
        ~line:p.Lexing.pos_lnum
        ~col:(p.Lexing.pos_cnum - p.Lexing.pos_bol)
        msg
      :: !findings
  in
  (* cycles: for each edge, is its head reachable back from its tail? *)
  let succs = Hashtbl.create 32 in
  List.iter
    (fun (a, b, loc) ->
      let cur = Option.value ~default:[] (Hashtbl.find_opt succs a) in
      Hashtbl.replace succs a ((b, loc) :: cur))
    edges;
  let reported_cycles = Hashtbl.create 4 in
  List.iter
    (fun (a, b, loc) ->
      let seen = Hashtbl.create 16 in
      let rec reach n =
        if n = a then true
        else if Hashtbl.mem seen n then false
        else begin
          Hashtbl.replace seen n ();
          List.exists
            (fun (m, _) -> reach m)
            (Option.value ~default:[] (Hashtbl.find_opt succs n))
        end
      in
      let cyc_key = if a < b then (a, b) else (b, a) in
      if reach b && not (Hashtbl.mem reported_cycles cyc_key) then begin
        Hashtbl.replace reported_cycles cyc_key ();
        report ~loc
          (Printf.sprintf
             "lock-order cycle: '%s' -> '%s' closes a cycle in the static \
              acquisition graph (potential deadlock)"
             a b)
      end)
    edges;
  (* contradictions against the runtime export *)
  List.iter
    (fun (a, b, loc) ->
      if List.mem (b, a) expected then
        report ~loc
          (Printf.sprintf
             "lock order '%s' -> '%s' contradicts the runtime lockdep export \
              (lint/lock_order.expected records '%s' -> '%s'); re-run make \
              lockdep-export or fix the acquisition order"
             a b b a))
    edges;
  { findings = List.sort_uniq Finding.order !findings; edges }

let to_dot edges =
  let b = Buffer.create 256 in
  Buffer.add_string b "digraph lock_order {\n";
  List.iter
    (fun (x, y, loc) ->
      let p = loc.Location.loc_start in
      let where =
        if p.Lexing.pos_fname = "" then ""
        else Printf.sprintf "  // %s:%d" p.Lexing.pos_fname p.Lexing.pos_lnum
      in
      Buffer.add_string b (Printf.sprintf "  %S -> %S;%s\n" x y where))
    edges;
  Buffer.add_string b "}\n";
  Buffer.contents b
