(* A single rule violation: where, which rule, how severe, and a
   message a reader can act on without opening the rule catalogue. *)

type severity = Error | Warning

type t = {
  rule : string;  (* "R1" .. "R5", or "parse" for unreadable sources *)
  severity : severity;
  file : string;  (* repo-relative path, '/'-separated *)
  line : int;  (* 1-based *)
  col : int;  (* 0-based, matching compiler locations *)
  message : string;
}

let severity_name = function Error -> "error" | Warning -> "warning"

let make ~rule ~severity ~file ~line ~col message =
  { rule; severity; file; line; col; message }

(* Stable report order: file, then position, then rule. *)
let order a b =
  match String.compare a.file b.file with
  | 0 -> (
    match Int.compare a.line b.line with
    | 0 -> (
      match Int.compare a.col b.col with
      | 0 -> String.compare a.rule b.rule
      | c -> c)
    | c -> c)
  | c -> c

let to_line f =
  Printf.sprintf "%s:%d:%d: [%s/%s] %s" f.file f.line f.col f.rule
    (severity_name f.severity) f.message

let pp ppf f = Format.pp_print_string ppf (to_line f)
