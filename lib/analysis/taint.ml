(* Interprocedural Byzantine-taint analysis (rules R6–R8).

   The paper's correctness story rests on one invariant: every byte a
   node receives may be chosen by the adversary, and must cross a total
   decode / RS-verification boundary before it can influence coded
   state (Table 2 is exactly about how much corrupted input that
   boundary absorbs).  This pass checks the invariant as dataflow over
   the whole program:

     lattice     Untrusted ⊏ Checked ⊏ Trusted  (join = worst)
     sources     wire-frame decodes ([Frame.decode]/[of_header]/
                 [decode_header] — framing is validated, the payload
                 bytes inside are still adversary-chosen), transport
                 reads ([Transport.recv], [Unix.read]/[recv]), and the
                 telemetry bundle/delta decodes in lib/obs/agg.ml
                 (shape-validated, values still adversary-chosen)
     sanitizers  total [decode_*]/[of_header]/[of_wire] returning
                 [option]/[result]: matching [Some]/[Ok] marks both the
                 bound value and the sanitized argument expressions as
                 Checked
     sinks       protocol/ledger state mutation (engine, smr, the node
                 runtime's inbox, consensus), decision commits,
                 adversary-indexable [get]/[set]/[sub], field-kernel
                 entry points, and metric families that feed alerting

   R6  an Untrusted value reaches a sink (directly, or as an argument
       to a function whose body lets a parameter reach one)
   R7  a sanitizer's option/result verdict is discarded or bypassed
       ([ignore]/[let _]/sequencing/[Option.get]/[Result.get_ok])
   R8  an Untrusted value is stored into module-level mutable state
       not registered in lint/shared_state.allow — where taint would
       escape any per-call-path analysis

   Interprocedural machinery: one summary per top-level (or
   functor-nested) binding, computed to a fixpoint over the call graph
   resolved from (module, value) pairs (module aliases like
   [module W = Csm_core.Wire.Make (F)] are followed).  Each summary
   holds the return taint with parameters assumed Trusted ([base]),
   whether parameter taint can flow to the return ([propagates]), and
   which parameters reach a sink inside when Untrusted ([sink_params],
   keyed by positional ordinal or ~label so call sites flag only the
   arguments that actually flow to the sink).
   Unknown callees conservatively propagate the join of their
   arguments.  Known blind spot, accepted for signal/noise: taint does
   not flow into lambdas passed to higher-order functions (their
   parameters start Trusted). *)

open Parsetree

type level =
  | Trusted
  | Checked  (* crossed a total-decode boundary *)
  | Untrusted of string  (* origin, for actionable messages *)

let join a b =
  match (a, b) with
  | (Untrusted _ as u), _ | _, (Untrusted _ as u) -> u
  | Checked, _ | _, Checked -> Checked
  | Trusted, Trusted -> Trusted

let is_untrusted = function Untrusted _ -> true | _ -> false

let origin = function Untrusted o -> o | _ -> "?"

(* The marker origin of the params-assumed-Untrusted summary runs; a
   sink hit with this origin is a *conditional* finding, surfaced only
   at call sites that pass genuinely Untrusted arguments. *)
let param_origin = "parameter"

(* ----- configuration: sources ----- *)

(* (module, value) call heads whose results are adversary-controlled.
   [Agg.decode_bundle]/[decode_delta] are deliberately sources, not
   sanitizers, despite the [decode_] name: they validate shape, but the
   carried metric/event *values* remain whatever the peer claims. *)
let source_refs =
  [
    (Some "Frame", "decode");
    (Some "Frame", "of_header");
    (Some "Frame", "decode_header");
    (Some "Transport", "recv");
    (Some "Unix", "read");
    (Some "Unix", "recv");
    (Some "Agg", "decode_bundle");
    (Some "Agg", "decode_delta");
  ]

let source_ref key =
  match key with
  | None -> false
  | Some (m, v) ->
    List.exists
      (fun (sm, sv) ->
        sv = v && (sm = m || (m = None && sm <> None (* local def in own file *) && false)))
      source_refs

(* A definition [name] inside module [modname] that IS one of the
   configured boundaries: its summary returns Untrusted no matter what
   its body looks like (covers unqualified local calls too). *)
let source_def ~modname ~name =
  List.exists
    (fun (sm, sv) -> sm = Some modname && sv = name)
    source_refs

(* ----- configuration: sanitizers ----- *)

let sanitizer_name v =
  v = "decode" || v = "of_header" || v = "of_wire"
  || (String.length v > 7 && String.sub v 0 7 = "decode_")
  || v = "int_of_string_opt" || v = "float_of_string_opt"
  || v = "kind_of_tag"

let sanitizer_ref key =
  match key with
  | None -> false
  | Some ((_, v) as k) -> sanitizer_name v && not (source_ref (Some k))

(* ----- configuration: sinks ----- *)

type sink = {
  k_mod : string option;  (* None: match any qualification *)
  k_val : string;
  k_pos : int list option;  (* argument positions that must not be
                               Untrusted (0-based over the given args);
                               None = every argument *)
  k_scope : string list;  (* path prefixes; [] = all of lib/ and bin/ *)
  k_what : string;
}

(* Where protocol/ledger state lives: a mutation fed by Untrusted data
   here is the adversary writing coded state. *)
let state_scope =
  [
    "lib/core/engine."; "lib/smr/"; "lib/transport/node."; "lib/consensus/";
  ]

let sinks =
  [
    (* adversary-controlled indexing / slicing, anywhere in lib *)
    { k_mod = Some "String"; k_val = "get"; k_pos = Some [ 1 ];
      k_scope = [ "lib/" ]; k_what = "string indexing" };
    { k_mod = Some "String"; k_val = "sub"; k_pos = Some [ 1; 2 ];
      k_scope = [ "lib/" ]; k_what = "string slicing" };
    { k_mod = Some "String"; k_val = "get_int32_be"; k_pos = Some [ 1 ];
      k_scope = [ "lib/" ]; k_what = "string indexing" };
    { k_mod = Some "String"; k_val = "get_int64_be"; k_pos = Some [ 1 ];
      k_scope = [ "lib/" ]; k_what = "string indexing" };
    { k_mod = Some "Bytes"; k_val = "get"; k_pos = Some [ 1 ];
      k_scope = [ "lib/" ]; k_what = "bytes indexing" };
    { k_mod = Some "Bytes"; k_val = "set"; k_pos = Some [ 1 ];
      k_scope = [ "lib/" ]; k_what = "bytes indexing" };
    { k_mod = Some "Bytes"; k_val = "create"; k_pos = Some [ 0 ];
      k_scope = [ "lib/" ]; k_what = "buffer sizing" };
    { k_mod = Some "Array"; k_val = "get"; k_pos = Some [ 1 ];
      k_scope = [ "lib/" ]; k_what = "array indexing" };
    { k_mod = Some "Array"; k_val = "set"; k_pos = Some [ 1 ];
      k_scope = [ "lib/" ]; k_what = "array indexing" };
    { k_mod = Some "Array"; k_val = "make"; k_pos = Some [ 0 ];
      k_scope = [ "lib/" ]; k_what = "array sizing" };
    (* protocol / ledger state mutation *)
    (* key and value positions; the table handle itself (arg 0) is the
       state being written, not the adversary's lever *)
    { k_mod = Some "Hashtbl"; k_val = "replace"; k_pos = Some [ 1; 2 ];
      k_scope = state_scope; k_what = "protocol-state table write" };
    { k_mod = Some "Hashtbl"; k_val = "add"; k_pos = Some [ 1; 2 ];
      k_scope = state_scope; k_what = "protocol-state table write" };
    { k_mod = None; k_val = ":="; k_pos = Some [ 1 ]; k_scope = state_scope;
      k_what = "protocol-state write" };
    (* consensus decision commit *)
    { k_mod = None; k_val = "on_decide"; k_pos = None;
      k_scope = [ "lib/consensus/" ]; k_what = "consensus decision commit" };
    (* metric families that feed alerting *)
    { k_mod = Some "Metric"; k_val = "set"; k_pos = None; k_scope = [ "lib/" ];
      k_what = "alert-feeding metric write" };
    { k_mod = Some "Metric"; k_val = "add"; k_pos = None; k_scope = [ "lib/" ];
      k_what = "alert-feeding metric write" };
    { k_mod = Some "Metric"; k_val = "observe"; k_pos = None;
      k_scope = [ "lib/" ]; k_what = "alert-feeding metric write" };
    { k_mod = Some "Metric"; k_val = "inc"; k_pos = None; k_scope = [ "lib/" ];
      k_what = "alert-feeding metric write" };
    (* field-op kernel entry points *)
    { k_mod = Some "Bytes_kernel"; k_val = "axpy"; k_pos = None;
      k_scope = [ "lib/" ]; k_what = "field kernel" };
    { k_mod = Some "Bytes_kernel"; k_val = "dot"; k_pos = None;
      k_scope = [ "lib/" ]; k_what = "field kernel" };
    { k_mod = Some "Bytes_kernel"; k_val = "scale"; k_pos = None;
      k_scope = [ "lib/" ]; k_what = "field kernel" };
    { k_mod = Some "Bytes_kernel"; k_val = "eval_many"; k_pos = None;
      k_scope = [ "lib/" ]; k_what = "field kernel" };
  ]

let in_scope path prefixes =
  match prefixes with
  | [] ->
    Rules.starts_with "lib/" path || Rules.starts_with "bin/" path
  | ps -> List.exists (fun p -> Rules.starts_with p path) ps

let sink_matches ~path key =
  match key with
  | None -> []
  | Some (m, v) ->
    List.filter
      (fun s ->
        s.k_val = v
        && (match s.k_mod with None -> true | Some sm -> m = Some sm)
        && in_scope path s.k_scope)
      sinks

(* Record-field assignment counts as a state write in the state scope
   (the engine's [t.coded_states.(i) <- ...] family). *)
let setfield_sink path = List.exists (fun p -> Rules.starts_with p path) state_scope

(* ----- expression paths (for the validated-argument refinement) ----- *)

(* "fr.Frame.payload" → ["fr"; "Frame"; "payload"]; used to mark the
   exact expressions a sanitizer just validated as Checked inside the
   [Some]/[Ok] branch. *)
let rec expr_path e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> Some (Longident.flatten txt)
  | Pexp_field (b, { txt; _ }) -> (
    match expr_path b with
    | Some p -> Some (p @ Longident.flatten txt)
    | None -> None)
  | Pexp_constraint (e, _) -> expr_path e
  | _ -> None

module Paths = Set.Make (struct
  type t = string list

  let compare = List.compare String.compare
end)

(* ----- summaries ----- *)

type summary = {
  mutable base : level;  (* return taint, parameters Trusted *)
  mutable propagates : bool;  (* Untrusted parameters can reach the return *)
  mutable sink_params : string list;  (* parameters (positional ordinal
                                         "0"/"1"/…, labelled "~l") that
                                         reach a sink inside the body
                                         when Untrusted *)
}

type def = {
  d_unit : Program.unit_;
  d_name : string;
  d_expr : expression;
  d_summary : summary;
}

type env = {
  vars : (string * level) list;
  checked : Paths.t;  (* expression paths validated on this branch *)
}

type ctx = {
  path : string;
  registry : (string, unit) Hashtbl.t;
  (* module aliases of the current unit: "W" → "Wire" *)
  aliases : (string, string) Hashtbl.t;
  (* module-level mutable bindings of the current unit (R8) *)
  globals : (string, unit) Hashtbl.t;
  (* global defs: (module, value) → summary; local defs: value → summary *)
  defs : (string * string, summary) Hashtbl.t;
  locals : (string, summary) Hashtbl.t;
  report : (loc:Location.t -> rule:string -> string -> unit) option;
}

(* Resolve a value reference through the unit's module aliases and the
   library-prefix stripping. *)
let resolve_key ctx parts =
  let parts =
    match parts with
    | m :: rest when Hashtbl.mem ctx.aliases m -> Hashtbl.find ctx.aliases m :: rest
    | _ -> parts
  in
  Program.ref_key parts

let rec head_of e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> Some (Longident.flatten txt)
  | Pexp_field (_, { txt; _ }) -> Some (Longident.flatten txt)
  | Pexp_constraint (e, _) -> head_of e
  | _ -> None

let head_key ctx e =
  match head_of e with None -> None | Some parts -> resolve_key ctx parts

let summary_of ctx key =
  match key with
  | None -> None
  | Some (Some m, v) -> Hashtbl.find_opt ctx.defs (m, v)
  | Some (None, v) -> Hashtbl.find_opt ctx.locals v

let lookup env name =
  match List.assoc_opt name env.vars with Some l -> l | None -> Trusted

let bind env name level = { env with vars = (name, level) :: env.vars }

(* Every variable a pattern binds. *)
let rec pat_vars p =
  match p.ppat_desc with
  | Ppat_var { txt; _ } -> [ txt ]
  | Ppat_alias (p, { txt; _ }) -> txt :: pat_vars p
  | Ppat_tuple ps | Ppat_array ps -> List.concat_map pat_vars ps
  | Ppat_construct (_, Some (_, p)) | Ppat_variant (_, Some p) -> pat_vars p
  | Ppat_record (fields, _) -> List.concat_map (fun (_, p) -> pat_vars p) fields
  | Ppat_or (a, b) -> pat_vars a @ pat_vars b
  | Ppat_constraint (p, _) | Ppat_open (_, p) | Ppat_lazy p
  | Ppat_exception p ->
    pat_vars p
  | _ -> []

let bind_pattern env p level =
  List.fold_left (fun env v -> bind env v level) env (pat_vars p)

(* Is [p] a success pattern of a sanitizer verdict ([Some _]/[Ok _])? *)
let rec success_pattern p =
  match p.ppat_desc with
  | Ppat_construct ({ txt; _ }, _) -> (
    match Longident.flatten txt with
    | [ "Some" ] | [ "Ok" ] -> true
    | _ -> false)
  | Ppat_alias (p, _) | Ppat_constraint (p, _) -> success_pattern p
  | _ -> false

(* A sanitizer application, seen through pipes: returns its argument
   expressions (the values being validated). *)
let rec sanitizer_app ctx e =
  match e.pexp_desc with
  | Pexp_apply (h, args) -> (
    match head_of h with
    | Some [ "|>" ] -> (
      match args with
      | [ (_, lhs); (_, rhs) ] -> (
        match sanitizer_app ctx rhs with
        | Some more -> Some (lhs :: more)
        | None ->
          if sanitizer_ref (head_key ctx rhs) then Some [ lhs ] else None)
      | _ -> None)
    | Some [ "@@" ] -> (
      match args with
      | [ (_, lhs); (_, rhs) ] -> (
        match sanitizer_app ctx lhs with
        | Some more -> Some (rhs :: more)
        | None ->
          if sanitizer_ref (head_key ctx lhs) then Some [ rhs ] else None)
      | _ -> None)
    | _ ->
      if sanitizer_ref (head_key ctx h) then Some (List.map snd args) else None)
  | Pexp_constraint (e, _) -> sanitizer_app ctx e
  | _ -> None

let report ctx ~loc ~rule msg =
  match ctx.report with None -> () | Some f -> f ~loc ~rule msg

let mute ctx = { ctx with report = None }

let sanitizer_display _ctx e =
  match e.pexp_desc with
  | Pexp_apply (h, _) -> (
    match head_of h with
    | Some parts -> String.concat "." parts
    | None -> "sanitizer")
  | _ -> "sanitizer"

(* ----- the core walk ----- *)

(* Evaluates [e]'s taint under [env], reporting sink hits as it goes.
   Interprocedural effects come from [ctx.defs]/[ctx.locals]. *)
let rec eval ctx env e : level =
  match e.pexp_desc with
  | Pexp_constant _ | Pexp_unreachable -> Trusted
  | Pexp_ident { txt; _ } -> (
    let parts = Longident.flatten txt in
    match parts with
    | [ v ] -> (
      match expr_path e with
      | Some p when Paths.mem p env.checked -> Checked
      | _ -> lookup env v)
    | _ ->
      if source_ref (resolve_key ctx parts) then
        Untrusted (String.concat "." parts)
      else Trusted)
  | Pexp_field (b, _) -> (
    match expr_path e with
    | Some p when Paths.mem p env.checked -> Checked
    | _ -> eval ctx env b)
  | Pexp_apply (h, args) -> eval_apply ctx env e h args
  | Pexp_let (_, vbs, body) ->
    let env' =
      List.fold_left
        (fun acc vb ->
          (* [let _ = sanitizer ...] discards the verdict *)
          (match (vb.pvb_pat.ppat_desc, sanitizer_app ctx vb.pvb_expr) with
          | Ppat_any, Some _ ->
            report ctx ~loc:vb.pvb_loc ~rule:"R7"
              (Printf.sprintf
                 "%s's verdict is discarded (let _): act on the option/result \
                  or drop the call"
                 (sanitizer_display ctx vb.pvb_expr))
          | _ -> ());
          let t = eval ctx env vb.pvb_expr in
          bind_pattern acc vb.pvb_pat t)
        env vbs
    in
    eval ctx env' body
  | Pexp_match (scrut, cases) | Pexp_try (scrut, cases) ->
    let t = eval ctx env scrut in
    let validated =
      match sanitizer_app ctx scrut with
      | None -> []
      | Some args -> List.filter_map expr_path args
    in
    List.fold_left
      (fun acc c ->
        let success = success_pattern c.pc_lhs in
        let env' =
          if validated <> [] && success then
            let checked =
              List.fold_left (fun s p -> Paths.add p s) env.checked validated
            in
            bind_pattern { env with checked } c.pc_lhs Checked
          else bind_pattern env c.pc_lhs t
        in
        let env' =
          match c.pc_guard with
          | Some g ->
            ignore (eval ctx env' g);
            { env' with checked = Paths.union env'.checked (guard_checked ctx env' g) }
          | None -> env'
        in
        join acc (eval ctx env' c.pc_rhs))
      Trusted cases
  | Pexp_function cases ->
    List.iter
      (fun c ->
        let env' = bind_pattern env c.pc_lhs Trusted in
        ignore (eval ctx env' c.pc_rhs))
      cases;
    Trusted
  | Pexp_fun (_, default, p, body) ->
    (match default with Some d -> ignore (eval ctx env d) | None -> ());
    ignore (eval ctx (bind_pattern env p Trusted) body);
    Trusted
  | Pexp_ifthenelse (c, a, b) ->
    ignore (eval ctx env c);
    (* the condition's range comparisons validate their operands on the
       then-branch only *)
    let env_then =
      { env with checked = Paths.union env.checked (guard_checked ctx env c) }
    in
    let t = eval ctx env_then a in
    (match b with Some b -> join t (eval ctx env b) | None -> t)
  | Pexp_sequence (a, b) ->
    (match sanitizer_app ctx a with
    | Some _ ->
      report ctx ~loc:a.pexp_loc ~rule:"R7"
        (Printf.sprintf
           "%s's verdict is discarded (sequenced away): act on the \
            option/result or drop the call"
           (sanitizer_display ctx a))
    | None -> ());
    ignore (eval ctx env a);
    eval ctx env b
  | Pexp_tuple es | Pexp_array es ->
    List.fold_left (fun acc e -> join acc (eval ctx env e)) Trusted es
  | Pexp_construct (_, arg) | Pexp_variant (_, arg) -> (
    match arg with Some a -> eval ctx env a | None -> Trusted)
  | Pexp_record (fields, base) ->
    let t =
      List.fold_left
        (fun acc (_, e) -> join acc (eval ctx env e))
        Trusted fields
    in
    (match base with Some b -> join t (eval ctx env b) | None -> t)
  | Pexp_setfield (tgt, fld, v) ->
    let tv = eval ctx env v in
    ignore (eval ctx env tgt);
    (if is_untrusted tv && setfield_sink ctx.path then
       let name = String.concat "." (Longident.flatten fld.txt) in
       report ctx ~loc:e.pexp_loc ~rule:"R6"
         (Printf.sprintf
            "untrusted value (%s) written to protocol state field '%s' \
             without a sanitizer"
            (origin tv) name));
    Trusted
  | Pexp_constraint (e, _) | Pexp_coerce (e, _, _) | Pexp_newtype (_, e)
  | Pexp_open (_, e) | Pexp_lazy e | Pexp_assert e ->
    eval ctx env e
  | Pexp_while (c, body) ->
    ignore (eval ctx env c);
    ignore (eval ctx env body);
    Trusted
  | Pexp_for (p, lo, hi, _, body) ->
    ignore (eval ctx env lo);
    ignore (eval ctx env hi);
    ignore (eval ctx (bind_pattern env p Trusted) body);
    Trusted
  | Pexp_letmodule (_, _, body) | Pexp_letexception (_, body) ->
    eval ctx env body
  | _ -> Trusted

and eval_apply ctx env app h args =
  let key = head_key ctx h in
  let arg_ts = List.map (fun (_, a) -> eval ctx env a) args in
  (* R7: verdict bypass / discard through this application *)
  (match (head_of h, args) with
  | Some ([ "ignore" ] | [ "Stdlib"; "ignore" ]), [ (_, a) ] -> (
    match sanitizer_app ctx a with
    | Some _ ->
      report ctx ~loc:a.pexp_loc ~rule:"R7"
        (Printf.sprintf
           "%s's verdict is discarded (ignore): act on the option/result or \
            drop the call"
           (sanitizer_display ctx a))
    | None -> ())
  | Some ([ "Option"; "get" ] | [ "Result"; "get_ok" ]), [ (_, a) ] -> (
    match sanitizer_app ctx a with
    | Some _ ->
      report ctx ~loc:app.pexp_loc ~rule:"R7"
        (Printf.sprintf
           "%s's verdict is bypassed with %s: a Byzantine payload turns this \
            into a crash — match on the option/result instead"
           (sanitizer_display ctx a)
           (String.concat "." (Option.value ~default:[] (head_of h))))
    | None -> ())
  | _ -> ());
  (* R6: direct sink arguments *)
  List.iter
    (fun s ->
      List.iteri
        (fun i t ->
          let watched =
            match s.k_pos with None -> true | Some ps -> List.mem i ps
          in
          if watched && is_untrusted t then
            report ctx ~loc:app.pexp_loc ~rule:"R6"
              (Printf.sprintf
                 "untrusted value (%s) reaches %s (%s, argument %d) without \
                  a sanitizer"
                 (origin t) s.k_what
                 (String.concat "."
                    (Option.value ~default:[ s.k_val ] (head_of h)))
                 i))
        arg_ts)
    (sink_matches ~path:ctx.path key);
  (* R8: untrusted store into module-level mutable state *)
  (match (head_of h, args) with
  | Some parts, (_, { pexp_desc = Pexp_ident { txt = tgt; _ }; _ }) :: _ -> (
    let store =
      match Program.strip_lib parts with
      | [ ":=" ] | [ "Hashtbl"; "replace" ] | [ "Hashtbl"; "add" ]
      | [ "Atomic"; "set" ] | [ "Queue"; "push" ] | [ "Queue"; "add" ]
      | [ "Buffer"; "add_string" ] ->
        true
      | _ -> false
    in
    match Longident.flatten tgt with
    | [ g ] when store && Hashtbl.mem ctx.globals g ->
      let tainted =
        List.exists is_untrusted (match arg_ts with _ :: rest -> rest | [] -> [])
      in
      let reg_key = ctx.path ^ ":" ^ g in
      if tainted && not (Hashtbl.mem ctx.registry reg_key) then
        let o =
          List.find_opt is_untrusted (List.tl arg_ts)
          |> Option.map origin
          |> Option.value ~default:"?"
        in
        report ctx ~loc:app.pexp_loc ~rule:"R8"
          (Printf.sprintf
             "untrusted value (%s) escapes into module-level mutable state \
              '%s'; taint stored globally outlives every per-path check — \
              sanitize first or register '%s' with its trust story"
             o g reg_key)
    | _ -> ())
  | _ -> ());
  (* result taint *)
  if source_ref key then
    Untrusted
      (String.concat "." (Option.value ~default:[ "source" ] (head_of h)))
  else if sanitizer_ref key then Checked
  else
    match head_of h with
    | Some ([ "mod" ] | [ "land" ]) ->
      (* magnitude-bounded by the right operand: the static shape of
         bounds-checked indexing (ring-buffer slot arithmetic) *)
      Checked
    | _ -> (
    match summary_of ctx key with
    | Some s ->
      let from_args =
        if s.propagates then
          List.fold_left join Trusted
            (List.filter is_untrusted arg_ts)
        else Trusted
      in
      (* interprocedural R6: this callee lets exactly these parameters
         reach a sink in its body — flag only an untrusted argument in
         one of those positions *)
      (match s.sink_params with
      | [] -> ()
      | sps ->
        let pos = ref 0 in
        List.iter2
          (fun (lbl, _) t ->
            let key =
              match lbl with
              | Asttypes.Nolabel ->
                let k = string_of_int !pos in
                incr pos;
                k
              | Asttypes.Labelled l | Asttypes.Optional l -> "~" ^ l
            in
            if List.mem key sps && is_untrusted t then
              report ctx ~loc:app.pexp_loc ~rule:"R6"
                (Printf.sprintf
                   "untrusted argument (%s) to %s, whose body lets that \
                    parameter reach a sink without a sanitizer"
                   (origin t)
                   (String.concat "."
                      (Option.value ~default:[ "callee" ] (head_of h)))))
          args arg_ts);
      join s.base from_args
    | None ->
      (* unknown callee: conservatively propagate argument taint *)
      List.fold_left join Trusted arg_ts)

(* A boolean guard's range comparisons: operand paths of <, <=, >, >=
   and = under && are validated on the branch the guard protects —
   provided the bound on the other side is itself not Untrusted
   (comparing two adversary values validates neither). *)
and guard_checked ctx env g =
  match g.pexp_desc with
  | Pexp_apply (h, [ (_, a); (_, b) ]) -> (
    match head_of h with
    | Some [ "&&" ] ->
      Paths.union (guard_checked ctx env a) (guard_checked ctx env b)
    | Some ([ "<" ] | [ "<=" ] | [ ">" ] | [ ">=" ] | [ "=" ]) ->
      let add acc operand other =
        if is_untrusted (eval (mute ctx) env other) then acc
        else
          match expr_path operand with
          | Some p -> Paths.add p acc
          | None -> acc
      in
      add (add Paths.empty a b) b a
    | _ -> Paths.empty)
  | Pexp_constraint (g, _) -> guard_checked ctx env g
  | _ -> Paths.empty

(* ----- collecting definitions ----- *)

(* Strip the parameter prefix off a binding body, binding each
   parameter at a level chosen per parameter key (positional ordinal
   "0"/"1"/… or labelled "~l" — the same keys call sites compute). *)
let rec strip_params_keyed env mk i e =
  match e.pexp_desc with
  | Pexp_fun (lbl, _, p, body) ->
    let key, i' =
      match lbl with
      | Asttypes.Nolabel -> (string_of_int i, i + 1)
      | Asttypes.Labelled l | Asttypes.Optional l -> ("~" ^ l, i)
    in
    strip_params_keyed (bind_pattern env p (mk key)) mk i' body
  | Pexp_newtype (_, body) -> strip_params_keyed env mk i body
  | _ -> (env, e)

let strip_params env level e = strip_params_keyed env (fun _ -> level) 0 e

(* Parse the parameter key back out of an "(origin)" embedded in an R6
   message from the params-Untrusted probe run. *)
let param_key_of_msg msg =
  let needle = "(" ^ param_origin ^ ":" in
  let n = String.length needle and m = String.length msg in
  let rec find i = if i + n > m then None else if String.sub msg i n = needle then Some (i + n) else find (i + 1) in
  match find 0 with
  | None -> None
  | Some start -> (
    match String.index_from_opt msg start ')' with
    | Some stop -> Some (String.sub msg start (stop - start))
    | None -> None)

let empty_env = { vars = []; checked = Paths.empty }

(* Walk a structure, collecting top-level and functor/module-nested
   value bindings, module aliases, and module-level mutable names. *)
let collect_unit (u : Program.unit_) =
  let aliases : (string, string) Hashtbl.t = Hashtbl.create 8 in
  let globals : (string, unit) Hashtbl.t = Hashtbl.create 8 in
  let defs = ref [] in
  let rec mod_tail me =
    match me.pmod_desc with
    | Pmod_ident { txt; _ } -> (
      match List.rev (Program.strip_lib (Longident.flatten txt)) with
      | last :: _ -> Some last
      | [] -> None)
    | Pmod_apply (f, _) -> mod_tail f
    | Pmod_constraint (m, _) -> mod_tail m
    | _ -> None
  in
  let rec walk_structure str =
    List.iter
      (fun si ->
        match si.pstr_desc with
        | Pstr_value (_, vbs) ->
          List.iter
            (fun vb ->
              (match Rules.binding_name vb.pvb_pat with
              | Some name ->
                defs := (name, vb.pvb_expr) :: !defs;
                (match Rules.rhs_head vb.pvb_expr with
                | Some head when Rules.r4_watched head ->
                  Hashtbl.replace globals name ()
                | _ -> ())
              | None -> ()))
            vbs
        | Pstr_module mb -> (
          let name = Option.value ~default:"_" mb.pmb_name.txt in
          match mod_tail mb.pmb_expr with
          | Some tail when tail <> name -> Hashtbl.replace aliases name tail
          | _ -> walk_module mb.pmb_expr)
        | Pstr_recmodule mbs -> List.iter (fun mb -> walk_module mb.pmb_expr) mbs
        | _ -> ())
      str
  and walk_module me =
    match me.pmod_desc with
    | Pmod_structure str -> walk_structure str
    | Pmod_functor (_, body) -> walk_module body
    | Pmod_constraint (m, _) -> walk_module m
    | _ -> ()
  in
  (match u.Program.structure with
  | Some str -> walk_structure str
  | None -> ());
  (aliases, globals, List.rev !defs)

(* ----- the whole-program pass ----- *)

let analyze ?(registry = Hashtbl.create 1) (units : Program.unit_ list) :
    Finding.t list =
  (* 1. collect *)
  let per_unit =
    List.map
      (fun u ->
        let aliases, globals, raw = collect_unit u in
        (u, aliases, globals, raw))
      units
  in
  let global_defs : (string * string, summary) Hashtbl.t = Hashtbl.create 256 in
  let unit_locals : (string, (string, summary) Hashtbl.t) Hashtbl.t =
    Hashtbl.create 64
  in
  let all_defs =
    List.concat_map
      (fun (u, _aliases, _globals, raw) ->
        let locals =
          match Hashtbl.find_opt unit_locals u.Program.path with
          | Some t -> t
          | None ->
            let t = Hashtbl.create 16 in
            Hashtbl.replace unit_locals u.Program.path t;
            t
        in
        List.map
          (fun (name, expr) ->
            let s =
              if source_def ~modname:u.Program.modname ~name then
                {
                  base = Untrusted (u.Program.modname ^ "." ^ name);
                  propagates = false;
                  sink_params = [];
                }
              else { base = Trusted; propagates = false; sink_params = [] }
            in
            (* collisions (same module name from two dirs, or shadowed
               local names): first definition wins deterministically *)
            if not (Hashtbl.mem global_defs (u.Program.modname, name)) then
              Hashtbl.replace global_defs (u.Program.modname, name) s;
            if not (Hashtbl.mem locals name) then Hashtbl.replace locals name s;
            { d_unit = u; d_name = name; d_expr = expr; d_summary = s })
          raw)
      per_unit
  in
  let ctx_for ?report (u, aliases, globals, _) =
    {
      path = u.Program.path;
      registry;
      aliases;
      globals;
      defs = global_defs;
      locals =
        Option.value
          ~default:(Hashtbl.create 1)
          (Hashtbl.find_opt unit_locals u.Program.path);
      report;
    }
  in
  let ctx_of : (string, ctx) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun ((u, _, _, _) as entry) ->
      Hashtbl.replace ctx_of u.Program.path (ctx_for entry))
    per_unit;
  (* 2. summary fixpoint *)
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds < 12 do
    changed := false;
    incr rounds;
    List.iter
      (fun d ->
        if not (source_def ~modname:d.d_unit.Program.modname ~name:d.d_name)
        then begin
          let ctx = Hashtbl.find ctx_of d.d_unit.Program.path in
          (* params-Trusted run: the unconditional return taint *)
          let env, body = strip_params empty_env Trusted d.d_expr in
          let base = eval ctx env body in
          (* params-Untrusted run: conditional return / sink reach *)
          let hits = ref [] in
          let probe =
            {
              ctx with
              report =
                Some
                  (fun ~loc ~rule msg ->
                    (* an in-source `allow R6` at the sink silences the
                       conditional summary too: the justification
                       covers every caller *)
                    if
                      rule = "R6"
                      && not
                           (Suppress.active d.d_unit.Program.suppress
                              ~rule:"R6"
                              ~line:loc.Location.loc_start.Lexing.pos_lnum)
                    then
                      match param_key_of_msg msg with
                      | Some k when not (List.mem k !hits) -> hits := k :: !hits
                      | _ -> ());
            }
          in
          let env_u, body_u =
            strip_params_keyed empty_env
              (fun k -> Untrusted (param_origin ^ ":" ^ k))
              0 d.d_expr
          in
          let cond = eval probe env_u body_u in
          let propagates =
            match cond with
            | Untrusted o ->
              Rules.starts_with param_origin o || is_untrusted base
            | _ -> false
          in
          let sink_params = List.sort String.compare !hits in
          let s = d.d_summary in
          if
            s.base <> base || s.propagates <> propagates
            || s.sink_params <> sink_params
          then begin
            s.base <- base;
            s.propagates <- propagates;
            s.sink_params <- sink_params;
            changed := true
          end
        end)
      all_defs
  done;
  (* 3. reporting pass *)
  let findings = ref [] in
  List.iter
    (fun d ->
      let ctx = Hashtbl.find ctx_of d.d_unit.Program.path in
      let ctx =
        {
          ctx with
          report =
            Some
              (fun ~loc ~rule msg ->
                let p = loc.Location.loc_start in
                findings :=
                  Finding.make ~rule ~severity:Finding.Error
                    ~file:d.d_unit.Program.path ~line:p.Lexing.pos_lnum
                    ~col:(p.Lexing.pos_cnum - p.Lexing.pos_bol)
                    msg
                  :: !findings);
        }
      in
      let env, body = strip_params empty_env Trusted d.d_expr in
      ignore (eval ctx env body))
    all_defs;
  List.sort_uniq Finding.order !findings
