(* Whole-program view for the interprocedural passes (taint, lock
   order): every source file under the scan dirs parsed once, with its
   line texts and in-source suppressions, so the per-file rules and the
   whole-program rules share one parse.

   A unit's [modname] is the OCaml module its file defines inside its
   dune library ("lib/wire/frame.ml" -> "Frame").  Cross-module value
   references are resolved on the (module, value) pair: the dune
   libraries here are all wrapped under distinct [Csm_*] names, so the
   capitalized basename is unambiguous in practice — and when two
   libraries did define the same module name, resolving to either is
   still sound for taint (summaries join) and merely over-approximates
   the lock graph. *)

type unit_ = {
  path : string;  (* repo-relative, '/'-separated *)
  modname : string;  (* "Frame" for lib/wire/frame.ml *)
  structure : Parsetree.structure option;  (* None: does not parse *)
  lines : string array;
  suppress : Suppress.t;
}

let modname_of_path path =
  String.capitalize_ascii (Filename.remove_extension (Filename.basename path))

let parse_impl ~path src =
  let lb = Lexing.from_string src in
  Lexing.set_filename lb path;
  match Parse.implementation lb with
  | s -> Some s
  | exception _ -> None

let of_string ~path src =
  {
    path;
    modname = modname_of_path path;
    structure =
      (if Filename.check_suffix path ".mli" then None else parse_impl ~path src);
    lines = Array.of_list (String.split_on_char '\n' src);
    suppress = Suppress.scan src;
  }

let line_text u n =
  if n >= 1 && n <= Array.length u.lines then String.trim u.lines.(n - 1)
  else ""

(* Strip a [Csm_foo.] library prefix so [Csm_wire.Frame.decode] and
   [Frame.decode] resolve to the same (module, value) pair; a leading
   [Stdlib] goes the same way. *)
let strip_lib = function
  | first :: (_ :: _ as rest)
    when first = "Stdlib"
         || (String.length first > 4 && String.sub first 0 4 = "Csm_") ->
    rest
  | l -> l

(* The (module, value) key of a value path, with library wrappers
   stripped: ["Frame"; "decode"] stays, ["Csm_wire"; "Frame"; "decode"]
   becomes ["Frame"; "decode"], a bare ["f"] keeps no module. *)
let ref_key parts =
  match List.rev (strip_lib parts) with
  | [] -> None
  | [ v ] -> Some (None, v)
  | v :: m :: _ -> Some (Some m, v)
