(* In-source suppressions: a comment of the form

     (* csm-lint: allow R2 — reason *)

   silences findings of the named rule(s) on the comment's own line and
   on the line directly below it (so the comment can sit above the
   flagged expression).  A reason is required by convention — the
   marker is grepped, not parsed, so the analyzer only extracts the
   rule ids. *)

type t = (string * int, unit) Hashtbl.t

let marker = "csm-lint: allow"

let contains_marker line =
  let n = String.length line and m = String.length marker in
  let rec go i = i + m <= n && (String.sub line i m = marker || go (i + 1)) in
  go 0

(* All "R<digits>" tokens in [line]. *)
let rule_ids line =
  let n = String.length line in
  let out = ref [] in
  let i = ref 0 in
  while !i < n do
    if
      line.[!i] = 'R'
      && !i + 1 < n
      && (match line.[!i + 1] with '0' .. '9' -> true | _ -> false)
    then begin
      let j = ref (!i + 1) in
      while
        !j < n && match line.[!j] with '0' .. '9' -> true | _ -> false
      do
        incr j
      done;
      out := String.sub line !i (!j - !i) :: !out;
      i := !j
    end
    else incr i
  done;
  !out

let scan src : t =
  let t = Hashtbl.create 8 in
  let lines = String.split_on_char '\n' src in
  List.iteri
    (fun i line ->
      if contains_marker line then
        List.iter (fun r -> Hashtbl.replace t (r, i + 1) ()) (rule_ids line))
    lines;
  t

let active (t : t) ~rule ~line =
  Hashtbl.mem t (rule, line) || Hashtbl.mem t (rule, line - 1)
