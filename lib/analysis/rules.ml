(* The rule catalogue, implemented as one [Ast_iterator] pass over a
   parsed compilation unit.

   R1 determinism boundary — wall-clock and ambient-randomness
      primitives ([Stdlib.Random], [Sys.time], [Unix.gettimeofday],
      [Unix.time], [Domain.self]) are banned outside the explicitly
      nondeterministic layers (lib/obs, lib/transport, lib/sim/net).
      Everything else must draw randomness from [Csm_rng] and time from
      the simulated clock, or Theorem-1-style exact-replay arguments
      stop holding.

   R2 polymorphic comparison — structural [=]/[compare]/[Hashtbl.hash]
      on field elements or wire frames compares representations, not
      values, and silently breaks when a representation gains
      non-canonical forms.  Flagged when an operand mentions a
      field/frame module qualifier; bare [compare] is additionally
      banned wholesale in lib/field, lib/poly, lib/rs and as a sort
      comparator anywhere.

   R3 mutex discipline — a function that takes a raw [Mutex.lock] (or
      [Lockdep.lock]) must release it exception-safely: either via
      [Fun.protect] or with an [unlock] in an exception-handler
      position.  Otherwise one raise under the lock deadlocks every
      other domain.

   R4 shared mutable state — module-level refs/tables/arrays are where
      domain races live; each one must be declared in
      lint/shared_state.allow together with its locking story.

   R5 decoder totality — wire decoders run on Byzantine input; a
      [raise]/[failwith]/[Option.get]/[List.hd] inside a [decode_*]
      body turns malformed bytes into a crash instead of a counted
      [None]. *)

open Parsetree

type ctx = {
  path : string;  (* repo-relative, '/'-separated *)
  registry : (string, unit) Hashtbl.t;  (* R4 allow entries "file:name" *)
  mutable findings : Finding.t list;
}

let make_ctx ?(registry = Hashtbl.create 1) ~path () =
  { path; registry; findings = [] }

let report ctx ~rule ~severity ~loc message =
  let p = loc.Location.loc_start in
  ctx.findings <-
    Finding.make ~rule ~severity ~file:ctx.path ~line:p.Lexing.pos_lnum
      ~col:(p.Lexing.pos_cnum - p.Lexing.pos_bol)
      message
    :: ctx.findings

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* Flattened path with a leading "Stdlib" stripped, so [Stdlib.compare]
   and [compare] match the same patterns. *)
let flat lid =
  match Longident.flatten lid with "Stdlib" :: (_ :: _ as rest) -> rest | l -> l

(* ----- R1 ----- *)

let r1_allowed path =
  starts_with "lib/obs/" path
  || starts_with "lib/transport/" path
  || starts_with "lib/sim/net." path

let r1_banned = function
  | "Random" :: _ -> Some "Stdlib.Random (use Csm_rng)"
  | [ "Sys"; "time" ] -> Some "Sys.time"
  | [ "Unix"; "gettimeofday" ] -> Some "Unix.gettimeofday"
  | [ "Unix"; "time" ] -> Some "Unix.time"
  | [ "Domain"; "self" ] -> Some "Domain.self"
  | _ -> None

(* ----- R2 ----- *)

let field_modules = [ "F"; "Fp"; "Gf2m"; "Frame"; "Counted" ]

(* Qualified accessors that return plain ints/strings: comparing their
   results structurally is fine. *)
let r2_excluded_leaf =
  [
    "to_int"; "of_int"; "characteristic"; "order"; "to_string"; "tag_of_kind";
    "header_bytes"; "encoded_size"; "max_payload_bytes"; "kind_name";
    "h_sender"; "h_round"; "h_payload_bytes"; "h_version"; "sender"; "round";
    "version"; "payload"; "dim";
  ]

let path_mentions_field ~construct parts =
  match List.rev parts with
  | leaf :: (_ :: _ as rev_prefix) ->
    List.exists (fun m -> List.mem m field_modules) rev_prefix
    && (construct || not (List.mem leaf r2_excluded_leaf))
  | _ -> false

(* Is the head of [e] (an operand of a structural comparison) a value
   qualified by a field/frame module?  Only the head matters: in
   [F.to_int x = y] the compared value is the int [to_int] returns,
   however field-flavoured the subterms are. *)
let rec mentions_field_value e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } | Pexp_field (_, { txt; _ }) ->
    path_mentions_field ~construct:false (Longident.flatten txt)
  | Pexp_construct ({ txt; _ }, _) ->
    path_mentions_field ~construct:true (Longident.flatten txt)
  | Pexp_apply (f, _) -> mentions_field_value f
  | Pexp_constraint (e, _) -> mentions_field_value e
  | _ -> false

let r2_poly_ops = [ [ "=" ]; [ "<>" ]; [ "compare" ]; [ "Hashtbl"; "hash" ] ]

let r2_sorts =
  [
    [ "List"; "sort" ]; [ "List"; "sort_uniq" ]; [ "List"; "stable_sort" ];
    [ "List"; "fast_sort" ]; [ "Array"; "sort" ]; [ "Array"; "stable_sort" ];
  ]

let r2_bare_compare_dir path =
  starts_with "lib/field/" path
  || starts_with "lib/poly/" path
  || starts_with "lib/rs/" path

(* ----- R3 ----- *)

let is_raw_lock = function
  | [ "Mutex"; "lock" ] | [ "Lockdep"; "lock" ] -> true
  | _ -> false

let is_protect = function [ "Fun"; "protect" ] -> true | _ -> false

let is_unlock = function
  | [ "Mutex"; "unlock" ] | [ "Lockdep"; "unlock" ] -> true
  | _ -> false

let mentions pred e =
  let found = ref false in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self ex ->
          (match ex.pexp_desc with
          | Pexp_ident { txt; _ } when pred (flat txt) -> found := true
          | _ -> ());
          Ast_iterator.default_iterator.expr self ex);
    }
  in
  it.expr it e;
  !found

let lock_sites e =
  let sites = ref [] in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self ex ->
          (match ex.pexp_desc with
          | Pexp_ident { txt; _ } when is_raw_lock (flat txt) ->
            sites := ex.pexp_loc :: !sites
          | _ -> ());
          Ast_iterator.default_iterator.expr self ex);
    }
  in
  it.expr it e;
  List.rev !sites

(* Is there a [Mutex.unlock] inside an exception-handler position — a
   [try ... with] handler or a [match ... | exception p -> ...] case? *)
let unlock_in_handler e =
  let found = ref false in
  let scan_cases cases =
    List.iter
      (fun c ->
        if mentions is_unlock c.pc_rhs then found := true)
      cases
  in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self ex ->
          (match ex.pexp_desc with
          | Pexp_try (_, cases) -> scan_cases cases
          | Pexp_match (_, cases) ->
            scan_cases
              (List.filter
                 (fun c ->
                   match c.pc_lhs.ppat_desc with
                   | Ppat_exception _ -> true
                   | _ -> false)
                 cases)
          | _ -> ());
          Ast_iterator.default_iterator.expr self ex);
    }
  in
  it.expr it e;
  !found

(* ----- R4 ----- *)

let r4_scope path = starts_with "lib/" path || starts_with "bin/" path

let r4_watched = function
  | [ "ref" ]
  | [ "Hashtbl"; "create" ]
  | [ "Queue"; "create" ]
  | [ "Buffer"; "create" ]
  | [ "Array"; "make" ]
  | [ "Bytes"; "create" ]
  | [ "Csm_rng"; "create" ]
  (* atomics and op-counters are mutable too: lock-free, but their
     write discipline (who publishes, who may reset) still belongs in
     the registry *)
  | [ "Atomic"; "make" ]
  | [ "Counter"; "create" ]
  | [ "Csm_metrics"; "Counter"; "create" ] -> true
  | _ -> false

let rec rhs_head e =
  match e.pexp_desc with
  | Pexp_constraint (e, _) -> rhs_head e
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) -> Some (flat txt)
  | _ -> None

let rec binding_name pat =
  match pat.ppat_desc with
  | Ppat_var { txt; _ } -> Some txt
  | Ppat_constraint (p, _) -> binding_name p
  | _ -> None

(* ----- R5 ----- *)

let r5_scope path name =
  starts_with "lib/" path
  && (starts_with "decode" name || name = "of_header")

let r5_banned = function
  | [ "failwith" ] | [ "invalid_arg" ] | [ "raise" ] | [ "raise_notrace" ]
  | [ "Option"; "get" ] | [ "List"; "hd" ] -> true
  | _ -> false

let r5_sites e =
  let sites = ref [] in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self ex ->
          (match ex.pexp_desc with
          | Pexp_ident { txt; _ } when r5_banned (flat txt) ->
            sites := (ex.pexp_loc, String.concat "." (flat txt)) :: !sites
          | _ -> ());
          Ast_iterator.default_iterator.expr self ex);
    }
  in
  it.expr it e;
  List.rev !sites

(* ----- the pass ----- *)

let iterator ctx =
  let expr self e =
    (match e.pexp_desc with
    (* R1: nondeterminism outside the allowlisted layers *)
    | Pexp_ident { txt; _ } when not (r1_allowed ctx.path) -> (
      match r1_banned (flat txt) with
      | Some what ->
        report ctx ~rule:"R1" ~severity:Finding.Error ~loc:e.pexp_loc
          (Printf.sprintf
             "%s breaks the determinism boundary (allowed only in lib/obs, \
              lib/transport, lib/sim/net)"
             what)
      | None -> ())
    | _ -> ());
    (match e.pexp_desc with
    (* R2a: structural comparison touching field/frame values *)
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args) ->
      let f = flat txt in
      if List.mem f r2_poly_ops then begin
        if List.exists (fun (_, a) -> mentions_field_value a) args then
          report ctx ~rule:"R2" ~severity:Finding.Error ~loc:e.pexp_loc
            (Printf.sprintf
               "polymorphic %s on a field/frame value compares \
                representations; use the module's equal/compare"
               (String.concat "." f))
      end
      (* R2b: polymorphic [compare] as a sort comparator *)
      else if List.mem f r2_sorts && not (r2_bare_compare_dir ctx.path) then begin
        match args with
        | (_, { pexp_desc = Pexp_ident { txt = cmp; _ }; pexp_loc; _ }) :: _
          when flat cmp = [ "compare" ] ->
          report ctx ~rule:"R2" ~severity:Finding.Error ~loc:pexp_loc
            "polymorphic compare as sort comparator; use a typed comparator \
             (Int.compare, String.compare, ...)"
        | _ -> ()
      end
    (* R2c: any bare [compare] in the algebra layers *)
    | Pexp_ident { txt; _ }
      when flat txt = [ "compare" ] && r2_bare_compare_dir ctx.path ->
      report ctx ~rule:"R2" ~severity:Finding.Error ~loc:e.pexp_loc
        "bare polymorphic compare in an algebra layer (lib/field, lib/poly, \
         lib/rs); use a typed comparator"
    | _ -> ());
    Ast_iterator.default_iterator.expr self e
  in
  let value_binding self vb =
    (* R3: raw lock without an exception-safe release in this binding *)
    let locks = lock_sites vb.pvb_expr in
    (if locks <> [] then
       let safe =
         mentions is_protect vb.pvb_expr || unlock_in_handler vb.pvb_expr
       in
       if not safe then
         List.iter
           (fun loc ->
             report ctx ~rule:"R3" ~severity:Finding.Error ~loc
               "Mutex.lock without Fun.protect or an exception-handler \
                unlock in the same function; a raise under the lock \
                deadlocks other domains")
           locks);
    (* R5: partial operations inside decoder bodies *)
    (match binding_name vb.pvb_pat with
    | Some name when r5_scope ctx.path name ->
      List.iter
        (fun (loc, what) ->
          report ctx ~rule:"R5" ~severity:Finding.Error ~loc
            (Printf.sprintf
               "%s inside decoder %s: Byzantine input must produce None, \
                never an exception"
               what name))
        (r5_sites vb.pvb_expr)
    | _ -> ());
    Ast_iterator.default_iterator.value_binding self vb
  in
  let structure_item self si =
    (match si.pstr_desc with
    (* R4: module-level mutable state must be registered *)
    | Pstr_value (_, vbs) when r4_scope ctx.path ->
      List.iter
        (fun vb ->
          match (binding_name vb.pvb_pat, rhs_head vb.pvb_expr) with
          | Some name, Some head when r4_watched head ->
            let key = ctx.path ^ ":" ^ name in
            if not (Hashtbl.mem ctx.registry key) then
              report ctx ~rule:"R4" ~severity:Finding.Warning
                ~loc:vb.pvb_loc
                (Printf.sprintf
                   "module-level mutable state '%s' (%s) is not registered \
                    in lint/shared_state.allow; add '%s' with its locking \
                    story"
                   name (String.concat "." head) key)
          | _ -> ())
        vbs
    | _ -> ());
    Ast_iterator.default_iterator.structure_item self si
  in
  { Ast_iterator.default_iterator with expr; value_binding; structure_item }

let run ctx (str : structure) =
  let it = iterator ctx in
  it.structure it str;
  List.rev ctx.findings

let run_signature ctx (sg : signature) =
  let it = iterator ctx in
  it.signature it sg;
  List.rev ctx.findings
