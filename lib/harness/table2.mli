(** Table 2 of the paper: each bound (decoding, output delivery, input
    consensus; synchronous and partially-synchronous) validated
    empirically — the protocol succeeds exactly at the bound and a
    matched adversary breaks it one step beyond. *)

type check = {
  label : string;
  bound : string;  (** the paper's inequality *)
  at_bound_ok : bool;  (** holds exactly at the bound *)
  beyond_fails : bool;  (** breaks one step past it *)
}

val run_all : unit -> check list

val pp_check : Format.formatter -> check -> unit
val pp_table : Format.formatter -> check list -> unit
