(** Table 2 of the paper: each bound (decoding, output delivery, input
    consensus; synchronous and partially-synchronous) validated
    empirically — the protocol succeeds exactly at the bound and a
    matched adversary breaks it one step beyond. *)

type check = {
  label : string;
  bound : string;  (** the paper's inequality *)
  at_bound_ok : bool;  (** holds exactly at the bound *)
  beyond_fails : bool;  (** breaks one step past it *)
}

(** The standard case list, one constructor per Table-2 row family;
    shared with the adversary-synthesis certifier so scripted checks
    and searched tightness certificates exercise the same instances. *)
type case =
  | Decode_sync of { n : int; k : int; d : int }
  | Decode_partial of { n : int; k : int; d : int }
  | Output of { n : int }
  | Consensus_sync of { n : int }
  | Consensus_partial of { n : int }

val standard_cases : case list

val check_case : case -> check option
(** [None] when the instance is infeasible (b < 0). *)

val run_all : unit -> check list

val pp_check : Format.formatter -> check -> unit
val pp_table : Format.formatter -> check list -> unit
