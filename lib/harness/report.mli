(** CSV export of every experiment sweep: one file per experiment,
    stable headers, deterministic contents. *)

val write_file : dir:string -> name:string -> string list -> string
(** Write [lines] to [dir/name]; returns the path. *)

val table1_csv : Table1.setup * Table1.row list -> string list
val table2_csv : Table2.check list -> string list
val scaling_csv : Scaling.scaling_point list -> string list
val growth_csv : Scaling.growth_point list -> string list
val coding_csv : Scaling.coding_cost list -> string list
val stragglers_csv : Stragglers.point list -> string list

val allocation_csv :
  Csm_smr.Random_allocation.experiment_result list -> string list

val spans_csv : unit -> string list
(** Per-span-name latency/op summary of the currently buffered trace;
    only meaningful while tracing is enabled. *)

val write_all : dir:string -> unit -> string list
(** Run every experiment and write the full result set into [dir]
    (created if missing); returns the written paths. *)
