(* CSV export of every experiment sweep, for plotting/inspection outside
   the CLI.  One file per experiment, stable headers, deterministic
   contents. *)

let write_file ~dir ~name lines =
  let path = Filename.concat dir name in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> List.iter (fun l -> output_string oc (l ^ "\n")) lines);
  path

let csv_row cells = String.concat "," cells

let table1_csv (setup, rows) =
  csv_row [ "scheme"; "security"; "storage_gamma"; "throughput"; "ops_per_node" ]
  :: List.map
       (fun (r : Table1.row) ->
         csv_row
           [
             r.Table1.scheme;
             string_of_int r.Table1.security;
             Printf.sprintf "%.3f" r.Table1.storage_gamma;
             Printf.sprintf "%.9f" r.Table1.throughput;
             Printf.sprintf "%.1f" r.Table1.per_node_ops;
           ])
       rows
  @ [
      csv_row
        [
          "#setup";
          Printf.sprintf "N=%d" setup.Table1.n;
          Printf.sprintf "mu=%.3f" setup.Table1.mu;
          Printf.sprintf "d=%d" setup.Table1.d;
          Printf.sprintf "K=%d" setup.Table1.k;
        ];
    ]

let table2_csv checks =
  csv_row [ "label"; "bound"; "at_bound_ok"; "beyond_fails" ]
  :: List.map
       (fun (c : Table2.check) ->
         csv_row
           [
             c.Table2.label;
             c.Table2.bound;
             string_of_bool c.Table2.at_bound_ok;
             string_of_bool c.Table2.beyond_fails;
           ])
       checks

let scaling_csv points =
  csv_row
    [ "n"; "k"; "b"; "gamma"; "lambda_full"; "lambda_partial"; "lambda_csm";
      "lambda_csm_intermix" ]
  :: List.map
       (fun (p : Scaling.scaling_point) ->
         csv_row
           [
             string_of_int p.Scaling.n;
             string_of_int p.Scaling.k;
             string_of_int p.Scaling.b;
             string_of_int p.Scaling.gamma;
             Printf.sprintf "%.9f" p.Scaling.lambda_full;
             Printf.sprintf "%.9f" p.Scaling.lambda_partial;
             Printf.sprintf "%.9f" p.Scaling.lambda_csm;
             Printf.sprintf "%.9f" p.Scaling.lambda_csm_intermix;
           ])
       points

let growth_csv points =
  csv_row [ "n"; "k_max"; "beta" ]
  :: List.map
       (fun (g : Scaling.growth_point) ->
         csv_row
           [
             string_of_int g.Scaling.gn;
             string_of_int g.Scaling.gk_max;
             string_of_int g.Scaling.gbeta;
           ])
       points

let coding_csv points =
  csv_row [ "n"; "naive_ops"; "fast_ops" ]
  :: List.map
       (fun (c : Scaling.coding_cost) ->
         csv_row
           [
             string_of_int c.Scaling.cn;
             string_of_int c.Scaling.naive_ops;
             string_of_int c.Scaling.fast_ops;
           ])
       points

let stragglers_csv points =
  csv_row [ "n"; "stragglers"; "slack"; "t_wait_all"; "t_early"; "correct" ]
  :: List.map
       (fun (p : Stragglers.point) ->
         csv_row
           [
             string_of_int p.Stragglers.n;
             string_of_int p.Stragglers.stragglers;
             string_of_int p.Stragglers.slack;
             Printf.sprintf "%.2f" p.Stragglers.t_wait_all;
             Printf.sprintf "%.2f" p.Stragglers.t_early;
             string_of_bool p.Stragglers.correct;
           ])
       points

(* Per-span-name latency/op summary of the currently buffered trace:
   count, total, p50/p95/max wall-clock and the summed field-op deltas.
   Only meaningful while tracing is enabled. *)
let spans_csv () =
  let module Summary = Csm_obs.Summary in
  csv_row
    [ "span"; "count"; "total_s"; "p50_s"; "p95_s"; "max_s"; "adds"; "muls";
      "invs" ]
  :: List.map
       (fun (s : Summary.stat) ->
         csv_row
           [
             s.Summary.s_name;
             string_of_int s.Summary.count;
             Printf.sprintf "%.6f" s.Summary.total_s;
             Printf.sprintf "%.6f" s.Summary.p50_s;
             Printf.sprintf "%.6f" s.Summary.p95_s;
             Printf.sprintf "%.6f" s.Summary.max_s;
             string_of_int s.Summary.adds;
             string_of_int s.Summary.muls;
             string_of_int s.Summary.invs;
           ])
       (Summary.by_name (Csm_obs.Span.records ()))

let allocation_csv results =
  let module RA = Csm_smr.Random_allocation in
  csv_row [ "scheme"; "budget"; "epochs"; "compromise_rate"; "migrations_per_epoch" ]
  :: List.map
       (fun (r : RA.experiment_result) ->
         csv_row
           [
             r.RA.scheme;
             string_of_int r.RA.budget;
             string_of_int r.RA.epochs;
             Printf.sprintf "%.4f" r.RA.compromise_rate;
             Printf.sprintf "%.2f" r.RA.migrations_per_epoch;
           ])
       results

(* Produce the full result set into [dir]; returns the written paths. *)
let write_all ~dir () =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let module RA = Csm_smr.Random_allocation in
  let paths =
    [
      write_file ~dir ~name:"table1.csv"
        (table1_csv (Table1.run ~rounds:2 ~n:24 ~mu:0.25 ~d:2 ()));
      write_file ~dir ~name:"table2.csv" (table2_csv (Table2.run_all ()));
      write_file ~dir ~name:"scaling.csv"
        (scaling_csv
           (Scaling.throughput_sweep ~mu:0.25 ~d:2 [ 12; 16; 24; 32; 48 ]));
      write_file ~dir ~name:"growth.csv"
        (growth_csv
           (Scaling.growth_sweep ~mu:0.25 ~d:2
              [ 16; 32; 64; 128; 256; 512; 1024 ]));
      write_file ~dir ~name:"coding.csv"
        (coding_csv (Scaling.coding_sweep [ 16; 64; 256; 1024; 4096 ]));
      write_file ~dir ~name:"stragglers.csv"
        (stragglers_csv (Stragglers.sweep ()));
      write_file ~dir ~name:"allocation.csv"
        (allocation_csv
           [
             RA.run_static ~seed:1 ~n:24 ~k:6 ~budget:3 ~epochs:500;
             RA.run_adaptive ~seed:2 ~n:24 ~k:6 ~budget:3 ~epochs:500 ~delay:0;
             RA.run_adaptive ~seed:3 ~n:24 ~k:6 ~budget:3 ~epochs:500 ~delay:1;
             RA.csm_reference ~n:24 ~k:6 ~d:1 ~budget:3 ~epochs:500;
           ]);
    ]
  in
  (* when tracing is on, also summarize the spans the sweeps above just
     emitted (p50/p95/max per span name) *)
  let paths =
    if Csm_obs.Span.enabled () then
      paths @ [ write_file ~dir ~name:"spans.csv" (spans_csv ()) ]
    else paths
  in
  (* when metrics are on, snapshot the registry the sweeps populated as
     a Prometheus exposition file *)
  if Csm_obs.Metric.enabled () then begin
    let path = Filename.concat dir "metrics.prom" in
    Csm_obs.Prom.write ~path;
    paths @ [ path ]
  end
  else paths
