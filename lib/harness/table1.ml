(* Table 1 regeneration: security, storage efficiency and throughput of
   full replication, partial replication, the information-theoretic
   limit, and CSM (decentralized and INTERMIX-delegated), measured by
   exact field-operation counting on the same machine and workload.

   Conventions (matching the paper's setup):
   - all schemes execute the same K = K_max(N, μ, d) machines (rounded
     down to a divisor of N so partial replication's disjoint groups
     exist);
   - security is the scheme's tolerated fault count at this operating
     point (Section 3 formulas; CSM: the Table-2 decoding bound) —
     every formula is separately validated by fault-injection tests;
   - storage efficiency γ = (total state size) / (per-node storage);
   - throughput λ = K / (mean per-node execution-phase cost), the
     Section-2.2 definition, with costs measured by the counted field. *)

module CF = Csm_field.Counted.Make (Csm_field.Fp.Default)
module Counter = Csm_metrics.Counter
module Ledger = Csm_metrics.Ledger
module Scope = Csm_metrics.Scope
module R = Csm_smr.Replication.Make (CF)
module E = Csm_core.Engine.Make (CF)
module D = Csm_intermix.Delegation.Make (CF)
module IX = Csm_intermix.Intermix.Make (CF)
module Params = Csm_core.Params
module Pool = Csm_parallel.Pool
module M = R.M

type row = {
  scheme : string;
  security : int;
  storage_gamma : float;
  throughput : float;
  per_node_ops : float;  (* mean per-node ops per round *)
}

type setup = {
  n : int;
  mu : float;
  d : int;
  k : int;  (* machines actually run (divides n) *)
  k_csm : int;  (* CSM's K_max before divisor rounding *)
  b : int;  (* faults at the operating point: ⌊μN⌋ *)
}

let make_setup ~n ~mu ~d =
  let b = int_of_float (mu *. float_of_int n) in
  let k_csm = Params.max_machines ~network:Params.Sync ~n ~b ~d in
  if k_csm < 1 then invalid_arg "Table1.make_setup: infeasible (K_max = 0)";
  (* largest k <= k_csm dividing n *)
  let rec divisor k = if k < 1 then 1 else if n mod k = 0 then k else divisor (k - 1) in
  let k = divisor k_csm in
  { n; mu; d; k; k_csm; b }

let fresh_scope () =
  let ledger = Ledger.create () in
  (ledger, Scope.of_ledger (module CF) ledger)

let random_states rng machine k =
  Array.init k (fun _ ->
      Array.init machine.M.state_dim (fun _ -> CF.random rng))

let random_commands rng machine k =
  Array.init k (fun _ ->
      Array.init machine.M.input_dim (fun _ -> CF.random rng))

(* Mean per-node cost per round from a ledger. *)
let mean_per_node ledger ~n ~rounds =
  let costs = Ledger.per_node_costs ledger ~n in
  let total = Array.fold_left ( + ) 0 costs in
  float_of_int total /. float_of_int n /. float_of_int rounds

let lambda ~k ~per_node = if per_node = 0.0 then infinity else float_of_int k /. per_node

(* Cost of one uncoded machine step (c(f)), measured. *)
let machine_step_cost machine =
  let c = Counter.create () in
  let rng = Csm_rng.create 1 in
  let state = Array.init machine.M.state_dim (fun _ -> CF.random rng) in
  let input = Array.init machine.M.input_dim (fun _ -> CF.random rng) in
  CF.with_counter c (fun () -> ignore (M.step machine ~state ~input));
  Counter.total c

let full_row setup machine ~rounds =
  let rng = Csm_rng.create 0xF011 in
  let ledger, scope = fresh_scope () in
  let t =
    R.Full.create ~machine ~n:setup.n ~k:setup.k
      ~init:(random_states rng machine setup.k)
  in
  for _ = 1 to rounds do
    ignore
      (R.Full.round ~scope t
         ~commands:(random_commands rng machine setup.k)
         ~byzantine:(fun _ -> false)
         ~b:(R.security_full ~n:setup.n `Sync)
         ())
  done;
  let per_node = mean_per_node ledger ~n:setup.n ~rounds in
  {
    scheme = "full-replication";
    security = R.security_full ~n:setup.n `Sync;
    storage_gamma =
      float_of_int (setup.k * machine.M.state_dim)
      /. float_of_int (R.Full.storage_per_node t);
    throughput = lambda ~k:setup.k ~per_node;
    per_node_ops = per_node;
  }

let partial_row setup machine ~rounds =
  let rng = Csm_rng.create 0xF012 in
  let ledger, scope = fresh_scope () in
  let t =
    R.Partial.create ~machine ~n:setup.n ~k:setup.k
      ~init:(random_states rng machine setup.k)
  in
  for _ = 1 to rounds do
    ignore
      (R.Partial.round ~scope t
         ~commands:(random_commands rng machine setup.k)
         ~byzantine:(fun _ -> false)
         ~b:(R.security_partial ~n:setup.n ~k:setup.k `Sync)
         ())
  done;
  let per_node = mean_per_node ledger ~n:setup.n ~rounds in
  {
    scheme = "partial-replication";
    security = R.security_partial ~n:setup.n ~k:setup.k `Sync;
    storage_gamma =
      float_of_int (setup.k * machine.M.state_dim)
      /. float_of_int (R.Partial.storage_per_node t);
    throughput = lambda ~k:setup.k ~per_node;
    per_node_ops = per_node;
  }

(* CSM decentralized: every node encodes its command, computes f, decodes
   the full result set, and re-encodes its state.  Decoding is run once
   per node (that is what the decentralized protocol costs). *)
let csm_decentralized_row setup machine ~rounds =
  let rng = Csm_rng.create 0xF013 in
  let params =
    Params.make ~network:Params.Sync ~n:setup.n ~k:setup.k ~d:setup.d
      ~b:(Params.max_faults ~network:Params.Sync ~n:setup.n ~k:setup.k ~d:setup.d)
  in
  let ledger, scope = fresh_scope () in
  let engine =
    E.create ~machine ~params ~init:(random_states rng machine setup.k)
  in
  for _ = 1 to rounds do
    let commands = random_commands rng machine setup.k in
    (* steps 1-2 per node (independent; fanned across the domain pool,
       costs still attributed to each node's own role counter) *)
    let computed =
      Pool.parallel_init setup.n (fun i ->
          let cc = E.node_encode_command ~scope engine ~node:i ~commands in
          E.node_compute ~scope engine ~node:i ~coded_command:cc)
    in
    let received = Array.to_list (Array.mapi (fun i g -> (i, g)) computed) in
    (* every node decodes (cost attributed per node) *)
    let results =
      Pool.parallel_init setup.n (fun i ->
          E.decode_results ~scope ~role:(Ledger.node_role i) engine received)
    in
    (match results.(0) with
    | Some d ->
      Pool.parallel_for setup.n (fun i ->
          E.node_update_state ~scope engine ~node:i ~next_states:d.E.next_states)
    | None -> failwith "Table1: decode failed");
    ignore results
  done;
  let per_node = mean_per_node ledger ~n:setup.n ~rounds in
  {
    scheme = "csm-decentralized";
    security = params.Params.b;
    storage_gamma = float_of_int setup.k;
    throughput = lambda ~k:setup.k ~per_node;
    per_node_ops = per_node;
  }

(* CSM + INTERMIX delegation: worker + J auditors + commoners; costs land
   on their node roles.  [batch] verifies one random linear combination
   per shared-matrix stage instead of one instance per coordinate. *)
let csm_intermix_row ?(epsilon = 1e-6) ?(batch = false) setup machine ~rounds =
  let rng = Csm_rng.create 0xF014 in
  let params =
    Params.make ~network:Params.Sync ~n:setup.n ~k:setup.k ~d:setup.d
      ~b:(Params.max_faults ~network:Params.Sync ~n:setup.n ~k:setup.k ~d:setup.d)
  in
  let ledger, scope = fresh_scope () in
  let engine =
    E.create ~machine ~params ~init:(random_states rng machine setup.k)
  in
  let j = IX.committee_size ~epsilon ~mu:(max 0.01 setup.mu) in
  let j = min j (setup.n - 1) in
  for r = 0 to rounds - 1 do
    let commands = random_commands rng machine setup.k in
    let worker = r mod setup.n in
    let committee =
      List.init j (fun i -> (worker + 1 + i) mod setup.n)
    in
    let out =
      D.round ~scope ~batch engine ~commands
        ~byzantine:(fun _ -> false)
        ~worker ~committee ()
    in
    match out.D.decoded with
    | Some _ -> ()
    | None -> failwith "Table1: delegated round failed"
  done;
  let per_node = mean_per_node ledger ~n:setup.n ~rounds in
  {
    scheme = (if batch then "csm-intermix-batched" else "csm-intermix");
    security = params.Params.b;
    storage_gamma = float_of_int setup.k;
    throughput = lambda ~k:setup.k ~per_node;
    per_node_ops = per_node;
  }

(* Information-theoretic limits (formula row, Table 1 third line):
   β = N/2, γ = N, λ = N/c(f). *)
let it_limit_row setup machine =
  let cf = machine_step_cost machine in
  {
    scheme = "it-limit";
    security = setup.n / 2;
    storage_gamma = float_of_int setup.n;
    throughput = float_of_int setup.n /. float_of_int cf;
    per_node_ops = float_of_int cf;
  }

let run ?(rounds = 3) ~n ~mu ~d () =
  Csm_obs.Span.with_ ~name:"table1.run"
    ~attrs:[ ("n", string_of_int n) ]
    (fun () ->
      let setup = make_setup ~n ~mu ~d in
      let machine = M.degree_machine d in
      (* each scheme's measurement is fully self-contained (own rng,
         ledger, engine), so the six rows evaluate across the domain
         pool *)
      let rows =
        Pool.parallel_list_map
          (fun row -> row ())
          [
            (fun () -> full_row setup machine ~rounds);
            (fun () -> partial_row setup machine ~rounds);
            (fun () -> it_limit_row setup machine);
            (fun () -> csm_decentralized_row setup machine ~rounds);
            (fun () -> csm_intermix_row setup machine ~rounds);
            (fun () -> csm_intermix_row ~batch:true setup machine ~rounds);
          ]
      in
      (setup, rows))

let pp_row ppf r =
  Format.fprintf ppf "%-22s β=%-5d γ=%-8.1f λ=%-12.6f ops/node=%.0f" r.scheme
    r.security r.storage_gamma r.throughput r.per_node_ops

let pp_table ppf (setup, rows) =
  Format.fprintf ppf
    "@[<v>Table 1 @ N=%d, μ=%.3f, d=%d (K=%d, K_max=%d, b=%d)@,%a@]" setup.n
    setup.mu setup.d setup.k setup.k_csm setup.b
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_row)
    rows
