(** Table 1 of the paper: security β, storage γ and measured throughput
    λ of full replication, partial replication, the
    information-theoretic limit, and CSM with/without intermixing, all
    at the same (N, μ, d) operating point. *)

type row = {
  scheme : string;
  security : int;  (** β: tolerated Byzantine nodes *)
  storage_gamma : float;  (** per-node storage in state-sizes *)
  throughput : float;  (** λ: machine-rounds per unit of per-node work *)
  per_node_ops : float;  (** mean per-node field ops per round *)
}

type setup = {
  n : int;
  mu : float;
  d : int;
  k : int;  (** machines actually run (divides n) *)
  k_csm : int;  (** CSM's K_max before divisor rounding *)
  b : int;  (** faults at the operating point: ⌊μN⌋ *)
}

val make_setup : n:int -> mu:float -> d:int -> setup

val run : ?rounds:int -> n:int -> mu:float -> d:int -> unit -> setup * row list
(** Measure all schemes; each row is a self-contained simulation (own
    rng, ledger, engine), evaluated across the domain pool. *)

val pp_row : Format.formatter -> row -> unit
val pp_table : Format.formatter -> setup * row list -> unit
